// sim_cli: run any simulator configuration from the command line.
//
//   $ ./examples/sim_cli --algorithm=fmatrix --client-txn-length=8
//   $ ./examples/sim_cli --algorithm=datacycle --objects=500 --csv
//   $ ./examples/sim_cli --help
//
// Every Table 1 parameter and every extension knob is a flag; unset flags
// keep the paper's defaults. Prints the steady-state summary (and a CSV row
// with --csv for scripting).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "net/client_runtime.h"
#include "net/net_config.h"
#include "net/server_daemon.h"
#include "obs/trace_export.h"
#include "sim/broadcast_sim.h"

namespace {

using namespace bcc;

void PrintHelp() {
  std::printf(
      "sim_cli — broadcast-disk concurrency-control simulator (SIGMOD '99)\n\n"
      "  --algorithm=datacycle|rmatrix|fmatrix|fmatrix-no   (default fmatrix)\n"
      "  --client-txn-length=N     reads per client txn        (4)\n"
      "  --server-txn-length=N     ops per server txn          (8)\n"
      "  --server-interval=N       bit-units between commits   (250000)\n"
      "  --objects=N               database size               (300)\n"
      "  --object-kb=F             object size in KB           (1)\n"
      "  --timestamp-bits=N        stamp width                 (8)\n"
      "  --txns=N                  client txns, total          (1000)\n"
      "  --warmup=N                excluded from stats         (500)\n"
      "  --clients=N               concurrent clients          (1)\n"
      "  --update-fraction=F       client update txn share     (0)\n"
      "  --cache-cycles=F          currency bound T in cycles  (0 = off)\n"
      "  --groups=N                grouped-control columns     (0 = native)\n"
      "  --hot-set=N --hot-freq=N  multi-speed disk            (off)\n"
      "  --hot-access=F            client+server hot-set skew  (uniform)\n"
      "  --matrix=dense|sparse|group:G|hier  control-matrix representation\n"
      "                            (dense; sparse = CSC O(nnz), hier =\n"
      "                            adaptive group hierarchy; DESIGN.md §4l)\n"
      "  --compaction-period=N     sparse wraparound compaction every N\n"
      "                            cycles (0 = off; needs wire codec)\n"
      "  --hier-groups=N           hier initial group count    (64)\n"
      "  --hier-refine-limit=N     max refined columns         (1024)\n"
      "  --delta                   snapshot+delta control mode (off)\n"
      "  --delta-refresh=N         full refresh every N cycles (8)\n"
      "  --channel                 frame-level broadcast channel (off;\n"
      "                            implied by any fault flag below)\n"
      "  --frame-bits=N            channel frame size          (512)\n"
      "  --loss=F                  per-frame loss rate         (0)\n"
      "  --corrupt=F               per-frame bit-flip rate     (0)\n"
      "  --truncate=F              per-frame truncation rate   (0)\n"
      "  --burst                   Gilbert-Elliott burst loss  (off)\n"
      "  --burst-loss=F            Bad-state loss rate         (0.9)\n"
      "  --burst-in=F --burst-out=F  Good->Bad / Bad->Good     (0.02 / 0.25)\n"
      "  --update-scheme=seq|2pl|occ|mvcc  server update engine (seq;\n"
      "                            non-seq = thread-pooled TxnProcessor)\n"
      "  --update-workers=N        pooled engine worker threads (4)\n"
      "  --seed=N                  RNG seed                    (42)\n"
      "  --csv                     emit a machine-readable row\n"
      "  --trace-out=FILE          write a Chrome trace_event JSON trace\n"
      "                            (load in ui.perfetto.dev or chrome://tracing)\n"
      "  --trace-capacity=N        events kept per track       (4096)\n"
      "  --metrics-json=FILE       dump the full summary as JSON\n"
      "\nNetworked tier (real UDP transport; --listen runs the broadcast\n"
      "daemon, --connect the socket client — see DESIGN.md §4j):\n%s",
      NetFlagsHelp().c_str());
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  SimConfig config;
  NetConfig net;
  bool csv = false;
  double cache_cycles = 0;
  double hot_access = -1;
  std::string trace_out;
  std::string metrics_json;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (std::strcmp(argv[i], "--help") == 0) {
      PrintHelp();
      return 0;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (ParseFlag(argv[i], "--algorithm", &v)) {
      const std::string a = v;
      if (a == "datacycle") {
        config.algorithm = Algorithm::kDatacycle;
      } else if (a == "rmatrix") {
        config.algorithm = Algorithm::kRMatrix;
      } else if (a == "fmatrix") {
        config.algorithm = Algorithm::kFMatrix;
      } else if (a == "fmatrix-no") {
        config.algorithm = Algorithm::kFMatrixNo;
      } else {
        std::fprintf(stderr, "unknown algorithm '%s'\n", v);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--client-txn-length", &v)) {
      config.client_txn_length = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--server-txn-length", &v)) {
      config.server_txn_length = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--server-interval", &v)) {
      config.server_txn_interval = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--objects", &v)) {
      config.num_objects = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--object-kb", &v)) {
      config.object_size_bits = static_cast<uint64_t>(std::strtod(v, nullptr) * 8 * 1024);
    } else if (ParseFlag(argv[i], "--timestamp-bits", &v)) {
      config.timestamp_bits = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--txns", &v)) {
      config.num_client_txns = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--warmup", &v)) {
      config.warmup_txns = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--clients", &v)) {
      config.num_clients = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--update-fraction", &v)) {
      config.client_update_fraction = std::strtod(v, nullptr);
    } else if (ParseFlag(argv[i], "--cache-cycles", &v)) {
      cache_cycles = std::strtod(v, nullptr);
    } else if (ParseFlag(argv[i], "--groups", &v)) {
      config.num_groups = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--hot-set", &v)) {
      config.hot_set_size = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--hot-freq", &v)) {
      config.hot_broadcast_frequency = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--matrix", &v)) {
      const Status parsed = ParseMatrixOption(v, &config);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
        return 2;
      }
    } else if (ParseFlag(argv[i], "--compaction-period", &v)) {
      config.sparse_compaction_period = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--hier-groups", &v)) {
      config.hier_initial_groups = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--hier-refine-limit", &v)) {
      config.hier_refine_limit = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--delta") == 0) {
      config.delta_broadcast = true;
    } else if (ParseFlag(argv[i], "--delta-refresh", &v)) {
      config.delta_refresh_period = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--channel") == 0) {
      config.channel_broadcast = true;
    } else if (ParseFlag(argv[i], "--frame-bits", &v)) {
      config.channel_frame_bits = std::strtoull(v, nullptr, 10);
      config.channel_broadcast = true;
    } else if (ParseFlag(argv[i], "--loss", &v)) {
      config.channel_loss_rate = std::strtod(v, nullptr);
      config.channel_broadcast = true;
    } else if (ParseFlag(argv[i], "--corrupt", &v)) {
      config.channel_corrupt_rate = std::strtod(v, nullptr);
      config.channel_broadcast = true;
    } else if (ParseFlag(argv[i], "--truncate", &v)) {
      config.channel_truncate_rate = std::strtod(v, nullptr);
      config.channel_broadcast = true;
    } else if (std::strcmp(argv[i], "--burst") == 0) {
      config.channel_burst = true;
      config.channel_broadcast = true;
    } else if (ParseFlag(argv[i], "--burst-loss", &v)) {
      config.channel_burst_loss_rate = std::strtod(v, nullptr);
      config.channel_broadcast = true;
    } else if (ParseFlag(argv[i], "--burst-in", &v)) {
      config.channel_burst_enter_rate = std::strtod(v, nullptr);
      config.channel_broadcast = true;
    } else if (ParseFlag(argv[i], "--burst-out", &v)) {
      config.channel_burst_exit_rate = std::strtod(v, nullptr);
      config.channel_broadcast = true;
    } else if (ParseFlag(argv[i], "--hot-access", &v)) {
      hot_access = std::strtod(v, nullptr);
    } else if (ParseFlag(argv[i], "--update-scheme", &v)) {
      const StatusOr<UpdateScheme> scheme = ParseUpdateScheme(v);
      if (!scheme.ok()) {
        std::fprintf(stderr, "%s\n", scheme.status().ToString().c_str());
        return 2;
      }
      config.update_scheme = *scheme;
    } else if (ParseFlag(argv[i], "--update-workers", &v)) {
      config.update_workers = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--trace-out", &v)) {
      trace_out = v;
    } else if (ParseFlag(argv[i], "--trace-capacity", &v)) {
      config.trace_capacity = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--metrics-json", &v)) {
      metrics_json = v;
    } else if (ParseNetFlag(argv[i], &net, &config)) {
      // Networked-tier flag (--listen, --connect, --mcast, --cycles, ...):
      // parsed by the shared vocabulary in net/net_config.h. Shared sim
      // knobs are matched by the chain above first, so both tiers read them
      // with identical conversions.
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", argv[i]);
      return 2;
    }
  }
  // The hierarchical matrix validates raw absolute stamps (Validate rejects
  // the wire codec in hier mode), so make --matrix=hier usable directly.
  if (config.matrix_mode == MatrixMode::kHier) config.use_wire_codec = false;
  if (cache_cycles > 0) {
    config.enable_cache = true;
    config.cache_currency_bound = static_cast<SimTime>(
        cache_cycles * static_cast<double>(config.Geometry().cycle_bits));
  }
  if (hot_access >= 0) {
    config.client_hot_access_fraction = hot_access;
    config.server_hot_access_fraction = hot_access;
  }

  // Networked tier: hand the fully parsed SimConfig to the daemon or the
  // client runtime instead of the in-process DES. Same flags, same
  // conversions, real UDP sockets.
  if (!net.listen.empty() || !net.connect.empty()) {
    if (!net.listen.empty() && !net.connect.empty()) {
      std::fprintf(stderr, "--listen and --connect are mutually exclusive\n");
      return 2;
    }
    // sim_cli's own --trace-out/--trace-capacity were matched before
    // ParseNetFlag saw them; in net mode they mean the runtime's live
    // tracer, so forward them into the net config.
    if (!trace_out.empty()) net.trace_out = trace_out;
    if (config.trace_capacity > 0) {
      net.trace_capacity = static_cast<uint32_t>(config.trace_capacity);
    }
    Status status;
    std::string json;
    if (!net.listen.empty()) {
      net.expected_clients = config.num_clients;
      ServerReport report;
      status = RunServerDaemon(net, config, &report);
      if (status.ok()) json = report.ToJson();
    } else {
      ClientReport report;
      status = RunClientRuntime(net, config, &report);
      if (status.ok()) json = report.ToJson();
    }
    if (!status.ok()) {
      std::fprintf(stderr, "sim_cli: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("%s\n", json.c_str());
    if (!net.json_out.empty()) {
      const Status written = WriteTextFile(net.json_out, json + "\n");
      if (!written.ok()) {
        std::fprintf(stderr, "sim_cli: %s\n", written.ToString().c_str());
        return 1;
      }
    }
    return 0;
  }

  std::printf("config: %s\n", config.ToString().c_str());
  std::unique_ptr<Tracer> tracer;
  if (!trace_out.empty()) tracer = std::make_unique<Tracer>(config.trace_capacity);
  BroadcastSim sim(config);
  if (tracer) sim.set_tracer(tracer.get());
  auto summary = sim.Run();
  if (!summary.ok()) {
    std::fprintf(stderr, "error: %s\n", summary.status().ToString().c_str());
    return 1;
  }
  if (tracer) {
    const Status written = WriteTextFile(trace_out, ExportChromeTrace(*tracer));
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("trace: %s (%llu events recorded, %llu dropped)\n", trace_out.c_str(),
                static_cast<unsigned long long>(tracer->TotalRecorded()),
                static_cast<unsigned long long>(tracer->TotalDropped()));
  }
  if (!metrics_json.empty()) {
    const Status written = WriteTextFile(metrics_json, summary->ToJson() + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("metrics: %s\n", metrics_json.c_str());
  }
  std::printf("%s\n", summary->ToString().c_str());
  if (summary->client_update_commits + summary->client_update_rejects > 0) {
    std::printf("client updates: %llu committed, %llu rejected at validation\n",
                static_cast<unsigned long long>(summary->client_update_commits),
                static_cast<unsigned long long>(summary->client_update_rejects));
  }
  if (summary->cache_hits + summary->cache_misses > 0) {
    std::printf("cache: %llu hits / %llu lookups\n",
                static_cast<unsigned long long>(summary->cache_hits),
                static_cast<unsigned long long>(summary->cache_hits + summary->cache_misses));
  }
  if (summary->channel.frames_sent > 0) {
    const ChannelStats& ch = summary->channel;
    std::printf(
        "channel: %llu/%llu frames delivered (%llu dropped, %llu damaged, %llu rejected), "
        "%llu stalls, %llu loss-attributed aborts, %llu desyncs / %llu resyncs\n",
        static_cast<unsigned long long>(ch.frames_delivered),
        static_cast<unsigned long long>(ch.frames_sent),
        static_cast<unsigned long long>(ch.frames_dropped),
        static_cast<unsigned long long>(ch.frames_corrupted + ch.frames_truncated),
        static_cast<unsigned long long>(ch.frames_rejected),
        static_cast<unsigned long long>(ch.stalls),
        static_cast<unsigned long long>(ch.loss_attributed_aborts),
        static_cast<unsigned long long>(ch.tracker_desyncs),
        static_cast<unsigned long long>(ch.resyncs));
  }
  if (csv) {
    std::printf("csv,%s,%.6e,%.6e,%.4f,%llu,%llu\n",
                std::string(AlgorithmName(config.algorithm)).c_str(),
                summary->mean_response_time, summary->response_ci_half_width,
                summary->restart_ratio,
                static_cast<unsigned long long>(summary->measured_txns),
                static_cast<unsigned long long>(summary->cycles_elapsed));
  }
  return 0;
}
