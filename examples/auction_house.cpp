// Auction house: the motivating application from the paper's introduction.
//
// A small, hot database (one lot = current-bid, bid-count, closing-time
// entries) is broadcast to a very large audience; only a few participants
// bid (update transactions through the uplink), while everyone else watches
// with read-only transactions "off the air". This example runs the full
// simulator at auction-like contention and contrasts the algorithms, then
// zooms into one concrete watcher transaction to show WHY update
// consistency (APPROX) avoids the aborts serializability forces.

#include <cstdio>

#include "cc/approx.h"
#include "cc/criteria.h"
#include "history/history_parser.h"
#include "sim/broadcast_sim.h"

namespace {

using namespace bcc;

void RunAuctionSim() {
  std::printf("== auction floor: 40 lots x 3 fields, furious bidding ==\n");
  std::printf("%-14s %16s %10s %10s\n", "algorithm", "response (bits)", "restarts",
              "censored");
  for (Algorithm algorithm : kAllAlgorithms) {
    SimConfig config;
    config.algorithm = algorithm;
    config.num_objects = 120;          // 40 lots x 3 fields
    config.object_size_bits = 2048;    // small auction records
    config.client_txn_length = 6;      // watcher reads a lot's whole state + rivals
    config.server_txn_length = 4;      // a bid touches a few fields
    config.server_txn_interval = 80000;  // bids arrive briskly
    config.num_client_txns = 300;
    config.warmup_txns = 100;
    config.seed = 7;
    auto summary = RunSimulation(config);
    if (!summary.ok()) {
      std::fprintf(stderr, "simulation failed: %s\n", summary.status().ToString().c_str());
      return;
    }
    std::printf("%-14s %16.4e %10.3f %10llu\n",
                std::string(AlgorithmName(algorithm)).c_str(), summary->mean_response_time,
                summary->restart_ratio,
                static_cast<unsigned long long>(summary->censored_txns));
  }
  std::printf("\n");
}

void ExplainWhy() {
  // Two watchers each glance at two different lots while two independent
  // bids land — the paper's Example 1 in auction clothes.
  const char* text =
      "r1(lotA) w2(lotA) c2 r3(lotA) r3(lotB) w4(lotB) c4 r1(lotB) c1 c3";
  auto parsed = ParseHistory(text);
  if (!parsed.ok()) return;
  const History& h = parsed->history;
  std::printf("== why serializability over-aborts here ==\n");
  std::printf("watchers t1, t3; bids t2 (lotA), t4 (lotB):\n  %s\n", parsed->ToString().c_str());
  auto report = SweepLattice(h);
  if (!report.ok()) return;
  std::printf("  serializable?        %s  -> Datacycle must abort a watcher\n",
              report->view_serializable ? "yes" : "no");
  std::printf("  update consistent?   %s  -> F-Matrix commits both watchers\n",
              report->legal ? "yes" : "no");
  std::printf(
      "  each watcher saw a consistent auction state; they merely disagree\n"
      "  on the relative order of two UNRELATED bids.\n\n");
}

}  // namespace

int main() {
  RunAuctionSim();
  ExplainWhy();
  return 0;
}
