// History analyzer: check any transaction history against the paper's
// correctness-criteria lattice (Figure 1).
//
//   $ ./examples/history_analyzer "r1(IBM) w2(IBM) c2 r3(IBM) r3(Sun) w4(Sun) c4 r1(Sun) c1 c3"
//
// With no argument, it analyzes the paper's worked examples. Notation:
// r<txn>(<object>), w<txn>(<object>), c<txn> (commit), a<txn> (abort).

#include <cstdio>
#include <string>

#include "cc/approx.h"
#include "cc/criteria.h"
#include "cc/update_consistency.h"
#include "history/history_parser.h"

namespace {

using namespace bcc;

int Analyze(const std::string& text) {
  auto parsed = ParseHistory(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const History& h = parsed->history;
  std::printf("history: %s\n", parsed->ToString().c_str());

  auto report = SweepLattice(h);
  if (!report.ok()) {
    std::fprintf(stderr, "analysis error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("  conflict serializable:    %s\n", report->conflict_serializable ? "yes" : "no");
  std::printf("  view serializable:        %s\n", report->view_serializable ? "yes" : "no");
  std::printf("  APPROX accepts:           %s\n", report->approx_accepted ? "yes" : "no");
  std::printf("  update consistent (legal): %s\n", report->legal ? "yes" : "no");

  if (!report->approx_accepted) {
    std::printf("  APPROX says: %s\n", CheckApprox(h).reason.c_str());
  }
  if (!report->legal) {
    auto legality = CheckLegality(h);
    if (legality.ok()) std::printf("  legality says: %s\n", legality->reason.c_str());
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) return Analyze(argv[1]);

  std::printf("No history given; analyzing the paper's worked examples.\n\n");
  int rc = 0;
  // Example 1 (history 1.1): not serializable, yet update consistent —
  // the two read-only transactions may see t2 and t4 in different orders.
  rc |= Analyze("r1(IBM) w2(IBM) c2 r3(IBM) r3(Sun) w4(Sun) c4 r1(Sun) c1 c3");
  // Example 2 (history 2.1): t1 is an update transaction; still legal.
  rc |= Analyze("r1(IBM) w2(IBM) c2 r3(IBM) r3(Sun) c3 w4(Sun) c4 r1(Sun) w1(DEC) c1");
  // Appendix C: legal but rejected by APPROX (proper inclusion, Theorem 6).
  rc |= Analyze(
      "r1(ob1) r2(ob2) w1(ob3) w2(ob3) w2(ob4) w1(ob4) w3(ob3) w3(ob4) c1 c2 c3");
  // A genuinely inconsistent read-only view: rejected by everything.
  rc |= Analyze("r3(x) w1(x) c1 r2(x) w2(y) c2 r3(y) c3");
  return rc;
}
