// Quickstart: run the paper's default experiment (Table 1) for each of the
// four concurrency-control algorithms and print the steady-state metrics.
//
//   $ ./examples/quickstart
//
// This is the ten-line version of the Section 4 evaluation: one call to
// RunSimulation per algorithm. See stock_ticker.cpp and auction_house.cpp
// for driving the server/client protocol objects directly.

#include <cstdio>

#include "sim/broadcast_sim.h"

int main() {
  using namespace bcc;

  std::printf("Broadcast-disk concurrency control (SIGMOD '99) — Table 1 defaults\n");
  std::printf("%-14s %16s %12s %10s %10s\n", "algorithm", "response (bits)", "95%% CI",
              "restarts", "cycles");

  for (Algorithm algorithm : kAllAlgorithms) {
    SimConfig config;  // Table 1 defaults: 300 objects, 1 KB, 4-read clients
    config.algorithm = algorithm;
    config.num_client_txns = 300;  // quick demo run (the paper uses 1000)
    config.warmup_txns = 100;

    auto summary = RunSimulation(config);
    if (!summary.ok()) {
      std::fprintf(stderr, "simulation failed: %s\n", summary.status().ToString().c_str());
      return 1;
    }
    std::printf("%-14s %16.4e %12.2e %10.3f %10llu\n",
                std::string(AlgorithmName(algorithm)).c_str(), summary->mean_response_time,
                summary->response_ci_half_width, summary->restart_ratio,
                static_cast<unsigned long long>(summary->cycles_elapsed));
  }

  std::printf(
      "\nF-Matrix pays ~23%% of each cycle for control information yet wins on\n"
      "response time: its weaker read condition (mutual consistency via APPROX\n"
      "instead of serializability) nearly eliminates client aborts.\n");
  return 0;
}
