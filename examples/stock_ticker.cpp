// Stock ticker: the paper's Section 5 scenario, driven against the public
// server/client API directly (no simulator).
//
// A server broadcasts prices of a handful of instruments; a mobile client
// reads a "portfolio view" (several instruments) entirely off the air using
// the F-Matrix protocol, and a broker submits an update transaction (a
// trade) over the low-bandwidth uplink, validated optimistically at the
// server. Shows: per-cycle snapshots, read-condition aborts, and uplink
// commit/reject.

#include <cstdio>
#include <string>
#include <vector>

#include "client/read_txn.h"
#include "client/update_txn.h"
#include "server/broadcast_server.h"
#include "server/validator.h"

namespace {

using namespace bcc;

const char* kNames[] = {"IBM", "Sun", "DEC", "HP", "Intel"};
constexpr uint32_t kInstruments = 5;

void PrintBoard(const CycleSnapshot& snap) {
  std::printf("-- cycle %llu board --\n", static_cast<unsigned long long>(snap.cycle));
  for (ObjectId ob = 0; ob < kInstruments; ++ob) {
    std::printf("  %-6s v%llu (writer t%u, committed cycle %llu)\n", kNames[ob],
                static_cast<unsigned long long>(snap.values[ob].value), snap.values[ob].writer,
                static_cast<unsigned long long>(snap.values[ob].cycle));
  }
}

}  // namespace

int main() {
  // Server side: serial update-transaction manager + broadcast front end.
  TxnManagerOptions options;
  options.record_history = true;
  ServerTxnManager manager(kInstruments, options);
  UpdateValidator validator(&manager);
  BroadcastServer server(kInstruments,
                         ComputeGeometry(Algorithm::kFMatrix, kInstruments, 8 * 1024, 8));

  // Cycle 1: initial prices on the air.
  server.BeginCycle(1, 0, manager);
  PrintBoard(server.snapshot());

  // A mobile client starts a read-only "portfolio" transaction and reads
  // IBM off the air. No lock, no uplink message.
  ReadOnlyTxnProtocol portfolio(Algorithm::kFMatrix);
  auto ibm = portfolio.Read(server.snapshot(), 0);
  std::printf("client reads IBM: %s\n", ibm.ok() ? "ok" : ibm.status().ToString().c_str());

  // Meanwhile the market moves: two trades commit at the server during
  // cycle 1 (they will surface at the start of cycle 2).
  manager.ExecuteAndCommit(ServerTxn{1, {}, {1}}, 1);        // Sun trade
  manager.ExecuteAndCommit(ServerTxn{2, {0}, {2}}, 1);       // DEC repriced off IBM

  server.BeginCycle(2, server.CycleEndTime(), manager);
  PrintBoard(server.snapshot());

  // The portfolio transaction keeps reading in cycle 2. Sun's new value
  // does not depend on anything that invalidates the IBM read: F-Matrix
  // lets it through ("off the air" mutual consistency).
  auto sun = portfolio.Read(server.snapshot(), 1);
  std::printf("client reads Sun in cycle 2: %s\n",
              sun.ok() ? "ok (update consistency, no abort)" : sun.status().ToString().c_str());
  std::printf("portfolio committed with %zu reads\n\n", portfolio.Commit());

  // Under Datacycle (serializability), the same read sequence would abort
  // if IBM itself had been overwritten. Demonstrate with a fresh txn:
  ReadOnlyTxnProtocol strict(Algorithm::kDatacycle);
  (void)strict.Read(server.snapshot(), 2);                   // reads DEC at cycle 2
  manager.ExecuteAndCommit(ServerTxn{3, {}, {2}}, 2);        // DEC overwritten
  server.BeginCycle(3, server.CycleEndTime(), manager);
  auto hp = strict.Read(server.snapshot(), 3);
  std::printf("Datacycle txn reading HP after DEC changed: %s\n",
              hp.ok() ? "ok" : hp.status().ToString().c_str());

  // A broker's update transaction: read Intel off the air, place a trade
  // (write Intel), ship read records + writes over the uplink.
  UpdateTxnBuffer trade(/*id=*/100, Algorithm::kFMatrix);
  auto intel = trade.Read(server.snapshot(), 4);
  std::printf("\nbroker reads Intel: %s\n", intel.ok() ? "ok" : "abort");
  trade.Write(4);
  auto commit = validator.ValidateAndCommit(trade.BuildCommitRequest(),
                                            server.snapshot().cycle);
  std::printf("broker trade commit: %s\n",
              commit.ok() ? "accepted by server validator" : commit.status().ToString().c_str());

  // A second broker raced and loses: its Intel read is now stale.
  UpdateTxnBuffer late(/*id=*/101, Algorithm::kFMatrix);
  server.BeginCycle(4, server.CycleEndTime(), manager);
  (void)late.Read(server.snapshot(), 4);
  manager.ExecuteAndCommit(ServerTxn{4, {}, {4}}, 4);  // Intel moves again
  late.Write(4);
  auto late_commit = validator.ValidateAndCommit(late.BuildCommitRequest(), 5);
  std::printf("late broker trade commit: %s\n",
              late_commit.ok() ? "accepted" : late_commit.status().ToString().c_str());

  std::printf("\nserver-side committed update history:\n  %s\n",
              manager.recorded_history().ToString().c_str());
  return 0;
}
