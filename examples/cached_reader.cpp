// Cached reader: the Section 3.3 weak-currency extension.
//
// A client that tolerates data up to T time units old can serve repeat
// reads from a local quasi-cache — validated for mutual consistency against
// the F-Matrix columns stored with each entry — and skip the wait for the
// object's next broadcast slot. This example sweeps T and reports the
// latency/hit-rate tradeoff, then shows the per-object currency tailoring.

#include <cstdio>

#include "client/cache.h"
#include "sim/broadcast_sim.h"

namespace {

using namespace bcc;

void SweepCurrencyBound() {
  std::printf("== latency vs currency bound T (F-Matrix, 50 hot objects) ==\n");
  std::printf("%-18s %16s %10s %12s\n", "T (cycles)", "response (bits)", "restarts",
              "cache hit %");
  for (double cycles_of_currency : {0.0, 1.0, 4.0, 16.0, 64.0}) {
    SimConfig config;
    config.algorithm = Algorithm::kFMatrix;
    config.num_objects = 50;
    config.num_client_txns = 300;
    config.warmup_txns = 100;
    config.seed = 11;
    if (cycles_of_currency > 0) {
      config.enable_cache = true;
      config.cache_currency_bound = static_cast<SimTime>(
          cycles_of_currency * static_cast<double>(config.Geometry().cycle_bits));
    }
    auto summary = RunSimulation(config);
    if (!summary.ok()) {
      std::fprintf(stderr, "simulation failed: %s\n", summary.status().ToString().c_str());
      return;
    }
    const uint64_t lookups = summary->cache_hits + summary->cache_misses;
    std::printf("%-18.0f %16.4e %10.3f %11.1f%%\n", cycles_of_currency,
                summary->mean_response_time, summary->restart_ratio,
                lookups ? 100.0 * static_cast<double>(summary->cache_hits) /
                              static_cast<double>(lookups)
                        : 0.0);
  }
  std::printf("(T = 0 disables the cache; every read waits for its broadcast slot)\n\n");
}

void PerObjectBounds() {
  std::printf("== per-object currency tailoring (purely local, no uplink) ==\n");
  QuasiCache cache(/*capacity=*/0, /*default_currency_bound=*/1000);
  cache.SetCurrencyBound(/*ob=*/0, /*bound=*/50);  // a fast-moving quote
  CacheEntry entry;
  entry.version = ObjectVersion{1, 1, 1};
  entry.cycle = 1;
  entry.cached_time = 0;
  cache.Insert(0, entry);
  cache.Insert(1, entry);
  std::printf("  at t=100:  ob0 (T=50)  -> %s\n",
              cache.Lookup(0, 100) ? "HIT" : "stale, dropped locally");
  std::printf("  at t=100:  ob1 (T=1000) -> %s\n",
              cache.Lookup(1, 100) ? "HIT" : "stale, dropped locally");
  std::printf("  clients with different currency needs coexist with zero extra "
              "communication.\n");
}

}  // namespace

int main() {
  SweepCurrencyBound();
  PerObjectBounds();
  return 0;
}
