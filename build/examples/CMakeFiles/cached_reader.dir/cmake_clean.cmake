file(REMOVE_RECURSE
  "CMakeFiles/cached_reader.dir/cached_reader.cpp.o"
  "CMakeFiles/cached_reader.dir/cached_reader.cpp.o.d"
  "cached_reader"
  "cached_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cached_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
