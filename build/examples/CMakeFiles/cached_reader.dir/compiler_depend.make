# Empty compiler generated dependencies file for cached_reader.
# This may be replaced when dependencies are built.
