
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/sim_cli.cpp" "examples/CMakeFiles/sim_cli.dir/sim_cli.cpp.o" "gcc" "examples/CMakeFiles/sim_cli.dir/sim_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/bcc_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bcc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/bcc_client.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/bcc_server.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/bcc_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/history/CMakeFiles/bcc_history.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/bcc_des.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
