file(REMOVE_RECURSE
  "CMakeFiles/bcc_common.dir/bitstream.cc.o"
  "CMakeFiles/bcc_common.dir/bitstream.cc.o.d"
  "CMakeFiles/bcc_common.dir/cycle_stamp.cc.o"
  "CMakeFiles/bcc_common.dir/cycle_stamp.cc.o.d"
  "CMakeFiles/bcc_common.dir/format.cc.o"
  "CMakeFiles/bcc_common.dir/format.cc.o.d"
  "CMakeFiles/bcc_common.dir/rng.cc.o"
  "CMakeFiles/bcc_common.dir/rng.cc.o.d"
  "CMakeFiles/bcc_common.dir/stats.cc.o"
  "CMakeFiles/bcc_common.dir/stats.cc.o.d"
  "CMakeFiles/bcc_common.dir/status.cc.o"
  "CMakeFiles/bcc_common.dir/status.cc.o.d"
  "libbcc_common.a"
  "libbcc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
