# Empty dependencies file for bcc_cc.
# This may be replaced when dependencies are built.
