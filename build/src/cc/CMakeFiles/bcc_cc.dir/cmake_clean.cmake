file(REMOVE_RECURSE
  "CMakeFiles/bcc_cc.dir/approx.cc.o"
  "CMakeFiles/bcc_cc.dir/approx.cc.o.d"
  "CMakeFiles/bcc_cc.dir/cnf.cc.o"
  "CMakeFiles/bcc_cc.dir/cnf.cc.o.d"
  "CMakeFiles/bcc_cc.dir/conflict_serializability.cc.o"
  "CMakeFiles/bcc_cc.dir/conflict_serializability.cc.o.d"
  "CMakeFiles/bcc_cc.dir/criteria.cc.o"
  "CMakeFiles/bcc_cc.dir/criteria.cc.o.d"
  "CMakeFiles/bcc_cc.dir/sat_reduction.cc.o"
  "CMakeFiles/bcc_cc.dir/sat_reduction.cc.o.d"
  "CMakeFiles/bcc_cc.dir/update_consistency.cc.o"
  "CMakeFiles/bcc_cc.dir/update_consistency.cc.o.d"
  "CMakeFiles/bcc_cc.dir/view_serializability.cc.o"
  "CMakeFiles/bcc_cc.dir/view_serializability.cc.o.d"
  "libbcc_cc.a"
  "libbcc_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
