file(REMOVE_RECURSE
  "libbcc_cc.a"
)
