
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/approx.cc" "src/cc/CMakeFiles/bcc_cc.dir/approx.cc.o" "gcc" "src/cc/CMakeFiles/bcc_cc.dir/approx.cc.o.d"
  "/root/repo/src/cc/cnf.cc" "src/cc/CMakeFiles/bcc_cc.dir/cnf.cc.o" "gcc" "src/cc/CMakeFiles/bcc_cc.dir/cnf.cc.o.d"
  "/root/repo/src/cc/conflict_serializability.cc" "src/cc/CMakeFiles/bcc_cc.dir/conflict_serializability.cc.o" "gcc" "src/cc/CMakeFiles/bcc_cc.dir/conflict_serializability.cc.o.d"
  "/root/repo/src/cc/criteria.cc" "src/cc/CMakeFiles/bcc_cc.dir/criteria.cc.o" "gcc" "src/cc/CMakeFiles/bcc_cc.dir/criteria.cc.o.d"
  "/root/repo/src/cc/sat_reduction.cc" "src/cc/CMakeFiles/bcc_cc.dir/sat_reduction.cc.o" "gcc" "src/cc/CMakeFiles/bcc_cc.dir/sat_reduction.cc.o.d"
  "/root/repo/src/cc/update_consistency.cc" "src/cc/CMakeFiles/bcc_cc.dir/update_consistency.cc.o" "gcc" "src/cc/CMakeFiles/bcc_cc.dir/update_consistency.cc.o.d"
  "/root/repo/src/cc/view_serializability.cc" "src/cc/CMakeFiles/bcc_cc.dir/view_serializability.cc.o" "gcc" "src/cc/CMakeFiles/bcc_cc.dir/view_serializability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bcc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/history/CMakeFiles/bcc_history.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bcc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
