file(REMOVE_RECURSE
  "CMakeFiles/bcc_des.dir/event_queue.cc.o"
  "CMakeFiles/bcc_des.dir/event_queue.cc.o.d"
  "libbcc_des.a"
  "libbcc_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
