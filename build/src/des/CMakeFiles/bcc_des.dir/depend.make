# Empty dependencies file for bcc_des.
# This may be replaced when dependencies are built.
