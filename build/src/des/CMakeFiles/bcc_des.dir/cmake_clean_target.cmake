file(REMOVE_RECURSE
  "libbcc_des.a"
)
