
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/broadcast_server.cc" "src/server/CMakeFiles/bcc_server.dir/broadcast_server.cc.o" "gcc" "src/server/CMakeFiles/bcc_server.dir/broadcast_server.cc.o.d"
  "/root/repo/src/server/schedule.cc" "src/server/CMakeFiles/bcc_server.dir/schedule.cc.o" "gcc" "src/server/CMakeFiles/bcc_server.dir/schedule.cc.o.d"
  "/root/repo/src/server/store.cc" "src/server/CMakeFiles/bcc_server.dir/store.cc.o" "gcc" "src/server/CMakeFiles/bcc_server.dir/store.cc.o.d"
  "/root/repo/src/server/txn_manager.cc" "src/server/CMakeFiles/bcc_server.dir/txn_manager.cc.o" "gcc" "src/server/CMakeFiles/bcc_server.dir/txn_manager.cc.o.d"
  "/root/repo/src/server/validator.cc" "src/server/CMakeFiles/bcc_server.dir/validator.cc.o" "gcc" "src/server/CMakeFiles/bcc_server.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bcc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/history/CMakeFiles/bcc_history.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/bcc_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/bcc_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
