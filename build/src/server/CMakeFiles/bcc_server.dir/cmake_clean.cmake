file(REMOVE_RECURSE
  "CMakeFiles/bcc_server.dir/broadcast_server.cc.o"
  "CMakeFiles/bcc_server.dir/broadcast_server.cc.o.d"
  "CMakeFiles/bcc_server.dir/schedule.cc.o"
  "CMakeFiles/bcc_server.dir/schedule.cc.o.d"
  "CMakeFiles/bcc_server.dir/store.cc.o"
  "CMakeFiles/bcc_server.dir/store.cc.o.d"
  "CMakeFiles/bcc_server.dir/txn_manager.cc.o"
  "CMakeFiles/bcc_server.dir/txn_manager.cc.o.d"
  "CMakeFiles/bcc_server.dir/validator.cc.o"
  "CMakeFiles/bcc_server.dir/validator.cc.o.d"
  "libbcc_server.a"
  "libbcc_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
