file(REMOVE_RECURSE
  "libbcc_server.a"
)
