# Empty compiler generated dependencies file for bcc_server.
# This may be replaced when dependencies are built.
