file(REMOVE_RECURSE
  "CMakeFiles/bcc_sim.dir/broadcast_sim.cc.o"
  "CMakeFiles/bcc_sim.dir/broadcast_sim.cc.o.d"
  "CMakeFiles/bcc_sim.dir/config.cc.o"
  "CMakeFiles/bcc_sim.dir/config.cc.o.d"
  "CMakeFiles/bcc_sim.dir/experiment.cc.o"
  "CMakeFiles/bcc_sim.dir/experiment.cc.o.d"
  "CMakeFiles/bcc_sim.dir/metrics.cc.o"
  "CMakeFiles/bcc_sim.dir/metrics.cc.o.d"
  "CMakeFiles/bcc_sim.dir/workload.cc.o"
  "CMakeFiles/bcc_sim.dir/workload.cc.o.d"
  "libbcc_sim.a"
  "libbcc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
