# Empty dependencies file for bcc_sim.
# This may be replaced when dependencies are built.
