# Empty compiler generated dependencies file for bcc_matrix.
# This may be replaced when dependencies are built.
