file(REMOVE_RECURSE
  "CMakeFiles/bcc_matrix.dir/f_matrix.cc.o"
  "CMakeFiles/bcc_matrix.dir/f_matrix.cc.o.d"
  "CMakeFiles/bcc_matrix.dir/group_matrix.cc.o"
  "CMakeFiles/bcc_matrix.dir/group_matrix.cc.o.d"
  "CMakeFiles/bcc_matrix.dir/mc_vector.cc.o"
  "CMakeFiles/bcc_matrix.dir/mc_vector.cc.o.d"
  "CMakeFiles/bcc_matrix.dir/wire.cc.o"
  "CMakeFiles/bcc_matrix.dir/wire.cc.o.d"
  "CMakeFiles/bcc_matrix.dir/worst_case.cc.o"
  "CMakeFiles/bcc_matrix.dir/worst_case.cc.o.d"
  "libbcc_matrix.a"
  "libbcc_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
