
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/f_matrix.cc" "src/matrix/CMakeFiles/bcc_matrix.dir/f_matrix.cc.o" "gcc" "src/matrix/CMakeFiles/bcc_matrix.dir/f_matrix.cc.o.d"
  "/root/repo/src/matrix/group_matrix.cc" "src/matrix/CMakeFiles/bcc_matrix.dir/group_matrix.cc.o" "gcc" "src/matrix/CMakeFiles/bcc_matrix.dir/group_matrix.cc.o.d"
  "/root/repo/src/matrix/mc_vector.cc" "src/matrix/CMakeFiles/bcc_matrix.dir/mc_vector.cc.o" "gcc" "src/matrix/CMakeFiles/bcc_matrix.dir/mc_vector.cc.o.d"
  "/root/repo/src/matrix/wire.cc" "src/matrix/CMakeFiles/bcc_matrix.dir/wire.cc.o" "gcc" "src/matrix/CMakeFiles/bcc_matrix.dir/wire.cc.o.d"
  "/root/repo/src/matrix/worst_case.cc" "src/matrix/CMakeFiles/bcc_matrix.dir/worst_case.cc.o" "gcc" "src/matrix/CMakeFiles/bcc_matrix.dir/worst_case.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bcc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/history/CMakeFiles/bcc_history.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
