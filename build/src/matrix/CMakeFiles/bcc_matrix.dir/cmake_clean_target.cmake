file(REMOVE_RECURSE
  "libbcc_matrix.a"
)
