file(REMOVE_RECURSE
  "CMakeFiles/bcc_history.dir/history.cc.o"
  "CMakeFiles/bcc_history.dir/history.cc.o.d"
  "CMakeFiles/bcc_history.dir/history_parser.cc.o"
  "CMakeFiles/bcc_history.dir/history_parser.cc.o.d"
  "CMakeFiles/bcc_history.dir/operation.cc.o"
  "CMakeFiles/bcc_history.dir/operation.cc.o.d"
  "CMakeFiles/bcc_history.dir/random_history.cc.o"
  "CMakeFiles/bcc_history.dir/random_history.cc.o.d"
  "libbcc_history.a"
  "libbcc_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
