# Empty compiler generated dependencies file for bcc_history.
# This may be replaced when dependencies are built.
