
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/history/history.cc" "src/history/CMakeFiles/bcc_history.dir/history.cc.o" "gcc" "src/history/CMakeFiles/bcc_history.dir/history.cc.o.d"
  "/root/repo/src/history/history_parser.cc" "src/history/CMakeFiles/bcc_history.dir/history_parser.cc.o" "gcc" "src/history/CMakeFiles/bcc_history.dir/history_parser.cc.o.d"
  "/root/repo/src/history/operation.cc" "src/history/CMakeFiles/bcc_history.dir/operation.cc.o" "gcc" "src/history/CMakeFiles/bcc_history.dir/operation.cc.o.d"
  "/root/repo/src/history/random_history.cc" "src/history/CMakeFiles/bcc_history.dir/random_history.cc.o" "gcc" "src/history/CMakeFiles/bcc_history.dir/random_history.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
