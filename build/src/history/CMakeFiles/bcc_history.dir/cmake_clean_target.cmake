file(REMOVE_RECURSE
  "libbcc_history.a"
)
