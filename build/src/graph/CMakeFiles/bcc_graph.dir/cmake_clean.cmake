file(REMOVE_RECURSE
  "CMakeFiles/bcc_graph.dir/digraph.cc.o"
  "CMakeFiles/bcc_graph.dir/digraph.cc.o.d"
  "CMakeFiles/bcc_graph.dir/polygraph.cc.o"
  "CMakeFiles/bcc_graph.dir/polygraph.cc.o.d"
  "libbcc_graph.a"
  "libbcc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
