file(REMOVE_RECURSE
  "libbcc_graph.a"
)
