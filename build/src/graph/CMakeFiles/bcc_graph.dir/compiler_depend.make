# Empty compiler generated dependencies file for bcc_graph.
# This may be replaced when dependencies are built.
