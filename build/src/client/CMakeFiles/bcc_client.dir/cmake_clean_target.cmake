file(REMOVE_RECURSE
  "libbcc_client.a"
)
