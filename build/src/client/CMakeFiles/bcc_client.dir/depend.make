# Empty dependencies file for bcc_client.
# This may be replaced when dependencies are built.
