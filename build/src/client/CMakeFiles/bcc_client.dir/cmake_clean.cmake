file(REMOVE_RECURSE
  "CMakeFiles/bcc_client.dir/cache.cc.o"
  "CMakeFiles/bcc_client.dir/cache.cc.o.d"
  "CMakeFiles/bcc_client.dir/read_txn.cc.o"
  "CMakeFiles/bcc_client.dir/read_txn.cc.o.d"
  "CMakeFiles/bcc_client.dir/update_txn.cc.o"
  "CMakeFiles/bcc_client.dir/update_txn.cc.o.d"
  "libbcc_client.a"
  "libbcc_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
