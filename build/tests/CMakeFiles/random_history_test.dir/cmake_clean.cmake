file(REMOVE_RECURSE
  "CMakeFiles/random_history_test.dir/random_history_test.cc.o"
  "CMakeFiles/random_history_test.dir/random_history_test.cc.o.d"
  "random_history_test"
  "random_history_test.pdb"
  "random_history_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
