# Empty compiler generated dependencies file for multidisk_sim_test.
# This may be replaced when dependencies are built.
