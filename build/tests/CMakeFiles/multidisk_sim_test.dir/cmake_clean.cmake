file(REMOVE_RECURSE
  "CMakeFiles/multidisk_sim_test.dir/multidisk_sim_test.cc.o"
  "CMakeFiles/multidisk_sim_test.dir/multidisk_sim_test.cc.o.d"
  "multidisk_sim_test"
  "multidisk_sim_test.pdb"
  "multidisk_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidisk_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
