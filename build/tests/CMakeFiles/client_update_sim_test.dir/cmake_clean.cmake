file(REMOVE_RECURSE
  "CMakeFiles/client_update_sim_test.dir/client_update_sim_test.cc.o"
  "CMakeFiles/client_update_sim_test.dir/client_update_sim_test.cc.o.d"
  "client_update_sim_test"
  "client_update_sim_test.pdb"
  "client_update_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_update_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
