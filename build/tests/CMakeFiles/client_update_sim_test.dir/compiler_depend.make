# Empty compiler generated dependencies file for client_update_sim_test.
# This may be replaced when dependencies are built.
