# Empty dependencies file for sim_oracle_test.
# This may be replaced when dependencies are built.
