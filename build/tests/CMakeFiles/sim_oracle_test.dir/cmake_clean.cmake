file(REMOVE_RECURSE
  "CMakeFiles/sim_oracle_test.dir/sim_oracle_test.cc.o"
  "CMakeFiles/sim_oracle_test.dir/sim_oracle_test.cc.o.d"
  "sim_oracle_test"
  "sim_oracle_test.pdb"
  "sim_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
