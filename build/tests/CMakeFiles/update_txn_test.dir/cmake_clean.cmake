file(REMOVE_RECURSE
  "CMakeFiles/update_txn_test.dir/update_txn_test.cc.o"
  "CMakeFiles/update_txn_test.dir/update_txn_test.cc.o.d"
  "update_txn_test"
  "update_txn_test.pdb"
  "update_txn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_txn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
