# Empty dependencies file for polygraph_test.
# This may be replaced when dependencies are built.
