file(REMOVE_RECURSE
  "CMakeFiles/polygraph_test.dir/polygraph_test.cc.o"
  "CMakeFiles/polygraph_test.dir/polygraph_test.cc.o.d"
  "polygraph_test"
  "polygraph_test.pdb"
  "polygraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polygraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
