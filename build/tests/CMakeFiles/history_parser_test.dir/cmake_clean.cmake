file(REMOVE_RECURSE
  "CMakeFiles/history_parser_test.dir/history_parser_test.cc.o"
  "CMakeFiles/history_parser_test.dir/history_parser_test.cc.o.d"
  "history_parser_test"
  "history_parser_test.pdb"
  "history_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
