# Empty compiler generated dependencies file for worst_case_test.
# This may be replaced when dependencies are built.
