file(REMOVE_RECURSE
  "CMakeFiles/criteria_property_test.dir/criteria_property_test.cc.o"
  "CMakeFiles/criteria_property_test.dir/criteria_property_test.cc.o.d"
  "criteria_property_test"
  "criteria_property_test.pdb"
  "criteria_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/criteria_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
