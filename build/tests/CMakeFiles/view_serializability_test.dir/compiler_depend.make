# Empty compiler generated dependencies file for view_serializability_test.
# This may be replaced when dependencies are built.
