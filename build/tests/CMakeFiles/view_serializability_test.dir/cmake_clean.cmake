file(REMOVE_RECURSE
  "CMakeFiles/view_serializability_test.dir/view_serializability_test.cc.o"
  "CMakeFiles/view_serializability_test.dir/view_serializability_test.cc.o.d"
  "view_serializability_test"
  "view_serializability_test.pdb"
  "view_serializability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_serializability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
