# Empty dependencies file for mc_vector_test.
# This may be replaced when dependencies are built.
