file(REMOVE_RECURSE
  "CMakeFiles/mc_vector_test.dir/mc_vector_test.cc.o"
  "CMakeFiles/mc_vector_test.dir/mc_vector_test.cc.o.d"
  "mc_vector_test"
  "mc_vector_test.pdb"
  "mc_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
