# Empty compiler generated dependencies file for conflict_serializability_test.
# This may be replaced when dependencies are built.
