file(REMOVE_RECURSE
  "CMakeFiles/conflict_serializability_test.dir/conflict_serializability_test.cc.o"
  "CMakeFiles/conflict_serializability_test.dir/conflict_serializability_test.cc.o.d"
  "conflict_serializability_test"
  "conflict_serializability_test.pdb"
  "conflict_serializability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_serializability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
