file(REMOVE_RECURSE
  "CMakeFiles/read_txn_test.dir/read_txn_test.cc.o"
  "CMakeFiles/read_txn_test.dir/read_txn_test.cc.o.d"
  "read_txn_test"
  "read_txn_test.pdb"
  "read_txn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_txn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
