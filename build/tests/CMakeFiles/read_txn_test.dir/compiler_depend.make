# Empty compiler generated dependencies file for read_txn_test.
# This may be replaced when dependencies are built.
