file(REMOVE_RECURSE
  "CMakeFiles/cycle_stamp_test.dir/cycle_stamp_test.cc.o"
  "CMakeFiles/cycle_stamp_test.dir/cycle_stamp_test.cc.o.d"
  "cycle_stamp_test"
  "cycle_stamp_test.pdb"
  "cycle_stamp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycle_stamp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
