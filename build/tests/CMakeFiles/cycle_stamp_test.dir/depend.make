# Empty dependencies file for cycle_stamp_test.
# This may be replaced when dependencies are built.
