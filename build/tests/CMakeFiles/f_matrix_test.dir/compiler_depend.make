# Empty compiler generated dependencies file for f_matrix_test.
# This may be replaced when dependencies are built.
