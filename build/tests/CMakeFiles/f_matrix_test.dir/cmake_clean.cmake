file(REMOVE_RECURSE
  "CMakeFiles/f_matrix_test.dir/f_matrix_test.cc.o"
  "CMakeFiles/f_matrix_test.dir/f_matrix_test.cc.o.d"
  "f_matrix_test"
  "f_matrix_test.pdb"
  "f_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
