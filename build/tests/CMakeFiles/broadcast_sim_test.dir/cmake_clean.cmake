file(REMOVE_RECURSE
  "CMakeFiles/broadcast_sim_test.dir/broadcast_sim_test.cc.o"
  "CMakeFiles/broadcast_sim_test.dir/broadcast_sim_test.cc.o.d"
  "broadcast_sim_test"
  "broadcast_sim_test.pdb"
  "broadcast_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
