# Empty dependencies file for polygraph_fuzz_test.
# This may be replaced when dependencies are built.
