# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for polygraph_fuzz_test.
