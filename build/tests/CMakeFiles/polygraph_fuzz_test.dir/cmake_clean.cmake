file(REMOVE_RECURSE
  "CMakeFiles/polygraph_fuzz_test.dir/polygraph_fuzz_test.cc.o"
  "CMakeFiles/polygraph_fuzz_test.dir/polygraph_fuzz_test.cc.o.d"
  "polygraph_fuzz_test"
  "polygraph_fuzz_test.pdb"
  "polygraph_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polygraph_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
