file(REMOVE_RECURSE
  "CMakeFiles/update_consistency_test.dir/update_consistency_test.cc.o"
  "CMakeFiles/update_consistency_test.dir/update_consistency_test.cc.o.d"
  "update_consistency_test"
  "update_consistency_test.pdb"
  "update_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
