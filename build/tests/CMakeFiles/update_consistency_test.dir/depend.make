# Empty dependencies file for update_consistency_test.
# This may be replaced when dependencies are built.
