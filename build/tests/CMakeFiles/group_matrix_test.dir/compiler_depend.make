# Empty compiler generated dependencies file for group_matrix_test.
# This may be replaced when dependencies are built.
