file(REMOVE_RECURSE
  "CMakeFiles/group_matrix_test.dir/group_matrix_test.cc.o"
  "CMakeFiles/group_matrix_test.dir/group_matrix_test.cc.o.d"
  "group_matrix_test"
  "group_matrix_test.pdb"
  "group_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
