# Empty dependencies file for multiclient_sim_test.
# This may be replaced when dependencies are built.
