file(REMOVE_RECURSE
  "CMakeFiles/multiclient_sim_test.dir/multiclient_sim_test.cc.o"
  "CMakeFiles/multiclient_sim_test.dir/multiclient_sim_test.cc.o.d"
  "multiclient_sim_test"
  "multiclient_sim_test.pdb"
  "multiclient_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiclient_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
