# Empty compiler generated dependencies file for bench_micro_matrix.
# This may be replaced when dependencies are built.
