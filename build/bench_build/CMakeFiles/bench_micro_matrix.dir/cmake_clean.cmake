file(REMOVE_RECURSE
  "../bench/bench_micro_matrix"
  "../bench/bench_micro_matrix.pdb"
  "CMakeFiles/bench_micro_matrix.dir/bench_micro_matrix.cc.o"
  "CMakeFiles/bench_micro_matrix.dir/bench_micro_matrix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
