# Empty dependencies file for bench_fig4a_num_objects.
# This may be replaced when dependencies are built.
