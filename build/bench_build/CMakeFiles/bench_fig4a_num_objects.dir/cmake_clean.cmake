file(REMOVE_RECURSE
  "../bench/bench_fig4a_num_objects"
  "../bench/bench_fig4a_num_objects.pdb"
  "CMakeFiles/bench_fig4a_num_objects.dir/bench_fig4a_num_objects.cc.o"
  "CMakeFiles/bench_fig4a_num_objects.dir/bench_fig4a_num_objects.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a_num_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
