# Empty dependencies file for bench_fig3a_server_txn_length.
# This may be replaced when dependencies are built.
