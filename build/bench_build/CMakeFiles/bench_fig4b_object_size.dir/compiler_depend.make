# Empty compiler generated dependencies file for bench_fig4b_object_size.
# This may be replaced when dependencies are built.
