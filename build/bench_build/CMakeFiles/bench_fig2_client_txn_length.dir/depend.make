# Empty dependencies file for bench_fig2_client_txn_length.
# This may be replaced when dependencies are built.
