file(REMOVE_RECURSE
  "../bench/bench_ablation_group_spectrum"
  "../bench/bench_ablation_group_spectrum.pdb"
  "CMakeFiles/bench_ablation_group_spectrum.dir/bench_ablation_group_spectrum.cc.o"
  "CMakeFiles/bench_ablation_group_spectrum.dir/bench_ablation_group_spectrum.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_group_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
