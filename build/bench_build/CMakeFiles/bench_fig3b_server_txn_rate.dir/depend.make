# Empty dependencies file for bench_fig3b_server_txn_rate.
# This may be replaced when dependencies are built.
