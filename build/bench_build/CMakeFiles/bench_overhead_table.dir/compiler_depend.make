# Empty compiler generated dependencies file for bench_overhead_table.
# This may be replaced when dependencies are built.
