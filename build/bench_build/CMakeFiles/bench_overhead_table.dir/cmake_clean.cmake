file(REMOVE_RECURSE
  "../bench/bench_overhead_table"
  "../bench/bench_overhead_table.pdb"
  "CMakeFiles/bench_overhead_table.dir/bench_overhead_table.cc.o"
  "CMakeFiles/bench_overhead_table.dir/bench_overhead_table.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
