file(REMOVE_RECURSE
  "../bench/bench_ablation_multidisk"
  "../bench/bench_ablation_multidisk.pdb"
  "CMakeFiles/bench_ablation_multidisk.dir/bench_ablation_multidisk.cc.o"
  "CMakeFiles/bench_ablation_multidisk.dir/bench_ablation_multidisk.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multidisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
