# Empty dependencies file for bench_ablation_multidisk.
# This may be replaced when dependencies are built.
