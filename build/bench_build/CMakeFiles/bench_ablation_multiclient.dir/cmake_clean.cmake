file(REMOVE_RECURSE
  "../bench/bench_ablation_multiclient"
  "../bench/bench_ablation_multiclient.pdb"
  "CMakeFiles/bench_ablation_multiclient.dir/bench_ablation_multiclient.cc.o"
  "CMakeFiles/bench_ablation_multiclient.dir/bench_ablation_multiclient.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiclient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
