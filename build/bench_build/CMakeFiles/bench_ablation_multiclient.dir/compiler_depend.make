# Empty compiler generated dependencies file for bench_ablation_multiclient.
# This may be replaced when dependencies are built.
