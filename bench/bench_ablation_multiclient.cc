// Ablation: concurrent clients submitting update transactions. Read-only
// clients never interact — the paper's argument for simulating one client —
// but once a share of client transactions commit writes over the uplink,
// clients contend at the server's validator and through extra invalidations
// on the air. Sweeping the population shows how each algorithm's weaker
// read condition translates into multi-client throughput.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace bcc;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  ExperimentSpec spec;
  spec.title = "Ablation: concurrent clients (30% update transactions)";
  spec.x_label = "clients";
  spec.base = bench::BaseConfig(flags);
  spec.base.client_update_fraction = 0.3;
  spec.x_values = {1, 2, 4, 8, 16};
  spec.apply = [](SimConfig* c, double x) { c->num_clients = static_cast<uint32_t>(x); };
  return bench::RunAndPrint(spec, flags);
}
