// Concurrent-engine throughput harness: wall-clock scaling of the epoch
// engine over client thread counts, against the single-threaded DES running
// the identical seeded workload. Reports simulated cycles/s, client
// transaction completions/s and server commits/s of wall time.
//
// Flags: --quick (shorter runs), --csv, --seed=N (see bench_common.h).

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "sim/broadcast_sim.h"
#include "sim/concurrent_sim.h"

namespace bcc::bench {
namespace {

SimConfig EngineConfig(const BenchFlags& flags, uint32_t num_clients, uint64_t cycles) {
  SimConfig config;
  config.algorithm = Algorithm::kFMatrix;
  config.num_objects = 64;
  config.object_size_bits = 1024;
  config.client_txn_length = 4;
  config.server_txn_length = 8;
  config.server_txn_interval = 30000;
  config.mean_inter_op_delay = 4096;
  config.mean_inter_txn_delay = 8192;
  config.num_clients = num_clients;
  config.seed = flags.seed;
  config.stop_after_cycles = cycles;
  config.num_client_txns = 1u << 30;
  config.warmup_txns = 1;
  return config;
}

struct Row {
  const char* engine;
  uint32_t clients;
  double wall_s;
  uint64_t cycles;
  uint64_t completed;
  uint64_t commits;
};

void Print(const Row& r, bool csv) {
  if (csv) {
    std::printf("csv,%s,%u,%.6f,%llu,%llu,%llu\n", r.engine, r.clients, r.wall_s,
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.commits));
    return;
  }
  std::printf("%-12s %8u %10.3f %12.0f %12.0f %12.0f\n", r.engine, r.clients, r.wall_s,
              static_cast<double>(r.cycles) / r.wall_s,
              static_cast<double>(r.completed) / r.wall_s,
              static_cast<double>(r.commits) / r.wall_s);
}

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  const uint64_t cycles = flags.quick ? 200 : 2000;

  std::printf("%-12s %8s %10s %12s %12s %12s\n", "engine", "clients", "wall_s", "cycles/s",
              "cli_txn/s", "commits/s");
  for (const uint32_t clients : {1u, 2u, 4u, 8u}) {
    const SimConfig config = EngineConfig(flags, clients, cycles);
    {
      const auto t0 = std::chrono::steady_clock::now();
      BroadcastSim sim(config);
      const auto summary = sim.Run();
      const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - t0;
      if (!summary.ok()) {
        std::fprintf(stderr, "sequential run failed: %s\n",
                     summary.status().ToString().c_str());
        return 1;
      }
      Print({"sequential", clients, wall.count(), summary->cycles_elapsed,
             summary->total_txns, summary->server_commits},
            flags.csv);
    }
    {
      const auto t0 = std::chrono::steady_clock::now();
      ConcurrentSim sim(config);
      const auto summary = sim.Run();
      const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - t0;
      if (!summary.ok()) {
        std::fprintf(stderr, "concurrent run failed: %s\n",
                     summary.status().ToString().c_str());
        return 1;
      }
      Print({"concurrent", clients, wall.count(), summary->cycles,
             summary->completed_txns, summary->server_commits},
            flags.csv);
    }
  }
  return 0;
}

}  // namespace
}  // namespace bcc::bench

int main(int argc, char** argv) { return bcc::bench::Main(argc, argv); }
