// Microbenchmarks (google-benchmark) for the server-side control-matrix
// hot paths: Theorem 2 incremental maintenance, client read-condition
// checks, per-cycle snapshotting, group-matrix derivation and delta diffs.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "matrix/group_matrix.h"
#include "matrix/mc_vector.h"
#include "matrix/wire.h"

namespace bcc {
namespace {

// A warmed-up matrix with plausible dependency structure.
FMatrix WarmMatrix(uint32_t n, uint32_t commits = 200) {
  Rng rng(99);
  FMatrix c(n);
  for (Cycle cycle = 1; cycle <= commits; ++cycle) {
    const auto reads = rng.SampleWithoutReplacement(n, 4);
    const auto writes = rng.SampleWithoutReplacement(n, 4);
    c.ApplyCommit(reads, writes, cycle);
  }
  return c;
}

void BM_FMatrixApplyCommit(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  FMatrix c = WarmMatrix(n);
  Rng rng(7);
  const auto reads = rng.SampleWithoutReplacement(n, 4);
  const auto writes = rng.SampleWithoutReplacement(n, 4);
  Cycle cycle = 1000;
  for (auto _ : state) {
    c.ApplyCommit(reads, writes, cycle++);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FMatrixApplyCommit)->Arg(100)->Arg(300)->Arg(1000);

void BM_FMatrixReadCondition(benchmark::State& state) {
  const uint32_t n = 300;
  const FMatrix c = WarmMatrix(n);
  const uint32_t reads = static_cast<uint32_t>(state.range(0));
  std::vector<ReadRecord> records;
  for (uint32_t k = 0; k < reads; ++k) records.push_back({k * 7 % n, 150 + k});
  bool sink = false;
  for (auto _ : state) {
    sink ^= c.ReadCondition(records, 42);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FMatrixReadCondition)->Arg(2)->Arg(8)->Arg(32);

void BM_McVectorReadCondition(benchmark::State& state) {
  const uint32_t n = 300;
  McVector mc(n);
  for (ObjectId i = 0; i < n; ++i) mc.Set(i, i % 97);
  std::vector<ReadRecord> records;
  for (uint32_t k = 0; k < 8; ++k) records.push_back({k * 11 % n, 150 + k});
  bool sink = false;
  for (auto _ : state) {
    sink ^= RMatrixReadCondition(mc, records, 42, 150);
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_McVectorReadCondition);

void BM_CycleSnapshotCopy(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const FMatrix c = WarmMatrix(n);
  for (auto _ : state) {
    FMatrix copy = c;
    benchmark::DoNotOptimize(copy);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n * n *
                          static_cast<int64_t>(sizeof(Cycle)));
}
BENCHMARK(BM_CycleSnapshotCopy)->Arg(100)->Arg(300)->Arg(500);

void BM_GroupMatrixDerivation(benchmark::State& state) {
  const uint32_t n = 300;
  const FMatrix c = WarmMatrix(n);
  const ObjectPartition p = ObjectPartition::Blocks(n, static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    GroupMatrix gm(p, c);
    benchmark::DoNotOptimize(gm);
  }
}
BENCHMARK(BM_GroupMatrixDerivation)->Arg(1)->Arg(10)->Arg(100);

void BM_DeltaDiff(benchmark::State& state) {
  const uint32_t n = 300;
  const CycleStampCodec codec(8);
  FMatrix prev = WarmMatrix(n);
  FMatrix cur = prev;
  Rng rng(13);
  cur.ApplyCommit(rng.SampleWithoutReplacement(n, 4), rng.SampleWithoutReplacement(n, 4), 999);
  for (auto _ : state) {
    auto diff = DeltaCodec::Diff(prev, cur, codec);
    benchmark::DoNotOptimize(diff);
  }
}
BENCHMARK(BM_DeltaDiff);

}  // namespace
}  // namespace bcc

BENCHMARK_MAIN();
