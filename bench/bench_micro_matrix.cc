// Microbenchmarks (google-benchmark) for the server-side control-matrix
// hot paths: Theorem 2 incremental maintenance (per-commit and cycle-fused),
// client read-condition checks, per-cycle snapshotting (full copy and CoW),
// group-matrix derivation and delta diffs.
//
// Besides google-benchmark's own console output, `--json_out=F` emits every
// result row as JSON through obs/json.h (same bcc.perf_trajectory.v1 row
// shape as bench_perf_trajectory), so micro rows can land in the BENCH_5.json
// trajectory file without depending on --benchmark_format.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "matrix/group_matrix.h"
#include "matrix/mc_vector.h"
#include "matrix/wire.h"
#include "obs/json.h"
#include "obs/trace_export.h"

namespace bcc {
namespace {

// A warmed-up matrix with plausible dependency structure.
FMatrix WarmMatrix(uint32_t n, uint32_t commits = 200) {
  Rng rng(99);
  FMatrix c(n);
  for (Cycle cycle = 1; cycle <= commits; ++cycle) {
    const auto reads = rng.SampleWithoutReplacement(n, 4);
    const auto writes = rng.SampleWithoutReplacement(n, 4);
    c.ApplyCommit(reads, writes, cycle);
  }
  return c;
}

void BM_FMatrixApplyCommit(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  FMatrix c = WarmMatrix(n);
  Rng rng(7);
  const auto reads = rng.SampleWithoutReplacement(n, 4);
  const auto writes = rng.SampleWithoutReplacement(n, 4);
  Cycle cycle = 1000;
  for (auto _ : state) {
    c.ApplyCommit(reads, writes, cycle++);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FMatrixApplyCommit)->Arg(100)->Arg(300)->Arg(1000);

// A saturated broadcast cycle's commit queue: one commit per object slot
// (the Fig. 4a regime at large n), Table 1-shaped read/write sets.
std::vector<CommitSets> CycleBatch(uint32_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<CommitSets> batch(n);
  for (CommitSets& c : batch) {
    c.read_set = rng.SampleWithoutReplacement(n, n < 2 ? n : 2);
    c.write_set = rng.SampleWithoutReplacement(n, n < 8 ? n : 8);
  }
  return batch;
}

// The per-commit oracle: one ApplyCommit per queued commit. Throughput is
// items/sec over COMMITS, directly comparable to BM_FMatrixApplyCommitBatch.
void BM_FMatrixApplyCommitOracle(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  FMatrix c = WarmMatrix(n);
  const std::vector<CommitSets> batch = CycleBatch(n, 21);
  Cycle cycle = 1000;
  for (auto _ : state) {
    for (const CommitSets& commit : batch) {
      c.ApplyCommit(commit.read_set, commit.write_set, cycle);
    }
    ++cycle;
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * batch.size());
}
BENCHMARK(BM_FMatrixApplyCommitOracle)->Arg(100)->Arg(300)->Arg(1000);

// The cycle-fused path on the identical commit queue (bit-identical result;
// commit_batch_property_test enforces it).
void BM_FMatrixApplyCommitBatch(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  FMatrix c = WarmMatrix(n);
  const std::vector<CommitSets> batch = CycleBatch(n, 21);
  Cycle cycle = 1000;
  for (auto _ : state) {
    c.ApplyCommitBatch(batch, cycle++);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * batch.size());
}
BENCHMARK(BM_FMatrixApplyCommitBatch)->Arg(100)->Arg(300)->Arg(1000);

void BM_FMatrixReadCondition(benchmark::State& state) {
  const uint32_t n = 300;
  const FMatrix c = WarmMatrix(n);
  const uint32_t reads = static_cast<uint32_t>(state.range(0));
  std::vector<ReadRecord> records;
  for (uint32_t k = 0; k < reads; ++k) records.push_back({k * 7 % n, 150 + k});
  bool sink = false;
  for (auto _ : state) {
    sink ^= c.ReadCondition(records, 42);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FMatrixReadCondition)->Arg(2)->Arg(8)->Arg(32);

void BM_McVectorReadCondition(benchmark::State& state) {
  const uint32_t n = 300;
  McVector mc(n);
  for (ObjectId i = 0; i < n; ++i) mc.Set(i, i % 97);
  std::vector<ReadRecord> records;
  for (uint32_t k = 0; k < 8; ++k) records.push_back({k * 11 % n, 150 + k});
  bool sink = false;
  for (auto _ : state) {
    sink ^= RMatrixReadCondition(mc, records, 42, 150);
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_McVectorReadCondition);

void BM_CycleSnapshotCopy(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const FMatrix c = WarmMatrix(n);
  for (auto _ : state) {
    FMatrix copy = c;
    benchmark::DoNotOptimize(copy);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n * n *
                          static_cast<int64_t>(sizeof(Cycle)));
}
BENCHMARK(BM_CycleSnapshotCopy)->Arg(100)->Arg(300)->Arg(500);

// The CoW per-cycle snapshot the engines now take instead of the full copy
// above: each iteration commits a handful of transactions (touching a bounded
// column set) and snapshots. Bytes/sec counts only the bytes physically
// copied, which scale with touched columns rather than n^2.
void BM_CycleSnapshotCoW(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  FMatrix c = WarmMatrix(n);
  Rng rng(5);
  (void)c.Snapshot();  // pay the one-time full copy outside the loop
  const uint64_t copied_before = c.snapshot_columns_copied();
  Cycle cycle = 1000;
  FMatrixSnapshot held;  // the engines hold the published snapshot one cycle
  for (auto _ : state) {
    c.ApplyCommit(rng.SampleWithoutReplacement(n, 4), rng.SampleWithoutReplacement(n, 4),
                  cycle++);
    held = c.Snapshot();
    benchmark::DoNotOptimize(held);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>((c.snapshot_columns_copied() - copied_before) * n * sizeof(Cycle)));
}
BENCHMARK(BM_CycleSnapshotCoW)->Arg(100)->Arg(300)->Arg(500)->Arg(1000);

void BM_GroupMatrixDerivation(benchmark::State& state) {
  const uint32_t n = 300;
  const FMatrix c = WarmMatrix(n);
  const ObjectPartition p = ObjectPartition::Blocks(n, static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    GroupMatrix gm(p, c);
    benchmark::DoNotOptimize(gm);
  }
}
BENCHMARK(BM_GroupMatrixDerivation)->Arg(1)->Arg(10)->Arg(100);

void BM_DeltaDiff(benchmark::State& state) {
  const uint32_t n = 300;
  const CycleStampCodec codec(8);
  FMatrix prev = WarmMatrix(n);
  FMatrix cur = prev;
  Rng rng(13);
  cur.ApplyCommit(rng.SampleWithoutReplacement(n, 4), rng.SampleWithoutReplacement(n, 4), 999);
  for (auto _ : state) {
    auto diff = DeltaCodec::Diff(prev, cur, codec);
    benchmark::DoNotOptimize(diff);
  }
}
BENCHMARK(BM_DeltaDiff);

// Tees every per-iteration result to the console reporter AND collects it as
// a (name, ns/op, counters) row for the trajectory file. Format-independent
// by construction: rows are rendered by obs/json.h, not --benchmark_format.
class JsonRowTee : public benchmark::BenchmarkReporter {
 public:
  bool ReportContext(const Context& context) override {
    return console_.ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    console_.ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      row.iterations = static_cast<uint64_t>(run.iterations);
      row.ns_per_op = run.iterations > 0
                          ? run.real_accumulated_time * 1e9 / static_cast<double>(run.iterations)
                          : 0;
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) row.items_per_second = items->second;
      const auto bytes = run.counters.find("bytes_per_second");
      if (bytes != run.counters.end()) row.bytes_per_second = bytes->second;
      rows_.push_back(std::move(row));
    }
  }

  void Finalize() override { console_.Finalize(); }

  /// The collected rows in bcc.perf_trajectory.v1 shape.
  std::string ToJson() const {
    JsonWriter w;
    w.BeginObject()
        .Key("schema")
        .Value("bcc.perf_trajectory.v1")
        .Key("bench")
        .Value("BENCH_5")
        .Key("source")
        .Value("bench_micro_matrix")
        .Key("rows")
        .BeginArray();
    for (const Row& row : rows_) {
      w.BeginObject()
          .Key("section")
          .Value("micro")
          .Key("name")
          .Value(row.name)
          .Key("iterations")
          .Value(row.iterations)
          .Key("ns_per_op")
          .Value(row.ns_per_op);
      if (row.items_per_second > 0) w.Key("items_per_second").Value(row.items_per_second);
      if (row.bytes_per_second > 0) w.Key("bytes_per_second").Value(row.bytes_per_second);
      w.EndObject();
    }
    w.EndArray().EndObject();
    return std::move(w).Take() + "\n";
  }

 private:
  struct Row {
    std::string name;
    uint64_t iterations = 0;
    double ns_per_op = 0;
    double items_per_second = 0;
    double bytes_per_second = 0;
  };

  benchmark::ConsoleReporter console_;
  std::vector<Row> rows_;
};

int Main(int argc, char** argv) {
  // Strip --json_out=F before google-benchmark sees (and rejects) it.
  std::string json_out;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonRowTee tee;
  benchmark::RunSpecifiedBenchmarks(&tee);
  benchmark::Shutdown();

  if (!json_out.empty()) {
    const std::string json = tee.ToJson();
    const Status valid = ValidateJson(json);
    if (!valid.ok()) {
      std::fprintf(stderr, "FATAL: emitted JSON fails validation: %s\n",
                   valid.ToString().c_str());
      return 1;
    }
    const Status written = WriteTextFile(json_out, json);
    if (!written.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("json rows: %s\n", json_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bcc

int main(int argc, char** argv) { return bcc::Main(argc, argv); }
