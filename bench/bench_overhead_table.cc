// Section 4.1 control-information overhead table, the Appendix D
// (Theorem 8) quadratic lower bound illustrated, and the Section 3.2.1
// future-work delta-transmission measurement.
//
// Paper numbers at Table 1 defaults (300 objects, 1 KB, 8-bit stamps):
// F-Matrix control share ~23% of the cycle; R-Matrix/Datacycle ~0.1%.

#include <cstdio>

#include "bench_common.h"
#include "matrix/wire.h"
#include "sim/workload.h"

namespace {

using namespace bcc;

void PrintOverheadTable() {
  std::printf("== Section 4.1: control-information share of the broadcast cycle ==\n");
  std::printf("%-14s %14s %14s %14s %12s\n", "algorithm", "slot bits", "control bits",
              "cycle bits", "control %");
  for (Algorithm a : kAllAlgorithms) {
    const auto g = ComputeGeometry(a, 300, 8 * 1024, 8);
    std::printf("%-14s %14llu %14llu %14llu %11.2f%%\n",
                std::string(AlgorithmName(a)).c_str(),
                static_cast<unsigned long long>(g.slot_bits),
                static_cast<unsigned long long>(g.control_bits),
                static_cast<unsigned long long>(g.cycle_bits), 100.0 * g.control_fraction);
  }
  std::printf("\n");
}

void PrintGroupSpectrumTable() {
  std::printf("== Section 3.2.2: grouped-matrix spectrum (n x g control) ==\n");
  std::printf("%-10s %14s %12s\n", "groups g", "control bits", "control %");
  for (uint32_t g : {1u, 3u, 10u, 30u, 100u, 300u}) {
    const auto geo = ComputeGeometry(Algorithm::kFMatrix, 300, 8 * 1024, 8, g);
    std::printf("%-10u %14llu %11.2f%%\n", g,
                static_cast<unsigned long long>(geo.control_bits),
                100.0 * geo.control_fraction);
  }
  std::printf("\n");
}

void PrintQuadraticBound() {
  std::printf("== Appendix D (Theorem 8): worst-case matrix bits are quadratic in n ==\n");
  std::printf("%-8s %18s %24s\n", "n", "n^2 * TS bits", "(n^2-4n+3)/4 * TS bound");
  for (uint32_t n : {100u, 300u, 500u, 1000u}) {
    const uint64_t full = static_cast<uint64_t>(n) * n * 8;
    const uint64_t bound = (static_cast<uint64_t>(n) * n - 4ull * n + 3) / 4 * 8;
    std::printf("%-8u %18llu %24llu\n", n, static_cast<unsigned long long>(full),
                static_cast<unsigned long long>(bound));
  }
  std::printf("\n");
}

// Drive the Table 1 server workload through the txn manager and measure how
// many bits per cycle delta transmission would need vs the full matrix.
void MeasureDeltaTransmission(uint64_t seed) {
  std::printf(
      "== Section 3.2.1 (future work): delta transmission of the C matrix ==\n");
  SimConfig config;
  config.seed = seed;
  const CycleStampCodec codec(config.timestamp_bits);
  ServerTxnManager mgr(config.num_objects);
  Rng rng(seed);
  ServerWorkload workload(config, rng);

  const uint64_t cycle_bits =
      ComputeGeometry(Algorithm::kFMatrix, config.num_objects, config.object_size_bits,
                      config.timestamp_bits)
          .cycle_bits;
  const uint64_t full_bits =
      static_cast<uint64_t>(config.num_objects) * config.num_objects * config.timestamp_bits;

  FMatrix prev(config.num_objects);
  SimTime now = 0;
  uint64_t total_delta_bits = 0, max_delta_bits = 0;
  const Cycle cycles = 200;
  Cycle cycle = 1;
  SimTime next_commit = workload.NextInterval();
  for (cycle = 1; cycle <= cycles; ++cycle) {
    const SimTime cycle_end = now + cycle_bits;
    while (next_commit < cycle_end) {
      mgr.ExecuteAndCommit(workload.NextTxn(), cycle);
      next_commit += workload.NextInterval();
    }
    now = cycle_end;
    const auto diff = DeltaCodec::Diff(prev, mgr.f_matrix(), codec);
    const uint64_t bits = DeltaCodec::EncodedBits(diff.size(), config.num_objects,
                                                  config.timestamp_bits);
    total_delta_bits += bits;
    max_delta_bits = std::max(max_delta_bits, bits);
    prev = mgr.f_matrix();
  }
  std::printf("full matrix per cycle:      %llu bits\n",
              static_cast<unsigned long long>(full_bits));
  std::printf("delta mean per cycle:       %llu bits (%.1fx smaller)\n",
              static_cast<unsigned long long>(total_delta_bits / cycles),
              static_cast<double>(full_bits) /
                  static_cast<double>(total_delta_bits / cycles));
  std::printf("delta max per cycle:        %llu bits\n",
              static_cast<unsigned long long>(max_delta_bits));
  std::printf("(Table 1 workload, %llu cycles, %zu commits)\n\n",
              static_cast<unsigned long long>(cycles), mgr.num_committed());
}

}  // namespace

int main(int argc, char** argv) {
  const bcc::bench::BenchFlags flags = bcc::bench::ParseFlags(argc, argv);
  PrintOverheadTable();
  PrintGroupSpectrumTable();
  PrintQuadraticBound();
  MeasureDeltaTransmission(flags.seed);
  return 0;
}
