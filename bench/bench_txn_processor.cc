// Throughput of the thread-pooled server update engine (PR 6), swept over
// concurrency-control scheme x worker count x contention, emitted as
// BENCH_7.json in the bcc.perf_trajectory.v1 schema so CI can track the
// numbers across PRs.
//
// Each transaction's operations pay a fixed service time (a blocking sleep
// standing in for backing-store access), so worker scaling comes from
// latency overlap and the sweep is meaningful even on a single-core CI
// runner. Before any cell's timing is trusted, its full committed history is
// re-checked against the serializability oracle (VerifySerializable); a
// violation aborts the bench.
//
// Rows (section "txn_processor"): one per scheme x workers x contention
// cell with committed counts, retries, txns/sec, and the speedup relative
// to the same scheme's 1-worker cell.
//
// Flags: --out=F (default BENCH_7.json), --quick (CI smoke: fewer cells,
// smaller batches), --seed=N.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/json.h"
#include "obs/trace_export.h"
#include "server/exec/txn_processor.h"

namespace bcc {
namespace {

struct Flags {
  uint64_t seed = 42;
  bool quick = false;
  std::string out = "BENCH_7.json";
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      flags.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      flags.out = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      flags.quick = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s (known: --seed=N --out=F --quick)\n", argv[i]);
      std::exit(2);
    }
  }
  return flags;
}

struct Contention {
  const char* name;
  uint32_t num_objects;
};

struct Cell {
  UpdateScheme scheme;
  uint32_t workers = 1;
  Contention contention;
  uint64_t committed = 0;
  uint64_t retries = 0;
  double seconds = 0;
  double txns_per_sec = 0;
  double speedup_vs_1w = 0;
};

// The Table 1 server-transaction shape: a couple of reads then a couple of
// writes, sampled uniformly. Contention is set purely by the object-space
// size.
std::vector<std::vector<ServerTxn>> MakeBatches(Rng& rng, uint32_t num_objects, uint32_t batches,
                                                uint32_t txns_per_batch) {
  std::vector<std::vector<ServerTxn>> out(batches);
  TxnId next_id = 1;
  for (auto& batch : out) {
    batch.resize(txns_per_batch);
    for (ServerTxn& t : batch) {
      t.id = next_id++;
      t.read_set = rng.SampleWithoutReplacement(num_objects, 2);
      t.write_set = rng.SampleWithoutReplacement(num_objects, 2);
    }
  }
  return out;
}

Cell RunCell(UpdateScheme scheme, uint32_t workers, Contention contention, uint32_t batches,
             uint32_t txns_per_batch, uint64_t op_service_us, uint64_t seed) {
  Rng rng(seed);
  const auto workload = MakeBatches(rng, contention.num_objects, batches, txns_per_batch);

  TxnProcessor::Options options;
  options.op_service_us = op_service_us;
  TxnProcessor proc(contention.num_objects, scheme, workers, options);

  std::vector<CommittedServerTxn> all;
  all.reserve(static_cast<size_t>(batches) * txns_per_batch);
  const auto start = std::chrono::steady_clock::now();
  for (const auto& batch : workload) {
    auto committed = proc.ExecuteBatch(batch);
    all.insert(all.end(), std::make_move_iterator(committed.begin()),
               std::make_move_iterator(committed.end()));
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  const Status serializable = VerifySerializable(contention.num_objects, all);
  if (!serializable.ok()) {
    std::fprintf(stderr, "FATAL: %s x%u (%s) produced a non-serializable history: %s\n",
                 std::string(UpdateSchemeName(scheme)).c_str(), workers, contention.name,
                 serializable.ToString().c_str());
    std::exit(1);
  }

  Cell cell;
  cell.scheme = scheme;
  cell.workers = workers;
  cell.contention = contention;
  cell.committed = proc.stats().committed;
  cell.retries = proc.stats().lock_die_aborts + proc.stats().occ_validation_aborts +
                 proc.stats().mvcc_write_aborts;
  cell.seconds = seconds;
  cell.txns_per_sec = seconds > 0 ? static_cast<double>(cell.committed) / seconds : 0;
  return cell;
}

int Main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  const UpdateScheme schemes[] = {UpdateScheme::kTwoPhaseLocking, UpdateScheme::kOcc,
                                  UpdateScheme::kMvcc};
  const Contention contentions[] = {{"low", 256}, {"high", 8}};
  const std::vector<uint32_t> worker_counts =
      flags.quick ? std::vector<uint32_t>{1, 4} : std::vector<uint32_t>{1, 2, 4, 8};
  const uint32_t batches = flags.quick ? 2 : 4;
  const uint32_t txns_per_batch = flags.quick ? 24 : 48;
  const uint64_t op_service_us = 200;

  JsonWriter w;
  w.BeginObject()
      .Key("schema")
      .Value("bcc.perf_trajectory.v1")
      .Key("bench")
      .Value("BENCH_7")
      .Key("seed")
      .Value(flags.seed)
      .Key("quick")
      .Value(flags.quick)
      .Key("rows")
      .BeginArray();

  for (const UpdateScheme scheme : schemes) {
    for (const Contention contention : contentions) {
      double one_worker_tps = 0;
      for (const uint32_t workers : worker_counts) {
        Cell cell = RunCell(scheme, workers, contention, batches, txns_per_batch, op_service_us,
                            flags.seed);
        if (workers == 1) one_worker_tps = cell.txns_per_sec;
        cell.speedup_vs_1w = one_worker_tps > 0 ? cell.txns_per_sec / one_worker_tps : 0;
        std::printf("txn_processor %-4s x%u %-4s: %6.0f txns/sec (%.2fx vs 1w), "
                    "%llu committed, %llu retries\n",
                    std::string(UpdateSchemeName(scheme)).c_str(), workers, contention.name,
                    cell.txns_per_sec, cell.speedup_vs_1w,
                    static_cast<unsigned long long>(cell.committed),
                    static_cast<unsigned long long>(cell.retries));
        w.BeginObject()
            .Key("section")
            .Value("txn_processor")
            .Key("scheme")
            .Value(UpdateSchemeName(scheme))
            .Key("workers")
            .Value(cell.workers)
            .Key("contention")
            .Value(contention.name)
            .Key("num_objects")
            .Value(contention.num_objects)
            .Key("txns")
            .Value(static_cast<uint64_t>(batches) * txns_per_batch)
            .Key("op_service_us")
            .Value(op_service_us)
            .Key("committed")
            .Value(cell.committed)
            .Key("retries")
            .Value(cell.retries)
            .Key("seconds")
            .Value(cell.seconds)
            .Key("txns_per_sec")
            .Value(cell.txns_per_sec)
            .Key("speedup_vs_1w")
            .Value(cell.speedup_vs_1w)
            .EndObject();
      }
    }
  }

  w.EndArray().EndObject();
  const std::string json = std::move(w).Take() + "\n";
  const Status valid = ValidateJson(json);
  if (!valid.ok()) {
    std::fprintf(stderr, "FATAL: emitted JSON fails validation: %s\n", valid.ToString().c_str());
    return 1;
  }
  const Status written = WriteTextFile(flags.out, json);
  if (!written.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("trajectory: %s\n", flags.out.c_str());
  return 0;
}

}  // namespace
}  // namespace bcc

int main(int argc, char** argv) { return bcc::Main(argc, argv); }
