// Sparse control-matrix scaling harness (PR 10): machine-readable evidence
// that per-commit maintenance and per-cycle control bytes are sublinear in n
// all the way to n = 10^6, emitted as BENCH_10.json (bcc.perf_trajectory.v1)
// so CI can track the trajectory across PRs.
//
// Sections (one JSON row per measurement):
//   dense_baseline    ns/commit of the dense cycle-fused ApplyCommitBatch and
//                     the dense per-cycle control share (n^2 * ts / 8 bytes)
//                     at n <= 4000 — the trend the sparse rows are judged
//                     against by extrapolation. Dense is memory-bound ~8 TB
//                     at n = 10^6, which is the point of this PR.
//   sparse_scaling    ns/commit of SparseFMatrix::ApplyCommit on the same
//                     workload shape at n up to 10^6, plus the final nnz and
//                     the per-cycle sparse control share
//                     (SparseMatrixControlBits / 8). Before any timing is
//                     trusted, every n <= 4000 replays the workload into a
//                     dense oracle and requires value equality.
//   engine_sparse     end-to-end DES broadcast cycles/sec in sparse mode
//                     (clients validating off the sparse snapshot), with the
//                     run's matrix_nnz and accounted control bytes/cycle.
//
// Flags: --n=N (largest sparse size; default 1000000), --out=F (default
// BENCH_10.json), --quick (CI smoke sizes), --seed=N.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "matrix/f_matrix.h"
#include "matrix/sparse_f_matrix.h"
#include "obs/json.h"
#include "obs/trace_export.h"
#include "sim/broadcast_sim.h"

namespace bcc {
namespace {

struct Flags {
  uint32_t n = 1000000;
  uint64_t seed = 42;
  bool quick = false;
  std::string out = "BENCH_10.json";
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--n=", 4) == 0) {
      flags.n = static_cast<uint32_t>(std::strtoul(argv[i] + 4, nullptr, 10));
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      flags.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      flags.out = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      flags.quick = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s (known: --n=N --seed=N --out=F --quick)\n", argv[i]);
      std::exit(2);
    }
  }
  return flags;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

constexpr unsigned kTsBits = 8;

// Table 1 server-transaction shape (2 reads, 8 writes) at a fixed commit
// count per cycle: maintenance cost per commit must depend on the workload,
// not on n, for the sparse claim to hold.
std::vector<std::vector<CommitSets>> MakeWorkload(Rng& rng, uint32_t n, uint32_t cycles,
                                                  uint32_t commits_per_cycle) {
  const uint32_t reads = n < 2 ? n : 2;
  const uint32_t writes = n < 8 ? n : 8;
  std::vector<std::vector<CommitSets>> workload(cycles);
  for (auto& cycle : workload) {
    cycle.resize(commits_per_cycle);
    for (CommitSets& c : cycle) {
      c.read_set = rng.SampleWithoutReplacement(n, reads);
      c.write_set = rng.SampleWithoutReplacement(n, writes);
    }
  }
  return workload;
}

double DenseControlBytes(uint32_t n) {
  return static_cast<double>(n) * n * kTsBits / 8.0;
}

struct DenseResult {
  double ns_per_commit = 0;
  uint64_t commits = 0;
};

DenseResult MeasureDense(uint32_t n, uint32_t cycles, uint32_t commits_per_cycle, uint64_t seed) {
  Rng rng(seed);
  const auto workload = MakeWorkload(rng, n, cycles, commits_per_cycle);
  FMatrix m(n);
  const auto start = std::chrono::steady_clock::now();
  Cycle cycle = 1;
  for (const auto& batch : workload) m.ApplyCommitBatch(batch, cycle++);
  const double seconds = SecondsSince(start);
  DenseResult r;
  r.commits = static_cast<uint64_t>(cycles) * commits_per_cycle;
  r.ns_per_commit = seconds * 1e9 / static_cast<double>(r.commits);
  return r;
}

struct SparseResult {
  double ns_per_commit = 0;
  uint64_t commits = 0;
  uint64_t nnz = 0;
  double control_bytes_per_cycle = 0;
  bool oracle_checked = false;
};

SparseResult MeasureSparse(uint32_t n, uint32_t cycles, uint32_t commits_per_cycle,
                           uint64_t seed) {
  Rng rng(seed);
  const auto workload = MakeWorkload(rng, n, cycles, commits_per_cycle);

  // Oracle gate: replay the identical workload into the dense matrix and
  // demand value equality before the timing below is trusted. Dense is only
  // affordable at small n; larger sizes inherit the verified code path.
  SparseResult r;
  if (n <= 4000) {
    FMatrix dense(n);
    SparseFMatrix check(n);
    Cycle cycle = 1;
    for (const auto& batch : workload) {
      dense.ApplyCommitBatch(batch, cycle);
      check.ApplyCommitBatch(batch, cycle);
      ++cycle;
    }
    if (!(check == dense)) {
      std::fprintf(stderr, "FATAL: sparse maintenance diverged from the dense oracle at n=%u\n",
                   n);
      std::exit(1);
    }
    r.oracle_checked = true;
  }

  SparseFMatrix m(n);
  const auto start = std::chrono::steady_clock::now();
  Cycle cycle = 1;
  for (const auto& batch : workload) m.ApplyCommitBatch(batch, cycle++);
  const double seconds = SecondsSince(start);
  r.commits = static_cast<uint64_t>(cycles) * commits_per_cycle;
  r.ns_per_commit = seconds * 1e9 / static_cast<double>(r.commits);
  r.nnz = m.nnz();
  r.control_bytes_per_cycle = static_cast<double>(SparseMatrixControlBits(m, kTsBits)) / 8.0;
  return r;
}

struct EngineResult {
  double cycles_per_sec = 0;
  uint64_t cycles = 0;
  uint64_t server_commits = 0;
  uint64_t matrix_nnz = 0;
  double control_bytes_per_cycle = 0;
};

EngineResult MeasureEngineSparse(uint32_t n, uint64_t cycles, uint32_t commits_per_cycle,
                                 uint64_t seed) {
  SimConfig config;
  config.algorithm = Algorithm::kFMatrix;
  config.matrix_mode = MatrixMode::kSparse;
  config.num_objects = n;
  config.object_size_bits = 64;  // small pages keep the simulated cycle manageable
  config.timestamp_bits = kTsBits;
  config.seed = seed;
  config.stop_after_cycles = cycles;
  config.num_client_txns = std::numeric_limits<uint32_t>::max();
  config.warmup_txns = 0;
  // Pin the commit rate per simulated cycle so the control-plane load is the
  // same at every n; the cycle length itself grows with the database.
  config.server_txn_interval = config.Geometry().cycle_bits / commits_per_cycle;
  config.server_interval_exponential = false;

  const auto start = std::chrono::steady_clock::now();
  const auto summary = RunSimulation(config);
  const double seconds = SecondsSince(start);
  if (!summary.ok()) {
    std::fprintf(stderr, "FATAL: sparse engine run failed at n=%u: %s\n", n,
                 summary.status().ToString().c_str());
    std::exit(1);
  }
  EngineResult r;
  r.cycles = summary->cycles_elapsed;
  r.cycles_per_sec = seconds > 0 ? static_cast<double>(r.cycles) / seconds : 0;
  r.server_commits = summary->server_commits;
  r.matrix_nnz = summary->matrix_nnz;
  r.control_bytes_per_cycle = summary->matrix_control_bytes_per_cycle;
  return r;
}

int Main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  const uint32_t max_n = flags.quick ? (flags.n < 10000 ? flags.n : 10000) : flags.n;
  std::vector<uint32_t> dense_sizes{1000, 2000, 4000};
  std::vector<uint32_t> sparse_sizes;
  for (uint32_t n = 1000; n < max_n; n *= 10) sparse_sizes.push_back(n);
  sparse_sizes.push_back(max_n);
  const uint32_t cycles = flags.quick ? 4 : 10;
  const uint32_t commits_per_cycle = flags.quick ? 200 : 1000;
  const uint64_t engine_cycles = flags.quick ? 3 : 5;
  const uint32_t engine_commits_per_cycle = flags.quick ? 100 : 400;

  JsonWriter w;
  w.BeginObject()
      .Key("schema")
      .Value("bcc.perf_trajectory.v1")
      .Key("bench")
      .Value("BENCH_10")
      .Key("seed")
      .Value(flags.seed)
      .Key("quick")
      .Value(flags.quick)
      .Key("rows")
      .BeginArray();

  for (const uint32_t n : dense_sizes) {
    const DenseResult d = MeasureDense(n, cycles, commits_per_cycle, flags.seed);
    std::printf("dense_baseline n=%u: %.1f ns/commit, %.0f control bytes/cycle\n", n,
                d.ns_per_commit, DenseControlBytes(n));
    w.BeginObject()
        .Key("section")
        .Value("dense_baseline")
        .Key("n")
        .Value(n)
        .Key("commits")
        .Value(d.commits)
        .Key("ns_per_commit")
        .Value(d.ns_per_commit)
        .Key("control_bytes_per_cycle")
        .Value(DenseControlBytes(n))
        .EndObject();
  }

  for (const uint32_t n : sparse_sizes) {
    const SparseResult s = MeasureSparse(n, cycles, commits_per_cycle, flags.seed);
    std::printf("sparse_scaling n=%u: %.1f ns/commit, nnz=%llu, %.0f control bytes/cycle "
                "(dense equivalent %.3e)%s\n",
                n, s.ns_per_commit, static_cast<unsigned long long>(s.nnz),
                s.control_bytes_per_cycle, DenseControlBytes(n),
                s.oracle_checked ? " [oracle-checked]" : "");
    w.BeginObject()
        .Key("section")
        .Value("sparse_scaling")
        .Key("n")
        .Value(n)
        .Key("commits")
        .Value(s.commits)
        .Key("ns_per_commit")
        .Value(s.ns_per_commit)
        .Key("nnz")
        .Value(s.nnz)
        .Key("control_bytes_per_cycle")
        .Value(s.control_bytes_per_cycle)
        .Key("dense_control_bytes_per_cycle")
        .Value(DenseControlBytes(n))
        .Key("oracle_checked")
        .Value(s.oracle_checked)
        .EndObject();
  }

  for (const uint32_t n : sparse_sizes) {
    const EngineResult e =
        MeasureEngineSparse(n, engine_cycles, engine_commits_per_cycle, flags.seed);
    std::printf("engine_sparse n=%u: %.2f cycles/sec over %llu cycles, nnz=%llu, "
                "%.0f control bytes/cycle\n",
                n, e.cycles_per_sec, static_cast<unsigned long long>(e.cycles),
                static_cast<unsigned long long>(e.matrix_nnz), e.control_bytes_per_cycle);
    w.BeginObject()
        .Key("section")
        .Value("engine_sparse")
        .Key("n")
        .Value(n)
        .Key("cycles")
        .Value(e.cycles)
        .Key("cycles_per_sec")
        .Value(e.cycles_per_sec)
        .Key("server_commits")
        .Value(e.server_commits)
        .Key("matrix_nnz")
        .Value(e.matrix_nnz)
        .Key("control_bytes_per_cycle")
        .Value(e.control_bytes_per_cycle)
        .EndObject();
  }

  w.EndArray().EndObject();
  const std::string json = std::move(w).Take() + "\n";
  const Status valid = ValidateJson(json);
  if (!valid.ok()) {
    std::fprintf(stderr, "FATAL: emitted JSON fails validation: %s\n", valid.ToString().c_str());
    return 1;
  }
  const Status written = WriteTextFile(flags.out, json);
  if (!written.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("trajectory: %s\n", flags.out.c_str());
  return 0;
}

}  // namespace
}  // namespace bcc

int main(int argc, char** argv) { return bcc::Main(argc, argv); }
