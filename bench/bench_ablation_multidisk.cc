// Ablation (Section 2.1 scoping lifted): multi-speed broadcast disks.
// 20% of the database is hot and receives 80% of both client reads and
// server updates; the sweep raises the hot set's broadcast frequency.
// Faster hot rotations shorten waits for the skewed client but lengthen the
// major cycle (hurting cold reads) — the classic broadcast-disk tradeoff,
// here measured under each concurrency-control algorithm.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace bcc;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  ExperimentSpec spec;
  spec.title = "Ablation: multi-speed disk (hot set broadcast frequency)";
  spec.x_label = "hot broadcast freq";
  spec.base = bench::BaseConfig(flags);
  spec.base.hot_set_size = 60;  // 20% of 300
  spec.base.client_hot_access_fraction = 0.8;
  spec.base.server_hot_access_fraction = 0.8;
  spec.x_values = {1, 2, 4, 8};
  spec.apply = [](SimConfig* c, double x) {
    c->hot_broadcast_frequency = static_cast<uint32_t>(x);
  };
  return bench::RunAndPrint(spec, flags);
}
