// Ablation (Section 3.3, paper future work): client quasi-caching under
// weak currency requirements. Sweeps the currency bound T (in broadcast
// cycles) for F-Matrix and R-Matrix; T = 0 disables the cache. Cached reads
// skip the wait for the object's broadcast slot when validation against the
// stored control information succeeds, trading currency for latency.
//
// The database is shrunk so transactions revisit objects often enough for a
// client-private cache to matter.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace bcc;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  ExperimentSpec spec;
  spec.title = "Ablation: quasi-caching currency bound (T in cycles; 0 = no cache)";
  spec.x_label = "currency bound T (cycles)";
  spec.base = bench::BaseConfig(flags);
  spec.base.num_objects = 50;  // small, hot database: repeats are common
  spec.x_values = {0, 1, 4, 16, 64};
  spec.algorithms = {Algorithm::kRMatrix, Algorithm::kFMatrix};
  spec.apply = [](SimConfig* c, double x) {
    if (x == 0) {
      c->enable_cache = false;
      return;
    }
    c->enable_cache = true;
    c->cache_currency_bound =
        static_cast<SimTime>(x * static_cast<double>(c->Geometry().cycle_bits));
  };
  return bench::RunAndPrint(spec, flags);
}
