// Snapshot+delta control broadcast accounting and server-side cost.
//
// Section "cycles": drives the server commit pipeline (ServerWorkload ->
// ServerTxnManager -> DeltaBroadcaster) across broadcast cycles at several
// update rates and reports, per cycle, the control bits a delta-mode
// broadcast ships against the full-matrix baseline. The run FAILS (exit 1)
// if any cycle's delta control costs more than the full matrix — that
// inequality is an invariant of the refresh policy, not a tuning goal.
//
// Section "commit_cost": per-commit cost of the dirty-column bookkeeping at
// constant write-set size as the database grows. The tracking overhead
// (tracked minus base ApplyCommit) stays flat in n — the dirty list appends
// O(|WS|) column ids per commit — while the per-cycle diff drops from the
// O(n^2) full rescan to the O(n * touched) column scan.
//
// Flags (parsed here; bench_common's ParseFlags rejects --smoke):
//   --smoke      tiny run for CI build sanity
//   --csv        additionally dump machine-readable rows
//   --seed=N     override the base seed

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "matrix/wire.h"
#include "server/delta_broadcast.h"
#include "server/txn_manager.h"
#include "sim/config.h"
#include "sim/workload.h"

namespace bcc::bench {
namespace {

struct Flags {
  bool smoke = false;
  bool csv = false;
  uint64_t seed = 42;
};

Flags ParseDeltaFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      flags.smoke = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      flags.csv = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      flags.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s (known: --smoke --csv --seed=N)\n", argv[i]);
      std::exit(2);
    }
  }
  return flags;
}

double NsPerOp(std::chrono::steady_clock::time_point t0, std::chrono::steady_clock::time_point t1,
               uint64_t ops) {
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / static_cast<double>(ops);
}

/// Section "cycles": full vs delta control bits per broadcast cycle.
/// Returns false if any cycle violates delta_bits <= full_bits.
bool RunCyclesSection(const Flags& flags) {
  const uint32_t n = 300;
  const unsigned ts = 8;
  const uint64_t refresh_period = 16;
  const uint64_t cycles = flags.smoke ? 8 : 64;
  const auto geometry = ComputeGeometry(Algorithm::kFMatrix, n, 8 * 1024, ts);

  std::printf("== cycles: control bits on the air, full vs delta (n=%u, ts=%u, refresh=%llu)\n", n,
              ts, static_cast<unsigned long long>(refresh_period));
  std::printf("%10s %6s %8s %8s %8s %12s %12s %8s\n", "interval", "cycle", "commits", "entries",
              "refresh", "delta_bits", "full_bits", "ratio");

  bool ok = true;
  for (const uint64_t interval : {50000ull, 250000ull, 1000000ull}) {
    SimConfig config;
    config.num_objects = n;
    config.timestamp_bits = ts;
    config.server_txn_interval = interval;
    config.seed = flags.seed;
    ServerWorkload workload(config, Rng(flags.seed));
    ServerTxnManager manager(n, {.track_dirty_columns = true});
    DeltaBroadcaster broadcaster(n, CycleStampCodec(ts), refresh_period);

    uint64_t total_delta = 0, total_full = 0;
    SimTime next_commit = workload.NextInterval();
    for (Cycle cycle = 1; cycle <= cycles; ++cycle) {
      const SimTime cycle_end = cycle * geometry.cycle_bits;
      uint32_t commits = 0;
      while (next_commit <= cycle_end) {
        manager.ExecuteAndCommit(workload.NextTxn(), cycle);
        ++commits;
        next_commit += workload.NextInterval();
      }
      const DeltaControl ctl =
          broadcaster.BuildControl(manager.f_matrix(), manager.TakeTouchedColumns(), cycle);
      total_delta += ctl.control_bits;
      total_full += ctl.full_bits;
      if (ctl.control_bits > ctl.full_bits) {
        std::fprintf(stderr, "INVARIANT VIOLATED: cycle %llu delta %llu > full %llu\n",
                     static_cast<unsigned long long>(cycle),
                     static_cast<unsigned long long>(ctl.control_bits),
                     static_cast<unsigned long long>(ctl.full_bits));
        ok = false;
      }
      if (flags.csv) {
        std::printf("csv,cycles,%llu,%llu,%u,%zu,%d,%llu,%llu\n",
                    static_cast<unsigned long long>(interval),
                    static_cast<unsigned long long>(cycle), commits, ctl.entries.size(),
                    ctl.full_refresh ? 1 : 0, static_cast<unsigned long long>(ctl.control_bits),
                    static_cast<unsigned long long>(ctl.full_bits));
      } else {
        std::printf("%10llu %6llu %8u %8zu %8s %12llu %12llu %8.4f\n",
                    static_cast<unsigned long long>(interval),
                    static_cast<unsigned long long>(cycle), commits, ctl.entries.size(),
                    ctl.full_refresh ? (ctl.scheduled ? "sched" : "adapt") : "-",
                    static_cast<unsigned long long>(ctl.control_bits),
                    static_cast<unsigned long long>(ctl.full_bits),
                    static_cast<double>(ctl.control_bits) / static_cast<double>(ctl.full_bits));
      }
    }
    std::printf("-- interval=%llu: total delta %llu / full %llu bits (%.2f%%)\n",
                static_cast<unsigned long long>(interval),
                static_cast<unsigned long long>(total_delta),
                static_cast<unsigned long long>(total_full),
                100.0 * static_cast<double>(total_delta) / static_cast<double>(total_full));
  }
  return ok;
}

/// Section "commit_cost": ApplyCommit with and without dirty tracking, plus
/// the per-cycle diff, across database sizes at a constant write-set size.
void RunCommitCostSection(const Flags& flags) {
  const unsigned ts = 8;
  const uint32_t ws_size = 4, rs_size = 4;
  const uint64_t commits = flags.smoke ? 500 : 20000;
  const CycleStampCodec codec(ts);
  const std::vector<uint32_t> sizes =
      flags.smoke ? std::vector<uint32_t>{64, 256} : std::vector<uint32_t>{64, 128, 256, 512, 1024};

  std::printf(
      "\n== commit_cost: per-commit dirty tracking and per-cycle diff (ws=%u, %llu commits)\n",
      ws_size, static_cast<unsigned long long>(commits));
  std::printf("%6s %14s %14s %14s %16s %16s\n", "n", "base_ns/commit", "trk_ns/commit",
              "overhead_ns", "diffcols_ns/cyc", "fullscan_ns/cyc");

  for (const uint32_t n : sizes) {
    // Pre-roll identical op sequences so both timed loops do the same work.
    Rng rng(flags.seed + n);
    std::vector<std::vector<ObjectId>> reads(commits), writes(commits);
    for (uint64_t t = 0; t < commits; ++t) {
      reads[t] = rng.SampleWithoutReplacement(n, rs_size);
      writes[t] = rng.SampleWithoutReplacement(n, ws_size);
    }

    FMatrix base(n);
    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t t = 0; t < commits; ++t) base.ApplyCommit(reads[t], writes[t], t + 1);
    auto t1 = std::chrono::steady_clock::now();
    const double base_ns = NsPerOp(t0, t1, commits);

    FMatrix tracked(n);
    tracked.EnableDirtyTracking();
    size_t sink = 0;
    t0 = std::chrono::steady_clock::now();
    for (uint64_t t = 0; t < commits; ++t) {
      tracked.ApplyCommit(reads[t], writes[t], t + 1);
      if ((t & 7) == 7) sink += tracked.TakeTouchedColumns().size();  // drain once per "cycle"
    }
    t1 = std::chrono::steady_clock::now();
    const double tracked_ns = NsPerOp(t0, t1, commits);

    // Per-cycle diff: one cycle's worth of commits (8) between snapshots.
    FMatrix prev = base;
    FMatrix cur = base;
    cur.EnableDirtyTracking();
    for (uint64_t t = 0; t < 8; ++t) cur.ApplyCommit(reads[t], writes[t], commits + t + 1);
    const std::vector<ObjectId> touched = cur.TakeTouchedColumns();
    const uint64_t reps = flags.smoke ? 50 : 2000;
    t0 = std::chrono::steady_clock::now();
    for (uint64_t r = 0; r < reps; ++r)
      sink += DeltaCodec::DiffColumns(prev, cur, touched, codec).size();
    t1 = std::chrono::steady_clock::now();
    const double diffcols_ns = NsPerOp(t0, t1, reps);
    t0 = std::chrono::steady_clock::now();
    for (uint64_t r = 0; r < reps; ++r) sink += DeltaCodec::Diff(prev, cur, codec).size();
    t1 = std::chrono::steady_clock::now();
    const double fullscan_ns = NsPerOp(t0, t1, reps);

    if (flags.csv) {
      std::printf("csv,commit_cost,%u,%.1f,%.1f,%.1f,%.1f,%.1f\n", n, base_ns, tracked_ns,
                  tracked_ns - base_ns, diffcols_ns, fullscan_ns);
    } else {
      std::printf("%6u %14.1f %14.1f %14.1f %16.1f %16.1f\n", n, base_ns, tracked_ns,
                  tracked_ns - base_ns, diffcols_ns, fullscan_ns);
    }
    if (sink == 0) std::printf("(empty diffs)\n");  // keep the timed calls observable
  }
}

int Main(int argc, char** argv) {
  const Flags flags = ParseDeltaFlags(argc, argv);
  const bool ok = RunCyclesSection(flags);
  RunCommitCostSection(flags);
  if (!ok) {
    std::fprintf(stderr, "delta control exceeded the full-matrix baseline; see above\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bcc::bench

int main(int argc, char** argv) { return bcc::bench::Main(argc, argv); }
