// Lossy-channel sweep: read-only transaction cost vs frame loss rate, full
// vs snapshot+delta control broadcast.
//
// For each (mode, loss rate) cell the closed-loop DES runs with the frame
// channel enabled and reports the read-txn abort rate, how many of those
// aborts followed a loss stall, stall events per committed transaction, the
// mean response time in cycle units (the stall-latency curve), and the
// control bits actually shipped per cycle. The interesting crossover: at
// loss 0 a long refresh period ships the fewest control bits, but under
// loss every delta between refreshes is a desync hazard — a lost delta
// stalls the client until the NEXT refresh, so the long-period tracker pays
// the highest stall latency. A short refresh period bounds the resync wait
// and overtakes it as loss grows; full-matrix columns are immune to desync
// (each column is self-contained) but ship the most bits.
//
// Flags (local; see bench_delta_broadcast.cc for the pattern):
//   --smoke      tiny run for CI build sanity
//   --csv        additionally dump machine-readable rows
//   --seed=N     override the base seed
//   --burst      use Gilbert-Elliott burst loss instead of Bernoulli

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "matrix/wire.h"
#include "sim/broadcast_sim.h"

namespace bcc::bench {
namespace {

struct Flags {
  bool smoke = false;
  bool csv = false;
  bool burst = false;
  uint64_t seed = 42;
};

Flags ParseChannelFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      flags.smoke = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      flags.csv = true;
    } else if (std::strcmp(argv[i], "--burst") == 0) {
      flags.burst = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      flags.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s (known: --smoke --csv --seed=N --burst)\n", argv[i]);
      std::exit(2);
    }
  }
  return flags;
}

struct Mode {
  const char* name;
  bool delta;
  uint64_t refresh_period;  // delta mode only
};

int Main(int argc, char** argv) {
  const Flags flags = ParseChannelFlags(argc, argv);
  const uint32_t n = 60;
  const unsigned ts = 8;
  const uint64_t cycles = flags.smoke ? 20 : 400;

  SimConfig base;
  base.algorithm = Algorithm::kFMatrix;
  base.num_objects = n;
  base.object_size_bits = 512;
  base.timestamp_bits = ts;
  base.client_txn_length = 4;
  base.server_txn_length = 4;
  base.server_txn_interval = 40000;
  base.mean_inter_op_delay = 4000;
  base.mean_inter_txn_delay = 8000;
  base.num_client_txns = 1u << 30;  // cutoff comes from stop_after_cycles
  base.warmup_txns = flags.smoke ? 1 : 20;
  base.stop_after_cycles = cycles;
  base.channel_broadcast = true;
  base.channel_frame_bits = 512;
  base.channel_burst = flags.burst;
  base.seed = flags.seed;

  const Mode modes[] = {
      {"full", false, 0},
      {"delta/r16", true, 16},
      {"delta/r4", true, 4},
  };
  const double losses[] = {0.0, 0.01, 0.05, 0.1, 0.2};

  const uint64_t cycle_bits = base.Geometry().cycle_bits;
  std::printf("== lossy channel sweep (n=%u, ts=%u, frame=%llu bits, %llu cycles, %s loss)\n", n,
              ts, static_cast<unsigned long long>(base.channel_frame_bits),
              static_cast<unsigned long long>(cycles), flags.burst ? "burst" : "bernoulli");
  std::printf("%10s %6s %6s %9s %10s %10s %10s %9s %12s %8s %8s\n", "mode", "loss", "txns",
              "rst/txn", "lossAborts", "stall/txn", "resp_cyc", "dropped%", "ctrlBits/cyc",
              "desyncs", "resyncs");

  bool ok = true;
  for (const Mode& mode : modes) {
    for (const double loss : losses) {
      SimConfig config = base;
      config.channel_loss_rate = loss;
      config.channel_corrupt_rate = loss / 4;
      if (mode.delta) {
        config.delta_broadcast = true;
        config.delta_refresh_period = mode.refresh_period;
      }
      BroadcastSim sim(config);
      const auto summary = sim.Run();
      if (!summary.ok()) {
        std::fprintf(stderr, "%s loss=%g: %s\n", mode.name, loss,
                     summary.status().ToString().c_str());
        ok = false;
        continue;
      }
      const ChannelStats& ch = summary->channel;
      // A high-loss delta cell can legitimately complete zero transactions
      // (a client that misses every refresh never syncs); keep ratios finite.
      const double txns = static_cast<double>(std::max<uint64_t>(1, summary->total_txns));
      const double drop_pct = ch.frames_sent == 0
                                  ? 0.0
                                  : 100.0 * static_cast<double>(ch.frames_dropped) /
                                        static_cast<double>(ch.frames_sent);
      // Control bits actually put on the air per cycle: the delta pipeline
      // accounts for itself; full mode ships every column every cycle.
      const uint64_t ctrl_bits_per_cycle =
          mode.delta ? summary->delta_control_bits / std::max<uint64_t>(1, summary->delta_cycles)
                     : FullMatrixControlBits(n, ts);
      const double resp_cycles =
          summary->mean_response_time / static_cast<double>(cycle_bits);
      if (flags.csv) {
        std::printf("csv,%s,%g,%llu,%.4f,%llu,%.4f,%.3f,%.3f,%llu,%llu,%llu\n", mode.name, loss,
                    static_cast<unsigned long long>(summary->total_txns),
                    static_cast<double>(summary->total_restarts) / txns,
                    static_cast<unsigned long long>(ch.loss_attributed_aborts),
                    static_cast<double>(ch.stalls) / txns, resp_cycles, drop_pct,
                    static_cast<unsigned long long>(ctrl_bits_per_cycle),
                    static_cast<unsigned long long>(ch.tracker_desyncs),
                    static_cast<unsigned long long>(ch.resyncs));
      } else {
        std::printf("%10s %6g %6llu %9.4f %10llu %10.4f %10.3f %8.2f%% %12llu %8llu %8llu\n",
                    mode.name, loss, static_cast<unsigned long long>(summary->total_txns),
                    static_cast<double>(summary->total_restarts) / txns,
                    static_cast<unsigned long long>(ch.loss_attributed_aborts),
                    static_cast<double>(ch.stalls) / txns, resp_cycles, drop_pct,
                    static_cast<unsigned long long>(ctrl_bits_per_cycle),
                    static_cast<unsigned long long>(ch.tracker_desyncs),
                    static_cast<unsigned long long>(ch.resyncs));
      }
      // Sanity: the channel must actually have carried the run.
      if (ch.frames_sent == 0 || (loss > 0 && ch.frames_dropped == 0)) {
        std::fprintf(stderr, "%s loss=%g: channel saw no traffic/faults\n", mode.name, loss);
        ok = false;
      }
    }
  }
  if (!ok) return 1;
  return 0;
}

}  // namespace
}  // namespace bcc::bench

int main(int argc, char** argv) { return bcc::bench::Main(argc, argv); }
