// Perf-trajectory harness (PR 5): machine-readable measurements of the
// server-side hot paths this PR optimized, emitted as BENCH_5.json through
// the obs/json.h writer so CI can track the numbers across PRs.
//
// Sections (one JSON row per measurement):
//   commit_maintenance  ns/commit for the cycle-fused ApplyCommitBatch path
//                       vs. the per-commit ApplyCommit oracle, plus the
//                       speedup ratio; the fused result is checked
//                       bit-identical to the oracle before timing is trusted.
//   cycle_snapshot      bytes physically copied per cycle by the CoW
//                       FMatrixSnapshot (O(n * touched)) vs. the n^2 full
//                       copy it replaced, plus ns/snapshot.
//   engine_cycles       end-to-end broadcast cycles/sec of the DES engine
//                       under the Table 1 F-Matrix workload.
//
// Flags: --n=N (largest matrix size; default 1000), --out=F (default
// BENCH_5.json), --quick (small sizes for CI smoke runs), --seed=N.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "matrix/f_matrix.h"
#include "obs/json.h"
#include "obs/trace_export.h"
#include "sim/broadcast_sim.h"

namespace bcc {
namespace {

struct Flags {
  uint32_t n = 1000;
  uint64_t seed = 42;
  bool quick = false;
  std::string out = "BENCH_5.json";
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--n=", 4) == 0) {
      flags.n = static_cast<uint32_t>(std::strtoul(argv[i] + 4, nullptr, 10));
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      flags.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      flags.out = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      flags.quick = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s (known: --n=N --seed=N --out=F --quick)\n", argv[i]);
      std::exit(2);
    }
  }
  return flags;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// A server cycle's worth of committed read/write sets. The shape follows the
// Table 1 server transaction (reads then writes) at a commit rate that fills
// a long broadcast cycle: many commits per cycle is exactly the regime the
// fused path exists for.
std::vector<std::vector<CommitSets>> MakeWorkload(Rng& rng, uint32_t n, uint32_t cycles,
                                                  uint32_t commits_per_cycle) {
  const uint32_t reads = n < 2 ? n : 2;
  const uint32_t writes = n < 8 ? n : 8;
  std::vector<std::vector<CommitSets>> workload(cycles);
  for (auto& cycle : workload) {
    cycle.resize(commits_per_cycle);
    for (CommitSets& c : cycle) {
      c.read_set = rng.SampleWithoutReplacement(n, reads);
      c.write_set = rng.SampleWithoutReplacement(n, writes);
    }
  }
  return workload;
}

struct MaintenanceResult {
  double oracle_ns_per_commit = 0;
  double batched_ns_per_commit = 0;
  double speedup = 0;
  uint64_t commits = 0;
};

MaintenanceResult MeasureCommitMaintenance(uint32_t n, uint32_t cycles,
                                           uint32_t commits_per_cycle, uint64_t seed) {
  Rng rng(seed);
  const auto workload = MakeWorkload(rng, n, cycles, commits_per_cycle);
  const uint64_t commits = static_cast<uint64_t>(cycles) * commits_per_cycle;

  FMatrix oracle(n);
  auto start = std::chrono::steady_clock::now();
  Cycle cycle = 1;
  for (const auto& batch : workload) {
    for (const CommitSets& c : batch) oracle.ApplyCommit(c.read_set, c.write_set, cycle);
    ++cycle;
  }
  const double oracle_s = SecondsSince(start);

  FMatrix batched(n);
  start = std::chrono::steady_clock::now();
  cycle = 1;
  for (const auto& batch : workload) batched.ApplyCommitBatch(batch, cycle++);
  const double batched_s = SecondsSince(start);

  if (!(oracle == batched)) {
    std::fprintf(stderr, "FATAL: fused maintenance diverged from the per-commit oracle\n");
    std::exit(1);
  }

  MaintenanceResult r;
  r.commits = commits;
  r.oracle_ns_per_commit = oracle_s * 1e9 / static_cast<double>(commits);
  r.batched_ns_per_commit = batched_s * 1e9 / static_cast<double>(commits);
  r.speedup = batched_s > 0 ? oracle_s / batched_s : 0;
  return r;
}

struct SnapshotResult {
  double ns_per_snapshot = 0;
  double bytes_copied_per_cycle = 0;
  double full_copy_bytes = 0;
  double touched_columns_per_cycle = 0;
};

SnapshotResult MeasureCycleSnapshot(uint32_t n, uint32_t cycles, uint32_t commits_per_cycle,
                                    uint64_t seed) {
  Rng rng(seed);
  const auto workload = MakeWorkload(rng, n, cycles, commits_per_cycle);
  FMatrix m(n);
  (void)m.Snapshot();  // the first snapshot pays the one-time full copy
  const uint64_t copied_before = m.snapshot_columns_copied();

  double seconds = 0;
  Cycle cycle = 1;
  std::vector<FMatrixSnapshot> held(2);  // a held snapshot per cycle, like the engines
  for (const auto& batch : workload) {
    m.ApplyCommitBatch(batch, cycle);
    const auto start = std::chrono::steady_clock::now();
    held[cycle % 2] = m.Snapshot();
    seconds += SecondsSince(start);
    ++cycle;
  }

  SnapshotResult r;
  const double per_cycle_cols =
      static_cast<double>(m.snapshot_columns_copied() - copied_before) / cycles;
  r.ns_per_snapshot = seconds * 1e9 / cycles;
  r.touched_columns_per_cycle = per_cycle_cols;
  r.bytes_copied_per_cycle = per_cycle_cols * n * sizeof(Cycle);
  r.full_copy_bytes = static_cast<double>(n) * n * sizeof(Cycle);
  return r;
}

struct EngineResult {
  double cycles_per_sec = 0;
  uint64_t cycles = 0;
};

EngineResult MeasureEngineCycles(uint32_t num_objects, uint64_t cycles, uint64_t seed) {
  SimConfig config;  // Table 1 defaults, F-Matrix
  config.num_objects = num_objects;
  config.seed = seed;
  config.stop_after_cycles = cycles;
  config.num_client_txns = 0xffffffff;  // cutoff is the cycle count
  const auto start = std::chrono::steady_clock::now();
  const auto summary = RunSimulation(config);
  const double seconds = SecondsSince(start);
  if (!summary.ok()) {
    std::fprintf(stderr, "FATAL: engine run failed: %s\n", summary.status().ToString().c_str());
    std::exit(1);
  }
  EngineResult r;
  r.cycles = cycles;
  r.cycles_per_sec = seconds > 0 ? static_cast<double>(cycles) / seconds : 0;
  return r;
}

int Main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  // --quick shrinks every dimension so the CI smoke job finishes in seconds.
  const uint32_t big_n = flags.quick ? (flags.n < 128 ? flags.n : 128) : flags.n;
  const std::vector<uint32_t> sizes =
      flags.quick ? std::vector<uint32_t>{64, big_n} : std::vector<uint32_t>{300, big_n};
  const uint32_t cycles = flags.quick ? 8 : 20;
  const uint64_t engine_cycles = flags.quick ? 50 : 400;
  const uint32_t engine_objects = flags.quick ? 100 : 300;

  JsonWriter w;
  w.BeginObject()
      .Key("schema")
      .Value("bcc.perf_trajectory.v1")
      .Key("bench")
      .Value("BENCH_5")
      .Key("seed")
      .Value(flags.seed)
      .Key("quick")
      .Value(flags.quick)
      .Key("rows")
      .BeginArray();

  for (const uint32_t n : sizes) {
    // One commit per object slot saturates the cycle — the regime where the
    // Fig. 4a sweep spends its time at n >= 1000.
    const uint32_t commits_per_cycle = n;
    const MaintenanceResult m =
        MeasureCommitMaintenance(n, cycles, commits_per_cycle, flags.seed);
    std::printf("commit_maintenance n=%u: oracle %.1f ns/commit, batched %.1f ns/commit "
                "(%.2fx)\n",
                n, m.oracle_ns_per_commit, m.batched_ns_per_commit, m.speedup);
    w.BeginObject()
        .Key("section")
        .Value("commit_maintenance")
        .Key("n")
        .Value(n)
        .Key("commits_per_cycle")
        .Value(commits_per_cycle)
        .Key("commits")
        .Value(m.commits)
        .Key("oracle_ns_per_commit")
        .Value(m.oracle_ns_per_commit)
        .Key("batched_ns_per_commit")
        .Value(m.batched_ns_per_commit)
        .Key("speedup")
        .Value(m.speedup)
        .EndObject();

    // Snapshot cost is measured at the Table 1 commit rate (a handful of
    // commits per cycle), where touched columns << n — the regime the CoW
    // snapshot targets. At queue saturation it degrades gracefully to the
    // full copy it replaced.
    const uint32_t snapshot_commits = n < 8 ? n : 8;
    const SnapshotResult s = MeasureCycleSnapshot(n, cycles, snapshot_commits, flags.seed);
    std::printf("cycle_snapshot n=%u: %.1f ns/snapshot, %.0f bytes/cycle copied "
                "(full copy: %.0f bytes)\n",
                n, s.ns_per_snapshot, s.bytes_copied_per_cycle, s.full_copy_bytes);
    w.BeginObject()
        .Key("section")
        .Value("cycle_snapshot")
        .Key("n")
        .Value(n)
        .Key("commits_per_cycle")
        .Value(snapshot_commits)
        .Key("ns_per_snapshot")
        .Value(s.ns_per_snapshot)
        .Key("touched_columns_per_cycle")
        .Value(s.touched_columns_per_cycle)
        .Key("bytes_copied_per_cycle")
        .Value(s.bytes_copied_per_cycle)
        .Key("full_copy_bytes")
        .Value(s.full_copy_bytes)
        .EndObject();
  }

  const EngineResult e = MeasureEngineCycles(engine_objects, engine_cycles, flags.seed);
  std::printf("engine_cycles n=%u: %.1f cycles/sec over %llu cycles\n", engine_objects,
              e.cycles_per_sec, static_cast<unsigned long long>(e.cycles));
  w.BeginObject()
      .Key("section")
      .Value("engine_cycles")
      .Key("n")
      .Value(engine_objects)
      .Key("cycles")
      .Value(e.cycles)
      .Key("cycles_per_sec")
      .Value(e.cycles_per_sec)
      .EndObject();

  w.EndArray().EndObject();
  const std::string json = std::move(w).Take() + "\n";
  const Status valid = ValidateJson(json);
  if (!valid.ok()) {
    std::fprintf(stderr, "FATAL: emitted JSON fails validation: %s\n", valid.ToString().c_str());
    return 1;
  }
  const Status written = WriteTextFile(flags.out, json);
  if (!written.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("trajectory: %s\n", flags.out.c_str());
  return 0;
}

}  // namespace
}  // namespace bcc

int main(int argc, char** argv) { return bcc::Main(argc, argv); }
