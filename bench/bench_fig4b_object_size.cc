// Figure 4(b): response time vs object size (Section 4.6). Cycle length
// grows with object size; F-Matrix scales better than R-Matrix and
// Datacycle, and converges toward F-Matrix-No as objects grow (the control
// information becomes a vanishing share of the cycle).

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace bcc;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  ExperimentSpec spec;
  spec.title = "Figure 4(b): effect of object size";
  spec.x_label = "object size (KB)";
  spec.base = bench::BaseConfig(flags);
  spec.x_values = {0.5, 1, 2, 4};
  spec.apply = [](SimConfig* c, double x) {
    c->object_size_bits = static_cast<uint64_t>(x * 8 * 1024);
  };
  return bench::RunAndPrint(spec, flags, /*print_restarts=*/false);
}
