// Shared plumbing for the figure-reproduction benchmark binaries.
//
// Every binary prints the paper's series as response-time and restart-ratio
// tables (mean +- 95% CI over the steady-state window, Table 1 defaults).
// Flags:
//   --quick           reduced transaction counts (CI sanity runs)
//   --csv             additionally dump machine-readable rows
//   --seed=N          override the base seed
//   --metrics-json=F  dump every grid cell's full summary as JSON to F

#ifndef BCC_BENCH_BENCH_COMMON_H_
#define BCC_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "obs/json.h"
#include "obs/trace_export.h"
#include "sim/experiment.h"

namespace bcc::bench {

struct BenchFlags {
  bool quick = false;
  bool csv = false;
  uint64_t seed = 42;
  std::string metrics_json;  ///< empty = no JSON dump
};

inline BenchFlags ParseFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      flags.quick = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      flags.csv = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      flags.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--metrics-json=", 15) == 0) {
      flags.metrics_json = argv[i] + 15;
    } else {
      std::fprintf(stderr, "unknown flag: %s (known: --quick --csv --seed=N --metrics-json=F)\n",
                   argv[i]);
      std::exit(2);
    }
  }
  return flags;
}

/// The full result grid as one JSON document: experiment metadata plus one
/// cell object per (algorithm, x) pair, each embedding the cell's complete
/// SimSummary::ToJson (including the per-cause abort breakdown).
inline std::string ExperimentToJson(const ExperimentResult& result) {
  JsonWriter w;
  w.BeginObject()
      .Key("title")
      .Value(result.spec.title)
      .Key("xLabel")
      .Value(result.spec.x_label)
      .Key("cells")
      .BeginArray();
  for (size_t a = 0; a < result.spec.algorithms.size(); ++a) {
    for (size_t x = 0; x < result.spec.x_values.size(); ++x) {
      w.BeginObject()
          .Key("algorithm")
          .Value(AlgorithmName(result.spec.algorithms[a]))
          .Key("x")
          .Value(result.spec.x_values[x])
          .Key("summary")
          .RawValue(result.At(a, x).ToJson())
          .EndObject();
    }
  }
  w.EndArray().EndObject();
  return std::move(w).Take() + "\n";
}

/// Table 1 defaults adjusted for the run mode.
inline SimConfig BaseConfig(const BenchFlags& flags) {
  SimConfig config;  // Table 1 defaults
  config.seed = flags.seed;
  if (flags.quick) {
    config.num_client_txns = 100;
    config.warmup_txns = 40;
  }
  return config;
}

/// Runs the experiment, prints the paper-style tables, exits non-zero on
/// simulation errors.
inline int RunAndPrint(const ExperimentSpec& spec, const BenchFlags& flags,
                       bool print_restarts = true) {
  auto result = RunExperiment(spec);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  PrintResponseTable(*result, std::cout);
  if (print_restarts) PrintRestartTable(*result, std::cout);
  if (flags.csv) PrintCsv(*result, std::cout);
  if (!flags.metrics_json.empty()) {
    const Status written = WriteTextFile(flags.metrics_json, ExperimentToJson(*result));
    if (!written.ok()) {
      std::fprintf(stderr, "metrics dump failed: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("metrics: %s\n", flags.metrics_json.c_str());
  }
  return 0;
}

}  // namespace bcc::bench

#endif  // BCC_BENCH_BENCH_COMMON_H_
