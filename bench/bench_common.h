// Shared plumbing for the figure-reproduction benchmark binaries.
//
// Every binary prints the paper's series as response-time and restart-ratio
// tables (mean +- 95% CI over the steady-state window, Table 1 defaults).
// Flags:
//   --quick      reduced transaction counts (CI sanity runs)
//   --csv        additionally dump machine-readable rows
//   --seed=N     override the base seed

#ifndef BCC_BENCH_BENCH_COMMON_H_
#define BCC_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "sim/experiment.h"

namespace bcc::bench {

struct BenchFlags {
  bool quick = false;
  bool csv = false;
  uint64_t seed = 42;
};

inline BenchFlags ParseFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      flags.quick = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      flags.csv = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      flags.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s (known: --quick --csv --seed=N)\n", argv[i]);
      std::exit(2);
    }
  }
  return flags;
}

/// Table 1 defaults adjusted for the run mode.
inline SimConfig BaseConfig(const BenchFlags& flags) {
  SimConfig config;  // Table 1 defaults
  config.seed = flags.seed;
  if (flags.quick) {
    config.num_client_txns = 100;
    config.warmup_txns = 40;
  }
  return config;
}

/// Runs the experiment, prints the paper-style tables, exits non-zero on
/// simulation errors.
inline int RunAndPrint(const ExperimentSpec& spec, const BenchFlags& flags,
                       bool print_restarts = true) {
  auto result = RunExperiment(spec);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  PrintResponseTable(*result, std::cout);
  if (print_restarts) PrintRestartTable(*result, std::cout);
  if (flags.csv) PrintCsv(*result, std::cout);
  return 0;
}

}  // namespace bcc::bench

#endif  // BCC_BENCH_BENCH_COMMON_H_
