// Throughput of the real-transport broadcast tier (PR 8), swept over the
// number of socket clients AND over telemetry on/off (PR 9), emitted as
// BENCH_9.json in the bcc.perf_trajectory.v1 schema so CI can track the
// numbers across PRs. Each sweep point runs twice: once with the metrics
// registry + in-memory tracer live on daemon and clients ("on") and once
// with telemetry fully disabled ("off") — the branch-on-null contract says
// the two cycles/sec columns must be indistinguishable.
//
// Each sweep point runs the actual daemon engine (RunServerDaemon) in one
// thread and N client runtimes (RunClientRuntime) in N threads, all talking
// over real UDP sockets on 127.0.0.1 with sendmmsg-batched unicast fan-out.
// The broadcast is unpaced, so cycles/sec is the wall-clock rate at which
// the tier can snapshot, frame-encode, and fan a cycle out — and the client
// p99 is the end-to-end response time of a read transaction whose reads ride
// the broadcast (a transaction spans client_txn_length cycles by design, so
// latency is dominated by cycle rate, not socket hops).
//
// Objects are kept small (256 B) so a full cycle fits the kernel's capped
// receive buffer many times over; residual drops under scheduler stalls are
// reported per row (frames_dropped, digest_match) rather than hidden.
//
// Rows (section "net_tier"): one per client count with wall-clock
// cycles/sec, aggregate client commits/aborts, the worst client p50/p99
// response time, fan-out bytes, and whether every client's state digest
// matched the server's (always true when frames_dropped == 0).
//
// Flags: --out=F (default BENCH_9.json), --quick (CI smoke: fewer clients,
// fewer cycles), --seed=N.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/client_runtime.h"
#include "net/net_config.h"
#include "net/server_daemon.h"
#include "obs/json.h"
#include "obs/trace_export.h"

namespace bcc {
namespace {

struct Flags {
  uint64_t seed = 42;
  bool quick = false;
  std::string out = "BENCH_9.json";
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      flags.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      flags.out = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      flags.quick = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s (known: --seed=N --out=F --quick)\n", argv[i]);
      std::exit(2);
    }
  }
  return flags;
}

struct Cell {
  uint32_t clients = 0;
  bool telemetry = false;  ///< metrics registry + tracer live during the run
  uint64_t cycles = 0;
  uint64_t server_commits = 0;
  uint64_t uplink_accepts = 0;
  uint64_t bytes_sent = 0;
  double wall_sec = 0;
  double cycles_per_sec = 0;
  uint64_t client_commits = 0;
  uint64_t client_aborts = 0;
  uint64_t frames_dropped = 0;
  uint64_t p50_us = 0;  ///< worst client's median response time
  uint64_t p99_us = 0;  ///< worst client's p99 response time
  bool digest_match = true;
};

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// One sweep point: daemon thread + `clients` client threads over loopback.
/// With `telemetry` the full recording stack (registry histograms + trace
/// rings) is live on every node, but nothing is written to disk mid-run —
/// the cell measures pure recording overhead, not file I/O.
Cell RunCell(uint32_t clients, uint64_t cycles, uint64_t seed, bool telemetry) {
  const std::string endpoint_file = "bench_net_tier_" + std::to_string(clients) +
                                    (telemetry ? "_tel" : "") + ".ep";
  std::remove(endpoint_file.c_str());

  SimConfig sim;
  sim.num_objects = 64;
  sim.object_size_bits = 2048;  // 256 B pages: a cycle is ~16 KB on the wire
  sim.seed = seed;
  sim.num_clients = clients;
  sim.stop_after_cycles = cycles;

  NetConfig server_net;
  server_net.listen = "127.0.0.1:0";
  server_net.endpoint_file = endpoint_file;
  server_net.expected_clients = clients;
  server_net.max_wall_ms = 120000;
  server_net.metrics = telemetry;

  ServerReport server_report;
  Status server_status;
  std::thread server([&] { server_status = RunServerDaemon(server_net, sim, &server_report); });

  // Discover the daemon's ephemeral uplink port.
  std::string endpoint;
  for (int i = 0; i < 400 && endpoint.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    endpoint = ReadWholeFile(endpoint_file);
  }
  while (!endpoint.empty() && (endpoint.back() == '\n' || endpoint.back() == '\r')) {
    endpoint.pop_back();
  }
  if (endpoint.empty()) {
    std::fprintf(stderr, "FATAL: daemon never wrote %s\n", endpoint_file.c_str());
    std::exit(1);
  }

  std::vector<ClientReport> reports(clients);
  std::vector<Status> statuses(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      NetConfig client_net;
      client_net.connect = endpoint;
      client_net.client_id = c + 1;
      client_net.max_wall_ms = 120000;
      client_net.metrics = telemetry;
      statuses[c] = RunClientRuntime(client_net, sim, &reports[c]);
    });
  }
  for (std::thread& t : threads) t.join();
  server.join();
  std::remove(endpoint_file.c_str());

  if (!server_status.ok()) {
    std::fprintf(stderr, "FATAL: daemon (%u clients): %s\n", clients,
                 server_status.ToString().c_str());
    std::exit(1);
  }
  for (uint32_t c = 0; c < clients; ++c) {
    if (!statuses[c].ok()) {
      std::fprintf(stderr, "FATAL: client %u/%u: %s\n", c, clients,
                   statuses[c].ToString().c_str());
      std::exit(1);
    }
  }

  Cell cell;
  cell.clients = clients;
  cell.telemetry = telemetry;
  cell.cycles = server_report.cycles;
  cell.server_commits = server_report.server_commits;
  cell.uplink_accepts = server_report.uplink_accepts;
  cell.bytes_sent = server_report.bytes_sent;
  cell.wall_sec = server_report.wall_sec;
  cell.cycles_per_sec = server_report.cycles_per_sec;
  for (const ClientReport& r : reports) {
    cell.client_commits += r.commits;
    cell.client_aborts += r.aborts;
    cell.frames_dropped += r.channel.frames_dropped;
    cell.p50_us = std::max(cell.p50_us, r.p50_us);
    cell.p99_us = std::max(cell.p99_us, r.p99_us);
    if (r.digest != server_report.digest) cell.digest_match = false;
  }
  return cell;
}

int Main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  const std::vector<uint32_t> client_counts =
      flags.quick ? std::vector<uint32_t>{1, 2} : std::vector<uint32_t>{1, 2, 4, 8};
  const uint64_t cycles = flags.quick ? 16 : 48;

  JsonWriter w;
  w.BeginObject()
      .Key("schema")
      .Value("bcc.perf_trajectory.v1")
      .Key("bench")
      .Value("BENCH_9")
      .Key("seed")
      .Value(flags.seed)
      .Key("quick")
      .Value(flags.quick)
      .Key("rows")
      .BeginArray();

  for (const uint32_t clients : client_counts) {
    for (const bool telemetry : {false, true}) {
      const Cell cell = RunCell(clients, cycles, flags.seed, telemetry);
      std::printf("net_tier x%u [telemetry %s]: %6.1f cycles/sec, p99 %llu us, "
                  "%llu client commits, %llu dropped, digest %s\n",
                  cell.clients, cell.telemetry ? "on " : "off", cell.cycles_per_sec,
                  static_cast<unsigned long long>(cell.p99_us),
                  static_cast<unsigned long long>(cell.client_commits),
                  static_cast<unsigned long long>(cell.frames_dropped),
                  cell.digest_match ? "match" : "MISMATCH");
      w.BeginObject()
          .Key("section")
          .Value("net_tier")
          .Key("telemetry")
          .Value(cell.telemetry ? "on" : "off")
          .Key("clients")
          .Value(cell.clients)
          .Key("cycles")
          .Value(cell.cycles)
          .Key("num_objects")
          .Value(static_cast<uint64_t>(64))
          .Key("object_bytes")
          .Value(static_cast<uint64_t>(256))
          .Key("server_commits")
          .Value(cell.server_commits)
          .Key("uplink_accepts")
          .Value(cell.uplink_accepts)
          .Key("bytes_sent")
          .Value(cell.bytes_sent)
          .Key("wall_sec")
          .Value(cell.wall_sec)
          .Key("cycles_per_sec")
          .Value(cell.cycles_per_sec)
          .Key("client_commits")
          .Value(cell.client_commits)
          .Key("client_aborts")
          .Value(cell.client_aborts)
          .Key("frames_dropped")
          .Value(cell.frames_dropped)
          .Key("p50_us")
          .Value(cell.p50_us)
          .Key("p99_us")
          .Value(cell.p99_us)
          .Key("digest_match")
          .Value(cell.digest_match)
          .EndObject();
    }
  }

  w.EndArray().EndObject();
  const std::string json = std::move(w).Take() + "\n";
  const Status valid = ValidateJson(json);
  if (!valid.ok()) {
    std::fprintf(stderr, "FATAL: emitted JSON fails validation: %s\n", valid.ToString().c_str());
    return 1;
  }
  const Status written = WriteTextFile(flags.out, json);
  if (!written.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("trajectory: %s\n", flags.out.c_str());
  return 0;
}

}  // namespace
}  // namespace bcc

int main(int argc, char** argv) { return bcc::Main(argc, argv); }
