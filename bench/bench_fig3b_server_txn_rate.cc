// Figure 3(b): response time vs transaction rate at the server
// (Section 4.4). The x-axis is the inter-completion time, so the rate
// DECREASES left to right, as in the paper. Response times improve as the
// rate drops; F-Matrix stays close to F-Matrix-No and shows almost no
// degradation at high rates, in sharp contrast to Datacycle.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace bcc;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  ExperimentSpec spec;
  spec.title = "Figure 3(b): effect of transaction rate at server";
  spec.x_label = "server inter-txn time (bits)";
  spec.base = bench::BaseConfig(flags);
  spec.x_values = {125000, 250000, 500000, 1000000, 2000000};
  spec.apply = [](SimConfig* c, double x) {
    c->server_txn_interval = static_cast<uint64_t>(x);
  };
  return bench::RunAndPrint(spec, flags);
}
