// Figure 4(a): response time vs number of objects in the database
// (Section 4.5). Larger databases mean longer cycles (and for F-Matrix,
// quadratically more control bits), so response times rise for everyone,
// but the relative ordering is unchanged and F-Matrix's rate of increase is
// the smallest among the practical protocols.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace bcc;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  ExperimentSpec spec;
  spec.title = "Figure 4(a): effect of number of objects";
  spec.x_label = "objects in database";
  spec.base = bench::BaseConfig(flags);
  spec.x_values = {100, 200, 300, 400, 500};
  spec.apply = [](SimConfig* c, double x) { c->num_objects = static_cast<uint32_t>(x); };
  return bench::RunAndPrint(spec, flags, /*print_restarts=*/false);
}
