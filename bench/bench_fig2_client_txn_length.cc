// Figure 2(a)/(b): response time and restart ratio vs client transaction
// length (Section 4.2). Expected shape: all four algorithms similar up to
// length 4; beyond 6, Datacycle degrades sharply (off the chart at 10 in
// the paper), R-Matrix is much better, F-Matrix is nearly flat and close to
// the F-Matrix-No ideal, with restarts near zero.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace bcc;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  ExperimentSpec spec;
  spec.title = "Figure 2(a)+(b): effect of client transaction length";
  spec.x_label = "client txn length";
  spec.base = bench::BaseConfig(flags);
  spec.x_values = {2, 4, 6, 8, 10};
  spec.apply = [](SimConfig* c, double x) {
    c->client_txn_length = static_cast<uint32_t>(x);
  };
  return bench::RunAndPrint(spec, flags);
}
