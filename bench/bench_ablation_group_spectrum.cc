// Ablation (Section 3.2.2): the n x g grouped-control spectrum between the
// reduced vector (g = 1, Datacycle-style condition and overhead) and the
// full F-Matrix (g = n). The paper analyses the two endpoints; this sweep
// fills in the middle, showing the tradeoff between control-information
// overhead (cycle length) and unnecessary conflicts (aborts).

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace bcc;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  ExperimentSpec spec;
  spec.title = "Ablation: grouped-control spectrum (g groups, F-Matrix protocol family)";
  spec.x_label = "groups g";
  spec.base = bench::BaseConfig(flags);
  spec.x_values = {1, 3, 10, 30, 100, 300};
  spec.algorithms = {Algorithm::kFMatrix};
  spec.apply = [](SimConfig* c, double x) {
    c->num_groups = static_cast<uint32_t>(x);
  };
  const int rc = bench::RunAndPrint(spec, flags);
  if (rc != 0) return rc;

  // Reference rows: the paper's endpoints under their own names.
  ExperimentSpec refs;
  refs.title = "Reference: paper endpoints at Table 1 defaults";
  refs.x_label = "(defaults)";
  refs.base = bench::BaseConfig(flags);
  refs.x_values = {0};
  refs.apply = {};
  return bench::RunAndPrint(refs, flags);
}
