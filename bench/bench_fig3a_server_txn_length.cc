// Figure 3(a): response time vs server transaction length (Section 4.3).
// Longer server transactions mean more updates per cycle; response times
// rise for every algorithm, but F-Matrix shows very little increase
// compared to Datacycle and even R-Matrix.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace bcc;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  ExperimentSpec spec;
  spec.title = "Figure 3(a): effect of server transaction length";
  spec.x_label = "server txn length";
  spec.base = bench::BaseConfig(flags);
  spec.x_values = {2, 4, 8, 12, 16};
  spec.apply = [](SimConfig* c, double x) {
    c->server_txn_length = static_cast<uint32_t>(x);
  };
  return bench::RunAndPrint(spec, flags);
}
