// Ablation (Section 5 future work: "extensions to optimize for update
// transactions at clients"): a fraction of client transactions buffer
// writes locally and commit through the server's optimistic validator over
// the uplink. Read conditions still validate every read off the air, so the
// algorithms differ in how often an update transaction even REACHES its
// uplink commit; the validator then rejects stale read sets.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace bcc;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  ExperimentSpec spec;
  spec.title = "Ablation: client update-transaction fraction (uplink commits)";
  spec.x_label = "update fraction";
  spec.base = bench::BaseConfig(flags);
  spec.base.client_txn_length = 4;
  spec.x_values = {0.0, 0.1, 0.3, 0.5};
  spec.apply = [](SimConfig* c, double x) { c->client_update_fraction = x; };
  return bench::RunAndPrint(spec, flags);
}
