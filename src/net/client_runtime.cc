#include "net/client_runtime.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "channel/frame.h"
#include "client/delta_tracker.h"
#include "client/read_txn.h"
#include "client/receiver.h"
#include "common/format.h"
#include "net/datagram.h"
#include "net/epoll_loop.h"
#include "net/pacing.h"
#include "net/socket.h"
#include "net/state_digest.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "sim/workload.h"

namespace bcc {
namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

uint64_t Quantile(std::vector<uint64_t> sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

void AppendChannelStatsJson(JsonWriter& w, const ChannelStats& ch) {
  w.BeginObject()
      .Key("frames_sent").Value(ch.frames_sent)
      .Key("frames_dropped").Value(ch.frames_dropped)
      .Key("frames_delivered").Value(ch.frames_delivered)
      .Key("frames_rejected").Value(ch.frames_rejected)
      .Key("control_losses").Value(ch.control_losses)
      .Key("data_losses").Value(ch.data_losses)
      .Key("stalls").Value(ch.stalls)
      .Key("resyncs").Value(ch.resyncs)
      .Key("tracker_desyncs").Value(ch.tracker_desyncs)
      .Key("loss_attributed_aborts").Value(ch.loss_attributed_aborts)
      .EndObject();
}

/// One open transaction. Slots progress in lockstep with the broadcast: each
/// ingested cycle advances every idle slot by exactly one read, so a
/// transaction of L reads spans >= L cycles and its F-Matrix validation runs
/// against genuinely evolving control info.
struct TxnSlot {
  explicit TxnSlot(Algorithm algorithm, std::optional<CycleStampCodec> codec)
      : protocol(algorithm, codec) {}

  ReadOnlyTxnProtocol protocol;
  std::vector<ObjectId> read_set;
  std::vector<ObjectId> write_set;  // nonempty iff is_update
  bool is_update = false;
  size_t read_idx = 0;
  uint64_t start_us = 0;
  bool stalled_this_attempt = false;

  // Update-uplink state: an UPDATE is in flight and the slot is parked until
  // the matching UPDATE_REPLY (resent if the reply outwaits reply_wait_cycles).
  bool awaiting_reply = false;
  uint32_t update_seq = 0;
  uint32_t reply_wait_cycles = 0;
};

/// Per-cycle reassembly buffer: datagrams held until the cycle is flushed
/// (all datagrams arrived, a newer cycle started, or the daemon asked for
/// stats). Late datagrams for an already-flushed cycle are dropped — the
/// missed-cycle rule makes stale control info unusable anyway.
struct CycleBuffer {
  uint16_t dgram_count = 0;
  uint16_t cycle_frames = 0;
  std::map<uint16_t, std::vector<Frame>> dgrams;  // dgram_seq -> frames

  bool Complete() const { return dgram_count > 0 && dgrams.size() == dgram_count; }
};

class ClientRuntime {
 public:
  ClientRuntime(const NetConfig& net, const SimConfig& sim) : net_(net), sim_(sim) {}

  Status Run(ClientReport* report);

 private:
  Status SetUp();
  void SetUpTelemetry();
  Status MaybeLogMetrics();
  void RefreshSnapshotGauges();
  std::string MetricsEnvelopeJson();
  Status Handshake();
  Status CompleteHandshake(const HelloAckMsg& ack);
  Status DrainSocket(UdpSocket* sock);
  Status HandleDatagram(const InDatagram& d);
  Status HandleCycleData(std::span<const uint8_t> bytes);
  Status FlushCycle(Cycle cycle, CycleBuffer&& buffer);
  Status AdvanceSlots(Cycle cycle);
  void StartNextTxn(TxnSlot& slot);
  void CommitSlot(TxnSlot& slot);
  void AbortSlot(TxnSlot& slot);
  Status SendUpdate(TxnSlot& slot);
  Status HandleUpdateReply(const UpdateReplyMsg& reply);
  Status SendStats();
  uint64_t ComputeDigest() const;

  const NetConfig& net_;
  SimConfig sim_;

  UdpSocket uplink_;
  UdpSocket mcast_;  // valid only with --mcast
  SockAddr server_addr_ = {};
  EpollLoop loop_;

  HelloAckMsg ack_;
  std::optional<CycleStampCodec> stamp_codec_;
  std::optional<FrameCodec> codec_;
  std::unique_ptr<DeltaMatrixTracker> tracker_;
  std::unique_ptr<ChannelReceiver> receiver_;
  std::unique_ptr<ClientWorkload> workload_;
  std::vector<std::unique_ptr<TxnSlot>> slots_;

  std::map<Cycle, CycleBuffer> pending_cycles_;
  Cycle last_flushed_ = 0;
  uint64_t cycles_ingested_ = 0;

  uint64_t commits_ = 0;
  uint64_t aborts_ = 0;
  uint64_t update_commits_ = 0;
  uint64_t update_rejects_ = 0;
  uint32_t next_update_seq_ = 1;
  std::vector<uint64_t> response_us_;

  bool stats_requested_ = false;
  uint64_t last_stats_req_ms_ = 0;

  // Telemetry (DESIGN.md §4k). Handles are null when telemetry is off, so
  // every recording site is a branch-on-null no-op (the PR-4 contract).
  std::unique_ptr<MetricsRegistry> registry_;
  Counter* m_cycles_ingested_ = nullptr;
  Counter* m_gap_cycles_ = nullptr;
  Counter* m_reads_ = nullptr;
  Counter* m_commits_ = nullptr;
  Counter* m_aborts_ = nullptr;
  Counter* m_stalls_ = nullptr;
  Counter* m_updates_sent_ = nullptr;
  Counter* m_update_commits_ = nullptr;
  Counter* m_update_rejects_ = nullptr;
  Counter* m_metrics_polls_ = nullptr;
  Gauge* m_last_cycle_ = nullptr;
  Gauge* m_pending_cycles_ = nullptr;
  Gauge* m_frames_delivered_ = nullptr;
  Gauge* m_frames_dropped_ = nullptr;
  Histogram* m_response_us_ = nullptr;
  Histogram* m_cycle_gap_ = nullptr;
  std::unique_ptr<MetricsLogger> metrics_logger_;
  std::unique_ptr<Tracer> tracer_;
  TraceRing* ring_ = nullptr;

  WallClock clock_;
};

Status ClientRuntime::Run(ClientReport* report) {
  BCC_RETURN_IF_ERROR(net_.Validate());
  BCC_RETURN_IF_ERROR(NormalizeNetSimConfig(&sim_));
  if (net_.connect.empty()) {
    return Status::InvalidArgument("bcc_client requires --connect=ip:port");
  }
  SetUpTelemetry();
  BCC_RETURN_IF_ERROR(SetUp());
  BCC_RETURN_IF_ERROR(Handshake());

  // Main loop: ingest broadcast + uplink traffic until the daemon's
  // STATS_REQ (answered in HandleDatagram), then linger so a lost STATS can
  // be re-requested before exiting.
  while (true) {
    if (net_.max_wall_ms > 0 && clock_.ElapsedMs() > net_.max_wall_ms) {
      return Status::Internal("client watchdog expired before the run completed");
    }
    if (stats_requested_ && clock_.ElapsedMs() - last_stats_req_ms_ > 1000) break;
    BCC_RETURN_IF_ERROR(loop_.Poll(50).status());
    BCC_RETURN_IF_ERROR(MaybeLogMetrics());
  }

  report->client_index = ack_.client_index;
  report->cycles_ingested = cycles_ingested_;
  report->commits = commits_;
  report->aborts = aborts_;
  report->txns = commits_ + aborts_;
  report->update_commits = update_commits_;
  report->update_rejects = update_rejects_;
  report->digest = ComputeDigest();
  std::sort(response_us_.begin(), response_us_.end());
  report->p50_us = Quantile(response_us_, 0.50);
  report->p99_us = Quantile(response_us_, 0.99);
  report->channel = receiver_->stats();
  if (registry_ != nullptr) {
    RefreshSnapshotGauges();
    report->metrics_json = registry_->ToJson();
  }
  if (metrics_logger_ != nullptr) {
    BCC_RETURN_IF_ERROR(metrics_logger_->WriteNow(clock_.ElapsedMs()));
  }
  if (tracer_ != nullptr && !net_.trace_out.empty()) {
    BCC_RETURN_IF_ERROR(WriteTextFile(net_.trace_out, ExportChromeTrace(*tracer_)));
  }
  return Status::OK();
}

void ClientRuntime::SetUpTelemetry() {
  if (!net_.TelemetryEnabled()) return;
  registry_ = std::make_unique<MetricsRegistry>();
  m_cycles_ingested_ = registry_->AddCounter("client.cycles_ingested");
  m_gap_cycles_ = registry_->AddCounter("client.gap_cycles");
  m_reads_ = registry_->AddCounter("client.reads");
  m_commits_ = registry_->AddCounter("client.commits");
  m_aborts_ = registry_->AddCounter("client.aborts");
  m_stalls_ = registry_->AddCounter("client.stalls");
  m_updates_sent_ = registry_->AddCounter("uplink.updates_sent");
  m_update_commits_ = registry_->AddCounter("uplink.update_commits");
  m_update_rejects_ = registry_->AddCounter("uplink.update_rejects");
  m_metrics_polls_ = registry_->AddCounter("metrics.polls");
  m_last_cycle_ = registry_->AddGauge("client.last_cycle");
  m_pending_cycles_ = registry_->AddGauge("client.pending_cycles");
  m_frames_delivered_ = registry_->AddGauge("channel.frames_delivered");
  m_frames_dropped_ = registry_->AddGauge("channel.frames_dropped");
  m_response_us_ = registry_->AddHistogram("client.response_us", ExponentialBounds(64, 2.0, 16));
  m_cycle_gap_ = registry_->AddHistogram("client.cycle_gap", ExponentialBounds(1, 2.0, 8));
  if (!net_.trace_out.empty()) tracer_ = std::make_unique<Tracer>(net_.trace_capacity);
  // The MetricsLogger is created at handshake time, once the client knows
  // its index (the JSONL "node" field).
}

/// Gauges mirroring receiver/reassembly state are refreshed lazily, right
/// before each snapshot is rendered — cheaper than updating them on the
/// datagram path and just as fresh to a poller.
void ClientRuntime::RefreshSnapshotGauges() {
  if (registry_ == nullptr) return;
  GaugeSet(m_pending_cycles_, static_cast<int64_t>(pending_cycles_.size()));
  GaugeSet(m_last_cycle_, static_cast<int64_t>(last_flushed_));
  if (receiver_ != nullptr) {
    const ChannelStats& ch = receiver_->stats();
    GaugeSet(m_frames_delivered_, static_cast<int64_t>(ch.frames_delivered));
    GaugeSet(m_frames_dropped_, static_cast<int64_t>(ch.frames_dropped));
  }
}

Status ClientRuntime::MaybeLogMetrics() {
  if (metrics_logger_ == nullptr) return Status::OK();
  RefreshSnapshotGauges();
  return metrics_logger_->MaybeWrite(clock_.ElapsedMs());
}

std::string ClientRuntime::MetricsEnvelopeJson() {
  RefreshSnapshotGauges();
  JsonWriter w;
  w.BeginObject();
  w.Key("node").Value(
      receiver_ != nullptr ? StrFormat("client%u", ack_.client_index) : "client");
  w.Key("enabled").Value(registry_ != nullptr);
  w.Key("t_ms").Value(clock_.ElapsedMs());
  w.Key("cycle").Value(static_cast<uint64_t>(last_flushed_));
  if (registry_ != nullptr) {
    w.Key("metrics");
    registry_->WriteJson(w);
  }
  w.EndObject();
  return std::move(w).Take();
}

Status ClientRuntime::SetUp() {
  BCC_RETURN_IF_ERROR(uplink_.Open());
  BCC_RETURN_IF_ERROR(uplink_.Bind(Endpoint{"0.0.0.0", 0}));
  BCC_RETURN_IF_ERROR(uplink_.SetRecvBufferBytes(net_.rcvbuf_bytes));
  BCC_ASSIGN_OR_RETURN(const Endpoint server, ParseEndpoint(net_.connect));
  BCC_ASSIGN_OR_RETURN(server_addr_, ResolveEndpoint(server));

  BCC_RETURN_IF_ERROR(loop_.Init());
  BCC_RETURN_IF_ERROR(loop_.Add(uplink_.fd(), [this] { return DrainSocket(&uplink_); }));

  if (!net_.multicast.empty()) {
    BCC_RETURN_IF_ERROR(mcast_.Open());
    BCC_ASSIGN_OR_RETURN(const Endpoint group, ParseEndpoint(net_.multicast));
    BCC_RETURN_IF_ERROR(mcast_.JoinMulticast(group));
    BCC_RETURN_IF_ERROR(mcast_.SetRecvBufferBytes(net_.rcvbuf_bytes));
    BCC_RETURN_IF_ERROR(loop_.Add(mcast_.fd(), [this] { return DrainSocket(&mcast_); }));
  }
  return Status::OK();
}

Status ClientRuntime::Handshake() {
  HelloMsg hello;
  hello.client_id = net_.client_id != 0 ? net_.client_id : static_cast<uint32_t>(getpid());
  const std::vector<uint8_t> wire = EncodeHello(hello);

  uint64_t last_send_ms = 0;
  bool first = true;
  while (receiver_ == nullptr) {
    if (clock_.ElapsedMs() > net_.hello_timeout_ms) {
      return Status::Internal(
          StrFormat("no HELLO_ACK from %s within %llu ms", net_.connect.c_str(),
                    static_cast<unsigned long long>(net_.hello_timeout_ms)));
    }
    if (first || clock_.ElapsedMs() - last_send_ms > 200) {
      BCC_RETURN_IF_ERROR(uplink_.SendTo(wire, server_addr_).status());
      last_send_ms = clock_.ElapsedMs();
      first = false;
    }
    BCC_RETURN_IF_ERROR(loop_.Poll(50).status());
  }
  return Status::OK();
}

// Runs inside HandleDatagram the moment the HELLO_ACK arrives: the daemon
// may fan out cycle 1 immediately after acking the last registration, so
// the receiver must exist before the next datagram of the same drain batch
// is processed — deferring setup to the Handshake loop would discard those
// frames as pre-handshake noise and deterministically lose the first cycle.
Status ClientRuntime::CompleteHandshake(const HelloAckMsg& ack) {
  ack_ = ack;

  // The daemon's geometry must match ours exactly — a drifting config would
  // not corrupt state (CRCs and the missed-cycle rule reject it) but it
  // would silently turn the whole broadcast into loss.
  if (ack_.num_objects != sim_.num_objects ||
      ack_.ts_bits != static_cast<uint8_t>(sim_.timestamp_bits) ||
      ack_.frame_bits != static_cast<uint32_t>(sim_.channel_frame_bits)) {
    return Status::FailedPrecondition(
        StrFormat("server geometry mismatch: server n=%u ts=%u frame=%u, "
                  "client n=%u ts=%u frame=%llu",
                  ack_.num_objects, ack_.ts_bits, ack_.frame_bits, sim_.num_objects,
                  sim_.timestamp_bits,
                  static_cast<unsigned long long>(sim_.channel_frame_bits)));
  }
  const bool delta = ack_.control_mode != CycleIndex::kControlColumns;
  sim_.delta_broadcast = delta;

  stamp_codec_.emplace(sim_.timestamp_bits);
  codec_.emplace(*stamp_codec_, sim_.channel_frame_bits);
  if (delta) tracker_ = std::make_unique<DeltaMatrixTracker>(sim_.num_objects, *stamp_codec_);
  receiver_ = std::make_unique<ChannelReceiver>(sim_.num_objects, *codec_, tracker_.get());
  if (tracer_ != nullptr) {
    ring_ = tracer_->AddTrack(StrFormat("client%u", ack_.client_index));
    receiver_->set_trace_ring(ring_);
    if (tracker_ != nullptr) tracker_->set_trace_ring(ring_);
  }
  if (registry_ != nullptr) {
    metrics_logger_ = std::make_unique<MetricsLogger>(
        net_.metrics_out, net_.metrics_interval_ms, registry_.get(),
        StrFormat("client%u", ack_.client_index));
  }

  // Replicate the DES RNG tree so client `i`'s workload stream is the same
  // one the in-process simulation would hand its client `i`: the root splits
  // once for the server, then once per client in index order.
  Rng root(sim_.seed);
  (void)root.Split();  // server workload
  for (uint32_t i = 0; i < ack_.client_index; ++i) (void)root.Split();
  workload_ = std::make_unique<ClientWorkload>(sim_, root.Split());

  for (uint32_t i = 0; i < net_.txns_per_cycle; ++i) {
    auto slot = std::make_unique<TxnSlot>(sim_.algorithm, stamp_codec_);
    slot->protocol.set_value_override(&receiver_->values());
    slot->protocol.set_control_override(tracker_ ? &tracker_->matrix() : &receiver_->matrix());
    StartNextTxn(*slot);
    slots_.push_back(std::move(slot));
  }
  return Status::OK();
}

Status ClientRuntime::DrainSocket(UdpSocket* sock) {
  while (true) {
    BCC_ASSIGN_OR_RETURN(const std::vector<InDatagram> batch, sock->RecvBatch(64, 65536));
    if (batch.empty()) return Status::OK();
    for (const InDatagram& d : batch) BCC_RETURN_IF_ERROR(HandleDatagram(d));
  }
}

Status ClientRuntime::HandleDatagram(const InDatagram& d) {
  const StatusOr<MsgKind> kind = PeekKind(d.bytes);
  if (!kind.ok()) return Status::OK();  // foreign datagram: ignore
  switch (*kind) {
    case MsgKind::kHelloAck: {
      BCC_ASSIGN_OR_RETURN(const HelloAckMsg ack, DecodeHelloAck(d.bytes));
      if (receiver_ != nullptr) return Status::OK();  // duplicates ignored
      return CompleteHandshake(ack);
    }
    case MsgKind::kCycleData:
      if (receiver_ == nullptr) return Status::OK();  // pre-handshake noise
      return HandleCycleData(d.bytes);
    case MsgKind::kUpdateReply: {
      BCC_ASSIGN_OR_RETURN(const UpdateReplyMsg reply, DecodeUpdateReply(d.bytes));
      return HandleUpdateReply(reply);
    }
    case MsgKind::kStatsReq: {
      if (receiver_ == nullptr) return Status::OK();
      // Flush whatever is still buffered (the final cycle completes here
      // when its last datagram arrived before the request), then report.
      while (!pending_cycles_.empty()) {
        auto node = pending_cycles_.extract(pending_cycles_.begin());
        BCC_RETURN_IF_ERROR(FlushCycle(node.key(), std::move(node.mapped())));
      }
      stats_requested_ = true;
      last_stats_req_ms_ = clock_.ElapsedMs();
      return SendStats();
    }
    case MsgKind::kMetricsReq: {
      const auto req = DecodeMetricsReq(d.bytes);
      if (!req.ok()) return Status::OK();
      CounterAdd(m_metrics_polls_);
      MetricsMsg reply;
      reply.token = req->token;
      reply.node_kind = kMetricsNodeClient;
      reply.json = MetricsEnvelopeJson();
      return uplink_.SendTo(EncodeMetrics(reply), d.from).status();
    }
    default:
      return Status::OK();  // server-bound kinds: not ours
  }
}

Status ClientRuntime::HandleCycleData(std::span<const uint8_t> bytes) {
  BCC_ASSIGN_OR_RETURN(CycleDataMsg msg, DecodeCycleData(bytes));
  const Cycle cycle = msg.header.cycle;
  if (cycle <= last_flushed_) return Status::OK();  // late: that cycle is gone

  CycleBuffer& buffer = pending_cycles_[cycle];
  buffer.dgram_count = msg.header.dgram_count;
  buffer.cycle_frames = msg.header.cycle_frames;
  buffer.dgrams.emplace(msg.header.dgram_seq, std::move(msg.frames));  // dup seq ignored

  // A newer cycle on the air means older cycles' remaining datagrams are
  // lost (flushing them counts the loss); the newest cycle itself flushes
  // only once complete, so in-cycle reordering never costs frames.
  while (!pending_cycles_.empty()) {
    auto first = pending_cycles_.begin();
    const bool newest = first->first == pending_cycles_.rbegin()->first;
    if (newest && !first->second.Complete()) break;
    auto node = pending_cycles_.extract(first);
    BCC_RETURN_IF_ERROR(FlushCycle(node.key(), std::move(node.mapped())));
  }
  return Status::OK();
}

Status ClientRuntime::FlushCycle(Cycle cycle, CycleBuffer&& buffer) {
  // Cycles between the last flush and this one never produced a single
  // datagram (receiver overrun, or real network loss): observe them as
  // all-frames-dropped transmissions so the receiver's loss accounting and
  // the tracker's desync logic see the cycle pass, exactly as a DES client
  // whose channel dropped every frame would. The per-cycle frame count is
  // constant (same broadcast schedule every cycle), so this buffer's header
  // value stands in for the lost cycles'.
  if (cycle > last_flushed_ + 1) {
    const uint64_t gap_n = cycle - last_flushed_ - 1;
    CounterAdd(m_gap_cycles_, gap_n);
    HistogramRecord(m_cycle_gap_, gap_n);
  }
  for (Cycle gap = last_flushed_ + 1; gap < cycle; ++gap) {
    ++cycles_ingested_;
    CounterAdd(m_cycles_ingested_);
    Transmission lost;
    lost.sent = buffer.cycle_frames;
    lost.dropped = buffer.cycle_frames;
    receiver_->IngestCycle(gap, lost, clock_.ElapsedUs());
    BCC_RETURN_IF_ERROR(AdvanceSlots(gap));
  }
  last_flushed_ = cycle;
  ++cycles_ingested_;
  CounterAdd(m_cycles_ingested_);
  GaugeSet(m_last_cycle_, static_cast<int64_t>(cycle));

  Transmission tx;
  for (auto& [seq, frames] : buffer.dgrams) {
    for (Frame& frame : frames) {
      Delivery d;
      d.frame = std::move(frame);
      tx.frames.push_back(std::move(d));
    }
  }
  tx.sent = buffer.cycle_frames;
  tx.dropped = tx.sent - std::min<uint64_t>(tx.sent, tx.frames.size());
  receiver_->IngestCycle(cycle, tx, clock_.ElapsedUs());
  return AdvanceSlots(cycle);
}

Status ClientRuntime::AdvanceSlots(Cycle cycle) {
  // The snapshot handed to the protocol is a shell: the value and control
  // overrides route every lookup to the receiver/tracker state, so only the
  // cycle number matters (it anchors the windowed stamp decode).
  CycleSnapshot snap;
  snap.cycle = cycle;

  for (auto& slot_ptr : slots_) {
    TxnSlot& slot = *slot_ptr;
    if (slot.awaiting_reply) {
      if (++slot.reply_wait_cycles >= 2) {
        slot.reply_wait_cycles = 0;
        BCC_RETURN_IF_ERROR(SendUpdate(slot));  // reply or request was lost
      }
      continue;
    }

    const ObjectId ob = slot.read_set[slot.read_idx];
    // Missed-cycle rule, exactly as BroadcastSim::PerformBroadcastRead:
    // validate only against control info and data received in THIS cycle;
    // a desynced tracker or a lost column/page stalls the read to the next
    // cycle rather than substituting stale state.
    bool stall = tracker_ != nullptr && tracker_->Unusable(cycle);
    if (!stall) {
      const bool control_missing =
          tracker_ == nullptr && !receiver_->ControlUsable(ob, cycle);
      stall = control_missing || !receiver_->DataUsable(ob, cycle);
    }
    if (stall) {
      receiver_->RecordStall();
      slot.stalled_this_attempt = true;
      CounterAdd(m_stalls_);
      continue;
    }

    const StatusOr<ObjectVersion> value = slot.protocol.Read(snap, ob);
    if (!value.ok()) {
      if (ring_ != nullptr) {
        TraceEvent ev;
        ev.type = TraceEventType::kAbort;
        ev.time = clock_.ElapsedUs();
        ev.cycle = cycle;
        ev.object = ob;
        ev.abort = slot.protocol.last_abort();
        TraceTo(ring_, ev);
      }
      AbortSlot(slot);
      continue;
    }
    CounterAdd(m_reads_);
    ++slot.read_idx;
    if (slot.read_idx < slot.read_set.size()) continue;
    if (slot.is_update) {
      slot.update_seq = next_update_seq_++;
      slot.awaiting_reply = true;
      slot.reply_wait_cycles = 0;
      BCC_RETURN_IF_ERROR(SendUpdate(slot));
    } else {
      CommitSlot(slot);
    }
  }
  return Status::OK();
}

void ClientRuntime::StartNextTxn(TxnSlot& slot) {
  slot.read_set = workload_->NextReadSet();
  slot.is_update = sim_.client_update_fraction > 0 && workload_->NextIsUpdate();
  slot.write_set = slot.is_update ? workload_->NextWriteSet() : std::vector<ObjectId>{};
  slot.read_idx = 0;
  slot.stalled_this_attempt = false;
  slot.awaiting_reply = false;
  slot.protocol.Reset();
  slot.start_us = NowMicros();
}

void ClientRuntime::CommitSlot(TxnSlot& slot) {
  ++commits_;
  const uint64_t resp_us = NowMicros() - slot.start_us;
  response_us_.push_back(resp_us);
  CounterAdd(m_commits_);
  HistogramRecord(m_response_us_, resp_us);
  if (ring_ != nullptr) {
    TraceEvent ev;
    ev.type = TraceEventType::kCommit;
    ev.time = clock_.ElapsedUs();
    ev.cycle = last_flushed_;
    TraceTo(ring_, ev);
  }
  StartNextTxn(slot);
}

void ClientRuntime::AbortSlot(TxnSlot& slot) {
  ++aborts_;
  CounterAdd(m_aborts_);
  if (slot.stalled_this_attempt) receiver_->RecordLossAttributedAbort();
  slot.stalled_this_attempt = false;
  // Restart the same transaction program from its first read; the response
  // clock keeps running across restarts, as in the DES.
  slot.protocol.Reset();
  slot.read_idx = 0;
}

Status ClientRuntime::SendUpdate(TxnSlot& slot) {
  UpdateMsg msg;
  msg.client_index = ack_.client_index;
  msg.seq = slot.update_seq;
  msg.reads = slot.protocol.reads();
  msg.writes = slot.write_set;
  CounterAdd(m_updates_sent_);
  return uplink_.SendTo(EncodeUpdate(msg), server_addr_).status();
}

Status ClientRuntime::HandleUpdateReply(const UpdateReplyMsg& reply) {
  for (auto& slot_ptr : slots_) {
    TxnSlot& slot = *slot_ptr;
    if (!slot.awaiting_reply || slot.update_seq != reply.seq) continue;
    slot.awaiting_reply = false;
    if (reply.accepted) {
      ++update_commits_;
      ++commits_;
      const uint64_t resp_us = NowMicros() - slot.start_us;
      response_us_.push_back(resp_us);
      CounterAdd(m_update_commits_);
      CounterAdd(m_commits_);
      HistogramRecord(m_response_us_, resp_us);
      if (ring_ != nullptr) {
        TraceEvent ev;
        ev.type = TraceEventType::kCommit;
        ev.time = clock_.ElapsedUs();
        ev.cycle = last_flushed_;
        ev.value = 1;  // committed over the uplink
        TraceTo(ring_, ev);
      }
      StartNextTxn(slot);
    } else {
      ++update_rejects_;
      CounterAdd(m_update_rejects_);
      if (ring_ != nullptr) {
        TraceEvent ev;
        ev.type = TraceEventType::kAbort;
        ev.time = clock_.ElapsedUs();
        ev.cycle = last_flushed_;
        ev.abort = AbortInfo{AbortCause::kUplinkReject, 0, 0, 0, 0};
        TraceTo(ring_, ev);
      }
      AbortSlot(slot);
    }
    return Status::OK();
  }
  return Status::OK();  // stale duplicate reply
}

Status ClientRuntime::SendStats() {
  StatsMsg msg;
  msg.client_index = ack_.client_index;
  msg.digest = ComputeDigest();
  msg.commits = commits_;
  msg.aborts = aborts_;
  msg.txns = commits_ + aborts_;
  std::vector<uint64_t> sorted = response_us_;
  std::sort(sorted.begin(), sorted.end());
  msg.p50_us = Quantile(sorted, 0.50);
  msg.p99_us = Quantile(sorted, 0.99);
  msg.channel = receiver_->stats();
  return uplink_.SendTo(EncodeStats(msg), server_addr_).status();
}

uint64_t ClientRuntime::ComputeDigest() const {
  // Mirrors the daemon's digest: data pages, then the control matrix reduced
  // to TS-bit residues. The client stores windowed-decoded absolute cycles,
  // the server stores true absolutes — both reduce to the same residues, so
  // at loss 0 the digests are bit-identical.
  uint64_t h = DigestValues(receiver_->values());
  return DigestMatrixResidues(tracker_ ? tracker_->matrix() : receiver_->matrix(), *stamp_codec_,
                              h);
}

}  // namespace

std::string ClientReport::ToJson() const {
  JsonWriter w;
  w.BeginObject()
      .Key("client_index").Value(client_index)
      .Key("cycles_ingested").Value(cycles_ingested)
      .Key("txns").Value(txns)
      .Key("commits").Value(commits)
      .Key("aborts").Value(aborts)
      .Key("update_commits").Value(update_commits)
      .Key("update_rejects").Value(update_rejects)
      .Key("digest").Value(digest)
      .Key("p50_us").Value(p50_us)
      .Key("p99_us").Value(p99_us)
      .Key("channel");
  AppendChannelStatsJson(w, channel);
  if (!metrics_json.empty()) {
    w.Key("metrics").RawValue(metrics_json);
  }
  w.EndObject();
  return std::move(w).Take();
}

Status RunClientRuntime(const NetConfig& net, const SimConfig& sim, ClientReport* report) {
  ClientRuntime runtime(net, sim);
  return runtime.Run(report);
}

}  // namespace bcc
