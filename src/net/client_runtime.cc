#include "net/client_runtime.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "channel/frame.h"
#include "client/delta_tracker.h"
#include "client/read_txn.h"
#include "client/receiver.h"
#include "common/format.h"
#include "net/datagram.h"
#include "net/epoll_loop.h"
#include "net/pacing.h"
#include "net/socket.h"
#include "net/state_digest.h"
#include "obs/json.h"
#include "sim/workload.h"

namespace bcc {
namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

uint64_t Quantile(std::vector<uint64_t> sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

void AppendChannelStatsJson(JsonWriter& w, const ChannelStats& ch) {
  w.BeginObject()
      .Key("frames_sent").Value(ch.frames_sent)
      .Key("frames_dropped").Value(ch.frames_dropped)
      .Key("frames_delivered").Value(ch.frames_delivered)
      .Key("frames_rejected").Value(ch.frames_rejected)
      .Key("control_losses").Value(ch.control_losses)
      .Key("data_losses").Value(ch.data_losses)
      .Key("stalls").Value(ch.stalls)
      .Key("resyncs").Value(ch.resyncs)
      .Key("tracker_desyncs").Value(ch.tracker_desyncs)
      .Key("loss_attributed_aborts").Value(ch.loss_attributed_aborts)
      .EndObject();
}

/// One open transaction. Slots progress in lockstep with the broadcast: each
/// ingested cycle advances every idle slot by exactly one read, so a
/// transaction of L reads spans >= L cycles and its F-Matrix validation runs
/// against genuinely evolving control info.
struct TxnSlot {
  explicit TxnSlot(Algorithm algorithm, std::optional<CycleStampCodec> codec)
      : protocol(algorithm, codec) {}

  ReadOnlyTxnProtocol protocol;
  std::vector<ObjectId> read_set;
  std::vector<ObjectId> write_set;  // nonempty iff is_update
  bool is_update = false;
  size_t read_idx = 0;
  uint64_t start_us = 0;
  bool stalled_this_attempt = false;

  // Update-uplink state: an UPDATE is in flight and the slot is parked until
  // the matching UPDATE_REPLY (resent if the reply outwaits reply_wait_cycles).
  bool awaiting_reply = false;
  uint32_t update_seq = 0;
  uint32_t reply_wait_cycles = 0;
};

/// Per-cycle reassembly buffer: datagrams held until the cycle is flushed
/// (all datagrams arrived, a newer cycle started, or the daemon asked for
/// stats). Late datagrams for an already-flushed cycle are dropped — the
/// missed-cycle rule makes stale control info unusable anyway.
struct CycleBuffer {
  uint16_t dgram_count = 0;
  uint16_t cycle_frames = 0;
  std::map<uint16_t, std::vector<Frame>> dgrams;  // dgram_seq -> frames

  bool Complete() const { return dgram_count > 0 && dgrams.size() == dgram_count; }
};

class ClientRuntime {
 public:
  ClientRuntime(const NetConfig& net, const SimConfig& sim) : net_(net), sim_(sim) {}

  Status Run(ClientReport* report);

 private:
  Status SetUp();
  Status Handshake();
  Status CompleteHandshake(const HelloAckMsg& ack);
  Status DrainSocket(UdpSocket* sock);
  Status HandleDatagram(const InDatagram& d);
  Status HandleCycleData(std::span<const uint8_t> bytes);
  Status FlushCycle(Cycle cycle, CycleBuffer&& buffer);
  Status AdvanceSlots(Cycle cycle);
  void StartNextTxn(TxnSlot& slot);
  void CommitSlot(TxnSlot& slot);
  void AbortSlot(TxnSlot& slot);
  Status SendUpdate(TxnSlot& slot);
  Status HandleUpdateReply(const UpdateReplyMsg& reply);
  Status SendStats();
  uint64_t ComputeDigest() const;

  const NetConfig& net_;
  SimConfig sim_;

  UdpSocket uplink_;
  UdpSocket mcast_;  // valid only with --mcast
  SockAddr server_addr_ = {};
  EpollLoop loop_;

  HelloAckMsg ack_;
  std::optional<CycleStampCodec> stamp_codec_;
  std::optional<FrameCodec> codec_;
  std::unique_ptr<DeltaMatrixTracker> tracker_;
  std::unique_ptr<ChannelReceiver> receiver_;
  std::unique_ptr<ClientWorkload> workload_;
  std::vector<std::unique_ptr<TxnSlot>> slots_;

  std::map<Cycle, CycleBuffer> pending_cycles_;
  Cycle last_flushed_ = 0;
  uint64_t cycles_ingested_ = 0;

  uint64_t commits_ = 0;
  uint64_t aborts_ = 0;
  uint64_t update_commits_ = 0;
  uint64_t update_rejects_ = 0;
  uint32_t next_update_seq_ = 1;
  std::vector<uint64_t> response_us_;

  bool stats_requested_ = false;
  uint64_t last_stats_req_ms_ = 0;
  WallClock clock_;
};

Status ClientRuntime::Run(ClientReport* report) {
  BCC_RETURN_IF_ERROR(net_.Validate());
  BCC_RETURN_IF_ERROR(NormalizeNetSimConfig(&sim_));
  if (net_.connect.empty()) {
    return Status::InvalidArgument("bcc_client requires --connect=ip:port");
  }
  BCC_RETURN_IF_ERROR(SetUp());
  BCC_RETURN_IF_ERROR(Handshake());

  // Main loop: ingest broadcast + uplink traffic until the daemon's
  // STATS_REQ (answered in HandleDatagram), then linger so a lost STATS can
  // be re-requested before exiting.
  while (true) {
    if (net_.max_wall_ms > 0 && clock_.ElapsedMs() > net_.max_wall_ms) {
      return Status::Internal("client watchdog expired before the run completed");
    }
    if (stats_requested_ && clock_.ElapsedMs() - last_stats_req_ms_ > 1000) break;
    BCC_RETURN_IF_ERROR(loop_.Poll(50).status());
  }

  report->client_index = ack_.client_index;
  report->cycles_ingested = cycles_ingested_;
  report->commits = commits_;
  report->aborts = aborts_;
  report->txns = commits_ + aborts_;
  report->update_commits = update_commits_;
  report->update_rejects = update_rejects_;
  report->digest = ComputeDigest();
  std::sort(response_us_.begin(), response_us_.end());
  report->p50_us = Quantile(response_us_, 0.50);
  report->p99_us = Quantile(response_us_, 0.99);
  report->channel = receiver_->stats();
  return Status::OK();
}

Status ClientRuntime::SetUp() {
  BCC_RETURN_IF_ERROR(uplink_.Open());
  BCC_RETURN_IF_ERROR(uplink_.Bind(Endpoint{"0.0.0.0", 0}));
  BCC_RETURN_IF_ERROR(uplink_.SetRecvBufferBytes(net_.rcvbuf_bytes));
  BCC_ASSIGN_OR_RETURN(const Endpoint server, ParseEndpoint(net_.connect));
  BCC_ASSIGN_OR_RETURN(server_addr_, ResolveEndpoint(server));

  BCC_RETURN_IF_ERROR(loop_.Init());
  BCC_RETURN_IF_ERROR(loop_.Add(uplink_.fd(), [this] { return DrainSocket(&uplink_); }));

  if (!net_.multicast.empty()) {
    BCC_RETURN_IF_ERROR(mcast_.Open());
    BCC_ASSIGN_OR_RETURN(const Endpoint group, ParseEndpoint(net_.multicast));
    BCC_RETURN_IF_ERROR(mcast_.JoinMulticast(group));
    BCC_RETURN_IF_ERROR(mcast_.SetRecvBufferBytes(net_.rcvbuf_bytes));
    BCC_RETURN_IF_ERROR(loop_.Add(mcast_.fd(), [this] { return DrainSocket(&mcast_); }));
  }
  return Status::OK();
}

Status ClientRuntime::Handshake() {
  HelloMsg hello;
  hello.client_id = net_.client_id != 0 ? net_.client_id : static_cast<uint32_t>(getpid());
  const std::vector<uint8_t> wire = EncodeHello(hello);

  uint64_t last_send_ms = 0;
  bool first = true;
  while (receiver_ == nullptr) {
    if (clock_.ElapsedMs() > net_.hello_timeout_ms) {
      return Status::Internal(
          StrFormat("no HELLO_ACK from %s within %llu ms", net_.connect.c_str(),
                    static_cast<unsigned long long>(net_.hello_timeout_ms)));
    }
    if (first || clock_.ElapsedMs() - last_send_ms > 200) {
      BCC_RETURN_IF_ERROR(uplink_.SendTo(wire, server_addr_).status());
      last_send_ms = clock_.ElapsedMs();
      first = false;
    }
    BCC_RETURN_IF_ERROR(loop_.Poll(50).status());
  }
  return Status::OK();
}

// Runs inside HandleDatagram the moment the HELLO_ACK arrives: the daemon
// may fan out cycle 1 immediately after acking the last registration, so
// the receiver must exist before the next datagram of the same drain batch
// is processed — deferring setup to the Handshake loop would discard those
// frames as pre-handshake noise and deterministically lose the first cycle.
Status ClientRuntime::CompleteHandshake(const HelloAckMsg& ack) {
  ack_ = ack;

  // The daemon's geometry must match ours exactly — a drifting config would
  // not corrupt state (CRCs and the missed-cycle rule reject it) but it
  // would silently turn the whole broadcast into loss.
  if (ack_.num_objects != sim_.num_objects ||
      ack_.ts_bits != static_cast<uint8_t>(sim_.timestamp_bits) ||
      ack_.frame_bits != static_cast<uint32_t>(sim_.channel_frame_bits)) {
    return Status::FailedPrecondition(
        StrFormat("server geometry mismatch: server n=%u ts=%u frame=%u, "
                  "client n=%u ts=%u frame=%llu",
                  ack_.num_objects, ack_.ts_bits, ack_.frame_bits, sim_.num_objects,
                  sim_.timestamp_bits,
                  static_cast<unsigned long long>(sim_.channel_frame_bits)));
  }
  const bool delta = ack_.control_mode != CycleIndex::kControlColumns;
  sim_.delta_broadcast = delta;

  stamp_codec_.emplace(sim_.timestamp_bits);
  codec_.emplace(*stamp_codec_, sim_.channel_frame_bits);
  if (delta) tracker_ = std::make_unique<DeltaMatrixTracker>(sim_.num_objects, *stamp_codec_);
  receiver_ = std::make_unique<ChannelReceiver>(sim_.num_objects, *codec_, tracker_.get());

  // Replicate the DES RNG tree so client `i`'s workload stream is the same
  // one the in-process simulation would hand its client `i`: the root splits
  // once for the server, then once per client in index order.
  Rng root(sim_.seed);
  (void)root.Split();  // server workload
  for (uint32_t i = 0; i < ack_.client_index; ++i) (void)root.Split();
  workload_ = std::make_unique<ClientWorkload>(sim_, root.Split());

  for (uint32_t i = 0; i < net_.txns_per_cycle; ++i) {
    auto slot = std::make_unique<TxnSlot>(sim_.algorithm, stamp_codec_);
    slot->protocol.set_value_override(&receiver_->values());
    slot->protocol.set_control_override(tracker_ ? &tracker_->matrix() : &receiver_->matrix());
    StartNextTxn(*slot);
    slots_.push_back(std::move(slot));
  }
  return Status::OK();
}

Status ClientRuntime::DrainSocket(UdpSocket* sock) {
  while (true) {
    BCC_ASSIGN_OR_RETURN(const std::vector<InDatagram> batch, sock->RecvBatch(64, 65536));
    if (batch.empty()) return Status::OK();
    for (const InDatagram& d : batch) BCC_RETURN_IF_ERROR(HandleDatagram(d));
  }
}

Status ClientRuntime::HandleDatagram(const InDatagram& d) {
  const StatusOr<MsgKind> kind = PeekKind(d.bytes);
  if (!kind.ok()) return Status::OK();  // foreign datagram: ignore
  switch (*kind) {
    case MsgKind::kHelloAck: {
      BCC_ASSIGN_OR_RETURN(const HelloAckMsg ack, DecodeHelloAck(d.bytes));
      if (receiver_ != nullptr) return Status::OK();  // duplicates ignored
      return CompleteHandshake(ack);
    }
    case MsgKind::kCycleData:
      if (receiver_ == nullptr) return Status::OK();  // pre-handshake noise
      return HandleCycleData(d.bytes);
    case MsgKind::kUpdateReply: {
      BCC_ASSIGN_OR_RETURN(const UpdateReplyMsg reply, DecodeUpdateReply(d.bytes));
      return HandleUpdateReply(reply);
    }
    case MsgKind::kStatsReq: {
      if (receiver_ == nullptr) return Status::OK();
      // Flush whatever is still buffered (the final cycle completes here
      // when its last datagram arrived before the request), then report.
      while (!pending_cycles_.empty()) {
        auto node = pending_cycles_.extract(pending_cycles_.begin());
        BCC_RETURN_IF_ERROR(FlushCycle(node.key(), std::move(node.mapped())));
      }
      stats_requested_ = true;
      last_stats_req_ms_ = clock_.ElapsedMs();
      return SendStats();
    }
    default:
      return Status::OK();  // server-bound kinds: not ours
  }
}

Status ClientRuntime::HandleCycleData(std::span<const uint8_t> bytes) {
  BCC_ASSIGN_OR_RETURN(CycleDataMsg msg, DecodeCycleData(bytes));
  const Cycle cycle = msg.header.cycle;
  if (cycle <= last_flushed_) return Status::OK();  // late: that cycle is gone

  CycleBuffer& buffer = pending_cycles_[cycle];
  buffer.dgram_count = msg.header.dgram_count;
  buffer.cycle_frames = msg.header.cycle_frames;
  buffer.dgrams.emplace(msg.header.dgram_seq, std::move(msg.frames));  // dup seq ignored

  // A newer cycle on the air means older cycles' remaining datagrams are
  // lost (flushing them counts the loss); the newest cycle itself flushes
  // only once complete, so in-cycle reordering never costs frames.
  while (!pending_cycles_.empty()) {
    auto first = pending_cycles_.begin();
    const bool newest = first->first == pending_cycles_.rbegin()->first;
    if (newest && !first->second.Complete()) break;
    auto node = pending_cycles_.extract(first);
    BCC_RETURN_IF_ERROR(FlushCycle(node.key(), std::move(node.mapped())));
  }
  return Status::OK();
}

Status ClientRuntime::FlushCycle(Cycle cycle, CycleBuffer&& buffer) {
  // Cycles between the last flush and this one never produced a single
  // datagram (receiver overrun, or real network loss): observe them as
  // all-frames-dropped transmissions so the receiver's loss accounting and
  // the tracker's desync logic see the cycle pass, exactly as a DES client
  // whose channel dropped every frame would. The per-cycle frame count is
  // constant (same broadcast schedule every cycle), so this buffer's header
  // value stands in for the lost cycles'.
  for (Cycle gap = last_flushed_ + 1; gap < cycle; ++gap) {
    ++cycles_ingested_;
    Transmission lost;
    lost.sent = buffer.cycle_frames;
    lost.dropped = buffer.cycle_frames;
    receiver_->IngestCycle(gap, lost);
    BCC_RETURN_IF_ERROR(AdvanceSlots(gap));
  }
  last_flushed_ = cycle;
  ++cycles_ingested_;

  Transmission tx;
  for (auto& [seq, frames] : buffer.dgrams) {
    for (Frame& frame : frames) {
      Delivery d;
      d.frame = std::move(frame);
      tx.frames.push_back(std::move(d));
    }
  }
  tx.sent = buffer.cycle_frames;
  tx.dropped = tx.sent - std::min<uint64_t>(tx.sent, tx.frames.size());
  receiver_->IngestCycle(cycle, tx);
  return AdvanceSlots(cycle);
}

Status ClientRuntime::AdvanceSlots(Cycle cycle) {
  // The snapshot handed to the protocol is a shell: the value and control
  // overrides route every lookup to the receiver/tracker state, so only the
  // cycle number matters (it anchors the windowed stamp decode).
  CycleSnapshot snap;
  snap.cycle = cycle;

  for (auto& slot_ptr : slots_) {
    TxnSlot& slot = *slot_ptr;
    if (slot.awaiting_reply) {
      if (++slot.reply_wait_cycles >= 2) {
        slot.reply_wait_cycles = 0;
        BCC_RETURN_IF_ERROR(SendUpdate(slot));  // reply or request was lost
      }
      continue;
    }

    const ObjectId ob = slot.read_set[slot.read_idx];
    // Missed-cycle rule, exactly as BroadcastSim::PerformBroadcastRead:
    // validate only against control info and data received in THIS cycle;
    // a desynced tracker or a lost column/page stalls the read to the next
    // cycle rather than substituting stale state.
    bool stall = tracker_ != nullptr && tracker_->Unusable(cycle);
    if (!stall) {
      const bool control_missing =
          tracker_ == nullptr && !receiver_->ControlUsable(ob, cycle);
      stall = control_missing || !receiver_->DataUsable(ob, cycle);
    }
    if (stall) {
      receiver_->RecordStall();
      slot.stalled_this_attempt = true;
      continue;
    }

    const StatusOr<ObjectVersion> value = slot.protocol.Read(snap, ob);
    if (!value.ok()) {
      AbortSlot(slot);
      continue;
    }
    ++slot.read_idx;
    if (slot.read_idx < slot.read_set.size()) continue;
    if (slot.is_update) {
      slot.update_seq = next_update_seq_++;
      slot.awaiting_reply = true;
      slot.reply_wait_cycles = 0;
      BCC_RETURN_IF_ERROR(SendUpdate(slot));
    } else {
      CommitSlot(slot);
    }
  }
  return Status::OK();
}

void ClientRuntime::StartNextTxn(TxnSlot& slot) {
  slot.read_set = workload_->NextReadSet();
  slot.is_update = sim_.client_update_fraction > 0 && workload_->NextIsUpdate();
  slot.write_set = slot.is_update ? workload_->NextWriteSet() : std::vector<ObjectId>{};
  slot.read_idx = 0;
  slot.stalled_this_attempt = false;
  slot.awaiting_reply = false;
  slot.protocol.Reset();
  slot.start_us = NowMicros();
}

void ClientRuntime::CommitSlot(TxnSlot& slot) {
  ++commits_;
  response_us_.push_back(NowMicros() - slot.start_us);
  StartNextTxn(slot);
}

void ClientRuntime::AbortSlot(TxnSlot& slot) {
  ++aborts_;
  if (slot.stalled_this_attempt) receiver_->RecordLossAttributedAbort();
  slot.stalled_this_attempt = false;
  // Restart the same transaction program from its first read; the response
  // clock keeps running across restarts, as in the DES.
  slot.protocol.Reset();
  slot.read_idx = 0;
}

Status ClientRuntime::SendUpdate(TxnSlot& slot) {
  UpdateMsg msg;
  msg.client_index = ack_.client_index;
  msg.seq = slot.update_seq;
  msg.reads = slot.protocol.reads();
  msg.writes = slot.write_set;
  return uplink_.SendTo(EncodeUpdate(msg), server_addr_).status();
}

Status ClientRuntime::HandleUpdateReply(const UpdateReplyMsg& reply) {
  for (auto& slot_ptr : slots_) {
    TxnSlot& slot = *slot_ptr;
    if (!slot.awaiting_reply || slot.update_seq != reply.seq) continue;
    slot.awaiting_reply = false;
    if (reply.accepted) {
      ++update_commits_;
      ++commits_;
      response_us_.push_back(NowMicros() - slot.start_us);
      StartNextTxn(slot);
    } else {
      ++update_rejects_;
      AbortSlot(slot);
    }
    return Status::OK();
  }
  return Status::OK();  // stale duplicate reply
}

Status ClientRuntime::SendStats() {
  StatsMsg msg;
  msg.client_index = ack_.client_index;
  msg.digest = ComputeDigest();
  msg.commits = commits_;
  msg.aborts = aborts_;
  msg.txns = commits_ + aborts_;
  std::vector<uint64_t> sorted = response_us_;
  std::sort(sorted.begin(), sorted.end());
  msg.p50_us = Quantile(sorted, 0.50);
  msg.p99_us = Quantile(sorted, 0.99);
  msg.channel = receiver_->stats();
  return uplink_.SendTo(EncodeStats(msg), server_addr_).status();
}

uint64_t ClientRuntime::ComputeDigest() const {
  // Mirrors the daemon's digest: data pages, then the control matrix reduced
  // to TS-bit residues. The client stores windowed-decoded absolute cycles,
  // the server stores true absolutes — both reduce to the same residues, so
  // at loss 0 the digests are bit-identical.
  uint64_t h = DigestValues(receiver_->values());
  return DigestMatrixResidues(tracker_ ? tracker_->matrix() : receiver_->matrix(), *stamp_codec_,
                              h);
}

}  // namespace

std::string ClientReport::ToJson() const {
  JsonWriter w;
  w.BeginObject()
      .Key("client_index").Value(client_index)
      .Key("cycles_ingested").Value(cycles_ingested)
      .Key("txns").Value(txns)
      .Key("commits").Value(commits)
      .Key("aborts").Value(aborts)
      .Key("update_commits").Value(update_commits)
      .Key("update_rejects").Value(update_rejects)
      .Key("digest").Value(digest)
      .Key("p50_us").Value(p50_us)
      .Key("p99_us").Value(p99_us)
      .Key("channel");
  AppendChannelStatsJson(w, channel);
  w.EndObject();
  return std::move(w).Take();
}

Status RunClientRuntime(const NetConfig& net, const SimConfig& sim, ClientReport* report) {
  ClientRuntime runtime(net, sim);
  return runtime.Run(report);
}

}  // namespace bcc
