#include "net/server_daemon.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>

#include "common/format.h"
#include "common/rng.h"
#include "net/epoll_loop.h"
#include "net/pacing.h"
#include "net/socket.h"
#include "net/state_digest.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"
#include "server/broadcast_server.h"
#include "server/exec/txn_processor.h"
#include "server/mc_overlay.h"
#include "server/validator.h"
#include "sim/workload.h"

namespace bcc {

namespace {

void AppendChannelStatsJson(JsonWriter& w, const ChannelStats& ch) {
  w.BeginObject();
  w.Key("frames_sent").Value(ch.frames_sent);
  w.Key("frames_dropped").Value(ch.frames_dropped);
  w.Key("frames_delivered").Value(ch.frames_delivered);
  w.Key("frames_rejected").Value(ch.frames_rejected);
  w.Key("control_losses").Value(ch.control_losses);
  w.Key("data_losses").Value(ch.data_losses);
  w.Key("stalls").Value(ch.stalls);
  w.Key("resyncs").Value(ch.resyncs);
  w.Key("tracker_desyncs").Value(ch.tracker_desyncs);
  w.Key("loss_attributed_aborts").Value(ch.loss_attributed_aborts);
  w.EndObject();
}

/// Everything the daemon knows about one registered client.
struct ClientSlot {
  SockAddr addr;
  uint32_t client_id = 0;
  bool stats_received = false;
  StatsMsg stats;
};

class ServerDaemon {
 public:
  ServerDaemon(const NetConfig& net, const SimConfig& sim) : net_(net), sim_(sim) {}

  Status Run(ServerReport* report);

 private:
  Status SetUpEngine();
  void SetUpTelemetry();
  Status SetUpSocket();
  Status WaitForClients();
  Status BroadcastCycles();
  Status ReplayCommitsForCycle(Cycle cycle);
  void FlushBatch(Cycle cycle);
  Status FanOutCycle(Cycle cycle);
  Status CollectStats();
  Status DrainUplink();
  Status HandleUplink(const InDatagram& dgram);
  Status CheckWatchdog() const;
  Status MaybeLogMetrics();
  void MaybeWarnSlowCycle(const CyclePacer& pacer, Cycle cycle, uint64_t cycle_us);
  std::string MetricsEnvelopeJson() const;

  NetConfig net_;
  SimConfig sim_;

  // Engine (mirrors BroadcastSim::Run's server-side setup).
  std::unique_ptr<ServerTxnManager> manager_;
  std::unique_ptr<BroadcastServer> server_;
  std::unique_ptr<ServerWorkload> workload_;
  std::unique_ptr<TxnProcessor> processor_;
  std::unique_ptr<UpdateValidator> validator_;
  std::unique_ptr<McOverlay> overlay_;
  std::vector<ServerTxn> pending_uplink_txns_;
  std::vector<ServerTxn> pending_server_txns_;
  std::vector<ObjectId> touched_scratch_;
  std::optional<FrameCodec> codec_;
  std::vector<Frame> frame_scratch_;

  // Commit replay clock: virtual time of the next server commit.
  SimTime next_commit_vt_ = 0;
  TxnId next_uplink_id_ = 1u << 30;  ///< uplink txn ids, disjoint from workload ids

  // Transport.
  UdpSocket socket_;
  EpollLoop loop_;
  std::optional<SockAddr> mcast_addr_;
  std::vector<ClientSlot> clients_;
  HelloAckMsg ack_template_;
  bool collecting_stats_ = false;
  uint64_t final_cycle_ = 0;

  // Telemetry (DESIGN.md §4k). All handles are null when telemetry is off,
  // so every recording site below is a branch-on-null no-op — the disabled
  // daemon takes exactly the PR-4 zero-observer-effect path.
  std::unique_ptr<MetricsRegistry> registry_;
  Counter* m_cycles_ = nullptr;
  Counter* m_server_commits_ = nullptr;
  Counter* m_uplink_accepts_ = nullptr;
  Counter* m_uplink_rejects_ = nullptr;
  Counter* m_datagrams_ = nullptr;
  Counter* m_bytes_ = nullptr;
  Counter* m_slow_cycles_ = nullptr;
  Counter* m_metrics_polls_ = nullptr;
  Gauge* m_current_cycle_ = nullptr;
  Gauge* m_clients_gauge_ = nullptr;
  Gauge* m_pacing_slip_ = nullptr;
  /// Control-matrix footprint (live via METRICS_REQ / bcc_statsctl): resident
  /// non-floor entries and the cycle's control share in bytes. In dense mode
  /// nnz is not tracked (a scan would be O(n^2)) and the byte gauge holds the
  /// constant n^2*ts/8 full-matrix share.
  Gauge* m_matrix_nnz_ = nullptr;
  Gauge* m_matrix_control_bytes_ = nullptr;
  Histogram* m_slip_hist_ = nullptr;
  Histogram* m_cycle_ms_ = nullptr;
  Histogram* m_validate_us_ = nullptr;
  /// Per-registered-client live view, fed from uplink traffic.
  struct PerClientMetrics {
    Counter* accepts = nullptr;
    Counter* rejects = nullptr;
    Gauge* last_read_cycle = nullptr;  ///< newest read cycle seen on the uplink
    Gauge* lag_cycles = nullptr;       ///< current cycle minus last_read_cycle
    Gauge* frames_dropped = nullptr;   ///< from the client's final STATS
  };
  std::vector<PerClientMetrics> client_metrics_;
  std::unique_ptr<MetricsLogger> metrics_logger_;
  std::unique_ptr<Tracer> tracer_;
  TraceRing* server_ring_ = nullptr;
  std::vector<TraceRing*> client_rings_;

  // Decision log (NetConfig::decisions_out). `seq` is the store's commit
  // order: assigned at the commit call in direct mode; assigned at the
  // cycle fold in staged mode (uplink serial prefix first, then the server
  // batch — the same order FlushBatch folds them).
  bool record_decisions_ = false;
  DecisionLog decisions_;
  uint64_t next_commit_seq_ = 1;
  std::vector<size_t> staged_uplink_decisions_;  ///< indices awaiting a seq
  std::vector<size_t> staged_server_commits_;    ///< indices awaiting a seq

  WallClock wall_;
  ServerReport stats_;
};

Status ServerDaemon::SetUpEngine() {
  if (sim_.matrix_mode == MatrixMode::kHier) {
    return Status::InvalidArgument(
        "the networked tier does not support matrix_mode=hier (its refinement policy is "
        "driven by the in-process simulators)");
  }
  if (sim_.sparse_compaction_period > 0) {
    return Status::InvalidArgument(
        "the networked tier does not support sparse_compaction_period");
  }
  // Sparse mode swaps the manager's representation only: the on-air bytes
  // (EncodeCycleFramesInto packs the snapshot's sparse matrix byte-identically)
  // and every client decision are unchanged.
  const bool sparse_mode = sim_.matrix_mode == MatrixMode::kSparse;
  TxnManagerOptions options;
  options.maintain_f_matrix = !sparse_mode;
  options.maintain_sparse_matrix = sparse_mode;
  options.maintain_mc_vector = true;
  options.track_dirty_columns = sim_.delta_broadcast;
  manager_ = std::make_unique<ServerTxnManager>(sim_.num_objects, options);

  server_ = std::make_unique<BroadcastServer>(sim_.num_objects, sim_.Geometry());
  if (sim_.delta_broadcast) {
    server_->EnableDeltaBroadcast(CycleStampCodec(sim_.timestamp_bits),
                                  sim_.delta_refresh_period);
  }

  // Same RNG split discipline as BroadcastSim: the server workload takes the
  // root's first split, so the daemon's commit stream is bit-identical to
  // the DES oracle's for the same (seed, config).
  Rng root(sim_.seed);
  workload_ = std::make_unique<ServerWorkload>(sim_, root.Split());
  next_commit_vt_ = workload_->NextInterval();

  if (sim_.update_scheme != UpdateScheme::kSequential) {
    processor_ = std::make_unique<TxnProcessor>(sim_.num_objects, sim_.update_scheme,
                                                sim_.update_workers);
    manager_->SetParallelFold(
        [this](uint32_t shards, const std::function<void(uint32_t)>& body) {
          processor_->RunShards(shards, body);
        },
        sim_.update_workers);
  }

  // The uplink validator is always armed: any client may submit updates.
  validator_ = std::make_unique<UpdateValidator>(manager_.get());
  if (processor_ != nullptr) {
    overlay_ = std::make_unique<McOverlay>(sim_.num_objects);
    validator_->AttachStagedMode(overlay_.get(), [this](ServerTxn&& txn) {
      pending_uplink_txns_.push_back(std::move(txn));
    });
  }

  codec_.emplace(CycleStampCodec(sim_.timestamp_bits), sim_.channel_frame_bits);

  ack_template_.num_objects = sim_.num_objects;
  ack_template_.ts_bits = static_cast<uint8_t>(sim_.timestamp_bits);
  ack_template_.control_mode =
      sim_.delta_broadcast ? CycleIndex::kControlDelta : CycleIndex::kControlColumns;
  ack_template_.frame_bits = static_cast<uint32_t>(sim_.channel_frame_bits);
  ack_template_.cycles = sim_.stop_after_cycles;
  return Status::OK();
}

void ServerDaemon::SetUpTelemetry() {
  record_decisions_ = !net_.decisions_out.empty();
  if (!net_.TelemetryEnabled()) return;
  registry_ = std::make_unique<MetricsRegistry>();
  m_cycles_ = registry_->AddCounter("server.cycles");
  m_server_commits_ = registry_->AddCounter("server.commits");
  m_uplink_accepts_ = registry_->AddCounter("uplink.accepts");
  m_uplink_rejects_ = registry_->AddCounter("uplink.rejects");
  m_datagrams_ = registry_->AddCounter("net.datagrams_sent");
  m_bytes_ = registry_->AddCounter("net.bytes_sent");
  m_slow_cycles_ = registry_->AddCounter("server.slow_cycles");
  m_metrics_polls_ = registry_->AddCounter("metrics.polls");
  m_current_cycle_ = registry_->AddGauge("server.cycle");
  m_clients_gauge_ = registry_->AddGauge("server.clients_registered");
  m_pacing_slip_ = registry_->AddGauge("pacing.slip_ms");
  m_matrix_nnz_ = registry_->AddGauge("matrix.nnz");
  m_matrix_control_bytes_ = registry_->AddGauge("matrix.control_bytes_per_cycle");
  // Dense mode broadcasts the full n^2 stamp matrix every cycle; sparse mode
  // overwrites both gauges per cycle from the live matrix.
  if (sim_.matrix_mode != MatrixMode::kSparse) {
    GaugeSet(m_matrix_control_bytes_,
             static_cast<int64_t>(static_cast<uint64_t>(sim_.num_objects) * sim_.num_objects *
                                  sim_.timestamp_bits / 8));
  }
  m_slip_hist_ = registry_->AddHistogram("pacing.slip_ms_hist", ExponentialBounds(1, 2.0, 12));
  m_cycle_ms_ = registry_->AddHistogram("server.cycle_ms", ExponentialBounds(1, 2.0, 14));
  m_validate_us_ = registry_->AddHistogram("uplink.validate_us", ExponentialBounds(1, 2.0, 20));
  if (!net_.trace_out.empty()) {
    tracer_ = std::make_unique<Tracer>(net_.trace_capacity);
    server_ring_ = tracer_->AddTrack("server");
  }
  metrics_logger_ = std::make_unique<MetricsLogger>(net_.metrics_out, net_.metrics_interval_ms,
                                                    registry_.get(), "server");
}

Status ServerDaemon::MaybeLogMetrics() {
  if (metrics_logger_ == nullptr) return Status::OK();
  return metrics_logger_->MaybeWrite(wall_.ElapsedMs());
}

/// The METRICS reply payload: the registry snapshot wrapped with enough
/// context (node, uptime, cycle) to read one poll in isolation. Answers
/// even when telemetry is off, so a poller can distinguish "disabled" from
/// "dead".
std::string ServerDaemon::MetricsEnvelopeJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("node").Value("server");
  w.Key("enabled").Value(registry_ != nullptr);
  w.Key("t_ms").Value(wall_.ElapsedMs());
  w.Key("cycle").Value(
      static_cast<uint64_t>(server_ != nullptr ? server_->snapshot().cycle : 0));
  if (registry_ != nullptr) {
    w.Key("metrics");
    registry_->WriteJson(w);
  }
  w.EndObject();
  return std::move(w).Take();
}

void ServerDaemon::MaybeWarnSlowCycle(const CyclePacer& pacer, Cycle cycle, uint64_t cycle_us) {
  if (net_.slow_cycle_factor <= 0.0) return;
  const double period_ms = pacer.PeriodMs();
  if (period_ms <= 0.0) return;  // unpaced: no deadline to miss
  const double cycle_ms = static_cast<double>(cycle_us) / 1000.0;
  if (cycle_ms <= net_.slow_cycle_factor * period_ms) return;
  ++stats_.slow_cycles;
  CounterAdd(m_slow_cycles_);
  if (tracer_ != nullptr && server_ring_ != nullptr) {
    TraceEvent ev;
    ev.type = TraceEventType::kStall;
    ev.time = wall_.ElapsedUs();
    ev.cycle = cycle;
    ev.value = cycle_us;
    TraceTo(server_ring_, ev);
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("warning").Value("slow_cycle");
  w.Key("cycle").Value(static_cast<uint64_t>(cycle));
  w.Key("cycle_ms").Value(cycle_ms);
  w.Key("deadline_ms").Value(net_.slow_cycle_factor * period_ms);
  w.Key("period_ms").Value(period_ms);
  w.EndObject();
  std::fprintf(stderr, "bcc_serverd: %s\n", std::move(w).Take().c_str());
}

Status ServerDaemon::SetUpSocket() {
  BCC_RETURN_IF_ERROR(socket_.Open());
  Endpoint listen;
  if (!net_.listen.empty()) {
    BCC_ASSIGN_OR_RETURN(listen, ParseEndpoint(net_.listen));
  }
  BCC_RETURN_IF_ERROR(socket_.Bind(listen));
  BCC_ASSIGN_OR_RETURN(const Endpoint bound, socket_.local_endpoint());
  if (!net_.multicast.empty()) {
    BCC_ASSIGN_OR_RETURN(const Endpoint group, ParseEndpoint(net_.multicast));
    BCC_ASSIGN_OR_RETURN(mcast_addr_, ResolveEndpoint(group));
    BCC_RETURN_IF_ERROR(socket_.SetMulticastSendOptions());
  }
  if (!net_.endpoint_file.empty()) {
    BCC_RETURN_IF_ERROR(WriteTextFile(net_.endpoint_file, bound.ToString() + "\n"));
  }
  std::fprintf(stderr, "bcc_serverd: uplink on %s\n", bound.ToString().c_str());
  BCC_RETURN_IF_ERROR(loop_.Init());
  return loop_.Add(socket_.fd(), [this] { return DrainUplink(); });
}

Status ServerDaemon::CheckWatchdog() const {
  if (net_.max_wall_ms > 0 && wall_.ElapsedMs() > net_.max_wall_ms) {
    return Status::Internal(StrFormat("watchdog: exceeded %llu ms",
                                      static_cast<unsigned long long>(net_.max_wall_ms)));
  }
  return Status::OK();
}

Status ServerDaemon::DrainUplink() {
  for (;;) {
    BCC_ASSIGN_OR_RETURN(const std::vector<InDatagram> dgrams,
                         socket_.RecvBatch(/*max_datagrams=*/64, /*max_bytes=*/65536));
    if (dgrams.empty()) return Status::OK();
    for (const InDatagram& d : dgrams) BCC_RETURN_IF_ERROR(HandleUplink(d));
  }
}

Status ServerDaemon::HandleUplink(const InDatagram& dgram) {
  const auto kind = PeekKind(dgram.bytes);
  if (!kind.ok()) return Status::OK();  // stray datagram; ignore
  switch (*kind) {
    case MsgKind::kHello: {
      const auto hello = DecodeHello(dgram.bytes);
      if (!hello.ok()) return Status::OK();
      size_t index = clients_.size();
      for (size_t i = 0; i < clients_.size(); ++i) {
        if (clients_[i].addr == dgram.from) {
          index = i;
          break;
        }
      }
      if (index == clients_.size()) {
        if (clients_.size() >= net_.expected_clients) return Status::OK();  // full house
        ClientSlot slot;
        slot.addr = dgram.from;
        slot.client_id = hello->client_id;
        clients_.push_back(slot);
      }
      HelloAckMsg ack = ack_template_;
      ack.client_index = static_cast<uint32_t>(index);
      const std::vector<uint8_t> bytes = EncodeHelloAck(ack);
      return socket_.SendTo(bytes, dgram.from).status();
    }
    case MsgKind::kUpdate: {
      const auto update = DecodeUpdate(dgram.bytes);
      if (!update.ok()) return Status::OK();
      ClientUpdateRequest request;
      request.id = next_uplink_id_++;
      request.reads = update->reads;
      request.writes = update->writes;
      const Cycle current = server_->snapshot().cycle;
      const uint64_t t0_us = wall_.ElapsedUs();
      const auto verdict = validator_->ValidateAndCommit(request, current);
      HistogramRecord(m_validate_us_, wall_.ElapsedUs() - t0_us);
      const uint32_t ci = update->client_index;
      const bool tracked = ci < client_metrics_.size();
      if (verdict.ok()) {
        ++stats_.uplink_accepts;
        CounterAdd(m_uplink_accepts_);
        if (tracked) CounterAdd(client_metrics_[ci].accepts);
      } else {
        ++stats_.uplink_rejects;
        CounterAdd(m_uplink_rejects_);
        if (tracked) CounterAdd(client_metrics_[ci].rejects);
      }
      if (tracked) {
        Cycle last_read = 0;
        for (const ReadRecord& r : update->reads) last_read = std::max(last_read, r.cycle);
        GaugeSet(client_metrics_[ci].last_read_cycle, static_cast<int64_t>(last_read));
        GaugeSet(client_metrics_[ci].lag_cycles,
                 static_cast<int64_t>(current) - static_cast<int64_t>(last_read));
      }
      if (ci < client_rings_.size()) {
        TraceEvent ev;
        ev.type = TraceEventType::kValidation;
        ev.time = wall_.ElapsedUs();
        ev.cycle = current;
        ev.value = verdict.ok() ? 1 : 0;
        if (!verdict.ok()) ev.abort = validator_->last_reject();
        TraceTo(client_rings_[ci], ev);
      }
      if (record_decisions_) {
        UplinkDecision d;
        d.id = request.id;
        d.client_index = ci;
        d.cycle = current;
        d.accepted = verdict.ok();
        if (verdict.ok()) {
          if (processor_ == nullptr) {
            d.seq = next_commit_seq_++;  // direct mode commits on the spot
          } else {
            staged_uplink_decisions_.push_back(decisions_.uplinks.size());
          }
        } else {
          d.cause = validator_->last_reject();
        }
        d.reads = update->reads;
        d.writes = update->writes;
        decisions_.uplinks.push_back(std::move(d));
      }
      UpdateReplyMsg reply;
      reply.seq = update->seq;
      reply.accepted = verdict.ok();
      const std::vector<uint8_t> bytes = EncodeUpdateReply(reply);
      return socket_.SendTo(bytes, dgram.from).status();
    }
    case MsgKind::kMetricsReq: {
      const auto req = DecodeMetricsReq(dgram.bytes);
      if (!req.ok()) return Status::OK();
      CounterAdd(m_metrics_polls_);
      MetricsMsg reply;
      reply.token = req->token;
      reply.node_kind = kMetricsNodeServer;
      reply.json = MetricsEnvelopeJson();
      const std::vector<uint8_t> bytes = EncodeMetrics(reply);
      return socket_.SendTo(bytes, dgram.from).status();
    }
    case MsgKind::kStats: {
      if (!collecting_stats_) return Status::OK();
      const auto stats = DecodeStats(dgram.bytes);
      if (!stats.ok()) return Status::OK();
      if (stats->client_index < clients_.size()) {
        ClientSlot& slot = clients_[stats->client_index];
        if (!slot.stats_received) {
          slot.stats_received = true;
          slot.stats = *stats;
        }
        if (stats->client_index < client_metrics_.size()) {
          GaugeSet(client_metrics_[stats->client_index].frames_dropped,
                   static_cast<int64_t>(stats->channel.frames_dropped));
        }
      }
      return Status::OK();
    }
    default:
      return Status::OK();
  }
}

Status ServerDaemon::WaitForClients() {
  const WallClock hello_wall;
  while (clients_.size() < net_.expected_clients) {
    BCC_RETURN_IF_ERROR(CheckWatchdog());
    if (hello_wall.ElapsedMs() > net_.hello_timeout_ms) {
      return Status::Internal(StrFormat("only %zu of %u clients registered before the timeout",
                                        clients_.size(), net_.expected_clients));
    }
    BCC_RETURN_IF_ERROR(loop_.Poll(/*timeout_ms=*/50).status());
    BCC_RETURN_IF_ERROR(MaybeLogMetrics());
  }
  GaugeSet(m_clients_gauge_, static_cast<int64_t>(clients_.size()));
  // Per-client metrics and trace tracks: registered here, after the HELLO
  // barrier fixed the client set, still on the daemon's single thread (Add*
  // is setup-time-only, like Tracer::AddTrack).
  if (registry_ != nullptr) {
    client_metrics_.resize(clients_.size());
    for (size_t i = 0; i < clients_.size(); ++i) {
      PerClientMetrics& pc = client_metrics_[i];
      pc.accepts = registry_->AddCounter(StrFormat("client%zu.uplink_accepts", i));
      pc.rejects = registry_->AddCounter(StrFormat("client%zu.uplink_rejects", i));
      pc.last_read_cycle = registry_->AddGauge(StrFormat("client%zu.last_read_cycle", i));
      pc.lag_cycles = registry_->AddGauge(StrFormat("client%zu.lag_cycles", i));
      pc.frames_dropped = registry_->AddGauge(StrFormat("client%zu.frames_dropped", i));
    }
  }
  if (tracer_ != nullptr) {
    client_rings_.resize(clients_.size());
    for (size_t i = 0; i < clients_.size(); ++i) {
      client_rings_[i] = tracer_->AddTrack(StrFormat("client%zu", i));
    }
  }
  return Status::OK();
}

Status ServerDaemon::ReplayCommitsForCycle(Cycle cycle) {
  // DES boundary rule: the cycle-start event was inserted before any commit
  // scheduled at exactly the boundary time, so a commit at vt == cycle_end
  // belongs to the NEXT cycle — hence the strict <.
  const SimTime cycle_end = static_cast<SimTime>(cycle) * server_->CycleLengthBits();
  while (next_commit_vt_ < cycle_end) {
    const ServerTxn txn = workload_->NextTxn();
    if (processor_ != nullptr) {
      if (overlay_ != nullptr) overlay_->Stage(txn.write_set, cycle);
      pending_server_txns_.push_back(txn);
    } else {
      manager_->ExecuteAndCommit(txn, cycle);
    }
    if (record_decisions_) {
      ServerCommitRecord rec;
      rec.id = txn.id;
      rec.cycle = cycle;
      rec.reads = txn.read_set;
      rec.writes = txn.write_set;
      if (processor_ == nullptr) {
        rec.seq = next_commit_seq_++;
      } else {
        staged_server_commits_.push_back(decisions_.server_commits.size());
      }
      decisions_.server_commits.push_back(std::move(rec));
    }
    ++stats_.server_commits;
    CounterAdd(m_server_commits_);
    next_commit_vt_ += workload_->NextInterval();
  }
  return Status::OK();
}

void ServerDaemon::FlushBatch(Cycle cycle) {
  if (processor_ == nullptr) return;
  if (!pending_uplink_txns_.empty()) {
    // Accepted uplinks commit first, serially, in acceptance order — the
    // same serial-prefix rule as the DES engine's cycle fold.
    const std::vector<CommittedServerTxn> committed =
        processor_->ExecuteSerial(pending_uplink_txns_);
    FoldIntoManager(committed, *manager_, cycle);
    pending_uplink_txns_.clear();
  }
  if (!pending_server_txns_.empty()) {
    const std::vector<CommittedServerTxn> committed =
        processor_->ExecuteBatch(pending_server_txns_);
    FoldIntoManager(committed, *manager_, cycle);
    pending_server_txns_.clear();
  }
  if (overlay_ != nullptr) overlay_->Clear();
  // The fold above is the store's commit point in staged mode: assign the
  // decision log's commit-order seqs in the same order it folded (uplink
  // serial prefix in acceptance order, then the server batch).
  for (size_t i : staged_uplink_decisions_) decisions_.uplinks[i].seq = next_commit_seq_++;
  staged_uplink_decisions_.clear();
  for (size_t i : staged_server_commits_) decisions_.server_commits[i].seq = next_commit_seq_++;
  staged_server_commits_.clear();
}

Status ServerDaemon::FanOutCycle(Cycle cycle) {
  const CycleSnapshot& snap = server_->snapshot();
  EncodeCycleFramesInto(snap, *codec_, sim_.object_size_bits, frame_scratch_);
  stats_.frames_per_cycle = frame_scratch_.size();
  const std::vector<std::vector<uint8_t>> dgrams =
      PackCycleDatagrams(cycle, frame_scratch_, net_.dgram_bytes);

  std::vector<OutDatagram> batch;
  if (mcast_addr_.has_value()) {
    batch.reserve(dgrams.size());
    for (const auto& d : dgrams) batch.push_back(OutDatagram{d, *mcast_addr_});
  } else {
    batch.reserve(dgrams.size() * clients_.size());
    // Interleave clients within each datagram slot so no client systematically
    // trails the others through a cycle's burst.
    for (const auto& d : dgrams) {
      for (const ClientSlot& c : clients_) batch.push_back(OutDatagram{d, c.addr});
    }
  }
  BCC_ASSIGN_OR_RETURN(const size_t sent, socket_.SendBatch(batch));
  stats_.datagrams_sent += sent;
  CounterAdd(m_datagrams_, sent);
  uint64_t cycle_bytes = 0;
  for (const auto& d : dgrams) {
    cycle_bytes += d.size() * (mcast_addr_.has_value() ? 1 : clients_.size());
  }
  stats_.bytes_sent += cycle_bytes;
  CounterAdd(m_bytes_, cycle_bytes);
  if (server_ring_ != nullptr) {
    TraceEvent ev;
    ev.type = TraceEventType::kBroadcastTx;
    ev.time = wall_.ElapsedUs();
    ev.cycle = cycle;
    ev.value = cycle_bytes;
    TraceTo(server_ring_, ev);
  }
  return Status::OK();
}

Status ServerDaemon::BroadcastCycles() {
  CyclePacer pacer(net_.pace_cycles_per_sec);
  pacer.Start();
  const uint64_t cycles = sim_.stop_after_cycles;
  for (Cycle cycle = 1; cycle <= cycles; ++cycle) {
    BCC_RETURN_IF_ERROR(CheckWatchdog());
    // Pacing: drain the uplink while waiting for the cycle's start time.
    for (;;) {
      const int64_t wait = pacer.MsUntilDue(cycle);
      BCC_RETURN_IF_ERROR(loop_.Poll(static_cast<int>(std::min<int64_t>(wait, 100))).status());
      BCC_RETURN_IF_ERROR(MaybeLogMetrics());
      if (wait == 0) break;
      BCC_RETURN_IF_ERROR(CheckWatchdog());
    }
    const double slip_ms = pacer.SlipMs(cycle);
    if (slip_ms > stats_.max_slip_ms) stats_.max_slip_ms = slip_ms;
    GaugeSet(m_pacing_slip_, static_cast<int64_t>(slip_ms));
    HistogramRecord(m_slip_hist_, static_cast<uint64_t>(slip_ms));
    GaugeSet(m_current_cycle_, static_cast<int64_t>(cycle));
    const uint64_t cycle_start_us = wall_.ElapsedUs();
    server_->BeginCycle(cycle, static_cast<SimTime>(cycle - 1) * server_->CycleLengthBits(),
                        *manager_);
    if (registry_ != nullptr && sim_.matrix_mode == MatrixMode::kSparse) {
      // Cycle boundary: the commit batch was just flushed into the snapshot,
      // so nnz() is the begin-of-cycle footprint clients validate against.
      const SparseFMatrix& sm = manager_->sparse_f_matrix();
      GaugeSet(m_matrix_nnz_, static_cast<int64_t>(sm.nnz()));
      GaugeSet(m_matrix_control_bytes_,
               static_cast<int64_t>(SparseMatrixControlBits(sm, sim_.timestamp_bits) / 8));
    }
    if (sim_.delta_broadcast) {
      manager_->DrainTouchedColumns(touched_scratch_);
      server_->AttachDeltaControl(touched_scratch_);
    }
    BCC_RETURN_IF_ERROR(FanOutCycle(cycle));
    // The cycle's server commits are staged right after its snapshot goes on
    // the air: an uplink validated later in the cycle sees their MC effects
    // (conservative — staging can only add rejects, never false accepts)
    // and the next BeginCycle folds them in, the same cycle-granular
    // visibility the DES engines give clients.
    BCC_RETURN_IF_ERROR(ReplayCommitsForCycle(cycle));
    FlushBatch(cycle);
    const uint64_t cycle_us = wall_.ElapsedUs() - cycle_start_us;
    CounterAdd(m_cycles_);
    HistogramRecord(m_cycle_ms_, cycle_us / 1000);
    if (server_ring_ != nullptr) {
      TraceEvent ev;
      ev.type = TraceEventType::kCycleStart;
      ev.time = cycle_start_us;
      ev.duration = cycle_us;
      ev.cycle = cycle;
      TraceTo(server_ring_, ev);
    }
    MaybeWarnSlowCycle(pacer, cycle, cycle_us);
  }
  stats_.cycles = cycles;
  return Status::OK();
}

Status ServerDaemon::CollectStats() {
  collecting_stats_ = true;
  final_cycle_ = sim_.stop_after_cycles;
  StatsReqMsg req;
  req.final_cycle = final_cycle_;
  const std::vector<uint8_t> bytes = EncodeStatsReq(req);
  const WallClock stats_wall;
  uint64_t last_resend_ms = 0;
  for (;;) {
    size_t reported = 0;
    for (const ClientSlot& c : clients_) reported += c.stats_received ? 1 : 0;
    if (reported == clients_.size()) break;
    if (stats_wall.ElapsedMs() > net_.stats_timeout_ms) {
      return Status::Internal(StrFormat("only %zu of %zu clients reported stats", reported,
                                        clients_.size()));
    }
    // Re-request from stragglers every 200 ms (STATS_REQ or STATS datagrams
    // may be dropped; both sides are idempotent).
    if (stats_wall.ElapsedMs() - last_resend_ms > 200 || last_resend_ms == 0) {
      last_resend_ms = stats_wall.ElapsedMs();
      for (const ClientSlot& c : clients_) {
        if (!c.stats_received) BCC_RETURN_IF_ERROR(socket_.SendTo(bytes, c.addr).status());
      }
    }
    BCC_RETURN_IF_ERROR(loop_.Poll(/*timeout_ms=*/50).status());
    BCC_RETURN_IF_ERROR(MaybeLogMetrics());
  }
  for (const ClientSlot& c : clients_) stats_.clients.push_back(c.stats);
  return Status::OK();
}

Status ServerDaemon::Run(ServerReport* report) {
  BCC_RETURN_IF_ERROR(net_.Validate());
  BCC_RETURN_IF_ERROR(NormalizeNetSimConfig(&sim_));
  SetUpTelemetry();
  BCC_RETURN_IF_ERROR(SetUpEngine());
  BCC_RETURN_IF_ERROR(SetUpSocket());
  BCC_RETURN_IF_ERROR(WaitForClients());
  BCC_RETURN_IF_ERROR(BroadcastCycles());
  BCC_RETURN_IF_ERROR(CollectStats());
  // Uplinks accepted after the final fold (stats collection can race
  // in-flight updates) close out the decision log's commit order.
  for (size_t i : staged_uplink_decisions_) decisions_.uplinks[i].seq = next_commit_seq_++;
  staged_uplink_decisions_.clear();

  const CycleSnapshot& snap = server_->snapshot();
  uint64_t digest = DigestValues(snap.values);
  // Sparse mode leaves the snapshot's dense matrix empty; the sparse At()
  // returns the same absolute values, so the digest is representation-
  // independent (a sparse daemon still matches a dense in-process oracle).
  const CycleStampCodec digest_codec(sim_.timestamp_bits);
  digest = snap.sparse_f_matrix != nullptr
               ? DigestMatrixResidues(*snap.sparse_f_matrix, digest_codec, digest)
               : DigestMatrixResidues(snap.f_matrix, digest_codec, digest);
  stats_.digest = digest;
  stats_.wall_sec = wall_.ElapsedSec();
  stats_.cycles_per_sec =
      stats_.wall_sec > 0 ? static_cast<double>(stats_.cycles) / stats_.wall_sec : 0;
  if (registry_ != nullptr) stats_.metrics_json = registry_->ToJson();
  if (metrics_logger_ != nullptr) {
    BCC_RETURN_IF_ERROR(metrics_logger_->WriteNow(wall_.ElapsedMs()));
  }
  if (tracer_ != nullptr && !net_.trace_out.empty()) {
    BCC_RETURN_IF_ERROR(WriteTextFile(net_.trace_out, ExportChromeTrace(*tracer_)));
  }
  if (record_decisions_) {
    stats_.decisions = decisions_;
    BCC_RETURN_IF_ERROR(WriteTextFile(net_.decisions_out, decisions_.ToJson() + "\n"));
  }
  *report = stats_;
  return Status::OK();
}

}  // namespace

std::string DecisionLog::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("server_commits").BeginArray();
  for (const ServerCommitRecord& r : server_commits) {
    w.BeginObject();
    w.Key("id").Value(static_cast<uint64_t>(r.id));
    w.Key("cycle").Value(static_cast<uint64_t>(r.cycle));
    w.Key("seq").Value(r.seq);
    w.Key("reads").BeginArray();
    for (const ObjectId ob : r.reads) w.Value(static_cast<uint64_t>(ob));
    w.EndArray();
    w.Key("writes").BeginArray();
    for (const ObjectId ob : r.writes) w.Value(static_cast<uint64_t>(ob));
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("uplinks").BeginArray();
  for (const UplinkDecision& d : uplinks) {
    w.BeginObject();
    w.Key("id").Value(static_cast<uint64_t>(d.id));
    w.Key("client_index").Value(d.client_index);
    w.Key("cycle").Value(static_cast<uint64_t>(d.cycle));
    w.Key("seq").Value(d.seq);
    w.Key("accepted").Value(d.accepted);
    if (!d.accepted) {
      w.Key("cause").BeginObject();
      w.Key("kind").Value(AbortCauseName(d.cause.cause));
      w.Key("ob_i").Value(static_cast<uint64_t>(d.cause.ob_i));
      w.Key("ob_j").Value(static_cast<uint64_t>(d.cause.ob_j));
      w.Key("read_cycle").Value(static_cast<uint64_t>(d.cause.read_cycle));
      w.Key("c_ij").Value(static_cast<uint64_t>(d.cause.c_ij));
      w.EndObject();
    }
    w.Key("reads").BeginArray();
    for (const ReadRecord& rr : d.reads) {
      w.BeginObject();
      w.Key("object").Value(static_cast<uint64_t>(rr.object));
      w.Key("cycle").Value(static_cast<uint64_t>(rr.cycle));
      w.EndObject();
    }
    w.EndArray();
    w.Key("writes").BeginArray();
    for (const ObjectId ob : d.writes) w.Value(static_cast<uint64_t>(ob));
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

std::string ServerReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("cycles").Value(cycles);
  w.Key("frames_per_cycle").Value(frames_per_cycle);
  w.Key("server_commits").Value(server_commits);
  w.Key("uplink_accepts").Value(uplink_accepts);
  w.Key("uplink_rejects").Value(uplink_rejects);
  w.Key("datagrams_sent").Value(datagrams_sent);
  w.Key("bytes_sent").Value(bytes_sent);
  w.Key("slow_cycles").Value(slow_cycles);
  w.Key("max_slip_ms").Value(max_slip_ms);
  w.Key("digest").Value(digest);
  w.Key("wall_sec").Value(wall_sec);
  w.Key("cycles_per_sec").Value(cycles_per_sec);
  w.Key("clients").BeginArray();
  for (const StatsMsg& c : clients) {
    w.BeginObject();
    w.Key("client_index").Value(c.client_index);
    w.Key("digest").Value(c.digest);
    w.Key("digest_match").Value(c.digest == digest);
    w.Key("txns").Value(c.txns);
    w.Key("commits").Value(c.commits);
    w.Key("aborts").Value(c.aborts);
    w.Key("p50_us").Value(c.p50_us);
    w.Key("p99_us").Value(c.p99_us);
    w.Key("channel");
    AppendChannelStatsJson(w, c.channel);
    w.EndObject();
  }
  w.EndArray();
  if (!metrics_json.empty()) {
    w.Key("metrics").RawValue(metrics_json);
  }
  w.EndObject();
  return std::move(w).Take();
}

Status RunServerDaemon(const NetConfig& net, const SimConfig& sim, ServerReport* report) {
  ServerDaemon daemon(net, sim);
  return daemon.Run(report);
}

}  // namespace bcc
