#include "net/server_daemon.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>

#include "common/format.h"
#include "common/rng.h"
#include "net/epoll_loop.h"
#include "net/pacing.h"
#include "net/socket.h"
#include "net/state_digest.h"
#include "obs/json.h"
#include "obs/trace_export.h"
#include "server/broadcast_server.h"
#include "server/exec/txn_processor.h"
#include "server/mc_overlay.h"
#include "server/validator.h"
#include "sim/workload.h"

namespace bcc {

namespace {

void AppendChannelStatsJson(JsonWriter& w, const ChannelStats& ch) {
  w.BeginObject();
  w.Key("frames_sent").Value(ch.frames_sent);
  w.Key("frames_dropped").Value(ch.frames_dropped);
  w.Key("frames_delivered").Value(ch.frames_delivered);
  w.Key("frames_rejected").Value(ch.frames_rejected);
  w.Key("control_losses").Value(ch.control_losses);
  w.Key("data_losses").Value(ch.data_losses);
  w.Key("stalls").Value(ch.stalls);
  w.Key("resyncs").Value(ch.resyncs);
  w.Key("tracker_desyncs").Value(ch.tracker_desyncs);
  w.Key("loss_attributed_aborts").Value(ch.loss_attributed_aborts);
  w.EndObject();
}

/// Everything the daemon knows about one registered client.
struct ClientSlot {
  SockAddr addr;
  uint32_t client_id = 0;
  bool stats_received = false;
  StatsMsg stats;
};

class ServerDaemon {
 public:
  ServerDaemon(const NetConfig& net, const SimConfig& sim) : net_(net), sim_(sim) {}

  Status Run(ServerReport* report);

 private:
  Status SetUpEngine();
  Status SetUpSocket();
  Status WaitForClients();
  Status BroadcastCycles();
  Status ReplayCommitsForCycle(Cycle cycle);
  void FlushBatch(Cycle cycle);
  Status FanOutCycle(Cycle cycle);
  Status CollectStats();
  Status DrainUplink();
  Status HandleUplink(const InDatagram& dgram);
  Status CheckWatchdog() const;

  NetConfig net_;
  SimConfig sim_;

  // Engine (mirrors BroadcastSim::Run's server-side setup).
  std::unique_ptr<ServerTxnManager> manager_;
  std::unique_ptr<BroadcastServer> server_;
  std::unique_ptr<ServerWorkload> workload_;
  std::unique_ptr<TxnProcessor> processor_;
  std::unique_ptr<UpdateValidator> validator_;
  std::unique_ptr<McOverlay> overlay_;
  std::vector<ServerTxn> pending_uplink_txns_;
  std::vector<ServerTxn> pending_server_txns_;
  std::vector<ObjectId> touched_scratch_;
  std::optional<FrameCodec> codec_;
  std::vector<Frame> frame_scratch_;

  // Commit replay clock: virtual time of the next server commit.
  SimTime next_commit_vt_ = 0;
  TxnId next_uplink_id_ = 1u << 30;  ///< uplink txn ids, disjoint from workload ids

  // Transport.
  UdpSocket socket_;
  EpollLoop loop_;
  std::optional<SockAddr> mcast_addr_;
  std::vector<ClientSlot> clients_;
  HelloAckMsg ack_template_;
  bool collecting_stats_ = false;
  uint64_t final_cycle_ = 0;

  WallClock wall_;
  ServerReport stats_;
};

Status ServerDaemon::SetUpEngine() {
  TxnManagerOptions options;
  options.maintain_f_matrix = true;
  options.maintain_mc_vector = true;
  options.track_dirty_columns = sim_.delta_broadcast;
  manager_ = std::make_unique<ServerTxnManager>(sim_.num_objects, options);

  server_ = std::make_unique<BroadcastServer>(sim_.num_objects, sim_.Geometry());
  if (sim_.delta_broadcast) {
    server_->EnableDeltaBroadcast(CycleStampCodec(sim_.timestamp_bits),
                                  sim_.delta_refresh_period);
  }

  // Same RNG split discipline as BroadcastSim: the server workload takes the
  // root's first split, so the daemon's commit stream is bit-identical to
  // the DES oracle's for the same (seed, config).
  Rng root(sim_.seed);
  workload_ = std::make_unique<ServerWorkload>(sim_, root.Split());
  next_commit_vt_ = workload_->NextInterval();

  if (sim_.update_scheme != UpdateScheme::kSequential) {
    processor_ = std::make_unique<TxnProcessor>(sim_.num_objects, sim_.update_scheme,
                                                sim_.update_workers);
    manager_->SetParallelFold(
        [this](uint32_t shards, const std::function<void(uint32_t)>& body) {
          processor_->RunShards(shards, body);
        },
        sim_.update_workers);
  }

  // The uplink validator is always armed: any client may submit updates.
  validator_ = std::make_unique<UpdateValidator>(manager_.get());
  if (processor_ != nullptr) {
    overlay_ = std::make_unique<McOverlay>(sim_.num_objects);
    validator_->AttachStagedMode(overlay_.get(), [this](ServerTxn&& txn) {
      pending_uplink_txns_.push_back(std::move(txn));
    });
  }

  codec_.emplace(CycleStampCodec(sim_.timestamp_bits), sim_.channel_frame_bits);

  ack_template_.num_objects = sim_.num_objects;
  ack_template_.ts_bits = static_cast<uint8_t>(sim_.timestamp_bits);
  ack_template_.control_mode =
      sim_.delta_broadcast ? CycleIndex::kControlDelta : CycleIndex::kControlColumns;
  ack_template_.frame_bits = static_cast<uint32_t>(sim_.channel_frame_bits);
  ack_template_.cycles = sim_.stop_after_cycles;
  return Status::OK();
}

Status ServerDaemon::SetUpSocket() {
  BCC_RETURN_IF_ERROR(socket_.Open());
  Endpoint listen;
  if (!net_.listen.empty()) {
    BCC_ASSIGN_OR_RETURN(listen, ParseEndpoint(net_.listen));
  }
  BCC_RETURN_IF_ERROR(socket_.Bind(listen));
  BCC_ASSIGN_OR_RETURN(const Endpoint bound, socket_.local_endpoint());
  if (!net_.multicast.empty()) {
    BCC_ASSIGN_OR_RETURN(const Endpoint group, ParseEndpoint(net_.multicast));
    BCC_ASSIGN_OR_RETURN(mcast_addr_, ResolveEndpoint(group));
    BCC_RETURN_IF_ERROR(socket_.SetMulticastSendOptions());
  }
  if (!net_.endpoint_file.empty()) {
    BCC_RETURN_IF_ERROR(WriteTextFile(net_.endpoint_file, bound.ToString() + "\n"));
  }
  std::fprintf(stderr, "bcc_serverd: uplink on %s\n", bound.ToString().c_str());
  BCC_RETURN_IF_ERROR(loop_.Init());
  return loop_.Add(socket_.fd(), [this] { return DrainUplink(); });
}

Status ServerDaemon::CheckWatchdog() const {
  if (net_.max_wall_ms > 0 && wall_.ElapsedMs() > net_.max_wall_ms) {
    return Status::Internal(StrFormat("watchdog: exceeded %llu ms",
                                      static_cast<unsigned long long>(net_.max_wall_ms)));
  }
  return Status::OK();
}

Status ServerDaemon::DrainUplink() {
  for (;;) {
    BCC_ASSIGN_OR_RETURN(const std::vector<InDatagram> dgrams,
                         socket_.RecvBatch(/*max_datagrams=*/64, /*max_bytes=*/65536));
    if (dgrams.empty()) return Status::OK();
    for (const InDatagram& d : dgrams) BCC_RETURN_IF_ERROR(HandleUplink(d));
  }
}

Status ServerDaemon::HandleUplink(const InDatagram& dgram) {
  const auto kind = PeekKind(dgram.bytes);
  if (!kind.ok()) return Status::OK();  // stray datagram; ignore
  switch (*kind) {
    case MsgKind::kHello: {
      const auto hello = DecodeHello(dgram.bytes);
      if (!hello.ok()) return Status::OK();
      size_t index = clients_.size();
      for (size_t i = 0; i < clients_.size(); ++i) {
        if (clients_[i].addr == dgram.from) {
          index = i;
          break;
        }
      }
      if (index == clients_.size()) {
        if (clients_.size() >= net_.expected_clients) return Status::OK();  // full house
        ClientSlot slot;
        slot.addr = dgram.from;
        slot.client_id = hello->client_id;
        clients_.push_back(slot);
      }
      HelloAckMsg ack = ack_template_;
      ack.client_index = static_cast<uint32_t>(index);
      const std::vector<uint8_t> bytes = EncodeHelloAck(ack);
      return socket_.SendTo(bytes, dgram.from).status();
    }
    case MsgKind::kUpdate: {
      const auto update = DecodeUpdate(dgram.bytes);
      if (!update.ok()) return Status::OK();
      ClientUpdateRequest request;
      request.id = next_uplink_id_++;
      request.reads = update->reads;
      request.writes = update->writes;
      const auto verdict = validator_->ValidateAndCommit(request, server_->snapshot().cycle);
      if (verdict.ok()) {
        ++stats_.uplink_accepts;
      } else {
        ++stats_.uplink_rejects;
      }
      UpdateReplyMsg reply;
      reply.seq = update->seq;
      reply.accepted = verdict.ok();
      const std::vector<uint8_t> bytes = EncodeUpdateReply(reply);
      return socket_.SendTo(bytes, dgram.from).status();
    }
    case MsgKind::kStats: {
      if (!collecting_stats_) return Status::OK();
      const auto stats = DecodeStats(dgram.bytes);
      if (!stats.ok()) return Status::OK();
      if (stats->client_index < clients_.size()) {
        ClientSlot& slot = clients_[stats->client_index];
        if (!slot.stats_received) {
          slot.stats_received = true;
          slot.stats = *stats;
        }
      }
      return Status::OK();
    }
    default:
      return Status::OK();
  }
}

Status ServerDaemon::WaitForClients() {
  const WallClock hello_wall;
  while (clients_.size() < net_.expected_clients) {
    BCC_RETURN_IF_ERROR(CheckWatchdog());
    if (hello_wall.ElapsedMs() > net_.hello_timeout_ms) {
      return Status::Internal(StrFormat("only %zu of %u clients registered before the timeout",
                                        clients_.size(), net_.expected_clients));
    }
    BCC_RETURN_IF_ERROR(loop_.Poll(/*timeout_ms=*/50).status());
  }
  return Status::OK();
}

Status ServerDaemon::ReplayCommitsForCycle(Cycle cycle) {
  // DES boundary rule: the cycle-start event was inserted before any commit
  // scheduled at exactly the boundary time, so a commit at vt == cycle_end
  // belongs to the NEXT cycle — hence the strict <.
  const SimTime cycle_end = static_cast<SimTime>(cycle) * server_->CycleLengthBits();
  while (next_commit_vt_ < cycle_end) {
    const ServerTxn txn = workload_->NextTxn();
    if (processor_ != nullptr) {
      if (overlay_ != nullptr) overlay_->Stage(txn.write_set, cycle);
      pending_server_txns_.push_back(txn);
    } else {
      manager_->ExecuteAndCommit(txn, cycle);
    }
    ++stats_.server_commits;
    next_commit_vt_ += workload_->NextInterval();
  }
  return Status::OK();
}

void ServerDaemon::FlushBatch(Cycle cycle) {
  if (processor_ == nullptr) return;
  if (!pending_uplink_txns_.empty()) {
    // Accepted uplinks commit first, serially, in acceptance order — the
    // same serial-prefix rule as the DES engine's cycle fold.
    const std::vector<CommittedServerTxn> committed =
        processor_->ExecuteSerial(pending_uplink_txns_);
    FoldIntoManager(committed, *manager_, cycle);
    pending_uplink_txns_.clear();
  }
  if (!pending_server_txns_.empty()) {
    const std::vector<CommittedServerTxn> committed =
        processor_->ExecuteBatch(pending_server_txns_);
    FoldIntoManager(committed, *manager_, cycle);
    pending_server_txns_.clear();
  }
  if (overlay_ != nullptr) overlay_->Clear();
}

Status ServerDaemon::FanOutCycle(Cycle cycle) {
  const CycleSnapshot& snap = server_->snapshot();
  EncodeCycleFramesInto(snap, *codec_, sim_.object_size_bits, frame_scratch_);
  stats_.frames_per_cycle = frame_scratch_.size();
  const std::vector<std::vector<uint8_t>> dgrams =
      PackCycleDatagrams(cycle, frame_scratch_, net_.dgram_bytes);

  std::vector<OutDatagram> batch;
  if (mcast_addr_.has_value()) {
    batch.reserve(dgrams.size());
    for (const auto& d : dgrams) batch.push_back(OutDatagram{d, *mcast_addr_});
  } else {
    batch.reserve(dgrams.size() * clients_.size());
    // Interleave clients within each datagram slot so no client systematically
    // trails the others through a cycle's burst.
    for (const auto& d : dgrams) {
      for (const ClientSlot& c : clients_) batch.push_back(OutDatagram{d, c.addr});
    }
  }
  BCC_ASSIGN_OR_RETURN(const size_t sent, socket_.SendBatch(batch));
  stats_.datagrams_sent += sent;
  for (const auto& d : dgrams) {
    stats_.bytes_sent += d.size() * (mcast_addr_.has_value() ? 1 : clients_.size());
  }
  return Status::OK();
}

Status ServerDaemon::BroadcastCycles() {
  CyclePacer pacer(net_.pace_cycles_per_sec);
  pacer.Start();
  const uint64_t cycles = sim_.stop_after_cycles;
  for (Cycle cycle = 1; cycle <= cycles; ++cycle) {
    BCC_RETURN_IF_ERROR(CheckWatchdog());
    // Pacing: drain the uplink while waiting for the cycle's start time.
    for (;;) {
      const int64_t wait = pacer.MsUntilDue(cycle);
      BCC_RETURN_IF_ERROR(loop_.Poll(static_cast<int>(std::min<int64_t>(wait, 100))).status());
      if (wait == 0) break;
      BCC_RETURN_IF_ERROR(CheckWatchdog());
    }
    server_->BeginCycle(cycle, static_cast<SimTime>(cycle - 1) * server_->CycleLengthBits(),
                        *manager_);
    if (sim_.delta_broadcast) {
      manager_->DrainTouchedColumns(touched_scratch_);
      server_->AttachDeltaControl(touched_scratch_);
    }
    BCC_RETURN_IF_ERROR(FanOutCycle(cycle));
    // The cycle's server commits are staged right after its snapshot goes on
    // the air: an uplink validated later in the cycle sees their MC effects
    // (conservative — staging can only add rejects, never false accepts)
    // and the next BeginCycle folds them in, the same cycle-granular
    // visibility the DES engines give clients.
    BCC_RETURN_IF_ERROR(ReplayCommitsForCycle(cycle));
    FlushBatch(cycle);
  }
  stats_.cycles = cycles;
  return Status::OK();
}

Status ServerDaemon::CollectStats() {
  collecting_stats_ = true;
  final_cycle_ = sim_.stop_after_cycles;
  StatsReqMsg req;
  req.final_cycle = final_cycle_;
  const std::vector<uint8_t> bytes = EncodeStatsReq(req);
  const WallClock stats_wall;
  uint64_t last_resend_ms = 0;
  for (;;) {
    size_t reported = 0;
    for (const ClientSlot& c : clients_) reported += c.stats_received ? 1 : 0;
    if (reported == clients_.size()) break;
    if (stats_wall.ElapsedMs() > net_.stats_timeout_ms) {
      return Status::Internal(StrFormat("only %zu of %zu clients reported stats", reported,
                                        clients_.size()));
    }
    // Re-request from stragglers every 200 ms (STATS_REQ or STATS datagrams
    // may be dropped; both sides are idempotent).
    if (stats_wall.ElapsedMs() - last_resend_ms > 200 || last_resend_ms == 0) {
      last_resend_ms = stats_wall.ElapsedMs();
      for (const ClientSlot& c : clients_) {
        if (!c.stats_received) BCC_RETURN_IF_ERROR(socket_.SendTo(bytes, c.addr).status());
      }
    }
    BCC_RETURN_IF_ERROR(loop_.Poll(/*timeout_ms=*/50).status());
  }
  for (const ClientSlot& c : clients_) stats_.clients.push_back(c.stats);
  return Status::OK();
}

Status ServerDaemon::Run(ServerReport* report) {
  BCC_RETURN_IF_ERROR(net_.Validate());
  BCC_RETURN_IF_ERROR(NormalizeNetSimConfig(&sim_));
  BCC_RETURN_IF_ERROR(SetUpEngine());
  BCC_RETURN_IF_ERROR(SetUpSocket());
  BCC_RETURN_IF_ERROR(WaitForClients());
  BCC_RETURN_IF_ERROR(BroadcastCycles());
  BCC_RETURN_IF_ERROR(CollectStats());

  const CycleSnapshot& snap = server_->snapshot();
  uint64_t digest = DigestValues(snap.values);
  digest = DigestMatrixResidues(snap.f_matrix, CycleStampCodec(sim_.timestamp_bits), digest);
  stats_.digest = digest;
  stats_.wall_sec = wall_.ElapsedSec();
  stats_.cycles_per_sec =
      stats_.wall_sec > 0 ? static_cast<double>(stats_.cycles) / stats_.wall_sec : 0;
  *report = stats_;
  return Status::OK();
}

}  // namespace

std::string ServerReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("cycles").Value(cycles);
  w.Key("frames_per_cycle").Value(frames_per_cycle);
  w.Key("server_commits").Value(server_commits);
  w.Key("uplink_accepts").Value(uplink_accepts);
  w.Key("uplink_rejects").Value(uplink_rejects);
  w.Key("datagrams_sent").Value(datagrams_sent);
  w.Key("bytes_sent").Value(bytes_sent);
  w.Key("digest").Value(digest);
  w.Key("wall_sec").Value(wall_sec);
  w.Key("cycles_per_sec").Value(cycles_per_sec);
  w.Key("clients").BeginArray();
  for (const StatsMsg& c : clients) {
    w.BeginObject();
    w.Key("client_index").Value(c.client_index);
    w.Key("digest").Value(c.digest);
    w.Key("digest_match").Value(c.digest == digest);
    w.Key("txns").Value(c.txns);
    w.Key("commits").Value(c.commits);
    w.Key("aborts").Value(c.aborts);
    w.Key("p50_us").Value(c.p50_us);
    w.Key("p99_us").Value(c.p99_us);
    w.Key("channel");
    AppendChannelStatsJson(w, c.channel);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

Status RunServerDaemon(const NetConfig& net, const SimConfig& sim, ServerReport* report) {
  ServerDaemon daemon(net, sim);
  return daemon.Run(report);
}

}  // namespace bcc
