// Wire messages of the real-transport tier (DESIGN.md §4j).
//
// Every multi-byte field is serialized explicitly little-endian, byte by
// byte — never by struct overlay — so the wire format is identical across
// host endianness, struct padding, and compiler. The golden-bytes tests in
// tests/net_datagram_test.cc freeze the exact layout.
//
// Message layout (all messages): magic u16 (0xBCC2), kind u8, body.
//
//   kHello        client -> server  {client_id u32}
//   kHelloAck     server -> client  {client_index u32, num_objects u32,
//                                    ts_bits u8, control_mode u8,
//                                    frame_bits u32, cycles u64}
//   kCycleData    server -> client  {cycle u64, dgram_seq u16,
//                                    dgram_count u16, frame_count u16,
//                                    cycle_frames u16, frame_bytes u16,
//                                    frames: frame_count x frame_bytes}
//   kStatsReq     server -> client  {final_cycle u64}
//   kStats        client -> server  {client_index u32, digest u64, txns u64,
//                                    commits u64, aborts u64, p50_us u64,
//                                    p99_us u64, channel: 13 x u64}
//   kUpdate       client -> server  {client_index u32, seq u32,
//                                    num_reads u16, num_writes u16,
//                                    reads: (object u32, cycle u64) x R,
//                                    writes: object u32 x W}
//   kUpdateReply  server -> client  {seq u32, accepted u8}
//   kMetricsReq   anyone -> node    {token u32}
//   kMetrics      node -> anyone    {token u32, node_kind u8,
//                                    truncated u8, json_len u32,
//                                    json: json_len bytes}
//
// METRICS_REQ/METRICS is the live-introspection poll (DESIGN.md §4k): any
// node (the daemon's uplink port, or a client's uplink port) answers with a
// snapshot of its metrics registry rendered as strict JSON. The envelope is
// golden-byte frozen like every other message; the JSON payload is
// self-describing and free to grow. A snapshot must fit one datagram; a
// too-large payload is truncated and flagged (`truncated` = 1), so pollers
// must check the flag before parsing.
//
// A cycle's frames are packed back-to-back into as many kCycleData
// datagrams as fit the configured datagram size; a frame never spans two
// datagrams, so a lost or truncated datagram loses whole frames — exactly
// the loss unit the reassembler (channel/frame.h) is built for.

#ifndef BCC_NET_DATAGRAM_H_
#define BCC_NET_DATAGRAM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "channel/frame.h"
#include "channel/lossy_channel.h"
#include "common/statusor.h"
#include "matrix/control_info.h"

namespace bcc {

inline constexpr uint16_t kNetMagic = 0xBCC2;

enum class MsgKind : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kCycleData = 3,
  kStatsReq = 4,
  kStats = 5,
  kUpdate = 6,
  kUpdateReply = 7,
  kMetricsReq = 8,
  kMetrics = 9,
};

/// `node_kind` values in kMetrics.
inline constexpr uint8_t kMetricsNodeServer = 0;
inline constexpr uint8_t kMetricsNodeClient = 1;

// ---- explicit little-endian primitives (exposed for tests) ----

void PutU16(std::vector<uint8_t>* out, uint16_t v);
void PutU32(std::vector<uint8_t>* out, uint32_t v);
void PutU64(std::vector<uint8_t>* out, uint64_t v);

/// Bounds-checked cursor over a received datagram's bytes.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool ReadU8(uint8_t* v);
  bool ReadU16(uint16_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadBytes(size_t n, std::span<const uint8_t>* v);
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

// ---- message structs ----

struct HelloMsg {
  uint32_t client_id = 0;
};

struct HelloAckMsg {
  uint32_t client_index = 0;
  uint32_t num_objects = 0;
  uint8_t ts_bits = 0;
  uint8_t control_mode = 0;  ///< CycleIndex::kControlColumns or kControlDelta
  uint32_t frame_bits = 0;
  uint64_t cycles = 0;
};

struct CycleDataHeader {
  uint64_t cycle = 0;
  uint16_t dgram_seq = 0;     ///< index of this datagram within the cycle
  uint16_t dgram_count = 0;   ///< datagrams this cycle was packed into
  uint16_t frame_count = 0;   ///< frames in THIS datagram
  uint16_t cycle_frames = 0;  ///< frames in the whole cycle (= frames_sent)
  uint16_t frame_bytes = 0;
};

struct StatsReqMsg {
  uint64_t final_cycle = 0;
};

struct StatsMsg {
  uint32_t client_index = 0;
  uint64_t digest = 0;  ///< state digest after the final cycle (net/state_digest.h)
  uint64_t txns = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  ChannelStats channel;
};

struct UpdateMsg {
  uint32_t client_index = 0;
  uint32_t seq = 0;  ///< client-chosen id echoed in the reply
  std::vector<ReadRecord> reads;
  std::vector<ObjectId> writes;
};

struct UpdateReplyMsg {
  uint32_t seq = 0;
  bool accepted = false;
};

struct MetricsReqMsg {
  uint32_t token = 0;  ///< poller-chosen id echoed in the reply
};

struct MetricsMsg {
  uint32_t token = 0;
  uint8_t node_kind = kMetricsNodeServer;
  bool truncated = false;
  std::string json;  ///< metrics-registry snapshot (strict JSON unless truncated)
};

// ---- encode ----

std::vector<uint8_t> EncodeHello(const HelloMsg& msg);
std::vector<uint8_t> EncodeHelloAck(const HelloAckMsg& msg);
/// Encodes one kCycleData datagram carrying `frames` (all of size
/// header.frame_bytes; header.frame_count must equal frames.size()).
std::vector<uint8_t> EncodeCycleData(const CycleDataHeader& header,
                                     std::span<const Frame> frames);
std::vector<uint8_t> EncodeStatsReq(const StatsReqMsg& msg);
std::vector<uint8_t> EncodeStats(const StatsMsg& msg);
std::vector<uint8_t> EncodeUpdate(const UpdateMsg& msg);
std::vector<uint8_t> EncodeUpdateReply(const UpdateReplyMsg& msg);
std::vector<uint8_t> EncodeMetricsReq(const MetricsReqMsg& msg);
/// Truncates msg.json to `max_json_bytes` (setting the truncated flag) so
/// the datagram never exceeds the transport's payload budget.
std::vector<uint8_t> EncodeMetrics(const MetricsMsg& msg, size_t max_json_bytes = 60000);

// ---- decode ----

/// Peeks the message kind (validating the magic); nullopt-style error when
/// the datagram is too short or mistagged.
StatusOr<MsgKind> PeekKind(std::span<const uint8_t> bytes);

StatusOr<HelloMsg> DecodeHello(std::span<const uint8_t> bytes);
StatusOr<HelloAckMsg> DecodeHelloAck(std::span<const uint8_t> bytes);
/// Decodes the header and the frames it carries. A truncated datagram
/// yields only the frames that fit completely (a partial trailing frame is
/// dropped — the reassembler treats it as loss).
struct CycleDataMsg {
  CycleDataHeader header;
  std::vector<Frame> frames;
};
StatusOr<CycleDataMsg> DecodeCycleData(std::span<const uint8_t> bytes);
StatusOr<StatsReqMsg> DecodeStatsReq(std::span<const uint8_t> bytes);
StatusOr<StatsMsg> DecodeStats(std::span<const uint8_t> bytes);
StatusOr<UpdateMsg> DecodeUpdate(std::span<const uint8_t> bytes);
StatusOr<UpdateReplyMsg> DecodeUpdateReply(std::span<const uint8_t> bytes);
StatusOr<MetricsReqMsg> DecodeMetricsReq(std::span<const uint8_t> bytes);
StatusOr<MetricsMsg> DecodeMetrics(std::span<const uint8_t> bytes);

/// Packs one cycle's frames into kCycleData datagrams of at most
/// `dgram_bytes` bytes each (at least one frame per datagram).
std::vector<std::vector<uint8_t>> PackCycleDatagrams(Cycle cycle, std::span<const Frame> frames,
                                                     size_t dgram_bytes);

}  // namespace bcc

#endif  // BCC_NET_DATAGRAM_H_
