// End-state digest for the loopback bit-identity check: an FNV-1a 64 hash
// over (a) every object's final committed version, exactly as it round-trips
// through the object-page codec, and (b) every F-Matrix entry reduced to its
// ts-bit wire residue. The residue reduction is what makes the digest
// comparable across the server (absolute cycles) and a client (cycles
// reconstructed modulo 2^ts from the wire) — the two matrices are congruent
// mod 2^ts by construction, so at loss 0 their digests are equal iff the
// client reassembled every frame of every cycle bit-exactly.

#ifndef BCC_NET_STATE_DIGEST_H_
#define BCC_NET_STATE_DIGEST_H_

#include <cstdint>
#include <span>

#include "common/cycle_stamp.h"
#include "server/store.h"

namespace bcc {

inline constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ull;
inline constexpr uint64_t kFnvPrime = 0x00000100000001B3ull;

inline uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFF;
    hash *= kFnvPrime;
  }
  return hash;
}

/// Digest of the object values (server store / client receiver cache).
inline uint64_t DigestValues(std::span<const ObjectVersion> values, uint64_t hash = kFnvOffset) {
  for (const ObjectVersion& v : values) {
    hash = FnvMix(hash, v.value);
    hash = FnvMix(hash, v.writer);
    hash = FnvMix(hash, v.cycle);
  }
  return hash;
}

/// Folds every matrix entry's ts-bit residue into the digest. Works for any
/// matrix type exposing num_objects() and At(i, j) — FMatrix on the client,
/// FMatrixSnapshot on the server.
template <typename Matrix>
uint64_t DigestMatrixResidues(const Matrix& matrix, const CycleStampCodec& codec,
                              uint64_t hash = kFnvOffset) {
  const uint32_t n = matrix.num_objects();
  for (uint32_t j = 0; j < n; ++j) {
    for (uint32_t i = 0; i < n; ++i) {
      hash = FnvMix(hash, codec.Encode(matrix.At(i, j)));
    }
  }
  return hash;
}

}  // namespace bcc

#endif  // BCC_NET_STATE_DIGEST_H_
