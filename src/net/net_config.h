// Shared configuration for the real-transport broadcast tier (DESIGN.md
// §4j): everything `bcc_serverd`, `bcc_client`, and `sim_cli --listen/
// --connect` need to agree on, parsed in exactly one place so the
// in-process and networked tiers take identical configuration.

#ifndef BCC_NET_NET_CONFIG_H_
#define BCC_NET_NET_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/statusor.h"
#include "sim/config.h"

namespace bcc {

/// A parsed "ip:port" endpoint (IPv4 dotted quad).
struct Endpoint {
  std::string ip = "127.0.0.1";
  uint16_t port = 0;

  std::string ToString() const;
};

/// Parses "ip:port" (port required; ip may be empty meaning 0.0.0.0).
StatusOr<Endpoint> ParseEndpoint(const std::string& text);

/// Transport-tier knobs shared by the daemon and the client runtime.
struct NetConfig {
  /// Server: uplink bind address; port 0 picks an ephemeral port (written to
  /// `endpoint_file` so test harnesses can discover it).
  std::string listen;
  /// Client: the server's resolved uplink endpoint.
  std::string connect;
  /// Optional UDP multicast group ("ip:port", 224.0.0.0/4). When set the
  /// server pushes cycle datagrams to the group (clients join it); when empty
  /// the server falls back to sendmmsg-batched unicast fan-out over the
  /// addresses learned from client HELLOs.
  std::string multicast;
  /// Server: file to write the resolved "ip:port" uplink endpoint to.
  std::string endpoint_file;
  /// Server: HELLO registrations to wait for before broadcasting cycle 1.
  uint32_t expected_clients = 1;
  /// Max UDP payload bytes per cycle datagram (frames are packed to fit).
  uint32_t dgram_bytes = 1400;
  /// Wall-clock pacing: cycle k may not start before (k-1)/rate seconds
  /// after cycle 1. 0 broadcasts as fast as the fan-out completes.
  double pace_cycles_per_sec = 0.0;
  /// Client: read transactions attempted per ingested cycle.
  uint32_t txns_per_cycle = 4;
  /// SO_RCVBUF sizing for the client's broadcast socket: at loss rate 0 on
  /// loopback every datagram the kernel can buffer is eventually delivered,
  /// so a buffer covering the whole run makes the tier bit-deterministic.
  uint32_t rcvbuf_bytes = 1u << 22;
  /// Client id reported in HELLO (defaults to the OS pid when 0).
  uint32_t client_id = 0;
  /// Server: ms to wait for HELLOs / final STATS before giving up.
  uint64_t hello_timeout_ms = 15000;
  uint64_t stats_timeout_ms = 10000;
  /// Hard wall-clock ceiling for either binary (watchdog; 0 = none).
  uint64_t max_wall_ms = 0;
  /// Path to write the run summary JSON to ("" = stdout only).
  std::string json_out;

  // --- live telemetry (DESIGN.md §4k) ---
  /// Master switch for the metrics registry. Off by default so the
  /// branch-on-null zero-observer-effect contract holds for plain runs; any
  /// of the telemetry outputs below implies it (see TelemetryEnabled).
  bool metrics = false;
  /// Periodic JSON-lines metrics snapshots: path and period. Both must be
  /// set for the logger to run.
  std::string metrics_out;
  uint64_t metrics_interval_ms = 0;
  /// Chrome trace_event output (Perfetto-loadable): one track per client
  /// plus the server cycle track, wall-clock microsecond timestamps.
  std::string trace_out;
  uint32_t trace_capacity = 4096;
  /// Daemon: log a structured slow_cycle warning (and count it) when a
  /// paced cycle overruns its period by this factor. 0 disables; has no
  /// effect when pace_cycles_per_sec is 0 (no deadline to miss).
  double slow_cycle_factor = 0.0;
  /// Daemon: path to write the per-uplink accept/reject decision log (plus
  /// the server commit stream) as JSON, for offline replay through the
  /// history/serializability checkers.
  std::string decisions_out;

  /// True when any telemetry sink needs the metrics registry.
  bool TelemetryEnabled() const {
    return metrics || !metrics_out.empty() || metrics_interval_ms > 0 || !trace_out.empty();
  }

  Status Validate() const;
};

/// Parses one `--flag=value` argument into the net/sim configuration pair.
/// Returns true when the flag was recognized: net flags (--listen,
/// --connect, --mcast, --pace, ...) plus the sim knobs the networked tier
/// shares, under sim_cli's names (--objects, --object-kb, --timestamp-bits,
/// --frame-bits, --cycles, --seed, --delta, --delta-refresh, --clients,
/// --update-scheme, --update-workers, --update-fraction,
/// --client-txn-length, ...). Unrecognized flags are left for the caller, so
/// sim_cli can layer this under its own flag set.
bool ParseNetFlag(const std::string& arg, NetConfig* net, SimConfig* sim);

/// One-line usage text for the shared flags (embedded in each binary's
/// --help output).
std::string NetFlagsHelp();

/// Normalizes a SimConfig for the networked tier: channel mode on, wire
/// codec, F-Matrix, read-only-compatible validation knobs. Returns an error
/// when the combination cannot run over the transport (mirrors
/// SimConfig::Validate's channel-mode requirements).
Status NormalizeNetSimConfig(SimConfig* sim);

}  // namespace bcc

#endif  // BCC_NET_NET_CONFIG_H_
