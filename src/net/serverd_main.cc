// bcc_serverd: the broadcast-disk server over a real UDP socket. Waits for
// --clients HELLO registrations, broadcasts --cycles cycles (multicast or
// unicast fan-out), validates client update transactions over the uplink,
// collects per-client STATS, and prints a run-summary JSON.
//
// Quickstart (see README "Running the networked tier"):
//   bcc_serverd --listen=127.0.0.1:0 --endpoint-file=/tmp/bcc.ep
//       --clients=4 --cycles=64 --objects=64 &
//   for i in 1 2 3 4; do
//     bcc_client --connect=$(cat /tmp/bcc.ep) --objects=64 --cycles=64 &
//   done

#include <cstdio>
#include <string>

#include "net/net_config.h"
#include "net/server_daemon.h"
#include "obs/trace_export.h"

int main(int argc, char** argv) {
  bcc::NetConfig net;
  bcc::SimConfig sim;
  sim.stop_after_cycles = 64;  // standalone default; --cycles overrides

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: bcc_serverd [flags]\n%s", bcc::NetFlagsHelp().c_str());
      return 0;
    }
    if (!bcc::ParseNetFlag(arg, &net, &sim)) {
      std::fprintf(stderr, "bcc_serverd: unknown flag %s\n%s", arg.c_str(),
                   bcc::NetFlagsHelp().c_str());
      return 2;
    }
  }

  bcc::ServerReport report;
  const bcc::Status status = bcc::RunServerDaemon(net, sim, &report);
  if (!status.ok()) {
    std::fprintf(stderr, "bcc_serverd: %s\n", status.ToString().c_str());
    return 1;
  }
  const std::string json = report.ToJson();
  std::printf("%s\n", json.c_str());
  if (!net.json_out.empty()) {
    const bcc::Status written = bcc::WriteTextFile(net.json_out, json + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "bcc_serverd: %s\n", written.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
