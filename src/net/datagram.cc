#include "net/datagram.h"

#include <cstring>

#include "common/format.h"

namespace bcc {

namespace {

constexpr size_t kMsgHeaderBytes = 3;  // magic u16 + kind u8

void PutHeader(std::vector<uint8_t>* out, MsgKind kind) {
  PutU16(out, kNetMagic);
  out->push_back(static_cast<uint8_t>(kind));
}

/// Validates magic + kind and returns a reader positioned at the body.
StatusOr<ByteReader> OpenBody(std::span<const uint8_t> bytes, MsgKind expected) {
  BCC_ASSIGN_OR_RETURN(const MsgKind kind, PeekKind(bytes));
  if (kind != expected) {
    return Status::InvalidArgument(StrFormat("expected message kind %u, got %u",
                                             static_cast<unsigned>(expected),
                                             static_cast<unsigned>(kind)));
  }
  return ByteReader(bytes.subspan(kMsgHeaderBytes));
}

Status Truncated(const char* what) {
  return Status::InvalidArgument(StrFormat("truncated %s message", what));
}

void PutChannelStats(std::vector<uint8_t>* out, const ChannelStats& ch) {
  PutU64(out, ch.frames_sent);
  PutU64(out, ch.frames_dropped);
  PutU64(out, ch.frames_corrupted);
  PutU64(out, ch.frames_truncated);
  PutU64(out, ch.frames_delivered);
  PutU64(out, ch.frames_rejected);
  PutU64(out, ch.frames_delivered_corrupt);
  PutU64(out, ch.control_losses);
  PutU64(out, ch.data_losses);
  PutU64(out, ch.stalls);
  PutU64(out, ch.resyncs);
  PutU64(out, ch.tracker_desyncs);
  PutU64(out, ch.loss_attributed_aborts);
}

bool ReadChannelStats(ByteReader* r, ChannelStats* ch) {
  return r->ReadU64(&ch->frames_sent) && r->ReadU64(&ch->frames_dropped) &&
         r->ReadU64(&ch->frames_corrupted) && r->ReadU64(&ch->frames_truncated) &&
         r->ReadU64(&ch->frames_delivered) && r->ReadU64(&ch->frames_rejected) &&
         r->ReadU64(&ch->frames_delivered_corrupt) && r->ReadU64(&ch->control_losses) &&
         r->ReadU64(&ch->data_losses) && r->ReadU64(&ch->stalls) && r->ReadU64(&ch->resyncs) &&
         r->ReadU64(&ch->tracker_desyncs) && r->ReadU64(&ch->loss_attributed_aborts);
}

}  // namespace

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) out->push_back(static_cast<uint8_t>(v >> shift));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) out->push_back(static_cast<uint8_t>(v >> shift));
}

bool ByteReader::ReadU8(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = bytes_[pos_++];
  return true;
}

bool ByteReader::ReadU16(uint16_t* v) {
  if (remaining() < 2) return false;
  *v = static_cast<uint16_t>(bytes_[pos_] | (bytes_[pos_ + 1] << 8));
  pos_ += 2;
  return true;
}

bool ByteReader::ReadU32(uint32_t* v) {
  if (remaining() < 4) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) out |= static_cast<uint32_t>(bytes_[pos_ + i]) << (8 * i);
  pos_ += 4;
  *v = out;
  return true;
}

bool ByteReader::ReadU64(uint64_t* v) {
  if (remaining() < 8) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out |= static_cast<uint64_t>(bytes_[pos_ + i]) << (8 * i);
  pos_ += 8;
  *v = out;
  return true;
}

bool ByteReader::ReadBytes(size_t n, std::span<const uint8_t>* v) {
  if (remaining() < n) return false;
  *v = bytes_.subspan(pos_, n);
  pos_ += n;
  return true;
}

StatusOr<MsgKind> PeekKind(std::span<const uint8_t> bytes) {
  if (bytes.size() < kMsgHeaderBytes) return Truncated("net");
  const uint16_t magic = static_cast<uint16_t>(bytes[0] | (bytes[1] << 8));
  if (magic != kNetMagic) {
    return Status::InvalidArgument(StrFormat("bad net magic 0x%04X", magic));
  }
  const uint8_t kind = bytes[2];
  if (kind < static_cast<uint8_t>(MsgKind::kHello) ||
      kind > static_cast<uint8_t>(MsgKind::kMetrics)) {
    return Status::InvalidArgument(StrFormat("bad message kind %u", kind));
  }
  return static_cast<MsgKind>(kind);
}

std::vector<uint8_t> EncodeHello(const HelloMsg& msg) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgKind::kHello);
  PutU32(&out, msg.client_id);
  return out;
}

StatusOr<HelloMsg> DecodeHello(std::span<const uint8_t> bytes) {
  BCC_ASSIGN_OR_RETURN(ByteReader r, OpenBody(bytes, MsgKind::kHello));
  HelloMsg msg;
  if (!r.ReadU32(&msg.client_id)) return Truncated("HELLO");
  return msg;
}

std::vector<uint8_t> EncodeHelloAck(const HelloAckMsg& msg) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgKind::kHelloAck);
  PutU32(&out, msg.client_index);
  PutU32(&out, msg.num_objects);
  out.push_back(msg.ts_bits);
  out.push_back(msg.control_mode);
  PutU32(&out, msg.frame_bits);
  PutU64(&out, msg.cycles);
  return out;
}

StatusOr<HelloAckMsg> DecodeHelloAck(std::span<const uint8_t> bytes) {
  BCC_ASSIGN_OR_RETURN(ByteReader r, OpenBody(bytes, MsgKind::kHelloAck));
  HelloAckMsg msg;
  if (!r.ReadU32(&msg.client_index) || !r.ReadU32(&msg.num_objects) || !r.ReadU8(&msg.ts_bits) ||
      !r.ReadU8(&msg.control_mode) || !r.ReadU32(&msg.frame_bits) || !r.ReadU64(&msg.cycles)) {
    return Truncated("HELLO_ACK");
  }
  return msg;
}

std::vector<uint8_t> EncodeCycleData(const CycleDataHeader& header,
                                     std::span<const Frame> frames) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgKind::kCycleData);
  PutU64(&out, header.cycle);
  PutU16(&out, header.dgram_seq);
  PutU16(&out, header.dgram_count);
  PutU16(&out, header.frame_count);
  PutU16(&out, header.cycle_frames);
  PutU16(&out, header.frame_bytes);
  for (const Frame& f : frames) out.insert(out.end(), f.bytes.begin(), f.bytes.end());
  return out;
}

StatusOr<CycleDataMsg> DecodeCycleData(std::span<const uint8_t> bytes) {
  BCC_ASSIGN_OR_RETURN(ByteReader r, OpenBody(bytes, MsgKind::kCycleData));
  CycleDataMsg msg;
  CycleDataHeader& h = msg.header;
  if (!r.ReadU64(&h.cycle) || !r.ReadU16(&h.dgram_seq) || !r.ReadU16(&h.dgram_count) ||
      !r.ReadU16(&h.frame_count) || !r.ReadU16(&h.cycle_frames) || !r.ReadU16(&h.frame_bytes)) {
    return Truncated("CYCLE_DATA");
  }
  if (h.frame_bytes == 0) return Status::InvalidArgument("CYCLE_DATA with frame_bytes == 0");
  // A truncated datagram delivers only the frames that arrived whole; the
  // partial tail frame is channel loss, not a framing error.
  msg.frames.reserve(h.frame_count);
  for (uint16_t i = 0; i < h.frame_count; ++i) {
    std::span<const uint8_t> slice;
    if (!r.ReadBytes(h.frame_bytes, &slice)) break;
    Frame f;
    f.bytes.assign(slice.begin(), slice.end());
    msg.frames.push_back(std::move(f));
  }
  return msg;
}

std::vector<uint8_t> EncodeStatsReq(const StatsReqMsg& msg) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgKind::kStatsReq);
  PutU64(&out, msg.final_cycle);
  return out;
}

StatusOr<StatsReqMsg> DecodeStatsReq(std::span<const uint8_t> bytes) {
  BCC_ASSIGN_OR_RETURN(ByteReader r, OpenBody(bytes, MsgKind::kStatsReq));
  StatsReqMsg msg;
  if (!r.ReadU64(&msg.final_cycle)) return Truncated("STATS_REQ");
  return msg;
}

std::vector<uint8_t> EncodeStats(const StatsMsg& msg) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgKind::kStats);
  PutU32(&out, msg.client_index);
  PutU64(&out, msg.digest);
  PutU64(&out, msg.txns);
  PutU64(&out, msg.commits);
  PutU64(&out, msg.aborts);
  PutU64(&out, msg.p50_us);
  PutU64(&out, msg.p99_us);
  PutChannelStats(&out, msg.channel);
  return out;
}

StatusOr<StatsMsg> DecodeStats(std::span<const uint8_t> bytes) {
  BCC_ASSIGN_OR_RETURN(ByteReader r, OpenBody(bytes, MsgKind::kStats));
  StatsMsg msg;
  if (!r.ReadU32(&msg.client_index) || !r.ReadU64(&msg.digest) || !r.ReadU64(&msg.txns) ||
      !r.ReadU64(&msg.commits) || !r.ReadU64(&msg.aborts) || !r.ReadU64(&msg.p50_us) ||
      !r.ReadU64(&msg.p99_us) || !ReadChannelStats(&r, &msg.channel)) {
    return Truncated("STATS");
  }
  return msg;
}

std::vector<uint8_t> EncodeUpdate(const UpdateMsg& msg) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgKind::kUpdate);
  PutU32(&out, msg.client_index);
  PutU32(&out, msg.seq);
  PutU16(&out, static_cast<uint16_t>(msg.reads.size()));
  PutU16(&out, static_cast<uint16_t>(msg.writes.size()));
  for (const ReadRecord& r : msg.reads) {
    PutU32(&out, r.object);
    PutU64(&out, r.cycle);
  }
  for (const ObjectId object : msg.writes) PutU32(&out, object);
  return out;
}

StatusOr<UpdateMsg> DecodeUpdate(std::span<const uint8_t> bytes) {
  BCC_ASSIGN_OR_RETURN(ByteReader r, OpenBody(bytes, MsgKind::kUpdate));
  UpdateMsg msg;
  uint16_t num_reads = 0, num_writes = 0;
  if (!r.ReadU32(&msg.client_index) || !r.ReadU32(&msg.seq) || !r.ReadU16(&num_reads) ||
      !r.ReadU16(&num_writes)) {
    return Truncated("UPDATE");
  }
  msg.reads.resize(num_reads);
  for (ReadRecord& read : msg.reads) {
    if (!r.ReadU32(&read.object) || !r.ReadU64(&read.cycle)) return Truncated("UPDATE");
  }
  msg.writes.resize(num_writes);
  for (ObjectId& object : msg.writes) {
    if (!r.ReadU32(&object)) return Truncated("UPDATE");
  }
  return msg;
}

std::vector<uint8_t> EncodeUpdateReply(const UpdateReplyMsg& msg) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgKind::kUpdateReply);
  PutU32(&out, msg.seq);
  out.push_back(msg.accepted ? 1 : 0);
  return out;
}

StatusOr<UpdateReplyMsg> DecodeUpdateReply(std::span<const uint8_t> bytes) {
  BCC_ASSIGN_OR_RETURN(ByteReader r, OpenBody(bytes, MsgKind::kUpdateReply));
  UpdateReplyMsg msg;
  uint8_t accepted = 0;
  if (!r.ReadU32(&msg.seq) || !r.ReadU8(&accepted)) return Truncated("UPDATE_REPLY");
  msg.accepted = accepted != 0;
  return msg;
}

std::vector<uint8_t> EncodeMetricsReq(const MetricsReqMsg& msg) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgKind::kMetricsReq);
  PutU32(&out, msg.token);
  return out;
}

StatusOr<MetricsReqMsg> DecodeMetricsReq(std::span<const uint8_t> bytes) {
  BCC_ASSIGN_OR_RETURN(ByteReader r, OpenBody(bytes, MsgKind::kMetricsReq));
  MetricsReqMsg msg;
  if (!r.ReadU32(&msg.token)) return Truncated("METRICS_REQ");
  return msg;
}

std::vector<uint8_t> EncodeMetrics(const MetricsMsg& msg, size_t max_json_bytes) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgKind::kMetrics);
  PutU32(&out, msg.token);
  out.push_back(msg.node_kind);
  const bool cut = msg.json.size() > max_json_bytes;
  out.push_back(msg.truncated || cut ? 1 : 0);
  const size_t len = cut ? max_json_bytes : msg.json.size();
  PutU32(&out, static_cast<uint32_t>(len));
  out.insert(out.end(), msg.json.begin(), msg.json.begin() + static_cast<ptrdiff_t>(len));
  return out;
}

StatusOr<MetricsMsg> DecodeMetrics(std::span<const uint8_t> bytes) {
  BCC_ASSIGN_OR_RETURN(ByteReader r, OpenBody(bytes, MsgKind::kMetrics));
  MetricsMsg msg;
  uint8_t truncated = 0;
  uint32_t len = 0;
  if (!r.ReadU32(&msg.token) || !r.ReadU8(&msg.node_kind) || !r.ReadU8(&truncated) ||
      !r.ReadU32(&len)) {
    return Truncated("METRICS");
  }
  msg.truncated = truncated != 0;
  std::span<const uint8_t> json;
  if (!r.ReadBytes(len, &json)) return Truncated("METRICS");
  msg.json.assign(json.begin(), json.end());
  return msg;
}

std::vector<std::vector<uint8_t>> PackCycleDatagrams(Cycle cycle, std::span<const Frame> frames,
                                                     size_t dgram_bytes) {
  constexpr size_t kCycleHeaderBytes = kMsgHeaderBytes + 8 + 5 * 2;
  std::vector<std::vector<uint8_t>> out;
  if (frames.empty()) return out;
  const size_t frame_bytes = frames[0].bytes.size();
  const size_t budget =
      dgram_bytes > kCycleHeaderBytes ? dgram_bytes - kCycleHeaderBytes : frame_bytes;
  const size_t per_dgram = budget / frame_bytes > 0 ? budget / frame_bytes : 1;
  const size_t dgram_count = (frames.size() + per_dgram - 1) / per_dgram;

  CycleDataHeader header;
  header.cycle = cycle;
  header.dgram_count = static_cast<uint16_t>(dgram_count);
  header.cycle_frames = static_cast<uint16_t>(frames.size());
  header.frame_bytes = static_cast<uint16_t>(frame_bytes);
  out.reserve(dgram_count);
  for (size_t start = 0, seq = 0; start < frames.size(); start += per_dgram, ++seq) {
    const size_t count = std::min(per_dgram, frames.size() - start);
    header.dgram_seq = static_cast<uint16_t>(seq);
    header.frame_count = static_cast<uint16_t>(count);
    out.push_back(EncodeCycleData(header, frames.subspan(start, count)));
  }
  return out;
}

}  // namespace bcc
