// Minimal epoll wrapper driving the daemon's and the client's event loops:
// register non-blocking sockets with a readable-callback, then Poll with a
// deadline-derived timeout. Level-triggered, so a callback that leaves bytes
// queued is simply invoked again on the next Poll.

#ifndef BCC_NET_EPOLL_LOOP_H_
#define BCC_NET_EPOLL_LOOP_H_

#include <functional>
#include <map>

#include "common/statusor.h"

namespace bcc {

class EpollLoop {
 public:
  EpollLoop() = default;
  ~EpollLoop();
  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  Status Init();
  /// Registers `fd` (must stay valid while registered) for readability.
  Status Add(int fd, std::function<Status()> on_readable);
  /// Waits up to `timeout_ms` (0 = just drain, -1 = block) and invokes the
  /// callback of every readable fd. Returns the number of fds dispatched;
  /// a callback error aborts the dispatch and is returned.
  StatusOr<int> Poll(int timeout_ms);

 private:
  int epoll_fd_ = -1;
  std::map<int, std::function<Status()>> callbacks_;
};

}  // namespace bcc

#endif  // BCC_NET_EPOLL_LOOP_H_
