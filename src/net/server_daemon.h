// bcc_serverd's engine: the broadcast-disk server cycle loop (snapshot ->
// frame-encode -> fan out) over a real UDP socket, plus the client uplink
// (HELLO registration, UPDATE validation through the staged-MC overlay
// path, final STATS collection). Shared by the daemon binary, the net
// bench, and sim_cli --listen.
//
// Determinism contract: with read-only clients the server's end state is a
// pure function of (seed, SimConfig) — the commit stream is replayed from
// ServerWorkload on the DES virtual-time grid (a commit at virtual time t
// belongs to cycle floor(t / cycle_bits); a tie at a cycle boundary belongs
// to the next cycle, matching the event queue's insertion order), entirely
// decoupled from wall-clock pacing and fan-out timing. The loopback test
// relies on this to compare the daemon's digest against the in-process DES
// oracle bit for bit.

#ifndef BCC_NET_SERVER_DAEMON_H_
#define BCC_NET_SERVER_DAEMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/datagram.h"
#include "net/net_config.h"
#include "obs/trace.h"

namespace bcc {

/// One server workload commit, in semantic commit (fold) order. Part of the
/// exported decision log (NetConfig::decisions_out).
struct ServerCommitRecord {
  TxnId id = kNoTxn;
  Cycle cycle = 0;    ///< broadcast cycle the commit belongs to
  uint64_t seq = 0;   ///< global commit-order sequence within the run
  std::vector<ObjectId> reads;
  std::vector<ObjectId> writes;
};

/// One per-uplink validation decision (txn id, cycle, cause), in validation
/// order. Accepted uplinks carry their commit-order `seq`; rejected ones
/// carry the structured conflict that fired.
struct UplinkDecision {
  TxnId id = kNoTxn;
  uint32_t client_index = 0;
  Cycle cycle = 0;    ///< broadcast cycle the uplink was validated in
  uint64_t seq = 0;   ///< commit-order sequence (accepted only)
  bool accepted = false;
  AbortInfo cause;    ///< meaningful when rejected
  std::vector<ReadRecord> reads;
  std::vector<ObjectId> writes;
};

/// The daemon's exported decision log: everything the offline
/// history/serializability checkers need to audit the run's update
/// sub-history (tests/net_decision_log_test.cc).
struct DecisionLog {
  std::vector<ServerCommitRecord> server_commits;
  std::vector<UplinkDecision> uplinks;

  std::string ToJson() const;
};

/// End-of-run summary the daemon prints as JSON.
struct ServerReport {
  uint64_t cycles = 0;
  uint64_t frames_per_cycle = 0;
  uint64_t server_commits = 0;
  uint64_t uplink_accepts = 0;
  uint64_t uplink_rejects = 0;
  uint64_t datagrams_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t slow_cycles = 0;     ///< paced cycles that overran the watchdog factor
  double max_slip_ms = 0;       ///< worst observed pacing slip
  uint64_t digest = 0;  ///< final-snapshot state digest (net/state_digest.h)
  double wall_sec = 0;
  double cycles_per_sec = 0;
  std::vector<StatsMsg> clients;  ///< final report of every registered client
  /// Metrics-registry snapshot (strict JSON), empty when telemetry is off.
  std::string metrics_json;
  /// Populated when NetConfig::decisions_out is set (also written there).
  DecisionLog decisions;

  std::string ToJson() const;
};

/// Runs the daemon to completion: bind + endpoint file, HELLO barrier,
/// `sim.stop_after_cycles` broadcast cycles, STATS collection. Blocking.
Status RunServerDaemon(const NetConfig& net, const SimConfig& sim, ServerReport* report);

}  // namespace bcc

#endif  // BCC_NET_SERVER_DAEMON_H_
