// bcc_serverd's engine: the broadcast-disk server cycle loop (snapshot ->
// frame-encode -> fan out) over a real UDP socket, plus the client uplink
// (HELLO registration, UPDATE validation through the staged-MC overlay
// path, final STATS collection). Shared by the daemon binary, the net
// bench, and sim_cli --listen.
//
// Determinism contract: with read-only clients the server's end state is a
// pure function of (seed, SimConfig) — the commit stream is replayed from
// ServerWorkload on the DES virtual-time grid (a commit at virtual time t
// belongs to cycle floor(t / cycle_bits); a tie at a cycle boundary belongs
// to the next cycle, matching the event queue's insertion order), entirely
// decoupled from wall-clock pacing and fan-out timing. The loopback test
// relies on this to compare the daemon's digest against the in-process DES
// oracle bit for bit.

#ifndef BCC_NET_SERVER_DAEMON_H_
#define BCC_NET_SERVER_DAEMON_H_

#include <cstdint>
#include <vector>

#include "net/datagram.h"
#include "net/net_config.h"

namespace bcc {

/// End-of-run summary the daemon prints as JSON.
struct ServerReport {
  uint64_t cycles = 0;
  uint64_t frames_per_cycle = 0;
  uint64_t server_commits = 0;
  uint64_t uplink_accepts = 0;
  uint64_t uplink_rejects = 0;
  uint64_t datagrams_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t digest = 0;  ///< final-snapshot state digest (net/state_digest.h)
  double wall_sec = 0;
  double cycles_per_sec = 0;
  std::vector<StatsMsg> clients;  ///< final report of every registered client

  std::string ToJson() const;
};

/// Runs the daemon to completion: bind + endpoint file, HELLO barrier,
/// `sim.stop_after_cycles` broadcast cycles, STATS collection. Blocking.
Status RunServerDaemon(const NetConfig& net, const SimConfig& sim, ServerReport* report);

}  // namespace bcc

#endif  // BCC_NET_SERVER_DAEMON_H_
