// bcc_client's engine: a socket-fed broadcast client. Registers with the
// daemon (HELLO), reassembles each cycle's frames from CYCLE_DATA datagrams
// through the same ChannelReceiver / DeltaMatrixTracker stack the DES
// clients use — real datagram loss and reordering exercise the exact
// stall/desync/resync paths the simulator models — runs a local read
// workload against each ingested cycle, optionally ships update
// transactions over the uplink, and reports ChannelStats + response-time
// quantiles + a state digest when the daemon asks (STATS_REQ).
//
// Workload shape: `txns_per_cycle` transaction slots progress in lockstep
// with the broadcast — each ingested cycle advances every slot by one read
// (gated on the receiver's usability checks, so a lost page or control
// column stalls the slot exactly as BroadcastSim::PerformBroadcastRead
// stalls a DES client). A transaction therefore spans client_txn_length
// cycles, which is what makes multi-cycle F-Matrix validation — and real
// conflict aborts against the server's commit stream — reachable.

#ifndef BCC_NET_CLIENT_RUNTIME_H_
#define BCC_NET_CLIENT_RUNTIME_H_

#include <cstdint>
#include <string>

#include "channel/lossy_channel.h"
#include "net/net_config.h"

namespace bcc {

/// End-of-run summary the client binary prints as JSON.
struct ClientReport {
  uint32_t client_index = 0;
  uint64_t cycles_ingested = 0;
  uint64_t txns = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t update_commits = 0;
  uint64_t update_rejects = 0;
  uint64_t digest = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  ChannelStats channel;
  /// Metrics-registry snapshot (strict JSON), empty when telemetry is off.
  std::string metrics_json;

  std::string ToJson() const;
};

/// Runs the client to completion: HELLO handshake, ingest + local workload
/// until the daemon's STATS_REQ, final STATS report. Blocking.
Status RunClientRuntime(const NetConfig& net, const SimConfig& sim, ClientReport* report);

}  // namespace bcc

#endif  // BCC_NET_CLIENT_RUNTIME_H_
