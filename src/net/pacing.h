// Wall-clock pacing for the broadcast daemon: cycle k (1-based) may not
// begin before (k-1)/rate seconds after the pacer started. With rate 0 the
// pacer never delays — the daemon broadcasts as fast as the fan-out
// completes, which is what the loopback determinism test and the bench's
// max-throughput sweep use.

#ifndef BCC_NET_PACING_H_
#define BCC_NET_PACING_H_

#include <chrono>
#include <cstdint>

namespace bcc {

class CyclePacer {
 public:
  explicit CyclePacer(double cycles_per_sec) : rate_(cycles_per_sec) {}

  /// Starts the clock; cycle 1 is due immediately.
  void Start() { start_ = std::chrono::steady_clock::now(); }

  /// Milliseconds until cycle `cycle` is due (0 when already due or unpaced).
  /// Usable as an epoll timeout so the uplink drains while the pacer waits.
  int64_t MsUntilDue(uint64_t cycle) const {
    if (rate_ <= 0.0 || cycle <= 1) return 0;
    const auto now = std::chrono::steady_clock::now();
    if (Due(cycle) <= now) return 0;
    return std::chrono::duration_cast<std::chrono::milliseconds>(Due(cycle) - now).count() + 1;
  }

  /// Milliseconds cycle `cycle` is past its due time (pacing slip; 0 when
  /// not yet due or unpaced). Sampled at the moment the cycle starts, this
  /// is the lateness the broadcast schedule has accumulated.
  double SlipMs(uint64_t cycle) const {
    if (rate_ <= 0.0) return 0;
    const auto now = std::chrono::steady_clock::now();
    const auto due = Due(cycle);
    if (due >= now) return 0;
    return std::chrono::duration<double, std::milli>(now - due).count();
  }

  /// The nominal per-cycle period (0 when unpaced).
  double PeriodMs() const { return rate_ > 0.0 ? 1000.0 / rate_ : 0; }

 private:
  std::chrono::steady_clock::time_point Due(uint64_t cycle) const {
    return start_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(double(cycle - 1) / rate_));
  }

  double rate_;
  std::chrono::steady_clock::time_point start_{};
};

/// Monotonic stopwatch for watchdogs and throughput reporting.
class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}

  uint64_t ElapsedMs() const {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                     std::chrono::steady_clock::now() - start_)
                                     .count());
  }
  uint64_t ElapsedUs() const {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                     std::chrono::steady_clock::now() - start_)
                                     .count());
  }
  double ElapsedSec() const { return static_cast<double>(ElapsedMs()) / 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bcc

#endif  // BCC_NET_PACING_H_
