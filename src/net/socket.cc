#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "common/format.h"

namespace bcc {

namespace {

Status Errno(const char* what) {
  return Status::Internal(StrFormat("%s: %s", what, strerror(errno)));
}

/// Blocks (poll) until the socket is writable again after EAGAIN.
Status WaitWritable(int fd) {
  pollfd p = {};
  p.fd = fd;
  p.events = POLLOUT;
  if (poll(&p, 1, /*timeout_ms=*/1000) < 0) return Errno("poll(POLLOUT)");
  return Status::OK();
}

}  // namespace

Endpoint SockAddr::ToEndpoint() const {
  char buf[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &sin.sin_addr, buf, sizeof(buf));
  Endpoint ep;
  ep.ip = buf;
  ep.port = ntohs(sin.sin_port);
  return ep;
}

StatusOr<SockAddr> ResolveEndpoint(const Endpoint& endpoint) {
  SockAddr addr;
  addr.sin.sin_family = AF_INET;
  addr.sin.sin_port = htons(endpoint.port);
  const std::string& ip = endpoint.ip.empty() ? std::string("0.0.0.0") : endpoint.ip;
  if (inet_pton(AF_INET, ip.c_str(), &addr.sin.sin_addr) != 1) {
    return Status::InvalidArgument(StrFormat("bad IPv4 address '%s'", ip.c_str()));
  }
  return addr;
}

UdpSocket::~UdpSocket() { Close(); }

UdpSocket::UdpSocket(UdpSocket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void UdpSocket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status UdpSocket::Open() {
  Close();
  fd_ = socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0) return Errno("socket");
  return Status::OK();
}

Status UdpSocket::Bind(const Endpoint& endpoint) {
  BCC_ASSIGN_OR_RETURN(const SockAddr addr, ResolveEndpoint(endpoint));
  const int one = 1;
  if (setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  if (bind(fd_, reinterpret_cast<const sockaddr*>(&addr.sin), sizeof(addr.sin)) < 0) {
    return Errno("bind");
  }
  return Status::OK();
}

StatusOr<Endpoint> UdpSocket::local_endpoint() const {
  SockAddr addr;
  socklen_t len = sizeof(addr.sin);
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&addr.sin), &len) < 0) {
    return Errno("getsockname");
  }
  return addr.ToEndpoint();
}

Status UdpSocket::SetRecvBufferBytes(uint32_t bytes) {
  const int value = static_cast<int>(bytes);
  if (setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &value, sizeof(value)) < 0) {
    return Errno("setsockopt(SO_RCVBUF)");
  }
  return Status::OK();
}

Status UdpSocket::JoinMulticast(const Endpoint& group) {
  Endpoint any;
  any.ip = "0.0.0.0";
  any.port = group.port;
  BCC_RETURN_IF_ERROR(Bind(any));
  ip_mreq mreq = {};
  if (inet_pton(AF_INET, group.ip.c_str(), &mreq.imr_multiaddr) != 1) {
    return Status::InvalidArgument(StrFormat("bad multicast group '%s'", group.ip.c_str()));
  }
  mreq.imr_interface.s_addr = htonl(INADDR_ANY);
  if (setsockopt(fd_, IPPROTO_IP, IP_ADD_MEMBERSHIP, &mreq, sizeof(mreq)) < 0) {
    return Errno("setsockopt(IP_ADD_MEMBERSHIP)");
  }
  return Status::OK();
}

Status UdpSocket::SetMulticastSendOptions() {
  const uint8_t ttl = 1;
  if (setsockopt(fd_, IPPROTO_IP, IP_MULTICAST_TTL, &ttl, sizeof(ttl)) < 0) {
    return Errno("setsockopt(IP_MULTICAST_TTL)");
  }
  const uint8_t loop = 1;
  if (setsockopt(fd_, IPPROTO_IP, IP_MULTICAST_LOOP, &loop, sizeof(loop)) < 0) {
    return Errno("setsockopt(IP_MULTICAST_LOOP)");
  }
  return Status::OK();
}

StatusOr<size_t> UdpSocket::SendTo(std::span<const uint8_t> bytes, const SockAddr& to) {
  for (;;) {
    const ssize_t n = sendto(fd_, bytes.data(), bytes.size(), 0,
                             reinterpret_cast<const sockaddr*>(&to.sin), sizeof(to.sin));
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      BCC_RETURN_IF_ERROR(WaitWritable(fd_));
      continue;
    }
    return Errno("sendto");
  }
}

StatusOr<size_t> UdpSocket::SendBatch(std::span<const OutDatagram> datagrams) {
  if (datagrams.empty()) return size_t{0};
  std::vector<mmsghdr> headers(datagrams.size());
  std::vector<iovec> iovs(datagrams.size());
  for (size_t i = 0; i < datagrams.size(); ++i) {
    iovs[i].iov_base = const_cast<uint8_t*>(datagrams[i].bytes.data());
    iovs[i].iov_len = datagrams[i].bytes.size();
    msghdr& msg = headers[i].msg_hdr;
    msg = {};
    msg.msg_name = const_cast<sockaddr_in*>(&datagrams[i].to.sin);
    msg.msg_namelen = sizeof(datagrams[i].to.sin);
    msg.msg_iov = &iovs[i];
    msg.msg_iovlen = 1;
  }
  size_t sent = 0;
  while (sent < headers.size()) {
    const int n = sendmmsg(fd_, headers.data() + sent,
                           static_cast<unsigned>(headers.size() - sent), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        BCC_RETURN_IF_ERROR(WaitWritable(fd_));
        continue;
      }
      return Errno("sendmmsg");
    }
    sent += static_cast<size_t>(n);
  }
  return sent;
}

StatusOr<std::vector<InDatagram>> UdpSocket::RecvBatch(size_t max_datagrams, size_t max_bytes) {
  std::vector<InDatagram> out;
  std::vector<uint8_t> storage(max_datagrams * max_bytes);
  std::vector<mmsghdr> headers(max_datagrams);
  std::vector<iovec> iovs(max_datagrams);
  std::vector<SockAddr> froms(max_datagrams);
  for (size_t i = 0; i < max_datagrams; ++i) {
    iovs[i].iov_base = storage.data() + i * max_bytes;
    iovs[i].iov_len = max_bytes;
    msghdr& msg = headers[i].msg_hdr;
    msg = {};
    msg.msg_name = &froms[i].sin;
    msg.msg_namelen = sizeof(froms[i].sin);
    msg.msg_iov = &iovs[i];
    msg.msg_iovlen = 1;
  }
  const int n = recvmmsg(fd_, headers.data(), static_cast<unsigned>(max_datagrams), 0, nullptr);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return out;
    return Errno("recvmmsg");
  }
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    InDatagram d;
    const uint8_t* base = storage.data() + static_cast<size_t>(i) * max_bytes;
    d.bytes.assign(base, base + headers[i].msg_len);
    d.from = froms[i];
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace bcc
