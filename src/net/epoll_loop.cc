#include "net/epoll_loop.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <unistd.h>

#include "common/format.h"

namespace bcc {

EpollLoop::~EpollLoop() {
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status EpollLoop::Init() {
  epoll_fd_ = epoll_create1(0);
  if (epoll_fd_ < 0) {
    return Status::Internal(StrFormat("epoll_create1: %s", strerror(errno)));
  }
  return Status::OK();
}

Status EpollLoop::Add(int fd, std::function<Status()> on_readable) {
  epoll_event ev = {};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return Status::Internal(StrFormat("epoll_ctl(ADD): %s", strerror(errno)));
  }
  callbacks_[fd] = std::move(on_readable);
  return Status::OK();
}

StatusOr<int> EpollLoop::Poll(int timeout_ms) {
  epoll_event events[16];
  int n;
  do {
    n = epoll_wait(epoll_fd_, events, 16, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return Status::Internal(StrFormat("epoll_wait: %s", strerror(errno)));
  for (int i = 0; i < n; ++i) {
    const auto it = callbacks_.find(events[i].data.fd);
    if (it != callbacks_.end()) BCC_RETURN_IF_ERROR(it->second());
  }
  return n;
}

}  // namespace bcc
