// bcc_client: a broadcast-disk client over a real UDP socket. Registers
// with bcc_serverd (--connect), ingests cycle datagrams through the
// ChannelReceiver / DeltaMatrixTracker stack, runs --txns-per-cycle
// transaction slots against each ingested cycle, ships update transactions
// over the uplink, reports STATS when asked, and prints a run-summary JSON.

#include <cstdio>
#include <string>

#include "net/client_runtime.h"
#include "net/net_config.h"
#include "obs/trace_export.h"

int main(int argc, char** argv) {
  bcc::NetConfig net;
  bcc::SimConfig sim;
  sim.stop_after_cycles = 64;  // standalone default; --cycles overrides

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: bcc_client --connect=ip:port [flags]\n%s", bcc::NetFlagsHelp().c_str());
      return 0;
    }
    if (!bcc::ParseNetFlag(arg, &net, &sim)) {
      std::fprintf(stderr, "bcc_client: unknown flag %s\n%s", arg.c_str(),
                   bcc::NetFlagsHelp().c_str());
      return 2;
    }
  }

  bcc::ClientReport report;
  const bcc::Status status = bcc::RunClientRuntime(net, sim, &report);
  if (!status.ok()) {
    std::fprintf(stderr, "bcc_client: %s\n", status.ToString().c_str());
    return 1;
  }
  const std::string json = report.ToJson();
  std::printf("%s\n", json.c_str());
  if (!net.json_out.empty()) {
    const bcc::Status written = bcc::WriteTextFile(net.json_out, json + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "bcc_client: %s\n", written.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
