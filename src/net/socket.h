// Thin RAII wrapper over a non-blocking UDP socket: bind (with ephemeral
// port discovery), multicast join/TTL, SO_RCVBUF sizing, and batched
// send/receive via sendmmsg/recvmmsg. All methods report failures as Status
// — the transport tier treats socket errors as fatal configuration problems,
// not as channel loss (loss is the kernel silently dropping datagrams, which
// the frame layer already models).

#ifndef BCC_NET_SOCKET_H_
#define BCC_NET_SOCKET_H_

#include <netinet/in.h>

#include <cstdint>
#include <span>
#include <vector>

#include "common/statusor.h"
#include "net/net_config.h"

namespace bcc {

/// A resolved IPv4 socket address.
struct SockAddr {
  sockaddr_in sin = {};

  bool operator==(const SockAddr& other) const {
    return sin.sin_addr.s_addr == other.sin.sin_addr.s_addr && sin.sin_port == other.sin.sin_port;
  }
  Endpoint ToEndpoint() const;
};

/// Resolves an Endpoint (dotted-quad ip + port) into a SockAddr.
StatusOr<SockAddr> ResolveEndpoint(const Endpoint& endpoint);

/// One datagram to send: payload bytes plus its destination.
struct OutDatagram {
  std::span<const uint8_t> bytes;
  SockAddr to;
};

/// One received datagram: payload bytes plus the sender's address.
struct InDatagram {
  std::vector<uint8_t> bytes;
  SockAddr from;
};

class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;
  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;

  /// Creates a non-blocking IPv4 UDP socket.
  Status Open();
  /// Binds to `endpoint` (port 0 = kernel-assigned ephemeral port; use
  /// local_endpoint() to discover it).
  Status Bind(const Endpoint& endpoint);
  /// The bound address as the kernel reports it.
  StatusOr<Endpoint> local_endpoint() const;

  Status SetRecvBufferBytes(uint32_t bytes);
  /// Joins `group` on the loopback-safe default interface and binds the
  /// socket to the group's port (receiver side).
  Status JoinMulticast(const Endpoint& group);
  /// Sender-side multicast setup: TTL 1, loopback enabled (the loopback
  /// test runs all processes on one host).
  Status SetMulticastSendOptions();

  /// Sends one datagram (best effort; EAGAIN retries internally once the
  /// kernel buffer drains). Returns the number of bytes sent.
  StatusOr<size_t> SendTo(std::span<const uint8_t> bytes, const SockAddr& to);
  /// Batched fan-out via sendmmsg: sends every datagram, looping over
  /// partial progress and EAGAIN. Returns the number of datagrams sent.
  StatusOr<size_t> SendBatch(std::span<const OutDatagram> datagrams);
  /// Batched non-blocking receive via recvmmsg: drains up to `max_datagrams`
  /// currently-queued datagrams (each up to `max_bytes`). Returns an empty
  /// vector when the queue is empty — never blocks.
  StatusOr<std::vector<InDatagram>> RecvBatch(size_t max_datagrams, size_t max_bytes);

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

}  // namespace bcc

#endif  // BCC_NET_SOCKET_H_
