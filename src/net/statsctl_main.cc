// bcc_statsctl: live-introspection poller for the networked tier
// (DESIGN.md §4k). Sends METRICS_REQ to a running bcc_serverd or bcc_client
// uplink port and prints the METRICS reply's JSON payload to stdout —
// usable mid-run, any number of times, without perturbing the run beyond
// answering the datagram.
//
//   bcc_statsctl --connect=$(cat /tmp/bcc.ep)
//   bcc_statsctl --connect=127.0.0.1:40001 --timeout-ms=2000 | python3 -m json.tool
//
// Exit codes: 0 printed a snapshot; 1 transport/config error; 3 the reply
// was truncated (payload printed anyway, but it is not valid JSON); 4 no
// reply within the timeout.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/format.h"
#include "net/datagram.h"
#include "net/net_config.h"
#include "net/pacing.h"
#include "net/socket.h"

namespace {

constexpr const char kUsage[] =
    "usage: bcc_statsctl --connect=ip:port [--timeout-ms=N] [--token=N]\n";

struct Options {
  std::string connect;
  uint64_t timeout_ms = 5000;
  uint32_t token = 0x57A75;  // arbitrary default; echoed by the node
};

bcc::Status Poll(const Options& opt, bcc::MetricsMsg* reply) {
  bcc::UdpSocket sock;
  BCC_RETURN_IF_ERROR(sock.Open());
  BCC_RETURN_IF_ERROR(sock.Bind(bcc::Endpoint{"0.0.0.0", 0}));
  BCC_ASSIGN_OR_RETURN(const bcc::Endpoint target, bcc::ParseEndpoint(opt.connect));
  BCC_ASSIGN_OR_RETURN(const bcc::SockAddr addr, bcc::ResolveEndpoint(target));

  bcc::MetricsReqMsg req;
  req.token = opt.token;
  const std::vector<uint8_t> wire = bcc::EncodeMetricsReq(req);

  // Request/reply over lossy UDP: re-send every 200 ms until the matching
  // reply arrives or the timeout expires. Both sides are idempotent.
  const bcc::WallClock clock;
  uint64_t last_send_ms = 0;
  bool first = true;
  while (clock.ElapsedMs() <= opt.timeout_ms) {
    if (first || clock.ElapsedMs() - last_send_ms > 200) {
      BCC_RETURN_IF_ERROR(sock.SendTo(wire, addr).status());
      last_send_ms = clock.ElapsedMs();
      first = false;
    }
    BCC_ASSIGN_OR_RETURN(const std::vector<bcc::InDatagram> batch, sock.RecvBatch(8, 65536));
    for (const bcc::InDatagram& d : batch) {
      const bcc::StatusOr<bcc::MsgKind> kind = bcc::PeekKind(d.bytes);
      if (!kind.ok() || *kind != bcc::MsgKind::kMetrics) continue;
      const bcc::StatusOr<bcc::MetricsMsg> decoded = bcc::DecodeMetrics(d.bytes);
      if (!decoded.ok() || decoded->token != opt.token) continue;
      *reply = *decoded;
      return bcc::Status::OK();
    }
    if (batch.empty()) usleep(10 * 1000);  // the socket is non-blocking
  }
  return bcc::Status::Internal(
      bcc::StrFormat("no METRICS reply from %s within %llu ms", opt.connect.c_str(),
                     static_cast<unsigned long long>(opt.timeout_ms)));
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    }
    if (arg.rfind("--connect=", 0) == 0) {
      opt.connect = arg.substr(sizeof("--connect=") - 1);
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      opt.timeout_ms = std::strtoull(arg.c_str() + sizeof("--timeout-ms=") - 1, nullptr, 10);
    } else if (arg.rfind("--token=", 0) == 0) {
      opt.token = static_cast<uint32_t>(
          std::strtoul(arg.c_str() + sizeof("--token=") - 1, nullptr, 10));
    } else {
      std::fprintf(stderr, "bcc_statsctl: unknown flag %s\n%s", arg.c_str(), kUsage);
      return 1;
    }
  }
  if (opt.connect.empty()) {
    std::fprintf(stderr, "bcc_statsctl: --connect is required\n%s", kUsage);
    return 1;
  }

  bcc::MetricsMsg reply;
  const bcc::Status status = Poll(opt, &reply);
  if (!status.ok()) {
    std::fprintf(stderr, "bcc_statsctl: %s\n", status.ToString().c_str());
    return 4;
  }
  std::printf("%s\n", reply.json.c_str());
  if (reply.truncated) {
    std::fprintf(stderr, "bcc_statsctl: reply truncated — payload is not complete JSON\n");
    return 3;
  }
  return 0;
}
