#include "net/net_config.h"

#include <cstdlib>

#include "common/format.h"

namespace bcc {

namespace {

/// `--name=value` matcher shared by every flag kind.
bool FlagValue(const std::string& arg, const char* name, std::string* value) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseU64(const std::string& arg, const char* name, uint64_t* out) {
  std::string v;
  if (!FlagValue(arg, name, &v)) return false;
  *out = std::strtoull(v.c_str(), nullptr, 10);
  return true;
}

bool ParseU32(const std::string& arg, const char* name, uint32_t* out) {
  uint64_t v = 0;
  if (!ParseU64(arg, name, &v)) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

bool ParseDouble(const std::string& arg, const char* name, double* out) {
  std::string v;
  if (!FlagValue(arg, name, &v)) return false;
  *out = std::strtod(v.c_str(), nullptr);
  return true;
}

bool ParseString(const std::string& arg, const char* name, std::string* out) {
  return FlagValue(arg, name, out);
}

}  // namespace

std::string Endpoint::ToString() const { return StrFormat("%s:%u", ip.c_str(), port); }

StatusOr<Endpoint> ParseEndpoint(const std::string& text) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(StrFormat("endpoint '%s' is not ip:port", text.c_str()));
  }
  Endpoint ep;
  if (colon > 0) ep.ip = text.substr(0, colon);
  char* end = nullptr;
  const std::string port_text = text.substr(colon + 1);
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (port_text.empty() || (end != nullptr && *end != '\0') || port > 0xFFFF) {
    return Status::InvalidArgument(StrFormat("endpoint '%s' has a bad port", text.c_str()));
  }
  ep.port = static_cast<uint16_t>(port);
  return ep;
}

Status NetConfig::Validate() const {
  if (dgram_bytes < 128 || dgram_bytes > 65000) {
    return Status::InvalidArgument("dgram_bytes must be in [128, 65000]");
  }
  if (pace_cycles_per_sec < 0.0) {
    return Status::InvalidArgument("pace_cycles_per_sec must be >= 0");
  }
  if (expected_clients == 0) {
    return Status::InvalidArgument("expected_clients must be >= 1");
  }
  if (slow_cycle_factor < 0.0) {
    return Status::InvalidArgument("slow_cycle_factor must be >= 0");
  }
  if (!metrics_out.empty() && metrics_interval_ms == 0) {
    return Status::InvalidArgument("--metrics-out requires --metrics-interval-ms > 0");
  }
  if (!listen.empty()) BCC_RETURN_IF_ERROR(ParseEndpoint(listen).status());
  if (!connect.empty()) BCC_RETURN_IF_ERROR(ParseEndpoint(connect).status());
  if (!multicast.empty()) BCC_RETURN_IF_ERROR(ParseEndpoint(multicast).status());
  return Status::OK();
}

bool ParseNetFlag(const std::string& arg, NetConfig* net, SimConfig* sim) {
  uint32_t u32 = 0;
  double d = 0;
  std::string s;
  // Transport knobs.
  if (ParseString(arg, "--listen", &net->listen)) return true;
  if (ParseString(arg, "--connect", &net->connect)) return true;
  if (ParseString(arg, "--mcast", &net->multicast)) return true;
  if (ParseString(arg, "--endpoint-file", &net->endpoint_file)) return true;
  if (ParseU32(arg, "--dgram-bytes", &net->dgram_bytes)) return true;
  if (ParseDouble(arg, "--pace", &net->pace_cycles_per_sec)) return true;
  if (ParseU32(arg, "--txns-per-cycle", &net->txns_per_cycle)) return true;
  if (ParseU32(arg, "--rcvbuf", &net->rcvbuf_bytes)) return true;
  if (ParseU32(arg, "--client-id", &net->client_id)) return true;
  if (ParseU64(arg, "--hello-timeout-ms", &net->hello_timeout_ms)) return true;
  if (ParseU64(arg, "--stats-timeout-ms", &net->stats_timeout_ms)) return true;
  if (ParseU64(arg, "--max-wall-ms", &net->max_wall_ms)) return true;
  if (ParseString(arg, "--json-out", &net->json_out)) return true;
  // Telemetry knobs.
  if (arg == "--metrics") {
    net->metrics = true;
    return true;
  }
  if (ParseString(arg, "--metrics-out", &net->metrics_out)) return true;
  if (ParseU64(arg, "--metrics-interval-ms", &net->metrics_interval_ms)) return true;
  if (ParseString(arg, "--trace-out", &net->trace_out)) return true;
  if (ParseU32(arg, "--trace-capacity", &net->trace_capacity)) return true;
  if (ParseDouble(arg, "--slow-cycle-factor", &net->slow_cycle_factor)) return true;
  if (ParseString(arg, "--decisions-out", &net->decisions_out)) return true;
  // Sim knobs the two tiers must agree on, under sim_cli's flag names so the
  // in-process and networked front ends share one vocabulary.
  if (ParseU32(arg, "--objects", &sim->num_objects)) return true;
  if (ParseU64(arg, "--frame-bits", &sim->channel_frame_bits)) return true;
  if (ParseU64(arg, "--cycles", &sim->stop_after_cycles)) return true;
  if (ParseU64(arg, "--seed", &sim->seed)) return true;
  if (ParseU64(arg, "--delta-refresh", &sim->delta_refresh_period)) return true;
  if (ParseU64(arg, "--server-interval", &sim->server_txn_interval)) return true;
  if (ParseU32(arg, "--server-txn-length", &sim->server_txn_length)) return true;
  if (ParseU32(arg, "--client-txn-length", &sim->client_txn_length)) return true;
  if (ParseU32(arg, "--update-workers", &sim->update_workers)) return true;
  if (ParseDouble(arg, "--update-fraction", &sim->client_update_fraction)) return true;
  if (arg == "--delta") {
    sim->delta_broadcast = true;
    return true;
  }
  if (ParseDouble(arg, "--object-kb", &d)) {
    sim->object_size_bits = static_cast<uint64_t>(d * 8 * 1024);
    return true;
  }
  if (ParseU32(arg, "--timestamp-bits", &u32)) {
    sim->timestamp_bits = u32;
    return true;
  }
  if (ParseU32(arg, "--clients", &u32)) {
    net->expected_clients = u32;
    sim->num_clients = u32;
    return true;
  }
  if (ParseString(arg, "--update-scheme", &s)) {
    const StatusOr<UpdateScheme> scheme = ParseUpdateScheme(s);
    if (!scheme.ok()) return false;  // caller reports the full bad argument
    sim->update_scheme = *scheme;
    return true;
  }
  return false;
}

std::string NetFlagsHelp() {
  return "  transport: --listen=ip:port --connect=ip:port --mcast=ip:port\n"
         "             --endpoint-file=PATH --clients=N --dgram-bytes=N\n"
         "             --pace=CYCLES_PER_SEC --txns-per-cycle=N --rcvbuf=BYTES\n"
         "             --client-id=N --hello-timeout-ms=N --stats-timeout-ms=N\n"
         "             --max-wall-ms=N --json-out=PATH\n"
         "  telemetry: --metrics --metrics-out=PATH --metrics-interval-ms=N\n"
         "             --trace-out=PATH --trace-capacity=N\n"
         "             --slow-cycle-factor=F --decisions-out=PATH\n"
         "  shared sim: --objects=N --object-kb=F --frame-bits=N --cycles=N\n"
         "             --seed=N --timestamp-bits=N --delta --delta-refresh=N\n"
         "             --server-interval=N --server-txn-length=N\n"
         "             --client-txn-length=N --update-fraction=F\n"
         "             --update-scheme=seq|2pl|occ|mvcc --update-workers=N\n";
}

Status NormalizeNetSimConfig(SimConfig* sim) {
  sim->algorithm = Algorithm::kFMatrix;
  sim->channel_broadcast = true;
  sim->use_wire_codec = true;
  sim->enable_cache = false;
  sim->num_groups = 0;
  if (sim->stop_after_cycles == 0) {
    return Status::InvalidArgument("the networked tier requires --cycles > 0");
  }
  // The DES validator forbids update clients in channel mode because its
  // in-process clients cannot reach the uplink; the networked tier has a real
  // uplink, so validate against a read-only copy and keep the fraction as the
  // client runtime's update mix.
  SimConfig check = *sim;
  check.client_update_fraction = 0.0;
  return check.Validate();
}

}  // namespace bcc
