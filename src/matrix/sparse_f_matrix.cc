#include "matrix/sparse_f_matrix.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <unordered_map>

#include "matrix/kernels.h"

namespace bcc {

namespace {

/// The all-zero column every fresh matrix starts from; shared so an n-column
/// construction allocates one payload, not n.
const std::shared_ptr<const SparseColumnData>& EmptyColumn() {
  static const std::shared_ptr<const SparseColumnData> empty =
      std::make_shared<const SparseColumnData>();
  return empty;
}

bool ColumnIsEmpty(const SparseColumnData& col) {
  return col.floor == 0 && col.entries.empty();
}

}  // namespace

Cycle SparseColumnData::At(ObjectId row) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), row,
      [](const Entry& e, ObjectId r) { return e.row < r; });
  if (it != entries.end() && it->row == row) return it->value;
  return floor;
}

SparseFMatrix::SparseFMatrix(uint32_t num_objects)
    : n_(num_objects), cols_(num_objects, EmptyColumn()) {}

void SparseFMatrix::MarkTouched(ObjectId j) {
  if (!track_dirty_) return;
  if (touched_mask_[j]) return;
  touched_mask_[j] = 1;
  touched_cols_.push_back(j);
}

void SparseFMatrix::Account(ObjectId j, const SparseColumnData& next) {
  const SparseColumnData& cur = *cols_[j];
  nnz_ += next.entries.size();
  nnz_ -= cur.entries.size();
  if (ColumnIsEmpty(cur) != ColumnIsEmpty(next)) {
    if (ColumnIsEmpty(next)) {
      --nonempty_cols_;
    } else {
      ++nonempty_cols_;
    }
  }
}

void SparseFMatrix::AssignColumn(ObjectId j, std::shared_ptr<const SparseColumnData> data) {
  assert(data != nullptr);
  Account(j, *data);
  cols_[j] = std::move(data);
  MarkTouched(j);
}

void SparseFMatrix::MaterializeColumn(ObjectId j, std::vector<Cycle>& out) const {
  const SparseColumnData& col = *cols_[j];
  out.assign(n_, col.floor);
  for (const SparseColumnData::Entry& e : col.entries) out[e.row] = e.value;
}

void SparseFMatrix::ApplyCommit(std::span<const ObjectId> read_set,
                                std::span<const ObjectId> write_set, Cycle commit_cycle) {
  if (write_set.empty()) return;

  // Dependency vector dep(i) = max_{k in RS} C(i, k), in sparse form: the
  // floor is the max of the read columns' floors, and an explicit entry
  // survives only where the row-wise max of explicit values exceeds that
  // floor (server-path columns keep entries >= their own floor, so the max
  // over floors and explicit row maxima is exactly max_k C(i, k)).
  Cycle dep_floor = 0;
  for (ObjectId k : read_set) dep_floor = std::max(dep_floor, cols_[k]->floor);

  merge_scratch_.clear();
  if (read_set.size() == 1) {
    const SparseColumnData& col = *cols_[read_set.front()];
    for (const SparseColumnData::Entry& e : col.entries) {
      if (e.value > dep_floor) merge_scratch_.push_back(e);
    }
  } else if (!read_set.empty()) {
    // k-way merge by row over the read columns (k = |RS| is workload-sized,
    // so the linear cursor scan per output row is cheap).
    struct Cursor {
      const SparseColumnData::Entry* it;
      const SparseColumnData::Entry* end;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(read_set.size());
    for (ObjectId k : read_set) {
      const auto& entries = cols_[k]->entries;
      if (!entries.empty()) cursors.push_back({entries.data(), entries.data() + entries.size()});
    }
    while (!cursors.empty()) {
      ObjectId row = cursors.front().it->row;
      for (size_t c = 1; c < cursors.size(); ++c) row = std::min(row, cursors[c].it->row);
      Cycle value = 0;
      for (size_t c = 0; c < cursors.size();) {
        if (cursors[c].it->row == row) {
          value = std::max(value, cursors[c].it->value);
          if (++cursors[c].it == cursors[c].end) {
            cursors.erase(cursors.begin() + static_cast<ptrdiff_t>(c));
            continue;
          }
        }
        ++c;
      }
      if (value > dep_floor) merge_scratch_.push_back({row, value});
    }
  }

  // One payload for every write-set column: dep with WS rows at commit_cycle.
  ws_scratch_.assign(write_set.begin(), write_set.end());
  std::sort(ws_scratch_.begin(), ws_scratch_.end());
  auto next = std::make_shared<SparseColumnData>();
  next->floor = dep_floor;
  next->entries.reserve(merge_scratch_.size() + ws_scratch_.size());
  size_t d = 0;
  for (ObjectId w : ws_scratch_) {
    while (d < merge_scratch_.size() && merge_scratch_[d].row < w) {
      next->entries.push_back(merge_scratch_[d++]);
    }
    if (d < merge_scratch_.size() && merge_scratch_[d].row == w) ++d;  // WS overrides dep
    if (commit_cycle != dep_floor) next->entries.push_back({w, commit_cycle});
  }
  while (d < merge_scratch_.size()) next->entries.push_back(merge_scratch_[d++]);

  std::shared_ptr<const SparseColumnData> shared = std::move(next);
  // Original write-set order, so dirty tracking matches FMatrix first-touch
  // order exactly.
  for (ObjectId j : write_set) AssignColumn(j, shared);
}

void SparseFMatrix::ApplyCommitBatch(std::span<const CommitSets> commits, Cycle commit_cycle) {
  for (const CommitSets& c : commits) ApplyCommit(c.read_set, c.write_set, commit_cycle);
}

void SparseFMatrix::SetInColumn(ObjectId j, ObjectId i, Cycle c) {
  const SparseColumnData& cur = *cols_[j];
  if (cur.At(i) == c) {
    MarkTouched(j);  // a rewrite with an equal value still counts as touched
    return;
  }
  auto next = std::make_shared<SparseColumnData>();
  next->floor = cur.floor;
  next->entries.reserve(cur.entries.size() + 1);
  bool placed = false;
  for (const SparseColumnData::Entry& e : cur.entries) {
    if (e.row == i) continue;
    if (!placed && e.row > i) {
      if (c != cur.floor) next->entries.push_back({i, c});
      placed = true;
    }
    next->entries.push_back(e);
  }
  if (!placed && c != cur.floor) next->entries.push_back({i, c});
  AssignColumn(j, std::move(next));
}

void SparseFMatrix::Set(ObjectId i, ObjectId j, Cycle c) { SetInColumn(j, i, c); }

void SparseFMatrix::EnableDirtyTracking() {
  track_dirty_ = true;
  touched_mask_.assign(n_, 0);
  touched_cols_.clear();
}

std::vector<ObjectId> SparseFMatrix::TakeTouchedColumns() {
  std::vector<ObjectId> out;
  DrainTouchedColumns(out);
  return out;
}

void SparseFMatrix::DrainTouchedColumns(std::vector<ObjectId>& out) {
  out.clear();
  std::swap(out, touched_cols_);
  for (ObjectId j : out) touched_mask_[j] = 0;
}

size_t SparseFMatrix::ReadConditionScan(std::span<const ReadRecord> reads, ObjectId j) const {
  const SparseColumnData& col = *cols_[j];
  for (size_t k = 0; k < reads.size(); ++k) {
    if (col.At(reads[k].object) >= reads[k].cycle) return k;
  }
  return kReadConditionPass;
}

bool SparseFMatrix::ReadCondition(std::span<const ReadRecord> reads, ObjectId j) const {
  return ReadConditionScan(reads, j) == kReadConditionPass;
}

uint64_t SparseFMatrix::CompactModulo(const CycleStampCodec& codec, Cycle current) {
  uint64_t dropped = 0;
  // Shared payloads must stay shared after compaction (they are the memory
  // win), so rewritten payloads are memoized by source pointer.
  std::unordered_map<const SparseColumnData*, std::shared_ptr<const SparseColumnData>> rewritten;
  for (ObjectId j = 0; j < n_; ++j) {
    const SparseColumnData* src = cols_[j].get();
    auto it = rewritten.find(src);
    if (it == rewritten.end()) {
      const Cycle floor = codec.Decode(codec.Encode(src->floor), current);
      bool changed = floor != src->floor;
      auto next = std::make_shared<SparseColumnData>();
      next->floor = floor;
      next->entries.reserve(src->entries.size());
      for (const SparseColumnData::Entry& e : src->entries) {
        const Cycle value = codec.Decode(codec.Encode(e.value), current);
        changed = changed || value != e.value;
        if (value == floor) continue;  // congruent to the floor: now implicit
        next->entries.push_back({e.row, value});
      }
      it = rewritten
               .emplace(src, changed ? std::shared_ptr<const SparseColumnData>(std::move(next))
                                     : cols_[j])
               .first;
    }
    if (it->second.get() != src) {
      dropped += src->entries.size() - it->second->entries.size();
      Account(j, *it->second);
      cols_[j] = it->second;
      MarkTouched(j);
    }
  }
  return dropped;
}

FMatrix SparseFMatrix::ToDense() const {
  FMatrix dense(n_);
  for (ObjectId j = 0; j < n_; ++j) {
    const SparseColumnData& col = *cols_[j];
    if (col.floor != 0) {
      for (ObjectId i = 0; i < n_; ++i) dense.Set(i, j, col.floor);
    }
    for (const SparseColumnData::Entry& e : col.entries) dense.Set(e.row, j, e.value);
  }
  return dense;
}

SparseFMatrix SparseFMatrix::FromDense(const FMatrix& dense) {
  const uint32_t n = dense.num_objects();
  SparseFMatrix sparse(n);
  std::vector<Cycle> sorted;
  for (ObjectId j = 0; j < n; ++j) {
    const std::span<const Cycle> col = dense.Column(j);
    // Most-frequent value as the floor, so adopting a windowed-decoded
    // matrix (channel-mode refresh, where even "untouched" entries decode to
    // a recent nonzero anchor) stays sparse.
    sorted.assign(col.begin(), col.end());
    std::sort(sorted.begin(), sorted.end());
    Cycle floor = 0;
    size_t best = 0;
    for (size_t a = 0; a < sorted.size();) {
      size_t b = a;
      while (b < sorted.size() && sorted[b] == sorted[a]) ++b;
      if (b - a > best) {
        best = b - a;
        floor = sorted[a];
      }
      a = b;
    }
    auto data = std::make_shared<SparseColumnData>();
    data->floor = floor;
    for (ObjectId i = 0; i < n; ++i) {
      if (col[i] != floor) data->entries.push_back({i, col[i]});
    }
    sparse.AssignColumn(j, std::move(data));
  }
  return sparse;
}

bool operator==(const SparseFMatrix& a, const SparseFMatrix& b) {
  if (a.n_ != b.n_) return false;
  for (ObjectId j = 0; j < a.n_; ++j) {
    const SparseColumnData& ca = *a.cols_[j];
    const SparseColumnData& cb = *b.cols_[j];
    if (&ca == &cb) continue;
    // Merge walk over both entry lists; rows implicit in both compare floors.
    size_t ia = 0, ib = 0;
    bool both_implicit =
        ca.entries.size() + cb.entries.size() < a.n_;  // some row implicit in both
    while (ia < ca.entries.size() || ib < cb.entries.size()) {
      const bool take_a = ib == cb.entries.size() ||
                          (ia < ca.entries.size() && ca.entries[ia].row <= cb.entries[ib].row);
      const bool take_b = ia == ca.entries.size() ||
                          (ib < cb.entries.size() && cb.entries[ib].row <= ca.entries[ia].row);
      if (take_a && take_b) {
        if (ca.entries[ia].value != cb.entries[ib].value) return false;
        ++ia, ++ib;
      } else if (take_a) {
        if (ca.entries[ia].value != cb.floor) return false;
        ++ia;
      } else {
        if (cb.entries[ib].value != ca.floor) return false;
        ++ib;
      }
    }
    if (both_implicit && ca.floor != cb.floor) return false;
  }
  return true;
}

bool operator==(const SparseFMatrix& s, const FMatrix& d) {
  if (s.num_objects() != d.num_objects()) return false;
  const uint32_t n = s.num_objects();
  for (ObjectId j = 0; j < n; ++j) {
    const std::span<const Cycle> col = d.Column(j);
    const SparseColumnData& sc = *s.ColumnData(j);
    size_t e = 0;
    for (ObjectId i = 0; i < n; ++i) {
      Cycle v = sc.floor;
      if (e < sc.entries.size() && sc.entries[e].row == i) v = sc.entries[e++].value;
      if (v != col[i]) return false;
    }
  }
  return true;
}

uint64_t SparseMatrixControlBits(uint64_t nnz, uint32_t nonempty_columns, uint32_t num_objects,
                                 unsigned ts_bits) {
  const unsigned index_bits =
      num_objects > 1 ? static_cast<unsigned>(std::bit_width(num_objects - 1)) : 0u;
  return 32 + static_cast<uint64_t>(nonempty_columns) * (index_bits + ts_bits + 32) +
         nnz * (index_bits + ts_bits);
}

uint64_t SparseMatrixControlBits(const SparseFMatrix& matrix, unsigned ts_bits) {
  return SparseMatrixControlBits(matrix.nnz(), matrix.nonempty_columns(),
                                 matrix.num_objects(), ts_bits);
}

}  // namespace bcc
