// The reduced control vector shared by R-Matrix and Datacycle
// (Section 3.2.2, case (b): a single database-wide partition).
//
// MC(i) is the latest broadcast cycle in which a committed transaction wrote
// ob_i — equal to max_j C(i, j) of the full matrix (the maximizing column is
// j = i). One timestamp per object is broadcast next to the object.

#ifndef BCC_MATRIX_MC_VECTOR_H_
#define BCC_MATRIX_MC_VECTOR_H_

#include <span>
#include <vector>

#include "common/cycle_stamp.h"
#include "history/object_id.h"
#include "matrix/control_info.h"

namespace bcc {

/// Per-object last-committed-write cycle vector.
class McVector {
 public:
  explicit McVector(uint32_t num_objects) : mc_(num_objects, 0) {}

  uint32_t num_objects() const { return static_cast<uint32_t>(mc_.size()); }
  Cycle At(ObjectId i) const { return mc_[i]; }
  void Set(ObjectId i, Cycle c) { mc_[i] = c; }
  std::span<const Cycle> entries() const { return mc_; }

  /// Registers a committed transaction: every written object's entry moves
  /// to the commit cycle. (Reads do not change the vector.)
  void ApplyCommit(std::span<const ObjectId> write_set, Cycle commit_cycle) {
    for (ObjectId w : write_set) mc_[w] = commit_cycle;
  }

  friend bool operator==(const McVector& a, const McVector& b) { return a.mc_ == b.mc_; }

 private:
  std::vector<Cycle> mc_;
};

/// Datacycle read condition (ensures serializability):
///   for all (ob_i, cycle) in R_t : MC(i) < cycle
/// i.e. nothing the transaction has read was overwritten afterwards.
bool DatacycleReadCondition(const McVector& mc, std::span<const ReadRecord> reads);

/// R-Matrix read condition (Section 3.2.2), for reading ob_j by a
/// transaction whose first read happened in cycle `first_read_cycle`:
///   (for all (ob_i, cycle) in R_t : MC(i) < cycle)
///   OR  MC(j) < first_read_cycle
/// Accept if nothing read so far changed, or the object now being read has
/// not changed since the transaction began — Theorem 9: this accepts only
/// schedules APPROX accepts.
bool RMatrixReadCondition(const McVector& mc, std::span<const ReadRecord> reads, ObjectId j,
                          Cycle first_read_cycle);

}  // namespace bcc

#endif  // BCC_MATRIX_MC_VECTOR_H_
