#include "matrix/wire.h"

#include <algorithm>
#include <bit>

#include "common/bitstream.h"
#include "matrix/kernels.h"

namespace bcc {

BroadcastGeometry ComputeGeometry(Algorithm algorithm, uint32_t num_objects,
                                  uint64_t object_bits, unsigned ts_bits,
                                  uint32_t num_groups) {
  BroadcastGeometry g;
  g.object_bits = object_bits;
  switch (algorithm) {
    case Algorithm::kFMatrix:
      g.control_bits =
          static_cast<uint64_t>(num_groups == 0 ? num_objects : num_groups) * ts_bits;
      break;
    case Algorithm::kRMatrix:
    case Algorithm::kDatacycle:
      g.control_bits = ts_bits;
      break;
    case Algorithm::kFMatrixNo:
      g.control_bits = 0;
      break;
  }
  g.slot_bits = g.object_bits + g.control_bits;
  g.cycle_bits = static_cast<uint64_t>(num_objects) * g.slot_bits;
  g.control_fraction =
      g.slot_bits == 0 ? 0.0
                       : static_cast<double>(g.control_bits) / static_cast<double>(g.slot_bits);
  return g;
}

std::vector<uint32_t> EncodeStamps(std::span<const Cycle> stamps, const CycleStampCodec& codec) {
  std::vector<uint32_t> out;
  out.reserve(stamps.size());
  for (Cycle c : stamps) out.push_back(codec.Encode(c));
  return out;
}

std::vector<Cycle> DecodeStamps(std::span<const uint32_t> residues, const CycleStampCodec& codec,
                                Cycle current) {
  std::vector<Cycle> out;
  out.reserve(residues.size());
  for (uint32_t r : residues) out.push_back(codec.Decode(r, current));
  return out;
}

std::vector<uint8_t> PackStamps(std::span<const Cycle> stamps, const CycleStampCodec& codec) {
  BitWriter writer;
  for (Cycle c : stamps) writer.Write(codec.Encode(c), codec.bits());
  return writer.bytes();
}

StatusOr<std::vector<Cycle>> UnpackStamps(std::span<const uint8_t> bytes, size_t count,
                                          const CycleStampCodec& codec, Cycle current) {
  // PackStamps emits exactly count * bits data bits zero-padded to a whole
  // byte; anything else is framing corruption.
  const size_t expected_bytes = (count * codec.bits() + 7) / 8;
  if (bytes.size() > expected_bytes) {
    return Status::InvalidArgument("UnpackStamps: buffer has trailing bytes");
  }
  BitReader reader(bytes);
  std::vector<Cycle> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint32_t residue = 0;
    BCC_RETURN_IF_ERROR(reader.Read(codec.bits(), &residue));
    out.push_back(codec.Decode(residue, current));
  }
  if (const size_t pad = reader.bits_remaining(); pad > 0) {
    uint32_t padding = 0;
    BCC_RETURN_IF_ERROR(reader.Read(static_cast<unsigned>(pad), &padding));
    if (padding != 0) {
      return Status::InvalidArgument("UnpackStamps: nonzero padding bits");
    }
  }
  return out;
}

uint64_t FullMatrixControlBits(uint32_t num_objects, unsigned ts_bits) {
  return static_cast<uint64_t>(num_objects) * num_objects * ts_bits;
}

std::vector<DeltaCodec::Entry> DeltaCodec::Diff(const FMatrix& prev, const FMatrix& cur,
                                                const CycleStampCodec& codec) {
  std::vector<Entry> out;
  const uint32_t n = cur.num_objects();
  for (ObjectId j = 0; j < n; ++j) {
    for (ObjectId i = 0; i < n; ++i) {
      if (prev.At(i, j) != cur.At(i, j)) {
        out.push_back({i, j, codec.Encode(cur.At(i, j))});
      }
    }
  }
  return out;
}

namespace {

// `cur` is any column-provider (FMatrix or FMatrixSnapshot); emission stays
// in ascending (col, row) order, identical to Diff's.
template <typename CurMatrix>
std::vector<DeltaCodec::Entry> DiffColumnsImpl(const FMatrix& prev, const CurMatrix& cur,
                                               std::span<const ObjectId> touched_columns,
                                               const CycleStampCodec& codec) {
  std::vector<ObjectId> cols(touched_columns.begin(), touched_columns.end());
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());

  std::vector<DeltaCodec::Entry> out;
  const uint32_t n = cur.num_objects();
  std::vector<ObjectId> rows(n);
  for (ObjectId j : cols) {
    const Cycle* a = prev.Column(j).data();
    const Cycle* b = cur.Column(j).data();
    const uint32_t changed = KernelColumnDiffIndices(a, b, n, rows.data());
    for (uint32_t k = 0; k < changed; ++k) {
      out.push_back({rows[k], j, codec.Encode(b[rows[k]])});
    }
  }
  return out;
}

}  // namespace

std::vector<DeltaCodec::Entry> DeltaCodec::DiffColumns(const FMatrix& prev, const FMatrix& cur,
                                                       std::span<const ObjectId> touched_columns,
                                                       const CycleStampCodec& codec) {
  return DiffColumnsImpl(prev, cur, touched_columns, codec);
}

std::vector<DeltaCodec::Entry> DeltaCodec::DiffColumns(const FMatrix& prev,
                                                       const FMatrixSnapshot& cur,
                                                       std::span<const ObjectId> touched_columns,
                                                       const CycleStampCodec& codec) {
  return DiffColumnsImpl(prev, cur, touched_columns, codec);
}

std::vector<DeltaCodec::Entry> DeltaCodec::DiffColumns(const SparseFMatrix& prev,
                                                       const SparseFMatrix& cur,
                                                       std::span<const ObjectId> touched_columns,
                                                       const CycleStampCodec& codec) {
  std::vector<ObjectId> cols(touched_columns.begin(), touched_columns.end());
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());

  std::vector<Entry> out;
  const uint32_t n = cur.num_objects();
  std::vector<Cycle> prev_dense, cur_dense;
  for (ObjectId j : cols) {
    const SparseColumnData& a = *prev.ColumnData(j);
    const SparseColumnData& b = *cur.ColumnData(j);
    if (&a == &b) continue;  // shared payload: provably unchanged
    if (a.floor != b.floor) {
      // Differing floors make every doubly-implicit row differ too; the
      // straightforward dense walk is the clear O(n) way to emit them all.
      // (Server-path matrices keep floor 0 throughout, so this branch only
      // runs for client-reconstructed bases.)
      prev.MaterializeColumn(j, prev_dense);
      cur.MaterializeColumn(j, cur_dense);
      for (ObjectId i = 0; i < n; ++i) {
        if (prev_dense[i] != cur_dense[i]) out.push_back({i, j, codec.Encode(cur_dense[i])});
      }
      continue;
    }
    // Equal floors: only rows explicit in at least one side can differ.
    size_t ia = 0, ib = 0;
    while (ia < a.entries.size() || ib < b.entries.size()) {
      const bool take_a = ib == b.entries.size() ||
                          (ia < a.entries.size() && a.entries[ia].row <= b.entries[ib].row);
      const bool take_b = ia == a.entries.size() ||
                          (ib < b.entries.size() && b.entries[ib].row <= a.entries[ia].row);
      if (take_a && take_b) {
        if (a.entries[ia].value != b.entries[ib].value) {
          out.push_back({a.entries[ia].row, j, codec.Encode(b.entries[ib].value)});
        }
        ++ia, ++ib;
      } else if (take_a) {
        out.push_back({a.entries[ia].row, j, codec.Encode(b.floor)});
        ++ia;
      } else {
        out.push_back({b.entries[ib].row, j, codec.Encode(b.entries[ib].value)});
        ++ib;
      }
    }
  }
  return out;
}

void DeltaCodec::Apply(FMatrix* base, std::span<const Entry> entries,
                       const CycleStampCodec& codec, Cycle current) {
  for (const Entry& e : entries) {
    base->Set(e.row, e.col, codec.Decode(e.residue, current));
  }
}

void DeltaCodec::Apply(SparseFMatrix* base, std::span<const Entry> entries,
                       const CycleStampCodec& codec, Cycle current) {
  // Entries arrive grouped by column in ascending row order (Diff emission
  // and Pack/Unpack preserve it); rebuild each column's payload once instead
  // of one copy-on-write rebuild per entry. Row order within a run is not
  // assumed — a defensive stable sort keeps last-wins semantics identical to
  // the dense Apply even on adversarial input.
  std::vector<SparseColumnData::Entry> updates;
  for (size_t k = 0; k < entries.size();) {
    const ObjectId j = entries[k].col;
    updates.clear();
    for (; k < entries.size() && entries[k].col == j; ++k) {
      updates.push_back({entries[k].row, codec.Decode(entries[k].residue, current)});
    }
    std::stable_sort(updates.begin(), updates.end(),
                     [](const SparseColumnData::Entry& a, const SparseColumnData::Entry& b) {
                       return a.row < b.row;
                     });
    const SparseColumnData& cur = *base->ColumnData(j);
    auto next = std::make_shared<SparseColumnData>();
    next->floor = cur.floor;
    next->entries.reserve(cur.entries.size() + updates.size());
    size_t ic = 0;
    for (size_t u = 0; u < updates.size(); ++u) {
      if (u + 1 < updates.size() && updates[u + 1].row == updates[u].row) continue;  // last wins
      while (ic < cur.entries.size() && cur.entries[ic].row < updates[u].row) {
        next->entries.push_back(cur.entries[ic++]);
      }
      if (ic < cur.entries.size() && cur.entries[ic].row == updates[u].row) ++ic;
      if (updates[u].value != next->floor) next->entries.push_back(updates[u]);
    }
    while (ic < cur.entries.size()) next->entries.push_back(cur.entries[ic++]);
    base->AssignColumn(j, std::move(next));
  }
}

uint64_t DeltaCodec::EncodedBits(size_t num_entries, uint32_t num_objects, unsigned ts_bits) {
  // ceil(log2 n) bits address n indices; n == 1 needs zero (the only index is
  // implicit), and exact powers of two need log2(n), not log2(n) + 1.
  const unsigned index_bits =
      num_objects > 1 ? static_cast<unsigned>(std::bit_width(num_objects - 1)) : 0u;
  return 32 + static_cast<uint64_t>(num_entries) * (2ull * index_bits + ts_bits);
}

namespace {

unsigned IndexBits(uint32_t num_objects) {
  return num_objects > 1 ? static_cast<unsigned>(std::bit_width(num_objects - 1)) : 0u;
}

}  // namespace

std::vector<uint8_t> DeltaCodec::Pack(std::span<const Entry> entries, uint32_t num_objects,
                                      const CycleStampCodec& codec) {
  const unsigned index_bits = IndexBits(num_objects);
  BitWriter writer;
  writer.Write(static_cast<uint32_t>(entries.size()), 32);
  for (const Entry& e : entries) {
    // n == 1: the only index is implicit, and BitWriter rejects zero-width
    // writes, so indices are simply omitted.
    if (index_bits > 0) {
      writer.Write(e.row, index_bits);
      writer.Write(e.col, index_bits);
    }
    writer.Write(e.residue, codec.bits());
  }
  return writer.bytes();
}

StatusOr<std::vector<DeltaCodec::Entry>> DeltaCodec::Unpack(std::span<const uint8_t> bytes,
                                                            uint32_t num_objects,
                                                            const CycleStampCodec& codec) {
  const unsigned index_bits = IndexBits(num_objects);
  BitReader reader(bytes);
  uint32_t count = 0;
  BCC_RETURN_IF_ERROR(reader.Read(32, &count));
  const uint64_t max_entries = static_cast<uint64_t>(num_objects) * num_objects;
  if (count > max_entries) {
    return Status::InvalidArgument("DeltaCodec::Unpack: entry count exceeds n^2");
  }
  const size_t expected_bytes = (EncodedBits(count, num_objects, codec.bits()) + 7) / 8;
  if (bytes.size() > expected_bytes) {
    return Status::InvalidArgument("DeltaCodec::Unpack: buffer has trailing bytes");
  }
  std::vector<Entry> out;
  out.reserve(count);
  for (uint32_t k = 0; k < count; ++k) {
    Entry e{0, 0, 0};
    if (index_bits > 0) {
      uint32_t v = 0;
      BCC_RETURN_IF_ERROR(reader.Read(index_bits, &v));
      if (v >= num_objects) return Status::InvalidArgument("DeltaCodec::Unpack: row out of range");
      e.row = v;
      BCC_RETURN_IF_ERROR(reader.Read(index_bits, &v));
      if (v >= num_objects) {
        return Status::InvalidArgument("DeltaCodec::Unpack: column out of range");
      }
      e.col = v;
    }
    BCC_RETURN_IF_ERROR(reader.Read(codec.bits(), &e.residue));
    out.push_back(e);
  }
  if (const size_t pad = reader.bits_remaining(); pad > 0) {
    uint32_t padding = 0;
    BCC_RETURN_IF_ERROR(reader.Read(static_cast<unsigned>(pad), &padding));
    if (padding != 0) {
      return Status::InvalidArgument("DeltaCodec::Unpack: nonzero padding bits");
    }
  }
  return out;
}

namespace {

template <typename AnyMatrix>
std::vector<uint8_t> PackMatrixImpl(const AnyMatrix& matrix, const CycleStampCodec& codec) {
  BitWriter writer;
  const uint32_t n = matrix.num_objects();
  for (ObjectId j = 0; j < n; ++j) {
    for (const Cycle c : matrix.Column(j)) writer.Write(codec.Encode(c), codec.bits());
  }
  return writer.bytes();
}

}  // namespace

std::vector<uint8_t> PackMatrix(const FMatrix& matrix, const CycleStampCodec& codec) {
  return PackMatrixImpl(matrix, codec);
}

std::vector<uint8_t> PackMatrix(const FMatrixSnapshot& matrix, const CycleStampCodec& codec) {
  return PackMatrixImpl(matrix, codec);
}

std::vector<uint8_t> PackMatrix(const SparseFMatrix& matrix, const CycleStampCodec& codec) {
  // Byte-identical to the dense packing: the on-air format does not change
  // with the server's in-memory representation.
  BitWriter writer;
  const uint32_t n = matrix.num_objects();
  std::vector<Cycle> column;
  for (ObjectId j = 0; j < n; ++j) {
    matrix.MaterializeColumn(j, column);
    for (const Cycle c : column) writer.Write(codec.Encode(c), codec.bits());
  }
  return writer.bytes();
}

StatusOr<FMatrix> UnpackMatrix(std::span<const uint8_t> bytes, uint32_t num_objects,
                               const CycleStampCodec& codec, Cycle current) {
  const size_t expected_bytes =
      (FullMatrixControlBits(num_objects, codec.bits()) + 7) / 8;
  if (bytes.size() > expected_bytes) {
    return Status::InvalidArgument("UnpackMatrix: buffer has trailing bytes");
  }
  BitReader reader(bytes);
  FMatrix matrix(num_objects);
  for (ObjectId j = 0; j < num_objects; ++j) {
    for (ObjectId i = 0; i < num_objects; ++i) {
      uint32_t residue = 0;
      BCC_RETURN_IF_ERROR(reader.Read(codec.bits(), &residue));
      matrix.Set(i, j, codec.Decode(residue, current));
    }
  }
  if (const size_t pad = reader.bits_remaining(); pad > 0) {
    uint32_t padding = 0;
    BCC_RETURN_IF_ERROR(reader.Read(static_cast<unsigned>(pad), &padding));
    if (padding != 0) {
      return Status::InvalidArgument("UnpackMatrix: nonzero padding bits");
    }
  }
  return matrix;
}

}  // namespace bcc
