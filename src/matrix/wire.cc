#include "matrix/wire.h"

#include <bit>

#include "common/bitstream.h"

namespace bcc {

BroadcastGeometry ComputeGeometry(Algorithm algorithm, uint32_t num_objects,
                                  uint64_t object_bits, unsigned ts_bits,
                                  uint32_t num_groups) {
  BroadcastGeometry g;
  g.object_bits = object_bits;
  switch (algorithm) {
    case Algorithm::kFMatrix:
      g.control_bits =
          static_cast<uint64_t>(num_groups == 0 ? num_objects : num_groups) * ts_bits;
      break;
    case Algorithm::kRMatrix:
    case Algorithm::kDatacycle:
      g.control_bits = ts_bits;
      break;
    case Algorithm::kFMatrixNo:
      g.control_bits = 0;
      break;
  }
  g.slot_bits = g.object_bits + g.control_bits;
  g.cycle_bits = static_cast<uint64_t>(num_objects) * g.slot_bits;
  g.control_fraction =
      g.slot_bits == 0 ? 0.0
                       : static_cast<double>(g.control_bits) / static_cast<double>(g.slot_bits);
  return g;
}

std::vector<uint32_t> EncodeStamps(std::span<const Cycle> stamps, const CycleStampCodec& codec) {
  std::vector<uint32_t> out;
  out.reserve(stamps.size());
  for (Cycle c : stamps) out.push_back(codec.Encode(c));
  return out;
}

std::vector<Cycle> DecodeStamps(std::span<const uint32_t> residues, const CycleStampCodec& codec,
                                Cycle current) {
  std::vector<Cycle> out;
  out.reserve(residues.size());
  for (uint32_t r : residues) out.push_back(codec.Decode(r, current));
  return out;
}

std::vector<uint8_t> PackStamps(std::span<const Cycle> stamps, const CycleStampCodec& codec) {
  BitWriter writer;
  for (Cycle c : stamps) writer.Write(codec.Encode(c), codec.bits());
  return writer.bytes();
}

StatusOr<std::vector<Cycle>> UnpackStamps(std::span<const uint8_t> bytes, size_t count,
                                          const CycleStampCodec& codec, Cycle current) {
  BitReader reader(bytes);
  std::vector<Cycle> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint32_t residue = 0;
    BCC_RETURN_IF_ERROR(reader.Read(codec.bits(), &residue));
    out.push_back(codec.Decode(residue, current));
  }
  return out;
}

std::vector<DeltaCodec::Entry> DeltaCodec::Diff(const FMatrix& prev, const FMatrix& cur,
                                                const CycleStampCodec& codec) {
  std::vector<Entry> out;
  const uint32_t n = cur.num_objects();
  for (ObjectId j = 0; j < n; ++j) {
    for (ObjectId i = 0; i < n; ++i) {
      if (prev.At(i, j) != cur.At(i, j)) {
        out.push_back({i, j, codec.Encode(cur.At(i, j))});
      }
    }
  }
  return out;
}

void DeltaCodec::Apply(FMatrix* base, std::span<const Entry> entries,
                       const CycleStampCodec& codec, Cycle current) {
  for (const Entry& e : entries) {
    base->Set(e.row, e.col, codec.Decode(e.residue, current));
  }
}

uint64_t DeltaCodec::EncodedBits(size_t num_entries, uint32_t num_objects, unsigned ts_bits) {
  const unsigned index_bits = std::bit_width(num_objects > 1 ? num_objects - 1 : 1u);
  return 32 + static_cast<uint64_t>(num_entries) * (2ull * index_bits + ts_bits);
}

}  // namespace bcc
