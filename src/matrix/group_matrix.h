// Group matrix: the n x g spectrum between F-Matrix and the reduced vector
// (Section 3.2.2). Objects are partitioned into g groups; the matrix stores
//   MC(i, s) = max_{j in s} C(i, j)
// so only g columns are broadcast per object row. g = n (singleton groups)
// is exactly F-Matrix; g = 1 collapses to the Datacycle/R-Matrix vector.

#ifndef BCC_MATRIX_GROUP_MATRIX_H_
#define BCC_MATRIX_GROUP_MATRIX_H_

#include <span>
#include <vector>

#include "common/statusor.h"
#include "history/object_id.h"
#include "matrix/control_info.h"
#include "matrix/f_matrix.h"

namespace bcc {

/// A partition of the object space [0, n) into g groups.
class ObjectPartition {
 public:
  /// Round-robin-free contiguous partition: object i belongs to group
  /// i * g / n (balanced block partition).
  static ObjectPartition Blocks(uint32_t num_objects, uint32_t num_groups);

  /// Explicit mapping object -> group; groups must be dense [0, g).
  static StatusOr<ObjectPartition> FromMapping(std::vector<uint32_t> group_of);

  uint32_t num_objects() const { return static_cast<uint32_t>(group_of_.size()); }
  uint32_t num_groups() const { return num_groups_; }
  uint32_t GroupOf(ObjectId ob) const { return group_of_[ob]; }

 private:
  ObjectPartition(std::vector<uint32_t> group_of, uint32_t num_groups)
      : group_of_(std::move(group_of)), num_groups_(num_groups) {}

  std::vector<uint32_t> group_of_;
  uint32_t num_groups_;
};

/// The n x g control matrix, derived per definition from the server's full
/// matrix at each cycle snapshot (the reduction saves *broadcast* bits; the
/// server still maintains C exactly).
class GroupMatrix {
 public:
  GroupMatrix(const ObjectPartition& partition, const FMatrix& full);

  uint32_t num_objects() const { return n_; }
  uint32_t num_groups() const { return g_; }
  const ObjectPartition& partition() const { return partition_; }

  /// MC(i, s).
  Cycle At(ObjectId i, uint32_t group) const { return data_[static_cast<size_t>(group) * n_ + i]; }

  /// Group-matrix read condition for reading ob_j:
  ///   for all (ob_i, cycle) in R_t : MC(i, group(j)) < cycle
  bool ReadCondition(std::span<const ReadRecord> reads, ObjectId j) const;

 private:
  uint32_t n_, g_;
  ObjectPartition partition_;
  std::vector<Cycle> data_;  // column-major by group
};

}  // namespace bcc

#endif  // BCC_MATRIX_GROUP_MATRIX_H_
