#include "matrix/worst_case.h"

#include <algorithm>

#include "common/format.h"

namespace bcc {

StatusOr<RealizedMatrix> RealizeQuadrant(const QuadrantSpec& spec) {
  const uint32_t n = spec.num_objects;
  if (n < 3 || n % 2 == 0) {
    return Status::InvalidArgument("num_objects must be odd and >= 3");
  }
  const uint32_t h = spec.half();
  if (spec.entries.size() != static_cast<size_t>(h) * h) {
    return Status::InvalidArgument("entries must be half x half");
  }
  for (uint32_t j = 0; j < h; ++j) {
    for (uint32_t i = 0; i < h; ++i) {
      if (spec.At(i, j) > spec.At(j, j)) {
        return Status::InvalidArgument(
            StrFormat("spec(%u,%u) exceeds column diagonal spec(%u,%u)", i, j, j, j));
      }
      if (spec.At(i, j) > spec.At(i, i)) {
        return Status::InvalidArgument(
            StrFormat("spec(%u,%u) exceeds row diagonal spec(%u,%u)", i, j, i, i));
      }
    }
  }

  // One planned transaction per nonzero entry.
  struct Planned {
    Cycle cycle;
    uint32_t column;     // j
    uint32_t row;        // i; == column for the diagonal writer
    bool diagonal;
  };
  std::vector<Planned> plan;
  for (uint32_t j = 0; j < h; ++j) {
    for (uint32_t i = 0; i < h; ++i) {
      if (i == j || spec.At(i, j) == 0) continue;
      plan.push_back({spec.At(i, j), j, i, false});
    }
    if (spec.At(j, j) != 0) plan.push_back({spec.At(j, j), j, j, true});
  }
  // Serial execution order: by commit cycle; within a cycle, diagonal
  // writers last so the final writer of ob_j sees every contributor on its
  // twin chain.
  std::stable_sort(plan.begin(), plan.end(), [](const Planned& a, const Planned& b) {
    if (a.cycle != b.cycle) return a.cycle < b.cycle;
    return a.diagonal < b.diagonal;
  });

  RealizedMatrix out;
  TxnId next = 1;
  for (const Planned& p : plan) {
    const TxnId t = next++;
    const ObjectId twin = n - 1 - p.column;
    out.history.AppendRead(t, twin);
    if (p.diagonal) {
      out.history.AppendWrite(t, p.column);  // the final committed ob_j
    } else {
      out.history.AppendWrite(t, p.row);
      out.history.AppendWrite(t, twin);  // extend the dependency chain
    }
    out.history.AppendCommit(t);
    out.commit_cycles[t] = p.cycle;
  }
  return out;
}

QuadrantSpec RandomQuadrantSpec(uint32_t num_objects, Cycle max_cycle, Rng* rng) {
  QuadrantSpec spec;
  spec.num_objects = num_objects;
  const uint32_t h = spec.half();
  spec.entries.assign(static_cast<size_t>(h) * h, 0);
  // Diagonals first; each off-diagonal entry then ranges over
  // [0, min(diag_i, diag_j)].
  std::vector<Cycle> diag(h);
  for (uint32_t j = 0; j < h; ++j) {
    diag[j] = rng->NextBounded(max_cycle + 1);
    spec.entries[static_cast<size_t>(j) * h + j] = diag[j];
  }
  for (uint32_t j = 0; j < h; ++j) {
    for (uint32_t i = 0; i < h; ++i) {
      if (i == j) continue;
      const Cycle bound = std::min(diag[i], diag[j]);
      spec.entries[static_cast<size_t>(i) * h + j] =
          bound == 0 ? 0 : rng->NextBounded(bound + 1);
    }
  }
  return spec;
}

}  // namespace bcc
