// Inner-loop kernels for the control-matrix hot paths.
//
// Every per-cycle cost in the server and the clients bottoms out in one of
// four loop shapes over a contiguous column of n Cycle stamps: a max-merge
// of one column into another, a masked select-fill (Theorem 2's column
// rewrite), a gather of indices where two columns differ (delta diffing),
// and the read-condition scan. They are collected here, written against raw
// base pointers over the flat column-major storage so the compiler can
// auto-vectorize them (no aliasing through this->, no per-iteration index
// arithmetic, trivially countable trip counts), and shared by FMatrix,
// McVector, GroupMatrix and DeltaCodec::DiffColumns. kernels.cc is compiled
// with vectorization-friendly flags (see src/matrix/CMakeLists.txt).

#ifndef BCC_MATRIX_KERNELS_H_
#define BCC_MATRIX_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/cycle_stamp.h"
#include "history/object_id.h"
#include "matrix/control_info.h"

namespace bcc {

/// dst[i] = value for i in [0, n).
void KernelColumnFill(Cycle* dst, Cycle value, uint32_t n);

/// dst[i] = src[i] for i in [0, n). dst and src must not overlap.
void KernelColumnCopy(Cycle* dst, const Cycle* src, uint32_t n);

/// dst[i] = max(dst[i], src[i]) for i in [0, n). dst and src must not
/// overlap (merging a column into itself is a no-op the caller can skip).
void KernelColumnMaxMerge(Cycle* dst, const Cycle* src, uint32_t n);

/// The Theorem 2 column rewrite: dst[i] = mask[i] ? stamp : dep[i].
/// mask entries are 0/1; dst may alias dep (the select reads before it
/// writes element-wise) but not mask.
void KernelColumnSelectFill(Cycle* dst, const uint8_t* mask, const Cycle* dep, Cycle stamp,
                            uint32_t n);

/// Appends to `out` (capacity >= n) every index i in [0, n) with
/// a[i] != b[i], ascending; returns how many were written.
uint32_t KernelColumnDiffIndices(const Cycle* a, const Cycle* b, uint32_t n, ObjectId* out);

/// Returned by KernelReadConditionScan when every read passes.
inline constexpr size_t kReadConditionPass = static_cast<size_t>(-1);

/// The read-condition scan against one control column with the column base
/// pointer hoisted out of the loop: returns the index of the FIRST read
/// record with column[reads[k].object] >= reads[k].cycle (the early exit —
/// the caller needs that record for abort attribution), or
/// kReadConditionPass when the condition holds for all `count` reads.
size_t KernelReadConditionScan(const Cycle* column, const ReadRecord* reads, size_t count);

}  // namespace bcc

#endif  // BCC_MATRIX_KERNELS_H_
