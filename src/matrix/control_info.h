// Shared vocabulary for the broadcast control-information protocols
// (Section 3.2): the client's read records and the algorithm selector.

#ifndef BCC_MATRIX_CONTROL_INFO_H_
#define BCC_MATRIX_CONTROL_INFO_H_

#include <string_view>
#include <vector>

#include "common/cycle_stamp.h"
#include "history/object_id.h"

namespace bcc {

/// One entry of R_t: "transaction t read the committed value of `object` as
/// of the beginning of broadcast cycle `cycle`".
struct ReadRecord {
  ObjectId object;
  Cycle cycle;

  friend bool operator==(const ReadRecord& a, const ReadRecord& b) {
    return a.object == b.object && a.cycle == b.cycle;
  }
};

/// The concurrency-control algorithms compared in Section 4.
enum class Algorithm {
  kDatacycle,  ///< serializability baseline [Herman et al.]
  kRMatrix,    ///< reduced matrix, weakened read condition (Section 3.2.2)
  kFMatrix,    ///< full n x n matrix (Section 3.2.1)
  kFMatrixNo,  ///< F-Matrix with control-broadcast cost ignored (baseline)
};

std::string_view AlgorithmName(Algorithm a);

/// All four algorithms, in the order the paper's figures list them.
inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kDatacycle, Algorithm::kRMatrix, Algorithm::kFMatrix,
    Algorithm::kFMatrixNo};

}  // namespace bcc

#endif  // BCC_MATRIX_CONTROL_INFO_H_
