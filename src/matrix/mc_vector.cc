#include "matrix/mc_vector.h"

namespace bcc {

bool DatacycleReadCondition(const McVector& mc, std::span<const ReadRecord> reads) {
  for (const ReadRecord& r : reads) {
    if (mc.At(r.object) >= r.cycle) return false;
  }
  return true;
}

bool RMatrixReadCondition(const McVector& mc, std::span<const ReadRecord> reads, ObjectId j,
                          Cycle first_read_cycle) {
  if (DatacycleReadCondition(mc, reads)) return true;
  return mc.At(j) < first_read_cycle;
}

}  // namespace bcc
