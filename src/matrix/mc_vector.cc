#include "matrix/mc_vector.h"

#include "matrix/kernels.h"

namespace bcc {

bool DatacycleReadCondition(const McVector& mc, std::span<const ReadRecord> reads) {
  return KernelReadConditionScan(mc.entries().data(), reads.data(), reads.size()) ==
         kReadConditionPass;
}

bool RMatrixReadCondition(const McVector& mc, std::span<const ReadRecord> reads, ObjectId j,
                          Cycle first_read_cycle) {
  if (DatacycleReadCondition(mc, reads)) return true;
  return mc.At(j) < first_read_cycle;
}

}  // namespace bcc
