#include "matrix/kernels.h"

#include <algorithm>

namespace bcc {

// The loop bodies below are branch-free (max/select via conditional moves)
// and index with the induction variable only, so gcc and clang vectorize
// them at the flags this file is built with (see src/matrix/CMakeLists.txt).

void KernelColumnFill(Cycle* dst, Cycle value, uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) dst[i] = value;
}

void KernelColumnCopy(Cycle* dst, const Cycle* src, uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) dst[i] = src[i];
}

void KernelColumnMaxMerge(Cycle* dst, const Cycle* src, uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) dst[i] = std::max(dst[i], src[i]);
}

void KernelColumnSelectFill(Cycle* dst, const uint8_t* mask, const Cycle* dep, Cycle stamp,
                            uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) dst[i] = mask[i] ? stamp : dep[i];
}

uint32_t KernelColumnDiffIndices(const Cycle* a, const Cycle* b, uint32_t n, ObjectId* out) {
  uint32_t count = 0;
  for (uint32_t i = 0; i < n; ++i) {
    out[count] = i;
    count += (a[i] != b[i]) ? 1u : 0u;
  }
  return count;
}

size_t KernelReadConditionScan(const Cycle* column, const ReadRecord* reads, size_t count) {
  for (size_t k = 0; k < count; ++k) {
    if (column[reads[k].object] >= reads[k].cycle) return k;
  }
  return kReadConditionPass;
}

}  // namespace bcc
