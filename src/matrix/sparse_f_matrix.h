// Compressed-sparse-column F-Matrix (ROADMAP item 4).
//
// The dense n x n control matrix is O(n^2) memory and every per-cycle cost
// (snapshot, diff, broadcast packing) is Omega(n) per touched column — a dead
// end at n = 10^6. This representation stores, per column, only the entries
// that differ from the column's implicit default (its "floor"); everything
// else is implicit. Two structural facts make it exact AND cheap:
//
//   1. Theorem 2 writes the SAME content into every write-set column of a
//      commit (C(i, j) = commit_cycle for i in WS, dep(i) otherwise — nothing
//      depends on j within WS). One immutable ColumnData is built per commit
//      and shared by every WS column, so per-commit maintenance is
//      O(sum nnz(RS) + |WS| log |WS|), independent of n.
//   2. Entries only become non-default through commits, and a run of C
//      commits of length L materializes at most O(C * L) distinct stamps —
//      bounded by the workload, not by n^2. (Stamps below the TS-bit
//      wraparound horizon stay distinct in value but are indistinguishable
//      mod 2^ts to every wire-codec consumer; CompactModulo exploits that —
//      see below.)
//
// Exactness invariant: At(i, j) returns the exact absolute cycle the dense
// FMatrix would hold — the sparse form is a representation change only, so
// the dense matrix remains a bit-for-bit oracle (sparse_f_matrix_test), wire
// packings of a sparse snapshot are byte-identical to dense ones, and every
// downstream decision (read validation, delta diffing, frame bytes) is
// bit-identical to a dense run.
//
// Column invariant: entries are sorted by row, each entry's value differs
// from the column floor, and on the server maintenance path every entry is
// >= the floor (floors are max-merged on commit, so dep(i) >= floor always).
// Set/ApplyDelta (client-side reconstruction) may store arbitrary values;
// only value != floor is required there.

#ifndef BCC_MATRIX_SPARSE_F_MATRIX_H_
#define BCC_MATRIX_SPARSE_F_MATRIX_H_

#include <memory>
#include <span>
#include <vector>

#include "common/cycle_stamp.h"
#include "history/object_id.h"
#include "matrix/control_info.h"
#include "matrix/f_matrix.h"

namespace bcc {

/// One immutable sparse column. Shared (shared_ptr) between all columns a
/// commit wrote, between consecutive cycle snapshots, and between the server
/// matrix and client trackers that adopted it on a refresh.
struct SparseColumnData {
  struct Entry {
    ObjectId row;
    Cycle value;
    friend bool operator==(const Entry&, const Entry&) = default;
  };
  /// Implicit value of every row without an explicit entry. Exact, not a
  /// bound: At() returns it verbatim.
  Cycle floor = 0;
  /// Sorted by row; value != floor for every entry.
  std::vector<Entry> entries;

  Cycle At(ObjectId row) const;
};

/// The compressed-sparse-column control matrix. Value-identical to an
/// FMatrix maintained by the same ApplyCommit stream; all hot operations are
/// O(nnz of the columns involved), never O(n).
class SparseFMatrix {
 public:
  /// All entries start at cycle 0: every column shares one static empty
  /// ColumnData, so construction is O(n) pointer copies.
  explicit SparseFMatrix(uint32_t num_objects);

  uint32_t num_objects() const { return n_; }

  /// C(i, j). O(log nnz(column j)).
  Cycle At(ObjectId i, ObjectId j) const { return cols_[j]->At(i); }

  /// Explicit entries in column j / the whole matrix (shared payloads are
  /// counted once per column that references them — the logical footprint).
  size_t ColumnNnz(ObjectId j) const { return cols_[j]->entries.size(); }
  uint64_t nnz() const { return nnz_; }
  /// Columns with a nonzero floor or at least one explicit entry — the
  /// columns a sparse wire encoding must mention at all.
  uint32_t nonempty_columns() const { return nonempty_cols_; }

  const std::shared_ptr<const SparseColumnData>& ColumnData(ObjectId j) const {
    return cols_[j];
  }
  /// Installs a shared column payload (tracker refresh adoption, delta-base
  /// folds). Updates nnz accounting and dirty tracking like a rewrite.
  void AssignColumn(ObjectId j, std::shared_ptr<const SparseColumnData> data);

  /// Materializes column j into `out` (resized to n). O(n) — wire packing
  /// and oracle checks only, never on the commit path.
  void MaterializeColumn(ObjectId j, std::vector<Cycle>& out) const;

  /// Theorem 2 incremental maintenance, value-identical to
  /// FMatrix::ApplyCommit. O(sum nnz(RS columns) + |WS| log |WS|).
  void ApplyCommit(std::span<const ObjectId> read_set, std::span<const ObjectId> write_set,
                   Cycle commit_cycle);

  /// Applies the batch in order — bit-identical to per-commit application by
  /// construction (the sparse path needs no fusion: it is already O(nnz)).
  void ApplyCommitBatch(std::span<const CommitSets> commits, Cycle commit_cycle);

  /// Point write via copy-on-write column rebuild (client reconstruction and
  /// tests; the server path goes through ApplyCommit). O(nnz(column j)).
  void Set(ObjectId i, ObjectId j, Cycle c);

  /// Dirty-column tracking with FMatrix semantics: first-touch order, each
  /// column at most once, O(1) per written column.
  void EnableDirtyTracking();
  /// Stops tracking and drops any pending touched list (snapshot copies of a
  /// tracked matrix call this — the snapshot is immutable, so tracking state
  /// is dead weight).
  void DisableDirtyTracking() {
    track_dirty_ = false;
    touched_cols_.clear();
    touched_mask_.clear();
  }
  bool dirty_tracking_enabled() const { return track_dirty_; }
  std::span<const ObjectId> touched_columns() const { return touched_cols_; }
  std::vector<ObjectId> TakeTouchedColumns();
  void DrainTouchedColumns(std::vector<ObjectId>& out);

  /// First read record failing the F-Matrix read condition against column j
  /// (same order and result as KernelReadConditionScan over the dense
  /// column), or kReadConditionPass. O(reads * log nnz(column j)).
  size_t ReadConditionScan(std::span<const ReadRecord> reads, ObjectId j) const;

  /// The read condition itself (true = all reads pass).
  bool ReadCondition(std::span<const ReadRecord> reads, ObjectId j) const;

  /// Wraparound-horizon compaction: rewrites every entry (and floor) to its
  /// windowed decode at `current`, dropping entries whose residue matches the
  /// column floor's. Every rewritten value is congruent mod 2^ts to — and at
  /// least as large as — the exact value, so direct wire-codec reads decide
  /// identically. The system as a whole is conservative rather than
  /// bit-identical to dense, though: a later commit's dependency fold
  /// (dep(i) = max_k C(i, k)) maxes raw values, and an aliased-upward stale
  /// entry can win over a genuinely newer one, shifting the written residue.
  /// The result is always >= the true dependency cycle, so misdecisions are
  /// spurious aborts only — never false accepts. Use only when every client
  /// consumer round-trips stamps through the codec (use_wire_codec).
  /// Returns the number of entries dropped.
  uint64_t CompactModulo(const CycleStampCodec& codec, Cycle current);

  /// Conversions for oracle checks. O(n^2); test/bench use.
  FMatrix ToDense() const;
  static SparseFMatrix FromDense(const FMatrix& dense);

  /// Value-wise equality (shared or not).
  friend bool operator==(const SparseFMatrix& a, const SparseFMatrix& b);

 private:
  /// Rebuilds column j's payload with entry (i -> c) inserted/updated/erased
  /// per the value-vs-floor rule.
  void SetInColumn(ObjectId j, ObjectId i, Cycle c);
  void MarkTouched(ObjectId j);
  /// nnz/nonempty accounting for replacing column j's payload with `next`.
  void Account(ObjectId j, const SparseColumnData& next);

  uint32_t n_;
  std::vector<std::shared_ptr<const SparseColumnData>> cols_;
  uint64_t nnz_ = 0;
  uint32_t nonempty_cols_ = 0;

  // Scratch reused across commits so the steady-state path allocates only
  // when a commit's column outgrows every previous one.
  std::vector<SparseColumnData::Entry> merge_scratch_;
  std::vector<ObjectId> ws_scratch_;

  bool track_dirty_ = false;
  std::vector<ObjectId> touched_cols_;
  std::vector<uint8_t> touched_mask_;
};

/// Entry-wise comparison against the dense oracle.
bool operator==(const SparseFMatrix& s, const FMatrix& d);
inline bool operator==(const FMatrix& d, const SparseFMatrix& s) { return s == d; }

/// Wire size of the sparse control encoding: a 32-bit non-empty-column
/// count, then per non-empty column its id (ceil(log2 n) bits), floor
/// residue (ts bits) and entry count (32 bits), then per entry the row
/// (ceil(log2 n) bits) and value residue (ts bits). This is the per-cycle
/// control footprint the sparse tier is accounted at — O(nnz + columns)
/// bits, vs the dense broadcast's n^2 * ts.
uint64_t SparseMatrixControlBits(uint64_t nnz, uint32_t nonempty_columns, uint32_t num_objects,
                                 unsigned ts_bits);
uint64_t SparseMatrixControlBits(const SparseFMatrix& matrix, unsigned ts_bits);

}  // namespace bcc

#endif  // BCC_MATRIX_SPARSE_F_MATRIX_H_
