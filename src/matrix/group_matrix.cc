#include "matrix/group_matrix.h"

#include <algorithm>

#include "common/format.h"
#include "matrix/kernels.h"

namespace bcc {

ObjectPartition ObjectPartition::Blocks(uint32_t num_objects, uint32_t num_groups) {
  num_groups = std::max(1u, std::min(num_groups, num_objects));
  std::vector<uint32_t> group_of(num_objects);
  for (uint32_t i = 0; i < num_objects; ++i) {
    group_of[i] = static_cast<uint32_t>((static_cast<uint64_t>(i) * num_groups) / num_objects);
  }
  return ObjectPartition(std::move(group_of), num_groups);
}

StatusOr<ObjectPartition> ObjectPartition::FromMapping(std::vector<uint32_t> group_of) {
  if (group_of.empty()) return Status::InvalidArgument("empty partition");
  const uint32_t g = *std::max_element(group_of.begin(), group_of.end()) + 1;
  std::vector<bool> seen(g, false);
  for (uint32_t x : group_of) seen[x] = true;
  for (uint32_t s = 0; s < g; ++s) {
    if (!seen[s]) {
      return Status::InvalidArgument(StrFormat("group %u has no objects", s));
    }
  }
  return ObjectPartition(std::move(group_of), g);
}

GroupMatrix::GroupMatrix(const ObjectPartition& partition, const FMatrix& full)
    : n_(full.num_objects()), g_(partition.num_groups()), partition_(partition) {
  data_.assign(static_cast<size_t>(n_) * g_, 0);
  for (ObjectId j = 0; j < n_; ++j) {
    const uint32_t s = partition_.GroupOf(j);
    Cycle* col = data_.data() + static_cast<size_t>(s) * n_;
    KernelColumnMaxMerge(col, full.Column(j).data(), n_);
  }
}

bool GroupMatrix::ReadCondition(std::span<const ReadRecord> reads, ObjectId j) const {
  const uint32_t s = partition_.GroupOf(j);
  const Cycle* col = data_.data() + static_cast<size_t>(s) * n_;
  return KernelReadConditionScan(col, reads.data(), reads.size()) == kReadConditionPass;
}

}  // namespace bcc
