#include "matrix/hier_matrix.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "matrix/kernels.h"

namespace bcc {

namespace {

unsigned IndexBits(uint32_t count) {
  return count > 1 ? static_cast<unsigned>(std::bit_width(count - 1)) : 0u;
}

const std::shared_ptr<const SparseColumnData>& EmptyGroupColumn() {
  static const std::shared_ptr<const SparseColumnData> empty =
      std::make_shared<const SparseColumnData>();
  return empty;
}

}  // namespace

HierMatrix::HierMatrix(uint32_t num_objects, HierMatrixOptions options)
    : opts_(options), exact_(num_objects) {
  opts_.min_groups = std::max(1u, std::min(opts_.min_groups, num_objects == 0 ? 1u : num_objects));
  opts_.max_groups =
      std::max(opts_.min_groups, std::min(opts_.max_groups, num_objects == 0 ? 1u : num_objects));
  const uint32_t g = std::clamp(opts_.initial_groups, opts_.min_groups, opts_.max_groups);

  // Balanced block partition, same shape as ObjectPartition::Blocks.
  std::vector<std::vector<ObjectId>> members(g);
  for (ObjectId i = 0; i < num_objects; ++i) {
    members[static_cast<uint32_t>(static_cast<uint64_t>(i) * g / num_objects)].push_back(i);
  }
  refined_.assign(num_objects, 0);
  last_used_.assign(num_objects, 0);
  pending_mask_.assign(num_objects, 0);
  InstallPartition(std::move(members));
  pending_mapping_bits_ = 0;  // the initial mapping is not a broadcast update
}

void HierMatrix::InstallPartition(std::vector<std::vector<ObjectId>> members) {
  // Drop empty groups so ids stay dense.
  std::erase_if(members, [](const std::vector<ObjectId>& m) { return m.empty(); });
  members_ = std::move(members);
  const uint32_t g = num_groups();
  group_of_.assign(exact_.num_objects(), 0);
  uint64_t moved = 0;
  for (uint32_t s = 0; s < g; ++s) {
    for (ObjectId ob : members_[s]) {
      group_of_[ob] = s;
      ++moved;
    }
  }
  group_cols_.assign(g, EmptyGroupColumn());
  group_dirty_.assign(g, 1);
  group_spurious_.assign(g, 0);
  // Mapping update on the air: every object's new group id.
  pending_mapping_bits_ += moved * IndexBits(g);
}

void HierMatrix::ApplyCommit(std::span<const ObjectId> read_set,
                             std::span<const ObjectId> write_set, Cycle commit_cycle) {
  exact_.ApplyCommit(read_set, write_set, commit_cycle);
  for (ObjectId w : write_set) group_dirty_[group_of_[w]] = 1;
}

void HierMatrix::ApplyCommitBatch(std::span<const CommitSets> commits, Cycle commit_cycle) {
  for (const CommitSets& c : commits) ApplyCommit(c.read_set, c.write_set, commit_cycle);
}

void HierMatrix::EnsureGroup(uint32_t s) {
  if (!group_dirty_[s]) return;
  group_dirty_[s] = 0;
  ++stats_.group_rebuilds;

  // MC(i, s) = max_{j in s} C(i, j). With per-column floors f_j, the
  // aggregate floor is F = max f_j and MC(i, s) = max(F, explicit maxima at
  // row i) — every implicit value is <= F. Commits share one payload across
  // their whole write set, so deduping by payload pointer collapses most of
  // the member scan.
  Cycle floor = 0;
  std::vector<const SparseColumnData*> unique;
  unique.reserve(members_[s].size());
  for (ObjectId j : members_[s]) {
    const SparseColumnData* col = exact_.ColumnData(j).get();
    floor = std::max(floor, col->floor);
    if (std::find(unique.begin(), unique.end(), col) == unique.end()) unique.push_back(col);
  }

  rebuild_scratch_.clear();
  for (const SparseColumnData* col : unique) {
    for (const SparseColumnData::Entry& e : col->entries) {
      if (e.value > floor) rebuild_scratch_.push_back(e);
    }
  }
  if (rebuild_scratch_.empty() && floor == 0) {
    group_cols_[s] = EmptyGroupColumn();
    return;
  }
  std::sort(rebuild_scratch_.begin(), rebuild_scratch_.end(),
            [](const SparseColumnData::Entry& a, const SparseColumnData::Entry& b) {
              return a.row < b.row;
            });
  auto data = std::make_shared<SparseColumnData>();
  data->floor = floor;
  for (size_t k = 0; k < rebuild_scratch_.size();) {
    Cycle value = rebuild_scratch_[k].value;
    const ObjectId row = rebuild_scratch_[k].row;
    while (++k < rebuild_scratch_.size() && rebuild_scratch_[k].row == row) {
      value = std::max(value, rebuild_scratch_[k].value);
    }
    data->entries.push_back({row, value});
  }
  group_cols_[s] = std::move(data);
}

Cycle HierMatrix::EffectiveAt(ObjectId i, ObjectId j) {
  if (refined_[j]) return exact_.At(i, j);
  const uint32_t s = group_of_[j];
  EnsureGroup(s);
  return group_cols_[s]->At(i);
}

size_t HierMatrix::ReadConditionScan(std::span<const ReadRecord> reads, ObjectId j,
                                     Cycle current) {
  if (refined_[j]) {
    last_used_[j] = current;
    return exact_.ReadConditionScan(reads, j);
  }
  const uint32_t s = group_of_[j];
  EnsureGroup(s);
  const SparseColumnData& col = *group_cols_[s];
  for (size_t k = 0; k < reads.size(); ++k) {
    if (col.At(reads[k].object) >= reads[k].cycle) {
      // The coarse view aborts this read. If the exact matrix would have
      // accepted it, the abort is spurious — charge the group and schedule
      // the column for refinement at the next cycle boundary.
      if (exact_.ReadConditionScan(reads, j) == kReadConditionPass) {
        ++stats_.spurious_aborts;
        ++group_spurious_[s];
        QueueRefine(j);
      }
      return k;
    }
  }
  return kReadConditionPass;
}

void HierMatrix::QueueRefine(ObjectId j) {
  if (pending_mask_[j] || refined_[j]) return;
  pending_mask_[j] = 1;
  pending_refine_.push_back(j);
}

void HierMatrix::EndOfCycle(Cycle cycle, uint64_t control_conflict_aborts) {
  // 1. Promote the cycle's spurious-abort columns to exact (bounded).
  for (ObjectId j : pending_refine_) {
    pending_mask_[j] = 0;
    if (refined_[j]) continue;
    if (opts_.refine_limit != 0 && refined_list_.size() >= opts_.refine_limit) break;
    refined_[j] = 1;
    last_used_[j] = cycle;
    refined_list_.push_back(j);
    ++stats_.refinements;
    pending_mapping_bits_ += IndexBits(exact_.num_objects());
  }
  for (ObjectId j : pending_refine_) pending_mask_[j] = 0;  // unpromoted leftovers
  pending_refine_.clear();

  // 2. Demote refined columns nothing has consulted lately.
  if (opts_.coarsen_idle_cycles != 0) {
    for (size_t k = 0; k < refined_list_.size();) {
      const ObjectId j = refined_list_[k];
      if (cycle >= last_used_[j] && cycle - last_used_[j] >= opts_.coarsen_idle_cycles) {
        refined_[j] = 0;
        refined_list_[k] = refined_list_.back();
        refined_list_.pop_back();
        ++stats_.coarsenings;
        pending_mapping_bits_ += IndexBits(exact_.num_objects());
      } else {
        ++k;
      }
    }
  }

  // 3. Adaptive partition pass, gated on the abort breakdown having moved.
  if (opts_.regroup_period != 0 && cycle - last_regroup_cycle_ >= opts_.regroup_period) {
    last_regroup_cycle_ = cycle;
    if (control_conflict_aborts > regroup_abort_watermark_) RegroupPass();
    regroup_abort_watermark_ = control_conflict_aborts;
    std::fill(group_spurious_.begin(), group_spurious_.end(), 0);
  }
}

void HierMatrix::RegroupPass() {
  const uint32_t g = num_groups();
  std::vector<std::vector<ObjectId>> next;
  next.reserve(g + g / 2);
  uint64_t splits = 0, merges = 0;
  uint32_t projected = g;

  for (uint32_t s = 0; s < g; ++s) {
    const bool hot =
        group_spurious_[s] >= opts_.split_threshold && members_[s].size() >= 2;
    if (hot && projected < opts_.max_groups) {
      // Split the sorted member range in half: conflicts concentrate, each
      // half gets its own aggregate.
      const size_t mid = members_[s].size() / 2;
      next.emplace_back(members_[s].begin(), members_[s].begin() + static_cast<ptrdiff_t>(mid));
      next.emplace_back(members_[s].begin() + static_cast<ptrdiff_t>(mid), members_[s].end());
      ++splits;
      ++projected;
    } else if (s + 1 < g && projected > opts_.min_groups && group_spurious_[s] == 0 &&
               group_spurious_[s + 1] == 0) {
      // Merge the quiet adjacent pair: one aggregate is precise enough.
      std::vector<ObjectId> merged;
      merged.reserve(members_[s].size() + members_[s + 1].size());
      std::merge(members_[s].begin(), members_[s].end(), members_[s + 1].begin(),
                 members_[s + 1].end(), std::back_inserter(merged));
      next.push_back(std::move(merged));
      ++s;  // consumed the pair
      ++merges;
      --projected;
    } else {
      next.push_back(members_[s]);
    }
  }

  if (splits == 0 && merges == 0) return;
  stats_.group_splits += splits;
  stats_.group_merges += merges;
  ++stats_.regroups;
  InstallPartition(std::move(next));
}

uint64_t HierMatrix::ControlBits(unsigned ts_bits) {
  const unsigned n_bits = IndexBits(exact_.num_objects());
  const unsigned g_bits = IndexBits(num_groups());
  uint64_t bits = 32;  // group-count header
  for (uint32_t s = 0; s < num_groups(); ++s) {
    EnsureGroup(s);
    const SparseColumnData& col = *group_cols_[s];
    if (col.floor == 0 && col.entries.empty()) continue;
    bits += g_bits + ts_bits + 32 + col.entries.size() * (n_bits + ts_bits);
  }
  for (ObjectId j : refined_list_) {
    bits += n_bits + ts_bits + 32 + exact_.ColumnNnz(j) * (n_bits + ts_bits);
  }
  bits += pending_mapping_bits_;
  pending_mapping_bits_ = 0;
  return bits;
}

}  // namespace bcc
