#include "matrix/f_matrix.h"

#include <algorithm>
#include <cassert>

namespace bcc {

std::string_view AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kDatacycle:
      return "Datacycle";
    case Algorithm::kRMatrix:
      return "R-Matrix";
    case Algorithm::kFMatrix:
      return "F-Matrix";
    case Algorithm::kFMatrixNo:
      return "F-Matrix-No";
  }
  return "?";
}

FMatrix::FMatrix(uint32_t num_objects) : n_(num_objects) {
  data_.assign(static_cast<size_t>(n_) * n_, 0);
  dep_scratch_.assign(n_, 0);
  ws_scratch_.assign(n_, 0);
}

std::span<const Cycle> FMatrix::Column(ObjectId j) const {
  assert(j < n_);
  return {data_.data() + static_cast<size_t>(j) * n_, n_};
}

void FMatrix::ApplyCommit(std::span<const ObjectId> read_set,
                          std::span<const ObjectId> write_set, Cycle commit_cycle) {
  if (write_set.empty()) return;  // read-only: no entry changes

  // dep(i) = max_{k in RS} C_old(i, k); 0 when the read set is empty.
  std::fill(dep_scratch_.begin(), dep_scratch_.end(), Cycle{0});
  for (ObjectId k : read_set) {
    const std::span<const Cycle> col = Column(k);
    for (uint32_t i = 0; i < n_; ++i) {
      dep_scratch_[i] = std::max(dep_scratch_[i], col[i]);
    }
  }

  // Membership mask for WS (write sets are tiny; a bitmap keeps this O(n)).
  // ws_scratch_ is a member so the per-commit hot path never allocates.
  for (ObjectId w : write_set) ws_scratch_[w] = 1;

  // Rewrite every column j in WS from dep() and the commit cycle. The order
  // over j does not matter: all new columns derive from C_old via
  // dep_scratch_, which was captured before any column is overwritten.
  for (ObjectId j : write_set) {
    Cycle* col = data_.data() + static_cast<size_t>(j) * n_;
    for (uint32_t i = 0; i < n_; ++i) {
      col[i] = ws_scratch_[i] ? commit_cycle : dep_scratch_[i];
    }
  }
  for (ObjectId w : write_set) ws_scratch_[w] = 0;

  if (track_dirty_) {
    for (ObjectId j : write_set) {
      if (!touched_mask_[j]) {
        touched_mask_[j] = 1;
        touched_cols_.push_back(j);
      }
    }
  }
}

void FMatrix::EnableDirtyTracking() {
  if (track_dirty_) return;
  track_dirty_ = true;
  touched_mask_.assign(n_, 0);
}

std::vector<ObjectId> FMatrix::TakeTouchedColumns() {
  assert(track_dirty_);
  std::vector<ObjectId> out = std::move(touched_cols_);
  touched_cols_.clear();
  for (ObjectId j : out) touched_mask_[j] = 0;
  return out;
}

bool FMatrix::ReadCondition(std::span<const ReadRecord> reads, ObjectId j) const {
  const std::span<const Cycle> col = Column(j);
  for (const ReadRecord& r : reads) {
    if (col[r.object] >= r.cycle) return false;
  }
  return true;
}

FMatrix FMatrixFromDefinition(const History& history,
                              const std::unordered_map<TxnId, Cycle>& commit_cycles,
                              uint32_t num_objects) {
  FMatrix c(num_objects);

  // Last committed writer per object, in history order.
  std::vector<TxnId> last_writer(num_objects, kInitTxn);
  for (const Operation& op : history.ops()) {
    if (op.type == OpType::kWrite &&
        history.Txn(op.txn).outcome == TxnOutcome::kCommitted) {
      last_writer[op.object] = op.txn;
    }
  }

  for (ObjectId j = 0; j < num_objects; ++j) {
    const TxnId tj = last_writer[j];
    if (tj == kInitTxn) continue;  // column stays all-zero
    const std::unordered_set<TxnId> live = history.LiveSet(tj);
    for (ObjectId i = 0; i < num_objects; ++i) {
      Cycle best = 0;
      for (TxnId t : live) {
        if (t == kInitTxn) continue;
        if (!history.Txn(t).Writes(i)) continue;
        const auto it = commit_cycles.find(t);
        assert(it != commit_cycles.end());
        best = std::max(best, it->second);
      }
      c.Set(i, j, best);
    }
  }
  return c;
}

}  // namespace bcc
