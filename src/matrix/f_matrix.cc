#include "matrix/f_matrix.h"

#include <algorithm>
#include <cassert>

#include "matrix/kernels.h"

namespace bcc {

std::string_view AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kDatacycle:
      return "Datacycle";
    case Algorithm::kRMatrix:
      return "R-Matrix";
    case Algorithm::kFMatrix:
      return "F-Matrix";
    case Algorithm::kFMatrixNo:
      return "F-Matrix-No";
  }
  return "?";
}

bool FMatrixSnapshot::ReadCondition(std::span<const ReadRecord> reads, ObjectId j) const {
  return KernelReadConditionScan(cols_[j]->data(), reads.data(), reads.size()) ==
         kReadConditionPass;
}

FMatrix FMatrixSnapshot::Materialize() const {
  FMatrix m(n_);
  for (ObjectId j = 0; j < n_; ++j) {
    for (ObjectId i = 0; i < n_; ++i) m.Set(i, j, (*cols_[j])[i]);
  }
  return m;
}

bool operator==(const FMatrixSnapshot& a, const FMatrixSnapshot& b) {
  if (a.n_ != b.n_) return false;
  for (ObjectId j = 0; j < a.n_; ++j) {
    if (a.cols_[j] == b.cols_[j]) continue;  // shared page: trivially equal
    if (*a.cols_[j] != *b.cols_[j]) return false;
  }
  return true;
}

bool operator==(const FMatrixSnapshot& s, const FMatrix& m) {
  if (s.num_objects() != m.num_objects()) return false;
  for (ObjectId j = 0; j < s.num_objects(); ++j) {
    const std::span<const Cycle> a = s.Column(j);
    const std::span<const Cycle> b = m.Column(j);
    if (!std::equal(a.begin(), a.end(), b.begin())) return false;
  }
  return true;
}

FMatrix::FMatrix(uint32_t num_objects) : n_(num_objects) {
  data_.assign(static_cast<size_t>(n_) * n_, 0);
  dep_scratch_.assign(n_, 0);
  ws_scratch_.assign(n_, 0);
  col_version_.assign(n_, 0);
}

std::span<const Cycle> FMatrix::Column(ObjectId j) const {
  assert(j < n_);
  return {ColumnPtr(j), n_};
}

void FMatrix::ApplyCommit(std::span<const ObjectId> read_set,
                          std::span<const ObjectId> write_set, Cycle commit_cycle) {
  if (write_set.empty()) return;  // read-only: no entry changes

  // dep(i) = max_{k in RS} C_old(i, k); 0 when the read set is empty.
  Cycle* dep = dep_scratch_.data();
  if (read_set.empty()) {
    KernelColumnFill(dep, 0, n_);
  } else {
    KernelColumnCopy(dep, ColumnPtr(read_set[0]), n_);
    for (size_t k = 1; k < read_set.size(); ++k) {
      KernelColumnMaxMerge(dep, ColumnPtr(read_set[k]), n_);
    }
  }

  // Membership mask for WS (write sets are tiny; a bitmap keeps this O(n)).
  // ws_scratch_ is a member so the per-commit hot path never allocates.
  for (ObjectId w : write_set) ws_scratch_[w] = 1;

  // Rewrite every column j in WS from dep() and the commit cycle. The order
  // over j does not matter: all new columns derive from C_old via
  // dep_scratch_, which was captured before any column is overwritten.
  for (ObjectId j : write_set) {
    KernelColumnSelectFill(ColumnPtr(j), ws_scratch_.data(), dep, commit_cycle, n_);
    ++col_version_[j];
  }
  for (ObjectId w : write_set) ws_scratch_[w] = 0;

  if (track_dirty_) {
    for (ObjectId j : write_set) {
      if (!touched_mask_[j]) {
        touched_mask_[j] = 1;
        touched_cols_.push_back(j);
      }
    }
  }
}

void FMatrix::AnalyzeBatch(std::span<const CommitSets> commits, Cycle commit_cycle) {
  const size_t m = commits.size();

  // Pass 1 — analysis, O(n + sum(|RS| + |WS|)). Resolve each read to its
  // source (the pre-batch matrix column, or the virtual column of the last
  // earlier in-batch writer), build the union write set in first-touch order
  // (matching the sequential dirty-tracking order exactly), and find the
  // final writer of every union column.
  batch_writer_.assign(n_, -1);
  if (batch_union_mask_.size() != n_) batch_union_mask_.assign(n_, 0);
  batch_union_cols_.clear();
  batch_sources_.clear();
  batch_src_begin_.assign(m + 1, 0);
  for (size_t t = 0; t < m; ++t) {
    const CommitSets& cs = commits[t];
    if (cs.write_set.empty()) {  // read-only: no effect, never a source
      batch_src_begin_[t + 1] = batch_sources_.size();
      continue;
    }
    // Reads resolve against the state BEFORE this commit's own writes, so
    // sources point strictly backward (src_commit < t).
    for (ObjectId k : cs.read_set) {
      batch_sources_.push_back({batch_writer_[k], k});
    }
    batch_src_begin_[t + 1] = batch_sources_.size();
    for (ObjectId j : cs.write_set) {
      if (!batch_union_mask_[j]) {
        batch_union_mask_[j] = 1;
        batch_union_cols_.push_back(j);
      }
      batch_writer_[j] = static_cast<int32_t>(t);
    }
  }

  // A commit's dependency vector is needed iff it is the final writer of
  // some column, or a needed later commit reads a column it last wrote.
  // Read edges point strictly backward, so one reverse pass closes the set.
  batch_need_.assign(m, 0);
  for (ObjectId j : batch_union_cols_) batch_need_[batch_writer_[j]] = 1;
  for (size_t t = m; t-- > 0;) {
    if (!batch_need_[t]) continue;
    for (size_t s = batch_src_begin_[t]; s < batch_src_begin_[t + 1]; ++s) {
      if (batch_sources_[s].src_commit >= 0) batch_need_[batch_sources_[s].src_commit] = 1;
    }
  }

  // Pass 2 — dependency vectors for needed commits only, oldest first so
  // every in-batch source is already computed. The virtual column of an
  // in-batch source s is (i in WS_s ? commit_cycle : dep_s(i)); because
  // every entry involved is <= commit_cycle (the precondition), merging it
  // is a max-merge of dep_s followed by overwriting the WS_s rows with the
  // cycle stamp. No matrix column is modified until pass 3, so pre-batch
  // columns read here are still C_old.
  batch_dep_idx_.assign(m, -1);
  size_t pool_used = 0;
  for (size_t t = 0; t < m; ++t) {
    if (!batch_need_[t]) continue;
    if (pool_used == dep_pool_.size()) dep_pool_.emplace_back(n_);
    std::vector<Cycle>& slot = dep_pool_[pool_used];
    if (slot.size() != n_) slot.assign(n_, 0);
    Cycle* dep = slot.data();
    batch_dep_idx_[t] = static_cast<int32_t>(pool_used++);

    const size_t begin = batch_src_begin_[t];
    const size_t end = batch_src_begin_[t + 1];
    if (begin == end) {
      KernelColumnFill(dep, 0, n_);
    } else {
      for (size_t s = begin; s < end; ++s) {
        const BatchSource& src = batch_sources_[s];
        const bool first = (s == begin);
        if (src.src_commit < 0) {
          if (first) {
            KernelColumnCopy(dep, ColumnPtr(src.col), n_);
          } else {
            KernelColumnMaxMerge(dep, ColumnPtr(src.col), n_);
          }
        } else {
          const Cycle* sdep = dep_pool_[batch_dep_idx_[src.src_commit]].data();
          if (first) {
            KernelColumnCopy(dep, sdep, n_);
          } else {
            KernelColumnMaxMerge(dep, sdep, n_);
          }
          for (ObjectId w : commits[src.src_commit].write_set) dep[w] = commit_cycle;
        }
      }
    }
  }
}

void FMatrix::FinishBatch() {
  if (track_dirty_) {
    for (ObjectId j : batch_union_cols_) {
      if (!touched_mask_[j]) {
        touched_mask_[j] = 1;
        touched_cols_.push_back(j);
      }
    }
  }
  for (ObjectId j : batch_union_cols_) batch_union_mask_[j] = 0;
}

void FMatrix::ApplyCommitBatch(std::span<const CommitSets> commits, Cycle commit_cycle) {
  const size_t m = commits.size();
  if (m == 0) return;
  if (m == 1) {
    ApplyCommit(commits[0].read_set, commits[0].write_set, commit_cycle);
    return;
  }
  AnalyzeBatch(commits, commit_cycle);

  // Pass 3 — one store per union column, grouped by final writer so each
  // writer's WS mask is built once. Store order across columns is
  // irrelevant: every new column derives only from dep vectors and masks
  // captured above.
  for (size_t t = 0; t < m; ++t) {
    if (batch_dep_idx_[t] < 0) continue;
    const CommitSets& cs = commits[t];
    bool owns_any = false;
    for (ObjectId j : cs.write_set) {
      if (batch_writer_[j] == static_cast<int32_t>(t)) {
        owns_any = true;
        break;
      }
    }
    if (!owns_any) continue;
    const Cycle* dep = dep_pool_[batch_dep_idx_[t]].data();
    for (ObjectId w : cs.write_set) ws_scratch_[w] = 1;
    for (ObjectId j : cs.write_set) {
      if (batch_writer_[j] != static_cast<int32_t>(t)) continue;
      KernelColumnSelectFill(ColumnPtr(j), ws_scratch_.data(), dep, commit_cycle, n_);
      ++col_version_[j];
      batch_writer_[j] = -1;  // guard against duplicate write-set entries
    }
    for (ObjectId w : cs.write_set) ws_scratch_[w] = 0;
  }

  FinishBatch();
}

void FMatrix::ApplyCommitBatch(std::span<const CommitSets> commits, Cycle commit_cycle,
                               const ShardRunner& runner, uint32_t num_shards) {
  if (!runner || num_shards <= 1 || commits.size() <= 1) {
    ApplyCommitBatch(commits, commit_cycle);
    return;
  }
  AnalyzeBatch(commits, commit_cycle);

  // Pass 3, sharded by column id (j % num_shards). Each shard stores only
  // the union columns of its own partition, reads/clears batch_writer_ only
  // for those columns, and builds the write-set mask in its own scratch
  // buffer, so shards share nothing writable. Values are bit-identical to
  // the serial pass: every store derives from dep vectors and masks captured
  // by AnalyzeBatch, independent of store order.
  if (shard_ws_scratch_.size() < num_shards) shard_ws_scratch_.resize(num_shards);
  const size_t m = commits.size();
  runner(num_shards, [&](uint32_t shard) {
    std::vector<uint8_t>& ws = shard_ws_scratch_[shard];
    if (ws.size() != n_) ws.assign(n_, 0);
    for (size_t t = 0; t < m; ++t) {
      if (batch_dep_idx_[t] < 0) continue;
      const CommitSets& cs = commits[t];
      const Cycle* dep = dep_pool_[batch_dep_idx_[t]].data();
      bool mask_built = false;
      for (ObjectId j : cs.write_set) {
        if (j % num_shards != shard) continue;
        if (batch_writer_[j] != static_cast<int32_t>(t)) continue;
        if (!mask_built) {
          for (ObjectId w : cs.write_set) ws[w] = 1;
          mask_built = true;
        }
        KernelColumnSelectFill(ColumnPtr(j), ws.data(), dep, commit_cycle, n_);
        ++col_version_[j];
        batch_writer_[j] = -1;  // guard against duplicate write-set entries
      }
      if (mask_built) {
        for (ObjectId w : cs.write_set) ws[w] = 0;
      }
    }
  });

  FinishBatch();
}

FMatrixSnapshot FMatrix::Snapshot() const {
  if (snapshot_cache_.size() != n_) {
    snapshot_cache_.assign(n_, nullptr);
    snapshot_cache_version_.assign(n_, 0);
  }
  FMatrixSnapshot s;
  s.n_ = n_;
  s.cols_.resize(n_);
  for (ObjectId j = 0; j < n_; ++j) {
    std::shared_ptr<std::vector<Cycle>>& page = snapshot_cache_[j];
    if (!page || snapshot_cache_version_[j] != col_version_[j]) {
      if (page && page.use_count() == 1) {
        // Only the cache still references the old page: overwrite in place.
        KernelColumnCopy(page->data(), ColumnPtr(j), n_);
      } else {
        page = std::make_shared<std::vector<Cycle>>(Column(j).begin(), Column(j).end());
      }
      snapshot_cache_version_[j] = col_version_[j];
      ++snapshot_columns_copied_;
    }
    s.cols_[j] = page;
  }
  return s;
}

void FMatrix::EnableDirtyTracking() {
  if (track_dirty_) return;
  track_dirty_ = true;
  touched_mask_.assign(n_, 0);
}

std::vector<ObjectId> FMatrix::TakeTouchedColumns() {
  std::vector<ObjectId> out;
  DrainTouchedColumns(out);
  return out;
}

void FMatrix::DrainTouchedColumns(std::vector<ObjectId>& out) {
  assert(track_dirty_);
  out.clear();
  out.swap(touched_cols_);  // tracker keeps out's old capacity for next cycle
  for (ObjectId j : out) touched_mask_[j] = 0;
}

bool FMatrix::ReadCondition(std::span<const ReadRecord> reads, ObjectId j) const {
  return KernelReadConditionScan(ColumnPtr(j), reads.data(), reads.size()) ==
         kReadConditionPass;
}

FMatrix FMatrixFromDefinition(const History& history,
                              const std::unordered_map<TxnId, Cycle>& commit_cycles,
                              uint32_t num_objects) {
  FMatrix c(num_objects);

  // Last committed writer per object, in history order.
  std::vector<TxnId> last_writer(num_objects, kInitTxn);
  for (const Operation& op : history.ops()) {
    if (op.type == OpType::kWrite &&
        history.Txn(op.txn).outcome == TxnOutcome::kCommitted) {
      last_writer[op.object] = op.txn;
    }
  }

  for (ObjectId j = 0; j < num_objects; ++j) {
    const TxnId tj = last_writer[j];
    if (tj == kInitTxn) continue;  // column stays all-zero
    const std::unordered_set<TxnId> live = history.LiveSet(tj);
    for (ObjectId i = 0; i < num_objects; ++i) {
      Cycle best = 0;
      for (TxnId t : live) {
        if (t == kInitTxn) continue;
        if (!history.Txn(t).Writes(i)) continue;
        const auto it = commit_cycles.find(t);
        assert(it != commit_cycles.end());
        best = std::max(best, it->second);
      }
      c.Set(i, j, best);
    }
  }
  return c;
}

}  // namespace bcc
