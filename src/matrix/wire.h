// Wire-format accounting and encoding for the broadcast control information.
//
// Section 4.1 derives the fraction of each broadcast cycle spent on control
// information:
//   F-Matrix:            n*TS / (n*TS + OBJ)   per object slot (column of n
//                        TS-bit stamps follows each object)
//   R-Matrix/Datacycle:  TS / (TS + OBJ)       (one stamp per object)
//   F-Matrix-No:         0                     (cost ignored by fiat)
// Appendix D, Theorem 8: no compression can beat Omega(n^2) bits per cycle
// for the full matrix in the worst case; Section 3.2.1 sketches delta
// transmission as future work — implemented here as DeltaCodec.

#ifndef BCC_MATRIX_WIRE_H_
#define BCC_MATRIX_WIRE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/cycle_stamp.h"
#include "common/statusor.h"
#include "matrix/control_info.h"
#include "matrix/f_matrix.h"
#include "matrix/mc_vector.h"
#include "matrix/sparse_f_matrix.h"

namespace bcc {

/// Geometry of one broadcast cycle for a given algorithm.
struct BroadcastGeometry {
  uint64_t object_bits;        ///< payload bits per object
  uint64_t control_bits;       ///< control bits per object slot
  uint64_t slot_bits;          ///< object_bits + control_bits
  uint64_t cycle_bits;         ///< n * slot_bits
  double control_fraction;     ///< control share of the cycle
};

/// Computes the cycle geometry. `num_groups` is the group-matrix column
/// count: n for F-Matrix, 1 for R-Matrix/Datacycle; F-Matrix-No forces the
/// control share to zero. For the grouped spectrum, pass Algorithm::kFMatrix
/// with the desired num_groups.
BroadcastGeometry ComputeGeometry(Algorithm algorithm, uint32_t num_objects,
                                  uint64_t object_bits, unsigned ts_bits,
                                  uint32_t num_groups = 0);

/// Encodes a control column (or the MC vector) into TS-bit residues.
std::vector<uint32_t> EncodeStamps(std::span<const Cycle> stamps, const CycleStampCodec& codec);

/// Decodes residues back to absolute cycles anchored at `current`.
std::vector<Cycle> DecodeStamps(std::span<const uint32_t> residues, const CycleStampCodec& codec,
                                Cycle current);

/// Packs a control column into the on-air bitstream: exactly
/// stamps.size() * codec.bits() bits, zero-padded to whole bytes.
std::vector<uint8_t> PackStamps(std::span<const Cycle> stamps, const CycleStampCodec& codec);

/// Unpacks `count` stamps and decodes them anchored at `current`.
/// The buffer must be exactly the PackStamps framing: OutOfRange when it is
/// too small, InvalidArgument when it carries trailing bytes or nonzero
/// padding bits — wire-format corruption is rejected, not silently ignored.
StatusOr<std::vector<Cycle>> UnpackStamps(std::span<const uint8_t> bytes, size_t count,
                                          const CycleStampCodec& codec, Cycle current);

/// Bits of the standard full-matrix control broadcast for one cycle: n
/// columns of n TS-bit stamps (the Section 4.1 layout).
uint64_t FullMatrixControlBits(uint32_t num_objects, unsigned ts_bits);

/// Delta transmission (Section 3.2.1 future work): encodes only entries that
/// changed relative to the previous cycle's matrix.
class DeltaCodec {
 public:
  /// One changed entry.
  struct Entry {
    ObjectId row;
    ObjectId col;
    uint32_t residue;
  };

  /// Changed entries between consecutive cycle snapshots, by full O(n^2)
  /// rescan. Kept as the test oracle for DiffColumns; production callers with
  /// a dirty list (FMatrix::EnableDirtyTracking) should use DiffColumns.
  static std::vector<Entry> Diff(const FMatrix& prev, const FMatrix& cur,
                                 const CycleStampCodec& codec);

  /// Diff restricted to `touched_columns` — O(n * |touched|) instead of
  /// O(n^2). Correct whenever `touched_columns` covers every column that
  /// differs between prev and cur (ApplyCommit only rewrites WS columns, so
  /// the FMatrix dirty list satisfies this). Duplicate and unsorted column
  /// ids are fine; output entries are emitted in ascending (col, row) order,
  /// identical to Diff's.
  static std::vector<Entry> DiffColumns(const FMatrix& prev, const FMatrix& cur,
                                        std::span<const ObjectId> touched_columns,
                                        const CycleStampCodec& codec);

  /// Same, with the current matrix given as a cycle snapshot (the engines'
  /// per-cycle control state is an FMatrixSnapshot since the CoW change).
  static std::vector<Entry> DiffColumns(const FMatrix& prev, const FMatrixSnapshot& cur,
                                        std::span<const ObjectId> touched_columns,
                                        const CycleStampCodec& codec);

  /// Sparse-to-sparse variant: entries (and order) are identical to the dense
  /// DiffColumns on the materialized matrices, but each touched column costs
  /// O(nnz) via a merge walk — with a pointer-equality fast path for columns
  /// whose payloads are shared between prev and cur (unchanged columns cost
  /// O(1)).
  static std::vector<Entry> DiffColumns(const SparseFMatrix& prev, const SparseFMatrix& cur,
                                        std::span<const ObjectId> touched_columns,
                                        const CycleStampCodec& codec);

  /// Applies a diff on top of `base` (decoding residues at `current`).
  static void Apply(FMatrix* base, std::span<const Entry> entries, const CycleStampCodec& codec,
                    Cycle current);

  /// Sparse variant: one copy-on-write column rebuild per touched column
  /// (entries are grouped by column, as Pack/Diff emit them), value-identical
  /// to the dense Apply including duplicate-entry last-wins semantics.
  static void Apply(SparseFMatrix* base, std::span<const Entry> entries,
                    const CycleStampCodec& codec, Cycle current);

  /// Wire size of a diff: a count header (32 bits) plus, per entry, row and
  /// column indices (ceil(log2 n) bits each) and the TS-bit stamp.
  static uint64_t EncodedBits(size_t num_entries, uint32_t num_objects, unsigned ts_bits);

  /// Packs a diff into the on-air bitstream with exactly the EncodedBits
  /// framing (32-bit count, then per entry row, column, residue), zero-padded
  /// to whole bytes. Requires num_entries <= 2^32 - 1 and indices < n.
  static std::vector<uint8_t> Pack(std::span<const Entry> entries, uint32_t num_objects,
                                   const CycleStampCodec& codec);

  /// Inverse of Pack. Strict framing like UnpackStamps: OutOfRange when the
  /// buffer is too small, InvalidArgument on trailing bytes, nonzero padding,
  /// a count above n^2, or an out-of-range index — wire corruption that slips
  /// past the frame CRC is still rejected here.
  static StatusOr<std::vector<Entry>> Unpack(std::span<const uint8_t> bytes, uint32_t num_objects,
                                             const CycleStampCodec& codec);
};

/// Packs a full matrix into the on-air bitstream: n^2 TS-bit residues,
/// column-major and contiguous (no per-column padding), zero-padded to whole
/// bytes — exactly FullMatrixControlBits(n, ts) data bits. The sparse
/// overload produces byte-identical output (the on-air format stays dense so
/// frames, and therefore seeded loss patterns, are bit-identical across
/// representations; the sparse saving is in server memory and maintenance,
/// and in the delta/sparse accounting paths).
std::vector<uint8_t> PackMatrix(const FMatrix& matrix, const CycleStampCodec& codec);
std::vector<uint8_t> PackMatrix(const FMatrixSnapshot& matrix, const CycleStampCodec& codec);
std::vector<uint8_t> PackMatrix(const SparseFMatrix& matrix, const CycleStampCodec& codec);

/// Inverse of PackMatrix, decoding every residue anchored at `current`, with
/// the same strict framing rules as UnpackStamps.
StatusOr<FMatrix> UnpackMatrix(std::span<const uint8_t> bytes, uint32_t num_objects,
                               const CycleStampCodec& codec, Cycle current);

}  // namespace bcc

#endif  // BCC_MATRIX_WIRE_H_
