// Hierarchical control matrix: coarse n x g group columns with on-demand
// per-column refinement (ROADMAP item 4b).
//
// The paper's group matrix (Section 3.2.2) fixes g for the whole run; every
// object pays the same precision whether or not it ever conflicts. This tier
// keeps an exact SparseFMatrix on the server and derives the client-visible
// view lazily:
//
//   - unrefined column j is validated against the group aggregate
//       MC(i, s) = max_{j' in s} C(i, j'),   s = group(j),
//     rebuilt only when a commit dirtied the group (and only for groups a
//     read actually consults);
//   - refined columns are validated against the exact C(:, j).
//
// MC(i, s) >= C(i, j) for every member j, so the hierarchical view is
// conservative: it can only abort reads the exact matrix would accept
// (spurious aborts), never accept reads the exact matrix would reject.
// Safety therefore never depends on the refinement state; refinement is a
// pure precision/bits trade-off.
//
// Policy (all transitions happen at cycle boundaries, never during a cycle's
// validation, so in-flight checks always see a frozen view):
//   - a spurious abort (group check fails, exact check passes) queues the
//     column for refinement at the next EndOfCycle;
//   - refined columns idle for `coarsen_idle_cycles` fall back to the group;
//   - every `regroup_period` cycles the partition adapts: groups that
//     accumulated >= `split_threshold` spurious aborts split in half, and
//     adjacent spurious-free group pairs merge — bits migrate to where the
//     per-cause abort breakdown says conflicts actually are. The adaptive
//     pass is gated on the period having seen control-conflict aborts at
//     all (fed from the sim's AbortBreakdown).
//
// Unlike SparseFMatrix, the hierarchical view is NOT bit-identical to a
// dense run: spurious aborts change decisions. Correctness is established
// end-to-end instead (hier_matrix_test: conservative vs the exact oracle on
// every decision; sparse_sim_test: recorded histories pass VerifyOracle).

#ifndef BCC_MATRIX_HIER_MATRIX_H_
#define BCC_MATRIX_HIER_MATRIX_H_

#include <memory>
#include <span>
#include <vector>

#include "common/cycle_stamp.h"
#include "history/object_id.h"
#include "matrix/control_info.h"
#include "matrix/kernels.h"
#include "matrix/sparse_f_matrix.h"

namespace bcc {

struct HierMatrixOptions {
  /// Initial balanced block partition size (clamped to [1, n]).
  uint32_t initial_groups = 64;
  /// Adaptive-g bounds. min_groups == max_groups pins g (no regrouping).
  uint32_t min_groups = 1;
  uint32_t max_groups = 1u << 16;
  /// Max simultaneously refined columns; 0 = unlimited.
  uint32_t refine_limit = 1024;
  /// Unrefine a column untouched for this many cycles; 0 = never coarsen.
  uint32_t coarsen_idle_cycles = 64;
  /// Cycles between adaptive split/merge passes; 0 = fixed partition.
  uint32_t regroup_period = 32;
  /// Spurious aborts charged to a group within one regroup period that
  /// trigger a split.
  uint64_t split_threshold = 4;
};

/// Counters for the metrics exporter (`hier.*` gauges, SimSummary).
struct HierStats {
  uint64_t refinements = 0;      ///< columns promoted to exact
  uint64_t coarsenings = 0;      ///< refined columns demoted to group
  uint64_t regroups = 0;         ///< adaptive passes that changed the partition
  uint64_t group_splits = 0;
  uint64_t group_merges = 0;
  uint64_t spurious_aborts = 0;  ///< group check fired where exact passes
  uint64_t group_rebuilds = 0;   ///< lazy group-column materializations

  bool operator==(const HierStats&) const = default;
};

class HierMatrix {
 public:
  HierMatrix(uint32_t num_objects, HierMatrixOptions options = {});

  uint32_t num_objects() const { return exact_.num_objects(); }
  uint32_t num_groups() const { return static_cast<uint32_t>(members_.size()); }
  uint32_t GroupOf(ObjectId ob) const { return group_of_[ob]; }
  bool Refined(ObjectId j) const { return refined_[j] != 0; }
  uint32_t refined_columns() const { return static_cast<uint32_t>(refined_list_.size()); }
  const SparseFMatrix& exact() const { return exact_; }
  const HierStats& stats() const { return stats_; }

  /// Theorem 2 maintenance on the exact matrix + dirty-group marking.
  /// O(commit sparse cost + |WS|).
  void ApplyCommit(std::span<const ObjectId> read_set, std::span<const ObjectId> write_set,
                   Cycle commit_cycle);
  void ApplyCommitBatch(std::span<const CommitSets> commits, Cycle commit_cycle);

  /// The client-visible control value: exact C(i, j) if column j is refined,
  /// MC(i, group(j)) otherwise. Non-const: may lazily rebuild the group
  /// aggregate.
  Cycle EffectiveAt(ObjectId i, ObjectId j);

  /// Read validation of "read ob_j" against the hierarchical view: first
  /// read record failing, or kReadConditionPass. A group-level failure is
  /// classified against the exact matrix; spurious failures queue column j
  /// for refinement at the next EndOfCycle. `current` stamps refined-column
  /// usage for idle coarsening.
  size_t ReadConditionScan(std::span<const ReadRecord> reads, ObjectId j, Cycle current);
  bool ReadCondition(std::span<const ReadRecord> reads, ObjectId j, Cycle current) {
    return ReadConditionScan(reads, j, current) == kReadConditionPass;
  }

  /// Cycle-boundary policy step: applies pending refinements, coarsens idle
  /// columns, and (when due) runs the adaptive split/merge pass.
  /// `control_conflict_aborts` is the run's cumulative kControlConflict
  /// count from the sim's AbortBreakdown; the adaptive pass only acts on
  /// periods where it advanced. Must not be called while a cycle's reads
  /// are still being validated.
  void EndOfCycle(Cycle cycle, uint64_t control_conflict_aborts);

  /// Per-cycle control footprint of the hierarchical view, in bits: the
  /// group columns and refined columns in the sparse wire encoding, plus
  /// the mapping updates (refinement flips, regroup moves) accumulated
  /// since the last call. Rebuilds dirty group aggregates (that cost is
  /// part of the cycle's control-plane work).
  uint64_t ControlBits(unsigned ts_bits);

 private:
  void EnsureGroup(uint32_t s);
  void QueueRefine(ObjectId j);
  void RegroupPass();
  /// Rebuilds group_of_/caches/counters from members_ after a structural
  /// change and charges the mapping-update bits.
  void InstallPartition(std::vector<std::vector<ObjectId>> members);

  HierMatrixOptions opts_;
  SparseFMatrix exact_;

  std::vector<uint32_t> group_of_;
  std::vector<std::vector<ObjectId>> members_;  ///< sorted object ids per group

  // Lazy group aggregates.
  std::vector<std::shared_ptr<const SparseColumnData>> group_cols_;
  std::vector<uint8_t> group_dirty_;

  // Refinement state.
  std::vector<uint8_t> refined_;
  std::vector<Cycle> last_used_;         ///< per refined column
  std::vector<ObjectId> refined_list_;   ///< for O(refined) coarsening scans
  std::vector<ObjectId> pending_refine_;
  std::vector<uint8_t> pending_mask_;

  // Adaptive-g bookkeeping.
  std::vector<uint64_t> group_spurious_;
  Cycle last_regroup_cycle_ = 0;
  uint64_t regroup_abort_watermark_ = 0;
  uint64_t pending_mapping_bits_ = 0;

  HierStats stats_;
  std::vector<SparseColumnData::Entry> rebuild_scratch_;
};

}  // namespace bcc

#endif  // BCC_MATRIX_HIER_MATRIX_H_
