// Appendix D, Theorem 8: the control matrix cannot be compressed below
// Omega(n^2) bits per cycle in the worst case, because every partial
// specification of the top-left quadrant (subject to C(i,j) <= C(j,j)) is
// realized by some execution history. This module implements the proof's
// constructive "twin objects" gadget: given a desired quadrant, it builds a
// serial update history whose F-Matrix matches the specification exactly.

#ifndef BCC_MATRIX_WORST_CASE_H_
#define BCC_MATRIX_WORST_CASE_H_

#include <unordered_map>
#include <vector>

#include "common/cycle_stamp.h"
#include "common/rng.h"
#include "common/statusor.h"
#include "history/history.h"

namespace bcc {

/// Desired values for C(i, j), 0 <= i, j < half, where half = (n-1)/2 and n
/// (odd) is the database size. Entry 0 means "initial value only" (no
/// transaction involved). Must satisfy spec(i, j) <= min(spec(i, i),
/// spec(j, j)): the paper's counting argument fixes every diagonal at
/// max_cycles - 1, which satisfies both bounds; we admit any dominating
/// diagonal.
struct QuadrantSpec {
  uint32_t num_objects;        ///< n, odd, >= 3
  std::vector<Cycle> entries;  ///< row-major half x half

  uint32_t half() const { return (num_objects - 1) / 2; }
  Cycle At(uint32_t i, uint32_t j) const { return entries[i * half() + j]; }
};

/// A history realizing a quadrant specification.
struct RealizedMatrix {
  History history;  ///< serial committed update transactions
  std::unordered_map<TxnId, Cycle> commit_cycles;
};

/// The Theorem 8 construction. Each off-diagonal entry C(i, j) = c spawns a
/// transaction  r(twin_j) w(ob_i) w(twin_j)  committing in cycle c — the
/// twin object twin_j = ob_{n-1-j} carries column j's dependency chain
/// without touching any other checked entry. Each diagonal entry C(j, j)
/// spawns the final writer  r(twin_j) w(ob_j)  of ob_j.
StatusOr<RealizedMatrix> RealizeQuadrant(const QuadrantSpec& spec);

/// Random valid specification (diagonal dominating its column) for tests.
QuadrantSpec RandomQuadrantSpec(uint32_t num_objects, Cycle max_cycle, Rng* rng);

}  // namespace bcc

#endif  // BCC_MATRIX_WORST_CASE_H_
