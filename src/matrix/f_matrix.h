// F-Matrix: the n x n control matrix of Section 3.2.1.
//
// C(i, j) = the latest cycle in which some transaction that affects the
// latest committed value of ob_j (i.e. is in LIVE(t_j) for the last
// committed writer t_j of ob_j) and also writes ob_i, committed. Cycle 0 is
// the imaginary initial write of every object by t0.
//
// The server maintains C incrementally at each commit (Theorem 2); clients
// validate each read r(ob_j) against column j:
//     read-condition(ob_j):  for all (ob_i, cycle) in R_t : C(i, j) < cycle
// Theorem 1: a read-only transaction passes all its read conditions iff its
// serialization graph S(t_R) is acyclic — i.e. F-Matrix implements APPROX.

#ifndef BCC_MATRIX_F_MATRIX_H_
#define BCC_MATRIX_F_MATRIX_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "common/cycle_stamp.h"
#include "history/history.h"
#include "history/object_id.h"
#include "matrix/control_info.h"

namespace bcc {

/// The server-side control matrix, column-major (column j is the unit
/// broadcast right after object j).
class FMatrix {
 public:
  /// All entries start at cycle 0 (written by t0 before the broadcast).
  explicit FMatrix(uint32_t num_objects);

  uint32_t num_objects() const { return n_; }

  /// C(i, j).
  Cycle At(ObjectId i, ObjectId j) const { return data_[Index(i, j)]; }

  /// Direct entry assignment; used by from-definition builders and by wire
  /// decoding. Normal maintenance goes through ApplyCommit.
  void Set(ObjectId i, ObjectId j, Cycle c) { data_[Index(i, j)] = c; }

  /// Column j as a contiguous span of n entries (C(0..n-1, j)).
  std::span<const Cycle> Column(ObjectId j) const;

  /// Applies the next committed transaction in the server's serialization
  /// order (Theorem 2's incremental rules):
  ///   - C(i, j) = commit_cycle            for i, j in WS
  ///   - C(i, j) = max_{k in RS} C(i, k)   for i not in WS, j in WS
  ///                                        (0 when RS is empty)
  ///   - unchanged                          otherwise
  /// With dirty tracking enabled, the touched columns (= WS) are recorded so
  /// a delta broadcaster can diff in O(n * touched) instead of O(n^2).
  void ApplyCommit(std::span<const ObjectId> read_set, std::span<const ObjectId> write_set,
                   Cycle commit_cycle);

  /// Starts recording the set of columns ApplyCommit rewrites. Tracking is
  /// column-granular on purpose: recording a column id is O(1) per written
  /// object, so the per-commit emission cost is O(|WS|) — independent of n —
  /// while entry-exact filtering is deferred to the once-per-cycle
  /// DeltaCodec::DiffColumns pass. Direct Set() calls (wire decoding,
  /// from-definition builders) are NOT tracked; tracking covers the server's
  /// incremental maintenance path only.
  void EnableDirtyTracking();
  bool dirty_tracking_enabled() const { return track_dirty_; }

  /// Columns rewritten by ApplyCommit since construction, EnableDirtyTracking
  /// or the last TakeTouchedColumns — each column at most once, in first-touch
  /// order.
  std::span<const ObjectId> touched_columns() const { return touched_cols_; }

  /// Drains the touched-column set (returns it and resets the tracker).
  std::vector<ObjectId> TakeTouchedColumns();

  /// The F-Matrix read condition for reading ob_j given the reads so far.
  bool ReadCondition(std::span<const ReadRecord> reads, ObjectId j) const;

  friend bool operator==(const FMatrix& a, const FMatrix& b) {
    return a.n_ == b.n_ && a.data_ == b.data_;
  }

 private:
  size_t Index(ObjectId i, ObjectId j) const { return static_cast<size_t>(j) * n_ + i; }

  uint32_t n_;
  std::vector<Cycle> data_;
  std::vector<Cycle> dep_scratch_;    // reused per ApplyCommit
  std::vector<uint8_t> ws_scratch_;   // write-set mask, zeroed after each commit

  // Dirty-column tracker (EnableDirtyTracking): first-touch-ordered column
  // ids plus a membership mask so duplicates cost O(1).
  bool track_dirty_ = false;
  std::vector<ObjectId> touched_cols_;
  std::vector<uint8_t> touched_mask_;
};

/// From-definition construction (used to validate Theorem 2): replays the
/// committed update transactions of `history` and computes every entry
/// directly from LIVE sets. `commit_cycles` maps each committed update
/// transaction to the broadcast cycle of its commit. O(n^2 * |H|); test use.
FMatrix FMatrixFromDefinition(const History& history,
                              const std::unordered_map<TxnId, Cycle>& commit_cycles,
                              uint32_t num_objects);

}  // namespace bcc

#endif  // BCC_MATRIX_F_MATRIX_H_
