// F-Matrix: the n x n control matrix of Section 3.2.1.
//
// C(i, j) = the latest cycle in which some transaction that affects the
// latest committed value of ob_j (i.e. is in LIVE(t_j) for the last
// committed writer t_j of ob_j) and also writes ob_i, committed. Cycle 0 is
// the imaginary initial write of every object by t0.
//
// The server maintains C incrementally at each commit (Theorem 2); clients
// validate each read r(ob_j) against column j:
//     read-condition(ob_j):  for all (ob_i, cycle) in R_t : C(i, j) < cycle
// Theorem 1: a read-only transaction passes all its read conditions iff its
// serialization graph S(t_R) is acyclic — i.e. F-Matrix implements APPROX.

#ifndef BCC_MATRIX_F_MATRIX_H_
#define BCC_MATRIX_F_MATRIX_H_

#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/cycle_stamp.h"
#include "history/history.h"
#include "history/object_id.h"
#include "matrix/control_info.h"

namespace bcc {

class FMatrix;

/// An immutable copy-on-write view of the F-Matrix at one broadcast cycle.
///
/// Produced by FMatrix::Snapshot(): columns untouched since the previous
/// snapshot are SHARED (shared_ptr to the same buffer), so the per-cycle
/// snapshot cost is O(n * touched_columns) instead of the O(n^2) full-matrix
/// copy. A snapshot stays valid — and bit-identical to the matrix state it
/// captured — for as long as it is held, regardless of later commits.
class FMatrixSnapshot {
 public:
  /// Empty snapshot (num_objects() == 0); what a cycle snapshot holds when
  /// the server does not maintain an F-Matrix.
  FMatrixSnapshot() = default;

  uint32_t num_objects() const { return n_; }

  /// C(i, j) at snapshot time.
  Cycle At(ObjectId i, ObjectId j) const { return (*cols_[j])[i]; }

  /// Column j as a contiguous span of n entries (C(0..n-1, j)).
  std::span<const Cycle> Column(ObjectId j) const { return {cols_[j]->data(), n_}; }

  /// The F-Matrix read condition against this snapshot.
  bool ReadCondition(std::span<const ReadRecord> reads, ObjectId j) const;

  /// Deep copy into a standalone FMatrix (used when a client adopts an
  /// on-air matrix as its local reconstruction base).
  FMatrix Materialize() const;

  /// Value comparison (entry-wise, shared or not).
  friend bool operator==(const FMatrixSnapshot& a, const FMatrixSnapshot& b);

 private:
  friend class FMatrix;

  uint32_t n_ = 0;
  std::vector<std::shared_ptr<const std::vector<Cycle>>> cols_;
};

/// Entry-wise comparison between a snapshot and a live matrix (test use).
bool operator==(const FMatrixSnapshot& s, const FMatrix& m);
inline bool operator==(const FMatrix& m, const FMatrixSnapshot& s) { return s == m; }

/// The read/write sets of one committed update transaction, as queued for a
/// cycle-fused FMatrix::ApplyCommitBatch.
struct CommitSets {
  std::vector<ObjectId> read_set;
  std::vector<ObjectId> write_set;
};

/// Executes `body(shard)` for every shard in [0, num_shards) — possibly in
/// parallel on a worker pool — and returns only once all shards completed.
/// The shard bodies handed to a runner are mutually independent. This is the
/// seam through which the matrix layer borrows the update engine's thread
/// pool without depending on it (TxnProcessor::RunShards has this shape).
using ShardRunner =
    std::function<void(uint32_t num_shards, const std::function<void(uint32_t)>& body)>;

/// The server-side control matrix, column-major (column j is the unit
/// broadcast right after object j).
class FMatrix {
 public:
  /// All entries start at cycle 0 (written by t0 before the broadcast).
  explicit FMatrix(uint32_t num_objects);

  uint32_t num_objects() const { return n_; }

  /// C(i, j).
  Cycle At(ObjectId i, ObjectId j) const { return data_[Index(i, j)]; }

  /// Direct entry assignment; used by from-definition builders and by wire
  /// decoding. Normal maintenance goes through ApplyCommit.
  void Set(ObjectId i, ObjectId j, Cycle c) {
    data_[Index(i, j)] = c;
    ++col_version_[j];
  }

  /// Column j as a contiguous span of n entries (C(0..n-1, j)).
  std::span<const Cycle> Column(ObjectId j) const;

  /// Applies the next committed transaction in the server's serialization
  /// order (Theorem 2's incremental rules):
  ///   - C(i, j) = commit_cycle            for i, j in WS
  ///   - C(i, j) = max_{k in RS} C(i, k)   for i not in WS, j in WS
  ///                                        (0 when RS is empty)
  ///   - unchanged                          otherwise
  /// With dirty tracking enabled, the touched columns (= WS) are recorded so
  /// a delta broadcaster can diff in O(n * touched) instead of O(n^2).
  void ApplyCommit(std::span<const ObjectId> read_set, std::span<const ObjectId> write_set,
                   Cycle commit_cycle);

  /// Cycle-fused maintenance: applies every commit of one broadcast cycle
  /// (they all carry the same `commit_cycle`) in one fused pass, bit-identical
  /// to calling ApplyCommit for each element of `commits` in order (the
  /// argument is in DESIGN.md §4g; commit_batch_test enforces it against the
  /// sequential oracle). Columns written by several commits of the batch are
  /// stored once, from the final writer's dependency vector; dependency
  /// vectors are computed only for commits that still influence the final
  /// matrix. Precondition (trivially true on the server path, where stamps
  /// are past commit cycles): commit_cycle >= every entry currently in the
  /// matrix.
  void ApplyCommitBatch(std::span<const CommitSets> commits, Cycle commit_cycle);

  /// Pooled-apply fold: same contract and bit-identical result as the serial
  /// ApplyCommitBatch, but the column stores (pass 3, the O(n * columns)
  /// part) are partitioned across `num_shards` shards by column id and run
  /// through `runner`. Shards touch disjoint columns, per-shard write-set
  /// masks, and only their own partition's batch_writer_ entries, so the
  /// shard bodies are data-race-free; the analysis and dependency-vector
  /// passes stay serial (they are O(batch) and O(n * needed commits) with
  /// cross-commit dependencies). Falls back to the serial path when `runner`
  /// is empty, `num_shards` <= 1, or the batch is trivial.
  void ApplyCommitBatch(std::span<const CommitSets> commits, Cycle commit_cycle,
                        const ShardRunner& runner, uint32_t num_shards);

  /// Copy-on-write snapshot of the current matrix. Columns unchanged since
  /// the previous Snapshot() call are shared with it; only changed columns
  /// are copied (O(n * touched) per cycle in steady state). Logically const:
  /// the internal page cache it refreshes is mutable and the caller must not
  /// invoke it concurrently with mutation (the engines snapshot inside the
  /// server's exclusive phase).
  FMatrixSnapshot Snapshot() const;

  /// Cumulative number of columns physically copied by Snapshot() calls —
  /// the O(n * touched) claim is asserted against this counter.
  uint64_t snapshot_columns_copied() const { return snapshot_columns_copied_; }

  /// Starts recording the set of columns ApplyCommit rewrites. Tracking is
  /// column-granular on purpose: recording a column id is O(1) per written
  /// object, so the per-commit emission cost is O(|WS|) — independent of n —
  /// while entry-exact filtering is deferred to the once-per-cycle
  /// DeltaCodec::DiffColumns pass. Direct Set() calls (wire decoding,
  /// from-definition builders) are NOT tracked; tracking covers the server's
  /// incremental maintenance path only.
  void EnableDirtyTracking();
  bool dirty_tracking_enabled() const { return track_dirty_; }

  /// Columns rewritten by ApplyCommit since construction, EnableDirtyTracking
  /// or the last TakeTouchedColumns — each column at most once, in first-touch
  /// order.
  std::span<const ObjectId> touched_columns() const { return touched_cols_; }

  /// Drains the touched-column set (returns it and resets the tracker).
  std::vector<ObjectId> TakeTouchedColumns();

  /// Capacity-preserving drain: fills `out` with the touched columns (same
  /// contents/order as TakeTouchedColumns) and leaves the tracker holding
  /// `out`'s old — cleared — buffer, so a caller cycling one reusable vector
  /// never re-allocates on the steady-state path.
  void DrainTouchedColumns(std::vector<ObjectId>& out);

  /// The F-Matrix read condition for reading ob_j given the reads so far.
  bool ReadCondition(std::span<const ReadRecord> reads, ObjectId j) const;

  friend bool operator==(const FMatrix& a, const FMatrix& b) {
    return a.n_ == b.n_ && a.data_ == b.data_;
  }

 private:
  size_t Index(ObjectId i, ObjectId j) const { return static_cast<size_t>(j) * n_ + i; }
  Cycle* ColumnPtr(ObjectId j) { return data_.data() + static_cast<size_t>(j) * n_; }
  const Cycle* ColumnPtr(ObjectId j) const { return data_.data() + static_cast<size_t>(j) * n_; }

  /// ApplyCommitBatch passes 1 + 2 (analysis + dependency vectors); after it
  /// returns, pass 3 only consumes batch state and writes disjoint columns.
  void AnalyzeBatch(std::span<const CommitSets> commits, Cycle commit_cycle);
  /// ApplyCommitBatch epilogue: dirty tracking + union-mask reset.
  void FinishBatch();

  uint32_t n_;
  std::vector<Cycle> data_;
  std::vector<Cycle> dep_scratch_;    // reused per ApplyCommit
  std::vector<uint8_t> ws_scratch_;   // write-set mask, zeroed after each commit

  // Per-column modification counters driving the copy-on-write snapshot
  // cache: every column rewrite (Set, ApplyCommit, ApplyCommitBatch) bumps
  // the column's counter; Snapshot() re-copies a column iff its counter
  // moved since the cached page was taken.
  std::vector<uint64_t> col_version_;
  mutable std::vector<std::shared_ptr<std::vector<Cycle>>> snapshot_cache_;
  mutable std::vector<uint64_t> snapshot_cache_version_;
  mutable uint64_t snapshot_columns_copied_ = 0;

  // Batch scratch (ApplyCommitBatch); members so the per-cycle hot path
  // allocates only while warming up.
  struct BatchSource {
    int32_t src_commit;  // -1: pre-batch matrix column `col`; else commit idx
    ObjectId col;
  };
  std::vector<int32_t> batch_writer_;       // last in-batch writer per column
  std::vector<uint8_t> batch_union_mask_;   // union-write-set membership
  std::vector<ObjectId> batch_union_cols_;  // union write set, first-touch order
  std::vector<BatchSource> batch_sources_;  // resolved read sources, flattened
  std::vector<size_t> batch_src_begin_;     // per-commit ranges into batch_sources_
  std::vector<uint8_t> batch_need_;         // commit still influences the result
  std::vector<int32_t> batch_dep_idx_;      // commit -> dep_pool_ slot (-1: none)
  std::vector<std::vector<Cycle>> dep_pool_;
  std::vector<std::vector<uint8_t>> shard_ws_scratch_;  // pooled-apply WS masks

  // Dirty-column tracker (EnableDirtyTracking): first-touch-ordered column
  // ids plus a membership mask so duplicates cost O(1).
  bool track_dirty_ = false;
  std::vector<ObjectId> touched_cols_;
  std::vector<uint8_t> touched_mask_;
};

/// From-definition construction (used to validate Theorem 2): replays the
/// committed update transactions of `history` and computes every entry
/// directly from LIVE sets. `commit_cycles` maps each committed update
/// transaction to the broadcast cycle of its commit. O(n^2 * |H|); test use.
FMatrix FMatrixFromDefinition(const History& history,
                              const std::unordered_map<TxnId, Cycle>& commit_cycles,
                              uint32_t num_objects);

}  // namespace bcc

#endif  // BCC_MATRIX_F_MATRIX_H_
