#include "des/event_queue.h"

#include <cassert>
#include <utility>

namespace bcc {

void EventQueue::ScheduleAt(SimTime at, Callback fn) {
  if (at < now_) at = now_;  // late scheduling degrades to "immediately"
  heap_.push(Event{at, next_seq_++, std::move(fn)});
}

bool EventQueue::Step() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; move out via const_cast is UB-adjacent, so
  // copy the callback handle (std::function copy) then pop.
  Event ev = heap_.top();
  heap_.pop();
  assert(ev.time >= now_);
  now_ = ev.time;
  ev.fn();
  return true;
}

size_t EventQueue::Run(size_t limit) {
  size_t fired = 0;
  while (fired < limit && Step()) ++fired;
  return fired;
}

size_t EventQueue::RunUntil(SimTime until) {
  size_t fired = 0;
  while (!heap_.empty() && heap_.top().time <= until && Step()) ++fired;
  return fired;
}

}  // namespace bcc
