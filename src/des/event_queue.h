// A minimal deterministic discrete-event simulation kernel.
//
// Time is measured in bit-units: the time to broadcast one bit (Section
// 4.1). All scheduling is integer to keep cycle boundaries exact and runs
// bit-for-bit reproducible.

#ifndef BCC_DES_EVENT_QUEUE_H_
#define BCC_DES_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace bcc {

/// Simulation time in bit-units.
using SimTime = uint64_t;

/// Deterministic event queue: events fire in (time, insertion-order) order.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `at` (>= now, or it fires immediately
  /// at now).
  void ScheduleAt(SimTime at, Callback fn);

  /// Schedules `fn` `delay` bit-units from now.
  void ScheduleAfter(SimTime delay, Callback fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  /// Current simulation time.
  SimTime now() const { return now_; }

  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

  /// Fires the next event; returns false when the queue is empty.
  bool Step();

  /// Runs until the queue drains or `limit` events fire; returns events run.
  size_t Run(size_t limit = SIZE_MAX);

  /// Runs until simulated time would exceed `until` (events at exactly
  /// `until` still fire); returns events run.
  size_t RunUntil(SimTime until);

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace bcc

#endif  // BCC_DES_EVENT_QUEUE_H_
