// The closed-loop broadcast-disk simulation of Section 4.
//
// One server (update transactions completing at a fixed rate, executed
// serially) and one or more clients (read-only transactions reading "off
// the air", optionally update transactions committing over the uplink)
// share a simulated broadcast channel clocked in bit-units. Each cycle the
// server broadcasts every object followed by its control-information share;
// a client waits for an object's slot, validates the read against the
// cycle's control snapshot using the configured algorithm, and aborts/
// restarts on a failed read condition.
//
// The paper simulates exactly one client because read-only transactions
// never feed back into the server; with the client-update extension
// (client_update_fraction > 0) multiple clients do interact through the
// server's validator, so num_clients becomes meaningful.

#ifndef BCC_SIM_BROADCAST_SIM_H_
#define BCC_SIM_BROADCAST_SIM_H_

#include <memory>
#include <optional>
#include <vector>

#include "channel/lossy_channel.h"
#include "client/cache.h"
#include "client/delta_tracker.h"
#include "client/read_txn.h"
#include "client/receiver.h"
#include "common/statusor.h"
#include "des/event_queue.h"
#include "history/history.h"
#include "matrix/group_matrix.h"
#include "obs/trace.h"
#include "server/broadcast_server.h"
#include "server/exec/txn_processor.h"
#include "server/mc_overlay.h"
#include "server/validator.h"
#include "sim/config.h"
#include "sim/metrics.h"
#include "sim/workload.h"

namespace bcc {

/// First TxnId used for client read-only transactions in recorded oracle
/// histories (server transactions count up from 1); client update
/// transactions use ids from 2 * kClientTxnIdBase.
inline constexpr TxnId kClientTxnIdBase = 1u << 20;

/// One simulation run. Construct, Run() once, then inspect.
class BroadcastSim {
 public:
  explicit BroadcastSim(SimConfig config);
  ~BroadcastSim();

  /// Executes the run to completion (num_client_txns transactions committed
  /// across all clients).
  StatusOr<SimSummary> Run();

  const SimConfig& config() const { return config_; }
  const ServerTxnManager& manager() const { return *manager_; }
  /// Per-client transaction decision logs, in completion order (empty
  /// unless config.record_decisions).
  const std::vector<std::vector<TxnDecision>>& decisions() const { return decisions_; }
  /// Aggregate cache counters across clients (0s when caching is off).
  uint64_t TotalCacheHits() const;
  uint64_t TotalCacheMisses() const;

  /// Reconstructs the paper-semantics global history of the run: per cycle,
  /// client reads (which observe the state at the beginning of the cycle)
  /// precede the server transactions committed during that cycle. Requires
  /// config.record_history.
  StatusOr<History> BuildOracleHistory() const;

  /// End-to-end consistency audit (requires config.record_history):
  ///   1. every value a committed client transaction read matches the
  ///      reads-from relation of the oracle history (currency + atomicity);
  ///   2. the oracle history passes APPROX (mutual consistency);
  ///   3. under Datacycle, the oracle history is conflict serializable.
  Status VerifyOracle() const;

  /// Delta-mode audit (requires config.delta_broadcast, after Run): every
  /// synced client tracker's reconstructed matrix must be entry-wise
  /// congruent mod 2^ts to the server's unbounded-cycle matrix of the final
  /// broadcast cycle — the invariant that makes delta-mode read decisions
  /// bit-identical to full-matrix broadcast. Desynced trackers (possible
  /// only via the delta_desync_at_cycle knob, or through real loss in
  /// channel mode) are skipped, as are channel-mode trackers whose final
  /// cycle's control block was lost.
  Status VerifyDeltaTrackers() const;

  /// One client's channel/receiver counters (requires channel_broadcast).
  const ChannelStats& ClientChannelStats(size_t c) const {
    return clients_[c]->receiver->stats();
  }

  /// The final broadcast cycle's snapshot (valid after Run). The networked
  /// tier's loopback test digests this as the in-process oracle for the
  /// daemon's end state.
  const CycleSnapshot& final_snapshot() const { return server_->snapshot(); }

  /// Attaches an event tracer (not owned; must outlive the sim). Call before
  /// Run: tracks — "server" plus one per client — are registered during
  /// setup. Tracing is purely observational: it consumes no RNG draws and
  /// schedules no events, so enabling it never changes any decision.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  struct ClientTxnLog {
    TxnId id;
    std::vector<ReadRecord> reads;
    std::vector<ObjectVersion> values;
  };

  /// Per-client protocol state machine.
  struct Client {
    Client(const SimConfig& config, Rng rng, std::optional<CycleStampCodec> codec);

    ClientWorkload workload;
    ReadOnlyTxnProtocol protocol;
    std::unique_ptr<QuasiCache> cache;
    /// Delta-broadcast reconstruction state (delta_broadcast mode only); the
    /// protocol's control override points into it.
    std::unique_ptr<DeltaMatrixTracker> tracker;
    /// Channel-mode frame reassembly (channel_broadcast only). Feeds the
    /// tracker in delta mode; its matrix/values back the protocol's control
    /// and value overrides otherwise.
    std::unique_ptr<ChannelReceiver> receiver;

    std::vector<ObjectId> read_set;
    std::vector<ObjectId> write_set;
    size_t read_idx = 0;
    SimTime submit_time = 0;
    uint32_t restarts = 0;
    bool is_update = false;
    /// Channel mode: did the current transaction attempt stall on loss? An
    /// abort of such an attempt is counted as loss-attributed.
    bool stalled_this_attempt = false;
    /// Delta mode: did the current attempt stall on a desynced tracker? An
    /// abort of such an attempt is attributed to kDesyncStall.
    bool delta_stalled_this_attempt = false;
    /// This client's trace ring (null when tracing is off).
    TraceRing* trace = nullptr;
  };

  // Delta-mode per-cycle plumbing: drains the dirty columns into this
  // cycle's DeltaControl and feeds it to every client's tracker (directly,
  // or through the receivers in channel mode).
  void AttachAndObserveDelta();

  // Sparse/hier end-of-cycle control-plane step, run when cycle `ending`
  // closes: accounts the cycle's control footprint (matrix.nnz, control
  // bits), runs scheduled sparse compaction, and drives the hierarchical
  // refinement/regroup policy (HierMatrix::EndOfCycle) with the run's
  // cumulative control-conflict abort count. No-op in dense mode.
  void EndOfCycleMatrixStep(Cycle ending);

  // Channel-mode per-cycle plumbing: packetizes the cycle's broadcast and
  // delivers each client its independently-faulted copy.
  void TransmitCycle();

  // Event handlers (`c` = client index).
  void StartNextCycle();
  void ServerCommitEvent();
  void SubmitClientTxn(size_t c);
  void BeginReadOp(size_t c);          // after think time: cache or broadcast
  void PerformBroadcastRead(size_t c);
  void OnReadSuccess(size_t c);
  void OnReadAbort(size_t c);
  /// Shared abort path: records the attributed cause, traces it, and either
  /// restarts the transaction or censors it.
  void OnAbort(size_t c, AbortInfo info);
  void SendUplinkCommit(size_t c);     // client update txn: ship reads+writes
  void CompleteTxn(size_t c, bool censored);
  /// Pooled update engine (config.update_scheme != kSequential): executes
  /// the server transactions queued during the ending cycle on the
  /// TxnProcessor and folds their serialization order into the manager under
  /// the current cycle number. No-op in sequential mode.
  void FlushServerBatch();
  /// Emits the cycle-start slice (and broadcast-tx instant) for the cycle
  /// just begun on the server track; no-op when tracing is off.
  void TraceCycleStart();

  SimConfig config_;
  BroadcastGeometry geometry_;
  EventQueue queue_;

  std::unique_ptr<ServerTxnManager> manager_;
  std::unique_ptr<BroadcastServer> server_;
  /// Hier mode: raw pointer into the manager's HierMatrix, grabbed once at
  /// setup. Protocol scans go through this pointer WITHOUT the flushing
  /// accessor, so mid-cycle validation always sees the frozen
  /// begin-of-cycle view; the batch flush happens at cycle boundaries
  /// (BuildSnapshot / EndOfCycleMatrixStep).
  HierMatrix* hier_ = nullptr;
  std::optional<ObjectPartition> partition_;
  std::unique_ptr<ServerWorkload> server_workload_;
  std::unique_ptr<UpdateValidator> validator_;
  /// Pooled update engine and its per-cycle staging queue (null/unused in
  /// sequential mode).
  std::unique_ptr<TxnProcessor> txn_processor_;
  std::vector<ServerTxn> pending_server_txns_;
  /// Pooled mode + client updates: the cycle-epoch MC overlay the validator
  /// merges read-only (staged at ServerCommitEvent/acceptance time, cleared
  /// at the fold), and the accepted uplink transactions awaiting the serial
  /// prefix of the fold (acceptance order = fold order).
  std::unique_ptr<McOverlay> mc_overlay_;
  std::vector<ServerTxn> pending_uplink_txns_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::optional<FrameCodec> frame_codec_;   // channel mode
  std::unique_ptr<LossyChannel> channel_;   // channel mode
  // Per-cycle scratch reused across cycles so steady-state cycles allocate
  // nothing: drained dirty columns (delta mode) and the encoded frame vector
  // with its per-frame byte buffers (channel mode).
  std::vector<ObjectId> touched_scratch_;
  std::vector<Frame> frame_scratch_;
  SimMetrics metrics_;
  Tracer* tracer_ = nullptr;        // not owned; null = tracing off
  TraceRing* server_trace_ = nullptr;

  uint32_t completed_txns_ = 0;
  TxnId next_client_update_id_ = 2 * kClientTxnIdBase;  // disjoint id range
  bool done_ = false;
  bool ran_ = false;

  // Oracle logs (committed read-only client transactions, all clients).
  std::vector<ClientTxnLog> oracle_client_txns_;

  // Cross-check decision logs (config_.record_decisions only).
  std::vector<std::vector<TxnDecision>> decisions_;
};

/// Convenience: run one configuration and return its summary.
StatusOr<SimSummary> RunSimulation(const SimConfig& config);

/// Runs `config` twice — once with full-matrix control broadcast, once in
/// snapshot+delta mode — and verifies identical per-client commit/abort
/// decisions, identical server state, and the delta run's reconstruction
/// invariant (VerifyDeltaTrackers). Also checks the delta run never shipped
/// more control bits than the full-matrix baseline. `config` is taken as the
/// delta-mode run (delta_broadcast is forced on, record_decisions forced on);
/// requires stop_after_cycles > 0 for a timing-independent cutoff. Returns
/// Internal with a description of the first divergence.
Status CrossCheckDeltaBroadcast(SimConfig config);

/// Runs `config` twice — once with the direct in-process handoff, once with
/// the broadcast channel at all fault rates forced to 0 — and verifies that
/// the channel path is bit-exact with the direct path: identical per-client
/// decision logs, identical server state, and an identical summary in every
/// non-channel field. Works for both full and delta control modes (set
/// config.delta_broadcast accordingly). record_decisions is forced on;
/// requires stop_after_cycles > 0 for a timing-independent cutoff. Returns
/// Internal with a description of the first divergence.
Status CrossCheckLossless(SimConfig config);

/// Runs `config` twice — once with the dense control matrix, once with
/// matrix_mode=sparse — and verifies the sparse representation is
/// bit-exact: identical per-client decision logs, identical server stores,
/// value-identical control matrices (sparse vs dense oracle), and an
/// identical summary in every decision-relevant field. Works with delta
/// broadcast and the lossy channel enabled (the sparse run reuses the same
/// seeded loss pattern because frames are byte-identical). Rejects
/// sparse_compaction_period > 0: compaction aliases stale entries upward and
/// the server's dependency fold mixes them with in-window values, so a
/// compacted run is conservative-safe (audited by VerifyOracle), not
/// bit-identical. record_decisions is forced on; requires
/// stop_after_cycles > 0. `config` is taken as the sparse run.
Status CrossCheckSparseMode(SimConfig config);

}  // namespace bcc

#endif  // BCC_SIM_BROADCAST_SIM_H_
