// Shared-memory concurrent broadcast engine.
//
// The DES in sim/broadcast_sim.h interleaves one server and N clients on a
// single thread. This engine runs them on real threads using the epoch
// structure the broadcast model already implies: a broadcast cycle is an
// epoch. While client threads concurrently execute read-only transactions
// against an immutable snapshot of cycle k (values + F-Matrix column per
// read, validated with the paper's C(i, j) < cycle read condition), the
// server thread applies cycle k's update commits to its private staging
// state (two-version store + Theorem 2 incremental F-Matrix). At the cycle
// boundary — a pair of std::barrier rendezvous — the server materializes
// the staging state as the immutable snapshot of cycle k+1 and publishes
// it. Readers never observe a half-updated matrix, so Theorem 1's
// equivalence (read conditions pass iff the serialization graph is acyclic)
// holds for every transaction exactly as in the sequential engine; see
// DESIGN.md, "Concurrent engine".
//
// Determinism: client reads touch only the published snapshot and the
// server touches only its staging state, so within an epoch no ordering
// between threads is observable. Each client's event timeline (think
// times, slot waits, restarts) is private and seeded, and the engine
// reproduces the DES's event semantics per client — including its
// (time, insertion-order) tie-breaking at cycle boundaries — so a run's
// commit/abort decisions are a pure function of the SimConfig. The
// cross-check below replays the same seeded workload through the
// single-threaded BroadcastSim and demands identical per-client decision
// logs and identical final server state.

#ifndef BCC_SIM_CONCURRENT_SIM_H_
#define BCC_SIM_CONCURRENT_SIM_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "channel/frame.h"
#include "channel/lossy_channel.h"
#include "common/statusor.h"
#include "obs/trace.h"
#include "server/broadcast_server.h"
#include "server/exec/txn_processor.h"
#include "server/mc_overlay.h"
#include "server/txn_manager.h"
#include "server/validator.h"
#include "sim/config.h"
#include "sim/metrics.h"
#include "sim/workload.h"

namespace bcc {

/// Aggregate results of one concurrent run.
struct ConcurrentSummary {
  uint64_t cycles = 0;            ///< broadcast cycles fully executed
  uint64_t server_commits = 0;    ///< update transactions committed (incl. uplink commits)
  uint64_t completed_txns = 0;    ///< client transactions completed
  uint64_t censored_txns = 0;     ///< force-completed by the restart guard
  uint64_t total_restarts = 0;    ///< aborts across all completed txns
  uint64_t client_update_commits = 0;  ///< uplink transactions accepted at validation
  uint64_t client_update_rejects = 0;  ///< uplink transactions rejected at validation
  /// Channel counters summed over all clients (channel_broadcast mode).
  ChannelStats channel;
  /// Per-cause abort breakdown, accumulated per client thread and merged
  /// after join. Bit-identical to the sequential engine's on cross-check
  /// configurations (counts commute, so merge order is irrelevant).
  AbortBreakdown abort_causes;
};

/// One concurrent run. Construct, Run() once, then inspect. Run() spawns
/// config.num_clients client threads plus uses the calling thread as the
/// server; it returns after all threads joined.
///
/// Config restrictions (InvalidArgument otherwise): client caching is not
/// supported yet (quasi-cache currency is wall-clock based). Client update
/// transactions are supported with a pooled update scheme only: uplink
/// validation serializes through a per-run "desk" mutex over the validator,
/// the cycle-epoch McOverlay, and the pending-uplink list, while the manager
/// itself is mutated only inside the cycle-boundary exclusive section (the
/// fold), so mid-phase MC reads are race-free. The engine stages a phase's
/// server transactions — and their overlay MC effects — in the *previous*
/// exclusive section, so an uplink validated mid-phase sees every server
/// write of its cycle (conservative relative to the DES, which only sees the
/// commits whose events already fired; pooled configurations are outside the
/// bit-parity cross-check either way). Under the sequential scheme uplink
/// commits would mutate the manager mid-phase, so that combination stays
/// rejected. channel_broadcast is supported in full control mode: the server thread
/// packetizes each cycle's broadcast in the exclusive section and every
/// client thread runs its own fault channel + receiver (thread-local state,
/// independent per-client RNG streams, so the lossy run is as deterministic
/// — and as TSan-clean — as the lossless one). channel + delta is rejected
/// along with delta itself.
class ConcurrentSim {
 public:
  explicit ConcurrentSim(SimConfig config);
  ~ConcurrentSim();

  StatusOr<ConcurrentSummary> Run();

  const SimConfig& config() const { return config_; }
  /// Final server state (valid after Run).
  const ServerTxnManager& manager() const { return *manager_; }
  /// Per-client transaction decision logs, in completion order (empty
  /// unless config.record_decisions).
  const std::vector<std::vector<TxnDecision>>& decisions() const { return decisions_; }

  /// Attaches an event tracer (not owned; must outlive the sim). Call before
  /// Run. Tracks — "server" plus one per client — are registered before any
  /// thread spawns, and each ring is written by exactly one thread for the
  /// whole run (single-writer, lock-free, TSan-clean). Purely observational.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  struct ClientState;

  /// Executes every event of client `cs` belonging to broadcast cycle
  /// `phase`, reading from the immutable `snap` (= cycle `phase`'s state).
  void ProcessClientPhase(ClientState& cs, Cycle phase, const CycleSnapshot& snap);

  /// Executes every server commit belonging to broadcast cycle `phase`
  /// into the staging manager. In pooled mode (update_scheme !=
  /// kSequential) the phase's transactions run concurrently on the
  /// TxnProcessor and their serialization order is folded before returning,
  /// so the snapshot published at the next barrier sees them all. Not used
  /// in uplink mode (see StageServerPhase/FoldPhase).
  void ProcessServerPhase(Cycle phase);

  /// Uplink mode: generates broadcast cycle `phase`'s server transactions
  /// and stages their MC effects into the overlay, without touching the
  /// manager. Runs inside the exclusive section *before* the phase's client
  /// work, so the overlay is immutable to the server for the whole phase
  /// and every mid-phase uplink validation sees the cycle's server writes.
  void StageServerPhase(Cycle phase);

  /// Uplink mode: the cycle-boundary fold, inside the exclusive section.
  /// Accepted uplink transactions commit first as a serial prefix in
  /// acceptance order (TxnProcessor::ExecuteSerial), then the phase's
  /// pooled server batch; both fold into the manager and the overlay epoch
  /// retires.
  void FoldPhase(Cycle phase);

  SimConfig config_;
  BroadcastGeometry geometry_;
  SimTime cycle_bits_ = 0;

  std::unique_ptr<ServerTxnManager> manager_;
  std::unique_ptr<BroadcastServer> server_;
  std::unique_ptr<ServerWorkload> server_workload_;
  /// Pooled update engine and its per-phase staging queue (null/unused in
  /// sequential mode). Touched only by the server thread.
  std::unique_ptr<TxnProcessor> txn_processor_;
  std::vector<ServerTxn> pending_server_txns_;
  /// Uplink mode (client_update_fraction > 0, pooled scheme). The desk
  /// mutex serializes every mid-phase uplink validation: it guards the
  /// validator, the overlay, the pending-uplink list, and the id counter.
  /// Desk order is acceptance order is fold order. The server thread reads
  /// this state only inside the exclusive section (the barriers order it
  /// against the phase's desk traffic).
  std::unique_ptr<UpdateValidator> validator_;
  std::unique_ptr<McOverlay> mc_overlay_;
  std::vector<ServerTxn> pending_uplink_txns_;
  std::mutex uplink_mu_;
  TxnId next_client_update_id_ = 0;
  std::vector<std::unique_ptr<ClientState>> clients_;

  /// The on-air snapshot of the current cycle. Written by the server thread
  /// only between the phase-end and publish barriers (while every client
  /// thread is blocked); read by client threads only during the work phase.
  std::shared_ptr<const CycleSnapshot> published_;
  /// Channel mode: the current cycle's frame sequence, published alongside
  /// the snapshot under the same barrier discipline. Clients transmit it
  /// through their own fault links (disjoint LossyChannel per-client state).
  std::shared_ptr<const std::vector<Frame>> published_frames_;
  std::optional<FrameCodec> frame_codec_;  // channel mode
  std::unique_ptr<LossyChannel> channel_;  // channel mode

  // Server-side commit event state (mirrors the DES commit stream).
  SimTime next_commit_time_ = 0;
  bool next_commit_pre_flip_ = false;
  uint64_t server_commits_ = 0;

  /// Completed client transactions across all threads; drives the
  /// transaction-count cutoff when stop_after_cycles is 0.
  std::atomic<uint64_t> completions_{0};

  std::vector<std::vector<TxnDecision>> decisions_;
  Tracer* tracer_ = nullptr;         // not owned; null = tracing off
  TraceRing* server_trace_ = nullptr;
  bool ran_ = false;
};

/// Runs `config` through both the single-threaded BroadcastSim and the
/// ConcurrentSim and verifies that they made identical commit/abort
/// decisions and reached identical server state (store, F-Matrix, MC
/// vector, commit count). Requires config.stop_after_cycles > 0 so both
/// engines observe the same timing-independent cutoff; record_decisions is
/// forced on and the transaction-count cutoff is disabled internally.
/// Returns Internal with a description of the first divergence.
Status CrossCheckEngines(SimConfig config);

}  // namespace bcc

#endif  // BCC_SIM_CONCURRENT_SIM_H_
