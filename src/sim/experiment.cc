#include "sim/experiment.h"

#include <atomic>
#include <mutex>
#include <ostream>
#include <thread>

#include "common/format.h"

namespace bcc {

StatusOr<ExperimentResult> RunExperiment(const ExperimentSpec& spec) {
  ExperimentResult result;
  result.spec = spec;
  result.summaries.assign(spec.algorithms.size(),
                          std::vector<SimSummary>(spec.x_values.size()));

  struct Job {
    size_t a, x;
  };
  std::vector<Job> jobs;
  for (size_t a = 0; a < spec.algorithms.size(); ++a) {
    for (size_t x = 0; x < spec.x_values.size(); ++x) jobs.push_back({a, x});
  }

  unsigned workers = spec.parallelism ? spec.parallelism : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  workers = std::min<unsigned>(workers, static_cast<unsigned>(jobs.size()));

  std::atomic<size_t> next{0};
  std::mutex error_mutex;
  Status first_error = Status::OK();

  auto worker = [&] {
    for (;;) {
      const size_t idx = next.fetch_add(1);
      if (idx >= jobs.size()) return;
      const Job job = jobs[idx];
      SimConfig config = spec.base;
      config.algorithm = spec.algorithms[job.a];
      if (spec.apply) spec.apply(&config, spec.x_values[job.x]);
      auto summary = RunSimulation(config);
      if (!summary.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) first_error = summary.status();
        return;
      }
      result.summaries[job.a][job.x] = *summary;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (auto& t : threads) t.join();

  if (!first_error.ok()) return first_error;
  return result;
}

namespace {

void PrintHeader(const ExperimentResult& result, std::ostream& os, const char* metric) {
  os << "== " << result.spec.title << " ==\n";
  os << "(" << metric << "; base: " << result.spec.base.ToString() << ")\n";
  os << StrFormat("%-22s", result.spec.x_label.c_str());
  for (Algorithm a : result.spec.algorithms) {
    os << StrFormat("%22s", std::string(AlgorithmName(a)).c_str());
  }
  os << "\n";
}

}  // namespace

void PrintResponseTable(const ExperimentResult& result, std::ostream& os) {
  PrintHeader(result, os, "mean response time in bit-units, +- 95% CI half-width");
  for (size_t x = 0; x < result.spec.x_values.size(); ++x) {
    os << StrFormat("%-22g", result.spec.x_values[x]);
    for (size_t a = 0; a < result.spec.algorithms.size(); ++a) {
      const SimSummary& s = result.At(a, x);
      os << StrFormat("%s%13.4e +-%6.0e", s.censored_txns ? ">" : " ", s.mean_response_time,
                      s.response_ci_half_width);
    }
    os << "\n";
  }
  os << "\n";
}

void PrintRestartTable(const ExperimentResult& result, std::ostream& os) {
  PrintHeader(result, os, "mean restarts per committed transaction");
  for (size_t x = 0; x < result.spec.x_values.size(); ++x) {
    os << StrFormat("%-22g", result.spec.x_values[x]);
    for (size_t a = 0; a < result.spec.algorithms.size(); ++a) {
      const SimSummary& s = result.At(a, x);
      os << StrFormat("%s%21.3f", s.censored_txns ? ">" : " ", s.restart_ratio);
    }
    os << "\n";
  }
  os << "\n";
}

void PrintCsv(const ExperimentResult& result, std::ostream& os) {
  os << "x,algorithm,mean_response,ci_half,p50,p95,restart_ratio,measured_txns,cycles,"
        "server_commits,censored,cache_hits,cache_misses\n";
  for (size_t a = 0; a < result.spec.algorithms.size(); ++a) {
    for (size_t x = 0; x < result.spec.x_values.size(); ++x) {
      const SimSummary& s = result.At(a, x);
      os << StrFormat(
          "%g,%s,%.6e,%.6e,%.6e,%.6e,%.4f,%llu,%llu,%llu,%llu,%llu,%llu\n",
          result.spec.x_values[x],
          std::string(AlgorithmName(result.spec.algorithms[a])).c_str(), s.mean_response_time,
          s.response_ci_half_width, s.response_p50, s.response_p95, s.restart_ratio,
          static_cast<unsigned long long>(s.measured_txns),
          static_cast<unsigned long long>(s.cycles_elapsed),
          static_cast<unsigned long long>(s.server_commits),
          static_cast<unsigned long long>(s.censored_txns),
          static_cast<unsigned long long>(s.cache_hits),
          static_cast<unsigned long long>(s.cache_misses));
    }
  }
  os << "\n";
}

}  // namespace bcc
