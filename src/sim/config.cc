#include "sim/config.h"

#include <algorithm>

#include "channel/frame.h"
#include "common/format.h"

namespace bcc {

Status SimConfig::Validate() const {
  if (num_objects == 0) return Status::InvalidArgument("num_objects must be > 0");
  if (client_txn_length == 0) {
    return Status::InvalidArgument("client_txn_length must be > 0");
  }
  if (client_txn_length > num_objects) {
    return Status::InvalidArgument("client_txn_length exceeds num_objects");
  }
  if (server_txn_length == 0) {
    return Status::InvalidArgument("server_txn_length must be > 0");
  }
  if (object_size_bits == 0) return Status::InvalidArgument("object_size_bits must be > 0");
  if (server_txn_interval == 0) {
    return Status::InvalidArgument("server_txn_interval must be > 0");
  }
  if (timestamp_bits < 1 || timestamp_bits > 32) {
    return Status::InvalidArgument("timestamp_bits must be in [1, 32]");
  }
  if (server_read_probability < 0.0 || server_read_probability > 1.0) {
    return Status::InvalidArgument("server_read_probability must be in [0, 1]");
  }
  if (num_groups > num_objects) {
    return Status::InvalidArgument("num_groups exceeds num_objects");
  }
  if (warmup_txns >= num_client_txns) {
    return Status::InvalidArgument("warmup_txns must be < num_client_txns");
  }
  if (client_update_fraction < 0.0 || client_update_fraction > 1.0) {
    return Status::InvalidArgument("client_update_fraction must be in [0, 1]");
  }
  if (client_update_fraction > 0.0 &&
      (client_update_writes == 0 || client_update_writes > num_objects)) {
    return Status::InvalidArgument("client_update_writes must be in [1, num_objects]");
  }
  if (num_clients == 0) {
    return Status::InvalidArgument("num_clients must be >= 1");
  }
  if (trace_capacity == 0) {
    return Status::InvalidArgument("trace_capacity must be > 0");
  }
  if (hot_set_size > num_objects) {
    return Status::InvalidArgument("hot_set_size exceeds num_objects");
  }
  if (hot_set_size > 0 && hot_broadcast_frequency == 0) {
    return Status::InvalidArgument("hot_broadcast_frequency must be >= 1");
  }
  if (client_hot_access_fraction > 1.0 || server_hot_access_fraction > 1.0) {
    return Status::InvalidArgument("hot access fractions must be <= 1");
  }
  if ((client_hot_access_fraction >= 0.0 || server_hot_access_fraction >= 0.0) &&
      (hot_set_size == 0 || hot_set_size == num_objects)) {
    return Status::InvalidArgument("hot access skew requires 0 < hot_set_size < num_objects");
  }
  if (delta_broadcast) {
    if (algorithm != Algorithm::kFMatrix) {
      return Status::InvalidArgument("delta_broadcast requires the F-Matrix algorithm");
    }
    if (num_groups != 0) {
      return Status::InvalidArgument("delta_broadcast does not support grouped control");
    }
    if (!use_wire_codec) {
      return Status::InvalidArgument("delta_broadcast requires use_wire_codec");
    }
    if (enable_cache) {
      return Status::InvalidArgument("delta_broadcast does not support the client cache");
    }
    const uint64_t max_cycles = (uint64_t{1} << timestamp_bits) - 1;
    if (delta_refresh_period < 1 || delta_refresh_period > max_cycles) {
      return Status::InvalidArgument(
          "delta_refresh_period must be in [1, 2^timestamp_bits - 1]");
    }
  }
  if (channel_broadcast) {
    if (algorithm != Algorithm::kFMatrix) {
      return Status::InvalidArgument("channel_broadcast requires the F-Matrix algorithm");
    }
    if (num_groups != 0) {
      return Status::InvalidArgument("channel_broadcast does not support grouped control");
    }
    if (!use_wire_codec) {
      return Status::InvalidArgument("channel_broadcast requires use_wire_codec");
    }
    if (enable_cache) {
      return Status::InvalidArgument("channel_broadcast does not support the client cache");
    }
    if (client_update_fraction > 0.0) {
      return Status::InvalidArgument("channel_broadcast supports read-only clients only");
    }
    BCC_RETURN_IF_ERROR(ChannelFaults().Validate());
    BCC_RETURN_IF_ERROR(FrameCodec::ValidateGeometry(timestamp_bits, channel_frame_bits));
    if (num_objects >= (1u << FrameCodec::kStreamIdBits)) {
      return Status::InvalidArgument("channel_broadcast: num_objects exceeds the stream id space");
    }
    // Every payload stream must fit the 16-bit frame sequence space. The
    // widest streams are a full-matrix refresh (n^2 * ts bits), an object
    // data page, and the degenerate all-entries delta block.
    const uint64_t header_bits = timestamp_bits + FrameCodec::kKindBits +
                                 FrameCodec::kStreamIdBits + FrameCodec::kSeqBits +
                                 FrameCodec::kLastBits + FrameCodec::kPayloadLenBits;
    const uint64_t capacity = channel_frame_bits - header_bits - FrameCodec::kCrcBits;
    const uint64_t n2 = static_cast<uint64_t>(num_objects) * num_objects;
    const uint64_t widest = std::max(
        {FullMatrixControlBits(num_objects, timestamp_bits),
         std::max<uint64_t>(kObjectVersionBits, object_size_bits),
         DeltaCodec::EncodedBits(n2, num_objects, timestamp_bits)});
    if ((widest + capacity - 1) / capacity > (uint64_t{1} << FrameCodec::kSeqBits)) {
      return Status::InvalidArgument(
          "channel_broadcast: a payload stream would overflow the 16-bit frame sequence "
          "space; raise channel_frame_bits or shrink the database");
    }
  }
  if (update_scheme != UpdateScheme::kSequential) {
    if (update_workers == 0) {
      return Status::InvalidArgument("update_workers must be >= 1 for a pooled update scheme");
    }
  }
  if (matrix_mode == MatrixMode::kSparse) {
    if (algorithm != Algorithm::kFMatrix && algorithm != Algorithm::kFMatrixNo) {
      return Status::InvalidArgument("matrix_mode=sparse requires an F-family algorithm");
    }
    if (num_groups != 0) {
      return Status::InvalidArgument(
          "matrix_mode=sparse does not support grouped control (use matrix_mode=hier "
          "for hierarchical grouping)");
    }
    if (enable_cache) {
      return Status::InvalidArgument("matrix_mode=sparse does not support the client cache");
    }
  }
  if (sparse_compaction_period > 0) {
    if (matrix_mode != MatrixMode::kSparse) {
      return Status::InvalidArgument("sparse_compaction_period requires matrix_mode=sparse");
    }
    if (!use_wire_codec) {
      // Compaction only preserves residues; raw-value consumers would see
      // different stamps.
      return Status::InvalidArgument("sparse_compaction_period requires use_wire_codec");
    }
    if (delta_broadcast) {
      return Status::InvalidArgument(
          "sparse_compaction_period is incompatible with delta_broadcast (the delta base "
          "diffs by value, so compaction would emit spurious entries)");
    }
  }
  if (matrix_mode == MatrixMode::kHier) {
    if (algorithm != Algorithm::kFMatrix) {
      return Status::InvalidArgument("matrix_mode=hier requires the F-Matrix algorithm");
    }
    if (num_groups != 0) {
      // The fixed-g GroupMatrix path and the adaptive hierarchy are distinct
      // protocols; mixing them would validate against two different coarse
      // views (see also the fixed-g invariant on BroadcastServer::SetPartition).
      return Status::InvalidArgument("matrix_mode=hier is incompatible with num_groups");
    }
    if (delta_broadcast || channel_broadcast) {
      return Status::InvalidArgument(
          "matrix_mode=hier does not support delta or channel broadcast");
    }
    if (enable_cache) {
      return Status::InvalidArgument("matrix_mode=hier does not support the client cache");
    }
    if (client_update_fraction > 0.0) {
      return Status::InvalidArgument("matrix_mode=hier supports read-only clients only");
    }
    if (update_scheme != UpdateScheme::kSequential) {
      return Status::InvalidArgument("matrix_mode=hier requires the sequential update scheme");
    }
    if (use_wire_codec) {
      // The hierarchical view validates raw absolute stamps (group maxima
      // have no on-air encoding yet); the TS-bit wire study is the
      // dense/sparse path.
      return Status::InvalidArgument("matrix_mode=hier does not support use_wire_codec");
    }
    if (hier_min_groups == 0 || hier_min_groups > hier_max_groups) {
      return Status::InvalidArgument("hier group bounds must satisfy 1 <= min <= max");
    }
    if (hier_initial_groups == 0) {
      return Status::InvalidArgument("hier_initial_groups must be >= 1");
    }
  }
  return Status::OK();
}

std::string_view MatrixModeName(MatrixMode mode) {
  switch (mode) {
    case MatrixMode::kDense:
      return "dense";
    case MatrixMode::kSparse:
      return "sparse";
    case MatrixMode::kHier:
      return "hier";
  }
  return "?";
}

HierMatrixOptions SimConfig::HierOptions() const {
  HierMatrixOptions opts;
  opts.initial_groups = hier_initial_groups;
  opts.min_groups = hier_min_groups;
  opts.max_groups = hier_max_groups;
  opts.refine_limit = hier_refine_limit;
  opts.coarsen_idle_cycles = hier_coarsen_idle_cycles;
  opts.regroup_period = hier_regroup_period;
  opts.split_threshold = hier_split_threshold;
  return opts;
}

Status ParseMatrixOption(std::string_view value, SimConfig* config) {
  if (value == "dense") {
    config->matrix_mode = MatrixMode::kDense;
    return Status::OK();
  }
  if (value == "sparse") {
    config->matrix_mode = MatrixMode::kSparse;
    return Status::OK();
  }
  if (value == "hier") {
    config->matrix_mode = MatrixMode::kHier;
    return Status::OK();
  }
  if (value.starts_with("group:")) {
    const std::string_view digits = value.substr(6);
    uint32_t g = 0;
    if (digits.empty()) return Status::InvalidArgument("--matrix=group:<g> needs a group count");
    for (char ch : digits) {
      if (ch < '0' || ch > '9') {
        return Status::InvalidArgument("--matrix=group:<g> group count must be a number");
      }
      const uint64_t next = uint64_t{g} * 10 + static_cast<uint64_t>(ch - '0');
      if (next > UINT32_MAX) return Status::InvalidArgument("--matrix=group:<g> count overflows");
      g = static_cast<uint32_t>(next);
    }
    if (g == 0) return Status::InvalidArgument("--matrix=group:<g> count must be >= 1");
    config->matrix_mode = MatrixMode::kDense;  // group broadcast of the dense matrix
    config->num_groups = g;
    return Status::OK();
  }
  return Status::InvalidArgument("--matrix must be dense, sparse, group:<g>, or hier");
}

ChannelFaultConfig SimConfig::ChannelFaults() const {
  ChannelFaultConfig faults;
  faults.loss_rate = channel_loss_rate;
  faults.corrupt_rate = channel_corrupt_rate;
  faults.truncate_rate = channel_truncate_rate;
  faults.burst = channel_burst;
  faults.burst_loss_rate = channel_burst_loss_rate;
  faults.burst_enter_rate = channel_burst_enter_rate;
  faults.burst_exit_rate = channel_burst_exit_rate;
  return faults;
}

BroadcastGeometry SimConfig::Geometry() const {
  return ComputeGeometry(algorithm, num_objects, object_size_bits, timestamp_bits, num_groups);
}

std::string SimConfig::ToString() const {
  std::string out = StrFormat(
      "%s: clientLen=%u serverLen=%u serverInt=%llu n=%u objBits=%llu ts=%u groups=%u "
      "cache=%d delta=%d seed=%llu",
      std::string(AlgorithmName(algorithm)).c_str(), client_txn_length, server_txn_length,
      static_cast<unsigned long long>(server_txn_interval), num_objects,
      static_cast<unsigned long long>(object_size_bits), timestamp_bits, num_groups,
      enable_cache ? 1 : 0, delta_broadcast ? 1 : 0, static_cast<unsigned long long>(seed));
  if (matrix_mode != MatrixMode::kDense) {
    out += StrFormat(" matrix=%s", std::string(MatrixModeName(matrix_mode)).c_str());
    if (matrix_mode == MatrixMode::kSparse && sparse_compaction_period > 0) {
      out += StrFormat("(compact=%llu)", static_cast<unsigned long long>(sparse_compaction_period));
    }
    if (matrix_mode == MatrixMode::kHier) {
      out += StrFormat("(g=%u..%u)", hier_min_groups, hier_max_groups);
    }
  }
  if (channel_broadcast) {
    out += StrFormat(" channel(frame=%llu %s)",
                     static_cast<unsigned long long>(channel_frame_bits),
                     ChannelFaults().ToString().c_str());
  }
  if (update_scheme != UpdateScheme::kSequential) {
    out += StrFormat(" update(%s x%u)", std::string(UpdateSchemeName(update_scheme)).c_str(),
                     update_workers);
  }
  return out;
}

}  // namespace bcc
