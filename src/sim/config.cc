#include "sim/config.h"

#include "common/format.h"

namespace bcc {

Status SimConfig::Validate() const {
  if (num_objects == 0) return Status::InvalidArgument("num_objects must be > 0");
  if (client_txn_length == 0) {
    return Status::InvalidArgument("client_txn_length must be > 0");
  }
  if (client_txn_length > num_objects) {
    return Status::InvalidArgument("client_txn_length exceeds num_objects");
  }
  if (server_txn_length == 0) {
    return Status::InvalidArgument("server_txn_length must be > 0");
  }
  if (object_size_bits == 0) return Status::InvalidArgument("object_size_bits must be > 0");
  if (server_txn_interval == 0) {
    return Status::InvalidArgument("server_txn_interval must be > 0");
  }
  if (timestamp_bits < 1 || timestamp_bits > 32) {
    return Status::InvalidArgument("timestamp_bits must be in [1, 32]");
  }
  if (server_read_probability < 0.0 || server_read_probability > 1.0) {
    return Status::InvalidArgument("server_read_probability must be in [0, 1]");
  }
  if (num_groups > num_objects) {
    return Status::InvalidArgument("num_groups exceeds num_objects");
  }
  if (warmup_txns >= num_client_txns) {
    return Status::InvalidArgument("warmup_txns must be < num_client_txns");
  }
  if (client_update_fraction < 0.0 || client_update_fraction > 1.0) {
    return Status::InvalidArgument("client_update_fraction must be in [0, 1]");
  }
  if (client_update_fraction > 0.0 &&
      (client_update_writes == 0 || client_update_writes > num_objects)) {
    return Status::InvalidArgument("client_update_writes must be in [1, num_objects]");
  }
  if (num_clients == 0) {
    return Status::InvalidArgument("num_clients must be >= 1");
  }
  if (hot_set_size > num_objects) {
    return Status::InvalidArgument("hot_set_size exceeds num_objects");
  }
  if (hot_set_size > 0 && hot_broadcast_frequency == 0) {
    return Status::InvalidArgument("hot_broadcast_frequency must be >= 1");
  }
  if (client_hot_access_fraction > 1.0 || server_hot_access_fraction > 1.0) {
    return Status::InvalidArgument("hot access fractions must be <= 1");
  }
  if ((client_hot_access_fraction >= 0.0 || server_hot_access_fraction >= 0.0) &&
      (hot_set_size == 0 || hot_set_size == num_objects)) {
    return Status::InvalidArgument("hot access skew requires 0 < hot_set_size < num_objects");
  }
  if (delta_broadcast) {
    if (algorithm != Algorithm::kFMatrix) {
      return Status::InvalidArgument("delta_broadcast requires the F-Matrix algorithm");
    }
    if (num_groups != 0) {
      return Status::InvalidArgument("delta_broadcast does not support grouped control");
    }
    if (!use_wire_codec) {
      return Status::InvalidArgument("delta_broadcast requires use_wire_codec");
    }
    if (enable_cache) {
      return Status::InvalidArgument("delta_broadcast does not support the client cache");
    }
    const uint64_t max_cycles = (uint64_t{1} << timestamp_bits) - 1;
    if (delta_refresh_period < 1 || delta_refresh_period > max_cycles) {
      return Status::InvalidArgument(
          "delta_refresh_period must be in [1, 2^timestamp_bits - 1]");
    }
  }
  return Status::OK();
}

BroadcastGeometry SimConfig::Geometry() const {
  return ComputeGeometry(algorithm, num_objects, object_size_bits, timestamp_bits, num_groups);
}

std::string SimConfig::ToString() const {
  return StrFormat(
      "%s: clientLen=%u serverLen=%u serverInt=%llu n=%u objBits=%llu ts=%u groups=%u "
      "cache=%d delta=%d seed=%llu",
      std::string(AlgorithmName(algorithm)).c_str(), client_txn_length, server_txn_length,
      static_cast<unsigned long long>(server_txn_interval), num_objects,
      static_cast<unsigned long long>(object_size_bits), timestamp_bits, num_groups,
      enable_cache ? 1 : 0, delta_broadcast ? 1 : 0, static_cast<unsigned long long>(seed));
}

}  // namespace bcc
