#include "sim/metrics.h"

#include <algorithm>

#include "common/format.h"

namespace bcc {

std::string SimSummary::ToString() const {
  std::string out = StrFormat(
      "response=%.3e +-%.2e (p50=%.3e p95=%.3e) restarts/txn=%.3f txns=%llu "
      "cycles=%llu serverCommits=%llu censored=%llu",
      mean_response_time, response_ci_half_width, response_p50, response_p95, restart_ratio,
      static_cast<unsigned long long>(measured_txns),
      static_cast<unsigned long long>(cycles_elapsed),
      static_cast<unsigned long long>(server_commits),
      static_cast<unsigned long long>(censored_txns));
  if (delta_cycles > 0) {
    out += StrFormat(" deltaCycles=%llu refreshes=%llu deltaBits=%llu fullBits=%llu stalls=%llu",
                     static_cast<unsigned long long>(delta_cycles),
                     static_cast<unsigned long long>(delta_refresh_cycles),
                     static_cast<unsigned long long>(delta_control_bits),
                     static_cast<unsigned long long>(full_control_bits),
                     static_cast<unsigned long long>(delta_stall_waits));
  }
  if (channel.frames_sent > 0) {
    out += StrFormat(
        " channel(sent=%llu dropped=%llu corrupted=%llu rejected=%llu stalls=%llu "
        "resyncs=%llu desyncs=%llu lossAborts=%llu)",
        static_cast<unsigned long long>(channel.frames_sent),
        static_cast<unsigned long long>(channel.frames_dropped),
        static_cast<unsigned long long>(channel.frames_corrupted + channel.frames_truncated),
        static_cast<unsigned long long>(channel.frames_rejected),
        static_cast<unsigned long long>(channel.stalls),
        static_cast<unsigned long long>(channel.resyncs),
        static_cast<unsigned long long>(channel.tracker_desyncs),
        static_cast<unsigned long long>(channel.loss_attributed_aborts));
  }
  return out;
}

void SimMetrics::RecordClientTxn(SimTime submit, SimTime commit, uint32_t restarts,
                                 bool censored) {
  ++total_txns_;
  censored_ += censored;
  if (total_txns_ <= warmup_txns_) return;
  const double response = static_cast<double>(commit - submit);
  response_.Add(response);
  responses_.push_back(response);
  restarts_.Add(static_cast<double>(restarts));
  total_restarts_measured_ += restarts;
}

SimSummary SimMetrics::Summarize(uint64_t cycles, SimTime end_time, uint64_t cache_hits,
                                 uint64_t cache_misses) const {
  SimSummary s;
  s.mean_response_time = response_.mean();
  s.response_ci_half_width = response_.ConfidenceHalfWidth(0.95);
  s.restart_ratio = restarts_.mean();
  s.measured_txns = response_.count();
  s.total_txns = total_txns_;
  s.total_restarts = total_restarts_measured_;
  s.cycles_elapsed = cycles;
  s.server_commits = server_commits_;
  s.sim_end_time = end_time;
  s.censored_txns = censored_;
  s.cache_hits = cache_hits;
  s.cache_misses = cache_misses;
  s.client_update_commits = client_update_commits_;
  s.client_update_rejects = client_update_rejects_;
  s.delta_cycles = delta_cycles_;
  s.delta_refresh_cycles = delta_refresh_cycles_;
  s.delta_control_bits = delta_control_bits_;
  s.full_control_bits = full_control_bits_;
  s.delta_stall_waits = delta_stall_waits_;
  s.channel = channel_;
  if (!responses_.empty()) {
    std::vector<double> sorted = responses_;
    std::sort(sorted.begin(), sorted.end());
    auto quantile = [&sorted](double p) {
      const size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
      return sorted[idx];
    };
    s.response_p50 = quantile(0.5);
    s.response_p95 = quantile(0.95);
  }
  return s;
}

}  // namespace bcc
