#include "sim/metrics.h"

#include <algorithm>

#include "common/format.h"
#include "obs/json.h"

namespace bcc {

std::string SimSummary::ToString() const {
  std::string out = StrFormat(
      "response=%.3e +-%.2e (p50=%.3e p95=%.3e) restarts/txn=%.3f txns=%llu "
      "cycles=%llu serverCommits=%llu censored=%llu",
      mean_response_time, response_ci_half_width, response_p50, response_p95, restart_ratio,
      static_cast<unsigned long long>(measured_txns),
      static_cast<unsigned long long>(cycles_elapsed),
      static_cast<unsigned long long>(server_commits),
      static_cast<unsigned long long>(censored_txns));
  if (cache_hits > 0 || cache_misses > 0) {
    out += StrFormat(" cacheHits=%llu cacheMisses=%llu",
                     static_cast<unsigned long long>(cache_hits),
                     static_cast<unsigned long long>(cache_misses));
  }
  if (client_update_commits > 0 || client_update_rejects > 0) {
    out += StrFormat(" clientUpdateCommits=%llu clientUpdateRejects=%llu",
                     static_cast<unsigned long long>(client_update_commits),
                     static_cast<unsigned long long>(client_update_rejects));
  }
  if (abort_causes.TotalAborts() > 0 || abort_causes.Count(AbortCause::kCensored) > 0) {
    out += StrFormat(" aborts(%s)", abort_causes.ToString().c_str());
  }
  if (delta_cycles > 0) {
    out += StrFormat(" deltaCycles=%llu refreshes=%llu deltaBits=%llu fullBits=%llu stalls=%llu",
                     static_cast<unsigned long long>(delta_cycles),
                     static_cast<unsigned long long>(delta_refresh_cycles),
                     static_cast<unsigned long long>(delta_control_bits),
                     static_cast<unsigned long long>(full_control_bits),
                     static_cast<unsigned long long>(delta_stall_waits));
  }
  if (matrix_cycles > 0) {
    out += StrFormat(" matrixNnz=%llu matrixBytes/cycle=%.3e",
                     static_cast<unsigned long long>(matrix_nnz),
                     matrix_control_bytes_per_cycle);
    if (sparse_compaction_drops > 0) {
      out += StrFormat(" compactionDrops=%llu",
                       static_cast<unsigned long long>(sparse_compaction_drops));
    }
    if (hier_groups > 0) {
      out += StrFormat(
          " hier(g=%u refined=%u refines=%llu coarsens=%llu regroups=%llu splits=%llu "
          "merges=%llu spurious=%llu)",
          hier_groups, hier_refined_columns,
          static_cast<unsigned long long>(hier.refinements),
          static_cast<unsigned long long>(hier.coarsenings),
          static_cast<unsigned long long>(hier.regroups),
          static_cast<unsigned long long>(hier.group_splits),
          static_cast<unsigned long long>(hier.group_merges),
          static_cast<unsigned long long>(hier.spurious_aborts));
    }
  }
  if (channel.frames_sent > 0) {
    out += StrFormat(
        " channel(sent=%llu dropped=%llu corrupted=%llu rejected=%llu stalls=%llu "
        "resyncs=%llu desyncs=%llu lossAborts=%llu)",
        static_cast<unsigned long long>(channel.frames_sent),
        static_cast<unsigned long long>(channel.frames_dropped),
        static_cast<unsigned long long>(channel.frames_corrupted + channel.frames_truncated),
        static_cast<unsigned long long>(channel.frames_rejected),
        static_cast<unsigned long long>(channel.stalls),
        static_cast<unsigned long long>(channel.resyncs),
        static_cast<unsigned long long>(channel.tracker_desyncs),
        static_cast<unsigned long long>(channel.loss_attributed_aborts));
  }
  return out;
}

void SimMetrics::RecordClientTxn(SimTime submit, SimTime commit, uint32_t restarts,
                                 bool censored) {
  ++total_txns_;
  censored_ += censored;
  if (total_txns_ <= warmup_txns_) return;
  const double response = static_cast<double>(commit - submit);
  response_.Add(response);
  // Algorithm R reservoir: exact while under capacity, then each later
  // response replaces a uniformly random slot with probability cap/seen. The
  // RNG is fixed-seeded and consumed only on the over-capacity path, so runs
  // that never exceed the reservoir are bit-identical to the old exact sort.
  ++reservoir_seen_;
  if (responses_.size() < kReservoirCapacity) {
    responses_.push_back(response);
  } else {
    const uint64_t slot = reservoir_rng_.NextBounded(reservoir_seen_);
    if (slot < kReservoirCapacity) responses_[slot] = response;
  }
  restarts_.Add(static_cast<double>(restarts));
  total_restarts_measured_ += restarts;
}

SimSummary SimMetrics::Summarize(uint64_t cycles, SimTime end_time, uint64_t cache_hits,
                                 uint64_t cache_misses) const {
  SimSummary s;
  s.mean_response_time = response_.mean();
  s.response_ci_half_width = response_.ConfidenceHalfWidth(0.95);
  s.restart_ratio = restarts_.mean();
  s.measured_txns = response_.count();
  s.total_txns = total_txns_;
  s.total_restarts = total_restarts_measured_;
  s.cycles_elapsed = cycles;
  s.server_commits = server_commits_;
  s.sim_end_time = end_time;
  s.censored_txns = censored_;
  s.cache_hits = cache_hits;
  s.cache_misses = cache_misses;
  s.client_update_commits = client_update_commits_;
  s.client_update_rejects = client_update_rejects_;
  s.delta_cycles = delta_cycles_;
  s.delta_refresh_cycles = delta_refresh_cycles_;
  s.delta_control_bits = delta_control_bits_;
  s.full_control_bits = full_control_bits_;
  s.delta_stall_waits = delta_stall_waits_;
  s.matrix_cycles = matrix_cycles_;
  s.matrix_control_bits = matrix_control_bits_;
  if (matrix_cycles_ > 0) {
    s.matrix_control_bytes_per_cycle =
        static_cast<double>(matrix_control_bits_) / 8.0 / static_cast<double>(matrix_cycles_);
  }
  s.sparse_compaction_drops = sparse_compaction_drops_;
  s.channel = channel_;
  s.abort_causes = abort_causes_;
  if (!responses_.empty()) {
    std::vector<double> sorted = responses_;
    std::sort(sorted.begin(), sorted.end());
    auto quantile = [&sorted](double p) {
      const size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
      return sorted[idx];
    };
    s.response_p50 = quantile(0.5);
    s.response_p95 = quantile(0.95);
  }
  return s;
}

std::string SimSummary::ToJson() const {
  JsonWriter w;
  w.BeginObject()
      .Key("mean_response_time")
      .Value(mean_response_time)
      .Key("response_ci_half_width")
      .Value(response_ci_half_width)
      .Key("response_p50")
      .Value(response_p50)
      .Key("response_p95")
      .Value(response_p95)
      .Key("restart_ratio")
      .Value(restart_ratio)
      .Key("measured_txns")
      .Value(measured_txns)
      .Key("total_txns")
      .Value(total_txns)
      .Key("total_restarts")
      .Value(total_restarts)
      .Key("cycles_elapsed")
      .Value(cycles_elapsed)
      .Key("server_commits")
      .Value(server_commits)
      .Key("sim_end_time")
      .Value(sim_end_time)
      .Key("censored_txns")
      .Value(censored_txns)
      .Key("cache_hits")
      .Value(cache_hits)
      .Key("cache_misses")
      .Value(cache_misses)
      .Key("client_update_commits")
      .Value(client_update_commits)
      .Key("client_update_rejects")
      .Value(client_update_rejects)
      .Key("delta_cycles")
      .Value(delta_cycles)
      .Key("delta_refresh_cycles")
      .Value(delta_refresh_cycles)
      .Key("delta_control_bits")
      .Value(delta_control_bits)
      .Key("full_control_bits")
      .Value(full_control_bits)
      .Key("delta_stall_waits")
      .Value(delta_stall_waits)
      .Key("matrix_nnz")
      .Value(matrix_nnz)
      .Key("matrix_cycles")
      .Value(matrix_cycles)
      .Key("matrix_control_bits")
      .Value(matrix_control_bits)
      .Key("matrix_control_bytes_per_cycle")
      .Value(matrix_control_bytes_per_cycle)
      .Key("sparse_compaction_drops")
      .Value(sparse_compaction_drops);
  w.Key("hier")
      .BeginObject()
      .Key("groups")
      .Value(hier_groups)
      .Key("refined_columns")
      .Value(hier_refined_columns)
      .Key("refinements")
      .Value(hier.refinements)
      .Key("coarsenings")
      .Value(hier.coarsenings)
      .Key("regroups")
      .Value(hier.regroups)
      .Key("group_splits")
      .Value(hier.group_splits)
      .Key("group_merges")
      .Value(hier.group_merges)
      .Key("spurious_aborts")
      .Value(hier.spurious_aborts)
      .Key("group_rebuilds")
      .Value(hier.group_rebuilds)
      .EndObject();
  w.Key("abort_causes").BeginObject();
  for (size_t c = 1; c < kNumAbortCauses; ++c) {
    w.Key(AbortCauseName(static_cast<AbortCause>(c))).Value(abort_causes.counts[c]);
  }
  w.Key("total").Value(abort_causes.TotalAborts()).EndObject();
  w.Key("channel")
      .BeginObject()
      .Key("frames_sent")
      .Value(channel.frames_sent)
      .Key("frames_dropped")
      .Value(channel.frames_dropped)
      .Key("frames_corrupted")
      .Value(channel.frames_corrupted)
      .Key("frames_truncated")
      .Value(channel.frames_truncated)
      .Key("frames_delivered")
      .Value(channel.frames_delivered)
      .Key("frames_rejected")
      .Value(channel.frames_rejected)
      .Key("frames_delivered_corrupt")
      .Value(channel.frames_delivered_corrupt)
      .Key("data_losses")
      .Value(channel.data_losses)
      .Key("control_losses")
      .Value(channel.control_losses)
      .Key("stalls")
      .Value(channel.stalls)
      .Key("resyncs")
      .Value(channel.resyncs)
      .Key("tracker_desyncs")
      .Value(channel.tracker_desyncs)
      .Key("loss_attributed_aborts")
      .Value(channel.loss_attributed_aborts)
      .EndObject();
  w.EndObject();
  return std::move(w).Take();
}

}  // namespace bcc
