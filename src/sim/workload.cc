#include "sim/workload.h"

#include <algorithm>
#include <cmath>

namespace bcc {

namespace {

// Rounds a positive double delay to an integer number of bit-units, at
// least 1 to keep event times strictly advancing where it matters.
SimTime RoundDelay(double d) {
  if (d < 1.0) return 1;
  return static_cast<SimTime>(std::llround(d));
}

// One uniform-or-skewed object draw: with probability `hot_fraction` from
// the hot set [0, hot_set_size), else from the cold remainder. Negative
// fraction (or degenerate hot set) means uniform over everything.
ObjectId SampleObject(const SimConfig& c, double hot_fraction, Rng* rng) {
  if (hot_fraction < 0.0 || c.hot_set_size == 0 || c.hot_set_size >= c.num_objects) {
    return static_cast<ObjectId>(rng->NextBounded(c.num_objects));
  }
  if (rng->NextBernoulli(hot_fraction)) {
    return static_cast<ObjectId>(rng->NextBounded(c.hot_set_size));
  }
  return static_cast<ObjectId>(c.hot_set_size +
                               rng->NextBounded(c.num_objects - c.hot_set_size));
}

// k distinct draws via rejection (k is tiny relative to the database).
std::vector<ObjectId> SampleDistinct(const SimConfig& c, double hot_fraction, uint32_t k,
                                     Rng* rng) {
  std::vector<ObjectId> out;
  out.reserve(k);
  while (out.size() < k) {
    const ObjectId ob = SampleObject(c, hot_fraction, rng);
    if (std::find(out.begin(), out.end(), ob) == out.end()) out.push_back(ob);
  }
  return out;
}

}  // namespace

ServerWorkload::ServerWorkload(const SimConfig& config, Rng rng, TxnId first_id)
    : config_(config), rng_(rng), next_id_(first_id) {}

ServerTxn ServerWorkload::NextTxn() {
  ServerTxn txn;
  txn.id = next_id_++;
  for (;;) {
    txn.read_set.clear();
    txn.write_set.clear();
    for (uint32_t op = 0; op < config_.server_txn_length; ++op) {
      const ObjectId ob = SampleObject(config_, config_.server_hot_access_fraction, &rng_);
      const bool is_read = rng_.NextBernoulli(config_.server_read_probability);
      auto& set = is_read ? txn.read_set : txn.write_set;
      if (std::find(set.begin(), set.end(), ob) == set.end()) set.push_back(ob);
    }
    if (!txn.write_set.empty()) break;  // must be an update transaction
  }
  return txn;
}

SimTime ServerWorkload::NextInterval() {
  if (!config_.server_interval_exponential) return config_.server_txn_interval;
  return RoundDelay(rng_.NextExponential(static_cast<double>(config_.server_txn_interval)));
}

ClientWorkload::ClientWorkload(const SimConfig& config, Rng rng)
    : config_(config), rng_(rng) {}

std::vector<ObjectId> ClientWorkload::NextReadSet() {
  return SampleDistinct(config_, config_.client_hot_access_fraction,
                        config_.client_txn_length, &rng_);
}

bool ClientWorkload::NextIsUpdate() {
  return rng_.NextBernoulli(config_.client_update_fraction);
}

std::vector<ObjectId> ClientWorkload::NextWriteSet() {
  return SampleDistinct(config_, config_.client_hot_access_fraction,
                        config_.client_update_writes, &rng_);
}

SimTime ClientWorkload::NextInterOpDelay() {
  return RoundDelay(rng_.NextExponential(static_cast<double>(config_.mean_inter_op_delay)));
}

SimTime ClientWorkload::NextInterTxnDelay() {
  return RoundDelay(rng_.NextExponential(static_cast<double>(config_.mean_inter_txn_delay)));
}

}  // namespace bcc
