// Simulation configuration (Table 1 of the paper).

#ifndef BCC_SIM_CONFIG_H_
#define BCC_SIM_CONFIG_H_

#include <string>
#include <string_view>

#include "channel/lossy_channel.h"
#include "common/status.h"
#include "des/event_queue.h"
#include "matrix/hier_matrix.h"
#include "matrix/wire.h"
#include "server/exec/scheme.h"

namespace bcc {

/// Server-side control-matrix representation (ROADMAP item 4, DESIGN.md §4l).
enum class MatrixMode {
  kDense,   ///< the paper's n x n FMatrix — the bit-exactness oracle
  kSparse,  ///< compressed-sparse-column SparseFMatrix, value-identical to
            ///< dense; O(nnz) maintenance/diffing, sparse control accounting
  kHier,    ///< hierarchical: coarse group columns, on-demand exact
            ///< refinement, adaptive g (conservative, NOT bit-identical)
};

std::string_view MatrixModeName(MatrixMode mode);

/// All knobs of the Section 4 simulation. Defaults are Table 1; time values
/// are bit-units (time to broadcast one bit). At 64 Kbit/s the default
/// inter-operation delay (65536) is 1 s and the inter-transaction delay
/// (131072) is 2 s.
struct SimConfig {
  Algorithm algorithm = Algorithm::kFMatrix;

  // ---- Table 1 parameters ----
  uint32_t client_txn_length = 4;      ///< reads per client transaction
  uint32_t server_txn_length = 8;      ///< read/write ops per server txn
  uint64_t server_txn_interval = 250000;  ///< bit-units between commits
  uint32_t num_objects = 300;
  uint64_t object_size_bits = 8 * 1024;   ///< 1 KB objects
  double server_read_probability = 0.5;
  uint64_t mean_inter_op_delay = 65536;    ///< exponential
  uint64_t mean_inter_txn_delay = 131072;  ///< exponential
  uint64_t restart_delay = 0;              ///< after an abort
  unsigned timestamp_bits = 8;

  // ---- run control ----
  uint32_t num_client_txns = 1000;  ///< total, all clients; paper: 1000
  uint32_t warmup_txns = 500;       ///< excluded from steady-state stats
  /// Concurrent clients. The paper uses one (read-only clients never
  /// interact); more are meaningful with client_update_fraction > 0.
  uint32_t num_clients = 1;
  uint64_t seed = 42;
  /// Exponential server inter-commit times (a Poisson completion process);
  /// false = deterministic spacing.
  bool server_interval_exponential = true;
  /// Round-trip every consulted control stamp through the TS-bit modulo
  /// wire codec, as the real protocol would.
  bool use_wire_codec = true;
  /// Censoring guard for pathological configurations (e.g. Datacycle with
  /// very long client transactions): a transaction is force-completed after
  /// this many aborts and flagged in the metrics.
  uint32_t max_restarts_per_txn = 200000;

  // ---- extensions ----
  /// Group-matrix spectrum (Section 3.2.2): 0 = the algorithm's natural
  /// granularity (n for F-Matrix, 1 for R-Matrix/Datacycle); otherwise the
  /// number of groups g for an F-Matrix-style grouped protocol.
  uint32_t num_groups = 0;
  /// Client update transactions (Section 3.2.1 client functionality /
  /// Section 5 future work): fraction of client transactions that buffer
  /// writes locally and commit through the server's optimistic validator
  /// over the uplink. 0 = the paper's evaluation setting (read-only only).
  double client_update_fraction = 0.0;
  /// Objects written by a client update transaction (chosen uniformly).
  uint32_t client_update_writes = 2;
  /// One-way uplink latency in bit-units for the commit request/response.
  uint64_t uplink_delay = 4096;
  /// Multi-speed broadcast disk (Section 2.1 scoping lifted): objects
  /// [0, hot_set_size) appear hot_broadcast_frequency times per major
  /// cycle. hot_set_size = 0 keeps the paper's single-speed disk.
  uint32_t hot_set_size = 0;
  uint32_t hot_broadcast_frequency = 1;
  /// Access skew: probability that a client read (resp. server operation)
  /// targets the hot set. Negative = uniform over the whole database.
  double client_hot_access_fraction = -1.0;
  double server_hot_access_fraction = -1.0;
  /// Client quasi-cache (Section 3.3).
  bool enable_cache = false;
  size_t cache_capacity = 0;          ///< 0 = unbounded
  SimTime cache_currency_bound = 0;   ///< T in bit-units
  /// Snapshot+delta control broadcast (Section 3.2.1 delta transmission):
  /// the server ships per-cycle sparse deltas of the F-Matrix plus a full
  /// refresh every delta_refresh_period cycles; clients validate against a
  /// locally reconstructed matrix. Requires kFMatrix, ungrouped, the wire
  /// codec, and no cache. Slot geometry (and hence all timing) is unchanged;
  /// the control-bit savings are reported in the metrics.
  bool delta_broadcast = false;
  uint64_t delta_refresh_period = 8;   ///< in [1, 2^ts - 1]
  /// Test knob: at the start of this cycle every client's tracker is forced
  /// to desync, exercising the stall-until-refresh fallback (0 = never).
  uint64_t delta_desync_at_cycle = 0;
  /// Lossy broadcast channel (src/channel/): packetize every cycle's
  /// broadcast into CRC-framed fixed-size frames and deliver them to each
  /// client through a per-client fault-injecting channel; clients read data
  /// pages and control info from their receiver's reassembly instead of the
  /// in-process snapshot. Requires kFMatrix, ungrouped, the wire codec, no
  /// cache, and read-only clients. With all fault rates 0 the decision logs
  /// are bit-exact with the direct path (CrossCheckLossless).
  bool channel_broadcast = false;
  uint64_t channel_frame_bits = 512;  ///< frame size incl. header + CRC
  double channel_loss_rate = 0.0;
  double channel_corrupt_rate = 0.0;
  double channel_truncate_rate = 0.0;
  /// Gilbert–Elliott burst loss: while in the Bad state frames drop at
  /// channel_burst_loss_rate instead of channel_loss_rate.
  bool channel_burst = false;
  double channel_burst_loss_rate = 0.9;
  double channel_burst_enter_rate = 0.02;
  double channel_burst_exit_rate = 0.25;

  /// Control-matrix representation. kSparse requires an F-family algorithm,
  /// ungrouped control, and no client cache; every decision stays
  /// bit-identical to kDense (CrossCheckSparseMode). kHier additionally
  /// requires kFMatrix, the sequential update scheme, read-only clients, and
  /// no delta/channel broadcast; it is conservative rather than
  /// bit-identical (spurious aborts only). The sim_cli spelling is
  /// --matrix=dense|sparse|group:g|hier, where group:g is sugar for kDense
  /// with num_groups = g (the fixed-g paper path; see ParseMatrixOption).
  MatrixMode matrix_mode = MatrixMode::kDense;
  /// Sparse wraparound compaction: every this many cycles, rewrite entries to
  /// their windowed decode and drop the ones matching the column floor
  /// (SparseFMatrix::CompactModulo). 0 = off. Compacted values stay congruent
  /// mod 2^ts and >= the exact values, but the server's dependency fold can
  /// mix aliased and in-window values, so compacted runs are conservative
  /// (spurious aborts only; audited by VerifyOracle) rather than
  /// bit-identical to dense. Requires use_wire_codec, matrix_mode == kSparse,
  /// and no delta broadcast (the delta base diffs by value).
  uint64_t sparse_compaction_period = 0;
  /// Hierarchical-matrix policy knobs (HierMatrixOptions mirror).
  uint32_t hier_initial_groups = 64;
  uint32_t hier_min_groups = 1;
  uint32_t hier_max_groups = 1u << 16;
  uint32_t hier_refine_limit = 1024;
  uint32_t hier_coarsen_idle_cycles = 64;
  uint32_t hier_regroup_period = 32;
  uint64_t hier_split_threshold = 4;

  /// The hier knobs above as HierMatrixOptions.
  HierMatrixOptions HierOptions() const;

  /// The channel knobs above as a ChannelFaultConfig.
  ChannelFaultConfig ChannelFaults() const;

  /// Parallel update engine (src/server/exec/, DESIGN.md §4h): how the
  /// server executes its update transactions. kSequential is the paper's
  /// serial path (commits applied at their generated event times). Any other
  /// scheme defers each broadcast cycle's server transactions to a
  /// thread-pooled TxnProcessor and folds the scheme's serialization order
  /// into the manager at the cycle boundary — before the next cycle's
  /// snapshot, so clients observe exactly the same cycle-granular state
  /// visibility as the serial path. Requires read-only clients
  /// (client_update_fraction == 0): the uplink validator consults the MC
  /// vector mid-cycle, which a deferred batch would falsify.
  UpdateScheme update_scheme = UpdateScheme::kSequential;
  /// Worker threads for the pooled engine (update_scheme != kSequential).
  uint32_t update_workers = 4;

  // ---- test instrumentation ----
  /// Record the full update history plus client reads so the run can be
  /// replayed through the APPROX/legality oracles. Use small configs only.
  bool record_history = false;
  /// Stop the run at the end of broadcast cycle `stop_after_cycles` instead
  /// of after num_client_txns completions (0 = disabled). A cycle boundary
  /// is a timing-independent cutoff, so two engines given the same seed
  /// observe exactly the same prefix of every client's transaction stream —
  /// the contract the sequential/concurrent cross-check relies on.
  uint64_t stop_after_cycles = 0;
  /// Keep a per-client log of TxnDecision records (sim/metrics.h) for
  /// engine cross-checks. Use small configs only.
  bool record_decisions = false;
  /// Per-track ring capacity used when a Tracer is attached to an engine
  /// (sim_cli --trace-capacity). Purely observational — changing it never
  /// changes decisions; when no tracer is attached it is unused.
  size_t trace_capacity = 4096;

  /// Parameter sanity checks.
  Status Validate() const;

  /// Broadcast-cycle geometry induced by the algorithm and sizes.
  BroadcastGeometry Geometry() const;

  /// One-line description for bench output headers.
  std::string ToString() const;
};

/// Parses the --matrix=dense|sparse|group:<g>|hier spelling into
/// config->matrix_mode (and num_groups for group:<g>).
Status ParseMatrixOption(std::string_view value, SimConfig* config);

}  // namespace bcc

#endif  // BCC_SIM_CONFIG_H_
