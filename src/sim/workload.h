// Workload generators for the Section 4 simulation. Object choices are
// uniform over the database, as in the paper.

#ifndef BCC_SIM_WORKLOAD_H_
#define BCC_SIM_WORKLOAD_H_

#include <vector>

#include "common/rng.h"
#include "des/event_queue.h"
#include "server/txn_manager.h"
#include "sim/config.h"

namespace bcc {

/// Generates the server's update-transaction stream: each transaction has
/// `server_txn_length` operations, each independently a read with
/// probability `server_read_probability` (else a write) on a uniformly
/// chosen object; duplicate choices collapse into the read/write sets. A
/// transaction with no writes is re-rolled into having one (the server
/// stream models *update* transactions).
class ServerWorkload {
 public:
  ServerWorkload(const SimConfig& config, Rng rng, TxnId first_id = 1);

  /// Next transaction in the stream.
  ServerTxn NextTxn();

  /// Bit-units until the next transaction completes at the server.
  SimTime NextInterval();

 private:
  const SimConfig config_;
  Rng rng_;
  TxnId next_id_;
};

/// Generates client read-only transactions: `client_txn_length` distinct
/// uniformly chosen objects, plus the exponential think times of Table 1.
class ClientWorkload {
 public:
  ClientWorkload(const SimConfig& config, Rng rng);

  /// Object sequence of the next transaction (fixed across restarts: the
  /// transaction is a deterministic program).
  std::vector<ObjectId> NextReadSet();

  /// Whether the next client transaction is an update (client_update_fraction).
  bool NextIsUpdate();

  /// Write set of a client update transaction (distinct uniform objects).
  std::vector<ObjectId> NextWriteSet();

  SimTime NextInterOpDelay();
  SimTime NextInterTxnDelay();

 private:
  const SimConfig config_;
  Rng rng_;
};

}  // namespace bcc

#endif  // BCC_SIM_WORKLOAD_H_
