#include "sim/concurrent_sim.h"

#include <atomic>
#include <barrier>
#include <cassert>
#include <limits>
#include <thread>

#include "client/read_txn.h"
#include "client/receiver.h"
#include "common/format.h"
#include "sim/broadcast_sim.h"

namespace bcc {

namespace {

// The DES fires events in (time, insertion-order) order, which matters in
// exactly one place: an event landing on a cycle boundary k*L fires before
// the boundary's cycle-flip iff it was inserted before the flip was — and
// the flip at k*L is inserted at (k-1)*L, by the previous flip's handler.
// An event is inserted the moment its parent event fires, so the rule is
// recursive in the parent's own boundary side. Replaying it per event keeps
// every thread's private timeline bit-identical to the DES without a queue.
bool FiresBeforeFlip(SimTime at, SimTime parent_time, bool parent_pre_flip, SimTime cycle_bits) {
  if (at == 0 || at % cycle_bits != 0) return false;  // not on a boundary
  const SimTime flip_inserted = at - cycle_bits;
  return parent_time < flip_inserted ||
         (parent_time == flip_inserted && parent_pre_flip);
}

// The broadcast cycle an event belongs to: events on a boundary fire in the
// old cycle when they beat the flip, in the new cycle otherwise.
Cycle PhaseOf(SimTime at, bool pre_flip, SimTime cycle_bits) {
  return pre_flip ? at / cycle_bits : at / cycle_bits + 1;
}

}  // namespace

/// Per-client thread state. Everything here is owned by one client thread
/// for the duration of the run; the only cross-thread traffic is the
/// published snapshot (read) and the completion counter (fetch_add).
struct ConcurrentSim::ClientState {
  enum class Kind {
    kSubmit,
    kBeginRead,
    kRead,
    kUplink,       ///< update txn: ship reads+writes to the validator desk
    kUplinkDone,   ///< accepted; the client learns one uplink delay later
    kUplinkAbort,  ///< rejected; the abort fires one uplink delay later
  };
  struct Event {
    Kind kind;
    SimTime time;
    bool pre_flip;  // fires before the cycle flip at `time` (boundaries only)
  };

  ClientState(const SimConfig& config, Rng rng, std::optional<CycleStampCodec> codec)
      : workload(config, rng), protocol(config.algorithm, codec) {
    // Run rejects the cache, so the O(n) per-read column capture is never
    // consulted; skipping it mirrors the DES client (decisions unaffected).
    protocol.set_capture_columns(config.enable_cache);
    if (config.channel_broadcast) {
      // Full control mode only (Run rejects delta): the receiver's matrix
      // and values back the protocol, exactly as in the DES.
      receiver = std::make_unique<ChannelReceiver>(
          config.num_objects,
          FrameCodec(CycleStampCodec(config.timestamp_bits), config.channel_frame_bits),
          /*tracker=*/nullptr);
      protocol.set_value_override(&receiver->values());
      protocol.set_control_override(&receiver->matrix());
    }
  }

  ClientWorkload workload;
  ReadOnlyTxnProtocol protocol;
  /// Channel-mode frame reassembly; owned and touched by this thread only.
  std::unique_ptr<ChannelReceiver> receiver;

  std::vector<ObjectId> read_set;
  std::vector<ObjectId> write_set;  // update txns: kept across restarts
  size_t read_idx = 0;
  uint32_t restarts = 0;
  bool is_update = false;
  /// Channel mode: did the current transaction attempt stall on loss?
  bool stalled_this_attempt = false;
  /// Rejection cause captured at the validator desk, consumed by the
  /// kUplinkAbort event one uplink delay later.
  AbortInfo uplink_reject;
  Event ev{Kind::kSubmit, 0, false};
  /// This thread's trace ring (null when tracing is off); single-writer.
  TraceRing* trace = nullptr;

  std::vector<TxnDecision> decisions;
  uint64_t completed = 0;
  uint64_t censored = 0;
  uint64_t total_restarts = 0;
  uint64_t update_commits = 0;
  uint64_t update_rejects = 0;
  /// Per-thread abort attribution, merged into the summary after join.
  AbortBreakdown abort_causes;
};

ConcurrentSim::ConcurrentSim(SimConfig config)
    : config_(std::move(config)), geometry_(config_.Geometry()) {}

ConcurrentSim::~ConcurrentSim() = default;

void ConcurrentSim::ProcessClientPhase(ClientState& cs, Cycle phase, const CycleSnapshot& snap) {
  assert(snap.cycle == phase);
  using Kind = ClientState::Kind;
  const SimTime cycle_start = (phase - 1) * cycle_bits_;
  const BroadcastSchedule& schedule = server_->schedule();

  while (PhaseOf(cs.ev.time, cs.ev.pre_flip, cycle_bits_) == phase) {
    const SimTime t = cs.ev.time;
    const bool pre = cs.ev.pre_flip;
    const auto schedule_next = [&](Kind kind, SimTime at) {
      cs.ev = ClientState::Event{kind, at, FiresBeforeFlip(at, t, pre, cycle_bits_)};
    };
    const auto complete_txn = [&](bool censored) {
      if (config_.record_decisions) {
        cs.decisions.push_back(TxnDecision{cs.protocol.reads(), cs.restarts, censored});
      }
      // Censoring is counted in ADDITION to the final attempt's abort cause,
      // mirroring the sequential engine's accounting exactly.
      if (censored) cs.abort_causes.Record(AbortCause::kCensored);
      if (cs.trace != nullptr) {
        TraceEvent e;
        e.type = censored ? TraceEventType::kAbort : TraceEventType::kCommit;
        e.time = t;
        e.cycle = phase;
        e.value = cs.protocol.reads().size();
        if (censored) e.abort.cause = AbortCause::kCensored;
        cs.trace->Record(e);
      }
      ++cs.completed;
      cs.censored += censored ? 1 : 0;
      cs.total_restarts += cs.restarts;
      completions_.fetch_add(1, std::memory_order_relaxed);
      cs.protocol.Reset();
      schedule_next(Kind::kSubmit, t + cs.workload.NextInterTxnDelay());
    };

    switch (cs.ev.kind) {
      case Kind::kSubmit: {
        cs.read_set = cs.workload.NextReadSet();
        // Same RNG draw order as BroadcastSim::SubmitClientTxn: the update
        // coin and write set are drawn only when uplink mode is on.
        cs.is_update = validator_ != nullptr && cs.workload.NextIsUpdate();
        cs.write_set = cs.is_update ? cs.workload.NextWriteSet() : std::vector<ObjectId>{};
        cs.read_idx = 0;
        cs.restarts = 0;
        cs.stalled_this_attempt = false;
        cs.protocol.Reset();
        schedule_next(Kind::kBeginRead, t + cs.workload.NextInterOpDelay());
        break;
      }
      case Kind::kBeginRead: {
        // Mirrors BroadcastServer::NextSlotEnd against this phase's window.
        const ObjectId ob = cs.read_set[cs.read_idx];
        const SimTime offset = t - cycle_start;
        const SimTime slot_bits = geometry_.slot_bits;
        const size_t min_slot =
            offset <= slot_bits ? 0 : static_cast<size_t>((offset - 1) / slot_bits);
        const int64_t slot = schedule.NextSlotOf(ob, min_slot);
        if (slot >= 0) {
          schedule_next(Kind::kRead,
                        cycle_start + static_cast<SimTime>(slot + 1) * slot_bits);
        } else {
          // No appearance of `ob` remains this cycle: its first slot of the
          // next one.
          const uint32_t first_slot = schedule.SlotsOf(ob).front();
          schedule_next(Kind::kRead, cycle_start + cycle_bits_ +
                                         static_cast<SimTime>(first_slot + 1) * slot_bits);
        }
        break;
      }
      case Kind::kRead: {
        const ObjectId ob = cs.read_set[cs.read_idx];
        if (cs.receiver != nullptr &&
            (!cs.receiver->ControlUsable(ob, phase) || !cs.receiver->DataUsable(ob, phase))) {
          // The slot's data page or control column was lost this cycle:
          // missed cycle. Stall until the object's first slot of the next
          // cycle (mirrors the DES's stall retry); never validate against a
          // stale snapshot.
          cs.receiver->RecordStall();
          cs.stalled_this_attempt = true;
          if (cs.trace != nullptr) {
            TraceEvent e;
            e.type = TraceEventType::kStall;
            e.time = t;
            e.cycle = phase;
            e.object = ob;
            e.value = kStallChannelLoss;
            cs.trace->Record(e);
          }
          const uint32_t first_slot = schedule.SlotsOf(ob).front();
          schedule_next(Kind::kRead, cycle_start + cycle_bits_ +
                                         static_cast<SimTime>(first_slot + 1) *
                                             geometry_.slot_bits);
          break;
        }
        const auto value = cs.protocol.Read(snap, ob);
        if (cs.trace != nullptr) {
          TraceEvent e;
          e.type = TraceEventType::kValidation;
          e.time = t;
          e.cycle = phase;
          e.object = ob;
          e.value = value.ok() ? 1 : 0;
          cs.trace->Record(e);
        }
        if (value.ok()) {
          if (cs.trace != nullptr) {
            TraceEvent e;
            e.type = TraceEventType::kRead;
            e.time = t;
            e.cycle = phase;
            e.object = ob;
            e.value = value->value;
            cs.trace->Record(e);
          }
          ++cs.read_idx;
          if (cs.read_idx == cs.read_set.size()) {
            if (cs.is_update) {
              // Ship the read records + write set to the validator desk one
              // uplink delay from now (mirrors BroadcastSim::OnReadSuccess).
              schedule_next(Kind::kUplink, t + config_.uplink_delay);
            } else {
              complete_txn(/*censored=*/false);  // read-only commit is local, free
            }
          } else {
            schedule_next(Kind::kBeginRead, t + cs.workload.NextInterOpDelay());
          }
        } else {
          // Same attribution precedence as BroadcastSim::OnReadAbort: a
          // loss-stalled attempt's abort is the channel's fault; otherwise
          // the protocol's captured cause stands.
          AbortInfo info = cs.protocol.last_abort();
          if (cs.receiver != nullptr && cs.stalled_this_attempt) {
            info.cause = AbortCause::kChannelLoss;
            cs.receiver->RecordLossAttributedAbort();
          }
          cs.abort_causes.Record(info.cause);
          if (cs.trace != nullptr) {
            TraceEvent e;
            e.type = TraceEventType::kAbort;
            e.time = t;
            e.cycle = phase;
            e.object = info.ob_j;
            e.abort = info;
            cs.trace->Record(e);
          }
          cs.stalled_this_attempt = false;
          ++cs.restarts;
          if (cs.restarts >= config_.max_restarts_per_txn) {
            complete_txn(/*censored=*/true);
          } else {
            cs.protocol.Reset();
            cs.read_idx = 0;
            schedule_next(Kind::kBeginRead,
                          t + config_.restart_delay + cs.workload.NextInterOpDelay());
          }
        }
        break;
      }
      case Kind::kUplink: {
        // The validator desk: one client at a time validates against the
        // merged (manager MC, overlay) view and — on acceptance — stages its
        // writes and queues for the fold's serial prefix. The manager is
        // never mutated mid-phase, so the MC read under the desk lock is
        // race-free against the server thread.
        bool accepted;
        AbortInfo reject;
        {
          std::lock_guard<std::mutex> lock(uplink_mu_);
          ClientUpdateRequest request;
          request.id = next_client_update_id_++;
          request.reads = cs.protocol.reads();
          request.writes = cs.write_set;
          const auto verdict = validator_->ValidateAndCommit(request, phase);
          accepted = verdict.ok();
          if (!accepted) reject = validator_->last_reject();
        }
        if (cs.trace != nullptr) {
          TraceEvent e;
          e.type = TraceEventType::kValidation;
          e.time = t;
          e.cycle = phase;
          e.value = accepted ? 1 : 0;
          cs.trace->Record(e);
        }
        // The client learns the outcome one uplink delay later.
        if (accepted) {
          ++cs.update_commits;
          schedule_next(Kind::kUplinkDone, t + config_.uplink_delay);
        } else {
          ++cs.update_rejects;
          cs.uplink_reject = reject;
          schedule_next(Kind::kUplinkAbort, t + config_.uplink_delay);
        }
        break;
      }
      case Kind::kUplinkDone: {
        complete_txn(/*censored=*/false);
        break;
      }
      case Kind::kUplinkAbort: {
        const AbortInfo info = cs.uplink_reject;
        cs.abort_causes.Record(info.cause);
        if (cs.trace != nullptr) {
          TraceEvent e;
          e.type = TraceEventType::kAbort;
          e.time = t;
          e.cycle = phase;
          e.object = info.ob_j;
          e.abort = info;
          cs.trace->Record(e);
        }
        ++cs.restarts;
        if (cs.restarts >= config_.max_restarts_per_txn) {
          complete_txn(/*censored=*/true);
        } else {
          cs.protocol.Reset();
          cs.read_idx = 0;
          schedule_next(Kind::kBeginRead,
                        t + config_.restart_delay + cs.workload.NextInterOpDelay());
        }
        break;
      }
    }
  }
}

void ConcurrentSim::ProcessServerPhase(Cycle phase) {
  while (PhaseOf(next_commit_time_, next_commit_pre_flip_, cycle_bits_) == phase) {
    const ServerTxn txn = server_workload_->NextTxn();
    if (txn_processor_ != nullptr) {
      pending_server_txns_.push_back(txn);
    } else {
      manager_->ExecuteAndCommit(txn, phase);
    }
    ++server_commits_;
    if (server_trace_ != nullptr) {
      TraceEvent e;
      e.type = TraceEventType::kCommit;
      e.time = next_commit_time_;
      e.cycle = phase;
      e.value = txn.id;
      server_trace_->Record(e);
    }
    const SimTime prev = next_commit_time_;
    const bool prev_pre = next_commit_pre_flip_;
    next_commit_time_ = prev + server_workload_->NextInterval();
    next_commit_pre_flip_ = FiresBeforeFlip(next_commit_time_, prev, prev_pre, cycle_bits_);
  }
  // Pooled mode: execute the phase's staged transactions concurrently and
  // fold the serialization order now — still before the work barrier, so the
  // snapshot published in the exclusive section reflects every commit of
  // this phase (the same cycle-granular visibility as the serial path).
  if (txn_processor_ != nullptr && !pending_server_txns_.empty()) {
    const std::vector<CommittedServerTxn> committed =
        txn_processor_->ExecuteBatch(pending_server_txns_);
    FoldIntoManager(committed, *manager_, phase);
    pending_server_txns_.clear();
  }
}

void ConcurrentSim::StageServerPhase(Cycle phase) {
  // Uplink mode: runs inside the exclusive section preceding the phase, so
  // by the time client threads validate uplinks against the overlay, every
  // server transaction of their cycle is already staged (conservative
  // relative to the DES's event-time staging, and immutable all phase).
  while (PhaseOf(next_commit_time_, next_commit_pre_flip_, cycle_bits_) == phase) {
    const ServerTxn txn = server_workload_->NextTxn();
    mc_overlay_->Stage(txn.write_set, phase);
    pending_server_txns_.push_back(txn);
    ++server_commits_;
    if (server_trace_ != nullptr) {
      TraceEvent e;
      e.type = TraceEventType::kCommit;
      e.time = next_commit_time_;
      e.cycle = phase;
      e.value = txn.id;
      server_trace_->Record(e);
    }
    const SimTime prev = next_commit_time_;
    const bool prev_pre = next_commit_pre_flip_;
    next_commit_time_ = prev + server_workload_->NextInterval();
    next_commit_pre_flip_ = FiresBeforeFlip(next_commit_time_, prev, prev_pre, cycle_bits_);
  }
}

void ConcurrentSim::FoldPhase(Cycle phase) {
  // Accepted uplinks first, serially, in acceptance order: validation
  // guaranteed each one's reads are disjoint from every write staged before
  // it was accepted, so the serial prefix places each uplink exactly where
  // the client's broadcast reads put it (see BroadcastSim::FlushServerBatch).
  if (!pending_uplink_txns_.empty()) {
    const std::vector<CommittedServerTxn> committed =
        txn_processor_->ExecuteSerial(pending_uplink_txns_);
    FoldIntoManager(committed, *manager_, phase);
    pending_uplink_txns_.clear();
  }
  if (!pending_server_txns_.empty()) {
    const std::vector<CommittedServerTxn> committed =
        txn_processor_->ExecuteBatch(pending_server_txns_);
    FoldIntoManager(committed, *manager_, phase);
    pending_server_txns_.clear();
  }
  mc_overlay_->Clear();
}

StatusOr<ConcurrentSummary> ConcurrentSim::Run() {
  if (ran_) return Status::FailedPrecondition("ConcurrentSim::Run may only be called once");
  ran_ = true;
  BCC_RETURN_IF_ERROR(config_.Validate());
  if (config_.enable_cache) {
    return Status::InvalidArgument("ConcurrentSim does not support the client cache yet");
  }
  if (config_.client_update_fraction > 0.0 &&
      config_.update_scheme == UpdateScheme::kSequential) {
    return Status::InvalidArgument(
        "ConcurrentSim supports client update transactions only with a pooled update "
        "scheme (sequential uplink commits would mutate the manager mid-phase)");
  }
  if (config_.delta_broadcast) {
    return Status::InvalidArgument(
        "ConcurrentSim does not support the snapshot+delta control broadcast yet");
  }
  if (config_.matrix_mode == MatrixMode::kHier) {
    return Status::InvalidArgument(
        "ConcurrentSim does not support matrix_mode=hier (the refinement policy is driven "
        "by the sequential DES)");
  }
  if (config_.sparse_compaction_period > 0) {
    return Status::InvalidArgument(
        "ConcurrentSim does not support sparse_compaction_period (compaction rewrites "
        "matrix values, which would break the cross-engine matrix comparison)");
  }

  // Setup mirrors BroadcastSim::Run — the root RNG split order is part of
  // the cross-engine contract.
  const bool f_family = config_.algorithm == Algorithm::kFMatrix ||
                        config_.algorithm == Algorithm::kFMatrixNo;
  const bool sparse_mode = config_.matrix_mode == MatrixMode::kSparse;
  TxnManagerOptions manager_options;
  manager_options.maintain_f_matrix = (f_family && !sparse_mode) || config_.record_history;
  manager_options.maintain_sparse_matrix = f_family && sparse_mode;
  manager_options.maintain_mc_vector = true;
  manager_options.record_history = config_.record_history;
  manager_ = std::make_unique<ServerTxnManager>(config_.num_objects, manager_options);

  server_ = std::make_unique<BroadcastServer>(config_.num_objects, geometry_);
  if (config_.hot_set_size > 0 && config_.hot_broadcast_frequency > 1) {
    std::vector<uint32_t> frequencies(config_.num_objects, 1);
    for (uint32_t i = 0; i < config_.hot_set_size; ++i) {
      frequencies[i] = config_.hot_broadcast_frequency;
    }
    BCC_ASSIGN_OR_RETURN(BroadcastSchedule schedule,
                         BroadcastSchedule::FromFrequencies(frequencies));
    server_->SetSchedule(std::move(schedule));
  }
  std::optional<ObjectPartition> partition;
  if (f_family && config_.num_groups > 0 && config_.num_groups < config_.num_objects) {
    partition = ObjectPartition::Blocks(config_.num_objects, config_.num_groups);
    server_->SetPartition(*partition);
  }

  Rng root(config_.seed);
  server_workload_ = std::make_unique<ServerWorkload>(config_, root.Split());
  if (config_.update_scheme != UpdateScheme::kSequential) {
    txn_processor_ = std::make_unique<TxnProcessor>(config_.num_objects, config_.update_scheme,
                                                    config_.update_workers);
    // Pooled-apply: the cycle-batch F-Matrix fold borrows the processor's
    // worker pool, partitioned by column (bit-identical to the serial fold).
    // The fold only ever runs in the exclusive section, when the pool is
    // otherwise idle.
    manager_->SetParallelFold(
        [this](uint32_t shards, const std::function<void(uint32_t)>& body) {
          txn_processor_->RunShards(shards, body);
        },
        config_.update_workers);
  }

  std::optional<CycleStampCodec> codec;
  if (config_.use_wire_codec) codec.emplace(config_.timestamp_bits);

  if (config_.client_update_fraction > 0.0) {
    validator_ = std::make_unique<UpdateValidator>(manager_.get());
    mc_overlay_ = std::make_unique<McOverlay>(config_.num_objects);
    next_client_update_id_ = 2 * kClientTxnIdBase;  // disjoint id range
    validator_->AttachStagedMode(mc_overlay_.get(), [this](ServerTxn&& txn) {
      pending_uplink_txns_.push_back(std::move(txn));
    });
  }

  clients_.clear();
  for (uint32_t c = 0; c < config_.num_clients; ++c) {
    clients_.push_back(std::make_unique<ClientState>(config_, root.Split(), codec));
  }
  if (tracer_ != nullptr) {
    // Track registration happens strictly before any thread spawns; after
    // this point each ring has exactly one writer for the whole run.
    server_trace_ = tracer_->AddTrack("server");
    for (size_t c = 0; c < clients_.size(); ++c) {
      clients_[c]->trace = tracer_->AddTrack(StrFormat("client%zu", c));
      if (clients_[c]->receiver != nullptr) {
        clients_[c]->receiver->set_trace_ring(clients_[c]->trace);
      }
    }
  }
  if (config_.channel_broadcast) {
    // Channel fault streams are seeded independently of the root RNG (see
    // LossyChannel), so client c's fault sequence here is bit-identical to
    // its sequence in the DES — the lossy cross-engine check depends on it.
    frame_codec_.emplace(CycleStampCodec(config_.timestamp_bits), config_.channel_frame_bits);
    channel_ = std::make_unique<LossyChannel>(config_.ChannelFaults(), config_.seed,
                                              config_.num_clients);
  }

  cycle_bits_ = server_->CycleLengthBits();
  const auto trace_cycle_start = [this](Cycle cycle) {
    if (server_trace_ == nullptr) return;
    TraceEvent slice;
    slice.type = TraceEventType::kCycleStart;
    slice.time = (cycle - 1) * cycle_bits_;
    slice.duration = cycle_bits_;
    slice.cycle = cycle;
    server_trace_->Record(slice);
    TraceEvent tx;
    tx.type = TraceEventType::kBroadcastTx;
    tx.time = slice.time;
    tx.cycle = cycle;
    tx.value = config_.num_objects;
    server_trace_->Record(tx);
  };
  server_->BeginCycle(1, 0, *manager_);
  trace_cycle_start(1);
  published_ = std::make_shared<const CycleSnapshot>(server_->snapshot());
  if (channel_ != nullptr) {
    published_frames_ = std::make_shared<const std::vector<Frame>>(
        EncodeCycleFrames(*published_, *frame_codec_, config_.object_size_bits));
  }

  next_commit_time_ = server_workload_->NextInterval();
  next_commit_pre_flip_ = FiresBeforeFlip(next_commit_time_, 0, false, cycle_bits_);
  for (auto& cs : clients_) {
    const SimTime at = cs->workload.NextInterTxnDelay();
    cs->ev = ClientState::Event{ClientState::Kind::kSubmit, at,
                                FiresBeforeFlip(at, 0, false, cycle_bits_)};
  }

  // Epoch loop. Per broadcast cycle k: client threads drain their cycle-k
  // events against the immutable published snapshot while the server thread
  // stages cycle-k commits; at the work barrier everyone is quiescent, the
  // server publishes the cycle-(k+1) snapshot and the stop verdict, and the
  // publish barrier releases the next epoch.
  completions_.store(0, std::memory_order_relaxed);
  std::barrier work_done(static_cast<std::ptrdiff_t>(config_.num_clients) + 1);
  std::barrier publish_done(static_cast<std::ptrdiff_t>(config_.num_clients) + 1);
  bool stop = false;

  // Uplink mode: cycle 1's server transactions are staged before any client
  // thread exists, so the overlay is complete and immutable for the whole
  // first phase (later phases stage in the preceding exclusive section).
  if (validator_ != nullptr) StageServerPhase(1);

  std::vector<std::jthread> threads;
  threads.reserve(config_.num_clients);
  for (uint32_t c = 0; c < config_.num_clients; ++c) {
    threads.emplace_back([this, c, &work_done, &publish_done, &stop] {
      ClientState& cs = *clients_[c];
      for (Cycle phase = 1;; ++phase) {
        const std::shared_ptr<const CycleSnapshot> snap = published_;
        if (cs.receiver != nullptr) {
          // Per-client fault link and receiver are thread-local; Transmit
          // only touches this client's RNG/burst state inside channel_.
          const std::shared_ptr<const std::vector<Frame>> frames = published_frames_;
          cs.receiver->IngestCycle(phase, channel_->Transmit(c, *frames),
                                   (phase - 1) * cycle_bits_);
        }
        ProcessClientPhase(cs, phase, *snap);
        work_done.arrive_and_wait();
        publish_done.arrive_and_wait();
        if (stop) break;
      }
    });
  }

  uint64_t cycles = 0;
  for (Cycle phase = 1;; ++phase) {
    // Uplink mode keeps the manager untouched during the work phase (desk
    // validations read its MC vector concurrently): this phase's server
    // transactions were already staged in the previous exclusive section,
    // and the fold below applies them after the work barrier.
    if (validator_ == nullptr) ProcessServerPhase(phase);
    work_done.arrive_and_wait();
    // Exclusive section: every client thread is parked between the two
    // barriers, so the snapshot swap and stop verdict are race-free.
    if (validator_ != nullptr) FoldPhase(phase);
    cycles = phase;
    stop = config_.stop_after_cycles > 0
               ? phase >= config_.stop_after_cycles
               : completions_.load(std::memory_order_relaxed) >= config_.num_client_txns;
    if (!stop) {
      server_->BeginCycle(phase + 1, phase * cycle_bits_, *manager_);
      trace_cycle_start(phase + 1);
      published_ = std::make_shared<const CycleSnapshot>(server_->snapshot());
      if (channel_ != nullptr) {
        published_frames_ = std::make_shared<const std::vector<Frame>>(
            EncodeCycleFrames(*published_, *frame_codec_, config_.object_size_bits));
      }
      if (validator_ != nullptr) StageServerPhase(phase + 1);
    }
    publish_done.arrive_and_wait();
    if (stop) break;
  }
  threads.clear();  // join

  ConcurrentSummary summary;
  summary.cycles = cycles;
  summary.server_commits = server_commits_;
  decisions_.clear();
  for (auto& cs : clients_) {
    summary.completed_txns += cs->completed;
    summary.censored_txns += cs->censored;
    summary.total_restarts += cs->total_restarts;
    summary.client_update_commits += cs->update_commits;
    summary.client_update_rejects += cs->update_rejects;
    summary.abort_causes.Accumulate(cs->abort_causes);
    if (cs->receiver != nullptr) summary.channel.Accumulate(cs->receiver->stats());
    if (config_.record_decisions) decisions_.push_back(std::move(cs->decisions));
  }
  // Mirror the DES accounting: accepted uplink transactions are server
  // commits (they enter the manager's committed stream).
  summary.server_commits += summary.client_update_commits;
  return summary;
}

Status CrossCheckEngines(SimConfig config) {
  if (config.stop_after_cycles == 0) {
    return Status::InvalidArgument("CrossCheckEngines requires stop_after_cycles > 0");
  }
  config.record_decisions = true;
  // Both engines must run the full cycle window; the transaction-count
  // cutoff would stop the DES at a timing-dependent point mid-cycle.
  config.num_client_txns = std::numeric_limits<uint32_t>::max();

  BroadcastSim sequential(config);
  BCC_ASSIGN_OR_RETURN(const SimSummary seq_summary, sequential.Run());
  ConcurrentSim concurrent(config);
  BCC_ASSIGN_OR_RETURN(const ConcurrentSummary conc_summary, concurrent.Run());

  // The abort-attribution tables must agree cause-by-cause: both engines
  // classify every abort at the same failing check, and neither filters by
  // warmup, so the breakdowns are bit-identical, not just statistically
  // close.
  if (!(seq_summary.abort_causes == conc_summary.abort_causes)) {
    return Status::Internal(StrFormat(
        "abort breakdowns diverged: sequential=(%s) concurrent=(%s)",
        seq_summary.abort_causes.ToString().c_str(),
        conc_summary.abort_causes.ToString().c_str()));
  }

  const auto& seq = sequential.decisions();
  const auto& conc = concurrent.decisions();
  if (seq.size() != conc.size()) {
    return Status::Internal(StrFormat("client count diverged: %zu vs %zu", seq.size(),
                                      conc.size()));
  }
  for (size_t c = 0; c < seq.size(); ++c) {
    if (seq[c].size() != conc[c].size()) {
      return Status::Internal(StrFormat("client %zu: %zu sequential vs %zu concurrent txns",
                                        c, seq[c].size(), conc[c].size()));
    }
    for (size_t i = 0; i < seq[c].size(); ++i) {
      if (!(seq[c][i] == conc[c][i])) {
        return Status::Internal(StrFormat(
            "client %zu txn %zu diverged: restarts %u/%u, censored %d/%d, reads %zu/%zu",
            c, i, seq[c][i].restarts, conc[c][i].restarts, seq[c][i].censored ? 1 : 0,
            conc[c][i].censored ? 1 : 0, seq[c][i].reads.size(), conc[c][i].reads.size()));
      }
    }
  }

  const ServerTxnManager& a = sequential.manager();
  const ServerTxnManager& b = concurrent.manager();
  if (a.num_committed() != b.num_committed()) {
    return Status::Internal(StrFormat("server commit count diverged: %zu vs %zu",
                                      a.num_committed(), b.num_committed()));
  }
  // Both engines ran the same config, so they maintain the same control
  // representation; the unmaintained one is size 0 on both sides and
  // compares trivially equal.
  if (!(a.f_matrix() == b.f_matrix())) {
    return Status::Internal("final F-Matrix diverged between engines");
  }
  if (!(a.sparse_f_matrix() == b.sparse_f_matrix())) {
    return Status::Internal("final sparse F-Matrix diverged between engines");
  }
  if (!(a.mc_vector() == b.mc_vector())) {
    return Status::Internal("final MC vector diverged between engines");
  }
  if (!(a.store().committed() == b.store().committed())) {
    return Status::Internal("final committed store diverged between engines");
  }
  return Status::OK();
}

}  // namespace bcc
