// Steady-state metrics collection for the Section 4 experiments.

#ifndef BCC_SIM_METRICS_H_
#define BCC_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "channel/lossy_channel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "des/event_queue.h"
#include "matrix/control_info.h"
#include "matrix/hier_matrix.h"
#include "obs/trace.h"

namespace bcc {

/// The observable outcome of one completed client transaction: the read
/// records of the final (committed or censored) attempt plus how many times
/// the transaction aborted and restarted on the way. Two engines that agree
/// on every TxnDecision of every client made identical commit/abort
/// decisions on identical data — the unit of the sequential-vs-concurrent
/// cross-check (see sim/concurrent_sim.h).
struct TxnDecision {
  std::vector<ReadRecord> reads;
  uint32_t restarts = 0;
  bool censored = false;

  friend bool operator==(const TxnDecision& a, const TxnDecision& b) {
    return a.reads == b.reads && a.restarts == b.restarts && a.censored == b.censored;
  }
};

/// Aggregated results of one simulation run. Response times are bit-units.
struct SimSummary {
  // Steady-state window (transactions after warmup).
  double mean_response_time = 0.0;
  double response_ci_half_width = 0.0;  ///< 95% CI half-width
  double response_p50 = 0.0;
  double response_p95 = 0.0;
  /// Paper's "Transaction Restart Ratio": mean number of aborts+restarts a
  /// transaction suffers before committing.
  double restart_ratio = 0.0;
  uint64_t measured_txns = 0;
  uint64_t total_txns = 0;
  uint64_t total_restarts = 0;

  uint64_t cycles_elapsed = 0;
  uint64_t server_commits = 0;
  SimTime sim_end_time = 0;
  /// Transactions force-completed by the censoring guard (0 in healthy
  /// runs; nonzero flags an off-the-chart configuration, as with Datacycle
  /// at client length 10 in the paper).
  uint64_t censored_txns = 0;

  // Cache extension counters.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  // Client update-transaction extension counters.
  uint64_t client_update_commits = 0;
  uint64_t client_update_rejects = 0;  ///< uplink validation failures

  // Snapshot+delta control broadcast counters (delta_broadcast mode).
  uint64_t delta_cycles = 0;           ///< cycles broadcast in delta mode
  uint64_t delta_refresh_cycles = 0;   ///< of which full refreshes
  uint64_t delta_control_bits = 0;     ///< control bits actually shipped
  uint64_t full_control_bits = 0;      ///< full-matrix baseline (n^2*ts/cycle)
  uint64_t delta_stall_waits = 0;      ///< reads stalled awaiting a refresh

  /// Lossy-channel counters summed over all clients (channel_broadcast mode;
  /// all-zero otherwise).
  ChannelStats channel;

  // Sparse/hierarchical control-matrix counters (matrix_mode != dense;
  // all-zero otherwise).
  uint64_t matrix_nnz = 0;            ///< final explicit entries in the sparse/exact matrix
  uint64_t matrix_cycles = 0;         ///< cycles with sparse/hier control accounting
  uint64_t matrix_control_bits = 0;   ///< summed sparse/hier control encoding, all cycles
  /// matrix_control_bits / 8 / matrix_cycles — the headline sublinearity
  /// figure of BENCH_10.json.
  double matrix_control_bytes_per_cycle = 0.0;
  uint64_t sparse_compaction_drops = 0;  ///< entries dropped by CompactModulo
  /// Hierarchical-mode policy counters and final partition shape.
  HierStats hier;
  uint32_t hier_groups = 0;
  uint32_t hier_refined_columns = 0;

  /// Per-cause abort breakdown over the whole run (not warmup-filtered, so
  /// two engines replaying the same decisions report identical tables).
  AbortBreakdown abort_causes;

  std::string ToString() const;
  /// Serializes every field (including the abort breakdown and channel
  /// counters) as a JSON object, for sim_cli --metrics-json.
  std::string ToJson() const;
};

/// Streaming collector fed by the simulator.
class SimMetrics {
 public:
  explicit SimMetrics(uint32_t warmup_txns) : warmup_txns_(warmup_txns) {}

  /// Records one committed client transaction.
  void RecordClientTxn(SimTime submit, SimTime commit, uint32_t restarts, bool censored);

  void RecordServerCommit() { ++server_commits_; }
  void RecordClientUpdateCommit() { ++client_update_commits_; }
  void RecordClientUpdateReject() { ++client_update_rejects_; }

  /// Accounts one delta-mode cycle's control block against the full-matrix
  /// baseline.
  void RecordDeltaCycle(bool refresh, uint64_t control_bits, uint64_t full_bits) {
    ++delta_cycles_;
    if (refresh) ++delta_refresh_cycles_;
    delta_control_bits_ += control_bits;
    full_control_bits_ += full_bits;
  }
  /// A client read stalled because its tracker was desynced (waiting for the
  /// next full refresh).
  void RecordDeltaStall() { ++delta_stall_waits_; }

  /// Accounts one cycle's sparse/hierarchical control encoding.
  void RecordMatrixCycle(uint64_t control_bits) {
    ++matrix_cycles_;
    matrix_control_bits_ += control_bits;
  }
  void RecordSparseCompaction(uint64_t dropped) { sparse_compaction_drops_ += dropped; }

  /// Folds one client's channel/receiver counters into the run totals.
  void AccumulateChannel(const ChannelStats& stats) { channel_.Accumulate(stats); }

  /// Records one abort (or censoring) with its structured cause. Counted for
  /// every attempt of every transaction — never warmup-filtered — so the
  /// breakdown is part of the cross-engine bit-exactness contract.
  void RecordAbort(AbortCause cause) { abort_causes_.Record(cause); }
  const AbortBreakdown& abort_causes() const { return abort_causes_; }

  /// Quantile reservoir size: below this many measured transactions the
  /// p50/p95 are exact; beyond it they come from a deterministic
  /// fixed-seed Algorithm R sample (O(1) memory, engine-independent).
  static constexpr size_t kReservoirCapacity = 4096;

  uint64_t committed_client_txns() const { return total_txns_; }

  /// Finalizes the summary. `cycles` and `end_time` come from the sim.
  SimSummary Summarize(uint64_t cycles, SimTime end_time, uint64_t cache_hits,
                       uint64_t cache_misses) const;

 private:
  uint32_t warmup_txns_;
  uint64_t total_txns_ = 0;
  uint64_t server_commits_ = 0;
  uint64_t censored_ = 0;
  uint64_t total_restarts_measured_ = 0;
  uint64_t client_update_commits_ = 0;
  uint64_t client_update_rejects_ = 0;
  uint64_t delta_cycles_ = 0;
  uint64_t delta_refresh_cycles_ = 0;
  uint64_t delta_control_bits_ = 0;
  uint64_t full_control_bits_ = 0;
  uint64_t delta_stall_waits_ = 0;
  uint64_t matrix_cycles_ = 0;
  uint64_t matrix_control_bits_ = 0;
  uint64_t sparse_compaction_drops_ = 0;
  ChannelStats channel_;
  AbortBreakdown abort_causes_;
  StreamingStats response_;
  StreamingStats restarts_;
  // Response-time reservoir for quantiles (measured window only). Bounded at
  // kReservoirCapacity via Algorithm R; the replacement stream is seeded by a
  // fixed constant (never the workload seed) so the sample — and therefore
  // the reported quantiles — depend only on the sequence of recorded
  // responses, which both engines produce identically.
  std::vector<double> responses_;
  uint64_t reservoir_seen_ = 0;
  Rng reservoir_rng_{0x9d2c5680cafef00dull};
};

}  // namespace bcc

#endif  // BCC_SIM_METRICS_H_
