// Experiment harness: runs one paper figure (a parameter sweep crossed with
// the four algorithms) and renders the series as tables.

#ifndef BCC_SIM_EXPERIMENT_H_
#define BCC_SIM_EXPERIMENT_H_

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "sim/broadcast_sim.h"

namespace bcc {

/// Specification of one figure-style experiment.
struct ExperimentSpec {
  std::string title;    ///< e.g. "Figure 2(a): response time vs client txn length"
  std::string x_label;  ///< e.g. "client txn length"
  SimConfig base;       ///< defaults for everything not swept
  std::vector<double> x_values;
  /// Applies one swept x-value to a config copy.
  std::function<void(SimConfig*, double)> apply;
  std::vector<Algorithm> algorithms = {Algorithm::kDatacycle, Algorithm::kRMatrix,
                                       Algorithm::kFMatrix, Algorithm::kFMatrixNo};
  /// Worker threads for the sweep grid (each cell is an independent run).
  /// 0 = hardware concurrency.
  unsigned parallelism = 0;
};

/// Grid of results: summaries[a][x] pairs algorithms[a] with x_values[x].
struct ExperimentResult {
  ExperimentSpec spec;
  std::vector<std::vector<SimSummary>> summaries;

  const SimSummary& At(size_t algorithm_idx, size_t x_idx) const {
    return summaries[algorithm_idx][x_idx];
  }
};

/// Runs the full grid (algorithms x x_values), in parallel.
StatusOr<ExperimentResult> RunExperiment(const ExperimentSpec& spec);

/// Renders the response-time series (mean +- 95% CI), one row per x-value,
/// one column per algorithm — the paper's figure as a table. Censored cells
/// are flagged with '>' (off the chart, like Datacycle at length 10).
void PrintResponseTable(const ExperimentResult& result, std::ostream& os);

/// Same layout for the restart ratio (Figure 2(b) companion).
void PrintRestartTable(const ExperimentResult& result, std::ostream& os);

/// Machine-readable dump: one CSV row per (algorithm, x) cell.
void PrintCsv(const ExperimentResult& result, std::ostream& os);

}  // namespace bcc

#endif  // BCC_SIM_EXPERIMENT_H_
