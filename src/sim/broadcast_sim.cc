#include "sim/broadcast_sim.h"

#include <cassert>
#include <limits>

#include "cc/approx.h"
#include "cc/conflict_serializability.h"
#include "common/format.h"

namespace bcc {

BroadcastSim::Client::Client(const SimConfig& config, Rng rng,
                             std::optional<CycleStampCodec> codec)
    : workload(config, rng), protocol(config.algorithm, codec) {
  // The per-read O(n) column capture exists only to validate stale cached
  // reads; without a cache it is pure overhead (and the dominant read cost
  // at n = 10^6).
  protocol.set_capture_columns(config.enable_cache);
  if (config.enable_cache) {
    cache = std::make_unique<QuasiCache>(config.cache_capacity, config.cache_currency_bound);
  }
  if (config.delta_broadcast) {
    // In sparse direct mode the tracker reconstructs a SparseFMatrix
    // (refreshes adopt the snapshot's shared columns); channel-mode trackers
    // stay dense — they rebuild from on-air bytes, which are byte-identical
    // regardless of the server's representation.
    const bool sparse_tracker =
        config.matrix_mode == MatrixMode::kSparse && !config.channel_broadcast;
    tracker = std::make_unique<DeltaMatrixTracker>(
        config.num_objects, CycleStampCodec(config.timestamp_bits), sparse_tracker);
    // All F-family validation reads the locally reconstructed matrix from
    // here on; the sim stalls reads while the tracker is unusable.
    if (sparse_tracker) {
      protocol.set_sparse_control_override(&tracker->sparse_matrix());
    } else {
      protocol.set_control_override(&tracker->matrix());
    }
  }
  if (config.channel_broadcast) {
    receiver = std::make_unique<ChannelReceiver>(
        config.num_objects,
        FrameCodec(CycleStampCodec(config.timestamp_bits), config.channel_frame_bits),
        tracker.get());
    // Data pages now come off the reassembled frames; the sim stalls reads
    // whose page (or, in full mode, control column) was lost this cycle.
    protocol.set_value_override(&receiver->values());
    if (!tracker) protocol.set_control_override(&receiver->matrix());
  }
}

BroadcastSim::BroadcastSim(SimConfig config)
    : config_(std::move(config)),
      geometry_(config_.Geometry()),
      metrics_(config_.warmup_txns) {}

BroadcastSim::~BroadcastSim() = default;

StatusOr<SimSummary> BroadcastSim::Run() {
  if (ran_) return Status::FailedPrecondition("BroadcastSim::Run may only be called once");
  ran_ = true;
  BCC_RETURN_IF_ERROR(config_.Validate());

  const bool f_family = config_.algorithm == Algorithm::kFMatrix ||
                        config_.algorithm == Algorithm::kFMatrixNo;
  const bool sparse_mode = config_.matrix_mode == MatrixMode::kSparse;
  const bool hier_mode = config_.matrix_mode == MatrixMode::kHier;
  TxnManagerOptions manager_options;
  // In sparse/hier mode the dense matrix is maintained only when the oracle
  // needs it (record_history) — it is O(n^2) and the snapshot path prefers
  // the sparse representation regardless.
  manager_options.maintain_f_matrix =
      (f_family && !sparse_mode && !hier_mode) || config_.record_history;
  manager_options.maintain_sparse_matrix = f_family && sparse_mode;
  manager_options.maintain_hier_matrix = hier_mode;
  manager_options.hier_options = config_.HierOptions();
  manager_options.maintain_mc_vector = true;
  manager_options.record_history = config_.record_history;
  manager_options.track_dirty_columns = config_.delta_broadcast;
  manager_ = std::make_unique<ServerTxnManager>(config_.num_objects, manager_options);
  if (hier_mode) hier_ = manager_->hier_matrix();

  server_ = std::make_unique<BroadcastServer>(config_.num_objects, geometry_);
  if (config_.delta_broadcast) {
    server_->EnableDeltaBroadcast(CycleStampCodec(config_.timestamp_bits),
                                  config_.delta_refresh_period);
  }
  if (config_.hot_set_size > 0 && config_.hot_broadcast_frequency > 1) {
    // Multi-speed disk: hot objects several times per major cycle.
    std::vector<uint32_t> frequencies(config_.num_objects, 1);
    for (uint32_t i = 0; i < config_.hot_set_size; ++i) {
      frequencies[i] = config_.hot_broadcast_frequency;
    }
    BCC_ASSIGN_OR_RETURN(BroadcastSchedule schedule,
                         BroadcastSchedule::FromFrequencies(frequencies));
    server_->SetSchedule(std::move(schedule));
  }
  if (f_family && config_.num_groups > 0 && config_.num_groups < config_.num_objects) {
    partition_ = ObjectPartition::Blocks(config_.num_objects, config_.num_groups);
    server_->SetPartition(*partition_);
  }

  Rng root(config_.seed);
  server_workload_ = std::make_unique<ServerWorkload>(config_, root.Split());
  if (config_.update_scheme != UpdateScheme::kSequential) {
    txn_processor_ = std::make_unique<TxnProcessor>(config_.num_objects, config_.update_scheme,
                                                    config_.update_workers);
    // Pooled-apply: the cycle-batch F-Matrix fold borrows the processor's
    // worker pool, partitioned by column (bit-identical to the serial fold).
    manager_->SetParallelFold(
        [this](uint32_t shards, const std::function<void(uint32_t)>& body) {
          txn_processor_->RunShards(shards, body);
        },
        config_.update_workers);
  }

  std::optional<CycleStampCodec> codec;
  if (config_.use_wire_codec) codec.emplace(config_.timestamp_bits);

  if (config_.client_update_fraction > 0.0) {
    validator_ = std::make_unique<UpdateValidator>(manager_.get());
    if (txn_processor_ != nullptr) {
      // Pooled mode: the cycle's commits (pooled server txns and accepted
      // uplinks) reach the manager only at the fold point, so the validator
      // reads the MC vector through the cycle-epoch overlay, and accepted
      // uplink transactions queue for the serial prefix of the fold.
      mc_overlay_ = std::make_unique<McOverlay>(config_.num_objects);
      validator_->AttachStagedMode(mc_overlay_.get(), [this](ServerTxn&& txn) {
        pending_uplink_txns_.push_back(std::move(txn));
      });
    }
  }

  clients_.clear();
  for (uint32_t c = 0; c < config_.num_clients; ++c) {
    clients_.push_back(std::make_unique<Client>(config_, root.Split(), codec));
    // Hier mode: every client validates against the broadcast hierarchical
    // view (raw pointer — no batch flush mid-cycle, see the hier_ comment).
    if (hier_ != nullptr) clients_.back()->protocol.set_hier_control_override(hier_);
  }
  if (config_.record_decisions) decisions_.resize(config_.num_clients);

  if (tracer_ != nullptr) {
    // One single-writer ring per simulated actor; registered before any
    // event fires, never resized afterwards.
    server_trace_ = tracer_->AddTrack("server");
    for (size_t c = 0; c < clients_.size(); ++c) {
      Client& client = *clients_[c];
      client.trace = tracer_->AddTrack(StrFormat("client%zu", c));
      if (client.receiver) client.receiver->set_trace_ring(client.trace);
      if (client.tracker) client.tracker->set_trace_ring(client.trace);
    }
  }

  if (config_.channel_broadcast) {
    frame_codec_.emplace(CycleStampCodec(config_.timestamp_bits), config_.channel_frame_bits);
    // The channel draws from its own salted streams (never from root), so
    // workload RNG draws — and hence the rate-0 decision logs — are
    // untouched by enabling the channel.
    channel_ =
        std::make_unique<LossyChannel>(config_.ChannelFaults(), config_.seed,
                                       config_.num_clients);
  }

  // Prime the loop: cycle 1 begins at t = 0; the first server transaction
  // and each client's first submission follow their think times.
  server_->BeginCycle(1, 0, *manager_);
  TraceCycleStart();
  if (config_.delta_broadcast) AttachAndObserveDelta();
  if (channel_) TransmitCycle();
  queue_.ScheduleAt(server_->CycleEndTime(), [this] { StartNextCycle(); });
  queue_.ScheduleAfter(server_workload_->NextInterval(), [this] { ServerCommitEvent(); });
  for (size_t c = 0; c < clients_.size(); ++c) {
    queue_.ScheduleAfter(clients_[c]->workload.NextInterTxnDelay(),
                         [this, c] { SubmitClientTxn(c); });
  }

  while (!done_ && queue_.Step()) {
  }
  // Commits staged during the final (partial) cycle still belong to it.
  FlushServerBatch();

  for (const auto& client : clients_) {
    if (client->receiver) metrics_.AccumulateChannel(client->receiver->stats());
  }
  SimSummary summary = metrics_.Summarize(server_->snapshot().cycle, queue_.now(),
                                          TotalCacheHits(), TotalCacheMisses());
  if (config_.matrix_mode == MatrixMode::kSparse) {
    summary.matrix_nnz = manager_->sparse_f_matrix().nnz();
  } else if (hier_ != nullptr) {
    summary.matrix_nnz = hier_->exact().nnz();
    summary.hier = hier_->stats();
    summary.hier_groups = hier_->num_groups();
    summary.hier_refined_columns = hier_->refined_columns();
  }
  return summary;
}

uint64_t BroadcastSim::TotalCacheHits() const {
  uint64_t total = 0;
  for (const auto& c : clients_) {
    if (c->cache) total += c->cache->hits();
  }
  return total;
}

uint64_t BroadcastSim::TotalCacheMisses() const {
  uint64_t total = 0;
  for (const auto& c : clients_) {
    if (c->cache) total += c->cache->misses();
  }
  return total;
}

void BroadcastSim::FlushServerBatch() {
  if (txn_processor_ == nullptr) return;
  const Cycle cycle = server_->snapshot().cycle;
  if (!pending_uplink_txns_.empty()) {
    // Accepted uplink transactions commit first, serially, in acceptance
    // order. Validation guaranteed each one's reads are disjoint from every
    // write staged before it was accepted, so the serial prefix places each
    // uplink's commit exactly where the client's broadcast reads put it —
    // after the prior cycle, before anything of this cycle that could
    // conflict. Letting the pooled batch order them instead could slot a
    // later-staged conflicting server commit in front.
    const std::vector<CommittedServerTxn> committed =
        txn_processor_->ExecuteSerial(pending_uplink_txns_);
    FoldIntoManager(committed, *manager_, cycle);
    pending_uplink_txns_.clear();
  }
  if (!pending_server_txns_.empty()) {
    const std::vector<CommittedServerTxn> committed =
        txn_processor_->ExecuteBatch(pending_server_txns_);
    FoldIntoManager(committed, *manager_, cycle);
    pending_server_txns_.clear();
  }
  // The fold published every staged MC effect for real; retire the epoch.
  if (mc_overlay_ != nullptr) mc_overlay_->Clear();
}

void BroadcastSim::EndOfCycleMatrixStep(Cycle ending) {
  if (hier_ != nullptr) {
    // The flushing accessor folds the ending cycle's queued commits into the
    // exact matrix — the cycle boundary — before policy and accounting run.
    manager_->hier_matrix();
    metrics_.RecordMatrixCycle(hier_->ControlBits(config_.timestamp_bits));
    hier_->EndOfCycle(ending, metrics_.abort_causes().Count(AbortCause::kControlConflict));
    return;
  }
  if (config_.matrix_mode != MatrixMode::kSparse) return;
  if (config_.sparse_compaction_period > 0 && ending % config_.sparse_compaction_period == 0) {
    metrics_.RecordSparseCompaction(
        manager_->CompactSparseMatrix(CycleStampCodec(config_.timestamp_bits), ending));
  }
  // O(1): the sparse matrix keeps nnz / nonempty-column counters.
  metrics_.RecordMatrixCycle(
      SparseMatrixControlBits(manager_->sparse_f_matrix(), config_.timestamp_bits));
}

void BroadcastSim::StartNextCycle() {
  if (done_) return;
  // Pooled mode: the ending cycle's server transactions execute now, so the
  // snapshot taken at BeginCycle sees them — the same cycle-granular
  // visibility clients get under the sequential path.
  FlushServerBatch();
  EndOfCycleMatrixStep(server_->snapshot().cycle);
  const Cycle next = server_->snapshot().cycle + 1;
  if (config_.stop_after_cycles > 0 && next > config_.stop_after_cycles) {
    done_ = true;
    return;
  }
  server_->BeginCycle(next, server_->CycleEndTime(), *manager_);
  TraceCycleStart();
  if (config_.delta_broadcast) AttachAndObserveDelta();
  if (channel_) TransmitCycle();
  queue_.ScheduleAt(server_->CycleEndTime(), [this] { StartNextCycle(); });
}

void BroadcastSim::TraceCycleStart() {
  if (server_trace_ == nullptr) return;
  const CycleSnapshot& snap = server_->snapshot();
  const SimTime length = server_->CycleLengthBits();
  TraceEvent cycle;
  cycle.type = TraceEventType::kCycleStart;
  cycle.time = server_->CycleEndTime() - length;
  cycle.duration = length;
  cycle.cycle = snap.cycle;
  server_trace_->Record(cycle);
  TraceEvent tx;
  tx.type = TraceEventType::kBroadcastTx;
  tx.time = cycle.time;
  tx.cycle = snap.cycle;
  tx.value = config_.num_objects;
  server_trace_->Record(tx);
}

void BroadcastSim::AttachAndObserveDelta() {
  manager_->DrainTouchedColumns(touched_scratch_);
  server_->AttachDeltaControl(touched_scratch_);
  const CycleSnapshot& snap = server_->snapshot();
  const DeltaControl& ctl = *snap.delta;
  metrics_.RecordDeltaCycle(ctl.full_refresh, ctl.control_bits, ctl.full_bits);
  // In channel mode the trackers are fed from each client's reassembled
  // frames (TransmitCycle), not from the in-process control block.
  if (config_.channel_broadcast) return;
  for (auto& client : clients_) {
    if (snap.sparse_f_matrix != nullptr) {
      client->tracker->Observe(ctl, *snap.sparse_f_matrix);
    } else {
      client->tracker->Observe(ctl, snap.f_matrix);
    }
    // Test knob: model a client that missed this cycle's control block.
    if (config_.delta_desync_at_cycle != 0 && snap.cycle == config_.delta_desync_at_cycle) {
      client->tracker->ForceDesync();
    }
  }
}

void BroadcastSim::TransmitCycle() {
  const CycleSnapshot& snap = server_->snapshot();
  EncodeCycleFramesInto(snap, *frame_codec_, config_.object_size_bits, frame_scratch_);
  for (size_t c = 0; c < clients_.size(); ++c) {
    Client& client = *clients_[c];
    const Transmission tx = channel_->Transmit(static_cast<uint32_t>(c), frame_scratch_);
    client.receiver->IngestCycle(snap.cycle, tx, queue_.now());
    // The desync knob still works in channel mode (on top of real loss).
    if (client.tracker && config_.delta_desync_at_cycle != 0 &&
        snap.cycle == config_.delta_desync_at_cycle) {
      client.tracker->ForceDesync();
    }
  }
}

void BroadcastSim::ServerCommitEvent() {
  if (done_) return;
  const ServerTxn txn = server_workload_->NextTxn();
  if (txn_processor_ != nullptr) {
    // Stage the MC effect at event time: an uplink validated later this
    // cycle must see this write exactly as the sequential path's eager MC
    // maintenance would have shown it.
    if (mc_overlay_ != nullptr) mc_overlay_->Stage(txn.write_set, server_->snapshot().cycle);
    pending_server_txns_.push_back(txn);
  } else {
    manager_->ExecuteAndCommit(txn, server_->snapshot().cycle);
  }
  metrics_.RecordServerCommit();
  if (server_trace_ != nullptr) {
    TraceEvent e;
    e.type = TraceEventType::kCommit;
    e.time = queue_.now();
    e.cycle = server_->snapshot().cycle;
    e.value = txn.id;
    server_trace_->Record(e);
  }
  queue_.ScheduleAfter(server_workload_->NextInterval(), [this] { ServerCommitEvent(); });
}

void BroadcastSim::SubmitClientTxn(size_t c) {
  if (done_) return;
  Client& client = *clients_[c];
  client.submit_time = queue_.now();
  client.read_set = client.workload.NextReadSet();
  client.is_update = validator_ != nullptr && client.workload.NextIsUpdate();
  client.write_set =
      client.is_update ? client.workload.NextWriteSet() : std::vector<ObjectId>{};
  client.read_idx = 0;
  client.restarts = 0;
  client.stalled_this_attempt = false;
  client.delta_stalled_this_attempt = false;
  client.protocol.Reset();
  queue_.ScheduleAfter(client.workload.NextInterOpDelay(), [this, c] { BeginReadOp(c); });
}

void BroadcastSim::BeginReadOp(size_t c) {
  if (done_) return;
  Client& client = *clients_[c];
  const ObjectId ob = client.read_set[client.read_idx];

  if (client.cache) {
    if (std::optional<CacheEntry> entry = client.cache->Lookup(ob, queue_.now())) {
      auto value = client.protocol.ReadFromCache(*entry, ob, server_->snapshot());
      if (value.ok()) {
        if (client.trace != nullptr) {
          TraceEvent e;
          e.type = TraceEventType::kRead;
          e.time = queue_.now();
          e.cycle = server_->snapshot().cycle;
          e.object = ob;
          e.value = value->value;
          client.trace->Record(e);
        }
        OnReadSuccess(c);
        return;
      }
      // Failed cache validation: fall back to a fresh broadcast read.
    }
  }

  if (const std::optional<SimTime> slot = server_->NextSlotEnd(ob, queue_.now())) {
    queue_.ScheduleAt(*slot, [this, c] { PerformBroadcastRead(c); });
  } else {
    // No appearance of `ob` remains this cycle; catch its first slot in the
    // next cycle (whose start event is already scheduled and fires strictly
    // earlier than any slot completion).
    const uint32_t first_slot = server_->schedule().SlotsOf(ob).front();
    queue_.ScheduleAt(
        server_->CycleEndTime() + static_cast<SimTime>(first_slot + 1) * geometry_.slot_bits,
        [this, c] { PerformBroadcastRead(c); });
  }
}

void BroadcastSim::PerformBroadcastRead(size_t c) {
  if (done_) return;
  Client& client = *clients_[c];
  const ObjectId ob = client.read_set[client.read_idx];
  const CycleSnapshot& snap = server_->snapshot();
  bool stall = false;
  bool delta_stall = false;
  if (client.tracker && client.tracker->Unusable(snap.cycle)) {
    // The reconstructed matrix cannot validate a read in this cycle (tracker
    // desynced, stale after a lost control block, or past the TS decode
    // window): stall until the next cycle, whose block may be the
    // resynchronizing full refresh.
    metrics_.RecordDeltaStall();
    stall = true;
    delta_stall = true;
  }
  if (!stall && client.receiver) {
    // Missed-cycle rule: validate only against control info and data
    // received in THIS cycle. A stale column could carry lower stamps than
    // the current matrix and falsely accept a read, so loss means stalling,
    // never substituting older control info.
    const bool control_missing =
        client.tracker == nullptr && !client.receiver->ControlUsable(ob, snap.cycle);
    stall = control_missing || !client.receiver->DataUsable(ob, snap.cycle);
  }
  if (stall) {
    if (client.trace != nullptr) {
      TraceEvent e;
      e.type = TraceEventType::kStall;
      e.time = queue_.now();
      e.cycle = snap.cycle;
      e.object = ob;
      e.value = delta_stall ? kStallDeltaDesync : kStallChannelLoss;
      client.trace->Record(e);
    }
    // The cycle-start event was inserted earlier, so it fires before this
    // retry at the object's first slot of the next cycle.
    if (client.receiver) {
      client.receiver->RecordStall();
      client.stalled_this_attempt = true;
    }
    if (delta_stall) client.delta_stalled_this_attempt = true;
    const uint32_t first_slot = server_->schedule().SlotsOf(ob).front();
    queue_.ScheduleAt(
        server_->CycleEndTime() + static_cast<SimTime>(first_slot + 1) * geometry_.slot_bits,
        [this, c] { PerformBroadcastRead(c); });
    return;
  }
  auto value = client.protocol.Read(snap, ob);
  if (client.trace != nullptr) {
    TraceEvent e;
    e.type = TraceEventType::kValidation;
    e.time = queue_.now();
    e.cycle = snap.cycle;
    e.object = ob;
    e.value = value.ok() ? 1 : 0;
    client.trace->Record(e);
  }
  if (!value.ok()) {
    OnReadAbort(c);
    return;
  }
  if (client.trace != nullptr) {
    TraceEvent e;
    e.type = TraceEventType::kRead;
    e.time = queue_.now();
    e.cycle = snap.cycle;
    e.object = ob;
    e.value = value->value;
    client.trace->Record(e);
  }
  if (client.cache) {
    CacheEntry entry;
    entry.version = *value;
    entry.cycle = snap.cycle;
    entry.cached_time = queue_.now();
    if (snap.f_matrix.num_objects() > 0) {
      const std::span<const Cycle> col = snap.f_matrix.Column(ob);
      entry.column.assign(col.begin(), col.end());
    }
    if (snap.mc_vector.num_objects() > 0) entry.mc_entry = snap.mc_vector.At(ob);
    client.cache->Insert(ob, std::move(entry));
  }
  OnReadSuccess(c);
}

void BroadcastSim::OnReadSuccess(size_t c) {
  Client& client = *clients_[c];
  ++client.read_idx;
  if (client.read_idx == client.read_set.size()) {
    if (client.is_update) {
      // Ship the read records and write set to the server over the uplink
      // ("a list of all the objects written ... and the list of all read
      // operations performed and the cycle numbers" — Section 3.2.1).
      queue_.ScheduleAfter(config_.uplink_delay, [this, c] { SendUplinkCommit(c); });
    } else {
      CompleteTxn(c, /*censored=*/false);  // read-only commit is local, free
    }
    return;
  }
  queue_.ScheduleAfter(client.workload.NextInterOpDelay(), [this, c] { BeginReadOp(c); });
}

void BroadcastSim::OnReadAbort(size_t c) {
  Client& client = *clients_[c];
  // Attribution precedence: an attempt that stalled on channel loss before
  // failing validation spanned extra cycles precisely because of the loss,
  // so the loss outranks the raw protocol cause; a delta-desync stall
  // likewise. Otherwise the cause is the exact check that fired.
  AbortInfo info = client.protocol.last_abort();
  if (client.receiver && client.stalled_this_attempt) {
    info.cause = AbortCause::kChannelLoss;
  } else if (client.delta_stalled_this_attempt) {
    info.cause = AbortCause::kDesyncStall;
  }
  OnAbort(c, info);
}

void BroadcastSim::OnAbort(size_t c, AbortInfo info) {
  Client& client = *clients_[c];
  metrics_.RecordAbort(info.cause);
  if (client.trace != nullptr) {
    TraceEvent e;
    e.type = TraceEventType::kAbort;
    e.time = queue_.now();
    e.cycle = server_->snapshot().cycle;
    e.object = info.ob_j;
    e.abort = info;
    client.trace->Record(e);
  }
  if (client.receiver && client.stalled_this_attempt) {
    // The attempt both stalled on loss and then failed validation: the extra
    // cycles it was forced to span raise the abort odds, so attribute it.
    client.receiver->RecordLossAttributedAbort();
  }
  client.stalled_this_attempt = false;
  client.delta_stalled_this_attempt = false;
  ++client.restarts;
  if (client.restarts >= config_.max_restarts_per_txn) {
    CompleteTxn(c, /*censored=*/true);
    return;
  }
  client.protocol.Reset();
  client.read_idx = 0;
  queue_.ScheduleAfter(config_.restart_delay + client.workload.NextInterOpDelay(),
                       [this, c] { BeginReadOp(c); });
}

void BroadcastSim::SendUplinkCommit(size_t c) {
  if (done_) return;
  Client& client = *clients_[c];
  ClientUpdateRequest request;
  request.id = next_client_update_id_++;
  request.reads = client.protocol.reads();
  request.writes = client.write_set;
  const auto verdict = validator_->ValidateAndCommit(request, server_->snapshot().cycle);
  if (client.trace != nullptr) {
    TraceEvent e;
    e.type = TraceEventType::kValidation;
    e.time = queue_.now();
    e.cycle = server_->snapshot().cycle;
    e.value = verdict.ok() ? 1 : 0;
    client.trace->Record(e);
  }
  // The client learns the outcome one uplink delay later.
  if (verdict.ok()) {
    metrics_.RecordServerCommit();  // it is also a committed update txn
    metrics_.RecordClientUpdateCommit();
    queue_.ScheduleAfter(config_.uplink_delay, [this, c] { CompleteTxn(c, false); });
  } else {
    metrics_.RecordClientUpdateReject();
    // Capture the validator's structured cause now — by the time the abort
    // fires, another client's rejection may have overwritten last_reject().
    const AbortInfo reject = validator_->last_reject();
    queue_.ScheduleAfter(config_.uplink_delay, [this, c, reject] { OnAbort(c, reject); });
  }
}

void BroadcastSim::CompleteTxn(size_t c, bool censored) {
  Client& client = *clients_[c];
  // Committed client UPDATE transactions already live in the server's
  // recorded history (via the validator); only read-only transactions need
  // a client-side oracle log.
  if (config_.record_history && !censored && !client.is_update) {
    oracle_client_txns_.push_back(ClientTxnLog{
        kClientTxnIdBase + static_cast<TxnId>(oracle_client_txns_.size()),
        client.protocol.reads(), client.protocol.values()});
  }
  if (config_.record_decisions) {
    decisions_[c].push_back(TxnDecision{client.protocol.reads(), client.restarts, censored});
  }
  // Censoring is counted in ADDITION to the final attempt's abort cause
  // (recorded by OnAbort), so breakdown[kCensored] == censored_txns.
  if (censored) metrics_.RecordAbort(AbortCause::kCensored);
  if (client.trace != nullptr) {
    TraceEvent e;
    e.type = censored ? TraceEventType::kAbort : TraceEventType::kCommit;
    e.time = queue_.now();
    e.cycle = server_->snapshot().cycle;
    e.value = client.protocol.reads().size();
    if (censored) e.abort.cause = AbortCause::kCensored;
    client.trace->Record(e);
  }
  metrics_.RecordClientTxn(client.submit_time, queue_.now(), client.restarts, censored);
  ++completed_txns_;
  if (completed_txns_ >= config_.num_client_txns) {
    done_ = true;
    return;
  }
  client.protocol.Reset();
  queue_.ScheduleAfter(client.workload.NextInterTxnDelay(), [this, c] { SubmitClientTxn(c); });
}

StatusOr<History> BroadcastSim::BuildOracleHistory() const {
  if (!config_.record_history) {
    return Status::FailedPrecondition("run with config.record_history = true");
  }

  // Slice the server's recorded history into per-transaction blocks, in
  // commit order (execution is serial, so blocks are contiguous).
  struct Block {
    std::vector<Operation> ops;
    Cycle cycle;
  };
  std::vector<Block> server_blocks;
  {
    Block current{{}, 0};
    for (const Operation& op : manager_->recorded_history().ops()) {
      current.ops.push_back(op);
      if (op.type == OpType::kCommit || op.type == OpType::kAbort) {
        current.cycle = manager_->commit_cycles().at(op.txn);
        server_blocks.push_back(std::move(current));
        current = Block{{}, 0};
      }
    }
    if (!current.ops.empty()) {
      return Status::Internal("recorded server history ends mid-transaction");
    }
  }

  Cycle max_cycle = 0;
  for (const Block& b : server_blocks) max_cycle = std::max(max_cycle, b.cycle);
  for (const ClientTxnLog& ct : oracle_client_txns_) {
    for (const ReadRecord& r : ct.reads) max_cycle = std::max(max_cycle, r.cycle);
  }

  History oracle;
  size_t next_server_block = 0;
  // With caching, a transaction's read cycles need not be monotone (a cached
  // read is placed at the cycle it was cached in); the commit marker goes
  // after the transaction's final appended read.
  std::unordered_map<TxnId, size_t> appended_reads;
  for (Cycle c = 1; c <= max_cycle; ++c) {
    // Client reads that observed the beginning of cycle c (they precede all
    // transactions that commit during c).
    for (const ClientTxnLog& ct : oracle_client_txns_) {
      for (size_t k = 0; k < ct.reads.size(); ++k) {
        if (ct.reads[k].cycle != c) continue;
        oracle.AppendRead(ct.id, ct.reads[k].object);
        if (++appended_reads[ct.id] == ct.reads.size()) oracle.AppendCommit(ct.id);
      }
    }
    // Server transactions committed during cycle c, in commit order.
    while (next_server_block < server_blocks.size() &&
           server_blocks[next_server_block].cycle == c) {
      for (const Operation& op : server_blocks[next_server_block].ops) oracle.Append(op);
      ++next_server_block;
    }
  }
  if (next_server_block != server_blocks.size()) {
    return Status::Internal("server commit cycles out of order");
  }
  return oracle;
}

Status BroadcastSim::VerifyOracle() const {
  BCC_ASSIGN_OR_RETURN(const History oracle, BuildOracleHistory());

  // 1. Reads-from agreement: the writer whose version each client read
  // observed must be the writer the oracle history assigns to that read.
  // Client read sets are duplicate-free, so (txn, object) identifies a read
  // even when caching permutes the merge order.
  for (size_t i = 0; i < oracle.ops().size(); ++i) {
    const Operation& op = oracle.ops()[i];
    // Client update transactions (ids >= 2 * base) live in server blocks
    // and are validated server-side; only read-only logs are cross-checked.
    if (op.type != OpType::kRead || op.txn < kClientTxnIdBase ||
        op.txn >= 2 * kClientTxnIdBase) {
      continue;
    }
    const ClientTxnLog& ct = oracle_client_txns_.at(op.txn - kClientTxnIdBase);
    size_t k = ct.reads.size();
    for (size_t r = 0; r < ct.reads.size(); ++r) {
      if (ct.reads[r].object == op.object) {
        k = r;
        break;
      }
    }
    if (k == ct.reads.size()) {
      return Status::Internal(StrFormat("txn %u has no logged read of ob%u", op.txn, op.object));
    }
    const TxnId observed_writer = ct.values.at(k).writer;
    const TxnId oracle_writer = oracle.ReaderSource(i);
    if (observed_writer != oracle_writer) {
      return Status::Internal(StrFormat(
          "txn %u read %zu of ob%u: observed writer t%u but oracle says t%u", op.txn, k,
          op.object, observed_writer, oracle_writer));
    }
  }

  // 2. Mutual consistency: the whole run must pass APPROX.
  const ApproxResult approx = CheckApprox(oracle);
  if (!approx.accepted) {
    return Status::Internal("oracle history rejected by APPROX: " + approx.reason);
  }

  // 3. Datacycle promises full (conflict) serializability.
  if (config_.algorithm == Algorithm::kDatacycle && !IsConflictSerializable(oracle)) {
    return Status::Internal("Datacycle oracle history is not conflict serializable");
  }
  return Status::OK();
}

Status BroadcastSim::VerifyDeltaTrackers() const {
  if (!config_.delta_broadcast) {
    return Status::FailedPrecondition("run with config.delta_broadcast = true");
  }
  if (!ran_) return Status::FailedPrecondition("VerifyDeltaTrackers requires a completed Run");
  const CycleStampCodec codec(config_.timestamp_bits);
  const CycleSnapshot& final_snap = server_->snapshot();
  const FMatrixSnapshot& truth = final_snap.f_matrix;
  const Cycle cycle = final_snap.cycle;
  // Sparse mode: truth and (direct-mode) reconstructions are SparseFMatrix.
  const auto truth_at = [&](ObjectId i, ObjectId j) {
    return final_snap.sparse_f_matrix != nullptr ? final_snap.sparse_f_matrix->At(i, j)
                                                 : truth.At(i, j);
  };
  for (size_t c = 0; c < clients_.size(); ++c) {
    const DeltaMatrixTracker& tracker = *clients_[c]->tracker;
    if (!tracker.synced()) continue;  // desync knob, or real loss in channel mode
    if (tracker.last_sync() != cycle) {
      // Channel mode: a lost final control block legitimately leaves the
      // tracker synced to an earlier cycle; its matrix reflects that cycle,
      // not the current truth, so the congruence check does not apply.
      if (config_.channel_broadcast) continue;
      return Status::Internal(StrFormat(
          "client %zu tracker synced at cycle %llu but the broadcast is at %llu", c,
          static_cast<unsigned long long>(tracker.last_sync()),
          static_cast<unsigned long long>(cycle)));
    }
    for (ObjectId j = 0; j < config_.num_objects; ++j) {
      for (ObjectId i = 0; i < config_.num_objects; ++i) {
        const Cycle mine =
            tracker.sparse() ? tracker.sparse_matrix().At(i, j) : tracker.matrix().At(i, j);
        if (codec.Encode(mine) != codec.Encode(truth_at(i, j))) {
          return Status::Internal(StrFormat(
              "client %zu reconstruction diverges at C(%u, %u): %llu !~ %llu (mod 2^%u)", c, i,
              j, static_cast<unsigned long long>(mine),
              static_cast<unsigned long long>(truth_at(i, j)), config_.timestamp_bits));
        }
      }
    }
  }
  return Status::OK();
}

StatusOr<SimSummary> RunSimulation(const SimConfig& config) {
  return BroadcastSim(config).Run();
}

namespace {

/// Value-equality of two managers' control matrices across representations
/// (dense vs dense, sparse vs sparse, or sparse vs the dense oracle).
bool ServerMatricesEqual(const ServerTxnManager& a, const ServerTxnManager& b) {
  const bool a_sparse = a.sparse_f_matrix().num_objects() > 0;
  const bool b_sparse = b.sparse_f_matrix().num_objects() > 0;
  if (a_sparse && b_sparse) return a.sparse_f_matrix() == b.sparse_f_matrix();
  if (a_sparse) return a.sparse_f_matrix() == b.f_matrix();
  if (b_sparse) return b.sparse_f_matrix() == a.f_matrix();
  return a.f_matrix() == b.f_matrix();
}

}  // namespace

Status CrossCheckDeltaBroadcast(SimConfig config) {
  if (config.stop_after_cycles == 0) {
    return Status::InvalidArgument("CrossCheckDeltaBroadcast requires stop_after_cycles > 0");
  }
  config.record_decisions = true;
  // The cycle cutoff is the only stop condition, so both runs see the same
  // timing-independent prefix of every client's transaction stream.
  config.num_client_txns = std::numeric_limits<uint32_t>::max();

  SimConfig full = config;
  full.delta_broadcast = false;
  SimConfig delta = config;
  delta.delta_broadcast = true;

  BroadcastSim full_sim(full);
  BCC_ASSIGN_OR_RETURN(const SimSummary full_summary, full_sim.Run());
  BroadcastSim delta_sim(delta);
  BCC_ASSIGN_OR_RETURN(const SimSummary delta_summary, delta_sim.Run());

  BCC_RETURN_IF_ERROR(delta_sim.VerifyDeltaTrackers());
  if (delta_summary.delta_control_bits > delta_summary.full_control_bits) {
    return Status::Internal(
        StrFormat("delta mode shipped more control than the full baseline: %llu > %llu",
                  static_cast<unsigned long long>(delta_summary.delta_control_bits),
                  static_cast<unsigned long long>(delta_summary.full_control_bits)));
  }

  // Server state must be identical: the delta pipeline is broadcast-side
  // only and must not perturb the commit stream.
  if (full_summary.server_commits != delta_summary.server_commits) {
    return Status::Internal(StrFormat(
        "server commit counts diverge: full=%llu delta=%llu",
        static_cast<unsigned long long>(full_summary.server_commits),
        static_cast<unsigned long long>(delta_summary.server_commits)));
  }
  if (!(full_summary.abort_causes == delta_summary.abort_causes)) {
    return Status::Internal(StrFormat("abort breakdowns diverge: full=(%s) delta=(%s)",
                                      full_summary.abort_causes.ToString().c_str(),
                                      delta_summary.abort_causes.ToString().c_str()));
  }
  if (!ServerMatricesEqual(full_sim.manager(), delta_sim.manager())) {
    return Status::Internal("server F-Matrices diverge between full and delta runs");
  }
  if (!(full_sim.manager().store().committed() == delta_sim.manager().store().committed())) {
    return Status::Internal("server stores diverge between full and delta runs");
  }

  // Per-client decision parity (the CrossCheckEngines contract).
  if (full_sim.decisions().size() != delta_sim.decisions().size()) {
    return Status::Internal("client counts diverge between full and delta runs");
  }
  for (size_t c = 0; c < full_sim.decisions().size(); ++c) {
    const auto& a = full_sim.decisions()[c];
    const auto& b = delta_sim.decisions()[c];
    if (a.size() != b.size()) {
      return Status::Internal(StrFormat("client %zu completed %zu txns full vs %zu delta", c,
                                        a.size(), b.size()));
    }
    for (size_t k = 0; k < a.size(); ++k) {
      if (!(a[k] == b[k])) {
        return Status::Internal(
            StrFormat("client %zu txn %zu decisions diverge between full and delta", c, k));
      }
    }
  }
  return Status::OK();
}

namespace {

/// Field-by-field equality of every non-channel summary field (doubles are
/// compared bit-exactly: identical event sequences must produce identical
/// arithmetic).
Status CompareSummaries(const SimSummary& a, const SimSummary& b,
                        const char* label_a = "direct", const char* label_b = "channel") {
  const auto check = [&](const char* field, auto x, auto y) -> Status {
    if (x == y) return Status::OK();
    return Status::Internal(StrFormat("summary field %s diverges: %s=%s %s=%s", field, label_a,
                                      StrFormat("%g", static_cast<double>(x)).c_str(), label_b,
                                      StrFormat("%g", static_cast<double>(y)).c_str()));
  };
  BCC_RETURN_IF_ERROR(check("mean_response_time", a.mean_response_time, b.mean_response_time));
  BCC_RETURN_IF_ERROR(
      check("response_ci_half_width", a.response_ci_half_width, b.response_ci_half_width));
  BCC_RETURN_IF_ERROR(check("response_p50", a.response_p50, b.response_p50));
  BCC_RETURN_IF_ERROR(check("response_p95", a.response_p95, b.response_p95));
  BCC_RETURN_IF_ERROR(check("restart_ratio", a.restart_ratio, b.restart_ratio));
  BCC_RETURN_IF_ERROR(check("measured_txns", a.measured_txns, b.measured_txns));
  BCC_RETURN_IF_ERROR(check("total_txns", a.total_txns, b.total_txns));
  BCC_RETURN_IF_ERROR(check("total_restarts", a.total_restarts, b.total_restarts));
  BCC_RETURN_IF_ERROR(check("cycles_elapsed", a.cycles_elapsed, b.cycles_elapsed));
  BCC_RETURN_IF_ERROR(check("server_commits", a.server_commits, b.server_commits));
  BCC_RETURN_IF_ERROR(check("sim_end_time", a.sim_end_time, b.sim_end_time));
  BCC_RETURN_IF_ERROR(check("censored_txns", a.censored_txns, b.censored_txns));
  BCC_RETURN_IF_ERROR(check("delta_cycles", a.delta_cycles, b.delta_cycles));
  BCC_RETURN_IF_ERROR(
      check("delta_refresh_cycles", a.delta_refresh_cycles, b.delta_refresh_cycles));
  BCC_RETURN_IF_ERROR(check("delta_control_bits", a.delta_control_bits, b.delta_control_bits));
  BCC_RETURN_IF_ERROR(check("full_control_bits", a.full_control_bits, b.full_control_bits));
  BCC_RETURN_IF_ERROR(check("delta_stall_waits", a.delta_stall_waits, b.delta_stall_waits));
  if (!(a.abort_causes == b.abort_causes)) {
    return Status::Internal(StrFormat("abort breakdowns diverge: %s=(%s) %s=(%s)", label_a,
                                      a.abort_causes.ToString().c_str(), label_b,
                                      b.abort_causes.ToString().c_str()));
  }
  return Status::OK();
}

}  // namespace

Status CrossCheckLossless(SimConfig config) {
  if (config.stop_after_cycles == 0) {
    return Status::InvalidArgument("CrossCheckLossless requires stop_after_cycles > 0");
  }
  config.record_decisions = true;
  // The cycle cutoff is the only stop condition, so both runs see the same
  // timing-independent prefix of every client's transaction stream.
  config.num_client_txns = std::numeric_limits<uint32_t>::max();
  config.channel_loss_rate = 0;
  config.channel_corrupt_rate = 0;
  config.channel_truncate_rate = 0;
  config.channel_burst = false;

  SimConfig direct = config;
  direct.channel_broadcast = false;
  SimConfig channel = config;
  channel.channel_broadcast = true;

  BroadcastSim direct_sim(direct);
  BCC_ASSIGN_OR_RETURN(const SimSummary direct_summary, direct_sim.Run());
  BroadcastSim channel_sim(channel);
  BCC_ASSIGN_OR_RETURN(const SimSummary channel_summary, channel_sim.Run());

  // A rate-0 channel must deliver every frame undamaged...
  if (channel_summary.channel.frames_sent == 0) {
    return Status::Internal("channel run transmitted no frames");
  }
  if (channel_summary.channel.frames_dropped != 0 ||
      channel_summary.channel.frames_rejected != 0 ||
      channel_summary.channel.frames_delivered != channel_summary.channel.frames_sent ||
      channel_summary.channel.control_losses != 0 ||
      channel_summary.channel.data_losses != 0 || channel_summary.channel.stalls != 0) {
    return Status::Internal("rate-0 channel run reported losses or stalls");
  }

  // ...and reproduce the direct path bit-exactly: summary, server state, and
  // every client's decision log.
  BCC_RETURN_IF_ERROR(CompareSummaries(direct_summary, channel_summary));
  if (!ServerMatricesEqual(direct_sim.manager(), channel_sim.manager())) {
    return Status::Internal("server F-Matrices diverge between direct and channel runs");
  }
  if (!(direct_sim.manager().store().committed() ==
        channel_sim.manager().store().committed())) {
    return Status::Internal("server stores diverge between direct and channel runs");
  }
  if (direct_sim.decisions().size() != channel_sim.decisions().size()) {
    return Status::Internal("client counts diverge between direct and channel runs");
  }
  for (size_t c = 0; c < direct_sim.decisions().size(); ++c) {
    const auto& a = direct_sim.decisions()[c];
    const auto& b = channel_sim.decisions()[c];
    if (a.size() != b.size()) {
      return Status::Internal(StrFormat("client %zu completed %zu txns direct vs %zu channel",
                                        c, a.size(), b.size()));
    }
    for (size_t k = 0; k < a.size(); ++k) {
      if (!(a[k] == b[k])) {
        return Status::Internal(
            StrFormat("client %zu txn %zu decisions diverge between direct and channel", c, k));
      }
    }
  }
  return Status::OK();
}

Status CrossCheckSparseMode(SimConfig config) {
  if (config.stop_after_cycles == 0) {
    return Status::InvalidArgument("CrossCheckSparseMode requires stop_after_cycles > 0");
  }
  if (config.sparse_compaction_period > 0) {
    // Compaction aliases stale entries upward; the server's dependency fold
    // (dep(i) = max_k C(i, k)) then mixes aliased and in-window values, so
    // decisions are conservative-safe but not bit-identical to dense. Audit
    // compacted runs with VerifyOracle instead.
    return Status::InvalidArgument(
        "CrossCheckSparseMode requires sparse_compaction_period == 0 (compaction is "
        "conservative, not decision-identical)");
  }
  config.record_decisions = true;
  // The cycle cutoff is the only stop condition, so both runs see the same
  // timing-independent prefix of every client's transaction stream.
  config.num_client_txns = std::numeric_limits<uint32_t>::max();

  SimConfig sparse = config;
  sparse.matrix_mode = MatrixMode::kSparse;
  SimConfig dense = config;
  dense.matrix_mode = MatrixMode::kDense;
  dense.sparse_compaction_period = 0;

  BroadcastSim dense_sim(dense);
  BCC_ASSIGN_OR_RETURN(const SimSummary dense_summary, dense_sim.Run());
  BroadcastSim sparse_sim(sparse);
  BCC_ASSIGN_OR_RETURN(const SimSummary sparse_summary, sparse_sim.Run());

  // The two runs must be bit-identical in every decision-relevant field;
  // only the matrix_* accounting fields (absent from CompareSummaries) may
  // differ between representations.
  BCC_RETURN_IF_ERROR(CompareSummaries(dense_summary, sparse_summary, "dense", "sparse"));
  if (sparse.delta_broadcast) BCC_RETURN_IF_ERROR(sparse_sim.VerifyDeltaTrackers());
  if (!ServerMatricesEqual(dense_sim.manager(), sparse_sim.manager())) {
    return Status::Internal("server control matrices diverge between dense and sparse runs");
  }
  if (!(dense_sim.manager().store().committed() ==
        sparse_sim.manager().store().committed())) {
    return Status::Internal("server stores diverge between dense and sparse runs");
  }
  if (dense_sim.decisions().size() != sparse_sim.decisions().size()) {
    return Status::Internal("client counts diverge between dense and sparse runs");
  }
  for (size_t c = 0; c < dense_sim.decisions().size(); ++c) {
    const auto& a = dense_sim.decisions()[c];
    const auto& b = sparse_sim.decisions()[c];
    if (a.size() != b.size()) {
      return Status::Internal(StrFormat("client %zu completed %zu txns dense vs %zu sparse", c,
                                        a.size(), b.size()));
    }
    for (size_t k = 0; k < a.size(); ++k) {
      if (!(a[k] == b[k])) {
        return Status::Internal(
            StrFormat("client %zu txn %zu decisions diverge between dense and sparse", c, k));
      }
    }
  }
  return Status::OK();
}

}  // namespace bcc
