#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace bcc {

void StreamingStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::ConfidenceHalfWidth(double confidence) const {
  if (count_ < 2) return 0.0;
  const double z = NormalQuantileTwoSided(confidence);
  return z * stddev() / std::sqrt(static_cast<double>(count_));
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {

// Acklam's rational approximation to the standard normal inverse CDF.
double NormalInverseCdf(double p) {
  assert(p > 0.0 && p < 1.0);
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

}  // namespace

double NormalQuantileTwoSided(double confidence) {
  assert(confidence > 0.0 && confidence < 1.0);
  return NormalInverseCdf(0.5 + confidence / 2.0);
}

Histogram::Histogram(double lo, double hi, size_t buckets) : lo_(lo), hi_(hi) {
  assert(hi > lo && buckets > 0);
  counts_.assign(buckets, 0);
}

void Histogram::Add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<int64_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

double Histogram::Quantile(double p) const {
  if (total_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(total_);
  double cum = 0.0;
  const double bucket_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double within = (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + within) * bucket_width;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ToAscii(size_t width) const {
  uint64_t peak = 0;
  for (uint64_t c : counts_) peak = std::max(peak, c);
  if (peak == 0) return "(empty histogram)\n";
  std::string out;
  const double bucket_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  char line[160];
  for (size_t i = 0; i < counts_.size(); ++i) {
    const size_t bar = static_cast<size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) * static_cast<double>(width));
    std::snprintf(line, sizeof(line), "[%11.3g, %11.3g) %8llu ",
                  lo_ + static_cast<double>(i) * bucket_width,
                  lo_ + static_cast<double>(i + 1) * bucket_width,
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace bcc
