// StatusOr<T>: the value-or-error companion of Status.

#ifndef BCC_COMMON_STATUSOR_H_
#define BCC_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace bcc {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Constructing from an OK status is a programming error
/// (asserted in debug builds, normalized to kInternal otherwise).
template <typename T>
class StatusOr {
 public:
  /// Error state.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "StatusOr constructed from OK status without a value");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status without a value");
    }
  }

  /// Value state.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a StatusOr), propagating the error or binding the
/// value to `lhs`.
#define BCC_ASSIGN_OR_RETURN(lhs, rexpr) \
  BCC_ASSIGN_OR_RETURN_IMPL_(BCC_STATUSOR_CONCAT_(bcc_statusor_tmp_, __LINE__), lhs, rexpr)

#define BCC_STATUSOR_CONCAT_INNER_(a, b) a##b
#define BCC_STATUSOR_CONCAT_(a, b) BCC_STATUSOR_CONCAT_INNER_(a, b)
#define BCC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace bcc

#endif  // BCC_COMMON_STATUSOR_H_
