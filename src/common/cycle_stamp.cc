#include "common/cycle_stamp.h"

#include <cassert>

namespace bcc {

CycleStampCodec::CycleStampCodec(unsigned bits) : bits_(bits) {
  assert(bits >= 1 && bits <= 32);
  modulus_ = uint64_t{1} << bits;
}

Cycle CycleStampCodec::Decode(uint32_t residue, Cycle current) const {
  const uint64_t mask = modulus_ - 1;
  const uint64_t r = residue & mask;
  const uint64_t cur_residue = current & mask;
  // Distance (mod modulus) back from the current cycle to the stamp.
  const uint64_t back = (cur_residue - r) & mask;
  // A stamp cannot denote a future cycle; `back` cycles before `current` is
  // the most recent candidate. Clamp at 0 for stamps near the epoch.
  return back <= current ? current - back : 0;
}

}  // namespace bcc
