#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bcc {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(&sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ull;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  // Inverse-CDF; 1 - U avoids log(0).
  return -mean * std::log(1.0 - NextDouble());
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  assert(k <= n);
  if (n > kSampleRejectionThreshold && k < n / 16) {
    // Sparse regime: rejection sampling is O(k^2) with a negligible collision
    // rate, where the Fisher-Yates path below pays an O(n) allocation per
    // call — 4 MB per 8-element sample at n = 10^6.
    std::vector<uint32_t> out;
    out.reserve(k);
    while (out.size() < k) {
      const uint32_t v = static_cast<uint32_t>(NextBounded(n));
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
    }
    return out;
  }
  // Partial Fisher-Yates over an index vector.
  std::vector<uint32_t> idx(n);
  for (uint32_t i = 0; i < n; ++i) idx[i] = i;
  for (uint32_t i = 0; i < k; ++i) {
    const uint32_t j = i + static_cast<uint32_t>(NextBounded(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Split() { return Rng(NextU64() ^ 0xd1b54a32d192ed03ull); }

}  // namespace bcc
