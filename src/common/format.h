// printf-style string helpers (libstdc++ 12 lacks <format>).

#ifndef BCC_COMMON_FORMAT_H_
#define BCC_COMMON_FORMAT_H_

#include <string>

namespace bcc {

/// snprintf into a std::string. Attribute-checked like printf.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Renders a count of bit-units compactly, e.g. "3.18e6 bits".
std::string FormatBitUnits(double bit_units);

/// Renders a double with engineering-style precision for tables.
std::string FormatEng(double v, int precision = 4);

}  // namespace bcc

#endif  // BCC_COMMON_FORMAT_H_
