#include "common/format.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace bcc {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string FormatBitUnits(double bit_units) {
  if (bit_units >= 1e6) return StrFormat("%.2fe6 bits", bit_units / 1e6);
  if (bit_units >= 1e3) return StrFormat("%.2fe3 bits", bit_units / 1e3);
  return StrFormat("%.0f bits", bit_units);
}

std::string FormatEng(double v, int precision) { return StrFormat("%.*g", precision, v); }

}  // namespace bcc
