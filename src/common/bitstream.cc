#include "common/bitstream.h"

#include <cassert>

namespace bcc {

void BitWriter::Write(uint32_t value, unsigned bits) {
  assert(bits >= 1 && bits <= 32);
  for (unsigned b = 0; b < bits; ++b) {
    if (bit_size_ % 8 == 0) bytes_.push_back(0);
    if ((value >> b) & 1) {
      bytes_.back() |= static_cast<uint8_t>(1u << (bit_size_ % 8));
    }
    ++bit_size_;
  }
}

Status BitReader::Read(unsigned bits, uint32_t* value) {
  assert(bits >= 1 && bits <= 32);
  if (bits > bits_remaining()) {
    return Status::OutOfRange("bit buffer exhausted");
  }
  uint32_t out = 0;
  for (unsigned b = 0; b < bits; ++b) {
    const size_t byte = cursor_ / 8;
    const unsigned bit = cursor_ % 8;
    if ((bytes_[byte] >> bit) & 1) out |= (1u << b);
    ++cursor_;
  }
  *value = out;
  return Status::OK();
}

}  // namespace bcc
