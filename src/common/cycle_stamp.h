// Modulo broadcast-cycle timestamps (Section 3.2.1 of the paper).
//
// The control matrix stores commit-cycle numbers. To bound the per-entry
// wire size, the paper stores cycle numbers modulo (max_cycles + 1), where
// max_cycles bounds the number of broadcast cycles any transaction may span,
// and compares them with windowed (modulo) arithmetic. With a `bits`-bit
// timestamp, max_cycles = 2^bits - 1.
//
// Decoding is anchored at the *current* cycle: an encoded stamp denotes the
// most recent absolute cycle <= current whose residue matches. Entries older
// than the window decode to a too-recent value; per the paper's protocol this
// can only cause spurious aborts (safe), never false acceptance — a property
// the test suite checks.

#ifndef BCC_COMMON_CYCLE_STAMP_H_
#define BCC_COMMON_CYCLE_STAMP_H_

#include <cstdint>

namespace bcc {

/// Absolute broadcast cycle number (cycle 0 = the imaginary cycle in which
/// the initial transaction t0 writes every object).
using Cycle = uint64_t;

/// Encodes/decodes absolute cycle numbers into `bits`-bit residues.
class CycleStampCodec {
 public:
  /// `bits` in [1, 32]; the representable window is 2^bits cycles.
  explicit CycleStampCodec(unsigned bits);

  unsigned bits() const { return bits_; }
  /// Number of distinct residues, i.e. max_cycles + 1.
  uint64_t modulus() const { return modulus_; }
  /// Maximum transaction span (in cycles) that decodes unambiguously.
  uint64_t max_cycles() const { return modulus_ - 1; }

  /// Absolute cycle -> wire residue.
  uint32_t Encode(Cycle absolute) const {
    return static_cast<uint32_t>(absolute & (modulus_ - 1));
  }

  /// Wire residue -> most recent absolute cycle <= `current` with that
  /// residue. Exact whenever current - absolute <= max_cycles().
  Cycle Decode(uint32_t residue, Cycle current) const;

 private:
  unsigned bits_;
  uint64_t modulus_;
};

}  // namespace bcc

#endif  // BCC_COMMON_CYCLE_STAMP_H_
