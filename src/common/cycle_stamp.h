// Modulo broadcast-cycle timestamps (Section 3.2.1 of the paper).
//
// The control matrix stores commit-cycle numbers. To bound the per-entry
// wire size, the paper stores cycle numbers modulo (max_cycles + 1), where
// max_cycles bounds the number of broadcast cycles any transaction may span,
// and compares them with windowed (modulo) arithmetic. With a `bits`-bit
// timestamp, max_cycles = 2^bits - 1.
//
// Decoding is anchored at the *current* cycle: an encoded stamp denotes the
// most recent absolute cycle <= current whose residue matches. Entries older
// than the window decode to a too-recent value; per the paper's protocol this
// can only cause spurious aborts (safe), never false acceptance — a property
// the test suite checks.

#ifndef BCC_COMMON_CYCLE_STAMP_H_
#define BCC_COMMON_CYCLE_STAMP_H_

#include <cstdint>

namespace bcc {

/// Absolute broadcast cycle number (cycle 0 = the imaginary cycle in which
/// the initial transaction t0 writes every object).
using Cycle = uint64_t;

/// Encodes/decodes absolute cycle numbers into `bits`-bit residues.
class CycleStampCodec {
 public:
  /// `bits` in [1, 32]; the representable window is 2^bits cycles.
  explicit CycleStampCodec(unsigned bits);

  unsigned bits() const { return bits_; }
  /// Number of distinct residues, i.e. max_cycles + 1.
  uint64_t modulus() const { return modulus_; }
  /// Maximum transaction span (in cycles) that decodes unambiguously.
  uint64_t max_cycles() const { return modulus_ - 1; }

  /// Absolute cycle -> wire residue.
  uint32_t Encode(Cycle absolute) const {
    return static_cast<uint32_t>(absolute & (modulus_ - 1));
  }

  /// Wire residue -> most recent absolute cycle <= `current` with that
  /// residue. Exact whenever current - absolute <= max_cycles().
  ///
  /// Safety invariant (regression-tested in cycle_stamp_test.cc): for every
  /// true stamp c <= current, Decode(Encode(c), current) >= c. Out-of-window
  /// stamps alias UPWARD — to c + k * modulus() for the largest k keeping the
  /// result <= current. Because every read condition accepts only when the
  /// control stamp is strictly BELOW a read cycle (FMatrix::ReadCondition,
  /// DatacycleReadCondition, RMatrixReadCondition), overestimating a stamp
  /// can only flip accept -> abort (spurious abort), never abort -> accept.
  ///
  /// The clamp-to-0 branch below is unreachable from any Encode(c) with
  /// c <= current: the most recent matching candidate is c + k * modulus()
  /// >= c >= 0, never "before cycle 0". It fires only for residues no valid
  /// encode produced (possible while current < max_cycles(), where some
  /// residues denote no cycle at all) and maps them to cycle 0, the
  /// imaginary t0 write — i.e. well-formed broadcasts never take it.
  Cycle Decode(uint32_t residue, Cycle current) const;

 private:
  unsigned bits_;
  uint64_t modulus_;
};

}  // namespace bcc

#endif  // BCC_COMMON_CYCLE_STAMP_H_
