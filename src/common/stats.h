// Streaming statistics used by the simulator's metrics pipeline.

#ifndef BCC_COMMON_STATS_H_
#define BCC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace bcc {

/// Single-pass mean/variance accumulator (Welford's algorithm).
class StreamingStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Half-width of the normal-approximation confidence interval at the given
  /// confidence level (default 95%). Returns 0 for fewer than two samples.
  double ConfidenceHalfWidth(double confidence = 0.95) const;

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const StreamingStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Two-sided standard-normal quantile for the given confidence level, e.g.
/// 0.95 -> 1.95996. Computed via Acklam's inverse-CDF approximation.
double NormalQuantileTwoSided(double confidence);

/// Fixed-bucket histogram over [lo, hi); values outside are clamped into the
/// first/last bucket. Used for response-time distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  size_t count() const { return total_; }
  const std::vector<uint64_t>& buckets() const { return counts_; }

  /// Approximate p-quantile (0 <= p <= 1) by linear interpolation within the
  /// containing bucket. Returns 0 when empty.
  double Quantile(double p) const;

  /// Multi-line ASCII rendering, `width` characters for the largest bar.
  std::string ToAscii(size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<uint64_t> counts_;
  size_t total_ = 0;
};

}  // namespace bcc

#endif  // BCC_COMMON_STATS_H_
