// Deterministic pseudo-random number generation for simulations and tests.
//
// Simulation results must be exactly reproducible from a seed, so we ship our
// own small generators (SplitMix64 for seeding, xoshiro256** for the stream)
// instead of relying on implementation-defined std::random distributions.

#ifndef BCC_COMMON_RNG_H_
#define BCC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace bcc {

/// SplitMix64 step; used to expand one seed into generator state.
uint64_t SplitMix64(uint64_t* state);

/// Deterministic, portable random number generator (xoshiro256**).
///
/// All distribution helpers are defined in terms of the raw 64-bit stream so
/// that sequences are identical on every platform/compiler.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64 bits.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) using Lemire rejection; bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// True with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  /// k distinct values sampled uniformly from [0, n); requires k <= n.
  /// Deterministic for a given (seed, n, k), but the two internal regimes
  /// draw different streams: n <= kSampleRejectionThreshold (every config the
  /// seeded test corpus uses) keeps the historical partial-Fisher-Yates
  /// sequence bit-for-bit, while larger n with k << n switches to rejection
  /// sampling so a small sample never pays an O(n) allocation (the n = 10^6
  /// sparse-matrix regime).
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  /// Regime boundary for SampleWithoutReplacement.
  static constexpr uint32_t kSampleRejectionThreshold = 65536;

  /// Derives an independent generator (for sub-streams) deterministically.
  Rng Split();

 private:
  uint64_t s_[4];
};

}  // namespace bcc

#endif  // BCC_COMMON_RNG_H_
