// Status: exception-free error model for the bcc library.
//
// Library code in bcc never throws on expected failure paths; fallible
// operations return Status (or StatusOr<T> from statusor.h) in the style of
// production database engines (RocksDB, Arrow).

#ifndef BCC_COMMON_STATUS_H_
#define BCC_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace bcc {

/// Machine-inspectable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kAborted = 6,          ///< Transaction aborted (consistency conflict).
  kResourceExhausted = 7,
  kInternal = 8,
  kUnimplemented = 9,
};

/// Human-readable name of a status code ("OK", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without producing a value.
///
/// A Status is either OK (the default) or carries a code plus a
/// human-readable message. Statuses are cheap to copy and move.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. A kOk code with a
  /// non-empty message is normalized to a plain OK status.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates a non-OK Status to the caller.
#define BCC_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::bcc::Status bcc_status_tmp_ = (expr);         \
    if (!bcc_status_tmp_.ok()) return bcc_status_tmp_; \
  } while (false)

}  // namespace bcc

#endif  // BCC_COMMON_STATUS_H_
