// Bit-granular serialization for broadcast control information. Timestamp
// residues are TS bits wide (Table 1: 8, but any 1..32), so columns are
// packed without byte alignment — the wire sizes the paper's overhead
// formulas count are exact.

#ifndef BCC_COMMON_BITSTREAM_H_
#define BCC_COMMON_BITSTREAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace bcc {

/// Append-only bit buffer (LSB-first within each byte).
class BitWriter {
 public:
  /// Appends the low `bits` bits of `value` (1..32).
  void Write(uint32_t value, unsigned bits);

  /// Total bits written so far.
  size_t bit_size() const { return bit_size_; }

  /// The packed bytes (final partial byte zero-padded).
  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
  size_t bit_size_ = 0;
};

/// Sequential reader over a packed bit buffer.
class BitReader {
 public:
  explicit BitReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  /// Reads `bits` (1..32) bits; OutOfRange past the end.
  Status Read(unsigned bits, uint32_t* value);

  size_t bits_remaining() const { return bytes_.size() * 8 - cursor_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t cursor_ = 0;
};

}  // namespace bcc

#endif  // BCC_COMMON_BITSTREAM_H_
