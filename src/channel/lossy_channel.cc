#include "channel/lossy_channel.h"

#include "common/format.h"

namespace bcc {

namespace {

Status ValidateRate(double rate, const char* name) {
  if (rate < 0 || rate > 1) {
    return Status::InvalidArgument(StrFormat("channel %s must be in [0, 1], got %g", name, rate));
  }
  return Status::OK();
}

/// Per-client channel seed: expands (sim seed, client index) through SplitMix64
/// with a salt so channel streams never collide with the workload streams that
/// `Rng::Split` derives from the same simulation seed.
uint64_t ChannelSeed(uint64_t seed, uint32_t client) {
  uint64_t state = seed ^ 0xC4A11E1DULL;
  SplitMix64(&state);
  state ^= 0x9E3779B97F4A7C15ULL * (client + 1);
  return SplitMix64(&state);
}

}  // namespace

Status ChannelFaultConfig::Validate() const {
  BCC_RETURN_IF_ERROR(ValidateRate(loss_rate, "loss_rate"));
  BCC_RETURN_IF_ERROR(ValidateRate(corrupt_rate, "corrupt_rate"));
  BCC_RETURN_IF_ERROR(ValidateRate(truncate_rate, "truncate_rate"));
  BCC_RETURN_IF_ERROR(ValidateRate(burst_loss_rate, "burst_loss_rate"));
  BCC_RETURN_IF_ERROR(ValidateRate(burst_enter_rate, "burst_enter_rate"));
  BCC_RETURN_IF_ERROR(ValidateRate(burst_exit_rate, "burst_exit_rate"));
  return Status::OK();
}

std::string ChannelFaultConfig::ToString() const {
  std::string out = StrFormat("loss=%g corrupt=%g truncate=%g", loss_rate, corrupt_rate,
                              truncate_rate);
  if (burst) {
    out += StrFormat(" burst(loss=%g enter=%g exit=%g)", burst_loss_rate, burst_enter_rate,
                     burst_exit_rate);
  }
  return out;
}

void ChannelStats::Accumulate(const ChannelStats& other) {
  frames_sent += other.frames_sent;
  frames_dropped += other.frames_dropped;
  frames_corrupted += other.frames_corrupted;
  frames_truncated += other.frames_truncated;
  frames_delivered += other.frames_delivered;
  frames_rejected += other.frames_rejected;
  frames_delivered_corrupt += other.frames_delivered_corrupt;
  control_losses += other.control_losses;
  data_losses += other.data_losses;
  stalls += other.stalls;
  resyncs += other.resyncs;
  tracker_desyncs += other.tracker_desyncs;
  loss_attributed_aborts += other.loss_attributed_aborts;
}

LossyChannel::LossyChannel(const ChannelFaultConfig& faults, uint64_t seed, uint32_t num_clients)
    : faults_(faults) {
  clients_.reserve(num_clients);
  for (uint32_t i = 0; i < num_clients; ++i) clients_.emplace_back(ChannelSeed(seed, i));
}

Transmission LossyChannel::Transmit(uint32_t client, std::span<const Frame> frames) {
  Transmission out;
  out.sent = frames.size();
  out.frames.reserve(frames.size());
  if (!faults_.AnyFaults()) {
    // Fault-free fast path: deliver everything, draw no randomness, so a
    // rate-0 channel is byte-identical to the direct handoff.
    for (const Frame& f : frames) out.frames.push_back(Delivery{f, false});
    return out;
  }

  ClientLink& link = clients_[client];
  for (const Frame& f : frames) {
    if (faults_.burst) {
      // Advance the Gilbert–Elliott state once per frame, then draw the loss
      // at the new state's rate.
      if (link.in_burst) {
        if (link.rng.NextBernoulli(faults_.burst_exit_rate)) link.in_burst = false;
      } else {
        if (link.rng.NextBernoulli(faults_.burst_enter_rate)) link.in_burst = true;
      }
    }
    const double loss = link.in_burst ? faults_.burst_loss_rate : faults_.loss_rate;
    if (link.rng.NextBernoulli(loss)) {
      ++out.dropped;
      continue;
    }
    Delivery d{f, false};
    if (link.rng.NextBernoulli(faults_.corrupt_rate)) {
      const uint64_t flips = 1 + link.rng.NextBounded(8);
      for (uint64_t k = 0; k < flips; ++k) {
        const uint64_t bit = link.rng.NextBounded(d.frame.bytes.size() * 8);
        d.frame.bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      }
      d.corrupted = true;
      ++out.corrupted;
    } else if (link.rng.NextBernoulli(faults_.truncate_rate)) {
      d.frame.bytes.resize(link.rng.NextBounded(d.frame.bytes.size()));
      d.corrupted = true;
      ++out.truncated;
    }
    out.frames.push_back(std::move(d));
  }
  return out;
}

}  // namespace bcc
