#include "channel/frame.h"

#include <array>
#include <cassert>

#include "common/bitstream.h"
#include "common/format.h"
#include "matrix/wire.h"

namespace bcc {

namespace {

/// Copies `nbits` bits from `reader` into `writer` in 32-bit chunks.
Status CopyBits(BitReader* reader, BitWriter* writer, uint64_t nbits) {
  while (nbits > 0) {
    const unsigned chunk = static_cast<unsigned>(nbits < 32 ? nbits : 32);
    uint32_t value = 0;
    BCC_RETURN_IF_ERROR(reader->Read(chunk, &value));
    writer->Write(value, chunk);
    nbits -= chunk;
  }
  return Status::OK();
}

void AppendPayloadBits(BitWriter* writer, const Payload& payload) {
  BitReader reader(payload.bytes);
  const Status s = CopyBits(&reader, writer, payload.bits);
  assert(s.ok());
  (void)s;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> bytes) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (const uint8_t b : bytes) crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

Status FrameCodec::ValidateGeometry(unsigned ts_bits, uint64_t frame_bits) {
  if (ts_bits < 1 || ts_bits > 32) {
    return Status::InvalidArgument("frame geometry: ts_bits must be in [1, 32]");
  }
  if (frame_bits % 8 != 0) {
    return Status::InvalidArgument("frame geometry: frame_bits must be a whole number of bytes");
  }
  const uint64_t header =
      ts_bits + kKindBits + kStreamIdBits + kSeqBits + kLastBits + kPayloadLenBits;
  if (frame_bits < header + kCrcBits + 32) {
    return Status::InvalidArgument(
        StrFormat("frame geometry: frame_bits=%llu leaves no useful payload capacity "
                  "(header %llu + crc %u + 32 minimum payload bits)",
                  static_cast<unsigned long long>(frame_bits),
                  static_cast<unsigned long long>(header), kCrcBits));
  }
  if (frame_bits - header - kCrcBits > 0xFFFFull) {
    return Status::InvalidArgument(
        "frame geometry: payload capacity exceeds the 16-bit payload-length field");
  }
  return Status::OK();
}

FrameCodec::FrameCodec(CycleStampCodec stamp_codec, uint64_t frame_bits)
    : stamp_codec_(stamp_codec), frame_bits_(frame_bits) {
  assert(ValidateGeometry(stamp_codec_.bits(), frame_bits_).ok());
}

std::vector<Frame> FrameCodec::EncodeStream(FrameKind kind, uint32_t stream_id, Cycle cycle,
                                            const Payload& payload) const {
  std::vector<Frame> out;
  size_t used = 0;
  EncodeStreamInto(kind, stream_id, cycle, payload, out, used);
  return out;
}

void FrameCodec::EncodeStreamInto(FrameKind kind, uint32_t stream_id, Cycle cycle,
                                  const Payload& payload, std::vector<Frame>& out,
                                  size_t& used) const {
  assert(stream_id < (1u << kStreamIdBits));
  assert(payload.bits <= payload.bytes.size() * 8);
  const uint64_t capacity = payload_capacity_bits();
  const uint64_t num_frames = payload.bits == 0 ? 1 : (payload.bits + capacity - 1) / capacity;
  assert(num_frames <= (1ull << kSeqBits));

  BitReader reader(payload.bytes);
  uint64_t remaining = payload.bits;
  for (uint64_t seq = 0; seq < num_frames; ++seq) {
    const uint64_t chunk = remaining < capacity ? remaining : capacity;
    const bool last = seq + 1 == num_frames;

    BitWriter w;
    w.Write(stamp_codec_.Encode(cycle), stamp_codec_.bits());
    w.Write(static_cast<uint32_t>(kind), kKindBits);
    w.Write(stream_id, kStreamIdBits);
    w.Write(static_cast<uint32_t>(seq), kSeqBits);
    w.Write(last ? 1u : 0u, kLastBits);
    w.Write(static_cast<uint32_t>(chunk), kPayloadLenBits);
    const Status copied = CopyBits(&reader, &w, chunk);
    assert(copied.ok());
    (void)copied;
    remaining -= chunk;
    // Zero-pad to the CRC position, then seal the frame.
    uint64_t pad = frame_bits_ - kCrcBits - w.bit_size();
    while (pad > 0) {
      const unsigned step = static_cast<unsigned>(pad < 32 ? pad : 32);
      w.Write(0, step);
      pad -= step;
    }
    const uint32_t crc = Crc32(w.bytes());
    w.Write(crc, kCrcBits);
    if (used < out.size()) {
      out[used].bytes.assign(w.bytes().begin(), w.bytes().end());
    } else {
      out.push_back(Frame{w.bytes()});
    }
    ++used;
  }
}

StatusOr<DecodedFrame> FrameCodec::Decode(const Frame& frame) const {
  if (frame.bytes.size() != frame_bytes()) {
    return Status::InvalidArgument(StrFormat("frame is %zu bytes, expected %zu",
                                             frame.bytes.size(), frame_bytes()));
  }
  const std::span<const uint8_t> body(frame.bytes.data(), frame.bytes.size() - kCrcBits / 8);
  BitReader crc_reader(
      std::span<const uint8_t>(frame.bytes.data() + body.size(), kCrcBits / 8));
  uint32_t stored_crc = 0;
  BCC_RETURN_IF_ERROR(crc_reader.Read(kCrcBits, &stored_crc));
  if (stored_crc != Crc32(body)) return Status::InvalidArgument("frame CRC mismatch");

  BitReader r(body);
  DecodedFrame out;
  uint32_t v = 0;
  BCC_RETURN_IF_ERROR(r.Read(stamp_codec_.bits(), &v));
  out.header.cycle_residue = v;
  BCC_RETURN_IF_ERROR(r.Read(kKindBits, &v));
  if (v > kMaxFrameKind) return Status::InvalidArgument("unknown frame kind");
  out.header.kind = static_cast<FrameKind>(v);
  BCC_RETURN_IF_ERROR(r.Read(kStreamIdBits, &v));
  out.header.stream_id = v;
  BCC_RETURN_IF_ERROR(r.Read(kSeqBits, &v));
  out.header.seq = v;
  BCC_RETURN_IF_ERROR(r.Read(kLastBits, &v));
  out.header.last = v != 0;
  BCC_RETURN_IF_ERROR(r.Read(kPayloadLenBits, &v));
  if (v > payload_capacity_bits()) {
    return Status::InvalidArgument("frame payload length exceeds capacity");
  }
  out.header.payload_bits = v;

  BitWriter payload;
  BCC_RETURN_IF_ERROR(CopyBits(&r, &payload, v));
  out.payload.bytes = payload.bytes();
  out.payload.bits = v;
  return out;
}

void StreamReassembler::Add(const DecodedFrame& frame) {
  if (broken_) return;
  const uint32_t seq = frame.header.seq;
  if (last_seq_known_) {
    // A frame past the last-flagged sequence, or a second, different
    // last-flagged frame, contradicts the stream's claimed extent.
    if (seq > last_seq_ || (frame.header.last && seq != last_seq_)) {
      broken_ = true;
      return;
    }
  } else if (frame.header.last) {
    if (!frames_.empty() && frames_.rbegin()->first > seq) {
      broken_ = true;  // already buffered a frame past the claimed last
      return;
    }
    last_seq_ = seq;
    last_seq_known_ = true;
  }
  const auto [it, inserted] = frames_.emplace(seq, frame.payload);
  if (!inserted && it->second.bits != frame.payload.bits) {
    broken_ = true;  // two valid frames for one seq disagreeing on size
  }
}

Payload StreamReassembler::Take() {
  BitWriter w;
  uint64_t bits = 0;
  for (auto& [seq, payload] : frames_) {
    AppendPayloadBits(&w, payload);
    bits += payload.bits;
  }
  return Payload{w.bytes(), bits};
}

Payload EncodeIndexPayload(const CycleIndex& index) {
  BitWriter w;
  w.Write(0xBCC1u, 16);  // magic
  w.Write(index.control_mode, 2);
  w.Write(index.num_objects, FrameCodec::kStreamIdBits);
  w.Write(index.cycle_low, 32);
  return Payload{w.bytes(), w.bit_size()};
}

StatusOr<CycleIndex> DecodeIndexPayload(const Payload& payload) {
  const uint64_t expected = 16 + 2 + FrameCodec::kStreamIdBits + 32;
  if (payload.bits != expected) {
    return Status::InvalidArgument("index payload has the wrong size");
  }
  BitReader r(payload.bytes);
  uint32_t v = 0;
  BCC_RETURN_IF_ERROR(r.Read(16, &v));
  if (v != 0xBCC1u) return Status::InvalidArgument("index payload magic mismatch");
  CycleIndex index;
  BCC_RETURN_IF_ERROR(r.Read(2, &v));
  if (v > CycleIndex::kControlRefresh) {
    return Status::InvalidArgument("index payload has an unknown control mode");
  }
  index.control_mode = static_cast<uint8_t>(v);
  BCC_RETURN_IF_ERROR(r.Read(FrameCodec::kStreamIdBits, &v));
  index.num_objects = v;
  BCC_RETURN_IF_ERROR(r.Read(32, &v));
  index.cycle_low = v;
  return index;
}

Payload EncodeObjectPayload(const ObjectVersion& version, uint64_t object_size_bits) {
  BitWriter w;
  w.Write(static_cast<uint32_t>(version.value & 0xFFFFFFFFull), 32);
  w.Write(static_cast<uint32_t>(version.value >> 32), 32);
  w.Write(version.writer, 32);
  w.Write(static_cast<uint32_t>(version.cycle & 0xFFFFFFFFull), 32);
  w.Write(static_cast<uint32_t>(version.cycle >> 32), 32);
  uint64_t pad =
      object_size_bits > kObjectVersionBits ? object_size_bits - kObjectVersionBits : 0;
  while (pad > 0) {
    const unsigned step = static_cast<unsigned>(pad < 32 ? pad : 32);
    w.Write(0, step);
    pad -= step;
  }
  return Payload{w.bytes(), w.bit_size()};
}

StatusOr<ObjectVersion> DecodeObjectPayload(const Payload& payload) {
  if (payload.bits < kObjectVersionBits) {
    return Status::InvalidArgument("object payload shorter than an ObjectVersion");
  }
  BitReader r(payload.bytes);
  uint32_t lo = 0, hi = 0;
  ObjectVersion version;
  BCC_RETURN_IF_ERROR(r.Read(32, &lo));
  BCC_RETURN_IF_ERROR(r.Read(32, &hi));
  version.value = (static_cast<uint64_t>(hi) << 32) | lo;
  BCC_RETURN_IF_ERROR(r.Read(32, &lo));
  version.writer = lo;
  BCC_RETURN_IF_ERROR(r.Read(32, &lo));
  BCC_RETURN_IF_ERROR(r.Read(32, &hi));
  version.cycle = (static_cast<uint64_t>(hi) << 32) | lo;
  return version;
}

std::vector<Frame> EncodeCycleFrames(const CycleSnapshot& snap, const FrameCodec& codec,
                                     uint64_t object_size_bits) {
  std::vector<Frame> out;
  EncodeCycleFramesInto(snap, codec, object_size_bits, out);
  return out;
}

void EncodeCycleFramesInto(const CycleSnapshot& snap, const FrameCodec& codec,
                           uint64_t object_size_bits, std::vector<Frame>& out) {
  const CycleStampCodec& sc = codec.stamp_codec();
  const uint32_t n = static_cast<uint32_t>(snap.values.size());
  size_t used = 0;

  const auto emit = [&](FrameKind kind, uint32_t stream_id, const Payload& payload) {
    codec.EncodeStreamInto(kind, stream_id, snap.cycle, payload, out, used);
  };

  CycleIndex index;
  index.num_objects = n;
  index.cycle_low = static_cast<uint32_t>(snap.cycle & 0xFFFFFFFFull);
  index.control_mode = !snap.delta.has_value() ? CycleIndex::kControlColumns
                       : snap.delta->full_refresh ? CycleIndex::kControlRefresh
                                                  : CycleIndex::kControlDelta;
  emit(FrameKind::kIndex, 0, EncodeIndexPayload(index));

  if (snap.delta.has_value()) {
    // Snapshot+delta mode: the control segment rides in one block right
    // after the index.
    if (snap.delta->full_refresh) {
      // Sparse snapshots pack byte-identically to dense ones (the on-air
      // format stays dense), so downstream frames and seeded loss patterns
      // do not depend on the server's representation.
      emit(FrameKind::kControlRefresh, 0,
           Payload{snap.sparse_f_matrix != nullptr ? PackMatrix(*snap.sparse_f_matrix, sc)
                                                   : PackMatrix(snap.f_matrix, sc),
                   FullMatrixControlBits(n, sc.bits())});
    } else {
      emit(FrameKind::kControlDelta, 0,
           Payload{DeltaCodec::Pack(snap.delta->entries, n, sc),
                   DeltaCodec::EncodedBits(snap.delta->entries.size(), n, sc.bits())});
    }
    for (uint32_t j = 0; j < n; ++j) {
      emit(FrameKind::kData, j, EncodeObjectPayload(snap.values[j], object_size_bits));
    }
    out.resize(used);
    return;
  }

  // Full mode: the on-air slot layout — each object's data page immediately
  // followed by its control column.
  std::vector<Cycle> sparse_col;
  for (uint32_t j = 0; j < n; ++j) {
    emit(FrameKind::kData, j, EncodeObjectPayload(snap.values[j], object_size_bits));
    if (snap.sparse_f_matrix != nullptr) {
      snap.sparse_f_matrix->MaterializeColumn(j, sparse_col);
      emit(FrameKind::kControlColumn, j,
           Payload{PackStamps(sparse_col, sc), static_cast<uint64_t>(n) * sc.bits()});
    } else {
      emit(FrameKind::kControlColumn, j,
           Payload{PackStamps(snap.f_matrix.Column(j), sc),
                   static_cast<uint64_t>(n) * sc.bits()});
    }
  }
  out.resize(used);
}

}  // namespace bcc
