// Fault-injecting broadcast channel.
//
// The server transmits one cycle's frame sequence; each client receives its
// own independently-faulted copy (broadcast loss is per-receiver: different
// clients miss different frames of the same transmission). Faults are frame
// drops, bit flips, and truncations, drawn from a per-client RNG that is
// seeded from `SimConfig::seed` independently of the workload streams — so
// enabling the channel at fault rate 0 leaves every workload draw untouched,
// and the DES and concurrent engines see identical fault schedules.
//
// Burst loss uses a two-state Gilbert–Elliott model: a Good state losing at
// `loss_rate` and a Bad state losing at `burst_loss_rate`, with geometric
// transitions (`burst_enter_rate` Good->Bad, `burst_exit_rate` Bad->Good)
// advanced once per frame. With `burst = false` the channel is Bernoulli.

#ifndef BCC_CHANNEL_LOSSY_CHANNEL_H_
#define BCC_CHANNEL_LOSSY_CHANNEL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "channel/frame.h"
#include "common/rng.h"
#include "common/status.h"

namespace bcc {

/// Fault rates for the lossy channel. All rates are probabilities in [0, 1],
/// applied per frame in the order: loss, corruption, truncation.
struct ChannelFaultConfig {
  double loss_rate = 0;      ///< P(frame dropped) in the Good state
  double corrupt_rate = 0;   ///< P(bit flips) given the frame survived
  double truncate_rate = 0;  ///< P(truncation) given survived and not flipped

  bool burst = false;            ///< enable the Gilbert–Elliott Bad state
  double burst_loss_rate = 0.9;  ///< P(frame dropped) in the Bad state
  double burst_enter_rate = 0.02;  ///< P(Good -> Bad) per frame
  double burst_exit_rate = 0.25;   ///< P(Bad -> Good) per frame

  /// True when any fault can occur (the fault-free path draws no randomness).
  bool AnyFaults() const {
    return loss_rate > 0 || corrupt_rate > 0 || truncate_rate > 0 ||
           (burst && burst_loss_rate > 0 && burst_enter_rate > 0);
  }

  /// All rates must lie in [0, 1].
  Status Validate() const;

  std::string ToString() const;

  bool operator==(const ChannelFaultConfig&) const = default;
};

/// Per-client channel/receiver counters. Accumulated across clients into
/// `SimSummary::channel`. Invariant: sent == dropped + delivered.
struct ChannelStats {
  uint64_t frames_sent = 0;       ///< frames transmitted to this client
  uint64_t frames_dropped = 0;    ///< erased by the channel (never arrive)
  uint64_t frames_corrupted = 0;  ///< delivered with flipped bits
  uint64_t frames_truncated = 0;  ///< delivered shorter than sent
  uint64_t frames_delivered = 0;  ///< arrived at the receiver (damaged or not)
  uint64_t frames_rejected = 0;   ///< arrived but failed CRC / framing checks
  uint64_t frames_delivered_corrupt = 0;  ///< damaged yet passed CRC (counted)

  uint64_t control_losses = 0;   ///< cycles x objects with unusable control info
  uint64_t data_losses = 0;      ///< cycles x objects with unusable data pages
  uint64_t stalls = 0;           ///< reads deferred to a later cycle by loss
  uint64_t resyncs = 0;          ///< recoveries from a desynchronized state
  uint64_t tracker_desyncs = 0;  ///< delta-tracker losses of sync due to loss
  uint64_t loss_attributed_aborts = 0;  ///< aborts on reads that stalled first

  void Accumulate(const ChannelStats& other);

  bool operator==(const ChannelStats&) const = default;
};

/// One frame as it arrives at a client (possibly damaged in transit).
struct Delivery {
  Frame frame;
  bool corrupted = false;  ///< bits flipped or truncated on the air
};

/// Everything one client receives from one cycle's transmission.
struct Transmission {
  std::vector<Delivery> frames;
  uint64_t sent = 0;
  uint64_t dropped = 0;
  uint64_t corrupted = 0;
  uint64_t truncated = 0;
};

/// Broadcast channel with per-client fault injection. Deterministic: the
/// fault schedule of client i is a pure function of (seed, i) and the frame
/// count sequence, independent of other clients and of workload RNG draws.
class LossyChannel {
 public:
  /// `faults` must Validate(). `seed` is the simulation seed; `num_clients`
  /// receivers get independent fault streams.
  LossyChannel(const ChannelFaultConfig& faults, uint64_t seed, uint32_t num_clients);

  const ChannelFaultConfig& faults() const { return faults_; }
  uint32_t num_clients() const { return static_cast<uint32_t>(clients_.size()); }

  /// Transmits `frames` to client `client`, applying that client's faults.
  Transmission Transmit(uint32_t client, std::span<const Frame> frames);

 private:
  struct ClientLink {
    Rng rng;
    bool in_burst = false;
    explicit ClientLink(uint64_t seed) : rng(seed) {}
  };

  ChannelFaultConfig faults_;
  std::vector<ClientLink> clients_;
};

}  // namespace bcc

#endif  // BCC_CHANNEL_LOSSY_CHANNEL_H_
