// Frame codec for the lossy broadcast channel.
//
// Each broadcast cycle's on-air content — the index segment, every object's
// data page, and the control information (F-Matrix columns in full mode, a
// delta block or full refresh in snapshot+delta mode) — is packetized into
// fixed-size frames. A frame carries a header (cycle number mod 2^ts, frame
// kind, stream id, sequence number, last-frame flag, payload length), a
// bit-packed payload slice, zero padding, and a CRC32 trailer. Receivers
// reassemble per-(kind, stream) payloads from contiguous sequence numbers
// and reject anything whose CRC or framing fails — a lost or damaged frame
// makes a client MISS information (it must then stall; client/receiver.h),
// it never makes the client accept a corrupted stamp as valid.
//
// Frame layout (frame_bits total, byte-aligned, LSB-first bit packing):
//   cycle residue    ts bits   cycle number mod 2^ts (ties the frame to the
//                              cycle it was broadcast in)
//   kind             3 bits    FrameKind
//   stream id        20 bits   object id for data/column streams, else 0
//   sequence         16 bits   position within the stream, from 0
//   last flag        1 bit     set on the stream's final frame
//   payload length   16 bits   payload bits carried by THIS frame
//   payload          up to payload_capacity_bits()
//   zero padding     to frame_bits - 32
//   CRC32            32 bits   IEEE polynomial, over all preceding bytes

#ifndef BCC_CHANNEL_FRAME_H_
#define BCC_CHANNEL_FRAME_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/cycle_stamp.h"
#include "common/statusor.h"
#include "server/broadcast_server.h"

namespace bcc {

/// CRC32 (IEEE 802.3 polynomial, reflected). Exposed for tests.
uint32_t Crc32(std::span<const uint8_t> bytes);

/// What a frame carries.
enum class FrameKind : uint8_t {
  kIndex = 0,           ///< per-cycle index segment (mode, n, cycle)
  kData = 1,            ///< object payload; stream id = object id
  kControlColumn = 2,   ///< one F-Matrix column (full mode); stream id = column
  kControlDelta = 3,    ///< sparse delta block (snapshot+delta mode)
  kControlRefresh = 4,  ///< full-matrix refresh (snapshot+delta mode)
};
inline constexpr uint8_t kMaxFrameKind = static_cast<uint8_t>(FrameKind::kControlRefresh);

/// One fixed-size frame as it travels on the air.
struct Frame {
  std::vector<uint8_t> bytes;
};

/// A bit-exact payload: `bits` meaningful bits, zero-padded to whole bytes.
struct Payload {
  std::vector<uint8_t> bytes;
  uint64_t bits = 0;
};

/// Decoded header of a CRC-valid frame.
struct FrameHeader {
  uint32_t cycle_residue = 0;
  FrameKind kind = FrameKind::kIndex;
  uint32_t stream_id = 0;
  uint32_t seq = 0;
  bool last = false;
  uint32_t payload_bits = 0;
};

/// A CRC-valid frame split into header and payload slice.
struct DecodedFrame {
  FrameHeader header;
  Payload payload;
};

/// Packetizes payload streams into fixed-size frames and back.
class FrameCodec {
 public:
  static constexpr unsigned kKindBits = 3;
  static constexpr unsigned kStreamIdBits = 20;
  static constexpr unsigned kSeqBits = 16;
  static constexpr unsigned kLastBits = 1;
  static constexpr unsigned kPayloadLenBits = 16;
  static constexpr unsigned kCrcBits = 32;

  /// Frame geometry sanity: byte-aligned, header + CRC + a useful payload
  /// capacity (>= 32 bits) must fit, and the capacity must be addressable by
  /// the 16-bit payload-length field.
  static Status ValidateGeometry(unsigned ts_bits, uint64_t frame_bits);

  /// `frame_bits` must satisfy ValidateGeometry for the stamp codec's width.
  FrameCodec(CycleStampCodec stamp_codec, uint64_t frame_bits);

  const CycleStampCodec& stamp_codec() const { return stamp_codec_; }
  uint64_t frame_bits() const { return frame_bits_; }
  size_t frame_bytes() const { return static_cast<size_t>(frame_bits_ / 8); }
  uint64_t header_bits() const {
    return stamp_codec_.bits() + kKindBits + kStreamIdBits + kSeqBits + kLastBits +
           kPayloadLenBits;
  }
  uint64_t payload_capacity_bits() const { return frame_bits_ - header_bits() - kCrcBits; }

  /// Slices `payload` into >= 1 fixed-size frames (sequence 0.., last flag on
  /// the final one). An empty payload still yields one frame.
  std::vector<Frame> EncodeStream(FrameKind kind, uint32_t stream_id, Cycle cycle,
                                  const Payload& payload) const;

  /// Appends the stream's frames into `out` starting at index `*used`
  /// (advancing it), overwriting existing elements in place. Frames are
  /// fixed-size, so a caller cycling one vector re-fills the same byte
  /// buffers every cycle instead of reallocating them.
  void EncodeStreamInto(FrameKind kind, uint32_t stream_id, Cycle cycle, const Payload& payload,
                        std::vector<Frame>& out, size_t& used) const;

  /// Validates size, CRC, and header fields; returns the header plus the
  /// frame's payload slice. InvalidArgument on any framing violation.
  StatusOr<DecodedFrame> Decode(const Frame& frame) const;

 private:
  CycleStampCodec stamp_codec_;
  uint64_t frame_bits_;
};

/// Reassembles one (kind, stream id) payload from decoded frames fed in any
/// order — datagram semantics. Duplicates are ignored, reordering within the
/// stream is buffered, and a missing frame just leaves the stream incomplete
/// (the receiver's stall-on-miss path handles it). Only a *contradictory*
/// stream is marked broken: a frame sequenced past the last-flagged frame,
/// two different last-flagged sequence numbers, or two CRC-valid frames for
/// the same sequence number that disagree on payload size. A broken stream
/// is never complete.
class StreamReassembler {
 public:
  void Add(const DecodedFrame& frame);

  bool complete() const {
    return !broken_ && last_seq_known_ && frames_.size() == static_cast<size_t>(last_seq_) + 1;
  }
  bool broken() const { return broken_; }
  /// The reassembled payload, frames concatenated in sequence order
  /// (meaningful only when complete()).
  Payload Take();

 private:
  std::map<uint32_t, Payload> frames_;  // seq -> payload slice, dups ignored
  uint32_t last_seq_ = 0;
  bool last_seq_known_ = false;
  bool broken_ = false;
};

/// Index-segment payload: tells receivers how to interpret this cycle's
/// control segment (load-bearing in snapshot+delta mode).
struct CycleIndex {
  static constexpr uint8_t kControlColumns = 0;  ///< per-object column streams
  static constexpr uint8_t kControlDelta = 1;    ///< one sparse delta block
  static constexpr uint8_t kControlRefresh = 2;  ///< one full-matrix refresh

  uint8_t control_mode = kControlColumns;
  uint32_t num_objects = 0;
  uint32_t cycle_low = 0;  ///< low 32 bits of the absolute cycle
};

Payload EncodeIndexPayload(const CycleIndex& index);
StatusOr<CycleIndex> DecodeIndexPayload(const Payload& payload);

/// Object data page: the 160-bit ObjectVersion (value, writer, cycle) padded
/// with zeros to the simulated object size, so a bigger object spans more
/// frames and faces a proportionally higher loss probability.
inline constexpr uint64_t kObjectVersionBits = 160;

Payload EncodeObjectPayload(const ObjectVersion& version, uint64_t object_size_bits);
StatusOr<ObjectVersion> DecodeObjectPayload(const Payload& payload);

/// Packetizes one cycle's whole broadcast: the index segment, then per object
/// its data page followed by its control column (full mode), or the control
/// block right after the index (snapshot+delta mode, whose slot layout keeps
/// control in one segment). Frame order is the on-air order, so burst losses
/// hit adjacent slots exactly as they would on a real channel.
std::vector<Frame> EncodeCycleFrames(const CycleSnapshot& snap, const FrameCodec& codec,
                                     uint64_t object_size_bits);

/// Capacity-preserving variant: encodes into `out` (resized to the frame
/// count), reusing its vector storage and per-frame byte buffers across
/// cycles. The engines call this once per cycle with a long-lived buffer.
void EncodeCycleFramesInto(const CycleSnapshot& snap, const FrameCodec& codec,
                           uint64_t object_size_bits, std::vector<Frame>& out);

}  // namespace bcc

#endif  // BCC_CHANNEL_FRAME_H_
