// Operations: the events that histories are made of.

#ifndef BCC_HISTORY_OPERATION_H_
#define BCC_HISTORY_OPERATION_H_

#include <string>

#include "history/object_id.h"

namespace bcc {

/// Kind of a history event.
enum class OpType {
  kRead,    ///< r_t(ob)
  kWrite,   ///< w_t(ob)
  kCommit,  ///< c_t
  kAbort,   ///< a_t
};

/// One event of a history. `object` is meaningful only for reads/writes.
struct Operation {
  OpType type;
  TxnId txn;
  ObjectId object = 0;

  static Operation Read(TxnId t, ObjectId ob) { return {OpType::kRead, t, ob}; }
  static Operation Write(TxnId t, ObjectId ob) { return {OpType::kWrite, t, ob}; }
  static Operation Commit(TxnId t) { return {OpType::kCommit, t, 0}; }
  static Operation Abort(TxnId t) { return {OpType::kAbort, t, 0}; }

  bool IsAccess() const { return type == OpType::kRead || type == OpType::kWrite; }

  friend bool operator==(const Operation& a, const Operation& b) {
    return a.type == b.type && a.txn == b.txn &&
           (!a.IsAccess() || a.object == b.object);
  }

  /// Paper notation, e.g. "r1(ob3)", "w2(ob0)", "c2", "a4".
  std::string ToString() const;
};

}  // namespace bcc

#endif  // BCC_HISTORY_OPERATION_H_
