// Identifiers shared across the bcc library.

#ifndef BCC_HISTORY_OBJECT_ID_H_
#define BCC_HISTORY_OBJECT_ID_H_

#include <cstdint>

namespace bcc {

/// Database object (data item) identifier; objects are dense [0, n).
using ObjectId = uint32_t;

/// Transaction identifier. kInitTxn (0) is the paper's imaginary initial
/// transaction t0 that writes every object before the first broadcast cycle.
using TxnId = uint32_t;

/// The initial transaction t0.
inline constexpr TxnId kInitTxn = 0;

/// Sentinel for "no transaction".
inline constexpr TxnId kNoTxn = UINT32_MAX;

}  // namespace bcc

#endif  // BCC_HISTORY_OBJECT_ID_H_
