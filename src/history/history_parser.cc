#include "history/history_parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/format.h"

namespace bcc {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\'';
}

}  // namespace

std::string ParsedHistory::ToString() const {
  std::string out;
  for (size_t i = 0; i < history.ops().size(); ++i) {
    const Operation& op = history.ops()[i];
    if (i) out += ' ';
    switch (op.type) {
      case OpType::kRead:
        out += StrFormat("r%u(%s)", op.txn, object_names[op.object].c_str());
        break;
      case OpType::kWrite:
        out += StrFormat("w%u(%s)", op.txn, object_names[op.object].c_str());
        break;
      case OpType::kCommit:
        out += StrFormat("c%u", op.txn);
        break;
      case OpType::kAbort:
        out += StrFormat("a%u", op.txn);
        break;
    }
  }
  return out;
}

StatusOr<ParsedHistory> ParseHistory(std::string_view text) {
  ParsedHistory out;
  size_t i = 0;
  const size_t n = text.size();

  auto intern = [&out](const std::string& name) -> ObjectId {
    const auto it = out.object_ids.find(name);
    if (it != out.object_ids.end()) return it->second;
    const ObjectId id = static_cast<ObjectId>(out.object_names.size());
    out.object_names.push_back(name);
    out.object_ids.emplace(name, id);
    return id;
  };

  while (i < n) {
    if (std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
      continue;
    }
    const char kind = text[i];
    if (kind != 'r' && kind != 'w' && kind != 'c' && kind != 'a') {
      return Status::InvalidArgument(
          StrFormat("unexpected character '%c' at offset %zu", kind, i));
    }
    ++i;
    // Transaction number.
    size_t num_start = i;
    while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
    if (i == num_start) {
      return Status::InvalidArgument(
          StrFormat("expected transaction number after '%c' at offset %zu", kind, num_start));
    }
    const unsigned long txn =
        std::strtoul(std::string(text.substr(num_start, i - num_start)).c_str(), nullptr, 10);
    if (txn == 0) {
      return Status::InvalidArgument("transaction id 0 is reserved for t0");
    }
    const TxnId t = static_cast<TxnId>(txn);

    if (kind == 'c') {
      out.history.AppendCommit(t);
      continue;
    }
    if (kind == 'a') {
      out.history.AppendAbort(t);
      continue;
    }
    // Read/write: expect (name).
    if (i >= n || text[i] != '(') {
      return Status::InvalidArgument(StrFormat("expected '(' at offset %zu", i));
    }
    ++i;
    const size_t name_start = i;
    while (i < n && IsIdentChar(text[i])) ++i;
    if (i == name_start) {
      return Status::InvalidArgument(StrFormat("expected object name at offset %zu", name_start));
    }
    const std::string name(text.substr(name_start, i - name_start));
    if (i >= n || text[i] != ')') {
      return Status::InvalidArgument(StrFormat("expected ')' at offset %zu", i));
    }
    ++i;
    const ObjectId ob = intern(name);
    if (kind == 'r') {
      out.history.AppendRead(t, ob);
    } else {
      out.history.AppendWrite(t, ob);
    }
  }

  BCC_RETURN_IF_ERROR(out.history.Validate());
  return out;
}

History MustParseHistory(std::string_view text) {
  auto parsed = ParseHistory(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "MustParseHistory(\"%.*s\"): %s\n", static_cast<int>(text.size()),
                 text.data(), parsed.status().ToString().c_str());
    std::abort();
  }
  return std::move(parsed).value().history;
}

}  // namespace bcc
