#include "history/history.h"

#include <algorithm>
#include <deque>

#include "common/format.h"

namespace bcc {

namespace {

bool ContainsObject(const std::vector<ObjectId>& v, ObjectId ob) {
  return std::find(v.begin(), v.end(), ob) != v.end();
}

}  // namespace

bool TxnInfo::Reads(ObjectId ob) const { return ContainsObject(read_set, ob); }
bool TxnInfo::Writes(ObjectId ob) const { return ContainsObject(write_set, ob); }

History::History(std::vector<Operation> ops) : ops_(std::move(ops)) {}

void History::Append(const Operation& op) {
  ops_.push_back(op);
  index_built_ = false;
}

void History::BuildIndex() const {
  if (index_built_) return;
  txns_.clear();
  read_sources_.assign(ops_.size(), kNoTxn);
  reads_from_.clear();

  // Pass 1: per-transaction summaries and the set of ever-aborted txns.
  std::unordered_set<TxnId> aborted;
  for (size_t i = 0; i < ops_.size(); ++i) {
    const Operation& op = ops_[i];
    TxnInfo& info = txns_[op.txn];
    if (info.id == kNoTxn) info.id = op.txn;
    info.op_indices.push_back(i);
    switch (op.type) {
      case OpType::kRead:
        if (!info.Reads(op.object)) info.read_set.push_back(op.object);
        break;
      case OpType::kWrite:
        if (!info.Writes(op.object)) info.write_set.push_back(op.object);
        break;
      case OpType::kCommit:
        info.outcome = TxnOutcome::kCommitted;
        break;
      case OpType::kAbort:
        info.outcome = TxnOutcome::kAborted;
        aborted.insert(op.txn);
        break;
    }
  }

  // Pass 2: reads-from. A read observes the latest preceding write on the
  // same object by a never-aborted transaction, else the initial value (t0).
  std::unordered_map<ObjectId, TxnId> last_writer;
  for (size_t i = 0; i < ops_.size(); ++i) {
    const Operation& op = ops_[i];
    if (op.type == OpType::kWrite) {
      if (!aborted.contains(op.txn)) last_writer[op.object] = op.txn;
    } else if (op.type == OpType::kRead) {
      const auto it = last_writer.find(op.object);
      const TxnId writer = it == last_writer.end() ? kInitTxn : it->second;
      read_sources_[i] = writer;
      if (!aborted.contains(op.txn)) {
        const ReadsFromEdge edge{op.txn, op.object, writer};
        if (std::find(reads_from_.begin(), reads_from_.end(), edge) == reads_from_.end()) {
          reads_from_.push_back(edge);
        }
      }
    }
  }
  index_built_ = true;
}

std::vector<TxnId> History::TxnIds() const {
  BuildIndex();
  std::vector<TxnId> ids;
  ids.reserve(txns_.size());
  for (const auto& [id, info] : txns_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

const TxnInfo& History::Txn(TxnId t) const {
  BuildIndex();
  static const TxnInfo kAbsent;
  const auto it = txns_.find(t);
  return it == txns_.end() ? kAbsent : it->second;
}

bool History::Contains(TxnId t) const {
  BuildIndex();
  return txns_.contains(t);
}

std::vector<TxnId> History::CommittedUpdateTxns() const {
  BuildIndex();
  std::vector<TxnId> out;
  for (const Operation& op : ops_) {
    if (op.type == OpType::kCommit && txns_.at(op.txn).IsUpdate()) out.push_back(op.txn);
  }
  return out;
}

std::vector<TxnId> History::CommittedReadOnlyTxns() const {
  BuildIndex();
  std::vector<TxnId> out;
  for (const Operation& op : ops_) {
    if (op.type == OpType::kCommit && txns_.at(op.txn).IsReadOnly()) out.push_back(op.txn);
  }
  return out;
}

bool History::IsSerial() const {
  TxnId open = kNoTxn;
  std::unordered_set<TxnId> finished;
  for (const Operation& op : ops_) {
    if (finished.contains(op.txn)) return false;
    if (open == kNoTxn) {
      open = op.txn;
    } else if (op.txn != open) {
      return false;
    }
    if (op.type == OpType::kCommit || op.type == OpType::kAbort) {
      finished.insert(op.txn);
      open = kNoTxn;
    }
  }
  return open == kNoTxn;
}

Status History::Validate() const {
  std::unordered_set<TxnId> terminated;
  for (const Operation& op : ops_) {
    if (op.txn == kInitTxn) {
      return Status::InvalidArgument("transaction id 0 is reserved for the initial txn t0");
    }
    if (terminated.contains(op.txn)) {
      return Status::InvalidArgument(
          StrFormat("operation %s after transaction %u terminated", op.ToString().c_str(),
                    op.txn));
    }
    if (op.type == OpType::kCommit || op.type == OpType::kAbort) terminated.insert(op.txn);
  }
  return Status::OK();
}

Status History::ValidateAppendixAForm() const {
  BCC_RETURN_IF_ERROR(Validate());
  std::unordered_map<TxnId, bool> wrote;
  std::unordered_map<TxnId, std::unordered_set<ObjectId>> seen_reads;
  std::unordered_map<TxnId, std::unordered_set<ObjectId>> seen_writes;
  for (const Operation& op : ops_) {
    if (op.type == OpType::kRead) {
      if (wrote[op.txn]) {
        return Status::InvalidArgument(
            StrFormat("txn %u reads after writing (Appendix A form)", op.txn));
      }
      if (!seen_reads[op.txn].insert(op.object).second) {
        return Status::InvalidArgument(
            StrFormat("txn %u reads ob%u twice (Appendix A form)", op.txn, op.object));
      }
    } else if (op.type == OpType::kWrite) {
      wrote[op.txn] = true;
      if (!seen_writes[op.txn].insert(op.object).second) {
        return Status::InvalidArgument(
            StrFormat("txn %u writes ob%u twice (Appendix A form)", op.txn, op.object));
      }
    }
  }
  return Status::OK();
}

TxnId History::ReaderSource(size_t op_index) const {
  BuildIndex();
  return read_sources_.at(op_index);
}

const std::vector<ReadsFromEdge>& History::ReadsFrom() const {
  BuildIndex();
  return reads_from_;
}

std::unordered_set<TxnId> History::LiveSet(TxnId t) const {
  BuildIndex();
  std::unordered_set<TxnId> live{t};
  std::deque<TxnId> frontier{t};
  while (!frontier.empty()) {
    const TxnId cur = frontier.front();
    frontier.pop_front();
    for (const ReadsFromEdge& edge : reads_from_) {
      if (edge.reader == cur && !live.contains(edge.writer)) {
        live.insert(edge.writer);
        frontier.push_back(edge.writer);
      }
    }
  }
  return live;
}

History History::UpdateSubHistory() const {
  BuildIndex();
  std::unordered_set<TxnId> updaters;
  for (const auto& [id, info] : txns_) {
    if (info.IsUpdate()) updaters.insert(id);
  }
  return Project(updaters);
}

History History::Project(const std::unordered_set<TxnId>& txns) const {
  std::vector<Operation> kept;
  for (const Operation& op : ops_) {
    if (txns.contains(op.txn)) kept.push_back(op);
  }
  return History(std::move(kept));
}

std::string History::ToString() const {
  std::string out;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (i) out += ' ';
    out += ops_[i].ToString();
  }
  return out;
}

}  // namespace bcc
