// Histories: totally ordered sequences of transaction events, plus the
// derived structure every checker in the paper is defined over — per-
// transaction summaries, the reads-from relation, LIVE sets, and the update
// sub-history projection (Section 3.1 / Appendix A).

#ifndef BCC_HISTORY_HISTORY_H_
#define BCC_HISTORY_HISTORY_H_

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "history/object_id.h"
#include "history/operation.h"

namespace bcc {

/// Outcome of a transaction within a history.
enum class TxnOutcome { kActive, kCommitted, kAborted };

/// Summary of one transaction's activity in a history.
struct TxnInfo {
  TxnId id = kNoTxn;
  TxnOutcome outcome = TxnOutcome::kActive;
  std::vector<ObjectId> read_set;   ///< in first-read order, deduplicated
  std::vector<ObjectId> write_set;  ///< in first-write order, deduplicated
  std::vector<size_t> op_indices;   ///< indices into History::ops()

  bool IsUpdate() const { return !write_set.empty(); }
  bool IsReadOnly() const { return write_set.empty(); }
  bool Reads(ObjectId ob) const;
  bool Writes(ObjectId ob) const;
};

/// One (reader, object, writer) triple of the READS_FROM relation
/// (Definition 1 in the paper). writer == kInitTxn means the read observed
/// the initial database state.
struct ReadsFromEdge {
  TxnId reader;
  ObjectId object;
  TxnId writer;

  friend bool operator==(const ReadsFromEdge& a, const ReadsFromEdge& b) {
    return a.reader == b.reader && a.object == b.object && a.writer == b.writer;
  }
};

/// An immutable-after-build totally ordered history.
///
/// Build with the Append* methods (or HistoryParser), then query. Derived
/// structure (reads-from, LIVE sets, ...) is computed on demand and cached;
/// appending invalidates the cache.
///
/// Reads-from semantics: a read r_t(ob) reads from the latest preceding
/// write w_u(ob) whose writer u is never aborted in the history; if there is
/// no such write, it reads the initial value (writer = t0 = kInitTxn). This
/// matches the broadcast model, where aborted writers' values are never
/// disseminated.
class History {
 public:
  History() = default;

  /// Constructs directly from an operation sequence.
  explicit History(std::vector<Operation> ops);

  void AppendRead(TxnId t, ObjectId ob) { Append(Operation::Read(t, ob)); }
  void AppendWrite(TxnId t, ObjectId ob) { Append(Operation::Write(t, ob)); }
  void AppendCommit(TxnId t) { Append(Operation::Commit(t)); }
  void AppendAbort(TxnId t) { Append(Operation::Abort(t)); }
  void Append(const Operation& op);

  const std::vector<Operation>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  /// All transactions appearing in the history, ascending by id. The
  /// implicit initial transaction t0 is NOT listed.
  std::vector<TxnId> TxnIds() const;

  /// Per-transaction summary; kNoTxn-id TxnInfo if absent.
  const TxnInfo& Txn(TxnId t) const;
  bool Contains(TxnId t) const;

  /// Committed update transactions, in commit order.
  std::vector<TxnId> CommittedUpdateTxns() const;
  /// Committed read-only transactions, in commit order.
  std::vector<TxnId> CommittedReadOnlyTxns() const;

  /// Checks structural well-formedness: operations only before the
  /// transaction's terminal event, at most one terminal event per
  /// transaction, and no use of the reserved t0 id.
  Status Validate() const;

  /// True iff transactions execute one after another: each transaction's
  /// operations are contiguous and end with its terminal event. Serial
  /// histories of committed transactions are trivially (view and conflict)
  /// serializable.
  bool IsSerial() const;

  /// Checks the additional Appendix-A restrictions used by the formal
  /// characterization: within each transaction all reads precede all writes,
  /// and no object is read or written twice by the same transaction.
  Status ValidateAppendixAForm() const;

  /// Writer observed by the read operation at `op_index` (must be a read).
  TxnId ReaderSource(size_t op_index) const;

  /// The READS_FROM relation (Definition 1), restricted to reads by
  /// non-aborted transactions. Edges from t0 are included.
  const std::vector<ReadsFromEdge>& ReadsFrom() const;

  /// LIVE_H(t): transactions t directly or indirectly reads from, including
  /// t itself (Section 3.1). t0 is included when some member reads the
  /// initial value of an object.
  std::unordered_set<TxnId> LiveSet(TxnId t) const;

  /// H_update: projection onto transactions that perform a write
  /// (Section 3.1). Note: per the paper this keeps *all* their operations.
  History UpdateSubHistory() const;

  /// Projection onto an arbitrary transaction subset (order preserved).
  History Project(const std::unordered_set<TxnId>& txns) const;

  /// Space-separated paper notation.
  std::string ToString() const;

 private:
  void BuildIndex() const;

  std::vector<Operation> ops_;

  // Lazily built caches (mutable: History is logically const after build).
  mutable bool index_built_ = false;
  mutable std::unordered_map<TxnId, TxnInfo> txns_;
  mutable std::vector<TxnId> read_sources_;  // per op; kNoTxn for non-reads
  mutable std::vector<ReadsFromEdge> reads_from_;
};

}  // namespace bcc

#endif  // BCC_HISTORY_HISTORY_H_
