// Random history generation for property-based tests.

#ifndef BCC_HISTORY_RANDOM_HISTORY_H_
#define BCC_HISTORY_RANDOM_HISTORY_H_

#include "common/rng.h"
#include "history/history.h"

namespace bcc {

/// Parameters for GenerateRandomHistory.
struct RandomHistoryOptions {
  uint32_t num_objects = 5;
  uint32_t num_update_txns = 3;
  uint32_t num_read_only_txns = 2;
  /// Maximum read-set and write-set size per transaction (>= 1).
  uint32_t max_reads_per_txn = 3;
  uint32_t max_writes_per_txn = 2;
  /// If true, update transactions execute serially (each one's operations
  /// are contiguous and followed by its terminal event) as at the paper's
  /// broadcast server; read-only operations still interleave freely.
  bool serial_updates = false;
  /// Probability that a transaction aborts instead of committing.
  double abort_probability = 0.0;
  /// Probability that an update transaction has an empty read set (blind
  /// writer).
  double blind_write_probability = 0.25;
};

/// Generates a structurally valid history in Appendix-A form: per
/// transaction, all reads (distinct objects) precede all writes (distinct
/// objects), and every transaction ends in commit or abort.
///
/// Update transactions get ids 1..num_update_txns; read-only transactions
/// get the following ids. Deterministic given the Rng state.
History GenerateRandomHistory(const RandomHistoryOptions& options, Rng* rng);

}  // namespace bcc

#endif  // BCC_HISTORY_RANDOM_HISTORY_H_
