#include "history/operation.h"

#include "common/format.h"

namespace bcc {

std::string Operation::ToString() const {
  switch (type) {
    case OpType::kRead:
      return StrFormat("r%u(ob%u)", txn, object);
    case OpType::kWrite:
      return StrFormat("w%u(ob%u)", txn, object);
    case OpType::kCommit:
      return StrFormat("c%u", txn);
    case OpType::kAbort:
      return StrFormat("a%u", txn);
  }
  return "?";
}

}  // namespace bcc
