// Text parser/printer for histories in the paper's notation, e.g.
//   "r1(IBM) w2(IBM) c2 r3(IBM) r3(Sun) w4(Sun) c4 r1(Sun) c1 c3"
// Object names are interned to dense ObjectIds in order of first appearance.

#ifndef BCC_HISTORY_HISTORY_PARSER_H_
#define BCC_HISTORY_HISTORY_PARSER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "history/history.h"

namespace bcc {

/// Result of parsing: the history plus the object-name interning table.
struct ParsedHistory {
  History history;
  std::vector<std::string> object_names;                 ///< id -> name
  std::unordered_map<std::string, ObjectId> object_ids;  ///< name -> id

  /// Renders `history` using the original object names.
  std::string ToString() const;
};

/// Parses the paper's notation. Accepted tokens (whitespace separated):
///   r<txn>(<name>)   read;  <txn> a positive integer, <name> an identifier
///   w<txn>(<name>)   write
///   c<txn>           commit
///   a<txn>           abort
StatusOr<ParsedHistory> ParseHistory(std::string_view text);

/// Convenience: parse-or-die for tests and examples with literal histories.
History MustParseHistory(std::string_view text);

}  // namespace bcc

#endif  // BCC_HISTORY_HISTORY_PARSER_H_
