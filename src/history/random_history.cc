#include "history/random_history.h"

#include <algorithm>
#include <cassert>

namespace bcc {

namespace {

// One transaction's operation program, emitted in order.
std::vector<Operation> MakeProgram(TxnId id, bool update, const RandomHistoryOptions& o,
                                   Rng* rng) {
  std::vector<Operation> ops;
  const uint32_t max_reads = std::min(o.max_reads_per_txn, o.num_objects);
  uint32_t num_reads = static_cast<uint32_t>(rng->NextInt(update ? 0 : 1, max_reads));
  if (update && rng->NextBernoulli(o.blind_write_probability)) num_reads = 0;
  for (uint32_t ob : rng->SampleWithoutReplacement(o.num_objects, num_reads)) {
    ops.push_back(Operation::Read(id, ob));
  }
  if (update) {
    const uint32_t max_writes = std::min(std::max(o.max_writes_per_txn, 1u), o.num_objects);
    const uint32_t num_writes = static_cast<uint32_t>(rng->NextInt(1, max_writes));
    for (uint32_t ob : rng->SampleWithoutReplacement(o.num_objects, num_writes)) {
      ops.push_back(Operation::Write(id, ob));
    }
  }
  ops.push_back(rng->NextBernoulli(o.abort_probability) ? Operation::Abort(id)
                                                        : Operation::Commit(id));
  return ops;
}

// Randomly merges streams, preserving each stream's internal order. Streams
// are chosen with probability proportional to their remaining length so the
// merge is unbiased.
std::vector<Operation> RandomMerge(std::vector<std::vector<Operation>> streams, Rng* rng) {
  std::vector<size_t> pos(streams.size(), 0);
  size_t remaining = 0;
  for (const auto& s : streams) remaining += s.size();
  std::vector<Operation> out;
  out.reserve(remaining);
  while (remaining > 0) {
    uint64_t pick = rng->NextBounded(remaining);
    for (size_t s = 0; s < streams.size(); ++s) {
      const size_t left = streams[s].size() - pos[s];
      if (pick < left) {
        out.push_back(streams[s][pos[s]++]);
        break;
      }
      pick -= left;
    }
    --remaining;
  }
  return out;
}

}  // namespace

History GenerateRandomHistory(const RandomHistoryOptions& options, Rng* rng) {
  assert(options.num_objects > 0);
  std::vector<std::vector<Operation>> streams;

  TxnId next_id = 1;
  if (options.serial_updates) {
    // All update transactions in one stream: contiguous blocks, random order.
    std::vector<std::vector<Operation>> blocks;
    for (uint32_t i = 0; i < options.num_update_txns; ++i) {
      blocks.push_back(MakeProgram(next_id++, /*update=*/true, options, rng));
    }
    // Shuffle block order.
    for (size_t i = blocks.size(); i > 1; --i) {
      std::swap(blocks[i - 1], blocks[rng->NextBounded(i)]);
    }
    std::vector<Operation> serial;
    for (auto& b : blocks) serial.insert(serial.end(), b.begin(), b.end());
    streams.push_back(std::move(serial));
  } else {
    for (uint32_t i = 0; i < options.num_update_txns; ++i) {
      streams.push_back(MakeProgram(next_id++, /*update=*/true, options, rng));
    }
  }
  for (uint32_t i = 0; i < options.num_read_only_txns; ++i) {
    streams.push_back(MakeProgram(next_id++, /*update=*/false, options, rng));
  }
  return History(RandomMerge(std::move(streams), rng));
}

}  // namespace bcc
