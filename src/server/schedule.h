// Broadcast-disk slot schedules (Section 2.1: "Different data items may be
// broadcast at different rates ... modelled in terms of many broadcast
// disks with different speeds of rotation. In this paper, we consider only
// single speed disks."). This module lifts that scoping: a major cycle is a
// sequence of slots in which hot objects may appear several times, built by
// a deterministic weighted-fair spread so each object's appearances are
// evenly spaced. Consistency semantics are unchanged — all appearances
// within a major cycle carry the beginning-of-cycle snapshot.

#ifndef BCC_SERVER_SCHEDULE_H_
#define BCC_SERVER_SCHEDULE_H_

#include <vector>

#include "common/statusor.h"
#include "history/object_id.h"

namespace bcc {

/// An immutable slot sequence for one major cycle.
class BroadcastSchedule {
 public:
  /// The paper's single-speed disk: each object exactly once, in id order.
  static BroadcastSchedule Flat(uint32_t num_objects);

  /// Multi-speed disk: object i appears frequencies[i] (>= 1) times per
  /// major cycle, spread evenly (smallest-virtual-deadline-first).
  static StatusOr<BroadcastSchedule> FromFrequencies(const std::vector<uint32_t>& frequencies);

  uint32_t num_objects() const { return static_cast<uint32_t>(object_slots_.size()); }
  size_t num_slots() const { return slots_.size(); }

  /// The object occupying slot s (0-based).
  ObjectId SlotObject(size_t s) const { return slots_[s]; }

  /// Ascending slot indices at which `ob` appears (never empty).
  const std::vector<uint32_t>& SlotsOf(ObjectId ob) const { return object_slots_[ob]; }

  /// First slot index >= `from_slot` carrying `ob`, or -1 if none remain in
  /// this cycle.
  int64_t NextSlotOf(ObjectId ob, size_t from_slot) const;

 private:
  BroadcastSchedule(std::vector<ObjectId> slots, std::vector<std::vector<uint32_t>> object_slots)
      : slots_(std::move(slots)), object_slots_(std::move(object_slots)) {}

  std::vector<ObjectId> slots_;
  std::vector<std::vector<uint32_t>> object_slots_;
};

}  // namespace bcc

#endif  // BCC_SERVER_SCHEDULE_H_
