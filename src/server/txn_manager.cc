#include "server/txn_manager.h"

#include <cassert>

namespace bcc {

ServerTxnManager::ServerTxnManager(uint32_t num_objects, TxnManagerOptions options)
    : options_(options),
      store_(num_objects),
      f_matrix_(options.maintain_f_matrix ? num_objects : 0),
      sparse_f_matrix_(options.maintain_sparse_matrix ? num_objects : 0),
      mc_vector_(options.maintain_mc_vector ? num_objects : 0) {
  if (options_.maintain_hier_matrix) {
    hier_matrix_.emplace(num_objects, options_.hier_options);
  }
  if (options_.track_dirty_columns) {
    assert((options_.maintain_f_matrix || options_.maintain_sparse_matrix) &&
           "dirty tracking requires a control matrix");
    if (options_.maintain_f_matrix) f_matrix_.EnableDirtyTracking();
    if (options_.maintain_sparse_matrix) sparse_f_matrix_.EnableDirtyTracking();
  }
}

std::vector<ObjectVersion> ServerTxnManager::ExecuteAndCommit(const ServerTxn& txn, Cycle cycle) {
  assert(txn.id != kInitTxn && txn.id != kNoTxn);
  assert(cycle >= last_cycle_ && "commits must arrive in cycle order");
  last_cycle_ = cycle;

  // Read phase: observe committed state (execution is serial, so committed
  // state is also the current state).
  std::vector<ObjectVersion> values_read;
  values_read.reserve(txn.read_set.size());
  for (ObjectId ob : txn.read_set) {
    values_read.push_back(store_.ReadForStaging(ob));
    if (options_.record_history) history_.AppendRead(txn.id, ob);
  }

  // Write phase.
  for (ObjectId ob : txn.write_set) {
    store_.StageWrite(ob, txn.id);
    if (options_.record_history) history_.AppendWrite(txn.id, ob);
  }
  store_.CommitStaged(cycle);
  if (options_.record_history) history_.AppendCommit(txn.id);

  // Control information (Theorem 2 incremental maintenance). With batching
  // enabled the control-matrix work is queued and fused per cycle
  // (ApplyCommitBatch); a cycle change flushes the previous batch.
  if (options_.maintain_f_matrix || options_.maintain_sparse_matrix ||
      options_.maintain_hier_matrix) {
    if (options_.batch_commit_maintenance) {
      if (batch_size_ > 0 && cycle != batch_cycle_) FlushCommitBatch();
      batch_cycle_ = cycle;
      if (batch_size_ == batch_.size()) batch_.emplace_back();
      CommitSets& slot = batch_[batch_size_++];
      slot.read_set.assign(txn.read_set.begin(), txn.read_set.end());
      slot.write_set.assign(txn.write_set.begin(), txn.write_set.end());
    } else {
      if (options_.maintain_f_matrix) f_matrix_.ApplyCommit(txn.read_set, txn.write_set, cycle);
      if (options_.maintain_sparse_matrix) {
        sparse_f_matrix_.ApplyCommit(txn.read_set, txn.write_set, cycle);
      }
      if (options_.maintain_hier_matrix) {
        hier_matrix_->ApplyCommit(txn.read_set, txn.write_set, cycle);
      }
    }
  }
  if (options_.maintain_mc_vector) {
    mc_vector_.ApplyCommit(txn.write_set, cycle);
  }

  commit_cycles_[txn.id] = cycle;
  ++num_committed_;
  return values_read;
}

void ServerTxnManager::FlushCommitBatch() {
  if (batch_size_ == 0) return;
  const size_t count = batch_size_;
  batch_size_ = 0;  // reset first: ApplyCommitBatch must not re-enter anyway
  const std::span<const CommitSets> commits(batch_.data(), count);
  if (options_.maintain_f_matrix) {
    if (fold_runner_ && fold_shards_ > 1) {
      f_matrix_.ApplyCommitBatch(commits, batch_cycle_, fold_runner_, fold_shards_);
    } else {
      f_matrix_.ApplyCommitBatch(commits, batch_cycle_);
    }
  }
  if (options_.maintain_sparse_matrix) sparse_f_matrix_.ApplyCommitBatch(commits, batch_cycle_);
  if (options_.maintain_hier_matrix) hier_matrix_->ApplyCommitBatch(commits, batch_cycle_);
}

}  // namespace bcc
