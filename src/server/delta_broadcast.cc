#include "server/delta_broadcast.h"

#include <cassert>
#include <utility>

namespace bcc {

DeltaBroadcaster::DeltaBroadcaster(uint32_t num_objects, CycleStampCodec codec,
                                   uint64_t refresh_period)
    : n_(num_objects), codec_(codec), refresh_period_(refresh_period) {
  assert(refresh_period_ >= 1);
  assert(refresh_period_ <= codec_.max_cycles());
}

template <typename CurMatrix>
DeltaControl DeltaBroadcaster::BuildControlImpl(const CurMatrix& current,
                                                std::span<const ObjectId> touched_columns,
                                                Cycle cycle) {
  assert(!started_ || cycle == last_cycle_ + 1);
  if (prev_.num_objects() != n_) prev_ = FMatrix(n_);

  DeltaControl ctl;
  ctl.cycle = cycle;
  ctl.full_bits = FullMatrixControlBits(n_, codec_.bits());

  const bool scheduled =
      !started_ || cycle - last_refresh_cycle_ >= refresh_period_;
  bool refresh = scheduled;
  if (!refresh) {
    ctl.base_cycle = last_cycle_;
    ctl.entries = DeltaCodec::DiffColumns(prev_, current, touched_columns, codec_);
    ctl.control_bits = DeltaCodec::EncodedBits(ctl.entries.size(), n_, codec_.bits());
    // Adaptive fallback: the delta would not beat the full matrix, so send
    // the matrix itself in the (fixed-size) control reservation.
    if (ctl.control_bits >= ctl.full_bits) {
      refresh = true;
      ctl.entries.clear();
    }
  }

  if (refresh) {
    ctl.full_refresh = true;
    ctl.scheduled = scheduled;
    ctl.base_cycle = cycle;
    ctl.control_bits = ctl.full_bits;
    last_refresh_cycle_ = cycle;
    // Refresh resets the diff base wholesale (O(n^2), refresh cycles only).
    for (ObjectId j = 0; j < n_; ++j) {
      for (uint32_t i = 0; i < n_; ++i) prev_.Set(i, j, current.At(i, j));
    }
  } else {
    // Fold only the touched columns into the diff base: O(n * touched).
    for (ObjectId j : touched_columns) {
      for (uint32_t i = 0; i < n_; ++i) prev_.Set(i, j, current.At(i, j));
    }
  }

  started_ = true;
  last_cycle_ = cycle;
  return ctl;
}

DeltaControl DeltaBroadcaster::BuildControl(const FMatrix& current,
                                            std::span<const ObjectId> touched_columns,
                                            Cycle cycle) {
  return BuildControlImpl(current, touched_columns, cycle);
}

DeltaControl DeltaBroadcaster::BuildControl(const FMatrixSnapshot& current,
                                            std::span<const ObjectId> touched_columns,
                                            Cycle cycle) {
  return BuildControlImpl(current, touched_columns, cycle);
}

DeltaControl DeltaBroadcaster::BuildControl(const SparseFMatrix& current,
                                            std::span<const ObjectId> touched_columns,
                                            Cycle cycle) {
  assert(!started_ || cycle == last_cycle_ + 1);
  if (sparse_prev_.num_objects() != n_) sparse_prev_ = SparseFMatrix(n_);

  DeltaControl ctl;
  ctl.cycle = cycle;
  ctl.full_bits = FullMatrixControlBits(n_, codec_.bits());

  const bool scheduled = !started_ || cycle - last_refresh_cycle_ >= refresh_period_;
  bool refresh = scheduled;
  if (!refresh) {
    ctl.base_cycle = last_cycle_;
    ctl.entries = DeltaCodec::DiffColumns(sparse_prev_, current, touched_columns, codec_);
    ctl.control_bits = DeltaCodec::EncodedBits(ctl.entries.size(), n_, codec_.bits());
    if (ctl.control_bits >= ctl.full_bits) {
      refresh = true;
      ctl.entries.clear();
    }
  }

  if (refresh) {
    ctl.full_refresh = true;
    ctl.scheduled = scheduled;
    ctl.base_cycle = cycle;
    ctl.control_bits = ctl.full_bits;
    last_refresh_cycle_ = cycle;
    sparse_prev_ = current;  // O(n) shared-pointer copies; payloads shared
  } else {
    for (ObjectId j : touched_columns) {
      sparse_prev_.AssignColumn(j, current.ColumnData(j));
    }
  }

  started_ = true;
  last_cycle_ = cycle;
  return ctl;
}

}  // namespace bcc
