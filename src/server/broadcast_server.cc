#include "server/broadcast_server.h"

#include <cassert>

namespace bcc {

BroadcastServer::BroadcastServer(uint32_t num_objects, BroadcastGeometry geometry)
    : num_objects_(num_objects),
      geometry_(geometry),
      schedule_(BroadcastSchedule::Flat(num_objects)) {}

void BroadcastServer::SetSchedule(BroadcastSchedule schedule) {
  assert(!started_ && "schedule must be installed before the first cycle");
  assert(schedule.num_objects() == num_objects_);
  schedule_ = std::move(schedule);
}

CycleSnapshot BroadcastServer::BuildSnapshot(Cycle cycle, SimTime start_time,
                                             const ServerTxnManager& manager) const {
  CycleSnapshot snap;
  snap.cycle = cycle;
  snap.start_time = start_time;
  snap.values = manager.store().committed();
  if (manager.sparse_f_matrix().num_objects() > 0) {
    // Sparse representation: the snapshot carries shared immutable columns;
    // the dense snapshot stays empty even if the manager also maintains it
    // (parity tests), so consumers exercise the sparse path.
    snap.sparse_f_matrix = manager.SnapshotSparseFMatrix();
  } else if (manager.f_matrix().num_objects() > 0) {
    snap.f_matrix = manager.SnapshotFMatrix();
  }
  if (manager.mc_vector().num_objects() > 0) snap.mc_vector = manager.mc_vector();
  if (partition_.has_value() && manager.f_matrix().num_objects() > 0) {
    snap.group_matrix.emplace(*partition_, manager.f_matrix());
  }
  return snap;
}

void BroadcastServer::BeginCycle(Cycle cycle, SimTime start_time,
                                 const ServerTxnManager& manager) {
  if (!started_) {
    first_start_ = start_time;
    started_ = true;
  }
  snapshot_ = BuildSnapshot(cycle, start_time, manager);
}

void BroadcastServer::EnableDeltaBroadcast(const CycleStampCodec& codec,
                                           uint64_t refresh_period) {
  assert(!started_ && "delta mode must be enabled before the first cycle");
  delta_.emplace(num_objects_, codec, refresh_period);
}

void BroadcastServer::AttachDeltaControl(std::span<const ObjectId> touched_columns) {
  assert(started_ && delta_.has_value());
  assert(!snapshot_.delta.has_value() && "one AttachDeltaControl per BeginCycle");
  if (snapshot_.sparse_f_matrix != nullptr) {
    snapshot_.delta =
        delta_->BuildControl(*snapshot_.sparse_f_matrix, touched_columns, snapshot_.cycle);
  } else {
    snapshot_.delta =
        delta_->BuildControl(snapshot_.f_matrix, touched_columns, snapshot_.cycle);
  }
}

SimTime BroadcastServer::ObjectAvailableTime(ObjectId ob) const {
  assert(started_ && ob < num_objects_);
  const uint32_t slot = schedule_.SlotsOf(ob).front();
  return snapshot_.start_time + static_cast<SimTime>(slot + 1) * geometry_.slot_bits;
}

std::optional<SimTime> BroadcastServer::NextSlotEnd(ObjectId ob, SimTime at_or_after) const {
  assert(started_ && ob < num_objects_);
  assert(at_or_after >= snapshot_.start_time);
  const SimTime offset = at_or_after - snapshot_.start_time;
  // Smallest slot index s with completion start + (s+1)*slot_bits >= t.
  const SimTime slot_bits = geometry_.slot_bits;
  const size_t min_slot =
      offset <= slot_bits ? 0 : static_cast<size_t>((offset - 1) / slot_bits);
  const int64_t slot = schedule_.NextSlotOf(ob, min_slot);
  if (slot < 0) return std::nullopt;
  return snapshot_.start_time + static_cast<SimTime>(slot + 1) * slot_bits;
}

SimTime BroadcastServer::CycleEndTime() const {
  assert(started_);
  return snapshot_.start_time + CycleLengthBits();
}

Cycle BroadcastServer::CycleAt(SimTime t) const {
  assert(started_ && t >= first_start_);
  const SimTime len = CycleLengthBits();
  if (len == 0) return snapshot_.cycle;
  return (t - first_start_) / len + 1;
}

}  // namespace bcc
