// The broadcast-disk front end (Section 2.1 / Section 4.1).
//
// At the beginning of each cycle the server snapshots the latest committed
// values and control information and "fills the disk": every object is
// assigned a completion time within the cycle (its payload plus its control
// share — the matrix column for F-Matrix, one stamp for R-Matrix/Datacycle).
// Clients read an object only after its slot has been fully broadcast and
// validate against the control snapshot of that same cycle.

#ifndef BCC_SERVER_BROADCAST_SERVER_H_
#define BCC_SERVER_BROADCAST_SERVER_H_

#include <optional>
#include <vector>

#include "des/event_queue.h"
#include "matrix/group_matrix.h"
#include "matrix/wire.h"
#include "server/delta_broadcast.h"
#include "server/schedule.h"
#include "server/txn_manager.h"

namespace bcc {

/// Immutable beginning-of-cycle state, as seen "on the air".
struct CycleSnapshot {
  Cycle cycle = 0;
  SimTime start_time = 0;
  std::vector<ObjectVersion> values;
  /// Present when the serving algorithm needs the full matrix. A
  /// copy-on-write view: columns untouched since the previous cycle are
  /// shared with that cycle's snapshot, so materializing a cycle snapshot is
  /// O(n * touched) instead of O(n^2).
  FMatrixSnapshot f_matrix;
  /// Present when the serving algorithm needs the reduced vector.
  McVector mc_vector{0};
  /// Present when a grouped partition is configured (Section 3.2.2 spectrum).
  std::optional<GroupMatrix> group_matrix;
  /// Present when the manager maintains the sparse representation
  /// (MatrixMode::kSparse): the beginning-of-cycle control matrix as shared
  /// immutable columns. Value-identical to what f_matrix would hold; when
  /// set, f_matrix is left empty (n = 0) and consumers — read validation,
  /// delta diffing, frame packing — use this instead, producing bit-identical
  /// decisions and on-air bytes.
  std::shared_ptr<const SparseFMatrix> sparse_f_matrix;
  /// Present in snapshot+delta mode: the sparse control block this cycle
  /// puts on the air instead of (notionally) the full matrix. f_matrix is
  /// still populated — it is what a refresh broadcasts and what tests
  /// cross-check reconstruction against.
  std::optional<DeltaControl> delta;
};

/// Broadcast scheduling and per-cycle snapshotting.
class BroadcastServer {
 public:
  /// `geometry` fixes the slot layout (object payload + control share).
  /// The default schedule is the paper's single-speed disk (each object
  /// once per cycle, in id order).
  BroadcastServer(uint32_t num_objects, BroadcastGeometry geometry);

  const BroadcastGeometry& geometry() const { return geometry_; }
  uint32_t num_objects() const { return num_objects_; }

  /// Installs a multi-speed slot schedule (hot objects several times per
  /// major cycle). Must be called before the first BeginCycle.
  void SetSchedule(BroadcastSchedule schedule);
  const BroadcastSchedule& schedule() const { return schedule_; }

  /// Length of one (major) cycle: num_slots x slot_bits.
  SimTime CycleLengthBits() const {
    return static_cast<SimTime>(schedule_.num_slots()) * geometry_.slot_bits;
  }

  /// Configures the grouped-control spectrum: snapshots will carry an n x g
  /// GroupMatrix derived from the full matrix. Must be called before the
  /// first BeginCycle — the paper's fixed-g protocol has no safe runtime
  /// g-change (clients validate against the partition the cycle was
  /// broadcast with; swapping it mid-run would mix two coarse views within
  /// one validation). The adaptive-g path is MatrixMode::kHier, whose
  /// HierMatrix regroups only at cycle boundaries, against its own exact
  /// matrix.
  void SetPartition(const ObjectPartition& partition) {
    assert(!started_ && "the fixed-g partition cannot change after the first cycle");
    partition_ = partition;
  }

  /// Switches control broadcasting to snapshot+delta mode: each BeginCycle
  /// must be followed by AttachDeltaControl with the dirty columns drained
  /// from the txn manager. Must be called before the first BeginCycle.
  void EnableDeltaBroadcast(const CycleStampCodec& codec, uint64_t refresh_period);
  bool delta_enabled() const { return delta_.has_value(); }

  /// Builds this cycle's DeltaControl from the current snapshot's matrix and
  /// the columns rewritten since the previous cycle, and attaches it to the
  /// snapshot. Call exactly once per BeginCycle, in cycle order.
  void AttachDeltaControl(std::span<const ObjectId> touched_columns);

  /// Builds the beginning-of-cycle state that cycle `cycle` (starting at
  /// `start_time`) puts on the air: committed values plus the control
  /// information the configured algorithm broadcasts. Pure function of
  /// `manager`'s committed state — it does not touch the server's current
  /// snapshot, so a concurrent engine can materialize an immutable snapshot
  /// of cycle k while cycle k+1 commits are already staging in `manager`.
  CycleSnapshot BuildSnapshot(Cycle cycle, SimTime start_time,
                              const ServerTxnManager& manager) const;

  /// Starts broadcast cycle `cycle` at `start_time`, snapshotting committed
  /// state and control information from `manager`.
  void BeginCycle(Cycle cycle, SimTime start_time, const ServerTxnManager& manager);

  const CycleSnapshot& snapshot() const { return snapshot_; }

  /// Time at which object `ob`'s FIRST slot (payload + control) finishes
  /// broadcasting within the current cycle.
  SimTime ObjectAvailableTime(ObjectId ob) const;

  /// Completion time of the earliest slot of `ob` in the current cycle
  /// finishing at or after `at_or_after`; nullopt when no appearance of
  /// `ob` remains this cycle (wait for the next one).
  std::optional<SimTime> NextSlotEnd(ObjectId ob, SimTime at_or_after) const;

  /// End of the current cycle == start of the next.
  SimTime CycleEndTime() const;

  /// The cycle number whose broadcast covers `t` (assuming back-to-back
  /// cycles from the first BeginCycle onward). Requires t >= first start.
  Cycle CycleAt(SimTime t) const;

 private:
  uint32_t num_objects_;
  BroadcastGeometry geometry_;
  BroadcastSchedule schedule_;
  CycleSnapshot snapshot_;
  std::optional<ObjectPartition> partition_;
  std::optional<DeltaBroadcaster> delta_;
  SimTime first_start_ = 0;
  bool started_ = false;
};

}  // namespace bcc

#endif  // BCC_SERVER_BROADCAST_SERVER_H_
