// Server side of the snapshot+delta control broadcast (Section 3.2.1's
// delta-transmission sketch, made concrete).
//
// Instead of re-deriving the full n x n matrix on the air every cycle, the
// server ships, per cycle, the entries that changed since the previous
// cycle's broadcast — computed from the dirty-column list ApplyCommit
// already knows (FMatrix::EnableDirtyTracking) in O(n * touched), not
// O(n^2) — plus a periodic full-column refresh so late-joining or stale
// clients can resynchronize. The broadcast geometry is unchanged: the slot
// layout still reserves the full-matrix control share, so delta mode alters
// no timing; the savings show up in the bit accounting
// (DeltaControl::control_bits vs full_bits) that bench_delta_broadcast and
// SimMetrics report.

#ifndef BCC_SERVER_DELTA_BROADCAST_H_
#define BCC_SERVER_DELTA_BROADCAST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/cycle_stamp.h"
#include "matrix/wire.h"

namespace bcc {

/// The control information one delta-mode cycle puts on the air.
struct DeltaControl {
  /// Cycle this control block belongs to (the matrix it reconstructs is the
  /// beginning-of-cycle snapshot of `cycle`).
  Cycle cycle = 0;
  /// True when this cycle carries the full matrix (scheduled refresh or
  /// adaptive fallback); clients may (re)synchronize from it regardless of
  /// their previous state. The full matrix itself travels as the snapshot's
  /// f_matrix — entries is empty in that case.
  bool full_refresh = false;
  /// True when the refresh was the periodic scheduled one (implicit from the
  /// cycle count); false for the adaptive fallback taken when the delta
  /// would not beat the full matrix.
  bool scheduled = false;
  /// For a delta block: the cycle whose reconstructed matrix the entries
  /// apply on top of (always the previous broadcast cycle).
  Cycle base_cycle = 0;
  /// Changed entries relative to base_cycle's matrix, ascending (col, row).
  std::vector<DeltaCodec::Entry> entries;
  /// Bits this control block costs on the air.
  uint64_t control_bits = 0;
  /// Bits the full-matrix broadcast would have cost (n^2 * ts) — the
  /// baseline the delta is accounted against.
  uint64_t full_bits = 0;
};

/// Builds per-cycle DeltaControl blocks from the server's matrix snapshots.
///
/// Refresh policy:
///  - the first cycle ever broadcast is a full refresh (clients have no base
///    to apply deltas to);
///  - every `refresh_period` cycles the full matrix is re-broadcast in place
///    of a delta (scheduled refresh), implicit from the cycle count;
///  - when a delta's EncodedBits would meet or exceed the full matrix, the
///    full matrix is sent instead (adaptive refresh), so a delta-mode cycle
///    never carries more control than a full-mode one.
///
/// Bit accounting: refresh cycles (either kind) are charged exactly
/// FullMatrixControlBits — delta mode keeps the full-mode slot geometry, so
/// the per-cycle control reservation is full_bits wide and a refresh fills
/// it bit-for-bit like a full-mode cycle; the delta/refresh discriminator
/// rides in the fixed slot framing. (A deployment with variable-size control
/// slots would spend up to 32 extra header bits to mark the unscheduled
/// adaptive refresh.) This makes control_bits <= full_bits an invariant of
/// every cycle, which bench_delta_broadcast asserts.
class DeltaBroadcaster {
 public:
  /// `refresh_period` >= 1: a scheduled full refresh at least every that
  /// many cycles. Must not exceed codec.max_cycles(): past that the windowed
  /// stamps in the refresh itself would already be ambiguous for a client
  /// synchronizing from scratch.
  DeltaBroadcaster(uint32_t num_objects, CycleStampCodec codec, uint64_t refresh_period);

  const CycleStampCodec& codec() const { return codec_; }
  uint64_t refresh_period() const { return refresh_period_; }

  /// Produces the control block for cycle `cycle`, whose beginning-of-cycle
  /// matrix is `current` and whose commits since the previous call rewrote
  /// (at most) `touched_columns`. Calls must be made for consecutive cycles
  /// (cycle = previous call's cycle + 1, except the first). O(n * touched)
  /// plus O(n^2) only on refresh cycles.
  DeltaControl BuildControl(const FMatrix& current, std::span<const ObjectId> touched_columns,
                            Cycle cycle);

  /// Same, with the beginning-of-cycle matrix given as the CoW cycle
  /// snapshot the server already built.
  DeltaControl BuildControl(const FMatrixSnapshot& current,
                            std::span<const ObjectId> touched_columns, Cycle cycle);

  /// Sparse-representation server (MatrixMode::kSparse): identical entries,
  /// refresh policy, and bit accounting, but the diff is an O(nnz) merge
  /// walk, a refresh folds the base in O(n) shared-pointer copies, and a
  /// delta folds only the touched columns in O(1) pointer installs each.
  /// The diff bases are kept per representation; a run must use one
  /// overload family consistently.
  DeltaControl BuildControl(const SparseFMatrix& current,
                            std::span<const ObjectId> touched_columns, Cycle cycle);

 private:
  template <typename CurMatrix>
  DeltaControl BuildControlImpl(const CurMatrix& current,
                                std::span<const ObjectId> touched_columns, Cycle cycle);

  uint32_t n_;
  CycleStampCodec codec_;
  uint64_t refresh_period_;
  bool started_ = false;
  Cycle last_cycle_ = 0;
  Cycle last_refresh_cycle_ = 0;
  /// The matrix as of the previous cycle's broadcast — the diff base.
  /// Allocated lazily by the first BuildControl of the matching overload
  /// family, so a sparse-mode run never materializes the O(n^2) dense base.
  FMatrix prev_{0};
  SparseFMatrix sparse_prev_{0};
};

}  // namespace bcc

#endif  // BCC_SERVER_DELTA_BROADCAST_H_
