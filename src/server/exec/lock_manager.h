// Key-striped lock manager for strict two-phase locking with wait-die
// deadlock avoidance.
//
// Each transaction carries a fixed priority timestamp (smaller = older,
// assigned at first submission and kept across restarts, so every
// transaction eventually becomes the oldest contender and commits). On a
// conflict the requester waits only if it is older than every current
// holder; a younger requester "dies" immediately — it must release its
// locks, abort, and retry. Waits-for edges therefore always point from
// older to younger transactions and can never form a cycle, so the manager
// needs no deadlock detector.
//
// The lock table is striped: ObjectIds hash to one of `num_stripes` shards,
// each with its own mutex + condition variable and hash map of lock states,
// so unrelated objects never contend on one global latch.

#ifndef BCC_SERVER_EXEC_LOCK_MANAGER_H_
#define BCC_SERVER_EXEC_LOCK_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "history/object_id.h"

namespace bcc {

enum class LockMode : uint8_t {
  kShared,     ///< read lock; compatible with other shared holders
  kExclusive,  ///< write lock; compatible with nothing
};

enum class LockOutcome : uint8_t {
  kGranted,  ///< the lock is held; pair with Release
  kDie,      ///< wait-die: the requester is younger than a holder and must
             ///< abort (nothing was acquired)
};

/// Striped wait-die lock table. Thread-safe. A transaction must not request
/// the same object twice (read+write of one object = one exclusive request).
class LockManager {
 public:
  explicit LockManager(uint32_t num_stripes = 64);

  /// Blocks until the lock is granted, or returns kDie when wait-die rules
  /// the requester (priority timestamp `ts`, smaller = older) out. Identical
  /// `ts` values must not be in flight concurrently.
  LockOutcome Acquire(ObjectId ob, LockMode mode, uint64_t ts);

  /// Releases the lock `ts` holds on `ob` and wakes waiters.
  void Release(ObjectId ob, uint64_t ts);

  /// Number of Acquire calls that returned kDie.
  uint64_t die_count() const { return die_count_.load(std::memory_order_relaxed); }
  /// Number of Acquire calls that had to wait at least once.
  uint64_t wait_count() const { return wait_count_.load(std::memory_order_relaxed); }

 private:
  struct Holder {
    uint64_t ts;
    LockMode mode;
  };
  struct LockState {
    std::vector<Holder> holders;
  };
  struct Stripe {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<ObjectId, LockState> table;
  };

  Stripe& StripeOf(ObjectId ob) { return stripes_[ob % stripes_.size()]; }

  std::vector<Stripe> stripes_;
  std::atomic<uint64_t> die_count_{0};
  std::atomic<uint64_t> wait_count_{0};
};

}  // namespace bcc

#endif  // BCC_SERVER_EXEC_LOCK_MANAGER_H_
