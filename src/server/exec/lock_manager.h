// Key-striped lock manager for strict two-phase locking with wait-die
// deadlock avoidance.
//
// Each transaction carries a fixed priority timestamp (smaller = older,
// assigned at first submission and kept across restarts, so every
// transaction eventually becomes the oldest contender and commits). On a
// conflict the requester waits only if it is older than every current
// holder; a younger requester "dies" immediately — it must release its
// locks, abort, and retry. Waits-for edges therefore always point from
// older to younger transactions and can never form a cycle, so the manager
// needs no deadlock detector.
//
// The lock table is striped: ObjectIds hash to one of `num_stripes` shards,
// each with its own mutex + condition variable and hash map of lock states,
// so unrelated objects never contend on one global latch.

#ifndef BCC_SERVER_EXEC_LOCK_MANAGER_H_
#define BCC_SERVER_EXEC_LOCK_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "history/object_id.h"

namespace bcc {

enum class LockMode : uint8_t {
  kShared,     ///< read lock; compatible with other shared holders
  kExclusive,  ///< write lock; compatible with nothing
};

enum class LockOutcome : uint8_t {
  kGranted,  ///< the lock is held; pair with Release
  kDie,      ///< wait-die: the requester is younger than a holder and must
             ///< abort (nothing was acquired)
};

/// Striped wait-die lock table. Thread-safe. Re-requests by a current holder
/// are supported: a same-or-weaker re-request is an idempotent no-op, and a
/// shared->exclusive re-request is an in-place upgrade that waits for (or
/// wait-dies against) the other shared holders. Either way the transaction
/// still holds exactly one lock on the object — one Release covers it.
class LockManager {
 public:
  explicit LockManager(uint32_t num_stripes = 64);

  /// Blocks until the lock is granted, or returns kDie when wait-die rules
  /// the requester (priority timestamp `ts`, smaller = older) out. Identical
  /// `ts` values must not be in flight concurrently. On an upgrade kDie the
  /// original shared lock stays held (the aborting caller's release-all
  /// drops it).
  LockOutcome Acquire(ObjectId ob, LockMode mode, uint64_t ts);

  /// Releases the lock `ts` holds on `ob`. Wakes waiters only when one can
  /// make progress: the object went free or a single (possibly upgrading)
  /// holder remains. Parked waiters whose wait-die verdict flips are woken
  /// by the grant that flipped it, not by releases.
  void Release(ObjectId ob, uint64_t ts);

  /// Number of Acquire calls that returned kDie.
  uint64_t die_count() const { return die_count_.load(std::memory_order_relaxed); }
  /// Number of blocking episodes (individual condition-variable waits).
  uint64_t wait_count() const { return wait_count_.load(std::memory_order_relaxed); }

  /// Test-only introspection: every (object, holder-ts, exclusive?) entry in
  /// the table. Quiesce the manager first — this takes each stripe lock in
  /// turn, so the snapshot is only meaningful with no Acquire in flight.
  std::vector<std::tuple<ObjectId, uint64_t, bool>> HeldEntriesForTest();

 private:
  struct Holder {
    uint64_t ts;
    LockMode mode;
  };
  struct LockState {
    std::vector<Holder> holders;
    /// Transactions currently parked inside Acquire on this object (fresh
    /// waiters and shared->exclusive upgraders alike). A parked waiter's
    /// wait-die verdict is a function of the holder set, and growing the set
    /// can flip it: shared-on-shared grants skip the age check, so an
    /// *older* holder can slide in past a parked waiter — which must then
    /// wake up and die, not sleep in its way forever. Every grant therefore
    /// notifies when this is nonzero. Shrinking the set (a release) can
    /// never flip wait into die, so releases keep the cheap remaining<=1
    /// rule. Release must not erase the entry while this is nonzero.
    uint32_t parked_waiters = 0;
  };
  struct Stripe {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<ObjectId, LockState> table;
  };

  Stripe& StripeOf(ObjectId ob) { return stripes_[ob % stripes_.size()]; }

  std::vector<Stripe> stripes_;
  std::atomic<uint64_t> die_count_{0};
  std::atomic<uint64_t> wait_count_{0};
};

}  // namespace bcc

#endif  // BCC_SERVER_EXEC_LOCK_MANAGER_H_
