// Multiversion timestamp-ordering (MVTO) version store for the parallel
// update engine.
//
// Each object carries a chain of committed versions ordered by the writer's
// timestamp. A reader with timestamp ts observes the newest version with
// version_ts <= ts and stamps it with its read (max_read_ts); a writer with
// timestamp ts may install a version only if no later-timestamped reader has
// already observed the state the write would invalidate — otherwise the
// writer aborts and retries with a fresh timestamp. The serialization order
// of committed transactions is exactly timestamp order.
//
// Version maintenance follows the lazy/batched direction of Faleiro &
// Abadi's "Rethinking serializable multiversion concurrency control"
// (PAPERS.md): chains grow freely while an epoch (one broadcast cycle's
// batch) executes, and garbage collection runs once per epoch boundary when
// the TxnProcessor's barrier guarantees no transaction is in flight —
// CollectGarbage never contends with the execution hot path.

#ifndef BCC_SERVER_EXEC_MVCC_STORE_H_
#define BCC_SERVER_EXEC_MVCC_STORE_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "history/object_id.h"

namespace bcc {

/// One committed version of an object in the MVTO store.
struct MvccVersion {
  uint64_t version_ts = 0;   ///< writer's timestamp (0 = initial t0 version)
  uint64_t max_read_ts = 0;  ///< largest reader timestamp that observed it
  TxnId writer = kInitTxn;
};

/// Striped MVTO version store. Reads latch one stripe; a commit latches
/// every stripe its write set touches (in stripe order, so commits never
/// deadlock) and installs all-or-nothing, which keeps multi-object commits
/// atomic with respect to concurrent readers.
class MvccStore {
 public:
  explicit MvccStore(uint32_t num_objects, uint32_t num_stripes = 64);

  uint32_t num_objects() const { return static_cast<uint32_t>(chains_.size()); }

  struct ReadResult {
    TxnId writer = kInitTxn;
    uint64_t version_ts = 0;
  };

  /// Observes the newest version with version_ts <= ts and records the read
  /// (bumps that version's max_read_ts).
  ReadResult Read(ObjectId ob, uint64_t ts);

  /// MVTO commit: atomically checks every object in `write_set` (the version
  /// a ts-ordered reader of the pre-state observed must not have been read
  /// by any transaction younger than `ts`) and, if all pass, installs one
  /// new version per object. Returns false — installing nothing — when any
  /// check fails; the caller aborts and retries with a fresh timestamp.
  /// `write_set` must be duplicate-free.
  bool CommitWrites(std::span<const ObjectId> write_set, TxnId writer, uint64_t ts);

  /// Read-only peek at the MVTO write rule: returns false when CommitWrites
  /// for (`write_set`, `ts`) would currently fail. Advisory only — the
  /// outcome can change the instant the latch drops — but a false here is
  /// sticky (max_read_ts never decreases within an epoch), so callers use
  /// it to abandon a doomed attempt before paying further per-operation
  /// service time. CommitWrites remains the authoritative check.
  bool PrecheckWrites(std::span<const ObjectId> write_set, uint64_t ts);

  /// Epoch-batched garbage collection: for every object, drops all versions
  /// older than the newest one with version_ts <= safe_ts. Call only at a
  /// quiescent point with safe_ts >= every timestamp ever issued (the
  /// TxnProcessor's batch barrier). Returns the number of versions pruned.
  uint64_t CollectGarbage(uint64_t safe_ts);

  /// Current chain length of one object (test/bench introspection).
  size_t VersionCount(ObjectId ob);

  /// Cumulative versions dropped by CollectGarbage.
  uint64_t versions_pruned() const { return versions_pruned_; }

 private:
  size_t StripeOf(ObjectId ob) const { return ob % stripes_.size(); }

  std::vector<std::vector<MvccVersion>> chains_;  // per object, ascending ts
  std::vector<std::mutex> stripes_;
  uint64_t versions_pruned_ = 0;  // written only at quiescent GC points
};

}  // namespace bcc

#endif  // BCC_SERVER_EXEC_MVCC_STORE_H_
