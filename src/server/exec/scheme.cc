#include "server/exec/scheme.h"

#include <string>

namespace bcc {

std::string_view UpdateSchemeName(UpdateScheme scheme) {
  switch (scheme) {
    case UpdateScheme::kSequential:
      return "seq";
    case UpdateScheme::kTwoPhaseLocking:
      return "2pl";
    case UpdateScheme::kOcc:
      return "occ";
    case UpdateScheme::kMvcc:
      return "mvcc";
  }
  return "unknown";
}

StatusOr<UpdateScheme> ParseUpdateScheme(std::string_view name) {
  if (name == "seq" || name == "sequential") return UpdateScheme::kSequential;
  if (name == "2pl") return UpdateScheme::kTwoPhaseLocking;
  if (name == "occ") return UpdateScheme::kOcc;
  if (name == "mvcc") return UpdateScheme::kMvcc;
  return Status::InvalidArgument("unknown update scheme '" + std::string(name) +
                                 "' (expected seq|2pl|occ|mvcc)");
}

}  // namespace bcc
