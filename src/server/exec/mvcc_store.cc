#include "server/exec/mvcc_store.h"

#include <algorithm>
#include <cassert>

namespace bcc {

namespace {

/// Index of the newest version with version_ts <= ts. Chains always hold the
/// initial version (ts 0), so a result exists for every ts.
size_t VisibleIndex(const std::vector<MvccVersion>& chain, uint64_t ts) {
  size_t lo = 0;
  for (size_t i = chain.size(); i-- > 0;) {
    if (chain[i].version_ts <= ts) {
      lo = i;
      break;
    }
  }
  return lo;
}

}  // namespace

MvccStore::MvccStore(uint32_t num_objects, uint32_t num_stripes)
    : chains_(num_objects), stripes_(num_stripes == 0 ? 1 : num_stripes) {
  for (auto& chain : chains_) chain.push_back(MvccVersion{});  // t0 writes everything
}

MvccStore::ReadResult MvccStore::Read(ObjectId ob, uint64_t ts) {
  std::lock_guard<std::mutex> lock(stripes_[StripeOf(ob)]);
  std::vector<MvccVersion>& chain = chains_[ob];
  MvccVersion& v = chain[VisibleIndex(chain, ts)];
  v.max_read_ts = std::max(v.max_read_ts, ts);
  return ReadResult{v.writer, v.version_ts};
}

bool MvccStore::CommitWrites(std::span<const ObjectId> write_set, TxnId writer, uint64_t ts) {
  assert(ts > 0 && "timestamp 0 is reserved for the initial versions");
  // Latch every stripe the write set touches, each once, in ascending stripe
  // order (commits therefore never deadlock against each other, and readers
  // latch only a single stripe).
  std::vector<size_t> stripe_ids;
  stripe_ids.reserve(write_set.size());
  for (ObjectId ob : write_set) stripe_ids.push_back(StripeOf(ob));
  std::sort(stripe_ids.begin(), stripe_ids.end());
  stripe_ids.erase(std::unique(stripe_ids.begin(), stripe_ids.end()), stripe_ids.end());
  for (size_t s : stripe_ids) stripes_[s].lock();

  bool ok = true;
  for (ObjectId ob : write_set) {
    const std::vector<MvccVersion>& chain = chains_[ob];
    const MvccVersion& visible = chain[VisibleIndex(chain, ts)];
    // A reader younger than ts already observed the state this write would
    // replace for it: installing would retroactively invalidate that read.
    if (visible.max_read_ts > ts) {
      ok = false;
      break;
    }
  }
  if (ok) {
    for (ObjectId ob : write_set) {
      std::vector<MvccVersion>& chain = chains_[ob];
      // Install in timestamp position; commits usually carry the newest ts,
      // so the scan from the back is O(1) in steady state.
      auto it = chain.end();
      while (it != chain.begin() && std::prev(it)->version_ts > ts) --it;
      chain.insert(it, MvccVersion{ts, 0, writer});
    }
  }

  for (size_t i = stripe_ids.size(); i-- > 0;) stripes_[stripe_ids[i]].unlock();
  return ok;
}

bool MvccStore::PrecheckWrites(std::span<const ObjectId> write_set, uint64_t ts) {
  // Per-object single-stripe latches suffice: this never installs anything,
  // so there is no cross-object atomicity to preserve.
  for (ObjectId ob : write_set) {
    std::lock_guard<std::mutex> lock(stripes_[StripeOf(ob)]);
    const std::vector<MvccVersion>& chain = chains_[ob];
    if (chain[VisibleIndex(chain, ts)].max_read_ts > ts) return false;
  }
  return true;
}

uint64_t MvccStore::CollectGarbage(uint64_t safe_ts) {
  uint64_t pruned = 0;
  for (ObjectId ob = 0; ob < chains_.size(); ++ob) {
    std::lock_guard<std::mutex> lock(stripes_[StripeOf(ob)]);
    std::vector<MvccVersion>& chain = chains_[ob];
    const size_t keep_from = VisibleIndex(chain, safe_ts);
    if (keep_from > 0) {
      chain.erase(chain.begin(), chain.begin() + static_cast<ptrdiff_t>(keep_from));
      pruned += keep_from;
    }
  }
  versions_pruned_ += pruned;
  return pruned;
}

size_t MvccStore::VersionCount(ObjectId ob) {
  std::lock_guard<std::mutex> lock(stripes_[StripeOf(ob)]);
  return chains_[ob].size();
}

}  // namespace bcc
