// Thread-pooled server update engine (DESIGN.md §4h, ROADMAP item 3).
//
// The paper serializes server update transactions through one sequential
// path before their commits are folded into the F-Matrix broadcast. The
// TxnProcessor lifts that cap: a StaticThreadPool executes one broadcast
// cycle's update transactions concurrently under a pluggable scheme —
// strict 2PL (wait-die, key-striped LockManager), OCC (backward validation
// at commit), or MVCC (timestamp ordering over an MvccStore with
// epoch-batched GC) — and returns the committed transactions *in their
// serialization order*. Folding that order into a ServerTxnManager at the
// cycle boundary (FoldIntoManager) reuses the cycle-fused
// FMatrix::ApplyCommitBatch maintenance unchanged, so the broadcast-side
// pipeline never sees which scheme produced the order.
//
// Every committed transaction records which writer each of its reads
// observed; VerifySerializable replays the serialization order through a
// sequential last-writer table and confirms every observation — an exact
// serializability oracle (view equivalence to the serial execution). Tests
// additionally rebuild the real interleaved history from per-operation
// sequence numbers and feed it to the src/cc checkers.

#ifndef BCC_SERVER_EXEC_TXN_PROCESSOR_H_
#define BCC_SERVER_EXEC_TXN_PROCESSOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "history/history.h"
#include "history/operation.h"
#include "server/exec/lock_manager.h"
#include "server/exec/mvcc_store.h"
#include "server/exec/scheme.h"
#include "server/exec/static_thread_pool.h"
#include "server/txn_manager.h"

namespace bcc {

/// Which committed writer a read observed (the view the transaction saw).
struct ReadObservation {
  ObjectId object = 0;
  TxnId writer = kInitTxn;
};

/// One operation of a committed transaction stamped with its global order
/// (a fresh sequence number drawn at the instant the operation took effect
/// under the scheme's synchronization). Only the successful attempt's
/// operations are recorded; died/invalidated attempts leave no trace.
struct SeqOp {
  uint64_t seq = 0;
  Operation op{OpType::kRead, kNoTxn, 0};
};

/// A server update transaction the processor committed.
struct CommittedServerTxn {
  ServerTxn txn;
  /// Position in the scheme's serialization order (2PL/OCC: commit-point
  /// order; MVCC: timestamp order). Unique; ascending = the order to replay.
  uint64_t commit_seq = 0;
  std::vector<ReadObservation> reads;
  /// Interleaved-history trace: this transaction's reads, writes, and commit
  /// marker with their global sequence numbers (BuildInterleavedHistory).
  std::vector<SeqOp> ops;
  /// Scheme-level aborts (wait-die deaths, failed validations, write
  /// conflicts) this transaction survived before committing.
  uint32_t aborts = 0;
  /// Mixed-in result of the synthetic per-operation work (bench knob); keeps
  /// the optimizer honest and is otherwise meaningless.
  uint64_t checksum = 0;
};

/// Cumulative processor counters (monotone across batches).
struct TxnProcessorStats {
  uint64_t committed = 0;
  uint64_t batches = 0;
  uint64_t lock_die_aborts = 0;        ///< 2PL wait-die deaths
  uint64_t occ_validation_aborts = 0;  ///< OCC backward-validation failures
  uint64_t mvcc_write_aborts = 0;      ///< MVTO write-rule rejections
  uint64_t mvcc_versions_pruned = 0;   ///< epoch GC reclamation
};

/// Concurrent executor for server update transactions.
class TxnProcessor {
 public:
  struct Options {
    /// Synthetic per-operation service time in microseconds, modeling the
    /// backing-store access a real update operation pays (object payloads
    /// are object_size_bits wide). Workers overlap these waits, which is
    /// what the worker-count throughput sweep in bench_txn_processor
    /// measures. 0 (the default, and the engines' setting) executes ops at
    /// memory speed.
    uint64_t op_service_us = 0;
  };

  /// `num_workers` == 0 or scheme == kSequential executes inline on the
  /// calling thread (no pool).
  TxnProcessor(uint32_t num_objects, UpdateScheme scheme, uint32_t num_workers, Options options);
  TxnProcessor(uint32_t num_objects, UpdateScheme scheme, uint32_t num_workers)
      : TxnProcessor(num_objects, scheme, num_workers, Options()) {}
  ~TxnProcessor();

  TxnProcessor(const TxnProcessor&) = delete;
  TxnProcessor& operator=(const TxnProcessor&) = delete;

  UpdateScheme scheme() const { return scheme_; }
  uint32_t num_workers() const { return pool_ ? pool_->num_workers() : 1; }
  uint32_t num_objects() const { return num_objects_; }

  /// Executes the batch (one broadcast cycle's update transactions)
  /// concurrently and blocks until every transaction committed — aborted
  /// attempts are retried by the scheme until they succeed, so the result
  /// always holds exactly the input transactions, sorted by commit_seq
  /// (their serialization order). Committed state persists across batches;
  /// the return of ExecuteBatch is an epoch boundary (MVCC runs its GC
  /// here). Transaction ids must be unique and nonzero.
  std::vector<CommittedServerTxn> ExecuteBatch(std::span<const ServerTxn> txns);

  /// Executes `txns` inline on the calling thread, in the given order,
  /// through the same scheme state as ExecuteBatch. With no concurrent batch
  /// in flight there is no conflicting contender, so every transaction
  /// commits on its first attempt and the serialization order equals the
  /// input order. This is how accepted client uplink transactions enter the
  /// processor: validated in acceptance order, they must also *commit* in
  /// acceptance order — running them as a serial prefix before the cycle's
  /// pooled server batch pins their fold-position reads to exactly the
  /// prior-cycle state the client observed over broadcast. commit_seq stays
  /// globally ascending across ExecuteSerial and ExecuteBatch calls. Must
  /// not overlap an ExecuteBatch on another thread.
  std::vector<CommittedServerTxn> ExecuteSerial(std::span<const ServerTxn> txns);

  /// Runs `body(shard)` for shards [0, num_shards) on the worker pool and
  /// blocks until all complete (inline when the processor has no pool). The
  /// shard bodies must be mutually independent. Used by the pooled-apply
  /// fold to parallelize ApplyCommitBatch column partitions.
  void RunShards(uint32_t num_shards, const std::function<void(uint32_t)>& body);

  const TxnProcessorStats& stats() const { return stats_; }

  /// Test-only interleaving hook, invoked at scheme stage boundaries
  /// ("start", "2pl:locked", "2pl:die", "occ:read-done", "occ:install",
  /// "mvcc:read-done", "mvcc:die", "commit") with no internal latch held
  /// (2pl:locked runs with the transaction's logical locks held, which is
  /// what lets tests build contention windows). Set before the first
  /// ExecuteBatch and never change it while a batch runs.
  using TestHook = std::function<void(TxnId txn, std::string_view stage)>;
  void set_test_hook(TestHook hook) { hook_ = std::move(hook); }

  /// Test-only: the 2PL lock table (null under other schemes). Lets tests
  /// assert the table drains between batches.
  LockManager* lock_manager_for_test() { return locks_.get(); }

 private:
  /// Sleeps between retries — capped exponential in the retry count, scaled
  /// by the configured service time, jittered — to break retry storms on
  /// write-hot keys.
  void Backoff(uint32_t aborts) const;
  void RunToCommit(const ServerTxn& txn, uint64_t priority, CommittedServerTxn& out);
  bool TryTwoPhase(const ServerTxn& txn, uint64_t priority, CommittedServerTxn& out);
  bool TryOcc(const ServerTxn& txn, CommittedServerTxn& out);
  bool TryMvcc(const ServerTxn& txn, CommittedServerTxn& out);
  void RunSequential(const ServerTxn& txn, CommittedServerTxn& out);
  uint64_t OpWork(uint64_t salt);

  const uint32_t num_objects_;
  const UpdateScheme scheme_;
  const Options options_;
  std::unique_ptr<StaticThreadPool> pool_;

  // 2PL / OCC / sequential committed state: the last committed writer per
  // object. 2PL guards entries with the object's lock; OCC with occ_mu_.
  std::vector<TxnId> last_writer_;
  std::unique_ptr<LockManager> locks_;           // 2PL
  std::shared_mutex occ_mu_;                     // OCC: shared=read, unique=validate+install
  std::vector<uint64_t> occ_version_;            // OCC per-object install counter
  std::unique_ptr<MvccStore> mvcc_;              // MVCC

  std::atomic<uint64_t> next_seq_{1};   // commit_seq (2PL/OCC/seq)
  std::atomic<uint64_t> next_ts_{1};    // 2PL priorities & MVCC timestamps
  std::atomic<uint64_t> next_op_seq_{1};

  TxnProcessorStats stats_;  // batch-level fields updated at barriers
  std::atomic<uint64_t> lock_die_aborts_{0};
  std::atomic<uint64_t> occ_validation_aborts_{0};
  std::atomic<uint64_t> mvcc_write_aborts_{0};
  mutable std::atomic<uint64_t> backoff_salt_{0};

  TestHook hook_;
};

/// Replays `committed` (ascending commit_seq) into `manager` at broadcast
/// cycle `cycle` — the bridge from the scheme's serialization order into the
/// cycle-fused F-Matrix/MC-vector maintenance.
void FoldIntoManager(std::span<const CommittedServerTxn> committed, ServerTxnManager& manager,
                     Cycle cycle);

/// Exact serializability oracle: replays the serialization order through a
/// sequential last-writer table and verifies every recorded read observation
/// (plus commit_seq uniqueness). `committed` may span several batches as
/// long as it is ascending by commit_seq.
Status VerifySerializable(uint32_t num_objects, std::span<const CommittedServerTxn> committed);

/// Rebuilds the totally ordered history the committed transactions actually
/// executed, by sorting every recorded operation by its global sequence
/// number. For 2PL and OCC this single-version interleaving must be conflict
/// serializable (the property suite enforces it); MVCC interleavings are
/// only timestamp-order serializable, so tests feed its serialization-order
/// history instead.
History BuildInterleavedHistory(std::span<const CommittedServerTxn> committed);

}  // namespace bcc

#endif  // BCC_SERVER_EXEC_TXN_PROCESSOR_H_
