// A fixed-size worker pool for the parallel update engine: N threads created
// up front, one shared FIFO task queue, no growth, no work stealing. Update
// transactions are short and uniform, so the simplest possible pool keeps
// the scheduling overhead off the profile and the threading model easy to
// reason about under TSan.

#ifndef BCC_SERVER_EXEC_STATIC_THREAD_POOL_H_
#define BCC_SERVER_EXEC_STATIC_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace bcc {

/// Fixed set of workers draining one FIFO queue. Submit never blocks; the
/// destructor drains every queued task before joining (tasks submitted
/// before destruction always run).
class StaticThreadPool {
 public:
  explicit StaticThreadPool(uint32_t num_workers) {
    workers_.reserve(num_workers == 0 ? 1 : num_workers);
    for (uint32_t w = 0; w < (num_workers == 0 ? 1 : num_workers); ++w) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~StaticThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  StaticThreadPool(const StaticThreadPool&) = delete;
  StaticThreadPool& operator=(const StaticThreadPool&) = delete;

  uint32_t num_workers() const { return static_cast<uint32_t>(workers_.size()); }

  /// Enqueues a task; it runs on some worker in FIFO dispatch order.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace bcc

#endif  // BCC_SERVER_EXEC_STATIC_THREAD_POOL_H_
