#include "server/exec/txn_processor.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace bcc {

namespace {

bool Contains(const std::vector<ObjectId>& set, ObjectId ob) {
  return std::find(set.begin(), set.end(), ob) != set.end();
}

/// splitmix64 finalizer — the checksum bits mixed in per operation.
uint64_t Mix(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

TxnProcessor::TxnProcessor(uint32_t num_objects, UpdateScheme scheme, uint32_t num_workers,
                           Options options)
    : num_objects_(num_objects), scheme_(scheme), options_(options) {
  if (scheme_ != UpdateScheme::kSequential && num_workers > 0) {
    pool_ = std::make_unique<StaticThreadPool>(num_workers);
  }
  switch (scheme_) {
    case UpdateScheme::kSequential:
      last_writer_.assign(num_objects_, kInitTxn);
      break;
    case UpdateScheme::kTwoPhaseLocking:
      last_writer_.assign(num_objects_, kInitTxn);
      locks_ = std::make_unique<LockManager>();
      break;
    case UpdateScheme::kOcc:
      last_writer_.assign(num_objects_, kInitTxn);
      occ_version_.assign(num_objects_, 0);
      break;
    case UpdateScheme::kMvcc:
      mvcc_ = std::make_unique<MvccStore>(num_objects_);
      break;
  }
}

TxnProcessor::~TxnProcessor() = default;

std::vector<CommittedServerTxn> TxnProcessor::ExecuteBatch(std::span<const ServerTxn> txns) {
  std::vector<CommittedServerTxn> results(txns.size());
  if (!pool_) {
    for (size_t i = 0; i < txns.size(); ++i) {
      const uint64_t priority = next_ts_.fetch_add(1, std::memory_order_relaxed);
      RunToCommit(txns[i], priority, results[i]);
    }
  } else {
    std::mutex mu;
    std::condition_variable done_cv;
    size_t remaining = txns.size();
    for (size_t i = 0; i < txns.size(); ++i) {
      // Wait-die priorities are fixed at submission: retries keep them, so
      // every transaction eventually becomes the oldest contender.
      const uint64_t priority = next_ts_.fetch_add(1, std::memory_order_relaxed);
      pool_->Submit([this, txns, i, priority, &results, &mu, &done_cv, &remaining] {
        RunToCommit(txns[i], priority, results[i]);
        std::lock_guard<std::mutex> lock(mu);
        if (--remaining == 0) done_cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }

  // Batch barrier: no transaction is in flight. Fold the workers' atomic
  // counters into the stats snapshot, run the MVCC epoch GC, and hand the
  // committed transactions back in serialization order.
  stats_.batches += 1;
  stats_.committed += txns.size();
  stats_.lock_die_aborts = lock_die_aborts_.load(std::memory_order_relaxed);
  stats_.occ_validation_aborts = occ_validation_aborts_.load(std::memory_order_relaxed);
  stats_.mvcc_write_aborts = mvcc_write_aborts_.load(std::memory_order_relaxed);
  if (mvcc_) {
    mvcc_->CollectGarbage(next_ts_.load(std::memory_order_relaxed));
    stats_.mvcc_versions_pruned = mvcc_->versions_pruned();
  }
  std::sort(results.begin(), results.end(),
            [](const CommittedServerTxn& a, const CommittedServerTxn& b) {
              return a.commit_seq < b.commit_seq;
            });
  return results;
}

std::vector<CommittedServerTxn> TxnProcessor::ExecuteSerial(std::span<const ServerTxn> txns) {
  std::vector<CommittedServerTxn> results(txns.size());
  for (size_t i = 0; i < txns.size(); ++i) {
    const uint64_t priority = next_ts_.fetch_add(1, std::memory_order_relaxed);
    RunToCommit(txns[i], priority, results[i]);
    // Serial execution never conflicts: locks are uncontended, OCC validates
    // against an unchanged snapshot, and MVTO timestamps ascend with the
    // input order. Any abort here is a scheme bug.
    assert(results[i].aborts == 0 && "serial execution must commit first-try");
    assert((i == 0 || results[i - 1].commit_seq < results[i].commit_seq) &&
           "serial commit order must equal the input order");
  }
  stats_.committed += txns.size();
  stats_.lock_die_aborts = lock_die_aborts_.load(std::memory_order_relaxed);
  stats_.occ_validation_aborts = occ_validation_aborts_.load(std::memory_order_relaxed);
  stats_.mvcc_write_aborts = mvcc_write_aborts_.load(std::memory_order_relaxed);
  return results;
}

void TxnProcessor::RunShards(uint32_t num_shards, const std::function<void(uint32_t)>& body) {
  if (!pool_ || num_shards <= 1) {
    for (uint32_t s = 0; s < num_shards; ++s) body(s);
    return;
  }
  std::mutex mu;
  std::condition_variable done_cv;
  uint32_t remaining = num_shards;
  for (uint32_t s = 0; s < num_shards; ++s) {
    pool_->Submit([s, &body, &mu, &done_cv, &remaining] {
      body(s);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

void TxnProcessor::Backoff(uint32_t aborts) const {
  // Capped exponential backoff with jitter between retries. Wait-die victims
  // and MVTO write-rule failures restart immediately otherwise, and under
  // write-hot keys the retry storm itself keeps feeding the conflict (an
  // MVTO retry takes a fresh — youngest — timestamp, so an unbroken stream
  // of concurrent contenders can starve it indefinitely). Linear backoff is
  // not enough: with every victim sleeping the same deterministic interval,
  // the whole cohort re-collides in lockstep on each round. Doubling the
  // window per consecutive abort spreads the retries over an interval that
  // grows until roughly one contender per service time remains, and the
  // jitter decorrelates victims that aborted in the same round. With zero
  // service time a yield suffices: critical sections are memory-speed and
  // the storm cannot sustain itself.
  if (options_.op_service_us == 0 || aborts < 2) {
    std::this_thread::yield();
    return;
  }
  const uint32_t exponent = std::min<uint32_t>(aborts - 1, 6);  // cap: 64x service time
  const uint64_t window_us = options_.op_service_us * (uint64_t{1} << exponent);
  const uint64_t salt = backoff_salt_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t jitter = Mix(salt ^ (uint64_t{aborts} << 32));
  // Sleep uniformly in [window/2, window]: never fully synchronized, never
  // shorter than half the deterministic schedule.
  const uint64_t sleep_us = window_us / 2 + jitter % (window_us / 2 + 1);
  std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
}

void TxnProcessor::RunToCommit(const ServerTxn& txn, uint64_t priority, CommittedServerTxn& out) {
  assert(txn.id != kNoTxn && txn.id != kInitTxn && "transaction ids must be nonzero");
  out.txn = txn;
  out.aborts = 0;
  if (hook_) hook_(txn.id, "start");
  switch (scheme_) {
    case UpdateScheme::kSequential:
      RunSequential(txn, out);
      break;
    case UpdateScheme::kTwoPhaseLocking:
      while (!TryTwoPhase(txn, priority, out)) {
        out.aborts += 1;
        Backoff(out.aborts);
      }
      break;
    case UpdateScheme::kOcc:
      while (!TryOcc(txn, out)) {
        out.aborts += 1;
        Backoff(out.aborts);
      }
      break;
    case UpdateScheme::kMvcc:
      while (!TryMvcc(txn, out)) {
        out.aborts += 1;
        Backoff(out.aborts);
      }
      break;
  }
  if (hook_) hook_(txn.id, "commit");
}

bool TxnProcessor::TryTwoPhase(const ServerTxn& txn, uint64_t priority, CommittedServerTxn& out) {
  out.reads.clear();
  out.ops.clear();
  out.checksum = 0;

  // Growing phase: everything before the first access. Reads take shared
  // locks; an object also written is upgraded to exclusive when the write
  // lock is requested (the LockManager promotes the holder in place, so the
  // object still appears once in `held`).
  std::vector<ObjectId> held;
  held.reserve(txn.read_set.size() + txn.write_set.size());
  auto release_all = [&] {
    for (ObjectId ob : held) locks_->Release(ob, priority);
    held.clear();
  };
  auto die = [&] {
    release_all();
    lock_die_aborts_.fetch_add(1, std::memory_order_relaxed);
    if (hook_) hook_(txn.id, "2pl:die");
    return false;
  };
  for (ObjectId ob : txn.read_set) {
    if (locks_->Acquire(ob, LockMode::kShared, priority) == LockOutcome::kDie) return die();
    held.push_back(ob);
  }
  for (ObjectId ob : txn.write_set) {
    const bool upgrade = Contains(txn.read_set, ob);
    if (locks_->Acquire(ob, LockMode::kExclusive, priority) == LockOutcome::kDie) return die();
    if (!upgrade) held.push_back(ob);
  }
  if (hook_) hook_(txn.id, "2pl:locked");

  // Execute. last_writer_[ob] is guarded by the logical lock on ob; the
  // global op counter is fetched while the lock is held, so sequence order
  // agrees with conflict order.
  for (ObjectId ob : txn.read_set) {
    const uint64_t seq = next_op_seq_.fetch_add(1, std::memory_order_relaxed);
    out.reads.push_back(ReadObservation{ob, last_writer_[ob]});
    out.ops.push_back(SeqOp{seq, Operation::Read(txn.id, ob)});
    out.checksum ^= OpWork(seq);
  }
  for (ObjectId ob : txn.write_set) {
    const uint64_t seq = next_op_seq_.fetch_add(1, std::memory_order_relaxed);
    last_writer_[ob] = txn.id;
    out.ops.push_back(SeqOp{seq, Operation::Write(txn.id, ob)});
    out.checksum ^= OpWork(seq);
  }
  // The commit point is reached with all locks held: for any conflicting
  // pair the earlier transaction draws its commit_seq before releasing, the
  // later one only after acquiring, so commit_seq order extends the
  // conflict order (strict 2PL's serialization order).
  out.commit_seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  out.ops.push_back(
      SeqOp{next_op_seq_.fetch_add(1, std::memory_order_relaxed), Operation::Commit(txn.id)});
  release_all();
  return true;
}

bool TxnProcessor::TryOcc(const ServerTxn& txn, CommittedServerTxn& out) {
  out.reads.clear();
  out.ops.clear();
  out.checksum = 0;

  // Read phase: snapshot {writer, install-version} per object under a brief
  // shared latch; the service time (the store access) is paid outside it.
  std::vector<uint64_t> read_versions;
  read_versions.reserve(txn.read_set.size());
  for (ObjectId ob : txn.read_set) {
    uint64_t seq;
    {
      std::shared_lock<std::shared_mutex> lock(occ_mu_);
      seq = next_op_seq_.fetch_add(1, std::memory_order_relaxed);
      out.reads.push_back(ReadObservation{ob, last_writer_[ob]});
      read_versions.push_back(occ_version_[ob]);
    }
    out.ops.push_back(SeqOp{seq, Operation::Read(txn.id, ob)});
    out.checksum ^= OpWork(seq);
  }
  if (hook_) hook_(txn.id, "occ:read-done");

  // Compute phase: the write work happens against the transaction's private
  // workspace, before validation — the critical section stays memory-speed.
  for (ObjectId ob : txn.write_set) {
    out.checksum ^= OpWork(static_cast<uint64_t>(txn.id) * 0x10001ULL + ob);
  }

  // Backward validation + install, serialized by the unique latch: if any
  // object we read was re-installed since, a conflicting transaction
  // committed inside our window — abort and retry.
  {
    std::unique_lock<std::shared_mutex> lock(occ_mu_);
    for (size_t i = 0; i < txn.read_set.size(); ++i) {
      if (occ_version_[txn.read_set[i]] != read_versions[i]) {
        lock.unlock();
        occ_validation_aborts_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    for (ObjectId ob : txn.write_set) {
      last_writer_[ob] = txn.id;
      occ_version_[ob] += 1;
      out.ops.push_back(SeqOp{next_op_seq_.fetch_add(1, std::memory_order_relaxed),
                              Operation::Write(txn.id, ob)});
    }
    out.commit_seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    out.ops.push_back(
        SeqOp{next_op_seq_.fetch_add(1, std::memory_order_relaxed), Operation::Commit(txn.id)});
  }
  if (hook_) hook_(txn.id, "occ:install");
  return true;
}

bool TxnProcessor::TryMvcc(const ServerTxn& txn, CommittedServerTxn& out) {
  out.reads.clear();
  out.ops.clear();
  out.checksum = 0;

  // Every attempt draws a fresh timestamp; the serialization order of
  // committed transactions is exactly timestamp order, so commit_seq = ts.
  const uint64_t ts = next_ts_.fetch_add(1, std::memory_order_relaxed);
  // With nonzero service time an attempt is a wide window: while this
  // transaction pays for its operations, younger readers observe the
  // pre-state versions it wants to overwrite, and once one does the write
  // rule can never pass for `ts` again (max_read_ts only grows within the
  // epoch). Peeking at the rule before each paid operation abandons a
  // doomed attempt the moment it becomes doomed instead of finishing the
  // attempt just to fail CommitWrites. At memory speed the window is too
  // narrow to matter, so the peek is skipped and the hook sequence is
  // exactly the classic read-done -> commit/die.
  const bool peek = options_.op_service_us > 0;
  auto die = [&] {
    mvcc_write_aborts_.fetch_add(1, std::memory_order_relaxed);
    if (hook_) hook_(txn.id, "mvcc:die");
    return false;
  };
  for (ObjectId ob : txn.read_set) {
    if (peek && !mvcc_->PrecheckWrites(txn.write_set, ts)) return die();
    const MvccStore::ReadResult r = mvcc_->Read(ob, ts);
    const uint64_t seq = next_op_seq_.fetch_add(1, std::memory_order_relaxed);
    out.reads.push_back(ReadObservation{ob, r.writer});
    out.ops.push_back(SeqOp{seq, Operation::Read(txn.id, ob)});
    out.checksum ^= OpWork(seq);
  }
  if (hook_) hook_(txn.id, "mvcc:read-done");
  if (!mvcc_->CommitWrites(txn.write_set, txn.id, ts)) return die();
  // The write-side store access is paid after the commit decision: MVTO
  // validates and installs at the commit point, and only a transaction that
  // actually commits touches the backing store for its writes. Paying it
  // before CommitWrites would both bill aborted attempts for writes they
  // never install and stretch the window in which a younger reader can doom
  // this timestamp.
  for (ObjectId ob : txn.write_set) {
    out.checksum ^= OpWork(ts * 0x10001ULL + ob);
    out.ops.push_back(
        SeqOp{next_op_seq_.fetch_add(1, std::memory_order_relaxed), Operation::Write(txn.id, ob)});
  }
  out.commit_seq = ts;
  out.ops.push_back(
      SeqOp{next_op_seq_.fetch_add(1, std::memory_order_relaxed), Operation::Commit(txn.id)});
  return true;
}

void TxnProcessor::RunSequential(const ServerTxn& txn, CommittedServerTxn& out) {
  out.reads.clear();
  out.ops.clear();
  out.checksum = 0;
  for (ObjectId ob : txn.read_set) {
    const uint64_t seq = next_op_seq_.fetch_add(1, std::memory_order_relaxed);
    out.reads.push_back(ReadObservation{ob, last_writer_[ob]});
    out.ops.push_back(SeqOp{seq, Operation::Read(txn.id, ob)});
    out.checksum ^= OpWork(seq);
  }
  for (ObjectId ob : txn.write_set) {
    const uint64_t seq = next_op_seq_.fetch_add(1, std::memory_order_relaxed);
    last_writer_[ob] = txn.id;
    out.ops.push_back(SeqOp{seq, Operation::Write(txn.id, ob)});
    out.checksum ^= OpWork(seq);
  }
  out.commit_seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  out.ops.push_back(
      SeqOp{next_op_seq_.fetch_add(1, std::memory_order_relaxed), Operation::Commit(txn.id)});
}

uint64_t TxnProcessor::OpWork(uint64_t salt) {
  if (options_.op_service_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(options_.op_service_us));
  }
  return Mix(salt);
}

void FoldIntoManager(std::span<const CommittedServerTxn> committed, ServerTxnManager& manager,
                     Cycle cycle) {
  for (const CommittedServerTxn& c : committed) manager.ExecuteAndCommit(c.txn, cycle);
}

Status VerifySerializable(uint32_t num_objects, std::span<const CommittedServerTxn> committed) {
  std::vector<TxnId> table(num_objects, kInitTxn);
  uint64_t prev_seq = 0;
  for (const CommittedServerTxn& c : committed) {
    if (c.commit_seq <= prev_seq) {
      return Status::Internal("commit_seq not strictly ascending at txn " +
                              std::to_string(c.txn.id));
    }
    prev_seq = c.commit_seq;
    for (const ReadObservation& r : c.reads) {
      if (r.object >= num_objects) {
        return Status::InvalidArgument("read of out-of-range object " + std::to_string(r.object));
      }
      if (table[r.object] != r.writer) {
        return Status::Internal("txn " + std::to_string(c.txn.id) + " observed ob" +
                                std::to_string(r.object) + " from txn " +
                                std::to_string(r.writer) + " but the serial replay installs txn " +
                                std::to_string(table[r.object]) + " there");
      }
    }
    for (ObjectId ob : c.txn.write_set) {
      if (ob >= num_objects) {
        return Status::InvalidArgument("write of out-of-range object " + std::to_string(ob));
      }
      table[ob] = c.txn.id;
    }
  }
  return Status::OK();
}

History BuildInterleavedHistory(std::span<const CommittedServerTxn> committed) {
  std::vector<SeqOp> all;
  size_t total = 0;
  for (const CommittedServerTxn& c : committed) total += c.ops.size();
  all.reserve(total);
  for (const CommittedServerTxn& c : committed) {
    all.insert(all.end(), c.ops.begin(), c.ops.end());
  }
  std::sort(all.begin(), all.end(),
            [](const SeqOp& a, const SeqOp& b) { return a.seq < b.seq; });
  History h;
  for (const SeqOp& s : all) h.Append(s.op);
  return h;
}

}  // namespace bcc
