// Pluggable concurrency-control schemes for the server's parallel update
// engine (DESIGN.md §4h). The paper assumes server update transactions are
// serialized by *some* local scheme before their commits are folded into the
// control-information broadcast; this enum names the schemes the
// TxnProcessor implements.

#ifndef BCC_SERVER_EXEC_SCHEME_H_
#define BCC_SERVER_EXEC_SCHEME_H_

#include <string_view>

#include "common/statusor.h"

namespace bcc {

/// How the server serializes its update transactions.
enum class UpdateScheme {
  kSequential,       ///< the classic single-path ServerTxnManager ordering
  kTwoPhaseLocking,  ///< strict 2PL with a key-striped wait-die lock manager
  kOcc,              ///< optimistic execution, backward validation at commit
  kMvcc,             ///< multiversion timestamp ordering over a version store
};

/// Short stable name ("seq", "2pl", "occ", "mvcc") for flags and JSON rows.
std::string_view UpdateSchemeName(UpdateScheme scheme);

/// Inverse of UpdateSchemeName; InvalidArgument on unknown names.
StatusOr<UpdateScheme> ParseUpdateScheme(std::string_view name);

}  // namespace bcc

#endif  // BCC_SERVER_EXEC_SCHEME_H_
