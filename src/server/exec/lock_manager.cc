#include "server/exec/lock_manager.h"

#include <cassert>

namespace bcc {

LockManager::LockManager(uint32_t num_stripes) : stripes_(num_stripes == 0 ? 1 : num_stripes) {}

LockOutcome LockManager::Acquire(ObjectId ob, LockMode mode, uint64_t ts) {
  Stripe& stripe = StripeOf(ob);
  std::unique_lock<std::mutex> lock(stripe.mu);
  for (;;) {
    LockState& state = stripe.table[ob];
    Holder* self = nullptr;
    for (Holder& h : state.holders) {
      if (h.ts == ts) {
        self = &h;
        break;
      }
    }
    if (self != nullptr) {
      // Re-request by a current holder. Same or weaker mode is idempotent:
      // the existing hold already covers it, and no second holder entry is
      // registered (one Release still suffices).
      if (mode == LockMode::kShared || self->mode == LockMode::kExclusive) {
        return LockOutcome::kGranted;
      }
      // Shared -> exclusive upgrade: promote in place once sole holder.
      if (state.holders.size() == 1) {
        self->mode = LockMode::kExclusive;
        return LockOutcome::kGranted;
      }
      // Wait-die against the *other* holders. A dying upgrader keeps its
      // shared hold: the aborting caller releases every lock it holds, this
      // one included.
      for (const Holder& h : state.holders) {
        if (h.ts < ts) {
          die_count_.fetch_add(1, std::memory_order_relaxed);
          return LockOutcome::kDie;
        }
      }
      // Park until the holder set changes.
      wait_count_.fetch_add(1, std::memory_order_relaxed);
      ++state.parked_waiters;
      stripe.cv.wait(lock);
      --stripe.table[ob].parked_waiters;
      continue;
    }
    const bool compatible = [&] {
      if (state.holders.empty()) return true;
      if (mode == LockMode::kExclusive) return false;
      for (const Holder& h : state.holders) {
        if (h.mode == LockMode::kExclusive) return false;
      }
      return true;
    }();
    if (compatible) {
      state.holders.push_back(Holder{ts, mode});
      // Growing the holder set can flip a parked waiter's wait-die verdict:
      // shared-on-shared grants skip the age check, so the holder that just
      // joined may be *older* than a waiter that parked back when it was the
      // oldest contender. That waiter must wake up and die, not keep
      // sleeping while everything younger dies against its locks.
      if (state.parked_waiters > 0) stripe.cv.notify_all();
      return LockOutcome::kGranted;
    }
    // Wait-die: wait only when older than every holder; die otherwise.
    for (const Holder& h : state.holders) {
      if (h.ts < ts) {
        die_count_.fetch_add(1, std::memory_order_relaxed);
        return LockOutcome::kDie;
      }
    }
    wait_count_.fetch_add(1, std::memory_order_relaxed);
    ++state.parked_waiters;
    stripe.cv.wait(lock);
    --stripe.table[ob].parked_waiters;
  }
}

void LockManager::Release(ObjectId ob, uint64_t ts) {
  Stripe& stripe = StripeOf(ob);
  size_t remaining;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.table.find(ob);
    assert(it != stripe.table.end() && "release of an unheld lock");
    auto& holders = it->second.holders;
    for (size_t i = 0; i < holders.size(); ++i) {
      if (holders[i].ts == ts) {
        holders[i] = holders.back();
        holders.pop_back();
        break;
      }
    }
    remaining = holders.size();
    // A parked fresh waiter's counter lives in this entry: erasing it out
    // from under the waiter would reset the count and break grant-time
    // notification, so the entry stays until the waiter re-checks.
    if (holders.empty() && it->second.parked_waiters == 0) stripe.table.erase(it);
  }
  // A waiter can make progress only when the object went free (any fresh
  // request) or exactly one holder remains (that holder may be blocked in a
  // shared->exclusive upgrade). With >= 2 holders left, every remaining
  // holder is shared — an exclusive holder is always sole — so no fresh
  // shared request can be granted, and shrinking the holder set can never
  // turn a parked waiter's wait into a die (only grants do that, and they
  // notify on their own): skip the wakeup instead of thundering the stripe.
  if (remaining <= 1) stripe.cv.notify_all();
}

std::vector<std::tuple<ObjectId, uint64_t, bool>> LockManager::HeldEntriesForTest() {
  std::vector<std::tuple<ObjectId, uint64_t, bool>> out;
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& [ob, state] : stripe.table) {
      for (const Holder& h : state.holders) {
        out.emplace_back(ob, h.ts, h.mode == LockMode::kExclusive);
      }
    }
  }
  return out;
}

}  // namespace bcc
