#include "server/exec/lock_manager.h"

#include <cassert>

namespace bcc {

LockManager::LockManager(uint32_t num_stripes) : stripes_(num_stripes == 0 ? 1 : num_stripes) {}

LockOutcome LockManager::Acquire(ObjectId ob, LockMode mode, uint64_t ts) {
  Stripe& stripe = StripeOf(ob);
  std::unique_lock<std::mutex> lock(stripe.mu);
  bool waited = false;
  for (;;) {
    LockState& state = stripe.table[ob];
    const bool compatible = [&] {
      if (state.holders.empty()) return true;
      if (mode == LockMode::kExclusive) return false;
      for (const Holder& h : state.holders) {
        if (h.mode == LockMode::kExclusive) return false;
      }
      return true;
    }();
    if (compatible) {
      state.holders.push_back(Holder{ts, mode});
      if (waited) wait_count_.fetch_add(1, std::memory_order_relaxed);
      return LockOutcome::kGranted;
    }
    // Wait-die: wait only when older than every holder; die otherwise.
    for (const Holder& h : state.holders) {
      assert(h.ts != ts && "a transaction may not request the same object twice");
      if (h.ts < ts) {
        die_count_.fetch_add(1, std::memory_order_relaxed);
        return LockOutcome::kDie;
      }
    }
    waited = true;
    stripe.cv.wait(lock);
  }
}

void LockManager::Release(ObjectId ob, uint64_t ts) {
  Stripe& stripe = StripeOf(ob);
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.table.find(ob);
    assert(it != stripe.table.end() && "release of an unheld lock");
    auto& holders = it->second.holders;
    for (size_t i = 0; i < holders.size(); ++i) {
      if (holders[i].ts == ts) {
        holders[i] = holders.back();
        holders.pop_back();
        break;
      }
    }
    if (holders.empty()) stripe.table.erase(it);
  }
  stripe.cv.notify_all();
}

}  // namespace bcc
