// Optimistic validation of client update transactions (Section 3.2.1,
// client functionality, Commit: "a list of all the objects written and the
// values written are sent to the server. In addition, the list of all read
// operations performed and the cycle numbers in which they are performed
// are sent to the server. The server checks to see whether the update
// transaction can be committed").
//
// Validation rule (backward validation): every object the client read must
// still carry the committed version it read, i.e. no transaction that
// committed in or after the read's cycle wrote it. On success the
// transaction is executed serially at the server, placing it after every
// previously committed transaction — which preserves conflict
// serializability of all update transactions.

#ifndef BCC_SERVER_VALIDATOR_H_
#define BCC_SERVER_VALIDATOR_H_

#include <functional>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "matrix/control_info.h"
#include "obs/trace.h"
#include "server/mc_overlay.h"
#include "server/txn_manager.h"

namespace bcc {

/// A client update transaction as submitted over the uplink.
struct ClientUpdateRequest {
  TxnId id = kNoTxn;
  /// Reads performed off the broadcast, with the cycle each was read in.
  std::vector<ReadRecord> reads;
  /// Objects the client wrote locally (values are regenerated server-side;
  /// the store models values as version counters).
  std::vector<ObjectId> writes;
};

/// Server-side validator for client update transactions.
class UpdateValidator {
 public:
  explicit UpdateValidator(ServerTxnManager* manager) : manager_(manager) {}

  /// Validates `request` against the current committed state during
  /// broadcast cycle `current_cycle`. On success the transaction commits
  /// and its commit cycle is returned; on conflict, Status::Aborted.
  ///
  /// Direct mode (default): validation reads the manager's eager MC vector
  /// and an accepted transaction is executed serially at the manager on the
  /// spot. Staged mode (AttachStagedMode): validation reads the merged
  /// max(manager MC, overlay) view and an accepted transaction is staged
  /// into the overlay and handed to the sink instead — the engine folds it
  /// through the TxnProcessor at the cycle boundary. Either way the view
  /// covers every transaction accepted into the current cycle so far, so
  /// the commit/abort decision is identical to the sequential path's.
  StatusOr<Cycle> ValidateAndCommit(const ClientUpdateRequest& request, Cycle current_cycle);

  /// Enters staged (pooled) mode: `overlay` carries the MC effects of this
  /// cycle's accepted-but-not-folded transactions, `sink` receives each
  /// accepted uplink transaction in acceptance order. Both must outlive the
  /// validator's use; pass {nullptr, nullptr} to return to direct mode.
  void AttachStagedMode(McOverlay* overlay, std::function<void(ServerTxn&&)> sink) {
    overlay_ = overlay;
    sink_ = std::move(sink);
  }

  size_t num_validated() const { return num_validated_; }
  size_t num_rejected() const { return num_rejected_; }

  /// Structured cause of the most recent rejection: the stale read (ob,
  /// read_cycle) and the conflicting commit stamp. Meaningful only
  /// immediately after ValidateAndCommit returned Aborted.
  const AbortInfo& last_reject() const { return last_reject_; }

 private:
  ServerTxnManager* manager_;
  McOverlay* overlay_ = nullptr;                 // staged mode, else nullptr
  std::function<void(ServerTxn&&)> sink_;        // staged mode accept path
  size_t num_validated_ = 0;
  size_t num_rejected_ = 0;
  AbortInfo last_reject_;
};

}  // namespace bcc

#endif  // BCC_SERVER_VALIDATOR_H_
