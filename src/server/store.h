// The server's two-version object store (Section 3.2.1, server function 1:
// "the server has to maintain two versions of objects: the latest committed
// version and the last written version").
//
// Object values are modeled as monotonically increasing counters tagged with
// the writing transaction and its commit cycle; the broadcast payload size
// is a simulation parameter and does not affect correctness.

#ifndef BCC_SERVER_STORE_H_
#define BCC_SERVER_STORE_H_

#include <optional>
#include <vector>

#include "common/cycle_stamp.h"
#include "common/status.h"
#include "history/object_id.h"

namespace bcc {

/// One committed version of an object.
struct ObjectVersion {
  uint64_t value = 0;       ///< counter; 0 is the initial (t0) value
  TxnId writer = kInitTxn;  ///< transaction that wrote it
  Cycle cycle = 0;          ///< broadcast cycle in which the write committed

  friend bool operator==(const ObjectVersion& a, const ObjectVersion& b) {
    return a.value == b.value && a.writer == b.writer && a.cycle == b.cycle;
  }
};

/// Two-version store: committed versions plus a staging area for the single
/// update transaction currently executing at the server (updates are applied
/// serially, matching the paper's simple case).
class VersionedStore {
 public:
  explicit VersionedStore(uint32_t num_objects);

  uint32_t num_objects() const { return static_cast<uint32_t>(committed_.size()); }

  /// Latest committed version.
  const ObjectVersion& Committed(ObjectId ob) const { return committed_[ob]; }

  /// Value a server-side transaction read: its own staged write if any,
  /// else the latest committed version.
  const ObjectVersion& ReadForStaging(ObjectId ob) const;

  /// Stages a write for the in-flight transaction (last-written version).
  void StageWrite(ObjectId ob, TxnId writer);

  bool HasStagedWrites() const { return !staged_order_.empty(); }

  /// Installs all staged writes as committed at `commit_cycle`.
  void CommitStaged(Cycle commit_cycle);

  /// Discards all staged writes.
  void AbortStaged();

  /// All committed versions (snapshot source for the broadcast).
  const std::vector<ObjectVersion>& committed() const { return committed_; }

 private:
  std::vector<ObjectVersion> committed_;
  std::vector<std::optional<ObjectVersion>> staged_;
  std::vector<ObjectId> staged_order_;
  uint64_t next_value_ = 1;
};

}  // namespace bcc

#endif  // BCC_SERVER_STORE_H_
