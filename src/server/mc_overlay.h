// Cycle-epoch MC-vector overlay: the mid-cycle side buffer that makes the
// uplink validator consistent while pooled server updates are in flight
// (DESIGN.md §4i).
//
// With the sequential update path the manager's MC vector is maintained
// eagerly, so the validator's backward check (`MC(ob) >= read cycle`?) always
// sees every commit that precedes the uplink transaction in the serialization
// order. The pooled path breaks that: a cycle's server transactions execute
// concurrently and their MC effects land only at the fold point. The overlay
// restores the eager view without touching the manager mid-cycle — every
// transaction *accepted into the current cycle* (pooled server txns at
// generation time, accepted uplink txns at validation time) stages its write
// set here, and the validator reads the merged view
//     max(manager.mc_vector().At(ob), overlay.At(ob)).
// Staged entries always stamp the current cycle, which is >= any manager
// entry, so the merge equals the MC vector the sequential path would show at
// the same instant. At the fold point the staged effects reach the manager
// for real and Clear() retires the epoch in O(1).
//
// Single-writer: stage/clear/read all happen under the engine's uplink
// serialization (the DES event loop, or the concurrent engine's uplink desk
// mutex). The overlay adds no locking of its own.

#ifndef BCC_SERVER_MC_OVERLAY_H_
#define BCC_SERVER_MC_OVERLAY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/cycle_stamp.h"
#include "history/object_id.h"

namespace bcc {

/// Per-object staged cycle stamps with O(1) epoch retirement.
class McOverlay {
 public:
  explicit McOverlay(uint32_t num_objects) : stamp_(num_objects, 0), tag_(num_objects, 0) {}

  uint32_t num_objects() const { return static_cast<uint32_t>(stamp_.size()); }

  /// Stages a transaction accepted into the current cycle: every written
  /// object's staged entry moves to `commit_cycle`.
  void Stage(std::span<const ObjectId> write_set, Cycle commit_cycle) {
    for (ObjectId w : write_set) {
      stamp_[w] = commit_cycle;
      tag_[w] = epoch_;
    }
  }

  /// Staged commit cycle for `ob`, or 0 when nothing staged it this epoch
  /// (0 never dominates a real MC entry: cycle 0 is the imaginary initial
  /// write, already below every committed stamp).
  Cycle At(ObjectId ob) const { return tag_[ob] == epoch_ ? stamp_[ob] : 0; }

  /// Retires every staged entry (the fold point published them for real).
  void Clear() { ++epoch_; }

 private:
  std::vector<Cycle> stamp_;
  std::vector<uint64_t> tag_;
  uint64_t epoch_ = 1;
};

}  // namespace bcc

#endif  // BCC_SERVER_MC_OVERLAY_H_
