// The server's update-transaction manager (Section 3.2.1, server
// functions 2 and 3).
//
// Update transactions — whether originated at the server or submitted by
// clients over the uplink — are executed and committed serially, which is
// the paper's "simple case where the entries are updated as per a
// serialization order". Each commit atomically:
//   - installs the transaction's writes into the two-version store,
//   - applies the Theorem 2 incremental update to the F-Matrix,
//   - advances the reduced MC vector, and
//   - (optionally) appends the operations to a recorded history so tests
//     can replay the run through the APPROX/legality oracles.

#ifndef BCC_SERVER_TXN_MANAGER_H_
#define BCC_SERVER_TXN_MANAGER_H_

#include <unordered_map>
#include <vector>

#include <optional>

#include "history/history.h"
#include "history/object_id.h"
#include "matrix/f_matrix.h"
#include "matrix/hier_matrix.h"
#include "matrix/mc_vector.h"
#include "matrix/sparse_f_matrix.h"
#include "server/store.h"

namespace bcc {

/// An update transaction to run at the server: reads first, then writes
/// (Appendix A form). Sets must be duplicate-free.
struct ServerTxn {
  TxnId id = kNoTxn;
  std::vector<ObjectId> read_set;
  std::vector<ObjectId> write_set;
};

/// Options controlling which structures the manager maintains. Simulations
/// disable what their algorithm does not need.
struct TxnManagerOptions {
  bool maintain_f_matrix = true;
  bool maintain_mc_vector = true;
  bool record_history = false;
  /// Record which F-Matrix columns commits rewrite (requires
  /// maintain_f_matrix); drained via TakeTouchedColumns for delta broadcast.
  bool track_dirty_columns = false;
  /// Fuse each broadcast cycle's F-Matrix maintenance into one
  /// FMatrix::ApplyCommitBatch call (bit-identical to the per-commit path;
  /// DESIGN.md §4g). Commits queue until the cycle advances or the matrix is
  /// observed (f_matrix(), SnapshotFMatrix(), TakeTouchedColumns), so every
  /// reader still sees exactly the sequential-maintenance state. The MC
  /// vector is always maintained eagerly — the uplink validator reads it
  /// mid-cycle. Disable to force the per-commit oracle path.
  bool batch_commit_maintenance = true;
  /// Maintain the control matrix in compressed-sparse-column form
  /// (MatrixMode::kSparse): value-identical to the dense FMatrix, O(nnz)
  /// per commit. May be combined with maintain_f_matrix (parity tests);
  /// the sims enable exactly one. Dirty-column drains prefer the sparse
  /// matrix when both track.
  bool maintain_sparse_matrix = false;
  /// Maintain the hierarchical matrix (MatrixMode::kHier) with these policy
  /// options. The sim drives its cycle-boundary policy via
  /// hier_matrix()->EndOfCycle.
  bool maintain_hier_matrix = false;
  HierMatrixOptions hier_options = {};
};

/// Serial update-transaction executor.
class ServerTxnManager {
 public:
  ServerTxnManager(uint32_t num_objects, TxnManagerOptions options = {});

  uint32_t num_objects() const { return store_.num_objects(); }

  /// Executes `txn` (reads then writes against committed state) and commits
  /// it during broadcast cycle `cycle`. Cycles must be non-decreasing across
  /// calls. Returns the values read (for logging/validation).
  std::vector<ObjectVersion> ExecuteAndCommit(const ServerTxn& txn, Cycle cycle);

  const VersionedStore& store() const { return store_; }

  /// The F-Matrix after every commit so far. Logically const: with commit
  /// batching enabled this flushes the pending cycle batch first (observing
  /// the matrix forces the queued maintenance), which is why the accessor
  /// const_casts internally; callers must not invoke it concurrently with
  /// ExecuteAndCommit (the engines only read it in the server's exclusive
  /// phase).
  const FMatrix& f_matrix() const {
    const_cast<ServerTxnManager*>(this)->FlushCommitBatch();
    return f_matrix_;
  }
  const McVector& mc_vector() const { return mc_vector_; }

  /// The sparse control matrix (options.maintain_sparse_matrix); flushes the
  /// pending batch like f_matrix(). Size-0 matrix when not maintained.
  const SparseFMatrix& sparse_f_matrix() const {
    const_cast<ServerTxnManager*>(this)->FlushCommitBatch();
    return sparse_f_matrix_;
  }

  /// Stable snapshot of the sparse matrix for the cycle's CycleSnapshot:
  /// O(n) shared-pointer copies, payloads shared with the live matrix.
  std::shared_ptr<const SparseFMatrix> SnapshotSparseFMatrix() const {
    auto snap = std::make_shared<SparseFMatrix>(sparse_f_matrix());
    snap->DisableDirtyTracking();
    return snap;
  }

  /// Wraparound-horizon compaction of the sparse matrix (sparse mode with
  /// use_wire_codec only; see SparseFMatrix::CompactModulo for the
  /// conservative-safety argument). Flushes the pending batch first. Returns
  /// the number of entries dropped.
  uint64_t CompactSparseMatrix(const CycleStampCodec& codec, Cycle current) {
    FlushCommitBatch();
    return sparse_f_matrix_.CompactModulo(codec, current);
  }

  /// The hierarchical matrix (options.maintain_hier_matrix), mutable because
  /// scans record spurious-abort evidence and EndOfCycle applies policy.
  /// Flushes the pending batch first. nullptr when not maintained.
  HierMatrix* hier_matrix() {
    FlushCommitBatch();
    return hier_matrix_ ? &*hier_matrix_ : nullptr;
  }

  /// Copy-on-write snapshot of the F-Matrix after every commit so far
  /// (flushes the pending batch like f_matrix()). O(n * touched columns)
  /// per cycle in steady state.
  FMatrixSnapshot SnapshotFMatrix() const { return f_matrix().Snapshot(); }

  /// Drains the control-matrix columns rewritten by commits since the last
  /// drain (options.track_dirty_columns must be set; drains the sparse
  /// matrix's list when it is maintained, the dense one's otherwise — the
  /// orders are identical by construction). Called once per broadcast cycle
  /// by the delta broadcaster.
  std::vector<ObjectId> TakeTouchedColumns() {
    FlushCommitBatch();
    return options_.maintain_sparse_matrix ? sparse_f_matrix_.TakeTouchedColumns()
                                           : f_matrix_.TakeTouchedColumns();
  }

  /// Capacity-preserving variant (see FMatrix::DrainTouchedColumns).
  void DrainTouchedColumns(std::vector<ObjectId>& out) {
    FlushCommitBatch();
    if (options_.maintain_sparse_matrix) {
      sparse_f_matrix_.DrainTouchedColumns(out);
    } else {
      f_matrix_.DrainTouchedColumns(out);
    }
  }

  /// Pooled-apply mode: route the cycle-batch F-Matrix fold through `runner`
  /// with `num_shards` column partitions (FMatrix::ApplyCommitBatch's
  /// sharded overload; bit-identical to the serial fold). The engines pass
  /// the TxnProcessor's pool here so fold cost itself parallelizes. An empty
  /// runner or num_shards <= 1 restores the serial fold.
  void SetParallelFold(ShardRunner runner, uint32_t num_shards) {
    fold_runner_ = std::move(runner);
    fold_shards_ = num_shards;
  }

  /// Commit cycle of every committed transaction (for oracles).
  const std::unordered_map<TxnId, Cycle>& commit_cycles() const { return commit_cycles_; }

  /// Recorded update history (empty unless options.record_history).
  const History& recorded_history() const { return history_; }

  size_t num_committed() const { return num_committed_; }

 private:
  /// Applies the queued cycle batch to the F-Matrix (no-op when empty).
  void FlushCommitBatch();

  TxnManagerOptions options_;
  VersionedStore store_;
  FMatrix f_matrix_;
  SparseFMatrix sparse_f_matrix_;
  std::optional<HierMatrix> hier_matrix_;
  McVector mc_vector_;
  History history_;
  std::unordered_map<TxnId, Cycle> commit_cycles_;
  size_t num_committed_ = 0;
  Cycle last_cycle_ = 0;

  // Pending cycle batch (options.batch_commit_maintenance): the first
  // `batch_size_` elements of `batch_` hold the read/write sets of this
  // cycle's not-yet-applied commits; slots are reused across cycles so the
  // steady-state path does not allocate.
  std::vector<CommitSets> batch_;
  size_t batch_size_ = 0;
  Cycle batch_cycle_ = 0;

  // Pooled-apply fold (SetParallelFold); empty = serial fold.
  ShardRunner fold_runner_;
  uint32_t fold_shards_ = 0;
};

}  // namespace bcc

#endif  // BCC_SERVER_TXN_MANAGER_H_
