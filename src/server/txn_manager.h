// The server's update-transaction manager (Section 3.2.1, server
// functions 2 and 3).
//
// Update transactions — whether originated at the server or submitted by
// clients over the uplink — are executed and committed serially, which is
// the paper's "simple case where the entries are updated as per a
// serialization order". Each commit atomically:
//   - installs the transaction's writes into the two-version store,
//   - applies the Theorem 2 incremental update to the F-Matrix,
//   - advances the reduced MC vector, and
//   - (optionally) appends the operations to a recorded history so tests
//     can replay the run through the APPROX/legality oracles.

#ifndef BCC_SERVER_TXN_MANAGER_H_
#define BCC_SERVER_TXN_MANAGER_H_

#include <unordered_map>
#include <vector>

#include "history/history.h"
#include "history/object_id.h"
#include "matrix/f_matrix.h"
#include "matrix/mc_vector.h"
#include "server/store.h"

namespace bcc {

/// An update transaction to run at the server: reads first, then writes
/// (Appendix A form). Sets must be duplicate-free.
struct ServerTxn {
  TxnId id = kNoTxn;
  std::vector<ObjectId> read_set;
  std::vector<ObjectId> write_set;
};

/// Options controlling which structures the manager maintains. Simulations
/// disable what their algorithm does not need.
struct TxnManagerOptions {
  bool maintain_f_matrix = true;
  bool maintain_mc_vector = true;
  bool record_history = false;
  /// Record which F-Matrix columns commits rewrite (requires
  /// maintain_f_matrix); drained via TakeTouchedColumns for delta broadcast.
  bool track_dirty_columns = false;
};

/// Serial update-transaction executor.
class ServerTxnManager {
 public:
  ServerTxnManager(uint32_t num_objects, TxnManagerOptions options = {});

  uint32_t num_objects() const { return store_.num_objects(); }

  /// Executes `txn` (reads then writes against committed state) and commits
  /// it during broadcast cycle `cycle`. Cycles must be non-decreasing across
  /// calls. Returns the values read (for logging/validation).
  std::vector<ObjectVersion> ExecuteAndCommit(const ServerTxn& txn, Cycle cycle);

  const VersionedStore& store() const { return store_; }
  const FMatrix& f_matrix() const { return f_matrix_; }
  const McVector& mc_vector() const { return mc_vector_; }

  /// Drains the F-Matrix columns rewritten by commits since the last drain
  /// (options.track_dirty_columns must be set). Called once per broadcast
  /// cycle by the delta broadcaster.
  std::vector<ObjectId> TakeTouchedColumns() { return f_matrix_.TakeTouchedColumns(); }

  /// Commit cycle of every committed transaction (for oracles).
  const std::unordered_map<TxnId, Cycle>& commit_cycles() const { return commit_cycles_; }

  /// Recorded update history (empty unless options.record_history).
  const History& recorded_history() const { return history_; }

  size_t num_committed() const { return num_committed_; }

 private:
  TxnManagerOptions options_;
  VersionedStore store_;
  FMatrix f_matrix_;
  McVector mc_vector_;
  History history_;
  std::unordered_map<TxnId, Cycle> commit_cycles_;
  size_t num_committed_ = 0;
  Cycle last_cycle_ = 0;
};

}  // namespace bcc

#endif  // BCC_SERVER_TXN_MANAGER_H_
