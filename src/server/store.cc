#include "server/store.h"

#include <cassert>

namespace bcc {

VersionedStore::VersionedStore(uint32_t num_objects)
    : committed_(num_objects), staged_(num_objects) {}

const ObjectVersion& VersionedStore::ReadForStaging(ObjectId ob) const {
  assert(ob < committed_.size());
  if (staged_[ob].has_value()) return *staged_[ob];
  return committed_[ob];
}

void VersionedStore::StageWrite(ObjectId ob, TxnId writer) {
  assert(ob < committed_.size());
  if (!staged_[ob].has_value()) staged_order_.push_back(ob);
  staged_[ob] = ObjectVersion{next_value_++, writer, /*cycle=*/0};
}

void VersionedStore::CommitStaged(Cycle commit_cycle) {
  for (ObjectId ob : staged_order_) {
    ObjectVersion v = *staged_[ob];
    v.cycle = commit_cycle;
    committed_[ob] = v;
    staged_[ob].reset();
  }
  staged_order_.clear();
}

void VersionedStore::AbortStaged() {
  for (ObjectId ob : staged_order_) staged_[ob].reset();
  staged_order_.clear();
}

}  // namespace bcc
