#include "server/schedule.h"

#include <algorithm>

#include "common/format.h"

namespace bcc {

BroadcastSchedule BroadcastSchedule::Flat(uint32_t num_objects) {
  std::vector<ObjectId> slots(num_objects);
  std::vector<std::vector<uint32_t>> object_slots(num_objects);
  for (uint32_t i = 0; i < num_objects; ++i) {
    slots[i] = i;
    object_slots[i] = {i};
  }
  return BroadcastSchedule(std::move(slots), std::move(object_slots));
}

StatusOr<BroadcastSchedule> BroadcastSchedule::FromFrequencies(
    const std::vector<uint32_t>& frequencies) {
  if (frequencies.empty()) return Status::InvalidArgument("no objects");
  size_t total = 0;
  for (size_t i = 0; i < frequencies.size(); ++i) {
    if (frequencies[i] == 0) {
      return Status::InvalidArgument(StrFormat("object %zu has frequency 0", i));
    }
    total += frequencies[i];
  }

  // Deterministic weighted-fair spread: each object's k-th appearance has
  // virtual deadline (k + 1) * total / freq; fill slots in deadline order
  // (ties by object id).
  const uint32_t n = static_cast<uint32_t>(frequencies.size());
  std::vector<double> next_deadline(n);
  std::vector<double> interval(n);
  for (uint32_t i = 0; i < n; ++i) {
    interval[i] = static_cast<double>(total) / frequencies[i];
    next_deadline[i] = interval[i];
  }
  std::vector<uint32_t> remaining = frequencies;
  std::vector<ObjectId> slots;
  slots.reserve(total);
  std::vector<std::vector<uint32_t>> object_slots(n);
  for (size_t s = 0; s < total; ++s) {
    uint32_t best = n;
    for (uint32_t i = 0; i < n; ++i) {
      if (remaining[i] == 0) continue;
      if (best == n || next_deadline[i] < next_deadline[best]) best = i;
    }
    slots.push_back(best);
    object_slots[best].push_back(static_cast<uint32_t>(s));
    next_deadline[best] += interval[best];
    --remaining[best];
  }
  return BroadcastSchedule(std::move(slots), std::move(object_slots));
}

int64_t BroadcastSchedule::NextSlotOf(ObjectId ob, size_t from_slot) const {
  const auto& slots = object_slots_[ob];
  const auto it = std::lower_bound(slots.begin(), slots.end(), from_slot);
  if (it == slots.end()) return -1;
  return *it;
}

}  // namespace bcc
