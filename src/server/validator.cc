#include "server/validator.h"

#include <algorithm>

#include "common/format.h"

namespace bcc {

StatusOr<Cycle> UpdateValidator::ValidateAndCommit(const ClientUpdateRequest& request,
                                                   Cycle current_cycle) {
  // A read of (ob, cycle) observed the committed version as of the beginning
  // of `cycle`. It is still current iff the last committed write to ob
  // happened before `cycle`. In staged mode the overlay supplies the MC
  // effects of this cycle's accepted-but-not-folded transactions, so the
  // merged view equals the eager MC vector of the sequential path.
  for (const ReadRecord& r : request.reads) {
    Cycle last_write = manager_->mc_vector().At(r.object);
    if (overlay_ != nullptr) last_write = std::max(last_write, overlay_->At(r.object));
    if (last_write >= r.cycle) {
      ++num_rejected_;
      last_reject_ = {AbortCause::kUplinkReject, r.object, r.object, r.cycle, last_write};
      return Status::Aborted(
          StrFormat("ob%u read at cycle %llu was overwritten at cycle %llu", r.object,
                    static_cast<unsigned long long>(r.cycle),
                    static_cast<unsigned long long>(last_write)));
    }
  }

  ServerTxn txn;
  txn.id = request.id;
  txn.read_set.reserve(request.reads.size());
  for (const ReadRecord& r : request.reads) txn.read_set.push_back(r.object);
  txn.write_set = request.writes;
  if (overlay_ != nullptr) {
    overlay_->Stage(txn.write_set, current_cycle);
    sink_(std::move(txn));
  } else {
    manager_->ExecuteAndCommit(txn, current_cycle);
  }
  ++num_validated_;
  return current_cycle;
}

}  // namespace bcc
