// APPROX (Section 3.1): the polynomial-time approximation of update
// consistency that the F-Matrix protocol implements.
//
// APPROX accepts a history H iff
//   1. H_update is *conflict* serializable, and
//   2. for every read-only transaction t_R, the serialization graph
//      S_H(t_R) over LIVE_H(t_R) (Definition 9) is acyclic.
// Theorem 6: APPROX accepts a proper subset of legal (update-consistent)
// histories. Theorem 7: APPROX runs in polynomial time.

#ifndef BCC_CC_APPROX_H_
#define BCC_CC_APPROX_H_

#include <string>

#include "graph/digraph.h"
#include "history/history.h"

namespace bcc {

/// Builds S_H(t) (Definition 9): nodes are LIVE_H(t); arcs are
///   X: t' -> t'' when t'' reads some object from t',
///   Y: t' -> t'' when t' writes ob before t'' writes ob in H (ww order),
///   Z: t' -> t'' when t' reads ob before t'' writes ob in H (rw order),
/// all restricted to live transactions (aborted writers never contribute:
/// their operations are invisible in the broadcast model). The initial
/// transaction t0 has only outgoing arcs and is omitted (it can never be on
/// a cycle).
Digraph BuildTxnSerializationGraph(const History& history, TxnId t);

/// Verdict with an explanation for rejection.
struct ApproxResult {
  bool accepted = false;
  std::string reason;
};

/// The APPROX decision procedure. Aborted read-only transactions are
/// skipped; active ones are checked (prefix closure).
ApproxResult CheckApprox(const History& history);

/// Convenience wrapper.
bool ApproxAccepts(const History& history);

}  // namespace bcc

#endif  // BCC_CC_APPROX_H_
