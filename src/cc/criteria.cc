#include "cc/criteria.h"

#include "cc/approx.h"
#include "cc/conflict_serializability.h"
#include "cc/update_consistency.h"
#include "cc/view_serializability.h"
#include "common/format.h"

namespace bcc {

std::string_view CriterionName(Criterion c) {
  switch (c) {
    case Criterion::kConflictSerializable:
      return "conflict-serializable";
    case Criterion::kViewSerializable:
      return "view-serializable";
    case Criterion::kApprox:
      return "APPROX";
    case Criterion::kLegal:
      return "legal (update-consistent)";
  }
  return "?";
}

StatusOr<bool> Satisfies(Criterion criterion, const History& history) {
  switch (criterion) {
    case Criterion::kConflictSerializable:
      return IsConflictSerializable(history);
    case Criterion::kViewSerializable:
      return IsViewSerializable(history);
    case Criterion::kApprox:
      return ApproxAccepts(history);
    case Criterion::kLegal: {
      BCC_ASSIGN_OR_RETURN(const LegalityResult r, CheckLegality(history));
      return r.legal;
    }
  }
  return Status::Internal("unknown criterion");
}

bool LatticeReport::ImplicationsHold() const {
  if (conflict_serializable && !view_serializable) return false;
  if (conflict_serializable && !approx_accepted) return false;
  if (view_serializable && !legal) return false;
  if (approx_accepted && !legal) return false;
  return true;
}

std::string LatticeReport::ToString() const {
  return StrFormat("CSR=%d VSR=%d APPROX=%d legal=%d", conflict_serializable,
                   view_serializable, approx_accepted, legal);
}

StatusOr<LatticeReport> SweepLattice(const History& history) {
  LatticeReport report;
  report.conflict_serializable = IsConflictSerializable(history);
  BCC_ASSIGN_OR_RETURN(report.view_serializable, IsViewSerializable(history));
  report.approx_accepted = ApproxAccepts(history);
  BCC_ASSIGN_OR_RETURN(const LegalityResult legal, CheckLegality(history));
  report.legal = legal.legal;
  return report;
}

}  // namespace bcc
