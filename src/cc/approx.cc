#include "cc/approx.h"

#include "cc/conflict_serializability.h"
#include "common/format.h"

namespace bcc {

Digraph BuildTxnSerializationGraph(const History& history, TxnId t) {
  Digraph sg;
  const std::unordered_set<TxnId> live = history.LiveSet(t);
  for (TxnId n : live) {
    if (n != kInitTxn) sg.AddNode(n);
  }

  auto is_live = [&live](TxnId x) { return x != kInitTxn && live.contains(x); };

  // X arcs: reads-from.
  for (const ReadsFromEdge& e : history.ReadsFrom()) {
    if (is_live(e.reader) && is_live(e.writer) && e.reader != e.writer) {
      sg.AddEdge(e.writer, e.reader);
    }
  }

  // Y (ww) and Z (rw) arcs from history order. Operations of aborted
  // transactions are skipped: their effects are never visible.
  const auto& ops = history.ops();
  auto visible = [&](const Operation& op) {
    return op.IsAccess() && is_live(op.txn) &&
           history.Txn(op.txn).outcome != TxnOutcome::kAborted;
  };
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!visible(ops[i])) continue;
    for (size_t j = i + 1; j < ops.size(); ++j) {
      if (!visible(ops[j])) continue;
      if (ops[i].txn == ops[j].txn || ops[i].object != ops[j].object) continue;
      if (ops[j].type != OpType::kWrite) continue;
      // ops[i] (read or write) precedes ops[j] (write): Y or Z arc.
      sg.AddEdge(ops[i].txn, ops[j].txn);
    }
  }
  return sg;
}

ApproxResult CheckApprox(const History& history) {
  ApproxResult result;
  if (!IsConflictSerializable(history.UpdateSubHistory())) {
    result.accepted = false;
    result.reason = "update sub-history is not conflict serializable";
    return result;
  }
  for (TxnId t : history.TxnIds()) {
    const TxnInfo& info = history.Txn(t);
    if (!info.IsReadOnly() || info.outcome == TxnOutcome::kAborted) continue;
    if (BuildTxnSerializationGraph(history, t).HasCycle()) {
      result.accepted = false;
      result.reason = StrFormat("serialization graph S_H(t%u) is cyclic", t);
      return result;
    }
  }
  result.accepted = true;
  return result;
}

bool ApproxAccepts(const History& history) { return CheckApprox(history).accepted; }

}  // namespace bcc
