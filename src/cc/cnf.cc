#include "cc/cnf.h"

#include <cassert>

#include "common/format.h"

namespace bcc {

bool CnfClause::IsMixed() const {
  bool pos = false, neg = false;
  for (const Literal& l : literals) (l.negated ? neg : pos) = true;
  return pos && neg;
}

bool CnfFormula::Evaluate(const std::vector<bool>& assignment) const {
  assert(assignment.size() >= num_vars);
  for (const CnfClause& clause : clauses) {
    bool satisfied = false;
    for (const Literal& l : clause.literals) {
      if (assignment[l.var] != l.negated) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

size_t CnfFormula::NumOccurrences() const {
  size_t n = 0;
  for (const CnfClause& c : clauses) n += c.literals.size();
  return n;
}

bool CnfFormula::IsNonCircular() const {
  std::vector<uint32_t> mixed_occurrences(num_vars, 0);
  for (const CnfClause& c : clauses) {
    if (!c.IsMixed()) continue;
    for (const Literal& l : c.literals) {
      if (++mixed_occurrences[l.var] > 1) return false;
    }
  }
  return true;
}

std::string CnfFormula::ToString() const {
  std::string out;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i) out += " & ";
    out += "(";
    for (size_t j = 0; j < clauses[i].literals.size(); ++j) {
      if (j) out += " | ";
      const Literal& l = clauses[i].literals[j];
      out += StrFormat("%sx%u", l.negated ? "!" : "", l.var);
    }
    out += ")";
  }
  return out;
}

std::optional<std::vector<bool>> SolveBruteForce(
    const CnfFormula& formula, const std::vector<std::pair<uint32_t, bool>>& pinned) {
  assert(formula.num_vars <= 24);
  const uint64_t space = uint64_t{1} << formula.num_vars;
  std::vector<bool> assignment(formula.num_vars);
  for (uint64_t bits = 0; bits < space; ++bits) {
    bool ok = true;
    for (const auto& [var, value] : pinned) {
      if (((bits >> var) & 1) != static_cast<uint64_t>(value)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (uint32_t v = 0; v < formula.num_vars; ++v) assignment[v] = (bits >> v) & 1;
    if (formula.Evaluate(assignment)) return assignment;
  }
  return std::nullopt;
}

CnfFormula RandomCnf(uint32_t num_vars, uint32_t num_clauses, uint32_t max_width, Rng* rng) {
  assert(num_vars >= 1 && max_width >= 1);
  CnfFormula f;
  f.num_vars = num_vars;
  for (uint32_t c = 0; c < num_clauses; ++c) {
    const uint32_t width = 1 + static_cast<uint32_t>(
                                   rng->NextBounded(std::min(max_width, num_vars)));
    CnfClause clause;
    for (uint32_t var : rng->SampleWithoutReplacement(num_vars, width)) {
      clause.literals.push_back({var, rng->NextBernoulli(0.5)});
    }
    f.clauses.push_back(std::move(clause));
  }
  return f;
}

}  // namespace bcc
