// The correctness-criteria lattice of Figure 1, as a runnable oracle.
//
// The paper relates (arrows = "stronger than"):
//   conflict serializability -> view serializability -> update consistency
//   conflict serializability -> APPROX -> legality (scheduler-checkable
//   update consistency)
// This header packages all checkers behind one enum so tests, examples and
// tools can sweep the lattice.

#ifndef BCC_CC_CRITERIA_H_
#define BCC_CC_CRITERIA_H_

#include <string>
#include <string_view>

#include "common/statusor.h"
#include "history/history.h"

namespace bcc {

/// A point in the Figure 1 lattice.
enum class Criterion {
  kConflictSerializable,
  kViewSerializable,  ///< exact, exponential; small histories only
  kApprox,            ///< Section 3.1
  kLegal,             ///< Theorem 3 (update consistency); exponential
};

std::string_view CriterionName(Criterion c);

/// Evaluates `criterion` on `history`. View/legal checks can fail with
/// InvalidArgument when the history exceeds the exact-search size limits.
StatusOr<bool> Satisfies(Criterion criterion, const History& history);

/// Report of a full lattice sweep for one history.
struct LatticeReport {
  bool conflict_serializable = false;
  bool view_serializable = false;
  bool approx_accepted = false;
  bool legal = false;

  /// Verifies the Figure 1 implications internally (CSR => VSR, CSR =>
  /// APPROX, VSR => legal, APPROX => legal). Violations indicate a checker
  /// bug; used heavily by property tests.
  bool ImplicationsHold() const;

  std::string ToString() const;
};

/// Runs every checker on `history` (must be small enough for exact checks).
StatusOr<LatticeReport> SweepLattice(const History& history);

}  // namespace bcc

#endif  // BCC_CC_CRITERIA_H_
