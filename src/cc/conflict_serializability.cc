#include "cc/conflict_serializability.h"

namespace bcc {

Digraph BuildSerializationGraph(const History& history) {
  Digraph sg;
  const auto& ops = history.ops();

  auto committed = [&history](TxnId t) {
    return history.Txn(t).outcome == TxnOutcome::kCommitted;
  };

  for (const Operation& op : ops) {
    if (op.IsAccess() && committed(op.txn)) sg.AddNode(op.txn);
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    const Operation& a = ops[i];
    if (!a.IsAccess() || !committed(a.txn)) continue;
    for (size_t j = i + 1; j < ops.size(); ++j) {
      const Operation& b = ops[j];
      if (!b.IsAccess() || !committed(b.txn)) continue;
      if (a.txn == b.txn || a.object != b.object) continue;
      if (a.type == OpType::kWrite || b.type == OpType::kWrite) {
        sg.AddEdge(a.txn, b.txn);
      }
    }
  }
  return sg;
}

bool IsConflictSerializable(const History& history) {
  return !BuildSerializationGraph(history).HasCycle();
}

StatusOr<std::vector<TxnId>> ConflictSerializationOrder(const History& history) {
  return BuildSerializationGraph(history).TopologicalSort();
}

}  // namespace bcc
