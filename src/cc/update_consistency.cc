#include "cc/update_consistency.h"

#include <cassert>

#include "cc/view_serializability.h"
#include "common/format.h"

namespace bcc {

Polygraph BuildTxnPolygraph(const History& history, TxnId t) {
  Polygraph pg;
  const std::unordered_set<TxnId> live = history.LiveSet(t);
  for (TxnId n : live) pg.AddNode(n);

  // Arcs: writer -> reader for every reads-from pair inside the live set.
  const auto& reads_from = history.ReadsFrom();
  for (const ReadsFromEdge& e : reads_from) {
    if (live.contains(e.reader) && live.contains(e.writer) && e.reader != e.writer) {
      pg.AddArc(e.writer, e.reader);
    }
  }

  // Bipaths: for (t''' reads ob from t'') and each other live writer t' of
  // ob, t' must be before t'' or after t'''.
  for (const ReadsFromEdge& e : reads_from) {
    if (!live.contains(e.reader) || !live.contains(e.writer)) continue;
    const TxnId reader = e.reader;   // t'''
    const TxnId source = e.writer;   // t''
    for (TxnId other : live) {       // t'
      if (other == reader || other == source) continue;
      const bool writes_ob =
          other == kInitTxn ? true : history.Txn(other).Writes(e.object);
      if (!writes_ob) continue;
      if (other == kInitTxn) continue;  // t0 precedes everything: vacuous.
      if (source == kInitTxn) {
        // "other before t0" is impossible; force reader -> other.
        pg.AddArc(reader, other);
      } else {
        pg.AddBipath({reader, other}, {other, source});
      }
    }
  }
  return pg;
}

StatusOr<LegalityResult> CheckLegality(const History& history) {
  LegalityResult result;

  const History update = history.UpdateSubHistory();
  BCC_ASSIGN_OR_RETURN(const bool update_vsr, IsViewSerializable(update));
  if (!update_vsr) {
    result.legal = false;
    result.reason = "update sub-history is not view serializable";
    return result;
  }

  for (TxnId t : history.TxnIds()) {
    const TxnInfo& info = history.Txn(t);
    if (!info.IsReadOnly() || info.outcome == TxnOutcome::kAborted) continue;
    if (!BuildTxnPolygraph(history, t).IsAcyclic()) {
      result.legal = false;
      result.reason = StrFormat("polygraph P_H(t%u) is cyclic", t);
      return result;
    }
  }
  result.legal = true;
  return result;
}

bool IsLegal(const History& history) {
  auto result = CheckLegality(history);
  assert(result.ok() && "history too large for the exact legality test");
  return result.ok() && result->legal;
}

}  // namespace bcc
