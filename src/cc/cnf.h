// Small CNF-formula toolkit backing the Appendix B NP-completeness
// machinery (Theorem 5 reduction and its tests).

#ifndef BCC_CC_CNF_H_
#define BCC_CC_CNF_H_

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"

namespace bcc {

/// A literal: variable index plus polarity.
struct Literal {
  uint32_t var;
  bool negated;

  friend bool operator==(const Literal& a, const Literal& b) {
    return a.var == b.var && a.negated == b.negated;
  }
};

/// A disjunction of literals.
struct CnfClause {
  std::vector<Literal> literals;

  bool IsMixed() const;  ///< contains both a positive and a negated literal
};

/// A conjunction of clauses over variables [0, num_vars).
struct CnfFormula {
  uint32_t num_vars = 0;
  std::vector<CnfClause> clauses;

  /// Evaluates under a full assignment (size num_vars).
  bool Evaluate(const std::vector<bool>& assignment) const;

  /// Total number of literal occurrences.
  size_t NumOccurrences() const;

  /// Appendix B, Definition 8: at most one occurrence of each variable lies
  /// in a mixed clause.
  bool IsNonCircular() const;

  /// e.g. "(x0 | !x1 | x2) & (!x0 | x1)".
  std::string ToString() const;
};

/// Exhaustive satisfiability check (requires num_vars <= 24). `pinned`
/// optionally fixes some variables (pairs of index/value). Returns a
/// satisfying assignment or nullopt.
std::optional<std::vector<bool>> SolveBruteForce(
    const CnfFormula& formula,
    const std::vector<std::pair<uint32_t, bool>>& pinned = {});

/// Random k-CNF for property tests: `num_clauses` clauses of up to
/// `max_width` distinct-variable literals (at least 1).
CnfFormula RandomCnf(uint32_t num_vars, uint32_t num_clauses, uint32_t max_width, Rng* rng);

}  // namespace bcc

#endif  // BCC_CC_CNF_H_
