// Update consistency — the paper's correctness criterion (Appendix A).
//
// Theorem 3 characterizes the histories a scheduler can determine to satisfy
// the update-consistency requirements ("legal" histories):
//   1. H_update (the update sub-history) is view serializable, and
//   2. for every read-only transaction t_R, the polygraph P_H(t_R)
//      (Definition 6) over LIVE_H(t_R) is acyclic.
// Deciding legality is NP-complete even when updates run serially
// (Theorems 4 and 5); the procedures here are exact and exponential, meant
// for analysis/testing, not for the online protocol (that is APPROX).

#ifndef BCC_CC_UPDATE_CONSISTENCY_H_
#define BCC_CC_UPDATE_CONSISTENCY_H_

#include <string>

#include "common/statusor.h"
#include "graph/polygraph.h"
#include "history/history.h"

namespace bcc {

/// Builds P_H(t) (Definition 6): nodes are LIVE_H(t); arcs are reads-from
/// edges within the live set; for every read (t''' reads ob from t'') and
/// every other live writer t' of ob there is a bipath "t' before t'' or
/// after t'''". Bipath arms involving the initial transaction t0 are
/// resolved directly (nothing can precede t0).
Polygraph BuildTxnPolygraph(const History& history, TxnId t);

/// Detailed verdict from the legality checker.
struct LegalityResult {
  bool legal = false;
  /// Human-readable reason when not legal (which condition failed, and for
  /// which read-only transaction).
  std::string reason;
};

/// Exact legality test per Theorem 3. Read-only transactions that aborted
/// are skipped (their reads were never exposed); active (unterminated)
/// read-only transactions are checked, matching the prefix-closure
/// requirement. Returns InvalidArgument when the update sub-history exceeds
/// the exact view-serializability size limit.
StatusOr<LegalityResult> CheckLegality(const History& history);

/// Convenience wrapper: true iff legal. Histories too large for the exact
/// test map to false with an assertion in debug builds.
bool IsLegal(const History& history);

}  // namespace bcc

#endif  // BCC_CC_UPDATE_CONSISTENCY_H_
