// Conflict serializability: the classical polynomial-time criterion used by
// APPROX in place of view serializability (Section 3.1).

#ifndef BCC_CC_CONFLICT_SERIALIZABILITY_H_
#define BCC_CC_CONFLICT_SERIALIZABILITY_H_

#include <vector>

#include "common/statusor.h"
#include "graph/digraph.h"
#include "history/history.h"

namespace bcc {

/// Builds the serialization graph SG(H) over the *committed* transactions of
/// H: an edge t' -> t'' for every pair of conflicting operations (same
/// object, at least one write, t' != t'') where t''s operation comes first.
/// Aborted transactions' operations are ignored; active (unterminated)
/// transactions are treated as aborted.
Digraph BuildSerializationGraph(const History& history);

/// True iff SG(H) is acyclic.
bool IsConflictSerializable(const History& history);

/// A serialization order witnessing conflict serializability, or
/// InvalidArgument when the history is not conflict serializable.
StatusOr<std::vector<TxnId>> ConflictSerializationOrder(const History& history);

}  // namespace bcc

#endif  // BCC_CC_CONFLICT_SERIALIZABILITY_H_
