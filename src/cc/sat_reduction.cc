#include "cc/sat_reduction.h"

#include <cassert>
#include <unordered_map>

#include "common/format.h"
#include "graph/digraph.h"

namespace bcc {

CnfFormula AddGuardVariable(const CnfFormula& psi, uint32_t* guard_var) {
  CnfFormula out = psi;
  *guard_var = out.num_vars;
  out.num_vars += 1;
  for (CnfClause& clause : out.clauses) {
    clause.literals.push_back({*guard_var, /*negated=*/false});
  }
  return out;
}

CnfFormula SplitWideClauses(const CnfFormula& f) {
  CnfFormula out;
  out.num_vars = f.num_vars;
  for (const CnfClause& clause : f.clauses) {
    std::vector<Literal> rest = clause.literals;
    // (l1 | l2 | l3 | l4 | ...) -> (l1 | l2 | z) & (!z | l3 | l4 | ...),
    // iterated until everything is width <= 3.
    while (rest.size() > 3) {
      const uint32_t z = out.num_vars++;
      CnfClause head;
      head.literals = {rest[0], rest[1], {z, false}};
      out.clauses.push_back(std::move(head));
      std::vector<Literal> tail;
      tail.push_back({z, true});
      tail.insert(tail.end(), rest.begin() + 2, rest.end());
      rest = std::move(tail);
    }
    out.clauses.push_back(CnfClause{std::move(rest)});
  }
  return out;
}

CnfFormula MakeNonCircular(const CnfFormula& f,
                           std::vector<std::pair<uint32_t, bool>>* copy_map) {
  CnfFormula out;
  out.num_vars = f.num_vars;
  copy_map->clear();
  for (uint32_t v = 0; v < f.num_vars; ++v) copy_map->push_back({v, false});

  // For each source variable, the copy used for its most recent occurrence
  // and that copy's 1-based index (parity decides polarity flip).
  std::vector<uint32_t> last_copy(f.num_vars);
  std::vector<uint32_t> occurrence_count(f.num_vars, 0);
  for (uint32_t v = 0; v < f.num_vars; ++v) last_copy[v] = v;

  for (const CnfClause& clause : f.clauses) {
    CnfClause rewritten;
    for (const Literal& lit : clause.literals) {
      const uint32_t i = ++occurrence_count[lit.var];  // 1-based occurrence
      uint32_t copy;
      bool flipped;
      if (i == 1) {
        copy = lit.var;
        flipped = false;
      } else {
        // Fresh copy v_i with v_i == !v_{i-1}, tied by two NON-mixed
        // clauses (v_{i-1} | v_i) and (!v_{i-1} | !v_i); polarity
        // alternates so v_i == source iff i is odd.
        copy = out.num_vars++;
        flipped = (i % 2) == 0;
        copy_map->push_back({lit.var, flipped});
        const uint32_t prev = last_copy[lit.var];
        out.clauses.push_back(CnfClause{{{prev, false}, {copy, false}}});
        out.clauses.push_back(CnfClause{{{prev, true}, {copy, true}}});
        last_copy[lit.var] = copy;
      }
      rewritten.literals.push_back({copy, lit.negated != flipped});
    }
    out.clauses.push_back(std::move(rewritten));
  }
  return out;
}

std::vector<bool> SatisfyWithGuardTrue(const CnfFormula& post_split, uint32_t guard_var,
                                       uint32_t first_link_var) {
  std::vector<bool> assignment(post_split.num_vars, false);
  assignment[guard_var] = true;
  // Link variables were appended in clause order by SplitWideClauses; a
  // clause's fresh link (positive occurrence) appears before its negative
  // occurrence in the next emitted clause, so one in-order pass settles
  // them all: set each still-unset link to satisfy its clause exactly when
  // nothing earlier already does.
  std::vector<bool> settled(post_split.num_vars, true);
  for (uint32_t v = first_link_var; v < post_split.num_vars; ++v) settled[v] = false;
  for (const CnfClause& clause : post_split.clauses) {
    bool satisfied = false;
    for (const Literal& l : clause.literals) {
      if (settled[l.var] && assignment[l.var] != l.negated) {
        satisfied = true;
        break;
      }
    }
    for (const Literal& l : clause.literals) {
      if (settled[l.var]) continue;
      assignment[l.var] = satisfied ? l.negated : !l.negated;
      settled[l.var] = true;
      satisfied = satisfied || (assignment[l.var] != l.negated);
    }
  }
  return assignment;
}

std::vector<bool> ExtendToCopies(const std::vector<bool>& base,
                                 const std::vector<std::pair<uint32_t, bool>>& copy_map) {
  std::vector<bool> out(copy_map.size());
  for (size_t v = 0; v < copy_map.size(); ++v) {
    const auto& [source, flipped] = copy_map[v];
    out[v] = base[source] != flipped;
  }
  return out;
}

namespace {

// Gadget node/object bookkeeping for the history construction.
class GadgetBuilder {
 public:
  explicit GadgetBuilder(const CnfFormula& phi) : phi_(phi) {
    // Transaction ids: 1-based; per variable a, b, c; per occurrence y, z.
    for (uint32_t x = 0; x < phi.num_vars; ++x) {
      a_.push_back(next_txn_++);
      b_.push_back(next_txn_++);
      c_.push_back(next_txn_++);
    }
    y_.resize(phi.clauses.size());
    z_.resize(phi.clauses.size());
    for (size_t i = 0; i < phi.clauses.size(); ++i) {
      for (size_t k = 0; k < phi.clauses[i].literals.size(); ++k) {
        y_[i].push_back(next_txn_++);
        z_[i].push_back(next_txn_++);
      }
    }
    reader_ = next_txn_++;
  }

  TxnId reader() const { return reader_; }
  size_t num_update_txns() const { return static_cast<size_t>(reader_) - 1; }
  size_t num_objects() const { return next_object_; }

  // Reads-from arc (writer -> reader) over a dedicated object.
  void Arc(TxnId writer, TxnId reader) {
    const ObjectId ob = next_object_++;
    writes_[writer].push_back(ob);
    reads_[reader].push_back(ob);
    arc_object_[Key(writer, reader)] = ob;
  }

  // Adds `extra` as a second writer of the object behind arc
  // (writer -> reader): generates the bipath "extra before writer, or
  // after reader" in P_H(t_R).
  void ExtraWriter(TxnId writer, TxnId reader, TxnId extra) {
    const ObjectId ob = arc_object_.at(Key(writer, reader));
    writes_[extra].push_back(ob);
  }

  // Builds the whole gadget: arcs, bipath extra-writers, and the witness
  // digraph arms chosen from `assignment` (guard true).
  void Build(const std::vector<bool>& assignment) {
    const uint32_t n = phi_.num_vars;
    // Per-variable spine: a_x -> b_x, with c_x the bipath extra writer.
    for (uint32_t x = 0; x < n; ++x) {
      Arc(a_[x], b_[x]);
      ExtraWriter(a_[x], b_[x], c_[x]);
      witness_.AddEdge(a_[x], b_[x]);
      // Arm choice: x true -> c_x before a_x; x false -> b_x before c_x.
      if (assignment[x]) {
        witness_.AddEdge(c_[x], a_[x]);
      } else {
        witness_.AddEdge(b_[x], c_[x]);
      }
    }
    // Per clause: the ring y_ik -> z_i(k+1), and per literal occurrence the
    // variable hooks and the occurrence bipath.
    for (size_t i = 0; i < phi_.clauses.size(); ++i) {
      const auto& lits = phi_.clauses[i].literals;
      const size_t w = lits.size();
      for (size_t k = 0; k < w; ++k) {
        Arc(y_[i][k], z_[i][(k + 1) % w]);
        witness_.AddEdge(y_[i][k], z_[i][(k + 1) % w]);
        const uint32_t x = lits[k].var;
        const bool literal_true = assignment[x] != lits[k].negated;
        if (!lits[k].negated) {
          // Positive occurrence: hooks c_x -> y_ik and b_x -> z_ik; the
          // bipath is "(y_ik before b_x) or (z_ik before y_ik)".
          Arc(c_[x], y_[i][k]);
          Arc(b_[x], z_[i][k]);
          ExtraWriter(b_[x], z_[i][k], y_[i][k]);
          witness_.AddEdge(c_[x], y_[i][k]);
          witness_.AddEdge(b_[x], z_[i][k]);
          witness_.AddEdge(literal_true ? y_[i][k] : z_[i][k],
                           literal_true ? b_[x] : y_[i][k]);
        } else {
          // Negative occurrence: hooks z_ik -> c_x and y_ik -> a_x; the
          // bipath is "(a_x before z_ik) or (z_ik before y_ik)".
          Arc(z_[i][k], c_[x]);
          Arc(y_[i][k], a_[x]);
          ExtraWriter(y_[i][k], a_[x], z_[i][k]);
          witness_.AddEdge(z_[i][k], c_[x]);
          witness_.AddEdge(y_[i][k], a_[x]);
          if (literal_true) {
            witness_.AddEdge(a_[x], z_[i][k]);
          } else {
            witness_.AddEdge(z_[i][k], y_[i][k]);
          }
        }
      }
    }
    // t_R reads a dedicated object from EVERY update transaction so that
    // LIVE(t_R) spans the whole gadget.
    for (TxnId t = 1; t < reader_; ++t) Arc(t, reader_);
  }

  // The guard-forcing bipath: a_X also writes the object t_R reads from
  // c_X. Combined with the arc a_X -> t_R this forces a_X before c_X in
  // any witness, killing the "X true" arm.
  void ForceGuardFalse(uint32_t guard_var) { ExtraWriter(c_[guard_var], reader_, a_[guard_var]); }

  // Serial history: update transactions in witness topological order
  // (reads, then writes, then commit), with t_R's read of each
  // transaction's dedicated object immediately after that transaction's
  // block; t_R commits at the end.
  StatusOr<History> Layout() const {
    auto order = witness_.TopologicalSort();
    if (!order.ok()) {
      return Status::Internal("witness digraph is cyclic: " + order.status().ToString());
    }
    History h;
    for (TxnId t : *order) {
      const auto rit = reads_.find(t);
      if (rit != reads_.end()) {
        for (ObjectId ob : rit->second) h.AppendRead(t, ob);
      }
      const auto wit = writes_.find(t);
      if (wit != writes_.end()) {
        for (ObjectId ob : wit->second) h.AppendWrite(t, ob);
      }
      h.AppendCommit(t);
      // t_R consumes this transaction's dedicated object now — before any
      // later transaction (e.g. a bipath extra writer) can overwrite it.
      h.AppendRead(reader_, arc_object_.at(Key(t, reader_)));
    }
    h.AppendCommit(reader_);
    return h;
  }

 private:
  static uint64_t Key(TxnId w, TxnId r) { return (static_cast<uint64_t>(w) << 32) | r; }

  const CnfFormula& phi_;
  TxnId next_txn_ = 1;
  ObjectId next_object_ = 0;
  std::vector<TxnId> a_, b_, c_;
  std::vector<std::vector<TxnId>> y_, z_;
  TxnId reader_ = kNoTxn;
  std::unordered_map<TxnId, std::vector<ObjectId>> reads_, writes_;
  std::unordered_map<uint64_t, ObjectId> arc_object_;
  Digraph witness_;  // update transactions only
};

}  // namespace

StatusOr<SatReduction> ReduceSatToLegality(const CnfFormula& psi) {
  for (const CnfClause& clause : psi.clauses) {
    if (clause.literals.empty() || clause.literals.size() > 3) {
      return Status::InvalidArgument("reduction expects clause width 1..3 (3-SAT form)");
    }
  }

  SatReduction out;

  // Step 1: guard variable X in every clause.
  uint32_t guard = 0;
  const CnfFormula with_guard = AddGuardVariable(psi, &guard);
  // Step 2: back to width <= 3.
  const CnfFormula split = SplitWideClauses(with_guard);
  // Step 3: non-circular form.
  std::vector<std::pair<uint32_t, bool>> copy_map;
  out.phi = MakeNonCircular(split, &copy_map);
  out.guard_var = guard;  // chain heads keep their ids
  if (!out.phi.IsNonCircular()) {
    return Status::Internal("non-circularization failed");
  }

  // Constructive guard-true satisfying assignment for the witness layout.
  const std::vector<bool> base =
      SatisfyWithGuardTrue(split, guard, /*first_link_var=*/with_guard.num_vars);
  if (!split.Evaluate(base)) {
    return Status::Internal("constructive assignment does not satisfy the split formula");
  }
  const std::vector<bool> assignment = ExtendToCopies(base, copy_map);
  if (!out.phi.Evaluate(assignment)) {
    return Status::Internal("lifted assignment does not satisfy phi");
  }

  GadgetBuilder builder(out.phi);
  builder.Build(assignment);
  builder.ForceGuardFalse(out.guard_var);
  BCC_ASSIGN_OR_RETURN(out.history, builder.Layout());
  out.reader = builder.reader();
  out.num_update_txns = builder.num_update_txns();
  out.num_objects = builder.num_objects();
  return out;
}

}  // namespace bcc
