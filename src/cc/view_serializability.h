// View serializability (exact, exponential) — needed by the formal
// characterization of update consistency (Appendix A, Theorem 3).

#ifndef BCC_CC_VIEW_SERIALIZABILITY_H_
#define BCC_CC_VIEW_SERIALIZABILITY_H_

#include <vector>

#include "common/statusor.h"
#include "history/history.h"

namespace bcc {

/// Upper bound on committed transactions for the exact (permutation-
/// enumeration) view-serializability test.
inline constexpr size_t kMaxExactViewTxns = 10;

/// True iff the committed projection of `history` is view equivalent to the
/// serial execution of its committed transactions in order `order`:
/// every read observes the same writer (including the initial t0), and each
/// object's final writer is the same.
bool IsViewEquivalentToSerial(const History& history, const std::vector<TxnId>& order);

/// Exact view-serializability decision by enumerating serial orders of the
/// committed transactions. Returns InvalidArgument if the history has more
/// than kMaxExactViewTxns committed transactions (the problem is
/// NP-complete; instances must stay small).
StatusOr<bool> IsViewSerializable(const History& history);

/// A witnessing serial order when view serializable; NotFound when not;
/// InvalidArgument when too large for the exact test.
StatusOr<std::vector<TxnId>> ViewSerializationOrder(const History& history);

}  // namespace bcc

#endif  // BCC_CC_VIEW_SERIALIZABILITY_H_
