#include "cc/view_serializability.h"

#include <algorithm>
#include <unordered_map>

#include "common/format.h"

namespace bcc {

namespace {

// Committed projection of a history.
History CommittedProjection(const History& history) {
  std::unordered_set<TxnId> committed;
  for (TxnId t : history.TxnIds()) {
    if (history.Txn(t).outcome == TxnOutcome::kCommitted) committed.insert(t);
  }
  return history.Project(committed);
}

// Per-object final writer (kInitTxn when never written).
std::unordered_map<ObjectId, TxnId> FinalWriters(const History& history) {
  std::unordered_map<ObjectId, TxnId> final_writer;
  for (const Operation& op : history.ops()) {
    if (op.type == OpType::kWrite) final_writer[op.object] = op.txn;
  }
  return final_writer;
}

// The sequence of (txn, object, source) for every read occurrence, in order.
// Occurrence-based so histories with repeated reads also compare correctly.
std::vector<ReadsFromEdge> ReadOccurrences(const History& history) {
  std::vector<ReadsFromEdge> out;
  const auto& ops = history.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].type == OpType::kRead) {
      out.push_back({ops[i].txn, ops[i].object, history.ReaderSource(i)});
    }
  }
  return out;
}

// Multiset comparison keyed per (txn, object): the k-th read of ob by t must
// observe the same source in both histories.
bool SameReadSources(const History& a, const History& b) {
  auto key_sorted = [](const History& h) {
    auto v = ReadOccurrences(h);
    std::stable_sort(v.begin(), v.end(), [](const ReadsFromEdge& x, const ReadsFromEdge& y) {
      if (x.reader != y.reader) return x.reader < y.reader;
      return x.object < y.object;
    });
    return v;
  };
  return key_sorted(a) == key_sorted(b);
}

History SerialHistory(const History& history, const std::vector<TxnId>& order) {
  History serial;
  for (TxnId t : order) {
    for (size_t idx : history.Txn(t).op_indices) {
      serial.Append(history.ops()[idx]);
    }
  }
  return serial;
}

}  // namespace

bool IsViewEquivalentToSerial(const History& history, const std::vector<TxnId>& order) {
  const History committed = CommittedProjection(history);
  const History serial = SerialHistory(committed, order);
  if (serial.size() != committed.size()) return false;  // order must cover all
  if (!SameReadSources(committed, serial)) return false;
  return FinalWriters(committed) == FinalWriters(serial);
}

StatusOr<bool> IsViewSerializable(const History& history) {
  auto order = ViewSerializationOrder(history);
  if (order.ok()) return true;
  if (order.status().IsNotFound()) return false;
  return order.status();
}

StatusOr<std::vector<TxnId>> ViewSerializationOrder(const History& history) {
  std::vector<TxnId> committed;
  for (TxnId t : history.TxnIds()) {
    if (history.Txn(t).outcome == TxnOutcome::kCommitted) committed.push_back(t);
  }
  // Fast path: a serial history of committed transactions is its own
  // witness (e.g. the broadcast server's update sub-history), with no size
  // limit.
  if (history.IsSerial()) {
    std::vector<TxnId> order;
    for (const Operation& op : history.ops()) {
      if (op.type == OpType::kCommit) order.push_back(op.txn);
    }
    if (order.size() == committed.size()) return order;
  }
  if (committed.size() > kMaxExactViewTxns) {
    return Status::InvalidArgument(
        StrFormat("exact view-serializability test limited to %zu committed txns, got %zu",
                  kMaxExactViewTxns, committed.size()));
  }
  std::sort(committed.begin(), committed.end());
  do {
    if (IsViewEquivalentToSerial(history, committed)) return committed;
  } while (std::next_permutation(committed.begin(), committed.end()));
  return Status::NotFound("no view-equivalent serial order exists");
}

}  // namespace bcc
