// Appendix B, Theorem 5: deciding legality (scheduler-checkable update
// consistency) is NP-complete even when all update transactions run
// serially. This module implements the constructive direction as runnable
// code: a polynomial-time reduction from CNF satisfiability to history
// legality.
//
// Pipeline (following the proof):
//   1. psi' : add a fresh variable X as a disjunct to every clause of the
//      input psi — psi' is always satisfiable (X = true), and psi is
//      satisfiable iff psi' is satisfiable with X = false;
//   2. psi''': split 4-literal clauses (a|b|c|d) into (a|b|z) & (c|d|!z);
//   3. phi : make the formula non-circular (Definition 8) by replacing the
//      i-th occurrence of each variable with a fresh alternating-polarity
//      copy v_i (v_{i+1} == !v_i via the non-mixed clauses (v_i | v_{i+1})
//      and (!v_i | !v_{i+1}));
//   4. build the polygraph gadget of phi (per-variable nodes a_x, b_x, c_x;
//      per-occurrence nodes y, z; clause rings) and realize it as a history
//      whose update transactions run serially, plus a single read-only
//      transaction t_R whose reads pin P_H(t_R) to the gadget and force
//      X = false.
//
// The result: IsLegal(history) iff psi is satisfiable. The test suite
// verifies this equivalence against brute-force SAT on random formulas.

#ifndef BCC_CC_SAT_REDUCTION_H_
#define BCC_CC_SAT_REDUCTION_H_

#include "cc/cnf.h"
#include "common/statusor.h"
#include "history/history.h"

namespace bcc {

/// Step 1: psi' = psi with fresh variable X (returned index) added
/// positively to every clause.
CnfFormula AddGuardVariable(const CnfFormula& psi, uint32_t* guard_var);

/// Step 2: split every clause with more than 3 literals into 3-literal
/// clauses using fresh link variables; clauses of size <= 3 pass through.
CnfFormula SplitWideClauses(const CnfFormula& f);

/// Step 3: non-circularization. Variables [0, f.num_vars) keep their ids as
/// chain heads; appended copies are recorded in `copy_map`:
/// (*copy_map)[v] = {source variable in f, polarity flipped?} for every
/// variable v of the result (heads map to themselves, unflipped).
CnfFormula MakeNonCircular(const CnfFormula& f,
                           std::vector<std::pair<uint32_t, bool>>* copy_map);

/// A satisfying assignment of a post-split formula (clause width <= 3, the
/// guard positive somewhere in every original clause chain) with the guard
/// variable true and all original variables false, built constructively by
/// walking the clauses in order and setting each fresh link variable to
/// satisfy its clause when nothing else does.
std::vector<bool> SatisfyWithGuardTrue(const CnfFormula& post_split, uint32_t guard_var,
                                       uint32_t first_link_var);

/// Lifts a base assignment through MakeNonCircular's copy map.
std::vector<bool> ExtendToCopies(const std::vector<bool>& base,
                                 const std::vector<std::pair<uint32_t, bool>>& copy_map);

/// Output of the full reduction.
struct SatReduction {
  CnfFormula phi;         ///< final non-circular formula
  uint32_t guard_var;     ///< X's chain head in phi
  History history;        ///< serial updates + one read-only transaction
  TxnId reader;           ///< t_R
  size_t num_update_txns;
  size_t num_objects;
};

/// Full Theorem 5 reduction. Requires clause width <= 3 in `psi` (the
/// paper's 3-SAT source). IsLegal(result.history) iff psi is satisfiable.
StatusOr<SatReduction> ReduceSatToLegality(const CnfFormula& psi);

}  // namespace bcc

#endif  // BCC_CC_SAT_REDUCTION_H_
