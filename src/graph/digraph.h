// A small dense directed-graph utility used by the serializability checkers.

#ifndef BCC_GRAPH_DIGRAPH_H_
#define BCC_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"

namespace bcc {

/// Directed graph over nodes labeled with arbitrary uint32 keys (typically
/// TxnIds). Nodes are interned to dense indices internally; duplicate edges
/// are ignored.
class Digraph {
 public:
  using NodeKey = uint32_t;

  /// Adds a node (no-op when present). Returns its dense index.
  size_t AddNode(NodeKey key);

  /// Adds an edge, creating nodes as needed. Self-loops are allowed and make
  /// the graph cyclic.
  void AddEdge(NodeKey from, NodeKey to);

  bool HasNode(NodeKey key) const { return index_.contains(key); }
  bool HasEdge(NodeKey from, NodeKey to) const;

  size_t NumNodes() const { return keys_.size(); }
  size_t NumEdges() const { return num_edges_; }

  const std::vector<NodeKey>& nodes() const { return keys_; }
  /// Successors of `key` as node keys; empty when absent.
  std::vector<NodeKey> Successors(NodeKey key) const;

  /// True iff the graph contains a directed cycle.
  bool HasCycle() const;

  /// Topological order of node keys; InvalidArgument when cyclic.
  StatusOr<std::vector<NodeKey>> TopologicalSort() const;

  /// Strongly connected components (Tarjan), in reverse topological order of
  /// the condensation; each component lists node keys.
  std::vector<std::vector<NodeKey>> StronglyConnectedComponents() const;

  /// True iff `to` is reachable from `from` (both must exist).
  bool Reachable(NodeKey from, NodeKey to) const;

 private:
  std::unordered_map<NodeKey, size_t> index_;
  std::vector<NodeKey> keys_;
  std::vector<std::vector<size_t>> adj_;
  size_t num_edges_ = 0;
};

}  // namespace bcc

#endif  // BCC_GRAPH_DIGRAPH_H_
