#include "graph/polygraph.h"

#include <algorithm>

namespace bcc {

void Polygraph::AddNode(NodeKey key) { base_.AddNode(key); }

void Polygraph::AddArc(NodeKey from, NodeKey to) { base_.AddEdge(from, to); }

void Polygraph::AddBipath(Arc first, Arc second) {
  base_.AddNode(first.first);
  base_.AddNode(first.second);
  base_.AddNode(second.first);
  base_.AddNode(second.second);
  bipaths_.push_back({first, second});
}

namespace {

// Would adding from->to close a directed cycle? (Reachability test; cheaper
// and more precise than add-then-check.)
bool WouldCycle(const Digraph& graph, Polygraph::NodeKey from, Polygraph::NodeKey to) {
  if (from == to) return true;
  return graph.Reachable(to, from);
}

// Unit propagation: repeatedly resolve bipaths with a forced arm (the other
// arm would close a cycle). Returns false on contradiction (both arms
// cycle). `open` marks unresolved bipaths; satisfied ones are cleared.
bool Propagate(Digraph* graph, const std::vector<Polygraph::Bipath>& bipaths,
               std::vector<bool>* open) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < bipaths.size(); ++i) {
      if (!(*open)[i]) continue;
      const Polygraph::Arc& a = bipaths[i].first;
      const Polygraph::Arc& b = bipaths[i].second;
      if (graph->HasEdge(a.first, a.second) || graph->HasEdge(b.first, b.second)) {
        (*open)[i] = false;
        continue;
      }
      const bool a_cycles = WouldCycle(*graph, a.first, a.second);
      const bool b_cycles = WouldCycle(*graph, b.first, b.second);
      if (a_cycles && b_cycles) return false;
      if (a_cycles || b_cycles) {
        const Polygraph::Arc& forced = a_cycles ? b : a;
        graph->AddEdge(forced.first, forced.second);
        (*open)[i] = false;
        changed = true;
      }
    }
  }
  return true;
}

// Backtracking search with unit propagation. `graph` and `open` are copied
// at each branch (instances are moderate; clarity over micro-optimization).
std::optional<std::vector<Polygraph::NodeKey>> Search(
    Digraph graph, const std::vector<Polygraph::Bipath>& bipaths, std::vector<bool> open) {
  if (!Propagate(&graph, bipaths, &open)) return std::nullopt;
  size_t next = bipaths.size();
  for (size_t i = 0; i < bipaths.size(); ++i) {
    if (open[i]) {
      next = i;
      break;
    }
  }
  if (next == bipaths.size()) {
    auto order = graph.TopologicalSort();
    if (order.ok()) return std::move(order).value();
    return std::nullopt;
  }
  std::vector<bool> branch_open = open;
  branch_open[next] = false;
  for (const Polygraph::Arc& choice : {bipaths[next].first, bipaths[next].second}) {
    if (WouldCycle(graph, choice.first, choice.second)) continue;  // prune
    Digraph candidate = graph;
    candidate.AddEdge(choice.first, choice.second);
    if (auto order = Search(std::move(candidate), bipaths, branch_open)) return order;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::vector<Polygraph::NodeKey>> Polygraph::FindAcyclicOrder() const {
  if (base_.HasCycle()) return std::nullopt;
  return Search(base_, bipaths_, std::vector<bool>(bipaths_.size(), true));
}

bool Polygraph::IsAcyclic() const { return FindAcyclicOrder().has_value(); }

}  // namespace bcc
