#include "graph/digraph.h"

#include <algorithm>
#include <cassert>

namespace bcc {

size_t Digraph::AddNode(NodeKey key) {
  const auto [it, inserted] = index_.try_emplace(key, keys_.size());
  if (inserted) {
    keys_.push_back(key);
    adj_.emplace_back();
  }
  return it->second;
}

void Digraph::AddEdge(NodeKey from, NodeKey to) {
  const size_t f = AddNode(from);
  const size_t t = AddNode(to);
  auto& succ = adj_[f];
  if (std::find(succ.begin(), succ.end(), t) == succ.end()) {
    succ.push_back(t);
    ++num_edges_;
  }
}

bool Digraph::HasEdge(NodeKey from, NodeKey to) const {
  const auto f = index_.find(from);
  const auto t = index_.find(to);
  if (f == index_.end() || t == index_.end()) return false;
  const auto& succ = adj_[f->second];
  return std::find(succ.begin(), succ.end(), t->second) != succ.end();
}

std::vector<Digraph::NodeKey> Digraph::Successors(NodeKey key) const {
  const auto it = index_.find(key);
  std::vector<NodeKey> out;
  if (it == index_.end()) return out;
  for (size_t s : adj_[it->second]) out.push_back(keys_[s]);
  return out;
}

bool Digraph::HasCycle() const { return !TopologicalSort().ok(); }

StatusOr<std::vector<Digraph::NodeKey>> Digraph::TopologicalSort() const {
  // Kahn's algorithm.
  std::vector<size_t> indegree(keys_.size(), 0);
  for (const auto& succ : adj_) {
    for (size_t t : succ) ++indegree[t];
  }
  std::vector<size_t> ready;
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<NodeKey> order;
  order.reserve(keys_.size());
  while (!ready.empty()) {
    const size_t n = ready.back();
    ready.pop_back();
    order.push_back(keys_[n]);
    for (size_t t : adj_[n]) {
      if (--indegree[t] == 0) ready.push_back(t);
    }
  }
  if (order.size() != keys_.size()) {
    return Status::InvalidArgument("graph contains a cycle");
  }
  return order;
}

std::vector<std::vector<Digraph::NodeKey>> Digraph::StronglyConnectedComponents() const {
  // Iterative Tarjan.
  const size_t n = keys_.size();
  std::vector<int64_t> disc(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  std::vector<std::vector<NodeKey>> sccs;
  int64_t timer = 0;

  struct Frame {
    size_t node;
    size_t child_idx;
  };
  for (size_t root = 0; root < n; ++root) {
    if (disc[root] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    disc[root] = low[root] = timer++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& fr = frames.back();
      if (fr.child_idx < adj_[fr.node].size()) {
        const size_t child = adj_[fr.node][fr.child_idx++];
        if (disc[child] == -1) {
          disc[child] = low[child] = timer++;
          stack.push_back(child);
          on_stack[child] = true;
          frames.push_back({child, 0});
        } else if (on_stack[child]) {
          low[fr.node] = std::min(low[fr.node], disc[child]);
        }
      } else {
        if (low[fr.node] == disc[fr.node]) {
          std::vector<NodeKey> comp;
          for (;;) {
            const size_t v = stack.back();
            stack.pop_back();
            on_stack[v] = false;
            comp.push_back(keys_[v]);
            if (v == fr.node) break;
          }
          sccs.push_back(std::move(comp));
        }
        const size_t done = fr.node;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] = std::min(low[frames.back().node], low[done]);
        }
      }
    }
  }
  return sccs;
}

bool Digraph::Reachable(NodeKey from, NodeKey to) const {
  const auto f = index_.find(from);
  const auto t = index_.find(to);
  assert(f != index_.end() && t != index_.end());
  std::vector<bool> seen(keys_.size(), false);
  std::vector<size_t> work{f->second};
  seen[f->second] = true;
  while (!work.empty()) {
    const size_t cur = work.back();
    work.pop_back();
    if (cur == t->second) return true;
    for (size_t s : adj_[cur]) {
      if (!seen[s]) {
        seen[s] = true;
        work.push_back(s);
      }
    }
  }
  return false;
}

}  // namespace bcc
