// Polygraphs (Papadimitriou 1979; Definitions 4-5 in the paper's Appendix A).
//
// A polygraph (N, A, B) is a digraph (N, A) plus a set B of bipaths: pairs
// of arcs ((v, u), (u, w)) such that (w, v) is in A. The polygraph is
// acyclic iff some digraph obtained by adding at least one arc of every
// bipath to A is acyclic. Deciding this is NP-complete in general; we
// provide an exact backtracking decision procedure (the instances arising
// in tests and the checker are small).

#ifndef BCC_GRAPH_POLYGRAPH_H_
#define BCC_GRAPH_POLYGRAPH_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "graph/digraph.h"

namespace bcc {

/// A polygraph over uint32-keyed nodes.
class Polygraph {
 public:
  using NodeKey = Digraph::NodeKey;
  using Arc = std::pair<NodeKey, NodeKey>;

  /// A bipath ((v,u),(u,w)): at least one of the two arcs must be chosen.
  struct Bipath {
    Arc first;
    Arc second;
  };

  void AddNode(NodeKey key);
  void AddArc(NodeKey from, NodeKey to);
  void AddBipath(Arc first, Arc second);

  const Digraph& base() const { return base_; }
  const std::vector<Bipath>& bipaths() const { return bipaths_; }

  /// Exact acyclicity test (worst-case exponential in |B|).
  bool IsAcyclic() const;

  /// When acyclic, returns a witness: a topological order of one acyclic
  /// digraph in the polygraph's family. std::nullopt when cyclic.
  std::optional<std::vector<NodeKey>> FindAcyclicOrder() const;

 private:
  Digraph base_;
  std::vector<Bipath> bipaths_;
};

}  // namespace bcc

#endif  // BCC_GRAPH_POLYGRAPH_H_
