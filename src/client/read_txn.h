// Client-side read-only transaction protocol (Section 3.2.1/3.2.2).
//
// A read-only transaction never contacts the server. Before each read it
// evaluates its algorithm's read condition against the control information
// broadcast in the cycle it reads from; failure aborts the transaction
// (Status::Aborted), after which the client restarts it. Commit is a no-op.
//
// When a CycleStampCodec is supplied, every control entry consulted is
// round-tripped through its TS-bit wire encoding (residue encode at the
// server, windowed decode at the client anchored on the current cycle),
// exactly as the paper's modulo-arithmetic scheme prescribes. Entries older
// than the codec window alias to more recent cycles, which can only cause
// spurious aborts — never a consistency violation.

#ifndef BCC_CLIENT_READ_TXN_H_
#define BCC_CLIENT_READ_TXN_H_

#include <optional>
#include <vector>

#include "common/statusor.h"
#include "matrix/control_info.h"
#include "obs/trace.h"
#include "server/broadcast_server.h"

namespace bcc {

struct CacheEntry;  // client/cache.h

/// Per-transaction protocol state machine, reusable across restarts via
/// Reset().
class ReadOnlyTxnProtocol {
 public:
  explicit ReadOnlyTxnProtocol(Algorithm algorithm,
                               std::optional<CycleStampCodec> codec = std::nullopt);

  Algorithm algorithm() const { return algorithm_; }

  /// Attempts to read `ob` off the air from cycle snapshot `snap`. On
  /// success records (ob, snap.cycle) and returns the version read; on read-
  /// condition failure returns Status::Aborted (caller restarts the txn).
  StatusOr<ObjectVersion> Read(const CycleSnapshot& snap, ObjectId ob);

  /// Attempts to serve `ob` from a cache entry (Section 3.3).
  ///
  /// F-Matrix/F-Matrix-No: the entry's stored column substitutes for the
  /// broadcast column, and — because a cached read may be *older* than
  /// previous reads — the condition is checked in both directions: the
  /// cached value must not depend on overwrites of anything already read
  /// (paper's rule), and no previously read value may depend on a write to
  /// `ob` at or after the cached cycle (checked against the columns stored
  /// with every earlier read). Records (ob, entry.cycle) on success.
  ///
  /// R-Matrix: the reduced entry cannot describe stale dependencies, so a
  /// cached value is only served when it is still current (no committed
  /// write since it was cached, per the latest on-air vector); the read is
  /// then exactly equivalent to a fresh read at snap.cycle and is validated
  /// and recorded as such.
  ///
  /// Datacycle: always rejected (the paper gives it no caching story).
  StatusOr<ObjectVersion> ReadFromCache(const CacheEntry& entry, ObjectId ob,
                                        const CycleSnapshot& snap);

  /// Read-only commit: always succeeds, returns the number of reads.
  size_t Commit() const { return reads_.size(); }

  /// Clears all per-attempt state for a restart.
  void Reset();

  /// Substitutes `matrix` for the snapshot's f_matrix in every F-family
  /// check and column capture (nullptr restores the broadcast matrix). Used
  /// in snapshot+delta mode, where the client validates against its locally
  /// reconstructed matrix instead of an on-air full matrix. The caller owns
  /// the matrix and must keep it in sync with the snapshot being read.
  /// Decisions stay bit-identical to full-mode validation as long as the
  /// reconstruction is congruent to the server matrix mod 2^ts: Stamp()
  /// re-round-trips every entry through the codec, and Decode(Encode(x), c)
  /// depends on x only through x mod 2^ts.
  void set_control_override(const FMatrix* matrix) { control_override_ = matrix; }
  const FMatrix* control_override() const { return control_override_; }

  /// Sparse-representation variant of set_control_override: validates and
  /// captures columns from `matrix` instead of the snapshot. Used in sparse
  /// snapshot+delta mode, where the tracker reconstructs a SparseFMatrix.
  /// Takes precedence over a dense override when both are set (they are
  /// never both set by the sims). Same congruence argument applies.
  void set_sparse_control_override(const SparseFMatrix* matrix) {
    sparse_control_override_ = matrix;
  }
  const SparseFMatrix* sparse_control_override() const { return sparse_control_override_; }

  /// Routes every F-family check through a hierarchical matrix
  /// (MatrixMode::kHier): unrefined columns validate against the group
  /// aggregate (conservative — spurious aborts only), refined ones against
  /// the exact column. Mutable because scans record spurious-abort evidence
  /// for the refinement policy. Takes precedence over every other control
  /// source; incompatible with the cache and the wire codec (enforced by
  /// SimConfig::Validate).
  void set_hier_control_override(HierMatrix* matrix) { hier_control_override_ = matrix; }
  HierMatrix* hier_control_override() const { return hier_control_override_; }

  /// Gates the per-read capture of the full consulted control column
  /// (F-family, ungrouped). The capture is O(n) per read and exists solely
  /// so later *stale* cached reads can be validated against it — a client
  /// with no cache pays it for nothing, and at n = 10^6 it dominates the
  /// read cost. Defaults to on (safe); the sims pass their enable_cache
  /// flag. With capture off, ReadFromCache's F-family path rejects stale
  /// insertions (no evidence), which is the conservative direction.
  void set_capture_columns(bool capture) { capture_columns_ = capture; }
  bool capture_columns() const { return capture_columns_; }

  /// Substitutes `values` for the snapshot's object array in Read (nullptr
  /// restores the broadcast values). Used in channel mode, where the client
  /// reads data pages from its receiver's reassembled frames instead of the
  /// in-process snapshot; the caller owns the vector, keeps it sized to the
  /// database, and gates reads on the page having been received this cycle.
  void set_value_override(const std::vector<ObjectVersion>* values) {
    value_override_ = values;
  }
  const std::vector<ObjectVersion>* value_override() const { return value_override_; }

  const std::vector<ReadRecord>& reads() const { return reads_; }
  const std::vector<ObjectVersion>& values() const { return values_; }
  /// Cycle of the first successful read (R-Matrix's c1); 0 before any read.
  Cycle first_read_cycle() const { return first_read_cycle_; }

  /// Structured cause of the most recent failed Read: which pair
  /// (ob_i, ob_j) fired, the read cycle, and the conflicting stamp —
  /// captured at the exact check that failed. Meaningful only immediately
  /// after Read returned Aborted; cleared by Reset.
  const AbortInfo& last_abort() const { return last_abort_; }

 private:
  /// Control-entry view with optional wire-codec round trip.
  Cycle Stamp(Cycle raw, Cycle current) const;

  bool CheckFMatrix(const CycleSnapshot& snap, ObjectId ob);
  bool CheckRMatrix(const CycleSnapshot& snap, ObjectId ob);
  bool CheckDatacycle(const CycleSnapshot& snap, ObjectId ob);

  void Record(ObjectId ob, Cycle cycle, const ObjectVersion& version,
              std::vector<Cycle> column);

  Algorithm algorithm_;
  std::optional<CycleStampCodec> codec_;
  const FMatrix* control_override_ = nullptr;
  const SparseFMatrix* sparse_control_override_ = nullptr;
  HierMatrix* hier_control_override_ = nullptr;
  const std::vector<ObjectVersion>* value_override_ = nullptr;
  bool capture_columns_ = true;
  std::vector<ReadRecord> reads_;
  std::vector<ObjectVersion> values_;
  /// Per read: the control column consulted (F-family, ungrouped only;
  /// empty otherwise). Needed to validate later *stale* cached reads.
  std::vector<std::vector<Cycle>> columns_;
  Cycle first_read_cycle_ = 0;
  AbortInfo last_abort_;
};

}  // namespace bcc

#endif  // BCC_CLIENT_READ_TXN_H_
