// Client-side update transactions (Section 3.2.1, client functionality).
//
// Writes are buffered locally (no checks); reads go through the same
// read-condition protocol as read-only transactions, except that a write an
// object previously written by this transaction is read back from the local
// buffer. At commit, the read records (object + cycle) and the write set are
// shipped to the server's UpdateValidator over the low-bandwidth uplink.

#ifndef BCC_CLIENT_UPDATE_TXN_H_
#define BCC_CLIENT_UPDATE_TXN_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "client/read_txn.h"
#include "server/validator.h"

namespace bcc {

/// Buffered client update transaction.
class UpdateTxnBuffer {
 public:
  UpdateTxnBuffer(TxnId id, Algorithm algorithm,
                  std::optional<CycleStampCodec> codec = std::nullopt)
      : id_(id), protocol_(algorithm, codec) {}

  TxnId id() const { return id_; }

  /// Reads `ob`: served from the local write buffer when previously written
  /// by this transaction, otherwise off the air with read-condition
  /// validation. Returns Status::Aborted on a failed condition.
  StatusOr<ObjectVersion> Read(const CycleSnapshot& snap, ObjectId ob);

  /// Buffers a write locally ("the write is performed on a local copy...
  /// No checks are made").
  void Write(ObjectId ob);

  bool has_writes() const { return !write_order_.empty(); }

  /// Builds the commit request to ship to the server. A transaction with no
  /// writes commits locally and needs no request.
  ClientUpdateRequest BuildCommitRequest() const;

  /// Discards all local state ("all the copies of the data items written to
  /// are discarded").
  void Abort();

  const std::vector<ReadRecord>& reads() const { return protocol_.reads(); }
  const std::vector<ObjectId>& writes() const { return write_order_; }

 private:
  TxnId id_;
  ReadOnlyTxnProtocol protocol_;
  std::unordered_map<ObjectId, uint64_t> local_writes_;  // ob -> local copy marker
  std::vector<ObjectId> write_order_;
  uint64_t next_local_value_ = 1;
};

}  // namespace bcc

#endif  // BCC_CLIENT_UPDATE_TXN_H_
