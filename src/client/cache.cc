#include "client/cache.h"

namespace bcc {

QuasiCache::QuasiCache(size_t capacity, SimTime default_currency_bound)
    : capacity_(capacity), default_bound_(default_currency_bound) {}

void QuasiCache::SetCurrencyBound(ObjectId ob, SimTime bound) {
  per_object_bound_[ob] = bound;
}

SimTime QuasiCache::CurrencyBoundFor(ObjectId ob) const {
  const auto it = per_object_bound_.find(ob);
  return it == per_object_bound_.end() ? default_bound_ : it->second;
}

std::optional<CacheEntry> QuasiCache::Lookup(ObjectId ob, SimTime now) {
  const auto it = map_.find(ob);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  const CacheEntry& entry = it->second->entry;
  if (now - entry.cached_time > CurrencyBoundFor(ob)) {
    // Stale: local invalidation, no communication.
    lru_.erase(it->second);
    map_.erase(it);
    ++stale_drops_;
    ++misses_;
    return std::nullopt;
  }
  // Move to front (most recently used).
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return entry;
}

void QuasiCache::Insert(ObjectId ob, CacheEntry entry) {
  const auto it = map_.find(ob);
  if (it != map_.end()) {
    it->second->entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (capacity_ != 0 && map_.size() >= capacity_) {
    const Node& victim = lru_.back();
    map_.erase(victim.ob);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Node{ob, std::move(entry)});
  map_[ob] = lru_.begin();
}

void QuasiCache::Clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace bcc
