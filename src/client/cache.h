// Quasi-caching with weak currency bounds (Section 3.3).
//
// If a client's currency requirement is "data no older than T time units",
// objects read off the broadcast can be cached and served locally until
// they age out — no communication needed for invalidation. To keep cached
// reads mutually consistent with fresh reads, each entry stores the control
// column (F-Matrix) or reduced entry (R-Matrix) that accompanied the object
// when it was cached; ReadOnlyTxnProtocol::ReadFromCache validates against
// that stored information.

#ifndef BCC_CLIENT_CACHE_H_
#define BCC_CLIENT_CACHE_H_

#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "des/event_queue.h"
#include "server/broadcast_server.h"

namespace bcc {

/// One cached object with its validation baggage.
struct CacheEntry {
  ObjectVersion version;      ///< the cached committed version
  Cycle cycle = 0;            ///< broadcast cycle the value was read in
  SimTime cached_time = 0;    ///< wall-clock (bit-unit) time it was cached
  std::vector<Cycle> column;  ///< F-Matrix column for the object (absolute)
  Cycle mc_entry = 0;         ///< reduced-vector entry (R-Matrix/Datacycle)
};

/// LRU cache with per-object currency bounds. Entries older than their
/// bound are invalidated lazily at lookup; invalidation is purely local
/// (the broadcast medium is never consulted), as the paper requires.
class QuasiCache {
 public:
  /// `capacity` = 0 means unbounded. `default_currency_bound` is T in
  /// bit-units; entries older than T are stale.
  QuasiCache(size_t capacity, SimTime default_currency_bound);

  /// Per-client/per-object currency tailoring (Section 3.3).
  void SetCurrencyBound(ObjectId ob, SimTime bound);
  SimTime CurrencyBoundFor(ObjectId ob) const;

  /// Returns the entry if present and younger than its currency bound at
  /// `now`; stale entries are dropped and counted.
  std::optional<CacheEntry> Lookup(ObjectId ob, SimTime now);

  /// Inserts/overwrites; evicts the least recently used entry when full.
  void Insert(ObjectId ob, CacheEntry entry);

  void Clear();

  size_t size() const { return map_.size(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t stale_drops() const { return stale_drops_; }
  size_t evictions() const { return evictions_; }

 private:
  struct Node {
    ObjectId ob;
    CacheEntry entry;
  };

  size_t capacity_;
  SimTime default_bound_;
  std::unordered_map<ObjectId, SimTime> per_object_bound_;
  std::list<Node> lru_;  // front = most recent
  std::unordered_map<ObjectId, std::list<Node>::iterator> map_;
  size_t hits_ = 0, misses_ = 0, stale_drops_ = 0, evictions_ = 0;
};

}  // namespace bcc

#endif  // BCC_CLIENT_CACHE_H_
