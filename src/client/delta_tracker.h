// Client side of the snapshot+delta control broadcast: reconstructs the
// F-Matrix from per-cycle delta blocks and periodic full refreshes.
//
// The tracker holds the client's local copy of the control matrix. Each
// broadcast cycle it observes that cycle's DeltaControl:
//   - a full refresh (re)synchronizes unconditionally — the on-air matrix is
//     copied wholesale;
//   - a delta applies only when the tracker is synced to exactly the block's
//     base cycle; otherwise the tracker desyncs and waits for the next
//     refresh. Deltas are relative to the previous cycle, and the F-Matrix
//     is not monotone (ApplyCommit can lower entries), so applying a delta
//     over any gap could fabricate a matrix that accepts reads the true one
//     rejects. Desync-and-wait is the only safe recovery.
//   - duplicated or stale blocks (cycle at or before the sync point, as a
//     faulty or replayed channel can deliver) are ignored while synced: their
//     content is already incorporated, and re-applying old stamps could only
//     regress entries toward false acceptance. A FORWARD gap still desyncs.
//
// Staleness guard: even a synced tracker is only usable while
// current - last_sync <= codec.max_cycles(); past the window the TS-bit
// stamps decoded at observation time no longer mean what a fresh decode
// would, so the client must stall until a refresh (BeyondDecodeWindow).
// With the contiguity rule above, last_sync always equals the cycle being
// read, so the guard can fire only for a desynced tracker — it is the
// documented hard ceiling, not the common path.
//
// Congruence invariant (checked by BroadcastSim::VerifyDeltaTrackers): a
// synced tracker's matrix is entry-wise congruent to the server's matrix
// mod 2^ts. Entries are stored as Decode(residue, observation cycle), which
// can differ from the server's absolute value for out-of-window history,
// but validation re-encodes every entry (ReadOnlyTxnProtocol::Stamp), and
// Decode(Encode(x), c) depends on x only mod 2^ts — so read decisions are
// bit-identical to full-matrix broadcast.

#ifndef BCC_CLIENT_DELTA_TRACKER_H_
#define BCC_CLIENT_DELTA_TRACKER_H_

#include "matrix/f_matrix.h"
#include "matrix/sparse_f_matrix.h"
#include "obs/trace.h"
#include "server/delta_broadcast.h"

namespace bcc {

/// Per-client reconstruction state for delta-broadcast control information.
class DeltaMatrixTracker {
 public:
  /// `sparse` selects the sparse reconstruction (MatrixMode::kSparse direct
  /// delta mode): the tracker holds a SparseFMatrix instead of an O(n^2)
  /// dense one — refreshes adopt the snapshot's shared column payloads in
  /// O(n) pointer copies and deltas apply in O(columns touched). Sync-state
  /// policy (desync, staleness window, stale-block rejection) is identical;
  /// use sparse_matrix() / set_sparse_control_override on the protocol.
  DeltaMatrixTracker(uint32_t num_objects, CycleStampCodec codec, bool sparse = false);

  /// Ingests cycle `ctl.cycle`'s control block. `on_air_matrix` is the full
  /// matrix a refresh cycle broadcasts (the snapshot's f_matrix); it is only
  /// read when ctl.full_refresh. Cycles may be skipped (a client that tuned
  /// out misses blocks); any gap desyncs until the next refresh.
  void Observe(const DeltaControl& ctl, const FMatrix& on_air_matrix);
  /// Same, reading the refresh matrix straight from the CoW cycle snapshot.
  void Observe(const DeltaControl& ctl, const FMatrixSnapshot& on_air_matrix);
  /// Sparse-mode variant: a refresh adopts `on_air_matrix`'s shared column
  /// payloads (absolute values, exactly like the direct dense path's
  /// CopyMatrix); deltas decode residues at ctl.cycle via the sparse
  /// DeltaCodec::Apply. Requires the sparse constructor flag.
  void Observe(const DeltaControl& ctl, const SparseFMatrix& on_air_matrix);

  /// Tracker is reconstructing successfully (saw a refresh and every delta
  /// since).
  bool synced() const { return synced_; }

  /// Last cycle whose control block was applied (valid when synced).
  Cycle last_sync() const { return last_sync_; }

  /// The reconstructed matrix; meaningful only when synced (dense mode).
  const FMatrix& matrix() const { return matrix_; }

  /// The sparse reconstruction (sparse mode); meaningful only when synced.
  const SparseFMatrix& sparse_matrix() const { return sparse_matrix_; }
  bool sparse() const { return sparse_; }

  /// True when the reconstruction is unusable for validating a read in
  /// `current`: not synced, stale, or past the TS decode window.
  bool Unusable(Cycle current) const {
    return !synced_ || current != last_sync_ || BeyondDecodeWindow(current);
  }

  /// The ISSUE's hard staleness ceiling: current - last_sync beyond the
  /// codec window means windowed decode would silently corrupt the matrix.
  bool BeyondDecodeWindow(Cycle current) const {
    return current - last_sync_ > codec_.max_cycles();
  }

  /// Test hook: force a desync (models a client missing a cycle's block).
  void ForceDesync() {
    if (synced_) EmitSyncEvent(TraceEventType::kDesync, last_sync_);
    synced_ = false;
  }

  /// Optional trace sink (not owned; nullptr disables). Emits kDesync /
  /// kResync whenever the synced() flag transitions.
  void set_trace_ring(TraceRing* ring) { trace_ = ring; }
  /// Simulation time stamped onto trace events (set by the receiver before
  /// each Observe; purely observational).
  void set_trace_now(SimTime now) { trace_now_ = now; }

 private:
  template <typename OnAirMatrix>
  void ObserveImpl(const DeltaControl& ctl, const OnAirMatrix& on_air_matrix);

  void EmitSyncEvent(TraceEventType type, Cycle cycle) {
    if (trace_ == nullptr) return;
    TraceEvent e;
    e.type = type;
    e.time = trace_now_;
    e.cycle = cycle;
    trace_->Record(e);
  }

  CycleStampCodec codec_;
  bool sparse_;
  /// Exactly one of the two is sized n; the other stays size 0 — in sparse
  /// mode the dense matrix would be O(n^2) dead weight (8 TB at n = 10^6).
  FMatrix matrix_;
  SparseFMatrix sparse_matrix_;
  bool synced_ = false;
  Cycle last_sync_ = 0;
  TraceRing* trace_ = nullptr;
  SimTime trace_now_ = 0;
};

}  // namespace bcc

#endif  // BCC_CLIENT_DELTA_TRACKER_H_
