#include "client/update_txn.h"

namespace bcc {

StatusOr<ObjectVersion> UpdateTxnBuffer::Read(const CycleSnapshot& snap, ObjectId ob) {
  const auto it = local_writes_.find(ob);
  if (it != local_writes_.end()) {
    // Read-your-own-writes from the local copy; not a broadcast read, so no
    // read record is added.
    return ObjectVersion{it->second, id_, snap.cycle};
  }
  return protocol_.Read(snap, ob);
}

void UpdateTxnBuffer::Write(ObjectId ob) {
  if (!local_writes_.contains(ob)) write_order_.push_back(ob);
  local_writes_[ob] = next_local_value_++;
}

ClientUpdateRequest UpdateTxnBuffer::BuildCommitRequest() const {
  ClientUpdateRequest request;
  request.id = id_;
  request.reads = protocol_.reads();
  request.writes = write_order_;
  return request;
}

void UpdateTxnBuffer::Abort() {
  local_writes_.clear();
  write_order_.clear();
  protocol_.Reset();
}

}  // namespace bcc
