// Client-side receiver for the lossy broadcast channel.
//
// Consumes one Transmission per broadcast cycle, reassembles the per-(kind,
// stream) payloads from the frames that survived the channel, and maintains
// the client's local picture of the cycle:
//   - data pages: the latest ObjectVersion per object, with the cycle it
//     arrived in (DataUsable);
//   - full mode: a local F-Matrix whose column j holds the stamps received
//     for object j, with the cycle column j was last received in
//     (ControlUsable);
//   - snapshot+delta mode: the index segment names the control mode, and the
//     control block (delta or refresh) is fed to the client's
//     DeltaMatrixTracker — a lost control segment simply is not observed,
//     which leaves the tracker stale and (on the next delta) desynced, the
//     tracker's designed loss-recovery path.
//
// Resynchronization rule: a read may only validate against control info and
// data received in the EXACT cycle being read. Stale columns could carry
// lower stamps than the current matrix and accept a read the server-side
// matrix rejects, so the caller must treat a missing column/page as a missed
// cycle and stall until the next cycle (BroadcastSim::PerformBroadcastRead).
// Loss therefore only ever adds stalls and aborts — never false acceptance.

#ifndef BCC_CLIENT_RECEIVER_H_
#define BCC_CLIENT_RECEIVER_H_

#include <vector>

#include "channel/frame.h"
#include "channel/lossy_channel.h"
#include "client/delta_tracker.h"
#include "matrix/f_matrix.h"
#include "obs/trace.h"

namespace bcc {

/// Per-client frame reassembly and resynchronization state.
class ChannelReceiver {
 public:
  /// `tracker` selects the control mode: nullptr receives full-mode column
  /// streams into a local matrix; non-null feeds delta/refresh blocks to the
  /// tracker (owned by the caller, must outlive the receiver).
  ChannelReceiver(uint32_t num_objects, FrameCodec codec, DeltaMatrixTracker* tracker);

  /// Ingests everything the client received from cycle `cycle`'s broadcast.
  /// `now` is the simulation time of the broadcast, used only to timestamp
  /// trace events (harmless to omit when tracing is off).
  void IngestCycle(Cycle cycle, const Transmission& tx, SimTime now = 0);

  /// True when object `ob`'s control info is usable for a read in `cycle`:
  /// full mode only — column ob was received in exactly that cycle. (Delta
  /// mode gates on DeltaMatrixTracker::Unusable instead.)
  bool ControlUsable(ObjectId ob, Cycle cycle) const { return col_cycle_[ob] == cycle; }

  /// True when object `ob`'s data page from cycle `cycle` was received.
  bool DataUsable(ObjectId ob, Cycle cycle) const { return data_cycle_[ob] == cycle; }

  /// Full-mode reconstructed matrix (column j meaningful only while
  /// ControlUsable(j, current cycle)).
  const FMatrix& matrix() const { return matrix_; }

  /// Last received data page per object (entry ob meaningful only while
  /// DataUsable(ob, current cycle)).
  const std::vector<ObjectVersion>& values() const { return values_; }

  /// The caller reports protocol-level consequences of loss.
  void RecordStall() { ++stats_.stalls; }
  void RecordLossAttributedAbort() { ++stats_.loss_attributed_aborts; }

  const ChannelStats& stats() const { return stats_; }

  /// Optional trace sink (not owned; nullptr disables). Emits kFrameRx per
  /// ingested cycle and, in full mode, kDesync/kResync on control-continuity
  /// transitions. Delta-mode sync transitions are emitted by the tracker.
  void set_trace_ring(TraceRing* ring) { trace_ = ring; }

 private:
  /// Decodes a delta-mode control block and feeds it to the tracker; false
  /// when the payload fails wire validation (treated as a lost segment).
  bool ObserveControl(Cycle cycle, bool refresh, const Payload& payload);

  uint32_t n_;
  FrameCodec codec_;
  DeltaMatrixTracker* tracker_;  // null in full mode

  FMatrix matrix_;                   // full mode
  std::vector<Cycle> col_cycle_;     // cycle each column was last received in
  std::vector<ObjectVersion> values_;
  std::vector<Cycle> data_cycle_;    // cycle each data page was last received in

  bool prev_control_ok_ = true;  // full mode: was last cycle's control complete?
  bool ever_synced_ = false;     // delta mode: has the tracker ever synced?
  ChannelStats stats_;
  TraceRing* trace_ = nullptr;
};

}  // namespace bcc

#endif  // BCC_CLIENT_RECEIVER_H_
