#include "client/read_txn.h"

#include <cassert>

#include "client/cache.h"
#include "common/format.h"
#include "matrix/kernels.h"
#include "matrix/mc_vector.h"

namespace bcc {

ReadOnlyTxnProtocol::ReadOnlyTxnProtocol(Algorithm algorithm,
                                         std::optional<CycleStampCodec> codec)
    : algorithm_(algorithm), codec_(codec) {}

Cycle ReadOnlyTxnProtocol::Stamp(Cycle raw, Cycle current) const {
  if (!codec_.has_value()) return raw;
  return codec_->Decode(codec_->Encode(raw), current);
}

bool ReadOnlyTxnProtocol::CheckFMatrix(const CycleSnapshot& snap, ObjectId ob) {
  if (hier_control_override_ != nullptr) {
    // Hierarchical view: no codec round trip (Validate rejects the wire
    // codec in hier mode), conservative group check with spurious-abort
    // classification inside the scan.
    const size_t fail = hier_control_override_->ReadConditionScan(reads_, ob, snap.cycle);
    if (fail == kReadConditionPass) return true;
    const ReadRecord& r = reads_[fail];
    last_abort_ = {AbortCause::kControlConflict, r.object, ob, r.cycle,
                   hier_control_override_->EffectiveAt(r.object, ob)};
    return false;
  }
  if (snap.group_matrix.has_value()) {
    // Grouped spectrum (Section 3.2.2): MC(i, group(j)) < cycle.
    const GroupMatrix& gm = *snap.group_matrix;
    const uint32_t s = gm.partition().GroupOf(ob);
    for (const ReadRecord& r : reads_) {
      const Cycle c = Stamp(gm.At(r.object, s), snap.cycle);
      if (c >= r.cycle) {
        last_abort_ = {AbortCause::kControlConflict, r.object, ob, r.cycle, c};
        return false;
      }
    }
    return true;
  }
  // read-condition(ob_j): for all (ob_i, cycle) in R_t : C(i, j) < cycle.
  // Sparse representations answer the same condition in O(reads * log nnz)
  // instead of touching a dense column; decisions and AbortInfo are
  // bit-identical (SparseFMatrix::At is exact).
  const SparseFMatrix* sparse = sparse_control_override_ != nullptr
                                    ? sparse_control_override_
                                    : snap.sparse_f_matrix.get();
  if (sparse != nullptr && control_override_ == nullptr) {
    if (!codec_.has_value()) {
      const size_t fail = sparse->ReadConditionScan(reads_, ob);
      if (fail == kReadConditionPass) return true;
      const ReadRecord& r = reads_[fail];
      last_abort_ = {AbortCause::kControlConflict, r.object, ob, r.cycle,
                     sparse->At(r.object, ob)};
      return false;
    }
    for (const ReadRecord& r : reads_) {
      const Cycle c = Stamp(sparse->At(r.object, ob), snap.cycle);
      if (c >= r.cycle) {
        last_abort_ = {AbortCause::kControlConflict, r.object, ob, r.cycle, c};
        return false;
      }
    }
    return true;
  }
  // The column base is hoisted out of the per-read loop (it used to be
  // re-derived from (r.object, ob) on every read record).
  const std::span<const Cycle> col =
      control_override_ != nullptr ? control_override_->Column(ob) : snap.f_matrix.Column(ob);
  if (!codec_.has_value()) {
    // No wire round trip: the raw scan early-exits at the first failing
    // read, exactly like the loop below.
    const size_t fail = KernelReadConditionScan(col.data(), reads_.data(), reads_.size());
    if (fail == kReadConditionPass) return true;
    const ReadRecord& r = reads_[fail];
    last_abort_ = {AbortCause::kControlConflict, r.object, ob, r.cycle, col[r.object]};
    return false;
  }
  for (const ReadRecord& r : reads_) {
    const Cycle c = Stamp(col[r.object], snap.cycle);
    if (c >= r.cycle) {
      last_abort_ = {AbortCause::kControlConflict, r.object, ob, r.cycle, c};
      return false;
    }
  }
  return true;
}

bool ReadOnlyTxnProtocol::CheckDatacycle(const CycleSnapshot& snap, ObjectId ob) {
  for (const ReadRecord& r : reads_) {
    const Cycle c = Stamp(snap.mc_vector.At(r.object), snap.cycle);
    if (c >= r.cycle) {
      last_abort_ = {AbortCause::kMcConflict, r.object, ob, r.cycle, c};
      return false;
    }
  }
  return true;
}

bool ReadOnlyTxnProtocol::CheckRMatrix(const CycleSnapshot& snap, ObjectId ob) {
  if (CheckDatacycle(snap, ob)) return true;
  // Weakened disjunct: the object now being read is unchanged since the
  // transaction's first read.
  const Cycle c = Stamp(snap.mc_vector.At(ob), snap.cycle);
  if (c < first_read_cycle_) return true;
  last_abort_ = {AbortCause::kMcConflict, ob, ob, first_read_cycle_, c};
  return false;
}

void ReadOnlyTxnProtocol::Record(ObjectId ob, Cycle cycle, const ObjectVersion& version,
                                 std::vector<Cycle> column) {
  if (reads_.empty()) first_read_cycle_ = cycle;
  reads_.push_back({ob, cycle});
  values_.push_back(version);
  columns_.push_back(std::move(column));
}

StatusOr<ObjectVersion> ReadOnlyTxnProtocol::Read(const CycleSnapshot& snap, ObjectId ob) {
  bool ok = false;
  switch (algorithm_) {
    case Algorithm::kFMatrix:
    case Algorithm::kFMatrixNo:
      ok = CheckFMatrix(snap, ob);
      break;
    case Algorithm::kRMatrix:
      ok = CheckRMatrix(snap, ob);
      break;
    case Algorithm::kDatacycle:
      ok = CheckDatacycle(snap, ob);
      break;
  }
  if (!ok) {
    return Status::Aborted(StrFormat("read-condition(ob%u) failed at cycle %llu", ob,
                                     static_cast<unsigned long long>(snap.cycle)));
  }
  const ObjectVersion version =
      value_override_ != nullptr ? (*value_override_)[ob] : snap.values[ob];
  // Keep the consulted column (as the client decoded it) so that later
  // stale cached reads can be validated against it.
  std::vector<Cycle> column;
  const bool f_family =
      algorithm_ == Algorithm::kFMatrix || algorithm_ == Algorithm::kFMatrixNo;
  if (capture_columns_ && f_family && !snap.group_matrix.has_value()) {
    const SparseFMatrix* sparse = sparse_control_override_ != nullptr
                                      ? sparse_control_override_
                                      : snap.sparse_f_matrix.get();
    if (sparse != nullptr && control_override_ == nullptr) {
      if (sparse->num_objects() > 0) {
        sparse->MaterializeColumn(ob, column);
        for (Cycle& c : column) c = Stamp(c, snap.cycle);
      }
    } else {
      const uint32_t fm_n = control_override_ != nullptr ? control_override_->num_objects()
                                                         : snap.f_matrix.num_objects();
      if (fm_n > 0) {
        const std::span<const Cycle> raw = control_override_ != nullptr
                                               ? control_override_->Column(ob)
                                               : snap.f_matrix.Column(ob);
        column.reserve(raw.size());
        for (Cycle c : raw) column.push_back(Stamp(c, snap.cycle));
      }
    }
  }
  Record(ob, snap.cycle, version, std::move(column));
  return version;
}

StatusOr<ObjectVersion> ReadOnlyTxnProtocol::ReadFromCache(const CacheEntry& entry, ObjectId ob,
                                                           const CycleSnapshot& snap) {
  auto reject = [&]() -> Status {
    return Status::Aborted(
        StrFormat("cache read-condition(ob%u) failed (cached cycle %llu)", ob,
                  static_cast<unsigned long long>(entry.cycle)));
  };

  switch (algorithm_) {
    case Algorithm::kFMatrix:
    case Algorithm::kFMatrixNo: {
      if (entry.column.empty() || snap.group_matrix.has_value()) return reject();
      // Forward direction (the paper's rule, with the stored column standing
      // in for the broadcast one): the cached value must not depend on a
      // transaction that overwrote anything we already read.
      for (const ReadRecord& r : reads_) {
        if (entry.column[r.object] >= r.cycle) return reject();
      }
      // Reverse direction — needed because this read may be OLDER than
      // previous reads: no previously read value may depend on a write to
      // `ob` at or after the cached cycle. Fresh reads satisfy this
      // automatically (their column entries precede their own cycle, which
      // is itself <= any later read's cycle), but a stale insertion must be
      // checked explicitly against every stored column.
      for (size_t k = 0; k < reads_.size(); ++k) {
        if (columns_[k].empty()) return reject();  // no evidence: be safe
        if (columns_[k][ob] >= entry.cycle) return reject();
      }
      Record(ob, entry.cycle, entry.version, entry.column);
      return entry.version;
    }
    case Algorithm::kRMatrix: {
      // The reduced vector cannot describe a stale value's dependencies, so
      // only serve the cached value if it is still current: no committed
      // write to `ob` since the cached cycle per the latest on-air vector.
      // The read is then equivalent to a fresh read at snap.cycle.
      if (Stamp(snap.mc_vector.At(ob), snap.cycle) >= entry.cycle) return reject();
      if (!CheckRMatrix(snap, ob)) return reject();
      Record(ob, snap.cycle, entry.version, {});
      return entry.version;
    }
    case Algorithm::kDatacycle:
      // Datacycle has no caching story in the paper: reject so callers fall
      // back to the broadcast.
      return reject();
  }
  return reject();
}

void ReadOnlyTxnProtocol::Reset() {
  reads_.clear();
  values_.clear();
  columns_.clear();
  first_read_cycle_ = 0;
  last_abort_ = {};
}

}  // namespace bcc
