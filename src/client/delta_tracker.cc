#include "client/delta_tracker.h"

#include <cassert>
#include <type_traits>

namespace bcc {

DeltaMatrixTracker::DeltaMatrixTracker(uint32_t num_objects, CycleStampCodec codec, bool sparse)
    : codec_(codec),
      sparse_(sparse),
      matrix_(sparse ? 0 : num_objects),
      sparse_matrix_(sparse ? num_objects : 0) {}

namespace {

void CopyMatrix(FMatrix& dst, const FMatrix& src) { dst = src; }

void CopyMatrix(FMatrix& dst, const FMatrixSnapshot& src) {
  const uint32_t n = src.num_objects();
  for (ObjectId j = 0; j < n; ++j) {
    const std::span<const Cycle> col = src.Column(j);
    for (ObjectId i = 0; i < n; ++i) dst.Set(i, j, col[i]);
  }
}

}  // namespace

template <typename OnAirMatrix>
void DeltaMatrixTracker::ObserveImpl(const DeltaControl& ctl, const OnAirMatrix& on_air_matrix) {
  constexpr bool kSparseOnAir = std::is_same_v<OnAirMatrix, SparseFMatrix>;
  assert(kSparseOnAir == sparse_ && "Observe overload must match the tracker's representation");
  if (ctl.full_refresh) {
    // A refresh OLDER than the sync point would regress entries below their
    // current values — and lower stamps can only ever accept more reads, so
    // applying it could fabricate false acceptance. Ignore it; the current
    // reconstruction is strictly fresher.
    if (synced_ && ctl.cycle < last_sync_) return;
    if (!synced_) EmitSyncEvent(TraceEventType::kResync, ctl.cycle);
    if constexpr (kSparseOnAir) {
      sparse_matrix_ = on_air_matrix;  // O(n) shared-pointer adoption
    } else {
      CopyMatrix(matrix_, on_air_matrix);
    }
    synced_ = true;
    last_sync_ = ctl.cycle;
    return;
  }
  // A duplicated or stale delta (at or before the sync point) is already
  // incorporated in the reconstruction: re-applying could regress entries
  // (deltas are not idempotent across cycles), so ignore it and stay synced.
  if (synced_ && ctl.cycle <= last_sync_) return;
  // A delta is only meaningful on top of exactly its base matrix: the
  // F-Matrix is not monotone, so skipping any block (or applying out of
  // order) could silently yield a matrix that accepts reads the true one
  // rejects. Anything but a contiguous continuation desyncs.
  if (!synced_ || ctl.base_cycle != last_sync_ || ctl.cycle != last_sync_ + 1) {
    if (synced_) EmitSyncEvent(TraceEventType::kDesync, ctl.cycle);
    synced_ = false;
    return;
  }
  if constexpr (kSparseOnAir) {
    DeltaCodec::Apply(&sparse_matrix_, ctl.entries, codec_, ctl.cycle);
  } else {
    DeltaCodec::Apply(&matrix_, ctl.entries, codec_, ctl.cycle);
  }
  last_sync_ = ctl.cycle;
}

void DeltaMatrixTracker::Observe(const DeltaControl& ctl, const FMatrix& on_air_matrix) {
  ObserveImpl(ctl, on_air_matrix);
}

void DeltaMatrixTracker::Observe(const DeltaControl& ctl, const FMatrixSnapshot& on_air_matrix) {
  ObserveImpl(ctl, on_air_matrix);
}

void DeltaMatrixTracker::Observe(const DeltaControl& ctl, const SparseFMatrix& on_air_matrix) {
  ObserveImpl(ctl, on_air_matrix);
}

}  // namespace bcc
