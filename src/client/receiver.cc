#include "client/receiver.h"

#include <map>

#include "matrix/wire.h"

namespace bcc {

namespace {

uint64_t StreamKey(FrameKind kind, uint32_t stream_id) {
  return (static_cast<uint64_t>(kind) << 32) | stream_id;
}

}  // namespace

ChannelReceiver::ChannelReceiver(uint32_t num_objects, FrameCodec codec,
                                 DeltaMatrixTracker* tracker)
    : n_(num_objects),
      codec_(codec),
      tracker_(tracker),
      matrix_(num_objects),
      col_cycle_(num_objects, 0),
      values_(num_objects),
      data_cycle_(num_objects, 0) {}

void ChannelReceiver::IngestCycle(Cycle cycle, const Transmission& tx, SimTime now) {
  stats_.frames_sent += tx.sent;
  stats_.frames_dropped += tx.dropped;
  stats_.frames_corrupted += tx.corrupted;
  stats_.frames_truncated += tx.truncated;
  stats_.frames_delivered += tx.frames.size();
  if (trace_ != nullptr) {
    TraceEvent e;
    e.type = TraceEventType::kFrameRx;
    e.time = now;
    e.cycle = cycle;
    e.value = tx.frames.size();
    trace_->Record(e);
  }

  const uint32_t residue = codec_.stamp_codec().Encode(cycle);
  std::map<uint64_t, StreamReassembler> streams;
  for (const Delivery& d : tx.frames) {
    StatusOr<DecodedFrame> decoded = codec_.Decode(d.frame);
    if (!decoded.ok() || decoded->header.cycle_residue != residue) {
      ++stats_.frames_rejected;
      continue;
    }
    // A damaged frame that still passes CRC and framing would be delivered as
    // valid — counted so the sweep can prove it (essentially) never happens.
    if (d.corrupted) ++stats_.frames_delivered_corrupt;
    streams[StreamKey(decoded->header.kind, decoded->header.stream_id)].Add(*decoded);
  }

  const auto complete = [&streams](FrameKind kind, uint32_t stream_id) -> StreamReassembler* {
    const auto it = streams.find(StreamKey(kind, stream_id));
    if (it == streams.end() || !it->second.complete()) return nullptr;
    return &it->second;
  };

  // Data pages travel the same way in both control modes.
  for (uint32_t j = 0; j < n_; ++j) {
    if (StreamReassembler* s = complete(FrameKind::kData, j)) {
      const StatusOr<ObjectVersion> version = DecodeObjectPayload(s->Take());
      if (version.ok()) {
        values_[j] = *version;
        data_cycle_[j] = cycle;
      }
    }
    if (data_cycle_[j] != cycle) ++stats_.data_losses;
  }

  if (tracker_ == nullptr) {
    // Full mode: each column stream lands independently. Stamps are decoded
    // anchored at the receive cycle; validation re-encodes them, so the
    // windowed decode is congruence-preserving.
    bool all_ok = true;
    for (uint32_t j = 0; j < n_; ++j) {
      if (StreamReassembler* s = complete(FrameKind::kControlColumn, j)) {
        const Payload payload = s->Take();
        const StatusOr<std::vector<Cycle>> stamps =
            UnpackStamps(payload.bytes, n_, codec_.stamp_codec(), cycle);
        if (stamps.ok()) {
          for (uint32_t i = 0; i < n_; ++i) matrix_.Set(i, j, (*stamps)[i]);
          col_cycle_[j] = cycle;
        }
      }
      if (col_cycle_[j] != cycle) {
        ++stats_.control_losses;
        all_ok = false;
      }
    }
    if (all_ok != prev_control_ok_ && trace_ != nullptr) {
      TraceEvent e;
      e.type = all_ok ? TraceEventType::kResync : TraceEventType::kDesync;
      e.time = now;
      e.cycle = cycle;
      trace_->Record(e);
    }
    if (all_ok && !prev_control_ok_) ++stats_.resyncs;
    prev_control_ok_ = all_ok;
    return;
  }
  tracker_->set_trace_now(now);

  // Snapshot+delta mode: the index segment is load-bearing — it names the
  // control mode for the cycle. Losing it (or the control block itself)
  // means the cycle's control is simply never observed; the tracker then
  // desyncs on the next delta's base-cycle gap and waits for a refresh.
  const bool was_synced = tracker_->synced();
  bool observed = false;
  if (StreamReassembler* s = complete(FrameKind::kIndex, 0)) {
    const StatusOr<CycleIndex> index = DecodeIndexPayload(s->Take());
    if (index.ok() && index->num_objects == n_ &&
        index->cycle_low == static_cast<uint32_t>(cycle & 0xFFFFFFFFull) &&
        index->control_mode != CycleIndex::kControlColumns) {
      const bool refresh = index->control_mode == CycleIndex::kControlRefresh;
      const FrameKind kind = refresh ? FrameKind::kControlRefresh : FrameKind::kControlDelta;
      if (StreamReassembler* c = complete(kind, 0)) {
        observed = ObserveControl(cycle, refresh, c->Take());
      }
    }
  }
  if (!observed) ++stats_.control_losses;
  if (was_synced && !tracker_->synced()) ++stats_.tracker_desyncs;
  if (!was_synced && tracker_->synced() && ever_synced_) ++stats_.resyncs;
  if (tracker_->synced()) ever_synced_ = true;
}

bool ChannelReceiver::ObserveControl(Cycle cycle, bool refresh, const Payload& payload) {
  DeltaControl ctl;
  ctl.cycle = cycle;
  ctl.full_refresh = refresh;
  if (refresh) {
    const StatusOr<FMatrix> on_air =
        UnpackMatrix(payload.bytes, n_, codec_.stamp_codec(), cycle);
    if (!on_air.ok()) return false;
    tracker_->Observe(ctl, *on_air);
    return true;
  }
  ctl.base_cycle = cycle - 1;
  StatusOr<std::vector<DeltaCodec::Entry>> entries =
      DeltaCodec::Unpack(payload.bytes, n_, codec_.stamp_codec());
  if (!entries.ok()) return false;
  ctl.entries = *std::move(entries);
  tracker_->Observe(ctl, matrix_);  // matrix_ unused for a non-refresh block
  return true;
}

}  // namespace bcc
