#include "obs/metrics.h"

#include <algorithm>

#include "common/format.h"

namespace bcc {

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Record(uint64_t v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<size_t>(it - bounds_.begin())].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (v < seen && !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen && !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::min() const {
  const uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

uint64_t Histogram::ApproxQuantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th value (1-based), then walk the buckets to it.
  const uint64_t rank = std::max<uint64_t>(1, static_cast<uint64_t>(q * static_cast<double>(n)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += bucket_count(i);
    if (seen >= rank) return i < bounds_.size() ? bounds_[i] : max();
  }
  return max();  // racing recorders moved count() past the bucket sums
}

std::vector<uint64_t> ExponentialBounds(uint64_t first, double growth, size_t count) {
  std::vector<uint64_t> bounds;
  bounds.reserve(count);
  double v = static_cast<double>(first);
  uint64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t bound = std::max<uint64_t>(static_cast<uint64_t>(v), prev + 1);
    bounds.push_back(bound);
    prev = bound;
    v *= growth;
  }
  return bounds;
}

Counter* MetricsRegistry::AddCounter(std::string name) {
  counters_.push_back({std::move(name), std::make_unique<Counter>()});
  return counters_.back().metric.get();
}

Gauge* MetricsRegistry::AddGauge(std::string name) {
  gauges_.push_back({std::move(name), std::make_unique<Gauge>()});
  return gauges_.back().metric.get();
}

Histogram* MetricsRegistry::AddHistogram(std::string name, std::vector<uint64_t> bounds) {
  histograms_.push_back({std::move(name), std::make_unique<Histogram>(std::move(bounds))});
  return histograms_.back().metric.get();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  for (const auto& c : counters_) {
    if (c.name == name) return c.metric->value();
  }
  return 0;
}

int64_t MetricsRegistry::GaugeValue(const std::string& name) const {
  for (const auto& g : gauges_) {
    if (g.name == name) return g.metric->value();
  }
  return 0;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  for (const auto& h : histograms_) {
    if (h.name == name) return h.metric.get();
  }
  return nullptr;
}

void MetricsRegistry::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& c : counters_) w.Key(c.name).Value(c.metric->value());
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& g : gauges_) w.Key(g.name).Value(static_cast<int64_t>(g.metric->value()));
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& h : histograms_) {
    const Histogram& hist = *h.metric;
    w.Key(h.name).BeginObject();
    w.Key("count").Value(hist.count());
    w.Key("sum").Value(hist.sum());
    w.Key("min").Value(hist.min());
    w.Key("max").Value(hist.max());
    w.Key("p50").Value(hist.ApproxQuantile(0.50));
    w.Key("p99").Value(hist.ApproxQuantile(0.99));
    w.Key("bounds").BeginArray();
    for (size_t i = 0; i + 1 < hist.num_buckets(); ++i) w.Value(hist.bucket_bound(i));
    w.EndArray();
    w.Key("buckets").BeginArray();
    for (size_t i = 0; i < hist.num_buckets(); ++i) w.Value(hist.bucket_count(i));
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter w;
  WriteJson(w);
  return std::move(w).Take();
}

MetricsLogger::MetricsLogger(std::string path, uint64_t interval_ms,
                             const MetricsRegistry* registry, std::string node)
    : interval_ms_(interval_ms), registry_(registry), node_(std::move(node)) {
  if (path.empty() || interval_ms == 0 || registry == nullptr) return;
  file_ = std::fopen(path.c_str(), "wb");
  next_due_ms_ = interval_ms;
}

MetricsLogger::~MetricsLogger() {
  if (file_ != nullptr) std::fclose(file_);
}

Status MetricsLogger::MaybeWrite(uint64_t now_ms) {
  if (file_ == nullptr || now_ms < next_due_ms_) return Status::OK();
  // One line per elapsed interval boundary, not one per due interval: a
  // stalled caller does not flood the file with catch-up lines.
  next_due_ms_ = (now_ms / interval_ms_ + 1) * interval_ms_;
  return WriteNow(now_ms);
}

Status MetricsLogger::WriteNow(uint64_t now_ms) {
  if (file_ == nullptr) return Status::OK();
  JsonWriter w;
  w.BeginObject();
  w.Key("node").Value(node_);
  w.Key("seq").Value(lines_);
  w.Key("t_ms").Value(now_ms);
  w.Key("metrics");
  registry_->WriteJson(w);
  w.EndObject();
  const std::string line = std::move(w).Take() + "\n";
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return Status::Internal("short write to metrics snapshot file");
  }
  std::fflush(file_);
  ++lines_;
  return Status::OK();
}

}  // namespace bcc
