#include "obs/trace_export.h"

#include <cstdio>

#include "common/format.h"
#include "obs/json.h"

namespace bcc {

namespace {

void EmitEvent(JsonWriter& w, size_t track, const TraceEvent& e) {
  w.BeginObject()
      .Key("name")
      .Value(TraceEventTypeName(e.type))
      .Key("cat")
      .Value("sim")
      .Key("pid")
      .Value(1)
      .Key("tid")
      .Value(static_cast<uint64_t>(track))
      .Key("ts")
      .Value(e.time);
  if (e.duration > 0) {
    w.Key("ph").Value("X").Key("dur").Value(e.duration);
  } else {
    // Thread-scoped instant.
    w.Key("ph").Value("i").Key("s").Value("t");
  }
  w.Key("args").BeginObject().Key("cycle").Value(e.cycle);
  if (e.type == TraceEventType::kRead || e.type == TraceEventType::kStall ||
      e.type == TraceEventType::kAbort) {
    w.Key("object").Value(e.object);
  }
  w.Key("value").Value(e.value);
  if (e.type == TraceEventType::kAbort) {
    w.Key("cause")
        .Value(AbortCauseName(e.abort.cause))
        .Key("ob_i")
        .Value(e.abort.ob_i)
        .Key("ob_j")
        .Value(e.abort.ob_j)
        .Key("read_cycle")
        .Value(e.abort.read_cycle)
        .Key("c_ij")
        .Value(e.abort.c_ij);
  }
  w.EndObject().EndObject();
}

}  // namespace

std::string ExportChromeTrace(const Tracer& tracer) {
  JsonWriter w;
  w.BeginObject().Key("displayTimeUnit").Value("ms").Key("traceEvents").BeginArray();
  for (size_t t = 0; t < tracer.num_tracks(); ++t) {
    // Track naming metadata first, so viewers label the row before any event.
    w.BeginObject()
        .Key("name")
        .Value("thread_name")
        .Key("ph")
        .Value("M")
        .Key("pid")
        .Value(1)
        .Key("tid")
        .Value(static_cast<uint64_t>(t))
        .Key("args")
        .BeginObject()
        .Key("name")
        .Value(tracer.track_name(t))
        .EndObject()
        .EndObject();
  }
  for (size_t t = 0; t < tracer.num_tracks(); ++t) {
    for (const TraceEvent& e : tracer.track(t).Snapshot()) EmitEvent(w, t, e);
  }
  w.EndArray()
      .Key("metadata")
      .BeginObject()
      .Key("events_recorded")
      .Value(tracer.TotalRecorded())
      .Key("events_dropped")
      .Value(tracer.TotalDropped())
      .Key("ring_capacity_per_track")
      .Value(static_cast<uint64_t>(tracer.capacity_per_track()))
      .EndObject()
      .EndObject();
  return std::move(w).Take();
}

Status WriteTextFile(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::Internal(StrFormat("cannot open %s", path.c_str()));
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    return Status::Internal(StrFormat("short write to %s", path.c_str()));
  }
  return Status::OK();
}

}  // namespace bcc
