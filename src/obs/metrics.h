// Live-metrics registry for the networked tier (DESIGN.md §4k).
//
// A MetricsRegistry is a set of named counters, gauges, and fixed-bucket
// histograms. Registration happens at setup time (not thread-safe, like
// Tracer::AddTrack); recording is thread-safe through relaxed atomics, so a
// metric may be hammered from any number of threads and still be TSan-clean
// — the snapshot reader sees each metric's own total exactly, and only
// cross-metric consistency is (deliberately) unsynchronized.
//
// Observer-effect contract (mirrors obs/trace.h): every call site holds a
// plain pointer that is null when telemetry is disabled, and records through
// the null-safe helpers (CounterAdd, GaugeSet, HistogramRecord). Disabled
// telemetry is therefore a branch-on-null — no allocation, no RNG draws, no
// atomics — and can never perturb a run's decisions.
//
// Snapshots are emitted through the strict obs/json.h writer: one JSON
// object {"counters":{...},"gauges":{...},"histograms":{...}}, spliceable
// into the binaries' run reports, the METRICS datagram, and the JSON-lines
// snapshot file (MetricsLogger).

#ifndef BCC_OBS_METRICS_H_
#define BCC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace bcc {

/// Monotone event counter. Single-writer or multi-writer; either way the
/// relaxed atomic makes recording race-free.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (lag, queue depth, pacing slip).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// with an implicit overflow bucket above the last bound. Also tracks
/// count / sum / min / max exactly.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<uint64_t> bounds);

  void Record(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  uint64_t min() const;
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  size_t num_buckets() const { return buckets_.size(); }  ///< bounds + overflow
  /// Inclusive upper bound of bucket `i`; the last bucket is unbounded.
  uint64_t bucket_bound(size_t i) const { return bounds_[i]; }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Bucket-resolution quantile estimate in [0, 1]: the upper bound of the
  /// bucket holding the q-th recorded value (max() for the overflow bucket,
  /// 0 when empty). Coarse by design — trend tooling wants stable buckets,
  /// not exact order statistics.
  uint64_t ApproxQuantile(double q) const;

 private:
  std::vector<uint64_t> bounds_;  ///< ascending; excludes the overflow bucket
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// `count` ascending bounds starting at `first`, each `growth` times the
/// previous (rounded up so the sequence is strictly ascending). The stock
/// bucket layout for latency-in-microseconds histograms.
std::vector<uint64_t> ExponentialBounds(uint64_t first, double growth, size_t count);

/// Null-safe recording helpers: the branch-on-null disabled path.
inline void CounterAdd(Counter* c, uint64_t n = 1) {
  if (c != nullptr) c->Add(n);
}
inline void GaugeSet(Gauge* g, int64_t v) {
  if (g != nullptr) g->Set(v);
}
inline void HistogramRecord(Histogram* h, uint64_t v) {
  if (h != nullptr) h->Record(v);
}

/// A named set of metrics. Add* registers at setup time (NOT thread-safe;
/// returned pointers are owned by the registry and stable for its lifetime);
/// recording through the returned pointers is thread-safe. Names should be
/// dotted paths ("uplink.accepts", "client3.lag_cycles") — they become JSON
/// object keys verbatim.
class MetricsRegistry {
 public:
  Counter* AddCounter(std::string name);
  Gauge* AddGauge(std::string name);
  Histogram* AddHistogram(std::string name, std::vector<uint64_t> bounds);

  size_t num_counters() const { return counters_.size(); }
  size_t num_gauges() const { return gauges_.size(); }
  size_t num_histograms() const { return histograms_.size(); }

  /// Registered counter/gauge value by name; 0 when absent (test helper).
  uint64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// Writes the snapshot as one JSON object in value position.
  void WriteJson(JsonWriter& w) const;
  std::string ToJson() const;

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::unique_ptr<T> metric;
  };
  std::vector<Named<Counter>> counters_;
  std::vector<Named<Gauge>> gauges_;
  std::vector<Named<Histogram>> histograms_;
};

/// Periodic JSON-lines snapshot writer: every `interval_ms` a call to
/// MaybeWrite appends one line
///   {"node":<node>,"seq":k,"t_ms":...,"metrics":{...}}
/// to `path`. Each line is a complete strict-JSON document, so the file
/// suits `python3 -m json.tool` per line and any JSONL trend tooling.
class MetricsLogger {
 public:
  /// Disabled when `path` is empty or `interval_ms` is 0 (MaybeWrite
  /// becomes a no-op). The registry must outlive the logger.
  MetricsLogger(std::string path, uint64_t interval_ms, const MetricsRegistry* registry,
                std::string node);
  ~MetricsLogger();

  MetricsLogger(const MetricsLogger&) = delete;
  MetricsLogger& operator=(const MetricsLogger&) = delete;

  bool enabled() const { return file_ != nullptr; }

  /// Appends a snapshot line when one is due at `now_ms` (monotone,
  /// milliseconds since the caller's run start). The first due time is
  /// interval_ms, so a run shorter than one interval writes nothing.
  Status MaybeWrite(uint64_t now_ms);

  /// Appends a final snapshot line regardless of the interval.
  Status WriteNow(uint64_t now_ms);

  uint64_t lines_written() const { return lines_; }

 private:
  std::FILE* file_ = nullptr;
  uint64_t interval_ms_ = 0;
  uint64_t next_due_ms_ = 0;
  uint64_t lines_ = 0;
  const MetricsRegistry* registry_ = nullptr;
  std::string node_;
};

}  // namespace bcc

#endif  // BCC_OBS_METRICS_H_
