#include "obs/trace.h"

#include <cassert>

#include "common/format.h"

namespace bcc {

std::string_view TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kCycleStart:
      return "cycle";
    case TraceEventType::kBroadcastTx:
      return "broadcast_tx";
    case TraceEventType::kFrameRx:
      return "frame_rx";
    case TraceEventType::kRead:
      return "read";
    case TraceEventType::kValidation:
      return "validation";
    case TraceEventType::kCommit:
      return "commit";
    case TraceEventType::kAbort:
      return "abort";
    case TraceEventType::kDesync:
      return "desync";
    case TraceEventType::kResync:
      return "resync";
    case TraceEventType::kStall:
      return "stall";
  }
  return "unknown";
}

std::string_view AbortCauseName(AbortCause cause) {
  switch (cause) {
    case AbortCause::kNone:
      return "none";
    case AbortCause::kControlConflict:
      return "control_conflict";
    case AbortCause::kMcConflict:
      return "mc_conflict";
    case AbortCause::kChannelLoss:
      return "channel_loss";
    case AbortCause::kDesyncStall:
      return "desync_stall";
    case AbortCause::kUplinkReject:
      return "uplink_reject";
    case AbortCause::kCensored:
      return "censored";
  }
  return "unknown";
}

uint64_t AbortBreakdown::TotalAborts() const {
  uint64_t total = 0;
  for (size_t i = 1; i < kNumAbortCauses; ++i) {
    if (static_cast<AbortCause>(i) == AbortCause::kCensored) continue;
    total += counts[i];
  }
  return total;
}

void AbortBreakdown::Accumulate(const AbortBreakdown& other) {
  for (size_t i = 0; i < kNumAbortCauses; ++i) counts[i] += other.counts[i];
}

std::string AbortBreakdown::ToString() const {
  return StrFormat(
      "control=%llu mc=%llu loss=%llu desync=%llu uplink=%llu censored=%llu",
      static_cast<unsigned long long>(Count(AbortCause::kControlConflict)),
      static_cast<unsigned long long>(Count(AbortCause::kMcConflict)),
      static_cast<unsigned long long>(Count(AbortCause::kChannelLoss)),
      static_cast<unsigned long long>(Count(AbortCause::kDesyncStall)),
      static_cast<unsigned long long>(Count(AbortCause::kUplinkReject)),
      static_cast<unsigned long long>(Count(AbortCause::kCensored)));
}

TraceRing::TraceRing(size_t capacity) : buf_(capacity == 0 ? 1 : capacity) {}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  std::vector<TraceEvent> out;
  const size_t n = buf_.size();
  const size_t kept = count_ < n ? static_cast<size_t>(count_) : n;
  out.reserve(kept);
  const uint64_t first = count_ - kept;
  for (uint64_t i = first; i < count_; ++i) {
    out.push_back(buf_[static_cast<size_t>(i % n)]);
  }
  return out;
}

Tracer::Tracer(size_t capacity_per_track)
    : capacity_(capacity_per_track == 0 ? 1 : capacity_per_track) {}

TraceRing* Tracer::AddTrack(std::string name) {
  rings_.push_back(std::make_unique<TraceRing>(capacity_));
  names_.push_back(std::move(name));
  return rings_.back().get();
}

uint64_t Tracer::TotalDropped() const {
  uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

uint64_t Tracer::TotalRecorded() const {
  uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->recorded();
  return total;
}

}  // namespace bcc
