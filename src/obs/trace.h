// Event-tracing and abort-attribution layer (observability subsystem).
//
// Both engines emit the same typed events — cycle start, broadcast tx /
// frame rx, read, validation, commit, abort, desync/resync, stall — into
// per-track fixed-capacity ring buffers. A track corresponds to one logical
// thread (the server, or one client): in the concurrent engine every track
// is written by exactly one OS thread and tracks are registered before the
// worker threads spawn, so recording needs no locks and is TSan-clean by
// construction. When no tracer is attached, every call site guards on a
// null ring pointer, so tracing disabled is a branch-on-null — it consumes
// no RNG draws and never perturbs timing or decisions (the observer-effect
// contract checked by tests/obs_sim_test.cc).
//
// Abort attribution: every abort carries a structured cause captured at the
// exact check that failed (client/read_txn.cc, server/validator.cc) or the
// loss/desync condition that preceded it (client/receiver.cc,
// client/delta_tracker.cc). Aborts are tallied per cause into an
// AbortBreakdown, reported in SimSummary/ConcurrentSummary and required to
// be bit-identical across engines by CrossCheckEngines.

#ifndef BCC_OBS_TRACE_H_
#define BCC_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/cycle_stamp.h"
#include "des/event_queue.h"
#include "history/object_id.h"

namespace bcc {

/// The event taxonomy. kCycleStart events carry the cycle's duration and
/// render as Perfetto slices; everything else is an instant on its track.
enum class TraceEventType : uint8_t {
  kCycleStart,   ///< server: one broadcast cycle (duration = cycle length)
  kBroadcastTx,  ///< server: control/frames put on the air (value = bits/frames)
  kFrameRx,      ///< client: one cycle's frames arrived (value = delivered)
  kRead,         ///< client: a read passed its read condition
  kValidation,   ///< server: an uplink commit validated (value = 1 ok / 0 reject)
  kCommit,       ///< server txn committed, or client txn completed (value = restarts)
  kAbort,        ///< client: an attempt aborted (abort field holds the cause)
  kDesync,       ///< client: delta tracker / receiver lost synchronization
  kResync,       ///< client: synchronization recovered
  kStall,        ///< client: read deferred a cycle (value: see kStall* codes)
};

std::string_view TraceEventTypeName(TraceEventType type);

/// kStall payloads: what forced the read to wait for the next cycle.
inline constexpr uint64_t kStallChannelLoss = 0;  ///< lost frame (channel mode)
inline constexpr uint64_t kStallDeltaDesync = 1;  ///< unusable delta tracker

/// Why a transaction attempt aborted. Causes are mutually exclusive per
/// abort; precedence when several conditions overlap is documented at the
/// classification sites (BroadcastSim::OnReadAbort and the concurrent
/// engine's mirror).
enum class AbortCause : uint8_t {
  kNone = 0,         ///< no abort recorded
  kControlConflict,  ///< F-family C(i, j) >= read cycle fired
  kMcConflict,       ///< Datacycle/R-Matrix MC(i) >= read cycle fired
  kChannelLoss,      ///< abort of an attempt that stalled on frame loss
  kDesyncStall,      ///< abort of an attempt that stalled on tracker desync
  kUplinkReject,     ///< server-side validation rejected an update txn
  kCensored,         ///< force-completed by the restart guard
};

inline constexpr size_t kNumAbortCauses = 7;

std::string_view AbortCauseName(AbortCause cause);

/// Structured cause of one abort, captured at the failing check. For
/// kControlConflict: reading ob_j failed because C(ob_i, ob_j) = c_ij >=
/// read_cycle (the cycle ob_i was read in). For kMcConflict: MC(ob_i) =
/// c_ij >= read_cycle while reading ob_j. For kUplinkReject: the read of
/// ob_i at read_cycle was overwritten at cycle c_ij. Loss/desync causes
/// keep the fields of the control check that subsequently failed.
struct AbortInfo {
  AbortCause cause = AbortCause::kNone;
  ObjectId ob_i = 0;
  ObjectId ob_j = 0;
  Cycle read_cycle = 0;
  Cycle c_ij = 0;

  bool operator==(const AbortInfo&) const = default;
};

/// One trace event. `value` is a type-specific payload (bits broadcast,
/// frames delivered, restart count, stall kind); `abort` is meaningful for
/// kAbort only.
struct TraceEvent {
  TraceEventType type = TraceEventType::kRead;
  SimTime time = 0;
  SimTime duration = 0;  ///< > 0 renders as a slice; 0 as an instant
  Cycle cycle = 0;
  ObjectId object = 0;
  uint64_t value = 0;
  AbortInfo abort;
};

/// Per-cause abort tally. The unit of the cross-engine identity check:
/// two engines that made identical decisions on identical seeds must
/// produce equal breakdowns.
struct AbortBreakdown {
  std::array<uint64_t, kNumAbortCauses> counts{};

  void Record(AbortCause cause) { ++counts[static_cast<size_t>(cause)]; }
  uint64_t Count(AbortCause cause) const { return counts[static_cast<size_t>(cause)]; }
  /// Aborts of transaction attempts (excludes kNone and the kCensored
  /// completion marker).
  uint64_t TotalAborts() const;
  void Accumulate(const AbortBreakdown& other);
  /// "control=3 mc=0 loss=1 desync=0 uplink=0 censored=0"
  std::string ToString() const;

  bool operator==(const AbortBreakdown&) const = default;
};

/// Fixed-capacity single-writer event ring. Overwrites the oldest event
/// when full and counts what it dropped; Snapshot() returns the surviving
/// events oldest-first. One ring is owned (written) by exactly one thread;
/// snapshots are taken only after the run joined its threads.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  void Record(const TraceEvent& event) {
    buf_[static_cast<size_t>(count_ % buf_.size())] = event;
    ++count_;
  }

  size_t capacity() const { return buf_.size(); }
  uint64_t recorded() const { return count_; }
  uint64_t dropped() const { return count_ > buf_.size() ? count_ - buf_.size() : 0; }

  /// The buffered events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

 private:
  std::vector<TraceEvent> buf_;
  uint64_t count_ = 0;
};

/// A set of named tracks, one ring each. AddTrack is NOT thread-safe: the
/// engines register every track during setup, before worker threads spawn;
/// afterwards each returned ring is written by its one owning thread only.
class Tracer {
 public:
  explicit Tracer(size_t capacity_per_track = 4096);

  /// Registers a track and returns its ring (owned by the tracer, stable
  /// for the tracer's lifetime).
  TraceRing* AddTrack(std::string name);

  size_t num_tracks() const { return rings_.size(); }
  const std::string& track_name(size_t i) const { return names_[i]; }
  const TraceRing& track(size_t i) const { return *rings_[i]; }
  size_t capacity_per_track() const { return capacity_; }

  /// Sum of events dropped across all tracks (ring overflow).
  uint64_t TotalDropped() const;
  uint64_t TotalRecorded() const;

 private:
  size_t capacity_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::vector<std::string> names_;
};

/// Null-safe recording helper for call sites holding an optional ring.
inline void TraceTo(TraceRing* ring, const TraceEvent& event) {
  if (ring != nullptr) ring->Record(event);
}

}  // namespace bcc

#endif  // BCC_OBS_TRACE_H_
