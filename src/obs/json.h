// Minimal JSON emission and validation for the observability exporters.
//
// JsonWriter builds syntactically valid JSON incrementally (comma and
// nesting management, string escaping, NaN/Inf mapped to null so the output
// always parses). ValidateJson is a strict recursive-descent syntax checker
// used by tests and smoke jobs to assert exporter output is well-formed
// without an external parser.

#ifndef BCC_OBS_JSON_H_
#define BCC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace bcc {

/// Incremental JSON writer. Usage:
///   JsonWriter w;
///   w.BeginObject().Key("a").Value(1).Key("b").BeginArray().Value(2.5)
///       .EndArray().EndObject();
///   std::string json = std::move(w).Take();
/// The caller is responsible for well-formed call sequences (a Key before
/// every object member, balanced Begin/End); the writer handles commas,
/// escaping, and non-finite doubles.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view s);
  JsonWriter& Value(const char* s) { return Value(std::string_view(s)); }
  JsonWriter& Value(bool b);
  JsonWriter& Value(double d);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(uint32_t v) { return Value(static_cast<uint64_t>(v)); }
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  /// Splices pre-rendered JSON in value position (caller guarantees
  /// validity; used to embed one document in another).
  JsonWriter& RawValue(std::string_view json);

  const std::string& str() const { return out_; }
  std::string Take() && { return std::move(out_); }

 private:
  void Comma();

  std::string out_;
  /// One entry per open container: true until its first element was written.
  std::vector<bool> first_;
  bool after_key_ = false;
};

/// Escapes `s` as a JSON string literal including the surrounding quotes.
std::string JsonEscape(std::string_view s);

/// Strict syntax check of a complete JSON document (single value, RFC 8259
/// grammar, no trailing garbage). Returns InvalidArgument naming the byte
/// offset of the first error.
Status ValidateJson(std::string_view text);

}  // namespace bcc

#endif  // BCC_OBS_JSON_H_
