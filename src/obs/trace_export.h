// Exporters for the tracing subsystem.
//
// ExportChromeTrace renders a Tracer as Chrome trace_event JSON (the
// "JSON Array Format" wrapped in an object), loadable in Perfetto
// (ui.perfetto.dev) and chrome://tracing: one named track per registered
// ring (thread_name metadata), cycle slices as complete events, everything
// else as instants. Timestamps are simulator bit-units reported in the
// trace's microsecond field — absolute magnitudes are meaningless, relative
// layout is exact.

#ifndef BCC_OBS_TRACE_EXPORT_H_
#define BCC_OBS_TRACE_EXPORT_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/trace.h"

namespace bcc {

/// Renders every track of `tracer` as a Chrome trace_event JSON document.
std::string ExportChromeTrace(const Tracer& tracer);

/// Writes `content` to `path` atomically enough for CLI use (truncate +
/// write + close). Returns Internal on I/O failure.
Status WriteTextFile(const std::string& path, std::string_view content);

}  // namespace bcc

#endif  // BCC_OBS_TRACE_EXPORT_H_
