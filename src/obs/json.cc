#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/format.h"

namespace bcc {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::Comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (first_.empty()) return;
  if (first_.back()) {
    first_.back() = false;
  } else {
    out_ += ',';
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Comma();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Comma();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  Comma();
  out_ += JsonEscape(key);
  out_ += ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view s) {
  Comma();
  out_ += JsonEscape(s);
  return *this;
}

JsonWriter& JsonWriter::Value(bool b) {
  Comma();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(double d) {
  Comma();
  if (!std::isfinite(d)) {
    out_ += "null";  // JSON has no NaN/Inf literals
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  Comma();
  out_ += StrFormat("%llu", static_cast<unsigned long long>(v));
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  Comma();
  out_ += StrFormat("%lld", static_cast<long long>(v));
  return *this;
}

JsonWriter& JsonWriter::RawValue(std::string_view json) {
  Comma();
  out_ += json;
  return *this;
}

namespace {

/// Recursive-descent JSON syntax checker (RFC 8259).
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  Status Check() {
    SkipWs();
    BCC_RETURN_IF_ERROR(Value(0));
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing characters after document");
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status Error(const char* what) const {
    return Status::InvalidArgument(StrFormat("invalid JSON at byte %zu: %s", pos_, what));
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!Eof()) {
      const char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (Eof() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return Error("bad literal");
    pos_ += word.size();
    return Status::OK();
  }

  Status String() {
    if (!Consume('"')) return Error("expected string");
    while (true) {
      if (Eof()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return Status::OK();
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') continue;
      if (Eof()) return Error("unterminated escape");
      const char e = text_[pos_++];
      if (e == 'u') {
        for (int i = 0; i < 4; ++i) {
          if (Eof() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
            return Error("bad \\u escape");
          }
          ++pos_;
        }
      } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
                 e != 'r' && e != 't') {
        return Error("bad escape character");
      }
    }
  }

  Status Number() {
    Consume('-');
    if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Error("expected digit");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Consume('.')) {
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("expected fraction digit");
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (!Eof() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!Eof() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("expected exponent digit");
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return Status::OK();
  }

  Status Value(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (Eof()) return Error("expected value");
    switch (Peek()) {
      case '{': {
        ++pos_;
        SkipWs();
        if (Consume('}')) return Status::OK();
        while (true) {
          SkipWs();
          BCC_RETURN_IF_ERROR(String());
          SkipWs();
          if (!Consume(':')) return Error("expected ':'");
          SkipWs();
          BCC_RETURN_IF_ERROR(Value(depth + 1));
          SkipWs();
          if (Consume('}')) return Status::OK();
          if (!Consume(',')) return Error("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos_;
        SkipWs();
        if (Consume(']')) return Status::OK();
        while (true) {
          SkipWs();
          BCC_RETURN_IF_ERROR(Value(depth + 1));
          SkipWs();
          if (Consume(']')) return Status::OK();
          if (!Consume(',')) return Error("expected ',' or ']'");
        }
      }
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status ValidateJson(std::string_view text) { return JsonChecker(text).Check(); }

}  // namespace bcc
