#include "cc/conflict_serializability.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "history/history_parser.h"

namespace bcc {
namespace {

TEST(ConflictSerializabilityTest, SerialHistoryIsSerializable) {
  const History h = MustParseHistory("r1(x) w1(y) c1 r2(y) w2(z) c2");
  EXPECT_TRUE(IsConflictSerializable(h));
  const auto order = ConflictSerializationOrder(h);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<TxnId>{1, 2}));
}

TEST(ConflictSerializabilityTest, ClassicLostUpdateCycle) {
  // r1(x) r2(x) w1(x) w2(x): t1 -> t2 (r1 before w2) and t2 -> t1.
  const History h = MustParseHistory("r1(x) r2(x) w1(x) w2(x) c1 c2");
  EXPECT_FALSE(IsConflictSerializable(h));
  EXPECT_FALSE(ConflictSerializationOrder(h).ok());
}

TEST(ConflictSerializabilityTest, InterleavedButSerializable) {
  const History h = MustParseHistory("r1(x) r2(y) w1(x) w2(y) c1 c2");
  EXPECT_TRUE(IsConflictSerializable(h));  // disjoint objects: no conflicts
}

TEST(ConflictSerializabilityTest, Example1FullHistoryNotSerializable) {
  // Paper Example 1 (history 1.1): not (conflict) serializable when both
  // read-only transactions commit.
  const History h =
      MustParseHistory("r1(IBM) w2(IBM) c2 r3(IBM) r3(Sun) w4(Sun) c4 r1(Sun) c1 c3");
  EXPECT_FALSE(IsConflictSerializable(h));
}

TEST(ConflictSerializabilityTest, Example1UpdateSubHistorySerializable) {
  const History h =
      MustParseHistory("r1(IBM) w2(IBM) c2 r3(IBM) r3(Sun) w4(Sun) c4 r1(Sun) c1 c3");
  EXPECT_TRUE(IsConflictSerializable(h.UpdateSubHistory()));
}

TEST(ConflictSerializabilityTest, Example2UpdateSubHistorySerializable) {
  // Paper Example 2 (history 2.1): update transactions t1, t2, t4 are
  // serializable in order t4; t1; t2.
  const History h = MustParseHistory(
      "r1(IBM) w2(IBM) c2 r3(IBM) r3(Sun) c3 w4(Sun) c4 r1(Sun) w1(DEC) c1");
  const History u = h.UpdateSubHistory();
  EXPECT_TRUE(IsConflictSerializable(u));
  const auto order = ConflictSerializationOrder(u);
  ASSERT_TRUE(order.ok());
  auto pos = [&](TxnId t) {
    return std::find(order->begin(), order->end(), t) - order->begin();
  };
  EXPECT_LT(pos(4), pos(1));
  EXPECT_LT(pos(1), pos(2));
}

TEST(ConflictSerializabilityTest, AbortedTxnsExcluded) {
  // Without the abort this is the lost-update cycle; aborting t2 clears it.
  const History h = MustParseHistory("r1(x) r2(x) w1(x) w2(x) c1 a2");
  EXPECT_TRUE(IsConflictSerializable(h));
  const auto sg = BuildSerializationGraph(h);
  EXPECT_FALSE(sg.HasNode(2));
}

TEST(ConflictSerializabilityTest, ActiveTxnsExcluded) {
  const History h = MustParseHistory("r1(x) r2(x) w1(x) w2(x) c1");
  EXPECT_TRUE(IsConflictSerializable(h));  // t2 never committed
}

TEST(ConflictSerializabilityTest, ReadOnlyConflictsStillCount) {
  // w-r and r-w conflicts involving a read-only txn create the cycle
  // t2 -> t1 (w2(x) before r1(x)) and t1 -> t2 (r1(y) before w2(y)).
  const History h = MustParseHistory("r1(y) w2(x) w2(y) c2 r1(x) c1");
  EXPECT_FALSE(IsConflictSerializable(h));
}

TEST(ConflictSerializabilityTest, WwConflictsOrdered) {
  const History h = MustParseHistory("w1(x) w2(x) w1(y) c1 c2");
  // t1 -> t2 (x) and no t2 -> t1: serializable as 1, 2.
  const auto order = ConflictSerializationOrder(h);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<TxnId>{1, 2}));
}

TEST(ConflictSerializabilityTest, GraphEdgesMatchConflicts) {
  const History h = MustParseHistory("r1(x) w2(x) c2 r3(z) w1(z) c1 c3");
  const Digraph sg = BuildSerializationGraph(h);
  EXPECT_TRUE(sg.HasEdge(1, 2));   // r1(x) before w2(x)
  EXPECT_TRUE(sg.HasEdge(3, 1));   // r3(z) before w1(z)
  EXPECT_FALSE(sg.HasEdge(2, 1));
  EXPECT_EQ(sg.NumEdges(), 2u);
}

}  // namespace
}  // namespace bcc
