// End-to-end integration audit: replay complete simulation runs through the
// paper's correctness oracles.
//
// Every committed client read-only transaction must have read exactly the
// committed values as of the beginning of the cycles it read in (currency),
// and the resulting global history must pass APPROX (mutual consistency);
// Datacycle runs must additionally be conflict serializable. This closes the
// loop between the protocol implementations (matrix read conditions driven
// by the simulator) and the abstract theory (Section 3.1 / Theorem 1).

#include <gtest/gtest.h>

#include "cc/approx.h"
#include "cc/conflict_serializability.h"
#include "sim/broadcast_sim.h"

namespace bcc {
namespace {

struct OracleCase {
  const char* name;
  Algorithm algorithm;
  uint32_t num_objects;
  uint32_t client_len;
  uint64_t server_interval;
  unsigned ts_bits;
  uint64_t seed;
};

SimConfig OracleConfig(const OracleCase& oc) {
  SimConfig c;
  c.algorithm = oc.algorithm;
  c.num_objects = oc.num_objects;
  c.object_size_bits = 256;
  c.client_txn_length = oc.client_len;
  c.server_txn_length = 4;
  c.server_txn_interval = oc.server_interval;
  c.mean_inter_op_delay = 1500;
  c.mean_inter_txn_delay = 3000;
  c.num_client_txns = 40;
  c.warmup_txns = 10;
  c.timestamp_bits = oc.ts_bits;
  c.seed = oc.seed;
  c.record_history = true;
  return c;
}

class SimOracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(SimOracleTest, RunPassesConsistencyAudit) {
  BroadcastSim sim(OracleConfig(GetParam()));
  auto summary = sim.Run();
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(sim.VerifyOracle(), Status::OK());
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, SimOracleTest,
    ::testing::Values(
        OracleCase{"fmatrix", Algorithm::kFMatrix, 12, 3, 20000, 8, 1},
        OracleCase{"fmatrix_hot", Algorithm::kFMatrix, 6, 4, 8000, 8, 2},
        OracleCase{"fmatrix_tiny_ts", Algorithm::kFMatrix, 10, 3, 15000, 2, 3},
        OracleCase{"fmatrix_no", Algorithm::kFMatrixNo, 12, 3, 20000, 8, 4},
        OracleCase{"rmatrix", Algorithm::kRMatrix, 12, 3, 20000, 8, 5},
        OracleCase{"rmatrix_hot", Algorithm::kRMatrix, 6, 4, 8000, 8, 6},
        OracleCase{"datacycle", Algorithm::kDatacycle, 12, 3, 20000, 8, 7},
        OracleCase{"datacycle_hot", Algorithm::kDatacycle, 8, 3, 10000, 8, 8}),
    [](const ::testing::TestParamInfo<OracleCase>& info) { return info.param.name; });

TEST(SimOracleTest, OracleHistoryStructure) {
  OracleCase oc{"x", Algorithm::kFMatrix, 10, 3, 20000, 8, 9};
  BroadcastSim sim(OracleConfig(oc));
  ASSERT_TRUE(sim.Run().ok());
  auto oracle = sim.BuildOracleHistory();
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  EXPECT_TRUE(oracle->Validate().ok());
  // All 40 client transactions committed and present.
  EXPECT_EQ(oracle->CommittedReadOnlyTxns().size(), 40u);
  // Server transactions appear and are all updates.
  EXPECT_FALSE(oracle->CommittedUpdateTxns().empty());
  for (TxnId t : oracle->CommittedUpdateTxns()) EXPECT_LT(t, kClientTxnIdBase);
  // Serial server execution: the update sub-history is trivially conflict
  // serializable.
  EXPECT_TRUE(IsConflictSerializable(oracle->UpdateSubHistory()));
}

TEST(SimOracleTest, GroupedSpectrumRunsStayConsistent) {
  // The n x g grouped read condition is strictly more conservative than
  // full F-Matrix, so grouped runs must pass the same audit.
  for (uint32_t groups : {2u, 4u, 6u}) {
    OracleCase oc{"grouped", Algorithm::kFMatrix, 12, 3, 15000, 8, 30 + groups};
    SimConfig config = OracleConfig(oc);
    config.num_groups = groups;
    BroadcastSim sim(config);
    ASSERT_TRUE(sim.Run().ok());
    EXPECT_EQ(sim.VerifyOracle(), Status::OK()) << "groups=" << groups;
  }
}

TEST(SimOracleTest, MultiSpeedCachedMixedRunStaysConsistent) {
  // Everything at once: multi-speed disk, skewed access, caching, client
  // updates, several clients — the audit must still hold.
  SimConfig c;
  c.algorithm = Algorithm::kFMatrix;
  c.num_objects = 16;
  c.object_size_bits = 256;
  c.client_txn_length = 3;
  c.server_txn_length = 4;
  c.server_txn_interval = 20000;
  c.mean_inter_op_delay = 1500;
  c.mean_inter_txn_delay = 3000;
  c.num_client_txns = 60;
  c.warmup_txns = 20;
  c.num_clients = 3;
  c.client_update_fraction = 0.2;
  c.hot_set_size = 5;
  c.hot_broadcast_frequency = 3;
  c.client_hot_access_fraction = 0.7;
  c.server_hot_access_fraction = 0.7;
  c.enable_cache = true;
  c.cache_currency_bound = 5'000'000;
  c.seed = 99;
  c.record_history = true;
  BroadcastSim sim(c);
  ASSERT_TRUE(sim.Run().ok());
  auto oracle = sim.BuildOracleHistory();
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  const ApproxResult approx = CheckApprox(*oracle);
  EXPECT_TRUE(approx.accepted) << approx.reason;
}

TEST(SimOracleTest, CachedRunsStayConsistent) {
  // The Section 3.3 extension must preserve mutual consistency even though
  // cached reads observe old cycles.
  for (Algorithm a : {Algorithm::kFMatrix, Algorithm::kRMatrix}) {
    OracleCase oc{"cache", a, 8, 3, 15000, 8, 10};
    SimConfig config = OracleConfig(oc);
    config.enable_cache = true;
    config.cache_currency_bound = 30'000'000;
    BroadcastSim sim(config);
    ASSERT_TRUE(sim.Run().ok());
    auto oracle = sim.BuildOracleHistory();
    ASSERT_TRUE(oracle.ok());
    const ApproxResult approx = CheckApprox(*oracle);
    EXPECT_TRUE(approx.accepted) << AlgorithmName(a) << ": " << approx.reason;
  }
}

}  // namespace
}  // namespace bcc
