#include "server/exec/txn_processor.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <string_view>
#include <vector>

#include "cc/conflict_serializability.h"
#include "server/txn_manager.h"

namespace bcc {
namespace {

ServerTxn MakeTxn(TxnId id, std::vector<ObjectId> reads, std::vector<ObjectId> writes) {
  ServerTxn t;
  t.id = id;
  t.read_set = std::move(reads);
  t.write_set = std::move(writes);
  return t;
}

/// Replays the committed order through a fresh per-commit-maintenance
/// manager and checks the batched fold produced bit-identical server state.
void ExpectMatchesSequentialOracle(uint32_t num_objects,
                                   const std::vector<CommittedServerTxn>& committed) {
  ServerTxnManager folded(num_objects);  // batched ApplyCommitBatch path
  TxnManagerOptions oracle_options;
  oracle_options.batch_commit_maintenance = false;
  ServerTxnManager oracle(num_objects, oracle_options);
  FoldIntoManager(committed, folded, /*cycle=*/1);
  for (const CommittedServerTxn& c : committed) oracle.ExecuteAndCommit(c.txn, /*cycle=*/1);
  EXPECT_TRUE(folded.f_matrix() == oracle.f_matrix());
  EXPECT_TRUE(folded.mc_vector() == oracle.mc_vector());
  EXPECT_EQ(folded.store().committed(), oracle.store().committed());
}

TEST(TxnProcessorTest, SequentialSchemeCommitsInSubmissionOrder) {
  TxnProcessor proc(/*num_objects=*/4, UpdateScheme::kSequential, /*num_workers=*/4);
  const std::vector<ServerTxn> txns = {
      MakeTxn(1, {}, {0}),
      MakeTxn(2, {0}, {1}),
      MakeTxn(3, {0, 1}, {2}),
  };
  const auto committed = proc.ExecuteBatch(txns);
  ASSERT_EQ(committed.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(committed[i].txn.id, txns[i].id);
    EXPECT_EQ(committed[i].aborts, 0u);
  }
  // txn 2 and 3 read what txn 1 installed.
  EXPECT_EQ(committed[1].reads[0].writer, 1u);
  EXPECT_EQ(committed[2].reads[0].writer, 1u);
  EXPECT_EQ(committed[2].reads[1].writer, 2u);
  EXPECT_TRUE(VerifySerializable(4, committed).ok());
  ExpectMatchesSequentialOracle(4, committed);
}

class TxnProcessorSchemeTest : public ::testing::TestWithParam<UpdateScheme> {};

TEST_P(TxnProcessorSchemeTest, SmallContendedBatchIsSerializable) {
  TxnProcessor proc(/*num_objects=*/4, GetParam(), /*num_workers=*/2);
  const std::vector<ServerTxn> txns = {
      MakeTxn(1, {2}, {0}),
      MakeTxn(2, {0}, {1}),
      MakeTxn(3, {1}, {0, 2}),
      MakeTxn(4, {0, 2}, {3}),
  };
  const auto committed = proc.ExecuteBatch(txns);
  ASSERT_EQ(committed.size(), 4u);
  for (size_t i = 1; i < committed.size(); ++i) {
    EXPECT_GT(committed[i].commit_seq, committed[i - 1].commit_seq);
  }
  const Status s = VerifySerializable(4, committed);
  EXPECT_TRUE(s.ok()) << s.ToString();
  if (GetParam() != UpdateScheme::kMvcc) {
    const History h = BuildInterleavedHistory(committed);
    EXPECT_TRUE(h.Validate().ok());
    EXPECT_TRUE(IsConflictSerializable(h));
  }
  ExpectMatchesSequentialOracle(4, committed);
  EXPECT_EQ(proc.stats().committed, 4u);
  EXPECT_EQ(proc.stats().batches, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, TxnProcessorSchemeTest,
                         ::testing::Values(UpdateScheme::kSequential,
                                           UpdateScheme::kTwoPhaseLocking, UpdateScheme::kOcc,
                                           UpdateScheme::kMvcc),
                         [](const auto& info) {
                           return std::string(UpdateSchemeName(info.param)) == "2pl"
                                      ? std::string("TwoPhaseLocking")
                                      : std::string(UpdateSchemeName(info.param));
                         });

TEST(TxnProcessorTest, CommittedStatePersistsAcrossBatches) {
  TxnProcessor proc(/*num_objects=*/2, UpdateScheme::kTwoPhaseLocking, /*num_workers=*/2);
  auto first = proc.ExecuteBatch(std::vector<ServerTxn>{MakeTxn(1, {}, {0})});
  auto second = proc.ExecuteBatch(std::vector<ServerTxn>{MakeTxn(2, {0}, {1})});
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].reads[0].writer, 1u);  // sees the previous batch's commit
  std::vector<CommittedServerTxn> all;
  all.insert(all.end(), first.begin(), first.end());
  all.insert(all.end(), second.begin(), second.end());
  EXPECT_TRUE(VerifySerializable(2, all).ok());
  EXPECT_EQ(proc.stats().batches, 2u);
}

TEST(TxnProcessorTest, MvccGcRunsAtTheBatchBarrier) {
  TxnProcessor proc(/*num_objects=*/1, UpdateScheme::kMvcc, /*num_workers=*/2);
  const std::vector<ServerTxn> txns = {
      MakeTxn(1, {}, {0}),
      MakeTxn(2, {}, {0}),
      MakeTxn(3, {}, {0}),
  };
  const auto committed = proc.ExecuteBatch(txns);
  ASSERT_EQ(committed.size(), 3u);
  // Three versions were installed on top of t0; the epoch GC at the barrier
  // keeps only the newest.
  EXPECT_GE(proc.stats().mvcc_versions_pruned, 3u);
}

// Satellite test (ISSUE 6): under 2PL wait-die, the younger of two writers
// on one object dies, retries with its original priority, and commits after
// the older one — and only the surviving attempt is handed to the fold, so
// an aborted attempt can never reach ApplyCommitBatch.
TEST(TxnProcessorTest, TwoPhaseLockingWaitDieAbortsYoungerAndRetries) {
  TxnProcessor proc(/*num_objects=*/2, UpdateScheme::kTwoPhaseLocking, /*num_workers=*/2);

  std::mutex mu;
  std::condition_variable cv;
  bool older_locked = false;
  int younger_deaths = 0;
  proc.set_test_hook([&](TxnId txn, std::string_view stage) {
    std::unique_lock<std::mutex> lock(mu);
    if (txn == 1 && stage == "2pl:locked") {
      // Txn 1 (older: submitted first) holds its locks open until txn 2 has
      // died on the conflict at least once.
      older_locked = true;
      cv.notify_all();
      cv.wait(lock, [&] { return younger_deaths >= 1; });
    } else if (txn == 2 && stage == "start") {
      // Keep txn 2 from racing ahead of txn 1's lock acquisition.
      cv.wait(lock, [&] { return older_locked; });
    } else if (txn == 2 && stage == "2pl:die") {
      younger_deaths += 1;
      cv.notify_all();
    }
  });

  const std::vector<ServerTxn> txns = {
      MakeTxn(1, {}, {0}),
      MakeTxn(2, {}, {0}),
  };
  const auto committed = proc.ExecuteBatch(txns);
  ASSERT_EQ(committed.size(), 2u);
  EXPECT_EQ(committed[0].txn.id, 1u);  // the older transaction commits first
  EXPECT_EQ(committed[1].txn.id, 2u);
  EXPECT_GE(committed[1].aborts, 1u);
  EXPECT_GE(proc.stats().lock_die_aborts, 1u);
  // The victim's surviving attempt left exactly one trace: w2(ob0) c2.
  ASSERT_EQ(committed[1].ops.size(), 2u);
  EXPECT_EQ(committed[1].ops[0].op, Operation::Write(2, 0));
  EXPECT_EQ(committed[1].ops[1].op, Operation::Commit(2));
  EXPECT_TRUE(VerifySerializable(2, committed).ok());
  ExpectMatchesSequentialOracle(2, committed);
}

// Satellite test (ISSUE 6): an OCC transaction whose read set is overwritten
// inside its window fails backward validation, retries, observes the new
// writer, and serializes after it; the failed attempt's writes are never
// installed and never reach ApplyCommitBatch.
TEST(TxnProcessorTest, OccValidationFailureAbortsAndRetries) {
  TxnProcessor proc(/*num_objects=*/2, UpdateScheme::kOcc, /*num_workers=*/2);

  std::mutex mu;
  std::condition_variable cv;
  bool reader_read_done = false;
  bool writer_installed = false;
  proc.set_test_hook([&](TxnId txn, std::string_view stage) {
    std::unique_lock<std::mutex> lock(mu);
    if (txn == 1 && stage == "occ:read-done" && !writer_installed) {
      // First attempt only: hold txn 1 between read phase and validation
      // until txn 2 has installed a conflicting write.
      reader_read_done = true;
      cv.notify_all();
      cv.wait(lock, [&] { return writer_installed; });
    } else if (txn == 2 && stage == "start") {
      cv.wait(lock, [&] { return reader_read_done; });
    } else if (txn == 2 && stage == "occ:install") {
      writer_installed = true;
      cv.notify_all();
    }
  });

  const std::vector<ServerTxn> txns = {
      MakeTxn(1, {0}, {1}),
      MakeTxn(2, {}, {0}),
  };
  const auto committed = proc.ExecuteBatch(txns);
  ASSERT_EQ(committed.size(), 2u);
  EXPECT_EQ(committed[0].txn.id, 2u);  // the writer serialized first
  EXPECT_EQ(committed[1].txn.id, 1u);
  EXPECT_GE(committed[1].aborts, 1u);
  EXPECT_GE(proc.stats().occ_validation_aborts, 1u);
  // The surviving attempt observed txn 2's write.
  ASSERT_EQ(committed[1].reads.size(), 1u);
  EXPECT_EQ(committed[1].reads[0].writer, 2u);
  // Exactly one commit per transaction reaches the fold; the aborted
  // attempt's operations are gone (r1 w1 c1 — not doubled).
  ASSERT_EQ(committed[1].ops.size(), 3u);
  EXPECT_TRUE(VerifySerializable(2, committed).ok());
  const History h = BuildInterleavedHistory(committed);
  EXPECT_TRUE(h.Validate().ok());
  EXPECT_TRUE(IsConflictSerializable(h));
  ExpectMatchesSequentialOracle(2, committed);
}

}  // namespace
}  // namespace bcc
