#include "history/random_history.h"

#include <gtest/gtest.h>

namespace bcc {
namespace {

TEST(RandomHistoryTest, StructurallyValid) {
  Rng rng(1);
  RandomHistoryOptions o;
  for (int i = 0; i < 200; ++i) {
    const History h = GenerateRandomHistory(o, &rng);
    EXPECT_TRUE(h.Validate().ok());
    EXPECT_TRUE(h.ValidateAppendixAForm().ok()) << h.ToString();
  }
}

TEST(RandomHistoryTest, TxnCountsMatchOptions) {
  Rng rng(2);
  RandomHistoryOptions o;
  o.num_update_txns = 4;
  o.num_read_only_txns = 3;
  const History h = GenerateRandomHistory(o, &rng);
  size_t updates = 0, read_only = 0;
  for (TxnId t : h.TxnIds()) {
    (h.Txn(t).IsUpdate() ? updates : read_only)++;
  }
  EXPECT_EQ(updates, 4u);
  EXPECT_EQ(read_only, 3u);
}

TEST(RandomHistoryTest, UpdateTxnsAlwaysWrite) {
  Rng rng(3);
  RandomHistoryOptions o;
  o.num_update_txns = 5;
  o.num_read_only_txns = 0;
  for (int i = 0; i < 50; ++i) {
    const History h = GenerateRandomHistory(o, &rng);
    for (TxnId t : h.TxnIds()) EXPECT_FALSE(h.Txn(t).write_set.empty());
  }
}

TEST(RandomHistoryTest, SerialUpdatesAreContiguous) {
  Rng rng(4);
  RandomHistoryOptions o;
  o.serial_updates = true;
  o.num_update_txns = 5;
  o.num_read_only_txns = 2;
  for (int trial = 0; trial < 100; ++trial) {
    const History h = GenerateRandomHistory(o, &rng);
    // Once an update transaction's first op appears, no other update txn's
    // op may appear until its terminal event.
    TxnId open_update = kNoTxn;
    for (const Operation& op : h.ops()) {
      if (!h.Txn(op.txn).IsUpdate()) continue;
      if (open_update == kNoTxn) {
        open_update = op.txn;
      } else {
        EXPECT_EQ(op.txn, open_update) << h.ToString();
      }
      if (op.type == OpType::kCommit || op.type == OpType::kAbort) open_update = kNoTxn;
    }
  }
}

TEST(RandomHistoryTest, AbortProbabilityRespected) {
  Rng rng(5);
  RandomHistoryOptions o;
  o.abort_probability = 1.0;
  const History h = GenerateRandomHistory(o, &rng);
  for (TxnId t : h.TxnIds()) {
    EXPECT_EQ(h.Txn(t).outcome, TxnOutcome::kAborted);
  }
}

TEST(RandomHistoryTest, DeterministicGivenSeed) {
  RandomHistoryOptions o;
  Rng a(42), b(42);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(GenerateRandomHistory(o, &a).ToString(), GenerateRandomHistory(o, &b).ToString());
  }
}

}  // namespace
}  // namespace bcc
