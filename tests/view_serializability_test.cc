#include "cc/view_serializability.h"

#include <gtest/gtest.h>

#include "cc/conflict_serializability.h"
#include "history/history_parser.h"
#include "history/random_history.h"

namespace bcc {
namespace {

TEST(ViewSerializabilityTest, SerialIsViewSerializable) {
  const History h = MustParseHistory("r1(x) w1(y) c1 r2(y) w2(x) c2");
  auto vsr = IsViewSerializable(h);
  ASSERT_TRUE(vsr.ok());
  EXPECT_TRUE(*vsr);
}

TEST(ViewSerializabilityTest, LostUpdateNotViewSerializable) {
  const History h = MustParseHistory("r1(x) r2(x) w1(x) w2(x) c1 c2");
  auto vsr = IsViewSerializable(h);
  ASSERT_TRUE(vsr.ok());
  EXPECT_FALSE(*vsr);
}

TEST(ViewSerializabilityTest, BlindWritesViewButNotConflictSerializable) {
  // The classic VSR \ CSR witness: t2's blind write is overwritten by t3's
  // final write, so w1/w2/w3 ww "conflicts" don't matter to any reader.
  const History h = MustParseHistory("r1(x) w2(x) c2 w1(x) c1 w3(x) c3");
  EXPECT_FALSE(IsConflictSerializable(h));
  auto vsr = IsViewSerializable(h);
  ASSERT_TRUE(vsr.ok());
  EXPECT_TRUE(*vsr) << "serial order 1,2,3 is view equivalent";
}

TEST(ViewSerializabilityTest, WitnessOrderIsViewEquivalent) {
  const History h = MustParseHistory("r1(x) w2(x) c2 w1(x) c1 w3(x) c3");
  const auto order = ViewSerializationOrder(h);
  ASSERT_TRUE(order.ok());
  EXPECT_TRUE(IsViewEquivalentToSerial(h, *order));
}

TEST(ViewSerializabilityTest, ViewEquivalenceChecksReadSources) {
  const History h = MustParseHistory("w1(x) c1 r2(x) c2");
  EXPECT_TRUE(IsViewEquivalentToSerial(h, {1, 2}));
  EXPECT_FALSE(IsViewEquivalentToSerial(h, {2, 1}));  // r2 would read from t0
}

TEST(ViewSerializabilityTest, ViewEquivalenceChecksFinalWrites) {
  const History h = MustParseHistory("w1(x) w2(x) c1 c2");
  EXPECT_TRUE(IsViewEquivalentToSerial(h, {1, 2}));
  EXPECT_FALSE(IsViewEquivalentToSerial(h, {2, 1}));  // final writer differs
}

TEST(ViewSerializabilityTest, IncompleteOrderRejected) {
  const History h = MustParseHistory("w1(x) c1 w2(x) c2");
  EXPECT_FALSE(IsViewEquivalentToSerial(h, {1}));
}

TEST(ViewSerializabilityTest, AbortedTxnsIgnored) {
  const History h = MustParseHistory("r1(x) r2(x) w1(x) w2(x) c1 a2");
  auto vsr = IsViewSerializable(h);
  ASSERT_TRUE(vsr.ok());
  EXPECT_TRUE(*vsr);
}

TEST(ViewSerializabilityTest, Example1NotViewSerializable) {
  // Paper Example 1: serialization demands t1 < t2, t2 < t3, t3 < t4,
  // t4 < t1 — impossible.
  const History h =
      MustParseHistory("r1(IBM) w2(IBM) c2 r3(IBM) r3(Sun) w4(Sun) c4 r1(Sun) c1 c3");
  auto vsr = IsViewSerializable(h);
  ASSERT_TRUE(vsr.ok());
  EXPECT_FALSE(*vsr);
}

TEST(ViewSerializabilityTest, Example2NotViewSerializable) {
  const History h = MustParseHistory(
      "r1(IBM) w2(IBM) c2 r3(IBM) r3(Sun) c3 w4(Sun) c4 r1(Sun) w1(DEC) c1");
  auto vsr = IsViewSerializable(h);
  ASSERT_TRUE(vsr.ok());
  EXPECT_FALSE(*vsr);
}

TEST(ViewSerializabilityTest, Example2ServerVisibleSubHistorySerializable) {
  // History 2.2: what the server can see (t3's reads invisible) IS
  // serializable — the paper's argument for why serializability over-aborts.
  const History h =
      MustParseHistory("r1(IBM) w2(IBM) c2 w4(Sun) c4 r1(Sun) w1(DEC) c1");
  auto vsr = IsViewSerializable(h);
  ASSERT_TRUE(vsr.ok());
  EXPECT_TRUE(*vsr);
}

TEST(ViewSerializabilityTest, TooManyTxnsReportsInvalidArgument) {
  // Interleaved (non-serial) history beyond the exact-search size limit.
  History h;
  for (TxnId t = 1; t <= kMaxExactViewTxns + 1; ++t) h.AppendWrite(t, 0);
  for (TxnId t = 1; t <= kMaxExactViewTxns + 1; ++t) h.AppendCommit(t);
  EXPECT_TRUE(IsViewSerializable(h).status().IsInvalidArgument());
}

TEST(ViewSerializabilityTest, SerialFastPathHasNoSizeLimit) {
  // A serial history is its own witness regardless of transaction count
  // (needed for the broadcast server's serial update sub-histories).
  History h;
  for (TxnId t = 1; t <= 100; ++t) {
    if (t > 1) h.AppendRead(t, 0);
    h.AppendWrite(t, 0);
    h.AppendCommit(t);
  }
  auto vsr = IsViewSerializable(h);
  ASSERT_TRUE(vsr.ok()) << vsr.status();
  EXPECT_TRUE(*vsr);
  const auto order = ViewSerializationOrder(h);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order->size(), 100u);
  EXPECT_EQ(order->front(), 1u);
  EXPECT_EQ(order->back(), 100u);
}

TEST(ViewSerializabilityTest, ConflictSerializableImpliesViewSerializable) {
  Rng rng(77);
  RandomHistoryOptions o;
  o.num_update_txns = 4;
  o.num_read_only_txns = 2;
  int checked = 0;
  for (int i = 0; i < 300; ++i) {
    const History h = GenerateRandomHistory(o, &rng);
    if (!IsConflictSerializable(h)) continue;
    auto vsr = IsViewSerializable(h);
    ASSERT_TRUE(vsr.ok());
    EXPECT_TRUE(*vsr) << h.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 20);
}

}  // namespace
}  // namespace bcc
