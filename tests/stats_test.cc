#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace bcc {
namespace {

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ConfidenceHalfWidth(), 0.0);
}

TEST(StreamingStatsTest, MeanAndVarianceMatchClosedForm) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic data set: 32 / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStatsTest, MergeEqualsSequential) {
  Rng rng(5);
  StreamingStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 100;
    all.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStatsTest, MergeManyUnequalShardsMatchesSingleStream) {
  // Parallel Welford: splitting a stream into shards of very different sizes
  // and merging in arbitrary order must reproduce the single-stream moments.
  Rng rng(99);
  StreamingStats all;
  StreamingStats shards[4];
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.NextExponential(3.0);
    all.Add(x);
    // Heavily skewed shard assignment: ~1/8, 1/8, 1/4, 1/2.
    shards[i % 8 == 0 ? 0 : i % 8 == 1 ? 1 : i % 4 == 1 ? 2 : 3].Add(x);
  }
  StreamingStats merged;
  for (const StreamingStats& s : {shards[2], shards[0], shards[3], shards[1]}) merged.Merge(s);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), all.variance(), 1e-6);
  EXPECT_NEAR(merged.sum(), all.sum(), 1e-6);
  EXPECT_DOUBLE_EQ(merged.min(), all.min());
  EXPECT_DOUBLE_EQ(merged.max(), all.max());
}

TEST(StreamingStatsTest, MergeWithEmptySides) {
  StreamingStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  StreamingStats a_copy = a;
  a.Merge(b);  // empty rhs: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.Merge(a_copy);  // empty lhs: adopt rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantileTwoSided(0.95), 1.959964, 1e-4);
  EXPECT_NEAR(NormalQuantileTwoSided(0.99), 2.575829, 1e-4);
  EXPECT_NEAR(NormalQuantileTwoSided(0.90), 1.644854, 1e-4);
}

TEST(StreamingStatsTest, ConfidenceIntervalCoversTrueMean) {
  // With 95% CIs over repeated experiments, the true mean should be covered
  // roughly 95% of the time.
  Rng rng(31);
  int covered = 0;
  const int experiments = 400;
  for (int e = 0; e < experiments; ++e) {
    StreamingStats s;
    for (int i = 0; i < 200; ++i) s.Add(rng.NextExponential(10.0));
    const double hw = s.ConfidenceHalfWidth(0.95);
    if (std::abs(s.mean() - 10.0) <= hw) ++covered;
  }
  EXPECT_GT(covered, experiments * 0.90);
  EXPECT_LT(covered, experiments * 0.99);
}

TEST(HistogramTest, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);  // clamps to first bucket
  h.Add(0.5);
  h.Add(9.5);
  h.Add(15.0);  // clamps to last bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.buckets().front(), 2u);
  EXPECT_EQ(h.buckets().back(), 2u);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 1.5);
}

TEST(HistogramTest, QuantileOfEmptyIsZero) {
  Histogram h(0.0, 10.0, 4);
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
}

TEST(HistogramTest, QuantileSingleBucketInterpolatesWithinRange) {
  Histogram h(0.0, 8.0, 1);
  for (int i = 0; i < 4; ++i) h.Add(3.0);
  // All mass in the one bucket: every quantile lies within [lo, hi].
  for (double p : {0.0, 0.25, 0.5, 0.95, 1.0}) {
    const double q = h.Quantile(p);
    EXPECT_GE(q, 0.0) << p;
    EXPECT_LE(q, 8.0) << p;
  }
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.9));
}

TEST(HistogramTest, QuantileExtremesOfClampedValues) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-100.0);  // clamped into the first bucket
  h.Add(100.0);   // clamped into the last bucket
  EXPECT_GE(h.Quantile(0.0), 0.0);
  EXPECT_LE(h.Quantile(1.0), 10.0);
  EXPECT_LE(h.Quantile(0.0), h.Quantile(1.0));
}

TEST(HistogramTest, QuantileIsMonotoneInP) {
  Histogram h(0.0, 50.0, 25);
  Rng rng(17);
  for (int i = 0; i < 500; ++i) h.Add(rng.NextExponential(12.0));
  double prev = h.Quantile(0.0);
  for (double p = 0.05; p <= 1.0; p += 0.05) {
    const double q = h.Quantile(p);
    EXPECT_GE(q, prev) << "p=" << p;
    prev = q;
  }
}

TEST(HistogramTest, AsciiRenderingNonEmpty) {
  Histogram h(0.0, 1.0, 4);
  h.Add(0.1);
  h.Add(0.1);
  h.Add(0.9);
  const std::string art = h.ToAscii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace bcc
