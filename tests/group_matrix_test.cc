#include "matrix/group_matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matrix/mc_vector.h"

namespace bcc {
namespace {

FMatrix RandomMatrix(uint32_t n, uint64_t seed, uint32_t commits = 25) {
  Rng rng(seed);
  FMatrix c(n);
  for (Cycle cycle = 1; cycle <= commits; ++cycle) {
    const auto reads = rng.SampleWithoutReplacement(n, static_cast<uint32_t>(rng.NextBounded(3)));
    const auto writes =
        rng.SampleWithoutReplacement(n, 1 + static_cast<uint32_t>(rng.NextBounded(2)));
    c.ApplyCommit(reads, writes, cycle);
  }
  return c;
}

TEST(ObjectPartitionTest, BlocksAreBalancedAndMonotonic) {
  const ObjectPartition p = ObjectPartition::Blocks(10, 3);
  EXPECT_EQ(p.num_groups(), 3u);
  EXPECT_EQ(p.num_objects(), 10u);
  uint32_t prev = 0;
  std::vector<uint32_t> sizes(3, 0);
  for (ObjectId i = 0; i < 10; ++i) {
    EXPECT_GE(p.GroupOf(i), prev);
    prev = p.GroupOf(i);
    ++sizes[p.GroupOf(i)];
  }
  for (uint32_t s : sizes) {
    EXPECT_GE(s, 3u);
    EXPECT_LE(s, 4u);
  }
}

TEST(ObjectPartitionTest, BlocksClampGroupCount) {
  EXPECT_EQ(ObjectPartition::Blocks(4, 10).num_groups(), 4u);
  EXPECT_EQ(ObjectPartition::Blocks(4, 0).num_groups(), 1u);
}

TEST(ObjectPartitionTest, FromMappingValidates) {
  EXPECT_TRUE(ObjectPartition::FromMapping({0, 1, 0, 1}).ok());
  EXPECT_FALSE(ObjectPartition::FromMapping({0, 2}).ok());  // group 1 empty
  EXPECT_FALSE(ObjectPartition::FromMapping({}).ok());
}

TEST(GroupMatrixTest, EntriesAreColumnMaxima) {
  const FMatrix full = RandomMatrix(6, 21);
  const ObjectPartition p = ObjectPartition::Blocks(6, 2);
  const GroupMatrix gm(p, full);
  for (ObjectId i = 0; i < 6; ++i) {
    for (uint32_t s = 0; s < 2; ++s) {
      Cycle expected = 0;
      for (ObjectId j = 0; j < 6; ++j) {
        if (p.GroupOf(j) == s) expected = std::max(expected, full.At(i, j));
      }
      EXPECT_EQ(gm.At(i, s), expected);
    }
  }
}

TEST(GroupMatrixTest, SingletonGroupsEqualFullMatrix) {
  const uint32_t n = 5;
  const FMatrix full = RandomMatrix(n, 22);
  const GroupMatrix gm(ObjectPartition::Blocks(n, n), full);
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = 0; j < n; ++j) EXPECT_EQ(gm.At(i, gm.partition().GroupOf(j)), full.At(i, j));
  }
}

TEST(GroupMatrixTest, OneGroupEqualsMcVector) {
  // With g = 1, MC(i, db) must equal the reduced vector MC(i).
  Rng rng(23);
  const uint32_t n = 6;
  FMatrix full(n);
  McVector mc(n);
  for (Cycle cycle = 1; cycle <= 30; ++cycle) {
    const auto reads = rng.SampleWithoutReplacement(n, static_cast<uint32_t>(rng.NextBounded(3)));
    const auto writes =
        rng.SampleWithoutReplacement(n, 1 + static_cast<uint32_t>(rng.NextBounded(2)));
    full.ApplyCommit(reads, writes, cycle);
    mc.ApplyCommit(writes, cycle);
  }
  const GroupMatrix gm(ObjectPartition::Blocks(n, 1), full);
  for (ObjectId i = 0; i < n; ++i) EXPECT_EQ(gm.At(i, 0), mc.At(i));
}

TEST(GroupMatrixTest, ReadConditionMonotoneInGroupCount) {
  // Coarser partitions only add conflicts: if g-group accepts is false for a
  // fine partition it must be false for every coarser one... precisely:
  // fine-partition acceptance is implied by coarse acceptance (entries only
  // shrink as g grows).
  Rng rng(29);
  const uint32_t n = 8;
  const FMatrix full = RandomMatrix(n, 24, 40);
  const GroupMatrix fine(ObjectPartition::Blocks(n, 8), full);
  const GroupMatrix mid(ObjectPartition::Blocks(n, 4), full);
  const GroupMatrix coarse(ObjectPartition::Blocks(n, 1), full);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<ReadRecord> reads;
    for (uint32_t k = 0; k < 1 + rng.NextBounded(3); ++k) {
      reads.push_back(
          {static_cast<ObjectId>(rng.NextBounded(n)), 1 + rng.NextBounded(30)});
    }
    const ObjectId target = static_cast<ObjectId>(rng.NextBounded(n));
    const bool coarse_ok = coarse.ReadCondition(reads, target);
    const bool mid_ok = mid.ReadCondition(reads, target);
    const bool fine_ok = fine.ReadCondition(reads, target);
    if (coarse_ok) {
      EXPECT_TRUE(mid_ok);
    }
    if (mid_ok) {
      EXPECT_TRUE(fine_ok);
    }
  }
}

TEST(GroupMatrixTest, FinestPartitionMatchesFMatrixCondition) {
  Rng rng(31);
  const uint32_t n = 7;
  const FMatrix full = RandomMatrix(n, 25, 40);
  const GroupMatrix gm(ObjectPartition::Blocks(n, n), full);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<ReadRecord> reads;
    for (uint32_t k = 0; k < 1 + rng.NextBounded(3); ++k) {
      reads.push_back({static_cast<ObjectId>(rng.NextBounded(n)), 1 + rng.NextBounded(30)});
    }
    const ObjectId target = static_cast<ObjectId>(rng.NextBounded(n));
    EXPECT_EQ(gm.ReadCondition(reads, target), full.ReadCondition(reads, target));
  }
}

}  // namespace
}  // namespace bcc
