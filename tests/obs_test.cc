// Unit tests for the observability layer: trace rings, abort breakdowns,
// the JSON writer/validator, and the Chrome trace_event exporter.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>

#include "obs/json.h"
#include "obs/trace_export.h"

namespace bcc {
namespace {

TraceEvent Ev(TraceEventType type, SimTime time, uint64_t value = 0) {
  TraceEvent e;
  e.type = type;
  e.time = time;
  e.value = value;
  return e;
}

TEST(TraceRingTest, BelowCapacityKeepsEverythingInOrder) {
  TraceRing ring(8);
  for (SimTime t = 0; t < 5; ++t) ring.Record(Ev(TraceEventType::kRead, t, t * 10));
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].time, i);
    EXPECT_EQ(events[i].value, i * 10);
  }
}

TEST(TraceRingTest, WrapsOverwritingOldestFirst) {
  TraceRing ring(4);
  for (SimTime t = 0; t < 10; ++t) ring.Record(Ev(TraceEventType::kRead, t));
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Survivors are the last four events, oldest first.
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].time, 6 + i);
}

TEST(TraceRingTest, TraceToIsNullSafe) {
  TraceTo(nullptr, Ev(TraceEventType::kAbort, 1));  // must not crash
  TraceRing ring(2);
  TraceTo(&ring, Ev(TraceEventType::kAbort, 1));
  EXPECT_EQ(ring.recorded(), 1u);
}

TEST(AbortBreakdownTest, RecordCountAndTotal) {
  AbortBreakdown b;
  b.Record(AbortCause::kControlConflict);
  b.Record(AbortCause::kControlConflict);
  b.Record(AbortCause::kChannelLoss);
  b.Record(AbortCause::kCensored);
  EXPECT_EQ(b.Count(AbortCause::kControlConflict), 2u);
  EXPECT_EQ(b.Count(AbortCause::kChannelLoss), 1u);
  EXPECT_EQ(b.Count(AbortCause::kMcConflict), 0u);
  // Censored completions are a marker, not a transaction-attempt abort.
  EXPECT_EQ(b.TotalAborts(), 3u);
}

TEST(AbortBreakdownTest, AccumulateIsElementwise) {
  AbortBreakdown a, b;
  a.Record(AbortCause::kMcConflict);
  b.Record(AbortCause::kMcConflict);
  b.Record(AbortCause::kUplinkReject);
  a.Accumulate(b);
  EXPECT_EQ(a.Count(AbortCause::kMcConflict), 2u);
  EXPECT_EQ(a.Count(AbortCause::kUplinkReject), 1u);
  EXPECT_EQ(a.TotalAborts(), 3u);
}

TEST(AbortBreakdownTest, ToStringNamesEveryCause) {
  AbortBreakdown b;
  b.Record(AbortCause::kDesyncStall);
  const std::string s = b.ToString();
  EXPECT_NE(s.find("control=0"), std::string::npos);
  EXPECT_NE(s.find("desync=1"), std::string::npos);
  EXPECT_NE(s.find("censored=0"), std::string::npos);
}

TEST(AbortInfoTest, EqualityIsFieldwise) {
  const AbortInfo a{AbortCause::kControlConflict, 3, 7, 12, 15};
  AbortInfo b = a;
  EXPECT_EQ(a, b);
  b.c_ij = 16;
  EXPECT_FALSE(a == b);
}

TEST(JsonWriterTest, ObjectsArraysAndEscaping) {
  JsonWriter w;
  w.BeginObject()
      .Key("name")
      .Value("a \"quoted\"\nvalue")
      .Key("list")
      .BeginArray()
      .Value(uint64_t{1})
      .Value(2.5)
      .Value(true)
      .EndArray()
      .EndObject();
  const std::string json = std::move(w).Take();
  EXPECT_EQ(ValidateJson(json), Status::OK()) << json;
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray()
      .Value(std::numeric_limits<double>::quiet_NaN())
      .Value(std::numeric_limits<double>::infinity())
      .EndArray();
  const std::string json = std::move(w).Take();
  EXPECT_EQ(json, "[null,null]");
  EXPECT_EQ(ValidateJson(json), Status::OK());
}

TEST(JsonWriterTest, RawValueSplicesDocument) {
  JsonWriter inner;
  inner.BeginObject().Key("x").Value(uint64_t{1}).EndObject();
  JsonWriter outer;
  outer.BeginObject().Key("inner").RawValue(inner.str()).Key("y").Value(uint64_t{2}).EndObject();
  const std::string json = std::move(outer).Take();
  EXPECT_EQ(ValidateJson(json), Status::OK()) << json;
}

TEST(ValidateJsonTest, AcceptsValidDocuments) {
  EXPECT_EQ(ValidateJson("{}"), Status::OK());
  EXPECT_EQ(ValidateJson("[1, 2.5e-3, -4]"), Status::OK());
  EXPECT_EQ(ValidateJson(R"({"a": [true, false, null], "b": "é"})"), Status::OK());
}

TEST(ValidateJsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ValidateJson("").ok());
  EXPECT_FALSE(ValidateJson("{").ok());
  EXPECT_FALSE(ValidateJson("[1,]").ok());
  EXPECT_FALSE(ValidateJson("{} trailing").ok());
  EXPECT_FALSE(ValidateJson("{'single': 1}").ok());
  EXPECT_FALSE(ValidateJson("[01]").ok());
  EXPECT_FALSE(ValidateJson("nul").ok());
}

TEST(TracerTest, TracksAreStableAndCounted) {
  Tracer tracer(/*capacity_per_track=*/2);
  TraceRing* server = tracer.AddTrack("server");
  TraceRing* client = tracer.AddTrack("client0");
  ASSERT_NE(server, nullptr);
  ASSERT_NE(client, nullptr);
  for (SimTime t = 0; t < 3; ++t) server->Record(Ev(TraceEventType::kCommit, t));
  client->Record(Ev(TraceEventType::kRead, 9));
  EXPECT_EQ(tracer.num_tracks(), 2u);
  EXPECT_EQ(tracer.track_name(0), "server");
  EXPECT_EQ(tracer.TotalRecorded(), 4u);
  EXPECT_EQ(tracer.TotalDropped(), 1u);
}

TEST(ExportChromeTraceTest, OutputIsValidAndCarriesTrackNames) {
  Tracer tracer(16);
  TraceRing* server = tracer.AddTrack("server");
  TraceRing* client = tracer.AddTrack("client0");

  TraceEvent cycle = Ev(TraceEventType::kCycleStart, 0);
  cycle.duration = 1000;
  cycle.cycle = 1;
  server->Record(cycle);

  TraceEvent abort = Ev(TraceEventType::kAbort, 420);
  abort.cycle = 1;
  abort.object = 7;
  abort.abort = {AbortCause::kControlConflict, 3, 7, 1, 2};
  client->Record(abort);

  const std::string json = ExportChromeTrace(tracer);
  EXPECT_EQ(ValidateJson(json), Status::OK()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("client0"), std::string::npos);
  // The cycle renders as a complete slice, the abort as an instant with its
  // structured cause in args.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("control_conflict"), std::string::npos);
}

TEST(WriteTextFileTest, RoundTripsAndReportsFailure) {
  const std::string path = ::testing::TempDir() + "/obs_write_test.json";
  ASSERT_EQ(WriteTextFile(path, "{\"ok\": true}\n"), Status::OK());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "{\"ok\": true}\n");
  EXPECT_FALSE(WriteTextFile("/nonexistent-dir/x/y.json", "x").ok());
}

}  // namespace
}  // namespace bcc
