#include "history/history.h"

#include <gtest/gtest.h>

#include "history/history_parser.h"

namespace bcc {
namespace {

// Example 1 of the paper (history 1.1) with both read-only txns committing.
History Example1() {
  return MustParseHistory(
      "r1(IBM) w2(IBM) c2 r3(IBM) r3(Sun) w4(Sun) c4 r1(Sun) c1 c3");
}

TEST(HistoryTest, TxnClassification) {
  const History h = Example1();
  EXPECT_TRUE(h.Txn(1).IsReadOnly());
  EXPECT_TRUE(h.Txn(3).IsReadOnly());
  EXPECT_TRUE(h.Txn(2).IsUpdate());
  EXPECT_TRUE(h.Txn(4).IsUpdate());
  EXPECT_EQ(h.Txn(1).outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(h.TxnIds(), (std::vector<TxnId>{1, 2, 3, 4}));
}

TEST(HistoryTest, ReadAndWriteSets) {
  const History h = Example1();
  // Objects interned in order of first appearance: IBM=0, Sun=1.
  EXPECT_EQ(h.Txn(1).read_set, (std::vector<ObjectId>{0, 1}));
  EXPECT_TRUE(h.Txn(1).write_set.empty());
  EXPECT_EQ(h.Txn(2).write_set, (std::vector<ObjectId>{0}));
  EXPECT_EQ(h.Txn(4).write_set, (std::vector<ObjectId>{1}));
}

TEST(HistoryTest, ReadsFromTracksLatestPrecedingWriter) {
  const History h = Example1();
  const auto& rf = h.ReadsFrom();
  // t1 reads IBM from t0 (before w2), Sun from t4 (after c4).
  EXPECT_NE(std::find(rf.begin(), rf.end(), ReadsFromEdge{1, 0, kInitTxn}), rf.end());
  EXPECT_NE(std::find(rf.begin(), rf.end(), ReadsFromEdge{1, 1, 4}), rf.end());
  // t3 reads IBM from t2, Sun from t0 (before w4).
  EXPECT_NE(std::find(rf.begin(), rf.end(), ReadsFromEdge{3, 0, 2}), rf.end());
  EXPECT_NE(std::find(rf.begin(), rf.end(), ReadsFromEdge{3, 1, kInitTxn}), rf.end());
}

TEST(HistoryTest, AbortedWritersAreInvisibleToReads) {
  const History h = MustParseHistory("w1(x) a1 r2(x) c2");
  const auto& rf = h.ReadsFrom();
  ASSERT_EQ(rf.size(), 1u);
  EXPECT_EQ(rf[0].writer, kInitTxn);  // not the aborted t1
}

TEST(HistoryTest, LiveSetIsTransitiveReadsFromClosure) {
  // t3 reads from t2 which reads from t1: LIVE(t3) = {t3, t2, t1}.
  const History h = MustParseHistory("w1(x) c1 r2(x) w2(y) c2 r3(y) c3");
  const auto live = h.LiveSet(3);
  EXPECT_TRUE(live.contains(3));
  EXPECT_TRUE(live.contains(2));
  EXPECT_TRUE(live.contains(1));
  EXPECT_FALSE(live.contains(kInitTxn));
  EXPECT_EQ(live.size(), 3u);
}

TEST(HistoryTest, LiveSetIncludesInitTxnWhenReadingInitialValue) {
  const History h = MustParseHistory("r1(x) c1");
  const auto live = h.LiveSet(1);
  EXPECT_TRUE(live.contains(1));
  EXPECT_TRUE(live.contains(kInitTxn));
}

TEST(HistoryTest, UpdateSubHistoryKeepsOnlyWriters) {
  const History h = Example1();
  const History u = h.UpdateSubHistory();
  EXPECT_EQ(u.ToString(), "w2(ob0) c2 w4(ob1) c4");
}

TEST(HistoryTest, UpdateSubHistoryKeepsWritersReads) {
  // H_update includes ALL operations of writing transactions, reads too.
  const History h = MustParseHistory("r1(x) w1(y) c1 r2(x) c2");
  const History u = h.UpdateSubHistory();
  EXPECT_EQ(u.ToString(), "r1(ob0) w1(ob1) c1");
}

TEST(HistoryTest, CommittedTxnListsInCommitOrder) {
  const History h = Example1();
  EXPECT_EQ(h.CommittedUpdateTxns(), (std::vector<TxnId>{2, 4}));
  EXPECT_EQ(h.CommittedReadOnlyTxns(), (std::vector<TxnId>{1, 3}));
}

TEST(HistoryTest, ValidateRejectsOpsAfterTermination) {
  History h;
  h.AppendWrite(1, 0);
  h.AppendCommit(1);
  h.AppendRead(1, 0);
  EXPECT_FALSE(h.Validate().ok());
}

TEST(HistoryTest, ValidateRejectsReservedTxnZero) {
  History h;
  h.AppendWrite(kInitTxn, 0);
  EXPECT_FALSE(h.Validate().ok());
}

TEST(HistoryTest, AppendixAFormRejectsReadAfterWrite) {
  EXPECT_FALSE(MustParseHistory("w1(x) r1(y) c1").ValidateAppendixAForm().ok());
  EXPECT_TRUE(MustParseHistory("r1(y) w1(x) c1").ValidateAppendixAForm().ok());
}

TEST(HistoryTest, AppendixAFormRejectsDuplicateAccess) {
  EXPECT_FALSE(MustParseHistory("r1(x) r1(x) c1").ValidateAppendixAForm().ok());
  EXPECT_FALSE(MustParseHistory("w1(x) w1(x) c1").ValidateAppendixAForm().ok());
}

TEST(HistoryTest, ProjectPreservesOrder) {
  const History h = Example1();
  const History p = h.Project({1, 2});
  EXPECT_EQ(p.ToString(), "r1(ob0) w2(ob0) c2 r1(ob1) c1");
}

TEST(HistoryTest, RoundTripToString) {
  const History h = MustParseHistory("r1(a) w2(a) c2 a1");
  EXPECT_EQ(h.ToString(), "r1(ob0) w2(ob0) c2 a1");
}

TEST(HistoryTest, ActiveTxnOutcome) {
  const History h = MustParseHistory("r1(x) w2(x)");
  EXPECT_EQ(h.Txn(1).outcome, TxnOutcome::kActive);
  EXPECT_EQ(h.Txn(2).outcome, TxnOutcome::kActive);
}

}  // namespace
}  // namespace bcc
