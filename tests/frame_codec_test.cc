// Tests for the lossy-channel frame codec: geometry validation, header
// round-trips, stream segmentation/reassembly, CRC and framing rejection of
// damaged frames, and the per-cycle payload encodings.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "channel/frame.h"
#include "common/rng.h"
#include "matrix/wire.h"

namespace bcc {
namespace {

FrameCodec SmallCodec(unsigned ts_bits = 8, uint64_t frame_bits = 512) {
  return FrameCodec(CycleStampCodec(ts_bits), frame_bits);
}

Payload BytePayload(std::vector<uint8_t> bytes) {
  Payload p;
  p.bits = 8 * static_cast<uint64_t>(bytes.size());
  p.bytes = std::move(bytes);
  return p;
}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, MatchesKnownVector) {
  // The classic IEEE 802.3 check value for "123456789".
  const std::vector<uint8_t> check = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(check), 0xCBF43926u);
  EXPECT_EQ(Crc32({}), 0u);
}

TEST(Crc32Test, SensitiveToEverySingleBitFlip) {
  std::vector<uint8_t> bytes = {0xDE, 0xAD, 0xBE, 0xEF, 0x01};
  const uint32_t base = Crc32(bytes);
  for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(Crc32(bytes), base) << "flip of bit " << bit << " went unnoticed";
    bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
}

// ---------------------------------------------------------------------------
// Geometry
// ---------------------------------------------------------------------------

TEST(FrameCodecTest, GeometryValidation) {
  EXPECT_TRUE(FrameCodec::ValidateGeometry(8, 512).ok());
  EXPECT_TRUE(FrameCodec::ValidateGeometry(2, 128).ok());
  EXPECT_FALSE(FrameCodec::ValidateGeometry(8, 500).ok()) << "not byte aligned";
  EXPECT_FALSE(FrameCodec::ValidateGeometry(8, 96).ok()) << "no useful payload capacity";
  EXPECT_FALSE(FrameCodec::ValidateGeometry(0, 512).ok());
  EXPECT_FALSE(FrameCodec::ValidateGeometry(33, 512).ok());
  // Capacity must stay addressable by the 16-bit payload-length field.
  EXPECT_FALSE(FrameCodec::ValidateGeometry(8, 1u << 17).ok());
}

TEST(FrameCodecTest, GeometryAccessors) {
  const FrameCodec codec = SmallCodec(8, 512);
  EXPECT_EQ(codec.frame_bits(), 512u);
  EXPECT_EQ(codec.frame_bytes(), 64u);
  EXPECT_EQ(codec.header_bits(), 8u + 56u);
  EXPECT_EQ(codec.payload_capacity_bits(), 512u - 64u - 32u);
}

// ---------------------------------------------------------------------------
// Encode / Decode round-trips
// ---------------------------------------------------------------------------

TEST(FrameCodecTest, HeaderRoundTripsThroughTheWire) {
  const FrameCodec codec = SmallCodec();
  const Payload payload = BytePayload({0x12, 0x34, 0x56});
  const std::vector<Frame> frames =
      codec.EncodeStream(FrameKind::kData, /*stream_id=*/77, /*cycle=*/300, payload);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].bytes.size(), codec.frame_bytes());

  const auto decoded = codec.Decode(frames[0]);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->header.cycle_residue, codec.stamp_codec().Encode(300));
  EXPECT_EQ(decoded->header.kind, FrameKind::kData);
  EXPECT_EQ(decoded->header.stream_id, 77u);
  EXPECT_EQ(decoded->header.seq, 0u);
  EXPECT_TRUE(decoded->header.last);
  EXPECT_EQ(decoded->payload.bits, payload.bits);
  EXPECT_EQ(decoded->payload.bytes, payload.bytes);
}

TEST(FrameCodecTest, EmptyPayloadStillYieldsOneFrame) {
  const FrameCodec codec = SmallCodec();
  const std::vector<Frame> frames =
      codec.EncodeStream(FrameKind::kIndex, /*stream_id=*/0, /*cycle=*/1, Payload{});
  ASSERT_EQ(frames.size(), 1u);
  const auto decoded = codec.Decode(frames[0]);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->header.last);
  EXPECT_EQ(decoded->payload.bits, 0u);
}

TEST(FrameCodecTest, LongPayloadSegmentsAndReassembles) {
  const FrameCodec codec = SmallCodec(8, 128);  // tiny frames -> many segments
  Rng rng(42);
  Payload payload;
  payload.bytes.resize(200);
  for (auto& b : payload.bytes) b = static_cast<uint8_t>(rng.NextBounded(256));
  payload.bits = 8 * 200;

  const std::vector<Frame> frames =
      codec.EncodeStream(FrameKind::kControlRefresh, /*stream_id=*/0, /*cycle=*/9, payload);
  const uint64_t capacity = codec.payload_capacity_bits();
  EXPECT_EQ(frames.size(), (payload.bits + capacity - 1) / capacity);
  ASSERT_GT(frames.size(), 3u);

  StreamReassembler reassembler;
  for (size_t i = 0; i < frames.size(); ++i) {
    const auto decoded = codec.Decode(frames[i]);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->header.seq, i);
    EXPECT_EQ(decoded->header.last, i + 1 == frames.size());
    reassembler.Add(*decoded);
  }
  ASSERT_TRUE(reassembler.complete());
  const Payload out = reassembler.Take();
  EXPECT_EQ(out.bits, payload.bits);
  EXPECT_EQ(out.bytes, payload.bytes);
}

TEST(FrameCodecTest, NonByteAlignedPayloadRoundTrips) {
  const FrameCodec codec = SmallCodec(8, 128);
  Payload payload;
  payload.bytes = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x07};
  payload.bits = 75;  // not a multiple of 8, spans two 37/38-bit-ish chunks
  const std::vector<Frame> frames =
      codec.EncodeStream(FrameKind::kControlDelta, /*stream_id=*/0, /*cycle=*/4, payload);
  StreamReassembler reassembler;
  for (const Frame& f : frames) {
    const auto decoded = codec.Decode(f);
    ASSERT_TRUE(decoded.ok());
    reassembler.Add(*decoded);
  }
  ASSERT_TRUE(reassembler.complete());
  const Payload out = reassembler.Take();
  EXPECT_EQ(out.bits, payload.bits);
  EXPECT_EQ(out.bytes, payload.bytes);
}

// ---------------------------------------------------------------------------
// Damage rejection
// ---------------------------------------------------------------------------

TEST(FrameCodecTest, CrcCatchesEverySingleBitFlip) {
  const FrameCodec codec = SmallCodec(8, 128);
  const std::vector<Frame> frames = codec.EncodeStream(FrameKind::kData, /*stream_id=*/5,
                                                       /*cycle=*/12, BytePayload({1, 2, 3, 4}));
  ASSERT_EQ(frames.size(), 1u);
  for (size_t bit = 0; bit < codec.frame_bits(); ++bit) {
    Frame damaged = frames[0];
    damaged.bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(codec.Decode(damaged).ok()) << "flip of bit " << bit << " accepted";
  }
}

TEST(FrameCodecTest, TruncatedFramesAreRejected) {
  const FrameCodec codec = SmallCodec();
  const std::vector<Frame> frames =
      codec.EncodeStream(FrameKind::kData, /*stream_id=*/5, /*cycle=*/12, BytePayload({1, 2}));
  ASSERT_EQ(frames.size(), 1u);
  for (size_t len : {0u, 1u, 31u, 63u}) {
    Frame truncated = frames[0];
    truncated.bytes.resize(len);
    EXPECT_FALSE(codec.Decode(truncated).ok()) << "length " << len;
  }
}

// Datagram semantics: UDP delivers frames duplicated and reordered, and a
// truncated final datagram simply drops the tail frames. None of that may
// wedge the receiver — only contradictory streams are broken.
std::vector<DecodedFrame> DecodeAll(const FrameCodec& codec, const std::vector<Frame>& frames) {
  std::vector<DecodedFrame> decoded;
  for (const Frame& f : frames) {
    const auto d = codec.Decode(f);
    EXPECT_TRUE(d.ok());
    decoded.push_back(*d);
  }
  return decoded;
}

TEST(StreamReassemblerTest, ReorderedAndDuplicatedFramesStillReassemble) {
  const FrameCodec codec = SmallCodec(8, 128);  // 32 payload bits per frame
  Payload payload;
  payload.bytes.assign(12, 0xAB);
  payload.bits = 8 * 12;
  const std::vector<DecodedFrame> decoded =
      DecodeAll(codec, codec.EncodeStream(FrameKind::kData, /*stream_id=*/1, /*cycle=*/2, payload));
  ASSERT_EQ(decoded.size(), 3u);

  StreamReassembler r;
  r.Add(decoded[2]);  // last frame arrives first
  r.Add(decoded[0]);
  r.Add(decoded[0]);  // duplicate, ignored
  EXPECT_FALSE(r.complete());
  EXPECT_FALSE(r.broken());
  r.Add(decoded[1]);
  r.Add(decoded[2]);  // duplicate after completion, ignored
  ASSERT_TRUE(r.complete());
  const Payload out = r.Take();
  EXPECT_EQ(out.bits, payload.bits);
  EXPECT_EQ(out.bytes, payload.bytes);
}

TEST(StreamReassemblerTest, GapLeavesStreamIncompleteUntilTheFrameArrives) {
  const FrameCodec codec = SmallCodec(8, 128);
  Payload payload;
  payload.bytes.assign(12, 0x5C);
  payload.bits = 8 * 12;
  const std::vector<DecodedFrame> decoded =
      DecodeAll(codec, codec.EncodeStream(FrameKind::kData, /*stream_id=*/1, /*cycle=*/2, payload));
  ASSERT_EQ(decoded.size(), 3u);

  StreamReassembler r;
  r.Add(decoded[0]);
  r.Add(decoded[2]);
  EXPECT_FALSE(r.complete()) << "frame 1 missing";
  EXPECT_FALSE(r.broken()) << "a gap is loss, not contradiction";
  r.Add(decoded[1]);  // late retransmit-style arrival fills the gap
  EXPECT_TRUE(r.complete());
}

TEST(StreamReassemblerTest, TruncatedTailNeverCompletesButNeverWedges) {
  // A truncated final datagram drops the stream's tail frames: the last flag
  // is never seen, so the stream stays incomplete (stall path), not broken.
  const FrameCodec codec = SmallCodec(8, 128);
  Payload payload;
  payload.bytes.assign(60, 0x33);
  payload.bits = 8 * 60;
  const std::vector<DecodedFrame> decoded =
      DecodeAll(codec, codec.EncodeStream(FrameKind::kData, /*stream_id=*/1, /*cycle=*/2, payload));
  ASSERT_GE(decoded.size(), 3u);

  StreamReassembler r;
  for (size_t i = 0; i + 1 < decoded.size(); ++i) r.Add(decoded[i]);
  EXPECT_FALSE(r.complete());
  EXPECT_FALSE(r.broken());
}

TEST(StreamReassemblerTest, ContradictoryFramesBreakTheStream) {
  const FrameCodec codec = SmallCodec(8, 128);
  Payload three;
  three.bytes.assign(30, 0x11);
  three.bits = 8 * 30;
  Payload four;
  four.bytes.assign(42, 0x22);
  four.bits = 8 * 42;
  const std::vector<DecodedFrame> short_stream =
      DecodeAll(codec, codec.EncodeStream(FrameKind::kData, /*stream_id=*/1, /*cycle=*/2, three));
  const std::vector<DecodedFrame> long_stream =
      DecodeAll(codec, codec.EncodeStream(FrameKind::kData, /*stream_id=*/1, /*cycle=*/2, four));
  ASSERT_LT(short_stream.size(), long_stream.size());

  {  // a frame sequenced past the last-flagged frame
    StreamReassembler r;
    for (const auto& d : short_stream) r.Add(d);
    ASSERT_TRUE(r.complete());
    r.Add(long_stream.back());
    EXPECT_TRUE(r.broken());
    EXPECT_FALSE(r.complete());
  }
  {  // same, with the too-far frame buffered before the last flag arrives
    StreamReassembler r;
    r.Add(long_stream.back());
    r.Add(short_stream.back());
    EXPECT_TRUE(r.broken());
  }
  {  // two different last-flagged sequence numbers
    StreamReassembler r;
    r.Add(short_stream.back());
    r.Add(long_stream.back());
    EXPECT_TRUE(r.broken());
  }
}

// ---------------------------------------------------------------------------
// Cycle payloads
// ---------------------------------------------------------------------------

TEST(CyclePayloadTest, IndexRoundTrip) {
  CycleIndex index;
  index.control_mode = CycleIndex::kControlDelta;
  index.num_objects = 777;
  index.cycle_low = 0xDEADBEEF;
  const Payload payload = EncodeIndexPayload(index);
  const auto out = DecodeIndexPayload(payload);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->control_mode, index.control_mode);
  EXPECT_EQ(out->num_objects, index.num_objects);
  EXPECT_EQ(out->cycle_low, index.cycle_low);

  Payload bad = payload;
  bad.bytes[0] ^= 0xFF;  // magic damaged
  EXPECT_FALSE(DecodeIndexPayload(bad).ok());
  Payload wrong_size = payload;
  wrong_size.bits -= 1;
  EXPECT_FALSE(DecodeIndexPayload(wrong_size).ok());
}

TEST(CyclePayloadTest, ObjectVersionRoundTripsAtAnySimulatedSize) {
  const ObjectVersion version{0x0123456789ABCDEFull, 4242, 0x00000001FFFFFFFEull};
  for (const uint64_t size_bits : {uint64_t{64}, kObjectVersionBits, uint64_t{4096}}) {
    const Payload payload = EncodeObjectPayload(version, size_bits);
    EXPECT_EQ(payload.bits, std::max(kObjectVersionBits, size_bits));
    const auto out = DecodeObjectPayload(payload);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(*out, version);
  }
  EXPECT_FALSE(DecodeObjectPayload(Payload{}).ok());
}

TEST(CyclePayloadTest, FullModeCycleFramesCarryIndexDataAndColumns) {
  const uint32_t n = 5;
  const FrameCodec codec = SmallCodec(8, 512);
  CycleSnapshot snap;
  snap.cycle = 17;
  snap.values.resize(n);
  for (uint32_t j = 0; j < n; ++j) snap.values[j].value = 100 + j;
  FMatrix control(n);
  control.Set(2, 3, 9);
  snap.f_matrix = control.Snapshot();

  const std::vector<Frame> frames = EncodeCycleFrames(snap, codec, /*object_size_bits=*/64);
  size_t index_frames = 0, data_streams = 0, column_streams = 0;
  for (const Frame& f : frames) {
    const auto d = codec.Decode(f);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->header.cycle_residue, codec.stamp_codec().Encode(snap.cycle));
    switch (d->header.kind) {
      case FrameKind::kIndex: {
        ++index_frames;
        const auto index = DecodeIndexPayload(d->payload);
        ASSERT_TRUE(index.ok());
        EXPECT_EQ(index->control_mode, CycleIndex::kControlColumns);
        EXPECT_EQ(index->num_objects, n);
        break;
      }
      case FrameKind::kData: {
        ++data_streams;
        const auto version = DecodeObjectPayload(d->payload);
        ASSERT_TRUE(version.ok());
        EXPECT_EQ(version->value, 100u + d->header.stream_id);
        break;
      }
      case FrameKind::kControlColumn: {
        ++column_streams;
        const auto stamps = UnpackStamps(d->payload.bytes, n, codec.stamp_codec(), snap.cycle);
        ASSERT_TRUE(stamps.ok()) << stamps.status().ToString();
        if (d->header.stream_id == 3) {
          EXPECT_EQ((*stamps)[2], 9u);
        }
        break;
      }
      default:
        FAIL() << "unexpected kind in full mode";
    }
  }
  EXPECT_EQ(index_frames, 1u);
  EXPECT_EQ(data_streams, n);
  EXPECT_EQ(column_streams, n);
}

// ---------------------------------------------------------------------------
// Wire-format portability goldens
// ---------------------------------------------------------------------------
// The on-air byte layout is a protocol contract between independently built
// binaries (bcc_serverd / bcc_client may run on different hosts). These
// constants freeze the exact bytes; a test failure here means the wire
// format changed and deployed peers would stop interoperating — bump the
// protocol deliberately, don't update the constants casually.

std::string ToHex(const std::vector<uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

TEST(WireFormatGoldenTest, FrameBytesAreFrozen) {
  // ts=8, 128-bit frames: header = 8+3+20+16+1+16 = 64 bits, CRC 32, payload
  // capacity 32 bits. kind=kData, stream=7, cycle=300 (residue 0x2C), 6-byte
  // payload -> exactly two frames.
  const FrameCodec codec = SmallCodec(8, 128);
  const Payload payload = BytePayload({0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02});
  const std::vector<Frame> frames = codec.EncodeStream(FrameKind::kData, 7, 300, payload);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(ToHex(frames[0].bytes), "2c39000000002000deadbeefff5cbd6f");
  EXPECT_EQ(ToHex(frames[1].bytes), "2c3900800080100001020000a27e6463");

  // The frozen bytes decode back to the original header fields and payload.
  const auto first = codec.Decode(frames[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->header.cycle_residue, 300u & 0xFF);
  EXPECT_EQ(first->header.kind, FrameKind::kData);
  EXPECT_EQ(first->header.stream_id, 7u);
  EXPECT_EQ(first->header.seq, 0u);
  EXPECT_FALSE(first->header.last);
  const auto second = codec.Decode(frames[1]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->header.seq, 1u);
  EXPECT_TRUE(second->header.last);
}

TEST(WireFormatGoldenTest, PackStampsBytesAreFrozen) {
  // TS-bit residues packed LSB-first: at ts=8 each stamp is one byte of its
  // residue mod 256.
  const std::vector<Cycle> stamps = {0, 1, 255, 256, 511};
  EXPECT_EQ(ToHex(PackStamps(stamps, CycleStampCodec(8))), "0001ff00ff");
}

}  // namespace
}  // namespace bcc
